#ifndef RESTORE_RESTORE_CACHE_H_
#define RESTORE_RESTORE_CACHE_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "storage/table.h"

namespace restore {

/// Cache of completed joins (Section 4.5): data synthesized for one query is
/// reused by later queries over the same join path, and queries over a
/// sub-path reuse a superset join by projection.
class CompletionCache {
 public:
  CompletionCache() = default;

  /// Stores a completed join covering exactly `tables`.
  void Put(const std::set<std::string>& tables, Table joined);

  /// Exact hit: a completed join over exactly `tables`, or nullptr.
  const Table* GetExact(const std::set<std::string>& tables) const;

  /// Superset hit: the smallest cached join whose table set is a superset of
  /// `tables` (its projection serves the query), or nullptr.
  const Table* GetCovering(const std::set<std::string>& tables) const;

  size_t size() const { return entries_.size(); }
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }
  void Clear() { entries_.clear(); }

 private:
  static std::string Key(const std::set<std::string>& tables);

  struct Entry {
    std::set<std::string> tables;
    Table joined;
  };
  std::map<std::string, Entry> entries_;
  mutable size_t hits_ = 0;
  mutable size_t misses_ = 0;
};

}  // namespace restore

#endif  // RESTORE_RESTORE_CACHE_H_
