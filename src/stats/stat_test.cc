#include "stats/stat_test.h"

#include <algorithm>
#include <cmath>

namespace restore {

namespace {

/// Proportion floor of the PSI (keeps empty buckets finite).
constexpr double kPsiEpsilon = 1e-6;

/// Regularized lower incomplete gamma P(a, x) by series expansion
/// (converges fast for x < a + 1).
double GammaPSeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Regularized upper incomplete gamma Q(a, x) by Lentz's continued
/// fraction (converges fast for x >= a + 1).
double GammaQContinuedFraction(double a, double x) {
  const double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-15) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

/// KS over two already-aligned bucket-count vectors (max CDF gap).
double BinnedKsStatistic(const std::vector<double>& a,
                         const std::vector<double>& b, double total_a,
                         double total_b) {
  double ca = 0.0, cb = 0.0, d = 0.0;
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    ca += a[i];
    cb += b[i];
    d = std::max(d, std::fabs(ca / total_a - cb / total_b));
  }
  return d;
}

}  // namespace

double KolmogorovPValue(double d, double n1, double n2) {
  if (d <= 0.0 || n1 <= 0.0 || n2 <= 0.0) return 1.0;
  const double ne = n1 * n2 / (n1 + n2);
  const double sqrt_ne = std::sqrt(ne);
  const double lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
  // Q_KS(lambda) = 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2).
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    sum += sign * term;
    if (term < 1e-16) break;
    sign = -sign;
  }
  const double p = 2.0 * sum;
  return std::min(1.0, std::max(0.0, p));
}

double ChiSquaredPValue(double statistic, double df) {
  if (df <= 0.0 || statistic <= 0.0) return 1.0;
  const double a = df / 2.0;
  const double x = statistic / 2.0;
  const double q = x < a + 1.0 ? 1.0 - GammaPSeries(a, x)
                               : GammaQContinuedFraction(a, x);
  return std::min(1.0, std::max(0.0, q));
}

KsResult KsTwoSample(std::vector<double> a, std::vector<double> b) {
  KsResult out;
  out.n1 = a.size();
  out.n2 = b.size();
  if (a.empty() || b.empty()) return out;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  size_t i = 0, j = 0;
  double d = 0.0;
  // Merge walk over the pooled order statistics: after consuming every
  // sample <= x, the ECDF gap at x is |i/na - j/nb|. Ties advance both
  // cursors past the tied value before the gap is evaluated, which is the
  // exact two-sample statistic.
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    d = std::max(d, std::fabs(static_cast<double>(i) / na -
                              static_cast<double>(j) / nb));
  }
  // The remaining tail of the longer sample only shrinks toward (1, 1).
  out.statistic = d;
  out.p_value = KolmogorovPValue(d, na, nb);
  return out;
}

KsResult KsFromSummaries(const ColumnSummary& ref, const ColumnSummary& cur) {
  KsResult out;
  out.n1 = ref.total;
  out.n2 = cur.total;
  if (ref.total == 0 || cur.total == 0) return out;
  out.statistic =
      BinnedKsStatistic(ref.counts, cur.counts,
                        static_cast<double>(ref.total),
                        static_cast<double>(cur.total));
  out.p_value = KolmogorovPValue(out.statistic,
                                 static_cast<double>(ref.total),
                                 static_cast<double>(cur.total));
  return out;
}

Chi2Result ChiSquaredTwoSample(const std::vector<double>& a,
                               const std::vector<double>& b,
                               double min_expected) {
  Chi2Result out;
  const size_t buckets = std::min(a.size(), b.size());
  double na = 0.0, nb = 0.0;
  for (size_t i = 0; i < buckets; ++i) {
    na += a[i];
    nb += b[i];
  }
  const double total = na + nb;
  if (na <= 0.0 || nb <= 0.0) return out;  // one side empty: no evidence
  // Merge buckets whose expected count in the SMALLER sample falls below
  // min_expected into one rest bucket (the classical validity rule for the
  // χ² approximation). The rest bucket itself joins the test only if it
  // clears the same bar.
  const double smaller = std::min(na, nb);
  std::vector<double> ka, kb;
  double rest_a = 0.0, rest_b = 0.0;
  for (size_t i = 0; i < buckets; ++i) {
    const double pooled = a[i] + b[i];
    if (pooled * smaller / total < min_expected) {
      rest_a += a[i];
      rest_b += b[i];
      ++out.merged_buckets;
    } else {
      ka.push_back(a[i]);
      kb.push_back(b[i]);
    }
  }
  if ((rest_a + rest_b) * smaller / total >= min_expected) {
    ka.push_back(rest_a);
    kb.push_back(rest_b);
  } else if (!ka.empty()) {
    // Sub-threshold remainder folds into the last viable bucket so no mass
    // is dropped from the test.
    ka.back() += rest_a;
    kb.back() += rest_b;
  }
  if (ka.size() < 2) return out;  // df 0: statistic 0, p-value 1
  double stat = 0.0;
  for (size_t i = 0; i < ka.size(); ++i) {
    const double pooled = ka[i] + kb[i];
    const double ea = pooled * na / total;
    const double eb = pooled * nb / total;
    if (ea > 0.0) stat += (ka[i] - ea) * (ka[i] - ea) / ea;
    if (eb > 0.0) stat += (kb[i] - eb) * (kb[i] - eb) / eb;
  }
  out.statistic = stat;
  out.df = static_cast<double>(ka.size() - 1);
  out.p_value = ChiSquaredPValue(stat, out.df);
  return out;
}

Chi2Result Chi2FromSummaries(const ColumnSummary& ref,
                             const ColumnSummary& cur, double min_expected) {
  return ChiSquaredTwoSample(ref.counts, cur.counts, min_expected);
}

double Psi(const std::vector<double>& ref, const std::vector<double>& cur) {
  const size_t buckets = std::min(ref.size(), cur.size());
  double nr = 0.0, nc = 0.0;
  for (size_t i = 0; i < buckets; ++i) {
    nr += ref[i];
    nc += cur[i];
  }
  if (nr <= 0.0 || nc <= 0.0) return 0.0;
  double psi = 0.0;
  for (size_t i = 0; i < buckets; ++i) {
    const double p = std::max(kPsiEpsilon, ref[i] / nr);
    const double q = std::max(kPsiEpsilon, cur[i] / nc);
    psi += (p - q) * std::log(p / q);
  }
  return psi;
}

double PsiFromSummaries(const ColumnSummary& ref, const ColumnSummary& cur) {
  if (ref.total == 0 || cur.total == 0) return 0.0;
  return Psi(ref.counts, cur.counts);
}

DriftScore ScoreDrift(const std::vector<ColumnSummary>& refs,
                      const Database& current) {
  DriftScore score;
  if (refs.empty()) return score;
  score.available = true;
  for (const ColumnSummary& ref : refs) {
    Result<const Table*> table = current.GetTable(ref.table);
    if (!table.ok()) continue;
    const Column* col = nullptr;
    for (const Column& c : (*table)->columns()) {
      if (c.name() == ref.column) {
        col = &c;
        break;
      }
    }
    if (col == nullptr) continue;
    const ColumnSummary cur = SummarizeAgainst(ref, *col);
    const double ks = KsFromSummaries(ref, cur).statistic;
    if (ks > score.ks) {
      score.ks = ks;
      score.worst_column = ref.table + "." + ref.column;
    }
    score.psi = std::max(score.psi, PsiFromSummaries(ref, cur));
  }
  return score;
}

}  // namespace restore
