#include "bench/confidence_util.h"

#include "metrics/metrics.h"

namespace restore {
namespace bench {

Result<ConfidenceEval> EvaluateCountConfidence(
    const Database& complete, const Database& incomplete,
    const SchemaAnnotation& annotation, const std::vector<std::string>& path,
    const std::string& target, const std::string& column,
    const std::string& value, const PathModelConfig& config, uint64_t seed) {
  RESTORE_ASSIGN_OR_RETURN(
      auto model, PathModel::Train(incomplete, annotation, path, config));
  IncompletenessJoinExecutor exec(&incomplete, &annotation);
  Rng rng(seed);
  CompletionOptions options;
  options.record_table = target;
  options.record_column = column;
  RESTORE_ASSIGN_OR_RETURN(CompletionResult completion,
                           exec.CompletePathJoin(*model, rng, options));

  RESTORE_ASSIGN_OR_RETURN(const Table* truth, complete.GetTable(target));
  RESTORE_ASSIGN_OR_RETURN(const Table* partial, incomplete.GetTable(target));
  RESTORE_ASSIGN_OR_RETURN(const Column* col, partial->GetColumn(column));
  RESTORE_ASSIGN_OR_RETURN(int64_t code, col->dictionary()->Lookup(value));
  size_t existing_with_value = 0;
  for (size_t r = 0; r < col->size(); ++r) {
    if (!col->IsNull(r) && col->GetCode(r) == code) ++existing_with_value;
  }

  const int attr = model->FindAttr(target, column);
  if (attr < 0) {
    return Status::NotFound("recorded column is not a model attribute");
  }
  ConfidenceEval eval;
  RESTORE_ASSIGN_OR_RETURN(eval.true_fraction,
                           CategoricalFraction(*truth, column, value));
  RESTORE_ASSIGN_OR_RETURN(eval.incomplete_fraction,
                           CategoricalFraction(*partial, column, value));
  eval.interval = CountFractionInterval(
      completion.recorded_probs,
      model->TrainMarginal(static_cast<size_t>(attr)),
      static_cast<size_t>(code), existing_with_value, partial->NumRows(),
      0.95);
  return eval;
}

}  // namespace bench
}  // namespace restore
