#ifndef RESTORE_RESTORE_TUPLE_FACTOR_H_
#define RESTORE_RESTORE_TUPLE_FACTOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/database.h"

namespace restore {

/// Name of the (nullable int64) column on a parent table that stores the
/// observed tuple factor towards `child_table`: the TRUE number of child
/// tuples the parent row has in the complete database. NULL means the tuple
/// factor was not observed and must be predicted by a completion model.
std::string TupleFactorColumnName(const std::string& child_table);

/// True if `column` is a tuple-factor bookkeeping column.
bool IsTupleFactorColumn(const std::string& column);

/// Counts, for every row of the FK's parent table, how many child rows
/// currently reference it in `db` (i.e. the tuple factor of the AVAILABLE
/// data — a lower bound on the true one when the child table is incomplete).
Result<std::vector<int64_t>> CountChildMatches(const Database& db,
                                               const ForeignKey& fk);

/// Computes the true tuple factors of `fk` from the (complete) database and
/// attaches them as a TupleFactorColumnName column on the parent table.
/// Used by data generators before tuples are removed; the incompleteness
/// injector then nulls out a share of them (the "tuple factor keep rate").
Status AttachTupleFactors(Database* db, const ForeignKey& fk);

}  // namespace restore

#endif  // RESTORE_RESTORE_TUPLE_FACTOR_H_
