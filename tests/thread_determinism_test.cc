// Determinism regression test for the threaded NN substrate: training and
// sampling a MadeModel with the global pool at 1 vs. 4 threads must produce
// bit-identical losses and samples for a fixed seed. This pins the contract
// documented in src/nn/README.md — shard boundaries and accumulation orders
// depend only on problem shapes, never on the thread count.

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "nn/adam.h"
#include "nn/made.h"
#include "nn/matrix.h"

namespace restore {
namespace {

struct TrainResult {
  std::vector<float> losses;
  std::vector<int32_t> samples;
  std::vector<float> probs;
};

/// Trains a small MADE for a few steps and then samples from it, entirely
/// driven by the fixed seed.
TrainResult TrainAndSample(uint64_t seed) {
  Rng rng(seed);
  MadeConfig config;
  // One wide attribute (vocab 300) forces the loss row grain down to
  // max(16, 4096/300) = 16, so the 96-row batch spans 6 shards and the
  // per-shard partial-sum reduction order is actually exercised — a single
  // collapsed shard at width 1 would produce different float sums.
  config.vocab_sizes = {7, 300, 11, 3};
  config.embed_dim = 4;
  config.hidden_dim = 32;
  config.num_layers = 2;
  MadeModel made(config, rng);

  const size_t batch = 96;
  IntMatrix codes(batch, config.vocab_sizes.size());
  for (size_t r = 0; r < batch; ++r) {
    for (size_t a = 0; a < config.vocab_sizes.size(); ++a) {
      codes.at(r, a) = static_cast<int32_t>(
          rng.NextUint64(static_cast<uint64_t>(config.vocab_sizes[a])));
    }
  }

  std::vector<Param*> params;
  made.CollectParams(&params);
  AdamOptimizer adam(params);

  TrainResult result;
  const Matrix empty_context;
  Matrix logits;
  Matrix dlogits;
  for (int step = 0; step < 8; ++step) {
    made.Forward(codes, empty_context, &logits);
    result.losses.push_back(made.NllLoss(logits, codes, 0, &dlogits));
    made.Backward(dlogits, nullptr);
    adam.Step();
  }

  IntMatrix sampled(batch, config.vocab_sizes.size(), 0);
  Matrix recorded;
  made.SampleRange(&sampled, empty_context, 0, config.vocab_sizes.size(), rng,
                   /*record_attr=*/2, &recorded);
  for (size_t r = 0; r < batch; ++r) {
    for (size_t a = 0; a < config.vocab_sizes.size(); ++a) {
      result.samples.push_back(sampled.at(r, a));
    }
  }
  result.probs.assign(recorded.data(), recorded.data() + recorded.size());
  return result;
}

TEST(ThreadDeterminismTest, TrainingAndSamplingIdenticalAt1And4Threads) {
  ThreadPool::SetGlobalWidth(1);
  const TrainResult single = TrainAndSample(/*seed=*/42);
  ThreadPool::SetGlobalWidth(4);
  const TrainResult quad = TrainAndSample(/*seed=*/42);
  ThreadPool::SetGlobalWidth(1);
  const TrainResult single_again = TrainAndSample(/*seed=*/42);
  // Restore the environment-default pool for any later test in this binary.
  ThreadPool::SetGlobalWidth(0);

  ASSERT_EQ(single.losses.size(), quad.losses.size());
  for (size_t i = 0; i < single.losses.size(); ++i) {
    // Bit-identical, not approximately equal.
    EXPECT_EQ(single.losses[i], quad.losses[i]) << "loss step " << i;
    EXPECT_EQ(single.losses[i], single_again.losses[i]) << "rerun step " << i;
  }
  EXPECT_TRUE(std::isfinite(single.losses.front()));
  EXPECT_LT(single.losses.back(), single.losses.front())
      << "training should reduce the loss";

  ASSERT_EQ(single.samples.size(), quad.samples.size());
  for (size_t i = 0; i < single.samples.size(); ++i) {
    ASSERT_EQ(single.samples[i], quad.samples[i]) << "sample " << i;
  }
  ASSERT_EQ(single.probs.size(), quad.probs.size());
  for (size_t i = 0; i < single.probs.size(); ++i) {
    ASSERT_EQ(single.probs[i], quad.probs[i]) << "recorded prob " << i;
  }
}

}  // namespace
}  // namespace restore
