#include "restore/cache.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/serialize.h"

namespace restore {

CompletionCache::CompletionCache(size_t budget_bytes, size_t num_shards)
    : budget_bytes_(budget_bytes),
      shard_budget_(budget_bytes == 0
                        ? 0
                        : std::max<size_t>(1, budget_bytes / num_shards)),
      shards_(num_shards == 0 ? 1 : num_shards) {}

std::string CompletionCache::Key(const std::set<std::string>& tables,
                                 uint64_t epoch) {
  std::string key;
  for (const auto& t : tables) {
    key += t;
    key += '|';
  }
  if (epoch != 0) {
    key += '#';
    key += std::to_string(epoch);
  }
  return key;
}

CompletionCache::Shard& CompletionCache::ShardFor(
    const std::string& key) const {
  return shards_[Fnv1a64(key.data(), key.size()) % shards_.size()];
}

size_t CompletionCache::ApproxTableBytes(const Table& table) {
  size_t bytes = sizeof(Table);
  for (const auto& col : table.columns()) {
    bytes += sizeof(Column) + col.name().size();
    bytes += col.ints().capacity() * sizeof(int64_t);
    bytes += col.doubles().capacity() * sizeof(double);
  }
  return bytes;
}

void CompletionCache::IndexAdd(const std::set<std::string>& tables,
                               const std::string& key) {
  std::lock_guard<std::mutex> lock(index_mu_);
  for (const auto& t : tables) keys_by_table_[t].insert(key);
}

void CompletionCache::IndexRemove(const std::set<std::string>& tables,
                                  const std::string& key) {
  std::lock_guard<std::mutex> lock(index_mu_);
  for (const auto& t : tables) {
    auto it = keys_by_table_.find(t);
    if (it == keys_by_table_.end()) continue;
    it->second.erase(key);
    if (it->second.empty()) keys_by_table_.erase(it);
  }
}

void CompletionCache::EvictLocked(Shard* shard, const std::string& keep) {
  if (shard_budget_ == 0) return;
  while (shard->bytes > shard_budget_ && shard->entries.size() > 1) {
    auto victim = shard->entries.end();
    uint64_t oldest = std::numeric_limits<uint64_t>::max();
    for (auto it = shard->entries.begin(); it != shard->entries.end(); ++it) {
      if (it->first == keep) continue;
      if (it->second.last_used < oldest) {
        oldest = it->second.last_used;
        victim = it;
      }
    }
    if (victim == shard->entries.end()) break;
    IndexRemove(victim->second.tables, victim->first);
    shard->bytes -= victim->second.bytes;
    shard->entries.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void CompletionCache::Put(const std::set<std::string>& tables,
                          std::shared_ptr<const Table> joined,
                          uint64_t epoch) {
  const std::string key = Key(tables, epoch);
  Entry entry;
  entry.tables = tables;
  entry.bytes = ApproxTableBytes(*joined);
  // An entry that alone exceeds the shard budget is not worth caching —
  // rejecting it up front (rather than inserting and evicting back down)
  // keeps it from flushing every other entry of its shard first.
  if (shard_budget_ != 0 && entry.bytes > shard_budget_) return;
  entry.joined = std::move(joined);
  entry.last_used = clock_.fetch_add(1, std::memory_order_relaxed);

  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    shard.bytes -= it->second.bytes;
    shard.entries.erase(it);  // same key = same table set; index entry stays
  } else {
    IndexAdd(tables, key);
  }
  shard.bytes += entry.bytes;
  shard.entries.emplace(key, std::move(entry));
  EvictLocked(&shard, key);
}

std::shared_ptr<const Table> CompletionCache::GetExact(
    const std::set<std::string>& tables, uint64_t epoch) const {
  const std::string key = Key(tables, epoch);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  it->second.last_used = clock_.fetch_add(1, std::memory_order_relaxed);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.joined;
}

std::shared_ptr<const Table> CompletionCache::GetCovering(
    const std::set<std::string>& tables, uint64_t epoch) const {
  // Candidate keys come from the per-table index: every covering entry must
  // contain each query table, so the query table with the fewest cached
  // entries bounds the scan. The snapshot is taken under index_mu_ alone
  // (never nested inside a shard mutex — see the lock-order note in the
  // header), then candidates are verified and fetched shard by shard.
  std::vector<std::string> candidates;
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    if (tables.empty()) {
      // Degenerate query: everything covers it; consider all keys.
      for (const auto& [t, keys] : keys_by_table_) {
        (void)t;
        candidates.insert(candidates.end(), keys.begin(), keys.end());
      }
    } else {
      const std::set<std::string>* anchor = nullptr;
      for (const auto& t : tables) {
        auto it = keys_by_table_.find(t);
        if (it == keys_by_table_.end()) {
          misses_.fetch_add(1, std::memory_order_relaxed);
          return nullptr;  // some query table is in no cached entry
        }
        if (anchor == nullptr || it->second.size() < anchor->size()) {
          anchor = &it->second;
        }
      }
      candidates.assign(anchor->begin(), anchor->end());
    }
  }

  // A key IS its sorted table list plus epoch suffix ("t1|t2|...|#7"):
  // epoch match, coverage, and entry size are checked on the key alone,
  // without touching any shard. Keys of other epochs are skipped — stale
  // generations must never serve a fresh query.
  const std::string suffix = epoch != 0 ? "#" + std::to_string(epoch) : "";
  std::vector<std::pair<size_t, std::string>> covering;  // (num_tables, key)
  for (auto& key : candidates) {
    if (key.size() <= suffix.size()) continue;
    const size_t parse_end = key.size() - suffix.size();
    if (key.compare(parse_end, suffix.size(), suffix) != 0) continue;
    // Epoch-0 keys end at their last '|'; a '#' before parse_end would mean
    // the key carries some other epoch.
    if (key[parse_end - 1] != '|') continue;
    size_t num_tables = 0;
    bool covers = true;
    auto query_it = tables.begin();
    size_t start = 0;
    for (size_t i = 0; i < parse_end; ++i) {
      if (key[i] != '|') continue;
      ++num_tables;
      if (query_it != tables.end() &&
          key.compare(start, i - start, *query_it) == 0) {
        ++query_it;  // both sides are sorted: one linear merge pass
      }
      start = i + 1;
    }
    covers = query_it == tables.end();
    if (covers) covering.emplace_back(num_tables, std::move(key));
  }
  std::sort(covering.begin(), covering.end());

  // Smallest covering entry first; an entry evicted since the snapshot is
  // simply skipped in favour of the next candidate.
  for (const auto& [num_tables, key] : covering) {
    (void)num_tables;
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it == shard.entries.end()) continue;
    it->second.last_used = clock_.fetch_add(1, std::memory_order_relaxed);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second.joined;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

size_t CompletionCache::size() const {
  size_t n = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.entries.size();
  }
  return n;
}

size_t CompletionCache::bytes() const {
  size_t n = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.bytes;
  }
  return n;
}

void CompletionCache::Clear() {
  // Unindex each shard's entries under that shard's mutex (the same
  // shard -> index nesting Put/evict use). A global keys_by_table_.clear()
  // after the shard loop would race with a concurrent Put into an
  // already-cleared shard, stranding its entry outside the index forever.
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, entry] : shard.entries) {
      IndexRemove(entry.tables, key);
    }
    shard.entries.clear();
    shard.bytes = 0;
  }
}

}  // namespace restore
