#ifndef RESTORE_RESTORE_INCOMPLETENESS_JOIN_H_
#define RESTORE_RESTORE_INCOMPLETENESS_JOIN_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "exec/exec_control.h"
#include "restore/annotation.h"
#include "restore/path_model.h"
#include "storage/database.h"

namespace restore {

/// Optional hooks of a completion run.
struct CompletionOptions {
  /// If set, the predictive distribution of `record_table`.`record_column`
  /// is recorded for every tuple synthesized for that table (confidence
  /// intervals, Section 6).
  std::string record_table;
  std::string record_column;
};

/// Output of a completed path join.
struct CompletionResult {
  /// The approximated complete join of all path tables; columns are
  /// qualified as "table.column".
  Table joined;
  /// Per incomplete table: the synthesized attribute columns (one Column per
  /// modeled attribute of that table, unqualified names).
  std::map<std::string, std::vector<Column>> synthesized;
  /// Per incomplete table: the number of synthesized tuples.
  std::map<std::string, size_t> synthesized_counts;
  /// Number of existing (non-synthesized) rows in the final join.
  size_t existing_join_rows = 0;
  /// Number of synthesized rows in the final join.
  size_t synthesized_join_rows = 0;
  /// Recorded predictive distributions (one row per synthesized tuple of the
  /// recorded table), when CompletionOptions requested recording.
  std::vector<std::vector<float>> recorded_probs;
};

/// Executes the incompleteness join of Section 4 / Algorithm 1: walks the
/// completion path of `model` from its (complete) root table, joining
/// existing tuples normally and synthesizing the missing ones — predicting
/// tuple factors on fan-out hops, generating one parent per orphaned row on
/// n:1 hops, and applying Euclidean nearest-neighbor replacement whenever
/// tuples were synthesized for a table annotated as complete.
class IncompletenessJoinExecutor {
 public:
  IncompletenessJoinExecutor(const Database* db,
                             const SchemaAnnotation* annotation)
      : db_(db), annotation_(annotation) {}

  /// Walks the full path of `model`, producing the completed join.
  ///
  /// `ctx` (optional) is the owning query's execution context: it is
  /// checked at every hop and inside the model sampling loops, newly
  /// synthesized tuples are charged against its max_completed_rows budget
  /// (Status::ResourceExhausted on overflow), and its ExecStats record the
  /// tuples completed and arenas leased.
  Result<CompletionResult> CompletePathJoin(
      const PathModel& model, Rng& rng,
      const CompletionOptions& options = CompletionOptions(),
      const ExecContext* ctx = nullptr);

 private:
  /// Synthesizes the non-attribute columns of the target-table part of a
  /// synthesized row block (keys, tuple factors), returning all target
  /// columns qualified and ordered like the base table.
  const Database* db_;
  const SchemaAnnotation* annotation_;
  int64_t next_synthetic_id_ = -1;
};

}  // namespace restore

#endif  // RESTORE_RESTORE_INCOMPLETENESS_JOIN_H_
