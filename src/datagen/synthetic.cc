#include "datagen/synthetic.h"

#include <algorithm>

#include "common/rng.h"
#include "common/string_util.h"
#include "restore/tuple_factor.h"

namespace restore {

Result<Database> GenerateSynthetic(const SyntheticConfig& config) {
  Rng rng(config.seed);
  Database db;

  Table table_a("table_a", {{"id", ColumnType::kInt64},
                            {"a", ColumnType::kCategorical}});
  Table table_b("table_b", {{"id", ColumnType::kInt64},
                            {"a_id", ColumnType::kInt64},
                            {"b", ColumnType::kCategorical}});

  // Deterministic mapping f: a -> b realizing the predictable component.
  auto f = [&](int a) { return (a * 7 + 3) % config.domain_b; };

  int64_t next_b_id = 0;
  for (size_t p = 0; p < config.num_parents; ++p) {
    const int a = static_cast<int>(
        rng.NextZipf(static_cast<size_t>(config.domain_a), config.zipf_skew));
    RESTORE_RETURN_IF_ERROR(table_a.AppendRow(
        {Value::Int64(static_cast<int64_t>(p)),
         Value::Categorical(StrFormat("a%d", a))}));

    // Children count around avg_fanout.
    const int lo = std::max(1, static_cast<int>(config.avg_fanout) - 2);
    const int hi =
        std::min(config.max_fanout, static_cast<int>(config.avg_fanout) + 2);
    const int fanout = static_cast<int>(rng.NextInt64(lo, hi));
    // Group value for fan-out-coherent generation.
    const int group_b =
        static_cast<int>(rng.NextUint64(static_cast<uint64_t>(config.domain_b)));
    for (int c = 0; c < fanout; ++c) {
      int b;
      if (config.fanout_predictability > 0.0) {
        b = rng.NextBernoulli(config.fanout_predictability)
                ? group_b
                : static_cast<int>(
                      rng.NextUint64(static_cast<uint64_t>(config.domain_b)));
      } else {
        b = rng.NextBernoulli(config.predictability)
                ? f(a)
                : static_cast<int>(
                      rng.NextUint64(static_cast<uint64_t>(config.domain_b)));
      }
      RESTORE_RETURN_IF_ERROR(table_b.AppendRow(
          {Value::Int64(next_b_id++), Value::Int64(static_cast<int64_t>(p)),
           Value::Categorical(StrFormat("b%d", b))}));
    }
  }

  RESTORE_RETURN_IF_ERROR(db.AddTable(std::move(table_a)));
  RESTORE_RETURN_IF_ERROR(db.AddTable(std::move(table_b)));
  RESTORE_RETURN_IF_ERROR(db.AddForeignKey("table_b", "a_id", "table_a", "id"));
  RESTORE_RETURN_IF_ERROR(
      AttachTupleFactors(&db, db.foreign_keys().front()));
  return db;
}

}  // namespace restore
