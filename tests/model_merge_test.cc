// Tests for the model-merging algorithm of Section 3.4.

#include <gtest/gtest.h>

#include "restore/model_merge.h"

namespace restore {
namespace {

TEST(ModelMergeTest, PaperExampleMerges) {
  // Completing T2 from T3, and T1 from {T2, T3}: one model suffices with
  // ordering T3 < T2 < T1 (Section 3.4's merging example).
  std::vector<CompletionTask> tasks{
      {{"t3"}, "t2"},
      {{"t2", "t3"}, "t1"},
  };
  auto merged = MergeCompletionTasks(tasks);
  ASSERT_TRUE(merged.ok()) << merged.status();
  ASSERT_EQ(merged->size(), 1u);
  const auto& order = (*merged)[0].ordering;
  ASSERT_EQ(order.size(), 3u);
  auto pos = [&](const std::string& t) {
    return std::find(order.begin(), order.end(), t) - order.begin();
  };
  EXPECT_LT(pos("t3"), pos("t2"));
  EXPECT_LT(pos("t2"), pos("t1"));
  EXPECT_LT(pos("t3"), pos("t1"));
}

TEST(ModelMergeTest, ConflictingDirectionsDoNotMerge) {
  // p(T2|T1) and p(T1|T2) have no consistent shared ordering.
  std::vector<CompletionTask> tasks{
      {{"t1"}, "t2"},
      {{"t2"}, "t1"},
  };
  auto merged = MergeCompletionTasks(tasks);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->size(), 2u);
}

TEST(ModelMergeTest, DisjointTableSetsDoNotMerge) {
  // Table sets must be subsets of each other to merge.
  std::vector<CompletionTask> tasks{
      {{"a"}, "b"},
      {{"c"}, "d"},
  };
  auto merged = MergeCompletionTasks(tasks);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->size(), 2u);
}

TEST(ModelMergeTest, OrderingRespectsEveryTask) {
  std::vector<CompletionTask> tasks{
      {{"a"}, "b"},
      {{"a", "b"}, "c"},
      {{"a", "b", "c"}, "d"},
  };
  auto merged = MergeCompletionTasks(tasks);
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->size(), 1u);
  const auto& m = (*merged)[0];
  EXPECT_EQ(m.tasks.size(), 3u);
  auto pos = [&](const std::string& t) {
    return std::find(m.ordering.begin(), m.ordering.end(), t) -
           m.ordering.begin();
  };
  for (const auto& task : m.tasks) {
    for (const auto& e : task.evidence) {
      EXPECT_LT(pos(e), pos(task.target))
          << e << " must precede " << task.target;
    }
  }
}

TEST(ModelMergeTest, IdenticalTasksCollapse) {
  std::vector<CompletionTask> tasks{
      {{"a"}, "b"},
      {{"a"}, "b"},
      {{"a"}, "b"},
  };
  auto merged = MergeCompletionTasks(tasks);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->size(), 1u);
  EXPECT_EQ((*merged)[0].tasks.size(), 3u);
}

TEST(ModelMergeTest, EmptyEvidenceRejected) {
  std::vector<CompletionTask> tasks{{{}, "b"}};
  EXPECT_FALSE(MergeCompletionTasks(tasks).ok());
}

TEST(ModelMergeTest, ReducesModelCountOnChain) {
  // A chain of per-hop completions over 5 tables merges into one model.
  std::vector<CompletionTask> tasks;
  std::vector<std::string> evidence;
  const std::vector<std::string> chain{"t1", "t2", "t3", "t4", "t5"};
  for (size_t i = 0; i + 1 < chain.size(); ++i) {
    evidence.push_back(chain[i]);
    tasks.push_back({evidence, chain[i + 1]});
  }
  auto merged = MergeCompletionTasks(tasks);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->size(), 1u);
  EXPECT_EQ((*merged)[0].ordering, chain);
}

}  // namespace
}  // namespace restore
