#ifndef RESTORE_SERVER_ADMISSION_H_
#define RESTORE_SERVER_ADMISSION_H_

// Admission control for the serving layer: a lock-free bounded in-flight
// counter. The server sheds load with HTTP 503 the moment a bound is hit
// instead of queueing unboundedly — a shed request costs one atomic CAS and
// never touches a Session, so overload degrades throughput gracefully
// rather than latency catastrophically.

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace restore {
namespace server {

/// Bounds concurrently admitted work. TryAcquire/Release pairs guard one
/// unit (a query in flight, a connection); counters expose totals for
/// /metrics. Thread-safe; all operations are wait-free.
class AdmissionController {
 public:
  /// `max_inflight` == 0 means unbounded (TryAcquire always succeeds).
  explicit AdmissionController(size_t max_inflight)
      : max_inflight_(max_inflight) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Admits one unit unless the bound is reached. On refusal the shed
  /// counter is bumped and nothing needs releasing.
  bool TryAcquire() {
    if (max_inflight_ == 0) {
      inflight_.fetch_add(1, std::memory_order_relaxed);
      admitted_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    size_t current = inflight_.load(std::memory_order_relaxed);
    while (true) {
      if (current >= max_inflight_) {
        shed_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      if (inflight_.compare_exchange_weak(current, current + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
        admitted_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }

  /// Releases one previously admitted unit.
  void Release() { inflight_.fetch_sub(1, std::memory_order_acq_rel); }

  size_t max_inflight() const { return max_inflight_; }
  size_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  uint64_t admitted_total() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  uint64_t shed_total() const { return shed_.load(std::memory_order_relaxed); }

 private:
  const size_t max_inflight_;
  std::atomic<size_t> inflight_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> shed_{0};
};

/// RAII holder of one admission unit.
class AdmissionSlot {
 public:
  AdmissionSlot() = default;
  explicit AdmissionSlot(AdmissionController* controller)
      : controller_(controller) {}
  AdmissionSlot(AdmissionSlot&& other) noexcept
      : controller_(other.controller_) {
    other.controller_ = nullptr;
  }
  AdmissionSlot& operator=(AdmissionSlot&& other) noexcept {
    if (this != &other) {
      Release();
      controller_ = other.controller_;
      other.controller_ = nullptr;
    }
    return *this;
  }
  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;
  ~AdmissionSlot() { Release(); }

  bool held() const { return controller_ != nullptr; }
  void Release() {
    if (controller_ != nullptr) {
      controller_->Release();
      controller_ = nullptr;
    }
  }

 private:
  AdmissionController* controller_ = nullptr;
};

}  // namespace server
}  // namespace restore

#endif  // RESTORE_SERVER_ADMISSION_H_
