// The distribution-equivalence gate must have teeth: bit-identical twin Dbs
// PASS, a deliberately perturbed model (seeded weight noise) FAILS. This is
// the acceptance harness for relaxed-exactness work (ROADMAP directions 2
// and 4): changes that keep distributions intact clear it, changes that
// corrupt the learned model do not.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/incompleteness.h"
#include "datagen/synthetic.h"
#include "restore/db.h"
#include "stats/equivalence.h"

namespace restore {
namespace {

EngineConfig FastConfig() {
  EngineConfig config;
  config.model.epochs = 4;
  config.model.min_train_steps = 120;
  config.model.hidden_dim = 24;
  config.model.embed_dim = 4;
  config.model.max_bins = 12;
  config.max_candidates = 2;
  return config;
}

Database MakeIncompleteSynthetic(uint64_t seed) {
  SyntheticConfig data_config;
  data_config.num_parents = 200;
  data_config.predictability = 0.85;
  data_config.seed = seed;
  auto complete = GenerateSynthetic(data_config);
  EXPECT_TRUE(complete.ok());
  BiasedRemovalConfig removal;
  removal.table = "table_b";
  removal.column = "b";
  removal.keep_rate = 0.5;
  removal.removal_correlation = 0.5;
  removal.seed = seed + 1;
  auto incomplete = ApplyBiasedRemoval(*complete, removal);
  EXPECT_TRUE(incomplete.ok());
  return std::move(incomplete).value();
}

SchemaAnnotation Annotation() {
  SchemaAnnotation annotation;
  annotation.MarkIncomplete("table_b");
  return annotation;
}

const std::vector<std::string> kWorkload = {
    "SELECT COUNT(*) FROM table_b GROUP BY b;",
    "SELECT COUNT(*) FROM table_a NATURAL JOIN table_b GROUP BY b;",
};

TEST(EquivalenceHarnessTest, TwinDbsAreEquivalent) {
  Database a = MakeIncompleteSynthetic(601);
  Database b = MakeIncompleteSynthetic(601);
  auto db_a = Db::Open(&a, Annotation(), DbOptions().WithEngine(FastConfig()));
  auto db_b = Db::Open(&b, Annotation(), DbOptions().WithEngine(FastConfig()));
  ASSERT_TRUE(db_a.ok() && db_b.ok());

  auto report =
      CompareDistributionEquivalence(db_a->get(), db_b->get(), kWorkload);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->equivalent) << report->Describe();
  EXPECT_FALSE(report->columns.empty());
  EXPECT_EQ(report->queries.size(), kWorkload.size());
  for (const QueryComparison& q : report->queries) {
    EXPECT_TRUE(q.pass) << q.sql;
    EXPECT_TRUE(q.groups_match);
    // Twins are bit-identical, so the deltas are exactly zero — not merely
    // under the tolerance.
    EXPECT_EQ(q.max_rel_delta, 0.0);
  }
}

TEST(EquivalenceHarnessTest, PerturbedModelFailsTheGate) {
  Database a = MakeIncompleteSynthetic(603);
  Database b = MakeIncompleteSynthetic(603);
  auto db_a = Db::Open(&a, Annotation(), DbOptions().WithEngine(FastConfig()));
  auto db_b = Db::Open(&b, Annotation(), DbOptions().WithEngine(FastConfig()));
  ASSERT_TRUE(db_a.ok() && db_b.ok());

  // Force training on b so there are weights to corrupt, then inject heavy
  // seeded Gaussian noise into every parameter.
  for (const auto& sql : kWorkload) {
    ASSERT_TRUE((*db_b)->ExecuteCompletedSql(sql).ok());
  }
  ASSERT_TRUE((*db_b)->PerturbModelsForTest(1.0f, 99).ok());

  auto report =
      CompareDistributionEquivalence(db_a->get(), db_b->get(), kWorkload);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->equivalent)
      << "the gate accepted a model with randomized weights";
  EXPECT_FALSE(report->Describe().empty());
}

TEST(EquivalenceHarnessTest, PerturbationItselfIsDeterministic) {
  // Same seed -> same perturbed model -> two independently perturbed twins
  // are equivalent to EACH OTHER (the gate flags divergence from the
  // reference, not nondeterminism of the test fixture).
  Database a = MakeIncompleteSynthetic(605);
  Database b = MakeIncompleteSynthetic(605);
  auto db_a = Db::Open(&a, Annotation(), DbOptions().WithEngine(FastConfig()));
  auto db_b = Db::Open(&b, Annotation(), DbOptions().WithEngine(FastConfig()));
  ASSERT_TRUE(db_a.ok() && db_b.ok());
  for (auto* db : {db_a->get(), db_b->get()}) {
    ASSERT_TRUE(db->ExecuteCompletedSql(kWorkload[0]).ok());
    ASSERT_TRUE(db->PerturbModelsForTest(0.05f, 1234).ok());
  }
  auto report =
      CompareDistributionEquivalence(db_a->get(), db_b->get(), kWorkload);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->equivalent) << report->Describe();
}

}  // namespace
}  // namespace restore
