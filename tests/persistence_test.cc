// Model-persistence tests: a Db saved with SaveModels and reopened from
// model_dir in a fresh Db must answer queries bit-identically with ZERO
// training, and corrupted/truncated model files must be rejected at open.

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/serialize.h"
#include "datagen/incompleteness.h"
#include "datagen/synthetic.h"
#include "restore/db.h"
#include "stats/histogram.h"

namespace restore {
namespace {

EngineConfig FastConfig() {
  EngineConfig config;
  config.model.epochs = 4;
  config.model.min_train_steps = 120;
  config.model.hidden_dim = 24;
  config.model.embed_dim = 4;
  config.model.max_bins = 12;
  config.max_candidates = 2;
  return config;
}

Database MakeIncompleteSynthetic(uint64_t seed) {
  SyntheticConfig data_config;
  data_config.num_parents = 250;
  data_config.predictability = 0.85;
  data_config.seed = seed;
  auto complete = GenerateSynthetic(data_config);
  EXPECT_TRUE(complete.ok());
  BiasedRemovalConfig removal;
  removal.table = "table_b";
  removal.column = "b";
  removal.keep_rate = 0.5;
  removal.removal_correlation = 0.5;
  removal.seed = seed + 1;
  auto incomplete = ApplyBiasedRemoval(*complete, removal);
  EXPECT_TRUE(incomplete.ok());
  EXPECT_TRUE(ThinTupleFactors(&*incomplete, 0.3, seed + 2).ok());
  return std::move(incomplete).value();
}

SchemaAnnotation Annotation() {
  SchemaAnnotation annotation;
  annotation.MarkIncomplete("table_b");
  return annotation;
}

void RemoveTree(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    const std::string path = dir + "/" + name;
    struct stat st;
    if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      RemoveTree(path);
    } else {
      std::remove(path.c_str());
    }
  }
  ::closedir(d);
  ::rmdir(dir.c_str());
}

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/restore_" + name;
  RemoveTree(dir);  // stale generations from a previous run
  return dir;
}

void ExpectSameResults(const ResultSet& a, const ResultSet& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_value_columns(), b.num_value_columns());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_key_columns(); ++c) {
      EXPECT_EQ(a.key(r, c), b.key(r, c));
    }
    for (size_t c = 0; c < a.num_value_columns(); ++c) {
      // Bit-identical, not approximately equal.
      EXPECT_EQ(a.value(r, c), b.value(r, c));
    }
  }
}

TEST(PersistenceTest, ReopenedDbAnswersBitIdenticallyWithoutTraining) {
  Database incomplete = MakeIncompleteSynthetic(301);
  const std::string sql1 =
      "SELECT COUNT(*) FROM table_a NATURAL JOIN table_b GROUP BY b;";
  const std::string sql2 = "SELECT COUNT(*) FROM table_b GROUP BY b;";

  auto db = Db::Open(&incomplete, Annotation(), DbOptions().WithEngine(FastConfig()));
  ASSERT_TRUE(db.ok()) << db.status();
  auto r1 = (*db)->ExecuteCompletedSql(sql1);
  auto r2 = (*db)->ExecuteCompletedSql(sql2);
  ASSERT_TRUE(r1.ok()) << r1.status();
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_GT((*db)->models_trained(), 0u);
  EXPECT_GT((*db)->total_train_seconds(), 0.0);

  const std::string dir = FreshDir("roundtrip");
  ASSERT_TRUE((*db)->SaveModels(dir).ok());

  // Reopen from disk (standing in for a fresh process: nothing but the
  // original incomplete database and the model directory is reused).
  DbOptions options;
  options.engine = FastConfig();
  options.model_dir = dir;
  auto reopened = Db::Open(&incomplete, Annotation(), options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_GT((*reopened)->models_loaded(), 0u);

  auto q1 = (*reopened)->ExecuteCompletedSql(sql1);
  auto q2 = (*reopened)->ExecuteCompletedSql(sql2);
  ASSERT_TRUE(q1.ok()) << q1.status();
  ASSERT_TRUE(q2.ok()) << q2.status();

  // Zero training on the reopened Db: every needed model came from disk.
  EXPECT_EQ((*reopened)->models_trained(), 0u);
  EXPECT_EQ((*reopened)->total_train_seconds(), 0.0);

  ExpectSameResults(*r1, *q1);
  ExpectSameResults(*r2, *q2);

  // The completed table itself must round-trip cell-for-cell.
  auto t1 = (*db)->CompleteTable("table_b");
  auto t2 = (*reopened)->CompleteTable("table_b");
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  ASSERT_EQ(t1->NumRows(), t2->NumRows());
  ASSERT_EQ(t1->NumColumns(), t2->NumColumns());
  for (size_t c = 0; c < t1->NumColumns(); ++c) {
    const Column& a = t1->column(c);
    const Column& b = t2->column(c);
    ASSERT_EQ(a.name(), b.name());
    for (size_t r = 0; r < t1->NumRows(); ++r) {
      if (a.IsNull(r)) {
        EXPECT_TRUE(b.IsNull(r));
      } else if (a.type() == ColumnType::kDouble) {
        EXPECT_EQ(a.GetDouble(r), b.GetDouble(r)) << a.name() << " row " << r;
      } else {
        EXPECT_EQ(a.GetInt64(r), b.GetInt64(r)) << a.name() << " row " << r;
      }
    }
  }
}

TEST(PersistenceTest, SsarModelWithConfidenceRecordingRoundTrips) {
  Database incomplete = MakeIncompleteSynthetic(303);
  EngineConfig config = FastConfig();
  config.model.use_ssar = true;

  auto db = Db::Open(&incomplete, Annotation(), DbOptions().WithEngine(config));
  ASSERT_TRUE(db.ok()) << db.status();
  const std::vector<std::string> path{"table_a", "table_b"};
  auto model = (*db)->ModelForPath(path);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_TRUE((*model)->is_ssar());

  CompletionOptions record;
  record.record_table = "table_b";
  record.record_column = "b";
  auto completion = (*db)->CompleteViaPath(path, record);
  ASSERT_TRUE(completion.ok()) << completion.status();

  const std::string dir = FreshDir("ssar");
  ASSERT_TRUE((*db)->SaveModels(dir).ok());

  DbOptions options;
  options.engine = config;
  options.model_dir = dir;
  auto reopened = Db::Open(&incomplete, Annotation(), options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  auto reloaded = (*reopened)->ModelForPath(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_TRUE((*reloaded)->is_ssar());
  EXPECT_EQ((*reopened)->models_trained(), 0u);

  auto completion2 = (*reopened)->CompleteViaPath(path, record);
  ASSERT_TRUE(completion2.ok()) << completion2.status();

  // Confidence machinery inputs must be bit-identical: the recorded
  // predictive distributions of every synthesized tuple...
  ASSERT_EQ(completion->recorded_probs.size(),
            completion2->recorded_probs.size());
  for (size_t i = 0; i < completion->recorded_probs.size(); ++i) {
    ASSERT_EQ(completion->recorded_probs[i], completion2->recorded_probs[i])
        << "recorded distribution " << i;
  }
  // ...and the training marginal (the P_incomplete of Section 6).
  const int attr = (*model)->FindAttr("table_b", "b");
  ASSERT_GE(attr, 0);
  EXPECT_EQ((*model)->TrainMarginal(static_cast<size_t>(attr)),
            (*reloaded)->TrainMarginal(static_cast<size_t>(attr)));
  EXPECT_EQ((*model)->test_loss(), (*reloaded)->test_loss());
  EXPECT_EQ((*model)->target_test_loss(), (*reloaded)->target_test_loss());
  EXPECT_EQ((*model)->num_parameters(), (*reloaded)->num_parameters());
}

TEST(PersistenceTest, MismatchedEngineConfigIsRejectedAtOpen) {
  Database incomplete = MakeIncompleteSynthetic(311);
  auto db = Db::Open(&incomplete, Annotation(), DbOptions().WithEngine(FastConfig()));
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE((*db)
                  ->ExecuteCompletedSql(
                      "SELECT COUNT(*) FROM table_b GROUP BY b;")
                  .ok());
  const std::string dir = FreshDir("fingerprint");
  ASSERT_TRUE((*db)->SaveModels(dir).ok());

  // Opening under a DIFFERENT model architecture must fail with the
  // config-fingerprint error — a clear Status at open, not a shape-check
  // surprise on the first query.
  DbOptions options;
  options.engine = FastConfig();
  options.engine.model.hidden_dim += 8;
  options.model_dir = dir;
  auto mismatched = Db::Open(&incomplete, Annotation(), options);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_NE(mismatched.status().message().find("engine configuration"),
            std::string::npos)
      << mismatched.status();

  // Training-schedule changes alter the trained parameters just as much as
  // architecture changes; they are fingerprinted too.
  options.engine = FastConfig();
  options.engine.model.epochs += 1;
  auto schedule_mismatch = Db::Open(&incomplete, Annotation(), options);
  ASSERT_FALSE(schedule_mismatch.ok());
  EXPECT_NE(schedule_mismatch.status().message().find("engine configuration"),
            std::string::npos);

  // Fields that do not change what a trained model is (cache budget,
  // selection-independent knobs) must NOT invalidate saved models.
  options.engine = FastConfig();
  options.engine.cache_budget_bytes = 9999999;
  auto compatible = Db::Open(&incomplete, Annotation(), options);
  ASSERT_TRUE(compatible.ok()) << compatible.status();
  EXPECT_GT((*compatible)->models_loaded(), 0u);

  // The fingerprint itself: stable under copies, sensitive to every model
  // hyperparameter.
  EngineConfig base = FastConfig();
  EXPECT_EQ(EngineConfigFingerprint(base), EngineConfigFingerprint(base));
  EngineConfig other = base;
  other.model.embed_dim += 1;
  EXPECT_NE(EngineConfigFingerprint(base), EngineConfigFingerprint(other));
  other = base;
  other.seed += 1;
  EXPECT_NE(EngineConfigFingerprint(base), EngineConfigFingerprint(other));
  // The manifest persists per-target path selections — the selection
  // strategy's output — so the strategy is part of the fingerprint too.
  other = base;
  other.selection = SelectionStrategy::kFirst;
  EXPECT_NE(EngineConfigFingerprint(base), EngineConfigFingerprint(other));
  other = base;
  other.cache_budget_bytes += 1;
  EXPECT_EQ(EngineConfigFingerprint(base), EngineConfigFingerprint(other));
}

TEST(PersistenceTest, CorruptedModelFileIsRejected) {
  Database incomplete = MakeIncompleteSynthetic(305);
  auto db = Db::Open(&incomplete, Annotation(), DbOptions().WithEngine(FastConfig()));
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->ExecuteCompletedSql(
                      "SELECT COUNT(*) FROM table_b GROUP BY b;")
                  .ok());
  const std::string dir = FreshDir("corrupt");
  ASSERT_TRUE((*db)->SaveModels(dir).ok());

  // Flip one byte in the middle of a model file's payload (models live in
  // the committed generation directory).
  auto gen_dir = CurrentModelGenerationDir(dir);
  ASSERT_TRUE(gen_dir.ok()) << gen_dir.status();
  auto manifest = ReadChecksummedFile(*gen_dir + "/restore_models.manifest",
                                      kManifestMagic, kManifestVersion);
  ASSERT_TRUE(manifest.ok());
  BinaryReader r(std::move(manifest).value());
  r.U64();  // engine-config fingerprint
  const uint64_t num_models = r.U64();
  ASSERT_GT(num_models, 0u);
  const std::string key = r.Str();
  const std::string filename = r.Str();
  (void)key;
  const std::string model_path = *gen_dir + "/" + filename;
  std::string contents;
  {
    std::ifstream in(model_path, std::ios::binary);
    contents.assign((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  }
  ASSERT_GT(contents.size(), 64u);
  contents[contents.size() / 2] ^= 0x5a;
  {
    std::ofstream out(model_path, std::ios::binary | std::ios::trunc);
    out << contents;
  }

  DbOptions options;
  options.engine = FastConfig();
  options.model_dir = dir;
  auto reopened = Db::Open(&incomplete, Annotation(), options);
  ASSERT_FALSE(reopened.ok());
  EXPECT_NE(reopened.status().message().find("checksum"), std::string::npos)
      << reopened.status();
}

TEST(PersistenceTest, TruncatedModelFileIsRejected) {
  Database incomplete = MakeIncompleteSynthetic(307);
  auto db = Db::Open(&incomplete, Annotation(), DbOptions().WithEngine(FastConfig()));
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->ModelForPath({"table_a", "table_b"}).ok());
  const std::string dir = FreshDir("truncate");
  ASSERT_TRUE((*db)->SaveModels(dir).ok());

  auto gen_dir = CurrentModelGenerationDir(dir);
  ASSERT_TRUE(gen_dir.ok()) << gen_dir.status();
  auto manifest = ReadChecksummedFile(*gen_dir + "/restore_models.manifest",
                                      kManifestMagic, kManifestVersion);
  ASSERT_TRUE(manifest.ok());
  BinaryReader r(std::move(manifest).value());
  r.U64();  // engine-config fingerprint
  ASSERT_GT(r.U64(), 0u);
  r.Str();  // path key
  const std::string model_path = *gen_dir + "/" + r.Str();
  std::string contents;
  {
    std::ifstream in(model_path, std::ios::binary);
    contents.assign((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  }
  {
    std::ofstream out(model_path, std::ios::binary | std::ios::trunc);
    out << contents.substr(0, contents.size() / 2);
  }

  DbOptions options;
  options.engine = FastConfig();
  options.model_dir = dir;
  auto reopened = Db::Open(&incomplete, Annotation(), options);
  ASSERT_FALSE(reopened.ok());
  EXPECT_NE(reopened.status().message().find("truncated"), std::string::npos)
      << reopened.status();
}

TEST(PersistenceTest, PreDriftV3ManifestStillLoads) {
  // Backward compatibility of manifest v4 (which appended per-model drift
  // reference summaries): a v3 manifest — rebuilt here by stripping the
  // summary section from a fresh save and re-framing at version 3 — must
  // still load, with drift simply reported unavailable.
  Database incomplete = MakeIncompleteSynthetic(311);
  auto db = Db::Open(&incomplete, Annotation(),
                     DbOptions().WithEngine(FastConfig()));
  ASSERT_TRUE(db.ok());
  auto answer = (*db)->ExecuteCompletedSql(
      "SELECT COUNT(*) FROM table_b GROUP BY b;");
  ASSERT_TRUE(answer.ok());
  const std::string dir = FreshDir("v3_manifest");
  ASSERT_TRUE((*db)->SaveModels(dir).ok());

  auto gen_dir = CurrentModelGenerationDir(dir);
  ASSERT_TRUE(gen_dir.ok()) << gen_dir.status();
  const std::string manifest_path = *gen_dir + "/restore_models.manifest";
  uint32_t version = 0;
  auto payload = ReadChecksummedFile(manifest_path, kManifestMagic,
                                    kManifestVersion, &version);
  ASSERT_TRUE(payload.ok()) << payload.status();
  ASSERT_EQ(version, kManifestVersion);

  BinaryReader r(std::move(payload).value());
  BinaryWriter w;
  w.U64(r.U64());  // engine-config fingerprint
  const uint64_t num_models = r.U64();
  w.U64(num_models);
  ASSERT_GT(num_models, 0u);
  for (uint64_t i = 0; i < num_models; ++i) {
    w.Str(r.Str());  // path key
    w.Str(r.Str());  // filename
    w.U64(r.U64());  // generation
    w.U64(r.U64());  // trained rows
    w.F64(r.F64());  // train seconds
    const uint64_t num_summaries = r.U64();
    EXPECT_GT(num_summaries, 0u);  // v4 saves reference summaries
    for (uint64_t s = 0; s < num_summaries; ++s) {
      auto summary = ColumnSummary::Load(&r);  // consumed, not re-emitted
      ASSERT_TRUE(summary.ok()) << summary.status();
    }
  }
  const uint64_t num_selections = r.U64();
  w.U64(num_selections);
  for (uint64_t i = 0; i < num_selections; ++i) {
    w.Str(r.Str());
    w.VecStr(r.VecStr());
  }
  ASSERT_TRUE(r.status().ok()) << r.status();
  ASSERT_TRUE(r.AtEnd());
  ASSERT_TRUE(
      WriteChecksummedFileAtomic(manifest_path, kManifestMagic,
                                 kManifestVersion - 1, w.buffer())
          .ok());

  auto reopened = Db::Open(&incomplete, Annotation(),
                           DbOptions().WithEngine(FastConfig()).WithModelDir(
                               dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_GT((*reopened)->models_loaded(), 0u);
  for (const ModelInfo& info : (*reopened)->Freshness()) {
    EXPECT_TRUE(info.loaded_from_disk);
    EXPECT_FALSE(info.drift_available);
    EXPECT_EQ(info.drift_ks, 0.0);
  }
  // And it answers exactly like the Db that trained the models.
  auto reopened_answer = (*reopened)->ExecuteCompletedSql(
      "SELECT COUNT(*) FROM table_b GROUP BY b;");
  ASSERT_TRUE(reopened_answer.ok());
  ASSERT_EQ(answer->num_rows(), reopened_answer->num_rows());

  // A drift-triggered refresh can never fire without a reference: the sync
  // sweep is a no-op even though data moved.
  RefreshPolicy drift;
  drift.trigger = RefreshPolicy::Trigger::kDrift;
  drift.max_concurrent_retrains = 0;
  Database grown = incomplete.Clone();
  {
    auto table = grown.GetMutableTable("table_b");
    ASSERT_TRUE(table.ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE((*table)
                      ->AppendRow({Value::Int64(700000 + i), Value::Int64(i),
                                   Value::Categorical("unseen")})
                      .ok());
    }
  }
  auto drifted = Db::Open(&grown, Annotation(),
                          DbOptions()
                              .WithEngine(FastConfig())
                              .WithModelDir(dir)
                              .WithRefreshPolicy(drift));
  ASSERT_TRUE(drifted.ok()) << drifted.status();
  ASSERT_TRUE((*drifted)->RefreshStaleModels().ok());
  EXPECT_EQ((*drifted)->stats().models_refreshed, 0u);
}

TEST(PersistenceTest, MissingManifestIsRejected) {
  Database incomplete = MakeIncompleteSynthetic(309);
  DbOptions options;
  options.engine = FastConfig();
  options.model_dir = testing::TempDir() + "/restore_no_such_dir";
  auto db = Db::Open(&incomplete, Annotation(), options);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsNotFound()) << db.status();
}

}  // namespace
}  // namespace restore
