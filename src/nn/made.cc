#include "nn/made.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/thread_pool.h"

namespace restore {

namespace {

// Gradient of logits is scaled by 1/batch so the loss is a per-row mean.
// Rows are sharded across the thread pool; each shard accumulates its own
// partial loss, and partials are reduced in shard order afterwards.
void SoftmaxCrossEntropySlice(const Matrix& logits, const IntMatrix& targets,
                              size_t attr, size_t begin, size_t end,
                              float inv_batch, float* loss_out,
                              Matrix* dlogits) {
  const size_t batch = logits.rows();
  const size_t grain = LossRowGrain(end - begin);
  const size_t shards = batch == 0 ? 0 : (batch + grain - 1) / grain;
  std::vector<float> partial(shards, 0.0f);
  ParallelFor(0, batch, grain, [&](size_t lo, size_t hi) {
    float loss = 0.0f;
    for (size_t r = lo; r < hi; ++r) {
      const float* row = logits.row(r);
      float max_v = row[begin];
      for (size_t c = begin; c < end; ++c) max_v = std::max(max_v, row[c]);
      float sum = 0.0f;
      for (size_t c = begin; c < end; ++c) sum += std::exp(row[c] - max_v);
      const float log_sum = std::log(sum) + max_v;
      const size_t target = begin + static_cast<size_t>(targets.at(r, attr));
      assert(target < end);
      loss += log_sum - row[target];
      if (dlogits != nullptr) {
        float* drow = dlogits->row(r);
        for (size_t c = begin; c < end; ++c) {
          const float p = std::exp(row[c] - log_sum);
          drow[c] = p * inv_batch;
        }
        drow[target] -= inv_batch;
      }
    }
    partial[lo / grain] = loss;
  });
  float loss = 0.0f;
  for (float p : partial) loss += p;
  *loss_out = loss * inv_batch;
}

}  // namespace

MadeModel::MadeModel(MadeConfig config, Rng& rng)
    : config_(std::move(config)) {
  assert(!config_.vocab_sizes.empty());
  assert(config_.num_layers >= 1);
  offsets_.resize(num_attrs() + 1, 0);
  for (size_t i = 0; i < num_attrs(); ++i) {
    offsets_[i + 1] = offsets_[i] + static_cast<size_t>(vocab_size(i));
  }
  embed_ = EmbeddingSet(config_.vocab_sizes, config_.embed_dim, rng);
  has_context_ = config_.context_dim > 0;

  hidden_.reserve(config_.num_layers);
  for (size_t l = 0; l < config_.num_layers; ++l) {
    hidden_.emplace_back(l == 0 ? BuildInputMask() : BuildHiddenMask(), rng);
    if (has_context_) {
      ctx_hidden_.emplace_back(config_.context_dim, config_.hidden_dim, rng);
    }
  }
  out_ = MaskedDense(BuildOutputMask(), rng);
  if (has_context_) {
    ctx_out_ = Dense(config_.context_dim, total_vocab(), rng);
  }
}

int MadeModel::HiddenDegree(size_t unit) const {
  const size_t n = num_attrs();
  if (n <= 1) return 0;
  return static_cast<int>(unit % (n - 1));
}

Matrix MadeModel::BuildInputMask() const {
  // Input unit (attr i, embed slot) -> hidden unit: allowed if
  // hidden_degree >= i.
  Matrix mask(embed_.output_dim(), config_.hidden_dim);
  for (size_t a = 0; a < num_attrs(); ++a) {
    for (size_t e = 0; e < config_.embed_dim; ++e) {
      const size_t in_unit = a * config_.embed_dim + e;
      for (size_t h = 0; h < config_.hidden_dim; ++h) {
        if (HiddenDegree(h) >= static_cast<int>(a)) {
          mask.at(in_unit, h) = 1.0f;
        }
      }
    }
  }
  return mask;
}

Matrix MadeModel::BuildHiddenMask() const {
  Matrix mask(config_.hidden_dim, config_.hidden_dim);
  for (size_t from = 0; from < config_.hidden_dim; ++from) {
    for (size_t to = 0; to < config_.hidden_dim; ++to) {
      if (HiddenDegree(to) >= HiddenDegree(from)) mask.at(from, to) = 1.0f;
    }
  }
  return mask;
}

Matrix MadeModel::BuildOutputMask() const {
  // Hidden unit -> output block of attr i: allowed if degree < i.
  Matrix mask(config_.hidden_dim, total_vocab());
  for (size_t h = 0; h < config_.hidden_dim; ++h) {
    const int deg = HiddenDegree(h);
    for (size_t a = 0; a < num_attrs(); ++a) {
      if (deg < static_cast<int>(a)) {
        for (size_t c = offsets_[a]; c < offsets_[a + 1]; ++c) {
          mask.at(h, c) = 1.0f;
        }
      }
    }
  }
  return mask;
}

void MadeModel::Forward(const IntMatrix& codes, const Matrix& context,
                        Matrix* logits, bool for_backward) {
  assert(codes.cols() == num_attrs());
  assert(!has_context_ || (context.rows() == codes.rows() &&
                           context.cols() == config_.context_dim));
  embed_.Forward(codes, &x0_, for_backward);
  if (relu_.size() != config_.num_layers) {
    relu_.assign(config_.num_layers, Matrix());
    h_.assign(config_.num_layers, Matrix());
  }

  const Matrix* prev = &x0_;
  for (size_t l = 0; l < config_.num_layers; ++l) {
    Matrix& z = relu_[l];  // activation buffers persist across calls
    hidden_[l].Forward(*prev, &z, for_backward);
    if (has_context_) {
      ctx_hidden_[l].Forward(context, &ctx_scratch_, for_backward);
      AddInPlace(ctx_scratch_, &z);
    }
    ReluInPlace(&z);
    if (l == 0) {
      // No residual into the first layer: its post-activation IS relu_[0].
      prev = &relu_[0];
    } else {
      // Residual connection (same width, same degree assignment per layer).
      h_[l] = relu_[l];
      AddInPlace(l == 1 ? relu_[0] : h_[l - 1], &h_[l]);
      prev = &h_[l];
    }
  }
  out_.Forward(*prev, logits, for_backward);
  if (has_context_) {
    ctx_out_.Forward(context, &ctx_out_scratch_, for_backward);
    AddInPlace(ctx_out_scratch_, logits);
  }
}

const Matrix* MadeModel::ForwardHiddenFrom(const Matrix* prev,
                                           size_t start_layer,
                                           const Matrix& context,
                                           MadeScratch* scratch) const {
  for (size_t l = start_layer; l < config_.num_layers; ++l) {
    if (!has_context_) {
      // Fused epilogue: relu(gemm + bias) [+ residual] applied in the
      // kernel's store phase — bit-identical to the separate passes below
      // (see MatMulFused), minus three activation sweeps per layer. The
      // residual of layer l is its own input, so `prev` doubles as both.
      if (l == 0) {
        hidden_[0].ForwardInferenceFused(*prev, /*relu=*/true,
                                         /*residual=*/nullptr,
                                         &scratch->relu[0]);
        prev = &scratch->relu[0];
      } else {
        hidden_[l].ForwardInferenceFused(*prev, /*relu=*/true,
                                         /*residual=*/prev, &scratch->h[l]);
        prev = &scratch->h[l];
      }
      continue;
    }
    // Conditional models interleave the context projection between the GEMM
    // and the relu, so the epilogue cannot fuse past the bias; keep the
    // original op sequence.
    Matrix& z = scratch->relu[l];
    hidden_[l].ForwardInference(*prev, &z);
    ctx_hidden_[l].ForwardInference(context, &scratch->ctx);
    AddInPlace(scratch->ctx, &z);
    ReluInPlace(&z);
    if (l == 0) {
      prev = &scratch->relu[0];
    } else {
      scratch->h[l] = scratch->relu[l];
      AddInPlace(l == 1 ? scratch->relu[0] : scratch->h[l - 1],
                 &scratch->h[l]);
      prev = &scratch->h[l];
    }
  }
  return prev;
}

const Matrix* MadeModel::ForwardTrunk(const IntMatrix& codes,
                                      const Matrix& context,
                                      MadeScratch* scratch,
                                      int changed_attr) const {
  assert(codes.cols() == num_attrs());
  assert(!has_context_ || (context.rows() == codes.rows() &&
                           context.cols() == config_.context_dim));
  if (changed_attr >= 0 && scratch->x0.rows() == codes.rows() &&
      scratch->x0.cols() == embed_.output_dim()) {
    // Within one SampleRange loop only the just-sampled attribute's column
    // changed, so only its embedding block needs re-gathering — a pure copy,
    // byte-identical to the full gather.
    embed_.ForwardInferenceColumn(codes, static_cast<size_t>(changed_attr),
                                  &scratch->x0);
  } else {
    embed_.ForwardInference(codes, &scratch->x0);
  }
  if (scratch->relu.size() != config_.num_layers) {
    scratch->relu.assign(config_.num_layers, Matrix());
    scratch->h.assign(config_.num_layers, Matrix());
  }
  return ForwardHiddenFrom(&scratch->x0, 0, context, scratch);
}

// Mirrors the training Forward op for op (same kernels over the same masked
// weights, so logits are bit-identical), but every buffer it writes lives in
// `scratch` and every layer call is the const inference path.
void MadeModel::Forward(const IntMatrix& codes, const Matrix& context,
                        Matrix* logits, MadeScratch* scratch) const {
  const Matrix* prev = ForwardTrunk(codes, context, scratch);
  out_.ForwardInference(*prev, logits);
  if (has_context_) {
    ctx_out_.ForwardInference(context, &scratch->ctx_out);
    AddInPlace(scratch->ctx_out, logits);
  }
}

// Shared output stage of the sliced paths: attribute `attr`'s logit block
// from the final hidden activation, plus the context projection's slice.
void MadeModel::EmitLogitsSlice(const Matrix& hidden, const Matrix& context,
                                size_t attr, Matrix* logits,
                                MadeScratch* scratch) const {
  const size_t begin = offsets_[attr];
  const size_t end = offsets_[attr + 1];
  out_.ForwardInferenceSlice(hidden, begin, end, logits);
  if (has_context_) {
    ctx_out_.ForwardInferenceSlice(context, begin, end, &scratch->ctx_out);
    AddInPlaceCols(scratch->ctx_out, begin, end, logits);
  }
}

// The sampling fast path: the hidden trunk runs in full (its activations
// feed every later attribute), but the output layer computes only the
// active attribute's logit block — column-sliced kernels over the same
// frozen weights produce bit-identical values (see MatMulColsSlice), so
// this IS the default and the determinism suites keep pinning it.
void MadeModel::ForwardLogitsSlice(const IntMatrix& codes,
                                   const Matrix& context, size_t attr,
                                   int changed_attr, Matrix* logits,
                                   MadeScratch* scratch) const {
  const Matrix* prev = ForwardTrunk(codes, context, scratch, changed_attr);
  EmitLogitsSlice(*prev, context, attr, logits, scratch);
}

void MadeModel::ForwardLogitsSliceIncremental(const IntMatrix& codes,
                                              const Matrix& context,
                                              size_t attr, int changed_attr,
                                              Matrix* logits,
                                              MadeScratch* scratch) const {
  assert(codes.cols() == num_attrs());
  if (scratch->relu.size() != config_.num_layers) {
    scratch->relu.assign(config_.num_layers, Matrix());
    scratch->h.assign(config_.num_layers, Matrix());
  }
  if (changed_attr < 0) {
    // Cold start: full embed + first layer, capturing the pre-activation.
    embed_.ForwardInference(codes, &scratch->x0);
    hidden_[0].ForwardInferenceFused(scratch->x0, /*relu=*/false,
                                     /*residual=*/nullptr, &scratch->z1_lin);
    if (has_context_) {
      ctx_hidden_[0].ForwardInference(context, &scratch->ctx);
      AddInPlace(scratch->ctx, &scratch->z1_lin);
    }
  } else {
    // Only `changed_attr`'s embedding block of x0 differs from the codes
    // z1_lin was computed for: diff the embeddings, patch x0 in place, and
    // push the delta through that block's rows of the masked weights.
    const size_t batch = codes.rows();
    const size_t embed_dim = config_.embed_dim;
    const Matrix& table = embed_.table_value(static_cast<size_t>(changed_attr));
    const size_t block = static_cast<size_t>(changed_attr) * embed_dim;
    Matrix& delta = scratch->delta_embed;
    delta.Resize(batch, embed_dim);
    for (size_t r = 0; r < batch; ++r) {
      const float* e_new =
          table.row(static_cast<size_t>(codes.at(r, changed_attr)));
      float* x0_block = scratch->x0.row(r) + block;
      float* drow = delta.row(r);
      for (size_t e = 0; e < embed_dim; ++e) {
        drow[e] = e_new[e] - x0_block[e];
        x0_block[e] = e_new[e];
      }
    }
    MatMulRowsAccum(delta, hidden_[0].masked_weights(), block,
                    &scratch->z1_lin);
  }
  // relu(z1_lin) into the layer-0 slot, keeping z1_lin for the next delta.
  ReluInto(scratch->z1_lin, &scratch->relu[0]);
  const Matrix* prev =
      ForwardHiddenFrom(&scratch->relu[0], 1, context, scratch);
  EmitLogitsSlice(*prev, context, attr, logits, scratch);
}

void MadeModel::FinalizeForInference() {
  for (auto& layer : hidden_) layer.RefreshMaskedWeights();
  out_.RefreshMaskedWeights();
}

float MadeModel::NllLoss(const Matrix& logits, const IntMatrix& targets,
                         size_t first_attr, Matrix* dlogits) const {
  assert(logits.cols() == total_vocab());
  dlogits->Resize(logits.rows(), logits.cols());
  if (first_attr > 0) dlogits->Fill(0.0f);  // skipped blocks must be zero
  const float inv_batch = 1.0f / static_cast<float>(logits.rows());
  float total = 0.0f;
  for (size_t a = first_attr; a < num_attrs(); ++a) {
    float loss = 0.0f;
    SoftmaxCrossEntropySlice(logits, targets, a, offsets_[a], offsets_[a + 1],
                             inv_batch, &loss, dlogits);
    total += loss;
  }
  return total;
}

float MadeModel::NllLossOnly(const Matrix& logits, const IntMatrix& targets,
                             size_t first_attr) const {
  const float inv_batch = 1.0f / static_cast<float>(logits.rows());
  float total = 0.0f;
  for (size_t a = first_attr; a < num_attrs(); ++a) {
    float loss = 0.0f;
    SoftmaxCrossEntropySlice(logits, targets, a, offsets_[a], offsets_[a + 1],
                             inv_batch, &loss, nullptr);
    total += loss;
  }
  return total;
}

float MadeModel::NllLossWeighted(const Matrix& logits,
                                 const IntMatrix& targets, size_t first_attr,
                                 const Matrix& weights,
                                 Matrix* dlogits) const {
  assert(weights.rows() == logits.rows() && weights.cols() == num_attrs());
  if (dlogits != nullptr) {
    // Zero-weight cells and skipped blocks leave their gradient untouched.
    dlogits->Resize(logits.rows(), logits.cols());
    dlogits->Fill(0.0f);
  }
  const size_t batch = logits.rows();
  float total = 0.0f;
  for (size_t a = first_attr; a < num_attrs(); ++a) {
    const size_t begin = offsets_[a];
    const size_t end = offsets_[a + 1];
    float weight_sum = 0.0f;
    for (size_t r = 0; r < batch; ++r) weight_sum += weights.at(r, a);
    if (weight_sum <= 0.0f) continue;
    const float inv = 1.0f / weight_sum;
    const size_t grain = LossRowGrain(end - begin);
    const size_t shards = batch == 0 ? 0 : (batch + grain - 1) / grain;
    std::vector<float> partial(shards, 0.0f);
    ParallelFor(0, batch, grain, [&](size_t lo, size_t hi) {
      float loss = 0.0f;
      for (size_t r = lo; r < hi; ++r) {
        const float w = weights.at(r, a);
        if (w == 0.0f) continue;
        const float* row = logits.row(r);
        float max_v = row[begin];
        for (size_t c = begin; c < end; ++c) max_v = std::max(max_v, row[c]);
        float sum = 0.0f;
        for (size_t c = begin; c < end; ++c) sum += std::exp(row[c] - max_v);
        const float log_sum = std::log(sum) + max_v;
        const size_t target = begin + static_cast<size_t>(targets.at(r, a));
        assert(target < end);
        loss += w * (log_sum - row[target]);
        if (dlogits != nullptr) {
          float* drow = dlogits->row(r);
          const float scale = w * inv;
          for (size_t c = begin; c < end; ++c) {
            drow[c] = std::exp(row[c] - log_sum) * scale;
          }
          drow[target] -= scale;
        }
      }
      partial[lo / grain] = loss;
    });
    float loss = 0.0f;
    for (float p : partial) loss += p;
    total += loss * inv;
  }
  return total;
}

float MadeModel::AttrNll(const Matrix& logits, const IntMatrix& targets,
                         size_t attr) const {
  float loss = 0.0f;
  SoftmaxCrossEntropySlice(logits, targets, attr, offsets_[attr],
                           offsets_[attr + 1],
                           1.0f / static_cast<float>(logits.rows()), &loss,
                           nullptr);
  return loss;
}

void MadeModel::Backward(const Matrix& dlogits, Matrix* dcontext) {
  if (has_context_ && dcontext != nullptr) {
    dcontext->Resize(dlogits.rows(), config_.context_dim);
    dcontext->Fill(0.0f);  // accumulated into via AddInPlace below
  }
  Matrix& dh = dh_scratch_;
  out_.Backward(dlogits, &dh);
  if (has_context_) {
    ctx_out_.Backward(dlogits, &dctx_scratch_);
    if (dcontext != nullptr) AddInPlace(dctx_scratch_, dcontext);
  }
  for (size_t l = config_.num_layers; l-- > 0;) {
    // dh is the gradient wrt h_[l]. Through the ReLU branch:
    Matrix& dz = dz_scratch_;
    dz = dh;
    ReluBackward(relu_[l], &dz);
    if (has_context_) {
      ctx_hidden_[l].Backward(dz, &dctx_scratch_);
      if (dcontext != nullptr) AddInPlace(dctx_scratch_, dcontext);
    }
    if (l == 0) {
      hidden_[0].Backward(dz, &dprev_scratch_);
      embed_.Backward(dprev_scratch_);
    } else {
      hidden_[l].Backward(dz, &dprev_scratch_);
      // Residual passthrough: h_l = relu_l + h_{l-1}.
      AddInPlace(dh, &dprev_scratch_);
      std::swap(dh, dprev_scratch_);
    }
  }
}

void MadeModel::SampleConditional(IntMatrix* codes, const Matrix& context,
                                  size_t first_attr, Rng& rng) {
  SampleRange(codes, context, first_attr, num_attrs(), rng);
}

void MadeModel::SampleRange(IntMatrix* codes, const Matrix& context,
                            size_t first_attr, size_t end_attr, Rng& rng,
                            int record_attr, Matrix* recorded) {
  // Convenience entry for training-time/single-owner callers: freeze the
  // current weights, then run the reentrant path on the member scratch.
  FinalizeForInference();
  SampleRange(codes, context, first_attr, end_attr, rng, record_attr,
              recorded, &infer_scratch_);
}

void MadeModel::SampleRange(IntMatrix* codes, const Matrix& context,
                            size_t first_attr, size_t end_attr, Rng& rng,
                            int record_attr, Matrix* recorded,
                            MadeScratch* scratch,
                            const std::function<bool()>& should_stop) const {
  const size_t batch = codes->rows();
  Matrix& logits = scratch->logits;
  std::vector<double>& sample_u = scratch->u;
  // Default path: column-sliced output layer, bit-identical to the full
  // Forward (only the active block of `logits` is written each attribute;
  // the softmax below never reads outside it). The opt-in incremental path
  // additionally carries the first hidden layer across attributes via
  // embedding deltas — tolerance-equivalent, never default.
  const bool incremental = config_.incremental_sampling;
  int changed_attr = -1;
  for (size_t a = first_attr; a < end_attr; ++a) {
    if (should_stop && should_stop()) return;
    if (incremental) {
      ForwardLogitsSliceIncremental(*codes, context, a, changed_attr,
                                    &logits, scratch);
    } else {
      ForwardLogitsSlice(*codes, context, a, changed_attr, &logits, scratch);
    }
    changed_attr = static_cast<int>(a);
    const size_t begin = offsets_[a];
    const size_t vocab = static_cast<size_t>(vocab_size(a));
    const bool record = record_attr >= 0 &&
                        static_cast<size_t>(record_attr) == a &&
                        recorded != nullptr;
    if (record) recorded->Resize(batch, vocab);
    // Uniform draws are taken from the shared stream SEQUENTIALLY before the
    // parallel section, so the sampled codes are independent of the thread
    // count (and the rng consumption order matches the sequential version).
    sample_u.resize(batch);
    for (size_t r = 0; r < batch; ++r) sample_u[r] = rng.NextDouble();
    // Row blocks: softmax the attribute's logit slice and inverse-CDF pick,
    // each row independent.
    ParallelFor(0, batch, LossRowGrain(vocab), [&](size_t lo, size_t hi) {
      for (size_t r = lo; r < hi; ++r) {
        float* probs = logits.row(r) + begin;
        const float max_v = RowMax(probs, vocab);
        float sum = 0.0f;
        for (size_t c = 0; c < vocab; ++c) {
          probs[c] = std::exp(probs[c] - max_v);
          sum += probs[c];
        }
        const float inv = 1.0f / sum;
        const double u = sample_u[r];
        double acc = 0.0;
        int32_t pick = static_cast<int32_t>(vocab) - 1;
        if (record) {
          for (size_t c = 0; c < vocab; ++c) probs[c] *= inv;
          float* dst = recorded->row(r);
          for (size_t c = 0; c < vocab; ++c) dst[c] = probs[c];
          for (size_t c = 0; c < vocab; ++c) {
            acc += probs[c];
            if (u < acc) {
              pick = static_cast<int32_t>(c);
              break;
            }
          }
        } else {
          // Early-exit CDF over the unstored normalized terms: probs[c]*inv
          // is float-rounded before the double add, exactly like reading a
          // stored normalized value back — the pick is bit-identical, but
          // the normalize+store pass only runs when a recording needs it.
          for (size_t c = 0; c < vocab; ++c) {
            acc += static_cast<double>(probs[c] * inv);
            if (u < acc) {
              pick = static_cast<int32_t>(c);
              break;
            }
          }
        }
        codes->at(r, a) = pick;
      }
    });
  }
}

namespace {

// Stacks the specs' code (and, for conditional models, context) rows into
// the arena's batch staging buffers. Returns the per-spec row offsets into
// the stacked minibatch.
template <typename Spec>
std::vector<size_t> StackSpecRows(const std::vector<Spec>& specs,
                                  size_t num_attrs, size_t context_dim,
                                  MadeScratch* scratch) {
  size_t total = 0;
  for (const Spec& s : specs) total += s.codes->rows();
  IntMatrix& codes = scratch->batch_codes;
  codes.Resize(total, num_attrs);
  Matrix& context = scratch->batch_context;
  context.Resize(context_dim == 0 ? 0 : total, context_dim);
  scratch->batch_owner.resize(total);
  std::vector<size_t> offset(specs.size(), 0);
  size_t off = 0;
  for (size_t q = 0; q < specs.size(); ++q) {
    const Spec& s = specs[q];
    const size_t rows = s.codes->rows();
    offset[q] = off;
    for (size_t r = 0; r < rows; ++r) {
      const int32_t* src = s.codes->row(r);
      int32_t* dst = codes.row(off + r);
      for (size_t c = 0; c < num_attrs; ++c) dst[c] = src[c];
      scratch->batch_owner[off + r] = static_cast<uint32_t>(q);
    }
    if (context_dim > 0) {
      assert(s.context != nullptr && s.context->rows() == rows &&
             s.context->cols() == context_dim);
      for (size_t r = 0; r < rows; ++r) {
        const float* src = s.context->row(r);
        float* dst = context.row(off + r);
        for (size_t c = 0; c < context_dim; ++c) dst[c] = src[c];
      }
    }
    off += rows;
  }
  return offset;
}

}  // namespace

void MadeModel::SampleRangeBatched(std::vector<MadeSampleSpec>* specs,
                                   MadeScratch* scratch,
                                   const std::function<void()>& poll) const {
  // The incremental path carries cross-attribute scratch state keyed to one
  // request's codes and is only tolerance-equivalent; batching callers gate
  // on the config before coalescing.
  assert(!config_.incremental_sampling);
  const size_t n = specs->size();
  if (n == 0) return;
  size_t a_min = num_attrs();
  size_t a_max = 0;
  for (const MadeSampleSpec& s : *specs) {
    assert(s.codes != nullptr && s.codes->cols() == num_attrs());
    a_min = std::min(a_min, s.first_attr);
    a_max = std::max(a_max, s.end_attr);
  }
  const std::vector<size_t> offset =
      StackSpecRows(*specs, num_attrs(), has_context_ ? config_.context_dim : 0,
                    scratch);
  IntMatrix& codes = scratch->batch_codes;
  const Matrix& context = scratch->batch_context;
  const size_t total = codes.rows();
  if (total == 0 || a_min >= a_max) return;
  const std::vector<uint32_t>& owner = scratch->batch_owner;
  Matrix& logits = scratch->logits;
  int changed_attr = -1;
  for (size_t a = a_min; a < a_max; ++a) {
    if (poll) poll();
    // An attribute no live request samples (dead requests, or disjoint
    // windows) needs no pass: it changed no codes, so the changed_attr
    // re-gather invariant carries straight to the next sampled attribute.
    bool any_live = false;
    for (const MadeSampleSpec& s : *specs) {
      if (!s.dead && a >= s.first_attr && a < s.end_attr) {
        any_live = true;
        break;
      }
    }
    if (!any_live) continue;
    // One sliced pass over the WHOLE stacked minibatch. Rows outside their
    // request's window at `a` are computed and discarded: by the MADE masks
    // a row's logits depend only on that row's own earlier columns, so the
    // in-window rows' values are bit-identical to a solo pass.
    ForwardLogitsSlice(codes, context, a, changed_attr, &logits, scratch);
    changed_attr = static_cast<int>(a);
    const size_t begin = offsets_[a];
    const size_t vocab = static_cast<size_t>(vocab_size(a));
    for (MadeSampleSpec& s : *specs) {
      if (!s.dead && s.record_attr >= 0 &&
          static_cast<size_t>(s.record_attr) == a && s.recorded != nullptr) {
        s.recorded->Resize(s.codes->rows(), vocab);
      }
    }
    // Row-local softmax + inverse-CDF pick, exactly as in SampleRange; the
    // uniform of stacked row r is its request's pre-drawn draw for
    // (attribute, local row), so each request consumes the same stream
    // values a solo call would.
    ParallelFor(0, total, LossRowGrain(vocab), [&](size_t lo, size_t hi) {
      for (size_t r = lo; r < hi; ++r) {
        const MadeSampleSpec& s = (*specs)[owner[r]];
        if (s.dead || a < s.first_attr || a >= s.end_attr) continue;
        const size_t local = r - offset[owner[r]];
        const double u =
            s.uniforms[(a - s.first_attr) * s.codes->rows() + local];
        const bool record = s.record_attr >= 0 &&
                            static_cast<size_t>(s.record_attr) == a &&
                            s.recorded != nullptr;
        float* probs = logits.row(r) + begin;
        const float max_v = RowMax(probs, vocab);
        float sum = 0.0f;
        for (size_t c = 0; c < vocab; ++c) {
          probs[c] = std::exp(probs[c] - max_v);
          sum += probs[c];
        }
        const float inv = 1.0f / sum;
        double acc = 0.0;
        int32_t pick = static_cast<int32_t>(vocab) - 1;
        if (record) {
          for (size_t c = 0; c < vocab; ++c) probs[c] *= inv;
          float* dst = s.recorded->row(local);
          for (size_t c = 0; c < vocab; ++c) dst[c] = probs[c];
          for (size_t c = 0; c < vocab; ++c) {
            acc += probs[c];
            if (u < acc) {
              pick = static_cast<int32_t>(c);
              break;
            }
          }
        } else {
          for (size_t c = 0; c < vocab; ++c) {
            acc += static_cast<double>(probs[c] * inv);
            if (u < acc) {
              pick = static_cast<int32_t>(c);
              break;
            }
          }
        }
        codes.at(r, a) = pick;
      }
    });
  }
  // Scatter each surviving request's sampled window back.
  for (size_t q = 0; q < n; ++q) {
    MadeSampleSpec& s = (*specs)[q];
    if (s.dead) continue;
    for (size_t r = 0; r < s.codes->rows(); ++r) {
      for (size_t a = s.first_attr; a < s.end_attr; ++a) {
        s.codes->at(r, a) = codes.at(offset[q] + r, a);
      }
    }
  }
}

void MadeModel::PredictDistributionBatched(std::vector<MadePredictSpec>* specs,
                                           MadeScratch* scratch) const {
  const size_t n = specs->size();
  if (n == 0) return;
  for (const MadePredictSpec& s : *specs) {
    (void)s;
    assert(s.codes != nullptr && s.codes->cols() == num_attrs());
    assert(s.attr < num_attrs() && s.probs != nullptr);
  }
  const std::vector<size_t> offset =
      StackSpecRows(*specs, num_attrs(), has_context_ ? config_.context_dim : 0,
                    scratch);
  const IntMatrix& codes = scratch->batch_codes;
  const Matrix& context = scratch->batch_context;
  if (codes.rows() == 0) return;
  // One stacked trunk pass feeds every requested attribute's emission.
  const Matrix* hidden = ForwardTrunk(codes, context, scratch);
  Matrix& logits = scratch->logits;
  std::vector<size_t> attrs;
  for (const MadePredictSpec& s : *specs) attrs.push_back(s.attr);
  std::sort(attrs.begin(), attrs.end());
  attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
  for (size_t attr : attrs) {
    // Same op order as PredictDistribution: emit the slice, softmax it in
    // place (distinct attributes occupy disjoint logit columns, and both
    // stages are row-local, so foreign rows are computed-and-discarded),
    // then copy each matching request's rows out.
    EmitLogitsSlice(*hidden, context, attr, &logits, scratch);
    SoftmaxSlice(&logits, offsets_[attr], offsets_[attr + 1]);
    const size_t vocab = static_cast<size_t>(vocab_size(attr));
    for (size_t q = 0; q < n; ++q) {
      const MadePredictSpec& s = (*specs)[q];
      if (s.attr != attr) continue;
      s.probs->Resize(s.codes->rows(), vocab);
      for (size_t r = 0; r < s.codes->rows(); ++r) {
        const float* src = logits.row(offset[q] + r) + offsets_[attr];
        float* dst = s.probs->row(r);
        for (size_t c = 0; c < vocab; ++c) dst[c] = src[c];
      }
    }
  }
}

void MadeModel::PredictDistribution(const IntMatrix& codes,
                                    const Matrix& context, size_t attr,
                                    Matrix* probs) {
  FinalizeForInference();
  PredictDistribution(codes, context, attr, probs, &infer_scratch_);
}

void MadeModel::PredictDistribution(const IntMatrix& codes,
                                    const Matrix& context, size_t attr,
                                    Matrix* probs,
                                    MadeScratch* scratch) const {
  Matrix& logits = scratch->logits;
  // Only this attribute's logit block is consumed, so only it is computed
  // (bit-identical to slicing a full Forward).
  ForwardLogitsSlice(codes, context, attr, /*changed_attr=*/-1, &logits,
                     scratch);
  SoftmaxSlice(&logits, offsets_[attr], offsets_[attr + 1]);
  const size_t vocab = static_cast<size_t>(vocab_size(attr));
  probs->Resize(codes.rows(), vocab);
  for (size_t r = 0; r < codes.rows(); ++r) {
    const float* src = logits.row(r) + offsets_[attr];
    float* dst = probs->row(r);
    for (size_t c = 0; c < vocab; ++c) dst[c] = src[c];
  }
}

void MadeModel::CollectParams(std::vector<Param*>* params) {
  embed_.CollectParams(params);
  for (auto& layer : hidden_) layer.CollectParams(params);
  for (auto& layer : ctx_hidden_) layer.CollectParams(params);
  out_.CollectParams(params);
  if (has_context_) ctx_out_.CollectParams(params);
}

size_t MadeModel::NumParameters() {
  std::vector<Param*> params;
  CollectParams(&params);
  size_t total = 0;
  for (Param* p : params) total += p->value.size();
  return total;
}

}  // namespace restore
