#include "restore/cache.h"

#include <limits>

namespace restore {

std::string CompletionCache::Key(const std::set<std::string>& tables) {
  std::string key;
  for (const auto& t : tables) {
    key += t;
    key += '|';
  }
  return key;
}

void CompletionCache::Put(const std::set<std::string>& tables, Table joined) {
  entries_[Key(tables)] = Entry{tables, std::move(joined)};
}

const Table* CompletionCache::GetExact(
    const std::set<std::string>& tables) const {
  auto it = entries_.find(Key(tables));
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second.joined;
}

const Table* CompletionCache::GetCovering(
    const std::set<std::string>& tables) const {
  const Table* best = nullptr;
  size_t best_size = std::numeric_limits<size_t>::max();
  for (const auto& [key, entry] : entries_) {
    (void)key;
    bool covers = true;
    for (const auto& t : tables) {
      if (entry.tables.count(t) == 0) {
        covers = false;
        break;
      }
    }
    if (covers && entry.tables.size() < best_size) {
      best_size = entry.tables.size();
      best = &entry.joined;
    }
  }
  if (best == nullptr) {
    ++misses_;
  } else {
    ++hits_;
  }
  return best;
}

}  // namespace restore
