#ifndef RESTORE_RESTORE_MODEL_MERGE_H_
#define RESTORE_RESTORE_MODEL_MERGE_H_

#include <set>
#include <string>
#include <vector>

#include "common/result.h"

namespace restore {

/// One requested completion: synthesize `target` using the ordered evidence
/// tables `evidence` (Section 3.4).
struct CompletionTask {
  std::vector<std::string> evidence;
  std::string target;
};

/// A group of completion tasks served by one merged model. `ordering` is a
/// consistent variable (table) ordering: for every task, all its evidence
/// tables precede its target.
struct MergedModel {
  std::vector<std::string> ordering;
  std::vector<CompletionTask> tasks;
};

/// Greedily merges completion tasks into as few models as possible, following
/// Section 3.4: two groups merge only if (a) one group's table set is a
/// subset of the other's, and (b) the union of their evidence->target arcs is
/// acyclic (so a topological table ordering exists). Returns one MergedModel
/// per group, with `ordering` the topological sort of its constraint graph.
Result<std::vector<MergedModel>> MergeCompletionTasks(
    const std::vector<CompletionTask>& tasks);

}  // namespace restore

#endif  // RESTORE_RESTORE_MODEL_MERGE_H_
