#include "exec/executor.h"

#include "common/timer.h"
#include "exec/join.h"
#include "exec/prepared.h"
#include "exec/sql_parser.h"

namespace restore {

namespace {

Result<ResultSet> ExecuteWithStats(const Database& db, const Query& query,
                                   const QueryOptions& options,
                                   ExecStats stats) {
  ExecContext ctx(&options, &stats);
  RESTORE_RETURN_IF_ERROR(ctx.Check());
  if (query.tables.empty()) {
    return Status::InvalidArgument("query has no tables");
  }
  if (query.aggregates.empty()) {
    return Status::InvalidArgument("query has no aggregates");
  }
  RESTORE_RETURN_IF_ERROR(CheckFullyBound(query));
  Timer join_timer;
  RESTORE_ASSIGN_OR_RETURN(Table joined,
                           NaturalJoinTables(db, query.tables, &ctx));
  stats.sample_seconds += join_timer.ElapsedSeconds();
  Timer agg_timer;
  RESTORE_ASSIGN_OR_RETURN(QueryResult grouped,
                           FilterAndAggregate(joined, query, &ctx));
  stats.aggregate_seconds += agg_timer.ElapsedSeconds();
  return ResultSet::Build(query, std::move(grouped), std::move(stats),
                          ctx.batch_rows());
}

}  // namespace

Result<ResultSet> ExecuteQuery(const Database& db, const Query& query,
                               const QueryOptions& options) {
  return ExecuteWithStats(db, query, options, ExecStats());
}

Result<ResultSet> ExecuteSql(const Database& db, const std::string& sql,
                             const QueryOptions& options) {
  ExecStats stats;
  {
    ExecContext ctx(&options, &stats);
    RESTORE_RETURN_IF_ERROR(ctx.Check());  // cancel BEFORE parsing
  }
  Timer parse_timer;
  RESTORE_ASSIGN_OR_RETURN(Query query, ParseSql(sql));
  stats.parse_seconds = parse_timer.ElapsedSeconds();
  return ExecuteWithStats(db, query, options, std::move(stats));
}

}  // namespace restore
