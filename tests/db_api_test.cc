// Tests of the session-facing Db API: prepared queries with positional
// parameters, async execution, and the byte-budgeted completion cache.

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/future.h"
#include "common/once_latch.h"
#include "common/thread_pool.h"
#include "datagen/setups.h"
#include "exec/executor.h"
#include "exec/prepared.h"
#include "restore/db.h"

namespace restore {
namespace {

EngineConfig FastConfig() {
  EngineConfig config;
  config.model.epochs = 6;
  config.model.hidden_dim = 24;
  config.model.embed_dim = 4;
  config.model.max_bins = 12;
  config.model.min_train_steps = 150;
  config.max_candidates = 2;
  return config;
}

std::shared_ptr<Db> OpenHousing(uint64_t seed) {
  auto complete = BuildCompleteDatabase("housing", seed, 0.25);
  EXPECT_TRUE(complete.ok());
  auto setup = SetupByName("H1");
  EXPECT_TRUE(setup.ok());
  auto incomplete = ApplySetup(*complete, *setup, 0.5, 0.5, seed + 1);
  EXPECT_TRUE(incomplete.ok());
  // The database must outlive the Db; keep it alive via a static pool.
  static std::vector<std::unique_ptr<Database>> databases;
  databases.push_back(std::make_unique<Database>(std::move(*incomplete)));
  auto db = Db::Open(databases.back().get(), AnnotationFor(*setup),
                     DbOptions().WithEngine(FastConfig()));
  EXPECT_TRUE(db.ok()) << db.status();
  return *db;
}

TEST(PreparedStatementTest, ParsesAndCountsParams) {
  auto complete = BuildCompleteDatabase("housing", 401, 0.2);
  ASSERT_TRUE(complete.ok());
  auto stmt = PreparedStatement::Prepare(
      *complete,
      "SELECT COUNT(*), AVG(price) FROM apartment WHERE accommodates >= ? "
      "AND room_type = ?;");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->num_params(), 2u);
  // Columns were qualified at prepare time.
  EXPECT_EQ(stmt->query().aggregates[1].column, "apartment.price");
  EXPECT_EQ(stmt->query().predicates[0].column, "apartment.accommodates");

  // Unbound execution is rejected...
  auto direct = ExecuteQuery(*complete, stmt->query());
  ASSERT_FALSE(direct.ok());
  EXPECT_NE(direct.status().message().find("unbound"), std::string::npos);

  // ...binding substitutes the literals and renders back as SQL.
  auto bound = stmt->Bind(
      {Value::Int64(3), Value::Categorical("entire_home")});
  ASSERT_TRUE(bound.ok()) << bound.status();
  EXPECT_TRUE(bound->IsFullyBound());
  auto wrong_arity = stmt->Bind({Value::Int64(3)});
  EXPECT_FALSE(wrong_arity.ok());

  // A bound prepared query equals the literal query.
  auto via_bound = ExecuteQuery(*complete, *bound);
  auto via_sql = ExecuteSql(
      *complete,
      "SELECT COUNT(*), AVG(price) FROM apartment WHERE accommodates >= 3 "
      "AND room_type = 'entire_home';");
  ASSERT_TRUE(via_bound.ok());
  ASSERT_TRUE(via_sql.ok());
  EXPECT_EQ(*via_bound, *via_sql);
}

TEST(DbSessionTest, PreparedQueryMatchesAdHocExecution) {
  auto db = OpenHousing(403);
  Session session = db->CreateSession();
  auto prepared = session.Prepare(
      "SELECT COUNT(*) FROM apartment WHERE accommodates >= ?;");
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  ASSERT_EQ(prepared->num_params(), 1u);

  for (int64_t threshold : {1, 2, 3}) {
    auto via_prepared = prepared->Run({Value::Int64(threshold)});
    ASSERT_TRUE(via_prepared.ok()) << via_prepared.status();
    auto via_sql = session.Execute(
        "SELECT COUNT(*) FROM apartment WHERE accommodates >= " +
        std::to_string(threshold) + ";");
    ASSERT_TRUE(via_sql.ok()) << via_sql.status();
    EXPECT_EQ(*via_prepared, *via_sql)
        << "threshold " << threshold;
  }
}

TEST(DbSessionTest, AsyncExecutionMatchesSynchronous) {
  auto db = OpenHousing(405);
  Session session = db->CreateSession();
  const std::string sql =
      "SELECT AVG(price) FROM apartment GROUP BY room_type;";

  ResultSetFuture future = session.ExecuteAsync(sql);
  auto prepared = session.Prepare(
      "SELECT AVG(price) FROM apartment GROUP BY room_type;");
  ASSERT_TRUE(prepared.ok());
  ResultSetFuture prepared_future = prepared->RunAsync();

  auto sync = session.Execute(sql);
  ASSERT_TRUE(sync.ok()) << sync.status();

  Result<ResultSet>& async1 = future.Get();
  Result<ResultSet>& async2 = prepared_future.Get();
  ASSERT_TRUE(async1.ok()) << async1.status();
  ASSERT_TRUE(async2.ok()) << async2.status();
  EXPECT_EQ(*async1, *sync);
  EXPECT_EQ(*async2, *sync);
}

TEST(DbSessionTest, AsyncParseErrorSurfacesThroughFuture) {
  auto db = OpenHousing(407);
  Session session = db->CreateSession();
  ResultSetFuture future = session.ExecuteAsync("SELECT nonsense;");
  Result<ResultSet>& result = future.Get();
  EXPECT_FALSE(result.ok());
}

TEST(FutureTest, RunsInlineWhenPoolHasNoWorkers) {
  ThreadPool pool(0);
  Future<int> f = Future<int>::Async(pool, [] { return 41 + 1; });
  EXPECT_EQ(f.Get(), 42);
  Future<int> ready = Future<int>::MakeReady(7);
  EXPECT_TRUE(ready.IsReady());
  EXPECT_EQ(ready.Get(), 7);
}

TEST(OnceLatchTest, RunsExactlyOnceAndCachesFailure) {
  OnceLatch ok_latch;
  int runs = 0;
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(ok_latch
                    .RunOnce([&] {
                      ++runs;
                      return Status::OK();
                    })
                    .ok());
  }
  EXPECT_EQ(runs, 1);
  EXPECT_TRUE(ok_latch.done_ok());

  OnceLatch fail_latch;
  int fail_runs = 0;
  for (int i = 0; i < 2; ++i) {
    Status s = fail_latch.RunOnce([&] {
      ++fail_runs;
      return Status::Internal("boom");
    });
    EXPECT_FALSE(s.ok());
  }
  EXPECT_EQ(fail_runs, 1);
  EXPECT_FALSE(fail_latch.done_ok());
}

TEST(OnceLatchTest, DeadlineWaiterTimesOutWhileWorkCompletes) {
  OnceLatch latch;
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;

  // Runner holds the latch in kRunning until the test releases it.
  std::thread runner([&] {
    Status s = latch.RunOnce([&] {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
      return Status::OK();
    });
    EXPECT_TRUE(s.ok());
  });

  // Wait until the runner actually owns the latch.
  while (!latch.running()) std::this_thread::yield();

  // An impatient waiter with an already-expired deadline gives up without
  // disturbing the in-flight run.
  Status timed_out = latch.RunOnceWithDeadline(
      [] { return Status::Internal("must not run"); },
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1));
  EXPECT_TRUE(timed_out.IsDeadlineExceeded());
  EXPECT_FALSE(latch.done_ok());

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  runner.join();

  // The shared work still completed and stays available to later callers.
  EXPECT_TRUE(latch.done_ok());
  Status later = latch.RunOnceWithDeadline(
      [] { return Status::Internal("must not run"); },
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1));
  EXPECT_TRUE(later.ok());
}

TEST(CompletionCacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  auto make_table = [](const std::string& name, size_t rows) {
    Table t(name);
    Column c("x", ColumnType::kInt64);
    for (size_t r = 0; r < rows; ++r) c.AppendInt64(static_cast<int64_t>(r));
    EXPECT_TRUE(t.AddColumn(std::move(c)).ok());
    return t;
  };
  // One shard so the LRU order is global and deterministic.
  const size_t entry_bytes =
      CompletionCache::ApproxTableBytes(make_table("t", 100));
  CompletionCache cache(/*budget_bytes=*/2 * entry_bytes + entry_bytes / 2,
                        /*num_shards=*/1);

  cache.Put({"a"}, make_table("a", 100));
  cache.Put({"b"}, make_table("b", 100));
  EXPECT_EQ(cache.size(), 2u);
  // Touch "a" so "b" is the LRU victim.
  EXPECT_NE(cache.GetExact({"a"}), nullptr);
  cache.Put({"c"}, make_table("c", 100));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_NE(cache.GetExact({"a"}), nullptr);
  EXPECT_NE(cache.GetExact({"c"}), nullptr);
  EXPECT_EQ(cache.GetExact({"b"}), nullptr);
  EXPECT_LE(cache.bytes(), cache.budget_bytes());

  // An entry bigger than the whole budget is not cached at all.
  CompletionCache tiny(/*budget_bytes=*/64, /*num_shards=*/1);
  tiny.Put({"huge"}, make_table("huge", 10000));
  EXPECT_EQ(tiny.size(), 0u);

  // Unbounded cache (the default) never evicts.
  CompletionCache unbounded;
  for (int i = 0; i < 16; ++i) {
    unbounded.Put({"t" + std::to_string(i)}, make_table("t", 1000));
  }
  EXPECT_EQ(unbounded.size(), 16u);
  EXPECT_EQ(unbounded.evictions(), 0u);
}

TEST(CompletionCacheTest, CoveringLookupServedByPerTableIndex) {
  auto make_table = [](const std::string& name, size_t rows) {
    Table t(name);
    Column c("x", ColumnType::kInt64);
    for (size_t r = 0; r < rows; ++r) c.AppendInt64(static_cast<int64_t>(r));
    EXPECT_TRUE(t.AddColumn(std::move(c)).ok());
    return t;
  };
  CompletionCache cache;
  cache.Put({"a"}, make_table("only_a", 10));
  cache.Put({"a", "b"}, make_table("ab", 10));
  cache.Put({"a", "b", "c"}, make_table("abc", 10));
  cache.Put({"d"}, make_table("only_d", 10));

  // Exact-set and smallest-superset hits.
  auto ab = cache.GetCovering({"a", "b"});
  ASSERT_NE(ab, nullptr);
  EXPECT_EQ(ab->name(), "ab");
  auto b = cache.GetCovering({"b"});
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->name(), "ab") << "smallest superset of {b} is {a,b}";
  auto c = cache.GetCovering({"c"});
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->name(), "abc");
  auto a = cache.GetCovering({"a"});
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->name(), "only_a");

  // A query table no cached entry contains short-circuits to a miss — the
  // index rules it out without scanning any shard.
  const size_t misses_before = cache.misses();
  EXPECT_EQ(cache.GetCovering({"a", "nope"}), nullptr);
  EXPECT_EQ(cache.misses(), misses_before + 1);

  // Table names that are substrings of cached table names must not match
  // (the index is exact, and key segments are compared whole).
  EXPECT_EQ(cache.GetCovering({"only"}), nullptr);

  // Clear() drops the index along with the entries.
  cache.Clear();
  EXPECT_EQ(cache.GetCovering({"a"}), nullptr);

  // Eviction unindexes the victim: with a one-shard budget sized for two
  // entries, inserting a third evicts the LRU, and covering lookups for its
  // tables stop finding it.
  const size_t entry_bytes =
      CompletionCache::ApproxTableBytes(make_table("t", 100));
  CompletionCache lru(/*budget_bytes=*/2 * entry_bytes + entry_bytes / 2,
                      /*num_shards=*/1);
  lru.Put({"x"}, make_table("x", 100));
  lru.Put({"y"}, make_table("y", 100));
  EXPECT_NE(lru.GetCovering({"x"}), nullptr);  // bump x; y becomes LRU
  lru.Put({"z"}, make_table("z", 100));
  EXPECT_EQ(lru.evictions(), 1u);
  EXPECT_EQ(lru.GetCovering({"y"}), nullptr);
  EXPECT_NE(lru.GetCovering({"x"}), nullptr);
  EXPECT_NE(lru.GetCovering({"z"}), nullptr);
}

TEST(DbTest, CacheBudgetIsWiredThroughEngineConfig) {
  EngineConfig config = FastConfig();
  config.cache_budget_bytes = 123456;
  auto complete = BuildCompleteDatabase("housing", 409, 0.2);
  ASSERT_TRUE(complete.ok());
  auto setup = SetupByName("H1");
  ASSERT_TRUE(setup.ok());
  auto incomplete = ApplySetup(*complete, *setup, 0.5, 0.5, 410);
  ASSERT_TRUE(incomplete.ok());
  auto db = Db::Open(&*incomplete, AnnotationFor(*setup), DbOptions().WithEngine(config));
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ((*db)->cache().budget_bytes(), 123456u);
}

TEST(DbTest, UnknownTargetIsRejected) {
  auto db = OpenHousing(411);
  EXPECT_FALSE(db->CandidatesFor("no_such_table").ok());
  EXPECT_FALSE(db->SelectedPathFor("no_such_table").ok());
  // neighborhood is complete: it has no candidates either.
  EXPECT_FALSE(db->CandidatesFor("neighborhood").ok());
}

}  // namespace
}  // namespace restore
