#include "server/http.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace restore {
namespace server {

namespace {

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

}  // namespace

const std::string* HttpRequest::FindHeader(const std::string& name) const {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

std::string HttpRequest::Path() const {
  const size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

bool HttpRequest::KeepAlive() const {
  const std::string* connection = FindHeader("Connection");
  if (version == "HTTP/1.0") {
    return connection != nullptr && EqualsIgnoreCase(*connection, "keep-alive");
  }
  return connection == nullptr || !EqualsIgnoreCase(*connection, "close");
}

HttpRequestParser::State HttpRequestParser::Fail(int status,
                                                 std::string reason) {
  error_status_ = status;
  error_reason_ = std::move(reason);
  state_ = State::kError;
  return state_;
}

HttpRequestParser::State HttpRequestParser::Feed(const char* data, size_t n) {
  if (state_ != State::kNeedMore) return state_;
  buffer_.append(data, n);
  return Advance();
}

HttpRequestParser::State HttpRequestParser::Reset() {
  request_ = HttpRequest();
  head_done_ = false;
  body_remaining_ = 0;
  error_status_ = 400;
  error_reason_.clear();
  state_ = State::kNeedMore;
  // A pipelined next request may already be buffered in full.
  return Advance();
}

HttpRequestParser::State HttpRequestParser::Advance() {
  if (!head_done_) {
    const size_t head_end = buffer_.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      if (buffer_.size() > max_head_bytes_) {
        return Fail(431, "request head too large");
      }
      return state_;
    }
    if (head_end > max_head_bytes_) {
      return Fail(431, "request head too large");
    }
    if (ParseHead(head_end) == State::kError) return state_;
    buffer_.erase(0, head_end + 4);
    head_done_ = true;
  }
  if (body_remaining_ > 0) {
    const size_t take =
        buffer_.size() < body_remaining_ ? buffer_.size() : body_remaining_;
    request_.body.append(buffer_, 0, take);
    buffer_.erase(0, take);
    body_remaining_ -= take;
    if (body_remaining_ > 0) return state_;
  }
  state_ = State::kComplete;
  return state_;
}

HttpRequestParser::State HttpRequestParser::ParseHead(size_t head_end) {
  const std::string head = buffer_.substr(0, head_end);
  size_t line_end = head.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);

  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    return Fail(400, "malformed request line");
  }
  request_.method = request_line.substr(0, sp1);
  request_.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  request_.version = request_line.substr(sp2 + 1);
  if (request_.method.empty() || request_.target.empty() ||
      request_.target[0] != '/' ||
      (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0")) {
    return Fail(400, "malformed request line");
  }

  size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t next = head.find("\r\n", pos);
    if (next == std::string::npos) next = head.size();
    const std::string line = head.substr(pos, next - pos);
    pos = next + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      return Fail(400, "malformed header line");
    }
    request_.headers.emplace_back(Trim(line.substr(0, colon)),
                                  Trim(line.substr(colon + 1)));
  }

  if (request_.FindHeader("Transfer-Encoding") != nullptr) {
    return Fail(501, "chunked request bodies are not supported");
  }
  if (const std::string* cl = request_.FindHeader("Content-Length")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(cl->c_str(), &end, 10);
    if (end == cl->c_str() || *end != '\0') {
      return Fail(400, "malformed Content-Length");
    }
    if (v > max_body_bytes_) return Fail(413, "request body too large");
    body_remaining_ = static_cast<size_t>(v);
  }
  return state_;
}

const char* StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 499: return "Client Closed Request";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

namespace {

std::string BuildHead(
    int status, const std::string& content_type, bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    StatusReason(status) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : headers) {
    out += name + ": " + value + "\r\n";
  }
  return out;
}

}  // namespace

std::string BuildResponse(
    int status, const std::string& content_type, const std::string& body,
    bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  std::string out = BuildHead(status, content_type, keep_alive, headers);
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  out += body;
  return out;
}

std::string BuildChunkedResponseHead(
    int status, const std::string& content_type, bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  std::string out = BuildHead(status, content_type, keep_alive, headers);
  out += "Transfer-Encoding: chunked\r\n\r\n";
  return out;
}

std::string EncodeChunk(const std::string& payload) {
  if (payload.empty()) return "";  // an empty chunk would terminate the body
  char size_line[32];
  std::snprintf(size_line, sizeof(size_line), "%zx\r\n", payload.size());
  return size_line + payload + "\r\n";
}

std::string FinalChunk() { return "0\r\n\r\n"; }

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (std::isnan(value) || std::isinf(value)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

namespace {

/// Recursive-descent JSON reader over [p, end). Depth-capped so a hostile
/// body of a few KB of '[' cannot blow the stack.
class JsonReader {
 public:
  JsonReader(const char* p, const char* end) : p_(p), end_(end) {}

  bool Parse(JsonValue* out, std::string* error) {
    if (!ParseValue(out, 0, error)) return false;
    SkipWhitespace();
    if (p_ != end_) {
      *error = "trailing bytes after JSON document";
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void SkipWhitespace() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  bool Literal(const char* word, size_t n, std::string* error) {
    if (static_cast<size_t>(end_ - p_) < n ||
        std::string(p_, n) != std::string(word, n)) {
      *error = "malformed JSON literal";
      return false;
    }
    p_ += n;
    return true;
  }

  bool ParseString(std::string* out, std::string* error) {
    ++p_;  // opening quote
    out->clear();
    while (p_ != end_) {
      const unsigned char c = static_cast<unsigned char>(*p_);
      if (c == '"') {
        ++p_;
        return true;
      }
      if (c == '\\') {
        ++p_;
        if (p_ == end_) break;
        switch (*p_) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            if (end_ - p_ < 5) {
              *error = "truncated \\u escape";
              return false;
            }
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = p_[i];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                *error = "malformed \\u escape";
                return false;
              }
            }
            p_ += 4;
            // UTF-8 encode the code point (surrogate pairs are passed
            // through as-is; categorical values are opaque byte strings).
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xc0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
              *out += static_cast<char>(0xe0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              *out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default:
            *error = "unknown escape in JSON string";
            return false;
        }
        ++p_;
        continue;
      }
      *out += static_cast<char>(c);
      ++p_;
    }
    *error = "unterminated JSON string";
    return false;
  }

  bool ParseValue(JsonValue* out, int depth, std::string* error) {
    if (depth > kMaxDepth) {
      *error = "JSON nesting too deep";
      return false;
    }
    SkipWhitespace();
    if (p_ == end_) {
      *error = "unexpected end of JSON document";
      return false;
    }
    const char c = *p_;
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return Literal("null", 4, error);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return Literal("true", 4, error);
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      return Literal("false", 5, error);
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string_value, error);
    }
    if (c == '[') {
      out->kind = JsonValue::Kind::kArray;
      out->array.clear();
      ++p_;
      SkipWhitespace();
      if (p_ != end_ && *p_ == ']') {
        ++p_;
        return true;
      }
      while (true) {
        out->array.emplace_back();
        if (!ParseValue(&out->array.back(), depth + 1, error)) return false;
        SkipWhitespace();
        if (p_ == end_) {
          *error = "unterminated JSON array";
          return false;
        }
        if (*p_ == ',') {
          ++p_;
          continue;
        }
        if (*p_ == ']') {
          ++p_;
          return true;
        }
        *error = "expected ',' or ']' in JSON array";
        return false;
      }
    }
    if (c == '{') {
      *error = "JSON objects are not accepted here (rows are positional "
               "arrays)";
      return false;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      char* num_end = nullptr;
      // The buffer is not NUL-terminated at end_; strtod stops at the first
      // non-number byte anyway, and the bounds check below rejects overruns.
      const double v = std::strtod(p_, &num_end);
      if (num_end == p_ || num_end > end_) {
        *error = "malformed JSON number";
        return false;
      }
      out->kind = JsonValue::Kind::kNumber;
      out->number = v;
      out->number_text.assign(p_, static_cast<size_t>(num_end - p_));
      p_ = num_end;
      return true;
    }
    *error = "unexpected byte in JSON document";
    return false;
  }

  const char* p_;
  const char* end_;
};

}  // namespace

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  // Ensure NUL termination for the strtod above (std::string guarantees
  // data()[size()] == '\0' since C++11, so this is purely documentation).
  JsonReader reader(text.data(), text.data() + text.size());
  std::string local_error;
  if (error == nullptr) error = &local_error;
  return reader.Parse(out, error);
}

}  // namespace server
}  // namespace restore
