#ifndef RESTORE_COMMON_RNG_H_
#define RESTORE_COMMON_RNG_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace restore {

/// Deterministic pseudo-random number generator (xoshiro256**). Every
/// stochastic component in the library (data generators, weight init,
/// sampling) takes an explicit `Rng&` so experiments are reproducible from a
/// single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) { Seed(seed); }

  /// Re-seeds the generator (splitmix64 expansion of the 64-bit seed).
  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, n). `n` must be > 0.
  uint64_t NextUint64(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt64(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Gaussian with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Bernoulli draw with probability `p` of returning true.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// Weights must be non-negative with a positive sum.
  size_t NextCategorical(const std::vector<double>& weights);

  /// Samples from a Zipf distribution over {0, .., n-1} with exponent `s`.
  /// s == 0 degenerates to uniform.
  size_t NextZipf(size_t n, double s);

  /// Fisher-Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = NextUint64(i);
      std::swap(values[i - 1], values[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace restore

#endif  // RESTORE_COMMON_RNG_H_
