#include "common/fault_injection.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "common/rng.h"
#include "common/string_util.h"

namespace restore {

std::atomic<bool> FaultInjection::g_fault_injection_enabled{false};

namespace {

constexpr uint64_t kDefaultSeed = 0x5eed;

/// Accepts both the StatusCodeName spelling ("Unavailable") and the
/// lower_snake spec spelling ("unavailable", "resource_exhausted").
bool ParseStatusCode(const std::string& name, StatusCode* out) {
  std::string flat;
  for (char c : name) {
    if (c == '_') continue;
    flat += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  static const std::pair<const char*, StatusCode> kCodes[] = {
      {"invalidargument", StatusCode::kInvalidArgument},
      {"notfound", StatusCode::kNotFound},
      {"alreadyexists", StatusCode::kAlreadyExists},
      {"outofrange", StatusCode::kOutOfRange},
      {"failedprecondition", StatusCode::kFailedPrecondition},
      {"unimplemented", StatusCode::kUnimplemented},
      {"internal", StatusCode::kInternal},
      {"parseerror", StatusCode::kParseError},
      {"cancelled", StatusCode::kCancelled},
      {"deadlineexceeded", StatusCode::kDeadlineExceeded},
      {"resourceexhausted", StatusCode::kResourceExhausted},
      {"unavailable", StatusCode::kUnavailable},
  };
  for (const auto& [spelled, code] : kCodes) {
    if (flat == spelled) {
      *out = code;
      return true;
    }
  }
  return false;
}

}  // namespace

struct FaultInjection::Impl {
  struct PointState {
    FaultPolicy policy;
    uint64_t hits = 0;
  };
  mutable std::mutex mu;
  std::map<std::string, PointState> points;
  Rng rng{kDefaultSeed};
};

FaultInjection::Impl* FaultInjection::impl() {
  Impl* existing = impl_.load(std::memory_order_acquire);
  if (existing != nullptr) return existing;
  Impl* fresh = new Impl();
  if (impl_.compare_exchange_strong(existing, fresh,
                                    std::memory_order_acq_rel)) {
    return fresh;  // intentionally leaked: outlives every fault point
  }
  delete fresh;
  return existing;
}

FaultInjection& FaultInjection::Instance() {
  static FaultInjection* instance = new FaultInjection();  // never destroyed
  return *instance;
}

Status FaultInjection::Fire(const char* point) {
  if (!Enabled()) return Status::OK();
  return Instance().FireImpl(point);
}

Status FaultInjection::FireImpl(const char* point) {
  Impl* state = impl();
  uint64_t delay_ms = 0;
  Status injected = Status::OK();
  {
    std::lock_guard<std::mutex> lock(state->mu);
    auto it = state->points.find(point);
    if (it == state->points.end()) return Status::OK();
    Impl::PointState& p = it->second;
    ++p.hits;
    bool fire = false;
    switch (p.policy.kind) {
      case FaultPolicy::Kind::kFailNth:
        fire = p.hits == p.policy.n;
        break;
      case FaultPolicy::Kind::kFailFirst:
        fire = p.hits <= p.policy.n;
        break;
      case FaultPolicy::Kind::kFailAlways:
        fire = true;
        break;
      case FaultPolicy::Kind::kFailProb:
        fire = state->rng.NextBernoulli(p.policy.probability);
        break;
      case FaultPolicy::Kind::kDelayMs:
        delay_ms = p.policy.n;
        break;
    }
    if (fire) {
      injected = Status(
          p.policy.code,
          StrFormat("injected fault at '%s' (hit %llu)", point,
                    static_cast<unsigned long long>(p.hits)));
    }
  }
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return injected;
}

void FaultInjection::Arm(const std::string& point, FaultPolicy policy) {
  Impl* state = impl();
  std::lock_guard<std::mutex> lock(state->mu);
  state->points[point] = Impl::PointState{policy, 0};
  g_fault_injection_enabled.store(true, std::memory_order_relaxed);
}

void FaultInjection::Disarm(const std::string& point) {
  Impl* state = impl();
  std::lock_guard<std::mutex> lock(state->mu);
  state->points.erase(point);
  if (state->points.empty()) {
    g_fault_injection_enabled.store(false, std::memory_order_relaxed);
  }
}

void FaultInjection::Reset() {
  Impl* state = impl();
  std::lock_guard<std::mutex> lock(state->mu);
  state->points.clear();
  state->rng.Seed(kDefaultSeed);
  g_fault_injection_enabled.store(false, std::memory_order_relaxed);
}

void FaultInjection::Seed(uint64_t seed) {
  Impl* state = impl();
  std::lock_guard<std::mutex> lock(state->mu);
  state->rng.Seed(seed);
}

uint64_t FaultInjection::hits(const std::string& point) const {
  Impl* state = const_cast<FaultInjection*>(this)->impl();
  std::lock_guard<std::mutex> lock(state->mu);
  auto it = state->points.find(point);
  return it == state->points.end() ? 0 : it->second.hits;
}

Status FaultInjection::Configure(const std::string& spec) {
  for (const std::string& entry : Split(spec, ',')) {
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument(
          StrFormat("fault spec entry '%s' is not point=policy",
                    entry.c_str()));
    }
    const std::string point = entry.substr(0, eq);
    std::vector<std::string> parts = Split(entry.substr(eq + 1), ':');
    if (parts.empty() || parts[0].empty()) {
      return Status::InvalidArgument(
          StrFormat("fault spec entry '%s' has an empty policy",
                    entry.c_str()));
    }
    const std::string& kind = parts[0];
    FaultPolicy policy;
    size_t consumed = 1;  // parts consumed beyond the kind
    if (kind == "fail_nth" || kind == "fail_first" || kind == "delay_ms") {
      if (parts.size() < 2) {
        return Status::InvalidArgument(StrFormat(
            "fault policy '%s' needs a numeric argument (e.g. %s:3)",
            kind.c_str(), kind.c_str()));
      }
      char* end = nullptr;
      const uint64_t n = std::strtoull(parts[1].c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || (n == 0 && kind != "delay_ms")) {
        return Status::InvalidArgument(StrFormat(
            "fault policy '%s:%s' argument is not a positive integer",
            kind.c_str(), parts[1].c_str()));
      }
      policy.n = n;
      policy.kind = kind == "fail_nth"     ? FaultPolicy::Kind::kFailNth
                    : kind == "fail_first" ? FaultPolicy::Kind::kFailFirst
                                           : FaultPolicy::Kind::kDelayMs;
      consumed = 2;
    } else if (kind == "fail_prob") {
      if (parts.size() < 2) {
        return Status::InvalidArgument(
            "fault policy 'fail_prob' needs a probability (e.g. "
            "fail_prob:0.5)");
      }
      char* end = nullptr;
      policy.probability = std::strtod(parts[1].c_str(), &end);
      if (end == nullptr || *end != '\0' || policy.probability < 0.0 ||
          policy.probability > 1.0) {
        return Status::InvalidArgument(StrFormat(
            "fault probability '%s' is not in [0, 1]", parts[1].c_str()));
      }
      policy.kind = FaultPolicy::Kind::kFailProb;
      consumed = 2;
    } else if (kind == "fail_always") {
      policy.kind = FaultPolicy::Kind::kFailAlways;
    } else {
      return Status::InvalidArgument(
          StrFormat("unknown fault policy '%s'", kind.c_str()));
    }
    if (parts.size() > consumed) {
      if (parts.size() > consumed + 1 ||
          !ParseStatusCode(parts[consumed], &policy.code)) {
        return Status::InvalidArgument(StrFormat(
            "fault spec entry '%s' has a malformed status suffix",
            entry.c_str()));
      }
    }
    Arm(point, policy);
  }
  return Status::OK();
}

namespace {

/// Arms RESTORE_FAULT_SPEC before main() so chaos runs need no code changes.
/// A malformed spec aborts: a typo'd chaos lane must fail loud, not silently
/// run fault-free.
const bool g_env_spec_armed = [] {
  const char* spec = std::getenv("RESTORE_FAULT_SPEC");
  if (spec == nullptr || spec[0] == '\0') return false;
  Status s = FaultInjection::Instance().Configure(spec);
  if (!s.ok()) {
    std::fprintf(stderr, "RESTORE_FAULT_SPEC rejected: %s\n",
                 s.ToString().c_str());
    std::abort();
  }
  return true;
}();

}  // namespace

}  // namespace restore
