#ifndef RESTORE_EXEC_JOIN_H_
#define RESTORE_EXEC_JOIN_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "exec/exec_control.h"
#include "storage/database.h"
#include "storage/table.h"

namespace restore {

/// Resolves a (possibly unqualified) column reference against a table whose
/// columns may be qualified ("table.column"). Matching rules:
///  1. exact name match, else
///  2. unique suffix match on ".<name>".
/// Errors if no column or more than one column matches.
Result<size_t> ResolveColumn(const Table& table, const std::string& name);

/// Inner hash equi-join of `left` and `right` on left[left_col] ==
/// right[right_col]. The build side is `right`. NULL keys never match.
/// Output columns are left columns followed by right columns; the join key
/// appears once per side (as in the inputs).
///
/// `ctx` (optional) is checked at row-block boundaries of the build and
/// probe loops: a cancelled/expired query aborts mid-join with the
/// corresponding status instead of finishing the scan.
Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& left_col,
                       const std::string& right_col,
                       const ExecContext* ctx = nullptr);

/// Joins base tables of `db` along foreign keys: `tables` must be orderable
/// such that each table shares an FK with a previously joined one (the
/// function performs that ordering). All output columns are qualified as
/// "table.column". `ctx` is checked per hop and inside each hash join.
Result<Table> NaturalJoinTables(const Database& db,
                                const std::vector<std::string>& tables,
                                const ExecContext* ctx = nullptr);

}  // namespace restore

#endif  // RESTORE_EXEC_JOIN_H_
