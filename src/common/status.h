#ifndef RESTORE_COMMON_STATUS_H_
#define RESTORE_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace restore {

/// Error categories used across the library. Modeled after the RocksDB /
/// Arrow convention of returning a `Status` instead of throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kParseError,
  kCancelled,
  kDeadlineExceeded,
  kResourceExhausted,
  /// Temporarily unable to serve (e.g. an open circuit breaker): the caller
  /// should retry later. Maps to HTTP 503 + Retry-After in the server.
  kUnavailable,
};

/// Returns a human-readable name for a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. All fallible public APIs in this
/// library return `Status` (or `Result<T>`, see result.h) instead of throwing.
///
/// Usage:
///   Status s = table.AddColumn(...);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller.
#define RESTORE_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::restore::Status _status = (expr);              \
    if (!_status.ok()) return _status;               \
  } while (0)

}  // namespace restore

#endif  // RESTORE_COMMON_STATUS_H_
