#include "nn/embedding.h"

#include <cassert>
#include <cstring>

#include "common/thread_pool.h"

namespace restore {

EmbeddingSet::EmbeddingSet(const std::vector<int>& vocab_sizes,
                           size_t embed_dim, Rng& rng)
    : embed_dim_(embed_dim) {
  tables_.resize(vocab_sizes.size());
  for (size_t i = 0; i < vocab_sizes.size(); ++i) {
    tables_[i].Init(static_cast<size_t>(vocab_sizes[i]), embed_dim);
    // Small gaussian init as usual for embeddings.
    for (size_t k = 0; k < tables_[i].value.size(); ++k) {
      tables_[i].value.data()[k] =
          static_cast<float>(rng.NextGaussian(0.0, 0.1));
    }
  }
}

void EmbeddingSet::Forward(const IntMatrix& codes, Matrix* out,
                           bool cache_codes) {
  if (cache_codes) codes_cache_ = codes;
  ForwardInference(codes, out);
}

void EmbeddingSet::ForwardInference(const IntMatrix& codes,
                                    Matrix* out) const {
  assert(codes.cols() == tables_.size());
  out->Resize(codes.rows(), output_dim());
  const size_t row_bytes = embed_dim_ * sizeof(float);
  // Gather rows are independent: shard them across the pool (fixed grain).
  ParallelFor(0, codes.rows(), 64, [&](size_t lo, size_t hi) {
    for (size_t r = lo; r < hi; ++r) {
      float* orow = out->row(r);
      for (size_t a = 0; a < tables_.size(); ++a) {
        const int32_t code = codes.at(r, a);
        assert(code >= 0 &&
               code < static_cast<int32_t>(tables_[a].value.rows()));
        std::memcpy(orow + a * embed_dim_,
                    tables_[a].value.row(static_cast<size_t>(code)),
                    row_bytes);
      }
    }
  });
}

void EmbeddingSet::ForwardInferenceColumn(const IntMatrix& codes, size_t attr,
                                          Matrix* out) const {
  assert(attr < tables_.size());
  assert(out->rows() == codes.rows() && out->cols() == output_dim());
  const Matrix& table = tables_[attr].value;
  const size_t block = attr * embed_dim_;
  const size_t row_bytes = embed_dim_ * sizeof(float);
  for (size_t r = 0; r < codes.rows(); ++r) {
    const int32_t code = codes.at(r, attr);
    assert(code >= 0 && code < static_cast<int32_t>(table.rows()));
    std::memcpy(out->row(r) + block, table.row(static_cast<size_t>(code)),
                row_bytes);
  }
}

void EmbeddingSet::Backward(const Matrix& dout) {
  assert(dout.rows() == codes_cache_.rows());
  assert(dout.cols() == output_dim());
  // Scatter-adds into the same table row can collide ACROSS batch rows, so
  // rows cannot be sharded — but different ATTRIBUTES write disjoint tables.
  // Each shard walks the batch in ascending order, so per-table accumulation
  // order is fixed regardless of thread count.
  ParallelFor(0, tables_.size(), 1, [&](size_t a_lo, size_t a_hi) {
    for (size_t a = a_lo; a < a_hi; ++a) {
      Param& table = tables_[a];
      for (size_t r = 0; r < codes_cache_.rows(); ++r) {
        const int32_t code = codes_cache_.at(r, a);
        float* grad = table.grad.row(static_cast<size_t>(code));
        const float* src = dout.row(r) + a * embed_dim_;
        for (size_t k = 0; k < embed_dim_; ++k) grad[k] += src[k];
      }
    }
  });
}

}  // namespace restore
