// Quickstart: complete a two-table database where child tuples were removed
// with a systematic bias, then compare an aggregate on the incomplete vs the
// completed data — through the concurrent restore::Db session API.
//
//   $ ./build/quickstart

#include <chrono>
#include <cstdio>
#include <vector>

#include "datagen/incompleteness.h"
#include "datagen/synthetic.h"
#include "exec/executor.h"
#include "metrics/metrics.h"
#include "restore/db.h"

using namespace restore;

int main() {
  // 1. A "true" database we normally would not have: table_a (complete) and
  //    table_b (child of table_a). In practice you start from step 2.
  SyntheticConfig data_config;
  data_config.num_parents = 400;
  data_config.predictability = 0.9;  // b is mostly determined by a
  auto complete = GenerateSynthetic(data_config);
  if (!complete.ok()) {
    std::fprintf(stderr, "generating data failed: %s\n",
                 complete.status().ToString().c_str());
    return 1;
  }

  // 2. Derive the incomplete database: 50% of table_b's tuples are missing,
  //    correlated with the attribute value (systematic missingness).
  BiasedRemovalConfig removal;
  removal.table = "table_b";
  removal.column = "b";
  removal.keep_rate = 0.5;
  removal.removal_correlation = 0.6;
  auto incomplete = ApplyBiasedRemoval(*complete, removal);
  if (!incomplete.ok()) {
    std::fprintf(stderr, "applying biased removal failed: %s\n",
                 incomplete.status().ToString().c_str());
    return 1;
  }
  // Only 30% of the true tuple factors are known.
  if (auto s = ThinTupleFactors(&*incomplete, 0.3, 7); !s.ok()) {
    std::fprintf(stderr, "thinning tuple factors failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }

  // 3. Annotate the schema: which table is incomplete?
  SchemaAnnotation annotation;
  annotation.MarkIncomplete("table_b");

  // 4. Open the completion facade. Candidate paths are enumerated here;
  //    models train lazily on first use and are shared by all sessions.
  auto db = Db::Open(&*incomplete, annotation, DbOptions());
  if (!db.ok()) {
    std::fprintf(stderr, "opening Db failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  Session session = (*db)->CreateSession();

  // 5. Answer a query on the completed data and compare against the truth.
  const std::string sql =
      "SELECT COUNT(*) FROM table_a NATURAL JOIN table_b GROUP BY b;";
  auto truth = ExecuteSql(*complete, sql);
  auto naive = ExecuteSql(*incomplete, sql);
  auto completed = session.Execute(sql);
  if (!truth.ok()) {
    std::fprintf(stderr, "truth query failed: %s\n",
                 truth.status().ToString().c_str());
    return 1;
  }
  if (!naive.ok()) {
    std::fprintf(stderr, "incomplete query failed: %s\n",
                 naive.status().ToString().c_str());
    return 1;
  }
  if (!completed.ok()) {
    std::fprintf(stderr, "completed query failed: %s\n",
                 completed.status().ToString().c_str());
    return 1;
  }

  std::printf("query: %s\n\n", sql.c_str());
  std::printf("%-8s %10s %12s %10s\n", "group", "truth", "incomplete",
              "completed");
  // Stream the truth ResultSet batch by batch and line up the other two by
  // group key.
  ResultBatch batch;
  while (truth->NextBatch(&batch)) {
    for (size_t r = 0; r < batch.rows; ++r) {
      const std::vector<std::string> key{batch.key(r, 0)};
      std::printf("%-8s %10.0f %12.0f %10.0f\n", key[0].c_str(),
                  batch.value(r, 0), naive->ValueOr(key, 0, 0.0),
                  completed->ValueOr(key, 0, 0.0));
    }
  }
  std::printf("\navg relative error incomplete: %.3f\n",
              AverageRelativeError(*truth, *naive));
  std::printf("avg relative error completed:  %.3f\n",
              AverageRelativeError(*truth, *completed));
  std::printf("completed-query stats: %s\n",
              completed->stats().ToString().c_str());

  // 6. Prepared queries: parse once, bind and execute many times.
  auto prepared =
      session.Prepare("SELECT COUNT(*) FROM table_b WHERE b != ?;");
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n",
                 prepared.status().ToString().c_str());
    return 1;
  }
  const std::string b0 = (*incomplete->GetTable("table_b").value())
                             .GetColumn("b")
                             .value()
                             ->dictionary()
                             ->ValueOf(0);
  // Run with execution control: a cancellable token and a 30s deadline.
  QueryOptions options;
  options.cancel = CancellationToken::Cancellable();
  options.WithTimeout(std::chrono::seconds(30));
  auto bound = prepared->Run({Value::Categorical(b0)}, options);
  if (!bound.ok()) {
    std::fprintf(stderr, "prepared execution failed: %s\n",
                 bound.status().ToString().c_str());
    return 1;
  }
  std::printf("\ncompleted COUNT(*) with b != '%s': %.0f\n", b0.c_str(),
              bound->value(0, 0));
  std::printf("models trained: %zu (%.2fs)\n", (*db)->models_trained(),
              (*db)->total_train_seconds());
  const Db::Stats stats = (*db)->stats();
  std::printf("db totals: %llu ok / %llu cancelled / %llu expired — %s\n",
              static_cast<unsigned long long>(stats.queries_ok),
              static_cast<unsigned long long>(stats.queries_cancelled),
              static_cast<unsigned long long>(stats.queries_deadline_exceeded),
              stats.totals.ToString().c_str());
  return 0;
}
