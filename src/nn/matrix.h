#ifndef RESTORE_NN_MATRIX_H_
#define RESTORE_NN_MATRIX_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace restore {

/// Dense row-major float matrix. This is the only tensor type the NN
/// substrate needs (all layers operate on [batch x features] activations).
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float at(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  float* row(size_t r) { return data_.data() + r * cols_; }
  const float* row(size_t r) const { return data_.data() + r * cols_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// Shape-preserving resize: when the shape already matches, this is a
  /// no-op (existing contents are KEPT — callers that need zeros must call
  /// Fill(0) explicitly). On a shape change the storage is zero-filled.
  /// This kills the per-call zero/realloc churn of forward/backward scratch
  /// buffers, which keep the same shape across training steps.
  void Resize(size_t rows, size_t cols) {
    if (rows == rows_ && cols == cols_) return;
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0f);
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

/// Integer matrix used for batches of discretized attribute codes.
class IntMatrix {
 public:
  IntMatrix() : rows_(0), cols_(0) {}
  IntMatrix(size_t rows, size_t cols, int32_t fill = 0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  int32_t& at(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  int32_t at(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  const int32_t* row(size_t r) const { return data_.data() + r * cols_; }
  int32_t* row(size_t r) { return data_.data() + r * cols_; }

  /// Shape-preserving resize (same contract as Matrix::Resize): a matching
  /// shape keeps the contents, a shape change zero-fills.
  void Resize(size_t rows, size_t cols) {
    if (rows == rows_ && cols == cols_) return;
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0);
  }

  /// Returns a copy containing only the listed rows.
  IntMatrix GatherRows(const std::vector<size_t>& rows) const {
    IntMatrix out(rows.size(), cols_);
    GatherRowsInto(rows, &out);
    return out;
  }

  /// Allocation-free variant for hot loops: gathers into a reused buffer.
  void GatherRowsInto(const std::vector<size_t>& rows, IntMatrix* out) const {
    out->Resize(rows.size(), cols_);
    for (size_t i = 0; i < rows.size(); ++i) {
      const int32_t* src = row(rows[i]);
      int32_t* dst = out->row(i);
      for (size_t c = 0; c < cols_; ++c) dst[c] = src[c];
    }
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<int32_t> data_;
};

// ---- BLAS-lite kernels -----------------------------------------------------

/// out = a * b            [m x k] * [k x n] -> [m x n]
void MatMul(const Matrix& a, const Matrix& b, Matrix* out);

/// Fused inference forward: out = relu(a * b + bias) + residual, with each
/// epilogue stage optional (pass nullptr / false to skip). The stages run in
/// exactly that order per output element inside the kernel's store phase, so
/// the values are BIT-identical to MatMul; AddBiasRows; ReluInPlace;
/// AddInPlace — only the three full read+write sweeps over the activation
/// disappear. `residual` must not alias `out` (aliasing `a` is fine; the
/// hidden-layer residual does exactly that).
void MatMulFused(const Matrix& a, const Matrix& b, const Matrix* bias,
                 bool relu, const Matrix* residual, Matrix* out);

/// Column-sliced MatMul: resizes out to [a.rows() x b.cols()] and computes
/// ONLY columns [col_begin, col_end) of `out = a * b`; all other columns are
/// left untouched. Each computed element is BIT-identical to what the full
/// MatMul would produce (same single accumulation chain over ascending k),
/// so callers that consume one column block — the sampling output layer —
/// can slice without perturbing results. Cost scales with the slice width.
void MatMulColsSlice(const Matrix& a, const Matrix& b, size_t col_begin,
                     size_t col_end, Matrix* out);

/// MatMulColsSlice with the bias add fused into the store phase (per-element
/// identical to MatMulColsSlice followed by AddBiasRowsSlice).
void MatMulColsSliceBias(const Matrix& a, const Matrix& b, const Matrix& bias,
                         size_t col_begin, size_t col_end, Matrix* out);

/// out = a * b^T          [m x k] * [n x k] -> [m x n]
///
/// Large products pack b^T into a [k x n] scratch tile and run the
/// rank-1-update MatMul kernel over it (~1.5x the dot-form kernel's
/// throughput); small products keep the dot-form path. The packed and dot paths
/// accumulate in different orders, so which one runs is a pure function of
/// the problem shape — results stay deterministic, but changing the
/// threshold is a numerics change for training (re-baseline the benches).
/// The 3-arg overload uses a thread-local pack buffer; hot callers (layer
/// backward passes) pass their own persistent `pack_scratch` instead.
void MatMulTransB(const Matrix& a, const Matrix& b, Matrix* out);
void MatMulTransB(const Matrix& a, const Matrix& b, Matrix* out,
                  Matrix* pack_scratch);

/// out += a * b[b_row_begin : b_row_begin + a.cols(), :] — accumulating GEMM
/// against a contiguous row block of b. This is the incremental-sampling
/// delta update (h1 += (e_new - e_old) · W1[block]); accumulation into the
/// existing out values makes its numerics differ from a fresh full GEMM, so
/// the caller (MadeModel) gates it behind an opt-in config flag.
void MatMulRowsAccum(const Matrix& a, const Matrix& b, size_t b_row_begin,
                     Matrix* out);

/// out += a^T * b         [m x k]^T * [m x n] -> [k x n] (accumulating)
void MatMulTransAAccum(const Matrix& a, const Matrix& b, Matrix* out);

/// out[r] += bias for every row r. bias is [1 x n].
void AddBiasRows(const Matrix& bias, Matrix* out);

/// bias_grad += column sums of dy.
void AccumBiasGrad(const Matrix& dy, Matrix* bias_grad);

/// y += x (shapes must match).
void AddInPlace(const Matrix& x, Matrix* y);

/// Column-sliced add: y[r, c] += x[r, c] for c in [col_begin, col_end) only
/// (shapes must match). Companion of MatMulColsSlice for the context
/// projection added into a logits slice.
void AddInPlaceCols(const Matrix& x, size_t col_begin, size_t col_end,
                    Matrix* y);

/// In-place ReLU; returns mask-applied matrix via dy in BackwardRelu.
void ReluInPlace(Matrix* x);

/// y = relu(x) in one pass (identical values to copying x into y and calling
/// ReluInPlace; used by the incremental sampling path, which must keep the
/// pre-activation around).
void ReluInto(const Matrix& x, Matrix* y);

/// Vectorized max over p[0..n) (n > 0). Numerically identical to the scalar
/// std::max left-fold for non-NaN inputs — max is order-independent — with
/// at most the sign of a zero maximum differing, which the softmax consumers
/// are insensitive to (exp(x - ±0.0) == exp(x)).
float RowMax(const float* p, size_t n);

/// dx = dy masked by (y > 0), where y is the post-ReLU activation.
void ReluBackward(const Matrix& y, Matrix* dy);

/// Numerically-stable in-place softmax over the column slice
/// [col_begin, col_end) of every row.
void SoftmaxSlice(Matrix* logits, size_t col_begin, size_t col_end);

/// Fixed row-shard grain for row-parallel loss/softmax/sampling loops over a
/// slice of `slice_width` columns. Depends only on the width (never the
/// thread count) so shard boundaries — and float accumulation orders — are
/// identical at any pool size.
inline size_t LossRowGrain(size_t slice_width) {
  const size_t grain = 4096 / (slice_width > 0 ? slice_width : 1);
  return grain > 16 ? grain : 16;
}

}  // namespace restore

#endif  // RESTORE_NN_MATRIX_H_
