// Live-data tests: Db::Append / Db::UpdateTable semantics, staleness
// tracking, policy-driven background refresh with RCU model hot-swap, the
// frozen-database bit-identity guarantee, and crash-safe generational model
// persistence. The swap-under-hammer suite is the determinism anchor: while
// a refresher swaps generations, every concurrent answer must equal an
// all-old or all-new baseline — never a mix.

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/serialize.h"
#include "datagen/incompleteness.h"
#include "datagen/synthetic.h"
#include "exec/exec_control.h"
#include "restore/db.h"

namespace restore {
namespace {

EngineConfig FastConfig() {
  EngineConfig config;
  config.model.epochs = 4;
  config.model.min_train_steps = 120;
  config.model.hidden_dim = 24;
  config.model.embed_dim = 4;
  config.model.max_bins = 12;
  config.max_candidates = 2;
  return config;
}

Database MakeIncompleteSynthetic(uint64_t seed) {
  SyntheticConfig data_config;
  data_config.num_parents = 200;
  data_config.predictability = 0.85;
  data_config.seed = seed;
  auto complete = GenerateSynthetic(data_config);
  EXPECT_TRUE(complete.ok());
  BiasedRemovalConfig removal;
  removal.table = "table_b";
  removal.column = "b";
  removal.keep_rate = 0.5;
  removal.removal_correlation = 0.5;
  removal.seed = seed + 1;
  auto incomplete = ApplyBiasedRemoval(*complete, removal);
  EXPECT_TRUE(incomplete.ok());
  return std::move(incomplete).value();
}

SchemaAnnotation Annotation() {
  SchemaAnnotation annotation;
  annotation.MarkIncomplete("table_b");
  return annotation;
}

/// Synthetic table_b rows: (id, a_id, b). a_id must reference an existing
/// table_a id; fresh ids and an UNSEEN category exercise the dictionary COW.
std::vector<std::vector<Value>> MakeRows(size_t n, int64_t first_id,
                                         const std::string& category) {
  std::vector<std::vector<Value>> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back({Value::Int64(first_id + static_cast<int64_t>(i)),
                    Value::Int64(static_cast<int64_t>(i % 50)),
                    Value::Categorical(category)});
  }
  return rows;
}

/// A query answer flattened to comparable strings (one per row, keys then
/// values; values printed exactly).
std::vector<std::string> Flatten(const ResultSet& rs) {
  std::vector<std::string> out;
  out.reserve(rs.num_rows());
  for (size_t r = 0; r < rs.num_rows(); ++r) {
    std::string line;
    for (size_t c = 0; c < rs.num_key_columns(); ++c) {
      line += rs.key(r, c);
      line += '|';
    }
    for (size_t c = 0; c < rs.num_value_columns(); ++c) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", rs.value(r, c));
      line += buf;
      line += '|';
    }
    out.push_back(std::move(line));
  }
  return out;
}

constexpr char kCountByB[] = "SELECT COUNT(*) FROM table_b GROUP BY b;";
constexpr char kJoinCount[] =
    "SELECT COUNT(*) FROM table_a NATURAL JOIN table_b GROUP BY b;";

// ---- Ingestion API ----------------------------------------------------------

TEST(IngestionTest, AppendPublishesRowsAndBumpsEpoch) {
  Database incomplete = MakeIncompleteSynthetic(501);
  auto db = Db::Open(&incomplete, Annotation(), DbOptions().WithEngine(FastConfig()));
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ((*db)->epoch(), 0u);

  const size_t before = (*(*db)->data()->GetTable("table_b"))->NumRows();
  ASSERT_TRUE((*db)->Append("table_b", MakeRows(7, 900000, "novel")).ok());
  EXPECT_EQ((*db)->epoch(), 1u);
  EXPECT_EQ((*(*db)->data()->GetTable("table_b"))->NumRows(), before + 7);
  // The Db's construction-time database object is never mutated.
  EXPECT_EQ((*incomplete.GetTable("table_b"))->NumRows(), before);

  const Db::Stats stats = (*db)->stats();
  EXPECT_EQ(stats.rows_ingested, 7u);
  EXPECT_EQ(stats.epoch, 1u);

  // Appending an empty batch publishes nothing.
  ASSERT_TRUE((*db)->Append("table_b", {}).ok());
  EXPECT_EQ((*db)->epoch(), 1u);
}

TEST(IngestionTest, AppendValidatesAndPublishesNothingOnFailure) {
  Database incomplete = MakeIncompleteSynthetic(503);
  auto db = Db::Open(&incomplete, Annotation(), DbOptions().WithEngine(FastConfig()));
  ASSERT_TRUE(db.ok());

  Status missing = (*db)->Append("no_such_table", MakeRows(1, 1, "x"));
  EXPECT_TRUE(missing.IsNotFound()) << missing;

  // Batch with a valid first row and a malformed second: NOTHING lands.
  const size_t before = (*(*db)->data()->GetTable("table_b"))->NumRows();
  std::vector<std::vector<Value>> rows = MakeRows(1, 910000, "ok");
  rows.push_back({Value::Int64(910001)});  // wrong arity
  Status bad = (*db)->Append("table_b", rows);
  EXPECT_TRUE(bad.IsInvalidArgument()) << bad;
  EXPECT_EQ((*(*db)->data()->GetTable("table_b"))->NumRows(), before);
  EXPECT_EQ((*db)->epoch(), 0u);
  EXPECT_EQ((*db)->stats().rows_ingested, 0u);

  // Type mismatch inside a row.
  std::vector<std::vector<Value>> typed = MakeRows(1, 910002, "ok");
  typed[0][2] = Value::Int64(3);  // categorical column
  EXPECT_TRUE((*db)->Append("table_b", typed).IsInvalidArgument());
  EXPECT_EQ((*db)->epoch(), 0u);
}

TEST(IngestionTest, UpdateTableReplacesWholeRelation) {
  Database incomplete = MakeIncompleteSynthetic(505);
  auto db = Db::Open(&incomplete, Annotation(), DbOptions().WithEngine(FastConfig()));
  ASSERT_TRUE(db.ok());

  // A replacement must match the existing schema exactly.
  Table wrong("table_b", {{"id", ColumnType::kInt64}});
  EXPECT_TRUE((*db)->UpdateTable(std::move(wrong)).IsInvalidArgument());
  Table unknown("nope", {{"id", ColumnType::kInt64}});
  EXPECT_TRUE((*db)->UpdateTable(std::move(unknown)).IsNotFound());
  EXPECT_EQ((*db)->epoch(), 0u);

  Table replacement("table_b", {{"id", ColumnType::kInt64},
                                {"a_id", ColumnType::kInt64},
                                {"b", ColumnType::kCategorical}});
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(replacement
                    .AppendRow({Value::Int64(i), Value::Int64(i % 50),
                                Value::Categorical(i % 2 ? "x" : "y")})
                    .ok());
  }
  ASSERT_TRUE((*db)->UpdateTable(std::move(replacement)).ok());
  EXPECT_EQ((*db)->epoch(), 1u);
  EXPECT_EQ((*(*db)->data()->GetTable("table_b"))->NumRows(), 40u);
  EXPECT_EQ((*db)->stats().tables_updated, 1u);
}

TEST(IngestionTest, FrozenDbStaysBitIdenticalAndAtEpochZero) {
  // No Append ever happens: the Db must behave exactly like the frozen
  // engine — epoch pinned at 0 (legacy cache keys) and answers a pure
  // function of (data, config, seed), reproduced by an identical twin.
  Database a = MakeIncompleteSynthetic(507);
  Database b = MakeIncompleteSynthetic(507);
  auto db_a = Db::Open(&a, Annotation(), DbOptions().WithEngine(FastConfig()));
  auto db_b = Db::Open(&b, Annotation(), DbOptions().WithEngine(FastConfig()));
  ASSERT_TRUE(db_a.ok() && db_b.ok());

  auto r_a = (*db_a)->ExecuteCompletedSql(kJoinCount);
  auto r_b = (*db_b)->ExecuteCompletedSql(kJoinCount);
  ASSERT_TRUE(r_a.ok() && r_b.ok());
  EXPECT_EQ(Flatten(*r_a), Flatten(*r_b));
  EXPECT_EQ((*db_a)->epoch(), 0u);

  // Repeat on the same Db: cached or not, bit-identical.
  auto again = (*db_a)->ExecuteCompletedSql(kJoinCount);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(Flatten(*r_a), Flatten(*again));
}

// ---- Staleness + refresh ----------------------------------------------------

TEST(IngestionTest, FreshnessTracksStalenessAndRefreshClearsIt) {
  Database incomplete = MakeIncompleteSynthetic(509);
  auto db = Db::Open(&incomplete, Annotation(), DbOptions().WithEngine(FastConfig()));
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->ExecuteCompletedSql(kCountByB).ok());

  std::vector<ModelInfo> fresh = (*db)->Freshness();
  ASSERT_FALSE(fresh.empty());
  for (const ModelInfo& info : fresh) {
    EXPECT_EQ(info.generation, 1u);
    EXPECT_EQ(info.staleness_rows, 0u);
    EXPECT_FALSE(info.loaded_from_disk);
    EXPECT_GT(info.trained_rows, 0u);
  }

  ASSERT_TRUE((*db)->Append("table_b", MakeRows(12, 920000, "novel")).ok());
  bool saw_stale = false;
  for (const ModelInfo& info : (*db)->Freshness()) {
    bool touches_b = false;
    for (const auto& t : info.path) touches_b |= t == "table_b";
    if (touches_b) {
      EXPECT_EQ(info.staleness_rows, 12u);
      EXPECT_EQ(info.current_rows, info.trained_rows + 12);
      saw_stale = true;
    }
  }
  EXPECT_TRUE(saw_stale);

  ASSERT_TRUE((*db)->RefreshStaleModels().ok());
  for (const ModelInfo& info : (*db)->Freshness()) {
    EXPECT_EQ(info.generation, 2u);
    EXPECT_EQ(info.staleness_rows, 0u);
  }
  const Db::Stats stats = (*db)->stats();
  EXPECT_GT(stats.models_refreshed, 0u);
  EXPECT_EQ(stats.generations_retired, stats.models_refreshed);
  EXPECT_EQ(stats.refresh_failures, 0u);
  // A refresh bumps the epoch (one bump per swapped model, after the
  // ingest's own bump).
  EXPECT_GE((*db)->epoch(), 2u);

  // Post-swap queries see the new generation and still answer fine.
  EXPECT_TRUE((*db)->ExecuteCompletedSql(kCountByB).ok());
}

TEST(IngestionTest, RefreshedGenerationIsDeterministic) {
  // Generation 2 is a pure function of (data-at-refresh, path, generation):
  // two Dbs fed the same ingest and refreshed must answer identically.
  Database a = MakeIncompleteSynthetic(511);
  Database b = MakeIncompleteSynthetic(511);
  auto db_a = Db::Open(&a, Annotation(), DbOptions().WithEngine(FastConfig()));
  auto db_b = Db::Open(&b, Annotation(), DbOptions().WithEngine(FastConfig()));
  ASSERT_TRUE(db_a.ok() && db_b.ok());
  ASSERT_TRUE((*db_a)->ExecuteCompletedSql(kCountByB).ok());
  ASSERT_TRUE((*db_b)->ExecuteCompletedSql(kCountByB).ok());

  for (auto* db : {&*db_a, &*db_b}) {
    ASSERT_TRUE((*db)->Append("table_b", MakeRows(9, 930000, "novel")).ok());
    ASSERT_TRUE((*db)->RefreshStaleModels().ok());
  }
  auto r_a = (*db_a)->ExecuteCompletedSql(kJoinCount);
  auto r_b = (*db_b)->ExecuteCompletedSql(kJoinCount);
  ASSERT_TRUE(r_a.ok() && r_b.ok());
  EXPECT_EQ(Flatten(*r_a), Flatten(*r_b));
}

TEST(IngestionTest, FinetunePolicyRefreshesWithWarmStart) {
  Database incomplete = MakeIncompleteSynthetic(513);
  RefreshPolicy policy;
  policy.mode = RefreshPolicy::Mode::kFinetune;
  policy.finetune_epochs = 2;
  auto db = Db::Open(&incomplete, Annotation(),
                     DbOptions().WithEngine(FastConfig()).WithRefreshPolicy(
                         policy));
  ASSERT_TRUE(db.ok());
  auto before = (*db)->ExecuteCompletedSql(kCountByB);
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE((*db)->Append("table_b", MakeRows(10, 940000, "novel")).ok());
  ASSERT_TRUE((*db)->RefreshStaleModels().ok());
  for (const ModelInfo& info : (*db)->Freshness()) {
    EXPECT_EQ(info.generation, 2u);
  }
  EXPECT_TRUE((*db)->ExecuteCompletedSql(kCountByB).ok());
}

TEST(IngestionTest, BackgroundRefresherRetrainsWhenThresholdCrossed) {
  Database incomplete = MakeIncompleteSynthetic(515);
  RefreshPolicy policy;
  policy.staleness_rows_threshold = 5;
  policy.max_concurrent_retrains = 1;
  auto db = Db::Open(&incomplete, Annotation(),
                     DbOptions().WithEngine(FastConfig()).WithRefreshPolicy(
                         policy));
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->ExecuteCompletedSql(kCountByB).ok());

  // Below threshold: no refresh is scheduled.
  ASSERT_TRUE((*db)->Append("table_b", MakeRows(2, 950000, "novel")).ok());
  (*db)->WaitForRefreshIdle();
  EXPECT_EQ((*db)->stats().models_refreshed, 0u);

  // Crossing it: the worker retrains and hot-swaps without being asked.
  ASSERT_TRUE((*db)->Append("table_b", MakeRows(6, 950100, "novel")).ok());
  (*db)->WaitForRefreshIdle();
  EXPECT_GT((*db)->stats().models_refreshed, 0u);
  for (const ModelInfo& info : (*db)->Freshness()) {
    EXPECT_GE(info.generation, 2u);
    EXPECT_LT(info.staleness_rows, 5u);
  }
  EXPECT_TRUE((*db)->ExecuteCompletedSql(kCountByB).ok());
}

TEST(IngestionTest, CacheNeverServesAcrossGenerations) {
  Database incomplete = MakeIncompleteSynthetic(517);
  auto db = Db::Open(&incomplete, Annotation(), DbOptions().WithEngine(FastConfig()));
  ASSERT_TRUE(db.ok());

  auto r1 = (*db)->ExecuteCompletedSql(kCountByB);
  auto r2 = (*db)->ExecuteCompletedSql(kCountByB);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(Flatten(*r1), Flatten(*r2));
  EXPECT_GT((*db)->stats().totals.cache_hits, 0u);

  // Ingest + refresh: the old epoch's cache entries must be unreachable.
  // The appended rows carry a category that does not exist in the base, so
  // a cached epoch-0 answer cannot contain the "novel" group while a fresh
  // answer must.
  auto novel_count = [](const ResultSet& rs) {
    for (size_t r = 0; r < rs.num_rows(); ++r) {
      if (rs.key(r, 0) == "novel") return rs.value(r, 0);
    }
    return 0.0;
  };
  EXPECT_EQ(novel_count(*r1), 0.0);
  ASSERT_TRUE((*db)->Append("table_b", MakeRows(25, 960000, "novel")).ok());
  ASSERT_TRUE((*db)->RefreshStaleModels().ok());
  auto r3 = (*db)->ExecuteCompletedSql(kCountByB);
  ASSERT_TRUE(r3.ok());
  EXPECT_GE(novel_count(*r3), 25.0);

  // Within the new epoch the cache serves again — identically.
  auto r4 = (*db)->ExecuteCompletedSql(kCountByB);
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(Flatten(*r3), Flatten(*r4));
}

TEST(IngestionTest, FailedFirstTrainingRetriesAfterIngest) {
  // child starts EMPTY: training fails (empty join) and the once-latch
  // caches the failure. New data is new information — after an Append into
  // the path, the failure must be retried, not replayed.
  Database db_data;
  Table parent("parent", {{"id", ColumnType::kInt64},
                          {"p", ColumnType::kCategorical}});
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(parent
                    .AppendRow({Value::Int64(i),
                                Value::Categorical(i % 2 ? "l" : "r")})
                    .ok());
  }
  Table child("child", {{"id", ColumnType::kInt64},
                        {"parent_id", ColumnType::kInt64},
                        {"c", ColumnType::kCategorical}});
  ASSERT_TRUE(db_data.AddTable(std::move(parent)).ok());
  ASSERT_TRUE(db_data.AddTable(std::move(child)).ok());
  ASSERT_TRUE(db_data.AddForeignKey("child", "parent_id", "parent", "id").ok());
  SchemaAnnotation annotation;
  annotation.MarkIncomplete("child");

  EngineConfig config = FastConfig();
  auto db = Db::Open(&db_data, annotation, DbOptions().WithEngine(config));
  ASSERT_TRUE(db.ok()) << db.status();

  auto first = (*db)->ModelForPath({"parent", "child"});
  ASSERT_FALSE(first.ok());
  // Replayed from the latch, identically, while nothing changed.
  auto replay = (*db)->ModelForPath({"parent", "child"});
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(first.status().message(), replay.status().message());

  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 120; ++i) {
    rows.push_back({Value::Int64(i), Value::Int64(i % 60),
                    Value::Categorical(i % 3 ? "a" : "b")});
  }
  ASSERT_TRUE((*db)->Append("child", rows).ok());
  auto retried = (*db)->ModelForPath({"parent", "child"});
  EXPECT_TRUE(retried.ok()) << retried.status();
}

// ---- Swap under hammer ------------------------------------------------------

TEST(IngestionTest, SwapUnderHammerServesOnlyConsistentGenerations) {
  // Baselines from a twin Db driven through the same states sequentially:
  //   A0 = old data, generation-1 models
  //   A1 = data after the append, generation-1 models (pre-swap window)
  //   A2 = data after the append, generation-2 models
  Database ref_data = MakeIncompleteSynthetic(519);
  auto ref = Db::Open(&ref_data, Annotation(), DbOptions().WithEngine(FastConfig()));
  ASSERT_TRUE(ref.ok());
  auto a0 = (*ref)->ExecuteCompletedSql(kJoinCount);
  ASSERT_TRUE(a0.ok()) << a0.status();
  const auto rows = MakeRows(60, 970000, "novel");
  ASSERT_TRUE((*ref)->Append("table_b", rows).ok());
  auto a1 = (*ref)->ExecuteCompletedSql(kJoinCount);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE((*ref)->RefreshStaleModels().ok());
  auto a2 = (*ref)->ExecuteCompletedSql(kJoinCount);
  ASSERT_TRUE(a2.ok());
  const std::vector<std::vector<std::string>> baselines = {
      Flatten(*a0), Flatten(*a1), Flatten(*a2)};

  // The hammered Db: background refresher armed, 4 reader threads churning
  // while the main thread ingests and the worker swaps mid-traffic.
  Database live_data = MakeIncompleteSynthetic(519);
  RefreshPolicy policy;
  policy.staleness_rows_threshold = 50;
  policy.max_concurrent_retrains = 1;
  auto live = Db::Open(&live_data, Annotation(),
                       DbOptions().WithEngine(FastConfig()).WithRefreshPolicy(
                           policy));
  ASSERT_TRUE(live.ok());
  // Warm up generation 1 (same training snapshot as the twin's).
  ASSERT_TRUE((*live)->ExecuteCompletedSql(kJoinCount).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> mixes{0};
  std::atomic<int> failures{0};
  std::atomic<uint64_t> answers{0};
  auto reader = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto rs = (*live)->ExecuteCompletedSql(kJoinCount);
      if (!rs.ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const std::vector<std::string> got = Flatten(*rs);
      bool matched = false;
      for (const auto& baseline : baselines) matched |= got == baseline;
      if (!matched) mixes.fetch_add(1, std::memory_order_relaxed);
      answers.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) readers.emplace_back(reader);

  ASSERT_TRUE((*live)->Append("table_b", rows).ok());
  (*live)->WaitForRefreshIdle();
  // Let post-swap traffic run a moment before stopping.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*live)->ExecuteCompletedSql(kJoinCount).ok());
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_EQ(mixes.load(), 0) << "answers mixing model generations";
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(answers.load(), 0u);
  EXPECT_GT((*live)->stats().models_refreshed, 0u);

  // After the dust settles every query must sit exactly on the final
  // baseline.
  auto settled = (*live)->ExecuteCompletedSql(kJoinCount);
  ASSERT_TRUE(settled.ok());
  EXPECT_EQ(Flatten(*settled), baselines[2]);
}

TEST(IngestionTest, DeepGenerationChainCapsSafelyUnderReaders) {
  // Drives MORE refreshes than the retained-chain bound (kMaxChainedGens=4)
  // so every later swap truncates the generation chain — rewriting the
  // `prev` of a node still reachable from the published head — while 4
  // reader threads walk that chain the whole time. Under TSan this is the
  // regression test for the prev-walk vs chain-cap race.
  // Two parents of one incomplete child give two distinct model paths: a
  // reader pins an epoch by resolving one path, sleeps while swaps pile up,
  // then resolves the OTHER path against the now-stale pin — that lookup
  // walks back through the same `prev` links the capper rewrites. Both
  // paths contain child, so every round refreshes and caps both chains.
  Database db_data;
  Table p1("p1", {{"id", ColumnType::kInt64},
                  {"a", ColumnType::kCategorical}});
  Table p2("p2", {{"id", ColumnType::kInt64},
                  {"b", ColumnType::kCategorical}});
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(
        p1.AppendRow({Value::Int64(i), Value::Categorical(i % 2 ? "l" : "r")})
            .ok());
    ASSERT_TRUE(
        p2.AppendRow({Value::Int64(i), Value::Categorical(i % 3 ? "x" : "y")})
            .ok());
  }
  Table child("child", {{"id", ColumnType::kInt64},
                        {"p1_id", ColumnType::kInt64},
                        {"p2_id", ColumnType::kInt64},
                        {"c", ColumnType::kCategorical}});
  for (int i = 0; i < 240; ++i) {
    ASSERT_TRUE(child
                    .AppendRow({Value::Int64(i), Value::Int64(i % 60),
                                Value::Int64((i / 2) % 60),
                                Value::Categorical(i % 3 ? "u" : "v")})
                    .ok());
  }
  ASSERT_TRUE(db_data.AddTable(std::move(p1)).ok());
  ASSERT_TRUE(db_data.AddTable(std::move(p2)).ok());
  ASSERT_TRUE(db_data.AddTable(std::move(child)).ok());
  ASSERT_TRUE(db_data.AddForeignKey("child", "p1_id", "p1", "id").ok());
  ASSERT_TRUE(db_data.AddForeignKey("child", "p2_id", "p2", "id").ok());
  SchemaAnnotation annotation;
  annotation.MarkIncomplete("child");
  auto db =
      Db::Open(&db_data, annotation, DbOptions().WithEngine(FastConfig()));
  ASSERT_TRUE(db.ok()) << db.status();

  const std::vector<std::string> path0 = {"p1", "child"};
  const std::vector<std::string> path1 = {"p2", "child"};
  auto warm0 = (*db)->ModelForPath(path0);  // generation 1 of both chains
  ASSERT_TRUE(warm0.ok()) << warm0.status();
  auto warm1 = (*db)->ModelForPath(path1);
  ASSERT_TRUE(warm1.ok()) << warm1.status();

  // A pool of contexts pinned NOW — at the gen-1 epoch. Resolving path1
  // under one of these later forces the walk all the way down to the OLDEST
  // retained generation, i.e. through the exact node the capper truncates
  // (each ctx only walks once — its model pin caches — so the pool is
  // drained gradually to spread deep walks across all the swaps).
  struct PinnedCtx {
    QueryOptions options;
    ExecStats stats;
    ExecContext ctx{&options, &stats};
  };
  std::vector<std::unique_ptr<PinnedCtx>> pool;
  for (int i = 0; i < 64; ++i) {
    pool.push_back(std::make_unique<PinnedCtx>());
    if (!(*db)->ModelForPath(path0, &pool.back()->ctx).ok()) {
      FAIL() << "pinning pool ctx failed";
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<size_t> next_pin{0};
  std::atomic<int> round_no{0};
  auto reader = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      QueryOptions options;
      ExecStats stats;
      ExecContext ctx(&options, &stats);
      if (!(*db)->ModelForPath(path0, &ctx).ok() ||
          !(*db)->ModelForPath(path1, &ctx).ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  // Drains a handful of gen-1 pins per swap round (rendezvous on round_no),
  // so deep walks to the chain tail happen right before AND concurrently
  // with every subsequent cap.
  auto old_pin_reader = [&] {
    int seen = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const int r = round_no.load(std::memory_order_acquire);
      if (r > seen) {
        seen = r;
        for (int k = 0; k < 5; ++k) {
          const size_t i = next_pin.fetch_add(1, std::memory_order_relaxed);
          if (i >= pool.size()) break;
          if (!(*db)->ModelForPath(path1, &pool[i]->ctx).ok()) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  std::vector<std::thread> readers;
  for (int i = 0; i < 2; ++i) readers.emplace_back(reader);
  for (int i = 0; i < 2; ++i) readers.emplace_back(old_pin_reader);

  constexpr int kRounds = 7;  // chains reach the cap from round 4 onward
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::vector<Value>> rows;
    for (int i = 0; i < 30; ++i) {
      rows.push_back({Value::Int64(985000 + round * 1000 + i),
                      Value::Int64(i % 60), Value::Int64(i % 60),
                      Value::Categorical("novel")});
    }
    ASSERT_TRUE((*db)->Append("child", rows).ok());
    ASSERT_TRUE((*db)->RefreshStaleModels().ok());
    round_no.store(round + 1, std::memory_order_release);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  // Both per-path chains refresh every round.
  EXPECT_GE((*db)->stats().models_refreshed,
            static_cast<uint64_t>(2 * kRounds));
}

// ---- Drift-triggered refresh ------------------------------------------------

/// Every current row of `t` as an appendable row batch: appending these
/// doubles the table without moving any column's distribution.
std::vector<std::vector<Value>> DuplicateRows(const Table& t) {
  std::vector<std::vector<Value>> rows;
  rows.reserve(t.NumRows());
  for (size_t r = 0; r < t.NumRows(); ++r) {
    std::vector<Value> row;
    row.reserve(t.NumColumns());
    for (size_t c = 0; c < t.NumColumns(); ++c) {
      row.push_back(t.column(c).GetValue(r));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

RefreshPolicy DriftPolicy(size_t retrain_threads) {
  RefreshPolicy policy;
  policy.trigger = RefreshPolicy::Trigger::kDrift;
  policy.drift_ks_threshold = 0.15;
  policy.drift_psi_threshold = 0.25;
  policy.max_concurrent_retrains = retrain_threads;
  return policy;
}

TEST(IngestionTest, DriftScoresSurfaceInFreshnessAndGateSyncRefresh) {
  // No background thread (0 retrain threads): every transition is observed
  // synchronously. A bulk append of duplicated rows leaves every column's
  // distribution untouched — the drift gate must hold the generation even
  // though thousands of rows are "stale" by row count.
  Database incomplete = MakeIncompleteSynthetic(529);
  auto db = Db::Open(&incomplete, Annotation(),
                     DbOptions().WithEngine(FastConfig()).WithRefreshPolicy(
                         DriftPolicy(0)));
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE((*db)->ExecuteCompletedSql(kCountByB).ok());

  for (const ModelInfo& info : (*db)->Freshness()) {
    EXPECT_TRUE(info.drift_available);
    EXPECT_EQ(info.drift_ks, 0.0);  // snapshot IS the training data
    EXPECT_EQ(info.drift_psi, 0.0);
  }

  const auto dup =
      DuplicateRows(**(*db)->data()->GetTable("table_b"));
  ASSERT_GT(dup.size(), 100u);
  ASSERT_TRUE((*db)->Append("table_b", dup).ok());
  for (const ModelInfo& info : (*db)->Freshness()) {
    EXPECT_LT(info.drift_ks, 0.05) << info.drift_column;
    EXPECT_LT(info.drift_psi, 0.05) << info.drift_column;
  }
  ASSERT_TRUE((*db)->RefreshStaleModels().ok());
  EXPECT_EQ((*db)->stats().models_refreshed, 0u);
  for (const ModelInfo& info : (*db)->Freshness()) {
    EXPECT_EQ(info.generation, 1u);
  }

  // A shifted append — one third of the table lands in a category the
  // training snapshot never saw — pushes KS past the threshold.
  ASSERT_TRUE(
      (*db)->Append("table_b", MakeRows(dup.size(), 975000, "drifted")).ok());
  bool saw_drift = false;
  for (const ModelInfo& info : (*db)->Freshness()) {
    bool touches_b = false;
    for (const auto& t : info.path) touches_b |= t == "table_b";
    if (touches_b) {
      EXPECT_GE(info.drift_ks, 0.15) << info.drift_column;
      saw_drift = true;
    }
  }
  EXPECT_TRUE(saw_drift);
  ASSERT_TRUE((*db)->RefreshStaleModels().ok());
  EXPECT_GT((*db)->stats().models_refreshed, 0u);
  // The refreshed generation re-baselines its reference on the post-shift
  // snapshot: drift reads ~0 again.
  for (const ModelInfo& info : (*db)->Freshness()) {
    EXPECT_EQ(info.generation, 2u);
    EXPECT_LT(info.drift_ks, 0.05);
  }
}

TEST(IngestionTest, BackgroundDriftRefreshFiresOnceOnShiftOnlyAndTwinsAgree) {
  // The full satellite contract, on twin Dbs driven identically:
  //  1. no-drift bulk append -> the background refresher does NOT retrain;
  //  2. shifted append -> it retrains exactly once per affected path;
  //  3. the twins answer bit-identically afterwards.
  Database data_a = MakeIncompleteSynthetic(531);
  Database data_b = MakeIncompleteSynthetic(531);
  auto db_a = Db::Open(&data_a, Annotation(),
                       DbOptions().WithEngine(FastConfig()).WithRefreshPolicy(
                           DriftPolicy(1)));
  auto db_b = Db::Open(&data_b, Annotation(),
                       DbOptions().WithEngine(FastConfig()).WithRefreshPolicy(
                           DriftPolicy(1)));
  ASSERT_TRUE(db_a.ok() && db_b.ok());

  for (auto* db : {&*db_a, &*db_b}) {
    ASSERT_TRUE((*db)->ExecuteCompletedSql(kJoinCount).ok());
    const auto dup =
        DuplicateRows(**(*db)->data()->GetTable("table_b"));
    ASSERT_TRUE((*db)->Append("table_b", dup).ok());
    (*db)->WaitForRefreshIdle();
    EXPECT_EQ((*db)->stats().models_refreshed, 0u)
        << "no-drift bulk append must not retrain";

    ASSERT_TRUE(
        (*db)->Append("table_b", MakeRows(dup.size(), 975000, "drifted"))
            .ok());
    (*db)->WaitForRefreshIdle();
    const Db::Stats stats = (*db)->stats();
    EXPECT_GT(stats.models_refreshed, 0u);
    // Exactly once: every path containing table_b sits at generation 2 —
    // a re-firing refresher would have pushed some chain to 3+.
    uint64_t swapped = 0;
    for (const ModelInfo& info : (*db)->Freshness()) {
      bool touches_b = false;
      for (const auto& t : info.path) touches_b |= t == "table_b";
      EXPECT_EQ(info.generation, touches_b ? 2u : 1u);
      swapped += touches_b ? 1 : 0;
      EXPECT_LT(info.drift_ks, 0.15);
    }
    EXPECT_EQ(stats.models_refreshed, swapped);
  }

  auto r_a = (*db_a)->ExecuteCompletedSql(kJoinCount);
  auto r_b = (*db_b)->ExecuteCompletedSql(kJoinCount);
  ASSERT_TRUE(r_a.ok() && r_b.ok());
  EXPECT_EQ(Flatten(*r_a), Flatten(*r_b));
}

// ---- Crash-safe generational persistence ------------------------------------

void RemoveTree(const std::string& dir);  // fwd (defined below)

void RemoveTree(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    const std::string path = dir + "/" + name;
    struct stat st;
    if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      RemoveTree(path);
    } else {
      std::remove(path.c_str());
    }
  }
  ::closedir(d);
  ::rmdir(dir.c_str());
}

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/restore_ing_" + name;
  RemoveTree(dir);
  return dir;
}

TEST(IngestionTest, GenerationsPersistAndRollBack) {
  Database incomplete = MakeIncompleteSynthetic(521);
  auto db = Db::Open(&incomplete, Annotation(), DbOptions().WithEngine(FastConfig()));
  ASSERT_TRUE(db.ok());
  auto gen1_answer = (*db)->ExecuteCompletedSql(kCountByB);
  ASSERT_TRUE(gen1_answer.ok());
  const std::string dir = FreshDir("rollback");
  ASSERT_TRUE((*db)->SaveModels(dir).ok());

  ASSERT_TRUE((*db)->Append("table_b", MakeRows(15, 980000, "novel")).ok());
  ASSERT_TRUE((*db)->RefreshStaleModels().ok());
  ASSERT_TRUE((*db)->SaveModels(dir).ok());

  auto current = CurrentModelGenerationDir(dir);
  ASSERT_TRUE(current.ok());
  EXPECT_NE(current->find("gen-000002"), std::string::npos) << *current;

  // Default open loads the committed (newest) generation.
  DbOptions options;
  options.engine = FastConfig();
  options.model_dir = dir;
  auto latest = Db::Open(&incomplete, Annotation(), options);
  ASSERT_TRUE(latest.ok()) << latest.status();
  EXPECT_GT((*latest)->models_loaded(), 0u);
  bool saw_gen2 = false;
  for (const ModelInfo& info : (*latest)->Freshness()) {
    saw_gen2 |= info.generation >= 2;
    EXPECT_TRUE(info.loaded_from_disk);
  }
  EXPECT_TRUE(saw_gen2);

  // Pinned rollback to generation 1 — and it must answer exactly like the
  // Db that produced it.
  auto rolled = Db::Open(&incomplete, Annotation(),
                         DbOptions()
                             .WithEngine(FastConfig())
                             .WithModelDir(dir)
                             .WithModelGeneration(1));
  ASSERT_TRUE(rolled.ok()) << rolled.status();
  EXPECT_EQ((*rolled)->models_trained(), 0u);
  auto rolled_answer = (*rolled)->ExecuteCompletedSql(kCountByB);
  ASSERT_TRUE(rolled_answer.ok());
  EXPECT_EQ(Flatten(*gen1_answer), Flatten(*rolled_answer));

  // A pinned generation that does not exist is an error, not a fallback.
  auto bogus = Db::Open(&incomplete, Annotation(),
                        DbOptions()
                            .WithEngine(FastConfig())
                            .WithModelDir(dir)
                            .WithModelGeneration(9));
  EXPECT_FALSE(bogus.ok());
}

TEST(IngestionTest, ConcurrentSavesCommitDistinctGenerations) {
  Database incomplete = MakeIncompleteSynthetic(527);
  auto db = Db::Open(&incomplete, Annotation(),
                     DbOptions().WithEngine(FastConfig()));
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->ExecuteCompletedSql(kCountByB).ok());
  const std::string dir = FreshDir("concurrent_save");

  // Racing saves serialize internally: each commits its OWN generation
  // instead of two writers computing the same next_gen and clobbering each
  // other's gen-N.tmp staging directory mid-write.
  constexpr int kSavers = 4;
  std::vector<Status> results(kSavers, Status::OK());
  std::vector<std::thread> savers;
  for (int i = 0; i < kSavers; ++i) {
    savers.emplace_back([&, i] { results[i] = (*db)->SaveModels(dir); });
  }
  for (auto& t : savers) t.join();
  for (const Status& s : results) EXPECT_TRUE(s.ok()) << s;

  // Four saves -> four generations; CURRENT sits on the last one and the
  // store reopens cleanly.
  auto current = CurrentModelGenerationDir(dir);
  ASSERT_TRUE(current.ok());
  EXPECT_NE(current->find("gen-000004"), std::string::npos) << *current;
  auto reopened =
      Db::Open(&incomplete, Annotation(),
               DbOptions().WithEngine(FastConfig()).WithModelDir(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_GT((*reopened)->models_loaded(), 0u);
}

TEST(IngestionTest, ReopenSurvivesEveryCrashPoint) {
  Database incomplete = MakeIncompleteSynthetic(523);
  auto db = Db::Open(&incomplete, Annotation(), DbOptions().WithEngine(FastConfig()));
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->ExecuteCompletedSql(kCountByB).ok());
  const std::string dir = FreshDir("crash");
  ASSERT_TRUE((*db)->SaveModels(dir).ok());

  DbOptions options;
  options.engine = FastConfig();
  options.model_dir = dir;
  const auto reopen_ok = [&]() {
    auto reopened = Db::Open(&incomplete, Annotation(), options);
    ASSERT_TRUE(reopened.ok()) << reopened.status();
    EXPECT_GT((*reopened)->models_loaded(), 0u);
    EXPECT_TRUE((*reopened)->ExecuteCompletedSql(kCountByB).ok());
  };

  // Crash mid-save: a half-written staging dir is ignored at open and swept
  // by the next save.
  ASSERT_EQ(::mkdir((dir + "/gen-000002.tmp").c_str(), 0755), 0);
  {
    std::ofstream junk(dir + "/gen-000002.tmp/partial.rsm",
                       std::ios::binary);
    junk << "half-written";
  }
  reopen_ok();
  ASSERT_TRUE((*db)->SaveModels(dir).ok());  // -> gen-2, sweeps the tmp
  struct stat st;
  EXPECT_NE(::stat((dir + "/gen-000002.tmp").c_str(), &st), 0);

  // Crash between the generation rename and the CURRENT swap: CURRENT still
  // names the previous generation, which must load; the next save must not
  // clobber the orphaned newer directory's number.
  {
    BinaryWriter w;
    w.U64(1);
    ASSERT_TRUE(WriteChecksummedFileAtomic(dir + "/CURRENT", 0x43545352, 1,
                                           w.buffer())
                    .ok());
  }
  reopen_ok();
  ASSERT_TRUE((*db)->SaveModels(dir).ok());
  auto current = CurrentModelGenerationDir(dir);
  ASSERT_TRUE(current.ok());
  EXPECT_NE(current->find("gen-000003"), std::string::npos) << *current;

  // Crash mid-CURRENT-write (torn bytes): fall back to the newest readable
  // generation.
  {
    std::ofstream torn(dir + "/CURRENT",
                       std::ios::binary | std::ios::trunc);
    torn << "torn";
  }
  reopen_ok();

  // CURRENT missing entirely.
  ASSERT_EQ(std::remove((dir + "/CURRENT").c_str()), 0);
  reopen_ok();

  // CURRENT names a generation whose directory is gone: other generations
  // must still be reachable.
  {
    BinaryWriter w;
    w.U64(3);
    ASSERT_TRUE(WriteChecksummedFileAtomic(dir + "/CURRENT", 0x43545352, 1,
                                           w.buffer())
                    .ok());
  }
  RemoveTree(dir + "/gen-000003");
  reopen_ok();
}

TEST(IngestionTest, OldGenerationsAreRetiredPastTheKeepWindow) {
  Database incomplete = MakeIncompleteSynthetic(525);
  DbOptions open_options;
  open_options.engine = FastConfig();
  open_options.keep_generations = 2;
  auto db = Db::Open(&incomplete, Annotation(), open_options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->ExecuteCompletedSql(kCountByB).ok());
  const std::string dir = FreshDir("retire");
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*db)->SaveModels(dir).ok());
  }
  // Generations 2 and 3 remain; generation 1 is retired.
  struct stat st;
  EXPECT_NE(::stat((dir + "/gen-000001").c_str(), &st), 0);
  EXPECT_EQ(::stat((dir + "/gen-000002").c_str(), &st), 0);
  EXPECT_EQ(::stat((dir + "/gen-000003").c_str(), &st), 0);
  auto pinned = Db::Open(&incomplete, Annotation(),
                         DbOptions()
                             .WithEngine(FastConfig())
                             .WithModelDir(dir)
                             .WithModelGeneration(1));
  EXPECT_FALSE(pinned.ok());
}

TEST(IngestionTest, StaleBaseIsRecoveredFromDiskMetadata) {
  // Models saved against a smaller database and reopened against a larger
  // one carry their staleness with them: trained_rows is persisted, so the
  // reopened Db knows the snapshot is already behind.
  Database incomplete = MakeIncompleteSynthetic(527);
  auto db = Db::Open(&incomplete, Annotation(), DbOptions().WithEngine(FastConfig()));
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->ExecuteCompletedSql(kCountByB).ok());
  const std::string dir = FreshDir("stale_base");
  ASSERT_TRUE((*db)->SaveModels(dir).ok());

  Database grown = incomplete.Clone();
  {
    auto table = grown.GetMutableTable("table_b");
    ASSERT_TRUE(table.ok());
    for (const auto& row : MakeRows(20, 990000, "late")) {
      ASSERT_TRUE((*table)->AppendRow(row).ok());
    }
  }
  auto reopened = Db::Open(&grown, Annotation(),
                           DbOptions().WithEngine(FastConfig()).WithModelDir(
                               dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  bool saw_stale = false;
  for (const ModelInfo& info : (*reopened)->Freshness()) {
    bool touches_b = false;
    for (const auto& t : info.path) touches_b |= t == "table_b";
    if (touches_b) {
      EXPECT_EQ(info.staleness_rows, 20u);
      saw_stale = true;
    }
  }
  EXPECT_TRUE(saw_stale);
}

// A path whose initial training fails must be revivable — by new data and,
// once the circuit breaker opens, by the half-open probe — and a concurrent
// probe herd must collapse to exactly one retraining. Driven end to end with
// injected training faults: fail, revive via Append, fail again (breaker
// opens), fail fast while open, then a 16-thread hammer past the open window
// that trains exactly once.
TEST(IngestionTest, FailedTrainingRevivesAndProbeHerdTrainsOnce) {
  FaultInjection::Instance().Reset();
  Database incomplete = MakeIncompleteSynthetic(701);
  RefreshPolicy policy;
  policy.breaker_failure_threshold = 2;
  policy.breaker_open_ms = 200;
  auto db = Db::Open(&incomplete, Annotation(),
                     DbOptions().WithEngine(FastConfig()).WithRefreshPolicy(
                         policy));
  ASSERT_TRUE(db.ok()) << db.status();
  const std::vector<std::string> path = {"table_a", "table_b"};

  // Failure 1: first-touch training aborts on the injected fault, and the
  // once-latch caches that failure for the data the caller pinned.
  FaultInjection::Instance().Arm("train.path", FaultPolicy::FailFirst(2));
  Status first = (*db)->ModelForPath(path).status();
  EXPECT_FALSE(first.ok());
  EXPECT_NE(first.message().find("train.path"), std::string::npos) << first;
  EXPECT_EQ(FaultInjection::Instance().hits("train.path"), 1u);
  // Replaying the cached failure is not a new training attempt.
  EXPECT_FALSE((*db)->ModelForPath(path).ok());
  EXPECT_EQ(FaultInjection::Instance().hits("train.path"), 1u);

  // New data revives the path (fresh latch) — but training fails again and
  // the second consecutive failure opens the breaker.
  ASSERT_TRUE((*db)->Append("table_b", MakeRows(3, 930000, "x")).ok());
  Status second = (*db)->ModelForPath(path).status();
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(FaultInjection::Instance().hits("train.path"), 2u);
  EXPECT_EQ((*db)->stats().breaker_open_total, 1u);
  EXPECT_EQ((*db)->breakers_open(), 1u);

  // While open: fail fast with kUnavailable and no training attempt, even
  // after another revival-eligible ingest.
  ASSERT_TRUE((*db)->Append("table_b", MakeRows(3, 940000, "x")).ok());
  Status open = (*db)->ModelForPath(path).status();
  EXPECT_TRUE(open.IsUnavailable()) << open;
  EXPECT_NE(open.message().find("circuit breaker"), std::string::npos) << open;
  EXPECT_EQ(FaultInjection::Instance().hits("train.path"), 2u);

  // Past the open window the breaker half-opens. Hammer it from 16 threads:
  // the probe revives the entry with a fresh latch, the latch collapses the
  // herd, and the one training that runs succeeds (the fault is exhausted).
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  std::atomic<int> successes{0};
  std::vector<std::thread> threads;
  threads.reserve(16);
  for (int i = 0; i < 16; ++i) {
    threads.emplace_back([&] {
      if ((*db)->ModelForPath(path).ok()) {
        successes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(successes.load(), 16);
  EXPECT_EQ(FaultInjection::Instance().hits("train.path"), 3u);
  EXPECT_EQ((*db)->breakers_open(), 0u);
  EXPECT_EQ((*db)->stats().breaker_open_total, 1u);

  // And the path keeps answering real queries afterwards.
  EXPECT_TRUE((*db)->ExecuteCompletedSql(kJoinCount).ok());
  FaultInjection::Instance().Reset();
}

}  // namespace
}  // namespace restore
