// Tests for the data generators and the incompleteness injector.

#include <cmath>

#include <gtest/gtest.h>

#include "datagen/housing.h"
#include "datagen/incompleteness.h"
#include "datagen/movies.h"
#include "datagen/setups.h"
#include "datagen/synthetic.h"
#include "datagen/workload.h"
#include "exec/executor.h"
#include "metrics/metrics.h"
#include "restore/tuple_factor.h"

namespace restore {
namespace {

TEST(SyntheticTest, SchemaAndSizes) {
  SyntheticConfig config;
  config.num_parents = 100;
  auto db = GenerateSynthetic(config);
  ASSERT_TRUE(db.ok()) << db.status();
  auto a = db->GetTable("table_a");
  auto b = db->GetTable("table_b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*a.value()).NumRows(), 100u);
  EXPECT_GE((*b.value()).NumRows(), 100u);  // fanout >= 1
  EXPECT_TRUE(db->FindForeignKey("table_a", "table_b").ok());
}

TEST(SyntheticTest, PredictabilityControlsDependency) {
  auto measure = [](double predictability) {
    SyntheticConfig config;
    config.num_parents = 400;
    config.predictability = predictability;
    config.seed = 21;
    auto db = GenerateSynthetic(config);
    EXPECT_TRUE(db.ok());
    // Fraction of children whose b equals the deterministic f(a).
    auto joined = ExecuteSql(*db,
                             "SELECT COUNT(*) FROM table_a NATURAL JOIN "
                             "table_b;");
    EXPECT_TRUE(joined.ok());
    // Measure conditional purity: for each a value, the max-fraction b.
    auto a = db->GetTable("table_a").value();
    auto b = db->GetTable("table_b").value();
    const Column* acol = a->GetColumn("a").value();
    const Column* bcol = b->GetColumn("b").value();
    const Column* fkcol = b->GetColumn("a_id").value();
    std::map<int64_t, std::map<int64_t, int>> cond;
    for (size_t r = 0; r < b->NumRows(); ++r) {
      const int64_t parent = fkcol->GetInt64(r);
      ++cond[acol->GetCode(static_cast<size_t>(parent))][bcol->GetCode(r)];
    }
    double purity = 0.0;
    int total = 0;
    for (const auto& [av, dist] : cond) {
      (void)av;
      int max_c = 0;
      int sum = 0;
      for (const auto& [bv, c] : dist) {
        (void)bv;
        max_c = std::max(max_c, c);
        sum += c;
      }
      purity += max_c;
      total += sum;
    }
    return purity / total;
  };
  EXPECT_GT(measure(1.0), 0.95);
  EXPECT_GT(measure(0.8), measure(0.2));
}

TEST(BiasedRemovalTest, KeepRateApproximatelyRespected) {
  SyntheticConfig config;
  config.num_parents = 800;
  auto db = GenerateSynthetic(config);
  ASSERT_TRUE(db.ok());
  const size_t before = (*db->GetTable("table_b").value()).NumRows();
  BiasedRemovalConfig removal;
  removal.table = "table_b";
  removal.column = "b";
  removal.keep_rate = 0.6;
  removal.removal_correlation = 0.5;
  auto reduced = ApplyBiasedRemoval(*db, removal);
  ASSERT_TRUE(reduced.ok()) << reduced.status();
  const size_t after = (*reduced->GetTable("table_b").value()).NumRows();
  EXPECT_NEAR(static_cast<double>(after) / before, 0.6, 0.06);
}

TEST(BiasedRemovalTest, CorrelationBiasesTheKeptData) {
  auto db = GenerateHousing({.num_neighborhoods = 60,
                             .num_landlords = 300,
                             .num_apartments = 2500,
                             .seed = 3});
  ASSERT_TRUE(db.ok());
  auto true_mean =
      ColumnMean(*db->GetTable("apartment").value(), "price");
  ASSERT_TRUE(true_mean.ok());

  auto mean_after = [&](double correlation) {
    BiasedRemovalConfig removal;
    removal.table = "apartment";
    removal.column = "price";
    removal.keep_rate = 0.5;
    removal.removal_correlation = correlation;
    removal.seed = 77;
    auto reduced = ApplyBiasedRemoval(*db, removal);
    EXPECT_TRUE(reduced.ok());
    auto m = ColumnMean(*reduced->GetTable("apartment").value(), "price");
    EXPECT_TRUE(m.ok());
    return m.value();
  };
  // Removing high-price rows biases the mean downwards, monotonically in c.
  EXPECT_NEAR(mean_after(0.0), true_mean.value(),
              0.03 * true_mean.value());
  EXPECT_LT(mean_after(0.8), mean_after(0.3));
  EXPECT_LT(mean_after(0.3), true_mean.value());
}

TEST(BiasedRemovalTest, CategoricalValueRemovedPreferentially) {
  auto db = GenerateHousing({.num_neighborhoods = 50,
                             .num_landlords = 200,
                             .num_apartments = 2000,
                             .seed = 4});
  ASSERT_TRUE(db.ok());
  auto frac_before = CategoricalFraction(
      *db->GetTable("apartment").value(), "room_type", "entire_home");
  ASSERT_TRUE(frac_before.ok());
  BiasedRemovalConfig removal;
  removal.table = "apartment";
  removal.column = "room_type";
  removal.categorical_value = "entire_home";
  removal.keep_rate = 0.5;
  removal.removal_correlation = 0.8;
  auto reduced = ApplyBiasedRemoval(*db, removal);
  ASSERT_TRUE(reduced.ok());
  auto frac_after = CategoricalFraction(
      *reduced->GetTable("apartment").value(), "room_type", "entire_home");
  ASSERT_TRUE(frac_after.ok());
  EXPECT_LT(frac_after.value(), frac_before.value() - 0.05);
}

TEST(ThinTupleFactorsTest, KeepsRequestedShare) {
  SyntheticConfig config;
  config.num_parents = 1000;
  auto db = GenerateSynthetic(config);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(ThinTupleFactors(&*db, 0.3, 5).ok());
  auto a = db->GetTable("table_a").value();
  const Column* tf = a->GetColumn("__tf_table_b").value();
  size_t observed = 0;
  for (size_t r = 0; r < a->NumRows(); ++r) {
    if (!tf->IsNull(r)) ++observed;
  }
  EXPECT_NEAR(static_cast<double>(observed) / a->NumRows(), 0.3, 0.05);
}

TEST(CascadeRemovalTest, LinkRowsWithoutParentsVanish) {
  auto db = GenerateMovies({.num_movies = 200,
                            .num_directors = 80,
                            .num_actors = 150,
                            .num_companies = 50,
                            .seed = 6});
  ASSERT_TRUE(db.ok());
  auto reduced = ApplyUniformRemoval(*db, "movie", 0.5, 9);
  ASSERT_TRUE(reduced.ok());
  ASSERT_TRUE(CascadeRemoveLinkRows(
                  &*reduced, {"movie_director", "movie_actor", "movie_company"})
                  .ok());
  // Every remaining link row must resolve both FKs.
  for (const char* link : {"movie_director", "movie_actor", "movie_company"}) {
    auto joined_count = ExecuteSql(
        *reduced, std::string("SELECT COUNT(*) FROM movie NATURAL JOIN ") +
                      link + ";");
    ASSERT_TRUE(joined_count.ok()) << joined_count.status();
    auto direct_count =
        ExecuteSql(*reduced, std::string("SELECT COUNT(*) FROM ") + link + ";");
    ASSERT_TRUE(direct_count.ok());
    EXPECT_DOUBLE_EQ(joined_count->value(0, 0),
                     direct_count->value(0, 0))
        << link;
  }
}

TEST(HousingTest, PlantedCorrelationsPresent) {
  auto db = GenerateHousing({.num_neighborhoods = 80,
                             .num_landlords = 400,
                             .num_apartments = 3000,
                             .seed = 7});
  ASSERT_TRUE(db.ok());
  // Denser neighborhoods -> higher prices.
  auto result = ExecuteSql(*db,
                           "SELECT AVG(price) FROM neighborhood NATURAL JOIN "
                           "apartment GROUP BY urbanization;");
  ASSERT_TRUE(result.ok()) << result.status();
  const int64_t urban = result->FindRow({"urban"});
  const int64_t rural = result->FindRow({"rural"});
  ASSERT_GE(urban, 0);
  ASSERT_GE(rural, 0);
  EXPECT_GT(result->value(urban, 0), result->value(rural, 0));
  // Veteran landlords respond faster (higher rate).
  auto rates = ExecuteSql(*db,
                          "SELECT AVG(landlord_response_rate) FROM landlord "
                          "WHERE landlord_since <= 2012;");
  auto rates_new = ExecuteSql(*db,
                              "SELECT AVG(landlord_response_rate) FROM "
                              "landlord WHERE landlord_since >= 2018;");
  ASSERT_TRUE(rates.ok());
  ASSERT_TRUE(rates_new.ok());
  EXPECT_GT(rates->value(0, 0), rates_new->value(0, 0));
}

TEST(MoviesTest, SchemaTopologyMatchesPaper) {
  auto db = GenerateMovies({.num_movies = 150,
                            .num_directors = 60,
                            .num_actors = 120,
                            .num_companies = 40,
                            .seed = 8});
  ASSERT_TRUE(db.ok());
  for (const char* t : {"movie", "director", "actor", "company",
                        "movie_director", "movie_actor", "movie_company"}) {
    EXPECT_TRUE(db->HasTable(t)) << t;
  }
  // Directors' birth years precede their movies' production years by 25-55.
  auto joined = ExecuteSql(*db,
                           "SELECT AVG(production_year), AVG(birth_year) FROM "
                           "movie NATURAL JOIN movie_director NATURAL JOIN "
                           "director;");
  ASSERT_TRUE(joined.ok()) << joined.status();
  EXPECT_GT(joined->value(0, 0) - joined->value(0, 1), 20.0);
  EXPECT_LT(joined->value(0, 0) - joined->value(0, 1), 60.0);
}

TEST(SetupsTest, AllTenSetupsConstructible) {
  EXPECT_EQ(HousingSetups().size(), 5u);
  EXPECT_EQ(MovieSetups().size(), 5u);
  for (const char* name : {"H1", "H3", "H5", "M1", "M4", "M5"}) {
    EXPECT_TRUE(SetupByName(name).ok()) << name;
  }
  EXPECT_FALSE(SetupByName("X9").ok());
}

TEST(SetupsTest, ApplySetupProducesAnnotatedIncompleteness) {
  auto setup = SetupByName("M4");
  ASSERT_TRUE(setup.ok());
  auto complete = BuildCompleteDatabase("movies", 10, 0.1);
  ASSERT_TRUE(complete.ok()) << complete.status();
  auto incomplete = ApplySetup(*complete, *setup, 0.5, 0.5, 11);
  ASSERT_TRUE(incomplete.ok()) << incomplete.status();
  // director lost ~50%, movie lost ~20%.
  const double dir_ratio =
      static_cast<double>(
          (*incomplete->GetTable("director").value()).NumRows()) /
      (*complete->GetTable("director").value()).NumRows();
  EXPECT_NEAR(dir_ratio, 0.5, 0.12);
  const double movie_ratio =
      static_cast<double>((*incomplete->GetTable("movie").value()).NumRows()) /
      (*complete->GetTable("movie").value()).NumRows();
  EXPECT_NEAR(movie_ratio, 0.8, 0.08);
  SchemaAnnotation ann = AnnotationFor(*setup);
  EXPECT_TRUE(ann.IsIncomplete("director"));
  EXPECT_TRUE(ann.IsIncomplete("movie"));
  EXPECT_TRUE(ann.IsIncomplete("movie_actor"));
  EXPECT_TRUE(ann.IsComplete("actor"));
  EXPECT_TRUE(ann.Validate(*incomplete).ok());
}

TEST(WorkloadTest, AllQueriesParseAndRunOnCompleteData) {
  auto housing = BuildCompleteDatabase("housing", 12, 0.2);
  ASSERT_TRUE(housing.ok());
  for (const auto& wq : HousingWorkload()) {
    auto result = ExecuteSql(*housing, wq.sql);
    EXPECT_TRUE(result.ok()) << wq.name << ": " << result.status();
    EXPECT_GT(result->num_rows(), 0u) << wq.name;
  }
  auto movies = BuildCompleteDatabase("movies", 13, 0.1);
  ASSERT_TRUE(movies.ok());
  for (const auto& wq : MovieWorkload()) {
    auto result = ExecuteSql(*movies, wq.sql);
    EXPECT_TRUE(result.ok()) << wq.name << ": " << result.status();
    EXPECT_GT(result->num_rows(), 0u) << wq.name;
  }
}

}  // namespace
}  // namespace restore
