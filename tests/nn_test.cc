// Unit and gradient-check tests for the neural-network substrate.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/adam.h"
#include "nn/deep_sets.h"
#include "nn/embedding.h"
#include "nn/layers.h"
#include "nn/made.h"
#include "nn/matrix.h"

namespace restore {
namespace {

TEST(MatrixTest, MatMulMatchesManualComputation) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  float va = 1.0f;
  for (size_t i = 0; i < a.size(); ++i) a.data()[i] = va++;
  float vb = 0.5f;
  for (size_t i = 0; i < b.size(); ++i) b.data()[i] = vb++;
  Matrix out;
  MatMul(a, b, &out);
  // a = [[1,2,3],[4,5,6]], b = [[0.5,1.5],[2.5,3.5],[4.5,5.5]]
  EXPECT_FLOAT_EQ(out.at(0, 0), 1 * 0.5f + 2 * 2.5f + 3 * 4.5f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 1 * 1.5f + 2 * 3.5f + 3 * 5.5f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 4 * 0.5f + 5 * 2.5f + 6 * 4.5f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 4 * 1.5f + 5 * 3.5f + 6 * 5.5f);
}

TEST(MatrixTest, MatMulTransBMatchesMatMul) {
  Rng rng(1);
  Matrix a(3, 4);
  Matrix b(5, 4);
  for (size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  for (size_t i = 0; i < b.size(); ++i) {
    b.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  // b_t = transpose(b)
  Matrix b_t(4, 5);
  for (size_t r = 0; r < 5; ++r) {
    for (size_t c = 0; c < 4; ++c) b_t.at(c, r) = b.at(r, c);
  }
  Matrix expected;
  MatMul(a, b_t, &expected);
  Matrix got;
  MatMulTransB(a, b, &got);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(expected.data()[i], got.data()[i], 1e-5);
  }
}

TEST(MatrixTest, SoftmaxSliceNormalizes) {
  Matrix logits(2, 5, 1.0f);
  logits.at(0, 2) = 3.0f;
  SoftmaxSlice(&logits, 1, 4);
  for (size_t r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (size_t c = 1; c < 4; ++c) sum += logits.at(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
  EXPECT_GT(logits.at(0, 2), logits.at(0, 1));
  // Columns outside the slice are untouched.
  EXPECT_FLOAT_EQ(logits.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(logits.at(0, 4), 1.0f);
}

// Numeric gradient check for Dense: loss = sum(y^2)/2, dL/dy = y.
TEST(DenseTest, GradientCheck) {
  Rng rng(2);
  Dense layer(4, 3, rng);
  Matrix x(5, 4);
  for (size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  Matrix y;
  layer.Forward(x, &y);
  Matrix dy = y;  // dL/dy = y for L = 0.5*sum(y^2)
  Matrix dx;
  layer.Backward(dy, &dx);

  std::vector<Param*> params;
  layer.CollectParams(&params);
  const double eps = 1e-3;
  for (Param* p : params) {
    for (size_t k = 0; k < std::min<size_t>(p->value.size(), 6); ++k) {
      const float orig = p->value.data()[k];
      auto loss_at = [&](float v) {
        p->value.data()[k] = v;
        Matrix out;
        layer.Forward(x, &out);
        double loss = 0.0;
        for (size_t i = 0; i < out.size(); ++i) {
          loss += 0.5 * out.data()[i] * out.data()[i];
        }
        return loss;
      };
      const double numeric =
          (loss_at(orig + static_cast<float>(eps)) -
           loss_at(orig - static_cast<float>(eps))) /
          (2 * eps);
      p->value.data()[k] = orig;
      EXPECT_NEAR(numeric, p->grad.data()[k], 2e-2)
          << "param element " << k;
    }
  }
  // Input gradient check.
  for (size_t k = 0; k < 6; ++k) {
    const float orig = x.data()[k];
    auto loss_at = [&](float v) {
      x.data()[k] = v;
      Matrix out;
      layer.Forward(x, &out);
      double loss = 0.0;
      for (size_t i = 0; i < out.size(); ++i) {
        loss += 0.5 * out.data()[i] * out.data()[i];
      }
      return loss;
    };
    const double numeric = (loss_at(orig + static_cast<float>(eps)) -
                            loss_at(orig - static_cast<float>(eps))) /
                           (2 * eps);
    x.data()[k] = orig;
    EXPECT_NEAR(numeric, dx.data()[k], 2e-2) << "input element " << k;
  }
}

TEST(MaskedDenseTest, MaskZeroesConnections) {
  Rng rng(3);
  Matrix mask(3, 2);
  mask.at(0, 0) = 1.0f;
  mask.at(1, 1) = 1.0f;  // input 2 disconnected entirely
  MaskedDense layer(mask, rng);
  Matrix x(1, 3);
  x.at(0, 0) = 1.0f;
  x.at(0, 1) = 2.0f;
  x.at(0, 2) = 100.0f;
  Matrix y1;
  layer.Forward(x, &y1);
  x.at(0, 2) = -100.0f;  // changing a masked input must not change outputs
  Matrix y2;
  layer.Forward(x, &y2);
  EXPECT_FLOAT_EQ(y1.at(0, 0), y2.at(0, 0));
  EXPECT_FLOAT_EQ(y1.at(0, 1), y2.at(0, 1));
}

TEST(EmbeddingTest, ForwardLooksUpRowsAndBackwardScatters) {
  Rng rng(4);
  EmbeddingSet embed({3, 2}, 4, rng);
  IntMatrix codes(2, 2);
  codes.at(0, 0) = 1;
  codes.at(0, 1) = 0;
  codes.at(1, 0) = 2;
  codes.at(1, 1) = 1;
  Matrix out;
  embed.Forward(codes, &out);
  EXPECT_EQ(out.rows(), 2u);
  EXPECT_EQ(out.cols(), 8u);

  Matrix dout(2, 8, 1.0f);
  embed.Backward(dout);
  std::vector<Param*> params;
  embed.CollectParams(&params);
  // Code 1 of attr 0 was used once -> its grad row is all ones.
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_FLOAT_EQ(params[0]->grad.at(1, k), 1.0f);
    EXPECT_FLOAT_EQ(params[0]->grad.at(0, k), 0.0f);
  }
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 via Adam.
  Param w;
  w.Init(1, 1);
  w.value.at(0, 0) = 0.0f;
  AdamOptions opts;
  opts.learning_rate = 0.1f;
  AdamOptimizer adam({&w}, opts);
  for (int i = 0; i < 300; ++i) {
    w.grad.at(0, 0) = 2.0f * (w.value.at(0, 0) - 3.0f);
    adam.Step();
  }
  EXPECT_NEAR(w.value.at(0, 0), 3.0f, 0.05f);
}

MadeConfig SmallMadeConfig(size_t context_dim = 0) {
  MadeConfig config;
  config.vocab_sizes = {3, 4, 2};
  config.embed_dim = 4;
  config.hidden_dim = 16;
  config.num_layers = 2;
  config.context_dim = context_dim;
  return config;
}

TEST(MadeTest, AutoregressivePropertyHolds) {
  Rng rng(5);
  MadeModel made(SmallMadeConfig(), rng);
  IntMatrix codes(1, 3);
  codes.at(0, 0) = 1;
  codes.at(0, 1) = 2;
  codes.at(0, 2) = 0;
  Matrix logits1;
  made.Forward(codes, Matrix(), &logits1);
  // Changing attribute 2 must not affect the logits of attributes 0 and 1.
  codes.at(0, 2) = 1;
  Matrix logits2;
  made.Forward(codes, Matrix(), &logits2);
  for (size_t c = 0; c < made.attr_offset(2); ++c) {
    EXPECT_FLOAT_EQ(logits1.at(0, c), logits2.at(0, c)) << "col " << c;
  }
  // Changing attribute 1 must not affect attribute 0's logits but is allowed
  // to affect attribute 2's.
  codes.at(0, 1) = 0;
  Matrix logits3;
  made.Forward(codes, Matrix(), &logits3);
  for (size_t c = 0; c < made.attr_offset(1); ++c) {
    EXPECT_FLOAT_EQ(logits2.at(0, c), logits3.at(0, c)) << "col " << c;
  }
}

TEST(MadeTest, FirstAttributeDependsOnlyOnContext) {
  Rng rng(6);
  MadeModel made(SmallMadeConfig(), rng);
  IntMatrix codes(1, 3, 0);
  Matrix logits1;
  made.Forward(codes, Matrix(), &logits1);
  codes.at(0, 0) = 2;  // its own value must not influence its own logits
  Matrix logits2;
  made.Forward(codes, Matrix(), &logits2);
  for (size_t c = 0; c < made.attr_offset(1); ++c) {
    EXPECT_FLOAT_EQ(logits1.at(0, c), logits2.at(0, c));
  }
}

TEST(MadeTest, GradientCheckOnNll) {
  Rng rng(7);
  MadeModel made(SmallMadeConfig(), rng);
  IntMatrix codes(4, 3);
  for (size_t r = 0; r < 4; ++r) {
    codes.at(r, 0) = static_cast<int32_t>(rng.NextUint64(3));
    codes.at(r, 1) = static_cast<int32_t>(rng.NextUint64(4));
    codes.at(r, 2) = static_cast<int32_t>(rng.NextUint64(2));
  }
  Matrix logits;
  made.Forward(codes, Matrix(), &logits);
  Matrix dlogits;
  made.NllLoss(logits, codes, 0, &dlogits);
  made.Backward(dlogits, nullptr);

  std::vector<Param*> params;
  made.CollectParams(&params);
  const double eps = 1e-2;
  size_t checked = 0;
  for (Param* p : params) {
    for (size_t k = 0; k < p->value.size() && checked < 40; k += 7) {
      const float orig = p->value.data()[k];
      auto loss_at = [&](float v) {
        p->value.data()[k] = v;
        Matrix out;
        made.Forward(codes, Matrix(), &out);
        return static_cast<double>(made.NllLossOnly(out, codes, 0));
      };
      const double numeric = (loss_at(orig + static_cast<float>(eps)) -
                              loss_at(orig - static_cast<float>(eps))) /
                             (2 * eps);
      p->value.data()[k] = orig;
      EXPECT_NEAR(numeric, p->grad.data()[k], 5e-2)
          << "param size " << p->value.size() << " elem " << k;
      ++checked;
    }
  }
  EXPECT_GT(checked, 20u);
}

TEST(MadeTest, ContextGradientCheck) {
  Rng rng(8);
  MadeModel made(SmallMadeConfig(/*context_dim=*/5), rng);
  IntMatrix codes(3, 3, 0);
  Matrix context(3, 5);
  for (size_t i = 0; i < context.size(); ++i) {
    context.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  Matrix logits;
  made.Forward(codes, context, &logits);
  Matrix dlogits;
  made.NllLoss(logits, codes, 0, &dlogits);
  Matrix dcontext;
  made.Backward(dlogits, &dcontext);

  const double eps = 1e-2;
  for (size_t k = 0; k < 10; ++k) {
    const float orig = context.data()[k];
    auto loss_at = [&](float v) {
      context.data()[k] = v;
      Matrix out;
      made.Forward(codes, context, &out);
      return static_cast<double>(made.NllLossOnly(out, codes, 0));
    };
    const double numeric = (loss_at(orig + static_cast<float>(eps)) -
                            loss_at(orig - static_cast<float>(eps))) /
                           (2 * eps);
    context.data()[k] = orig;
    EXPECT_NEAR(numeric, dcontext.data()[k], 5e-2);
  }
}

TEST(MadeTest, LearnsDeterministicDependency) {
  // attr1 = attr0 % 2 deterministically; after training the conditional
  // distribution must concentrate on the right value.
  Rng rng(9);
  MadeConfig config;
  config.vocab_sizes = {4, 2};
  config.embed_dim = 4;
  config.hidden_dim = 24;
  config.num_layers = 2;
  MadeModel made(config, rng);
  std::vector<Param*> params;
  made.CollectParams(&params);
  AdamOptions opts;
  opts.learning_rate = 5e-3f;
  AdamOptimizer adam(params, opts);

  IntMatrix batch(64, 2);
  for (int step = 0; step < 250; ++step) {
    for (size_t r = 0; r < 64; ++r) {
      const int32_t a = static_cast<int32_t>(rng.NextUint64(4));
      batch.at(r, 0) = a;
      batch.at(r, 1) = a % 2;
    }
    Matrix logits;
    made.Forward(batch, Matrix(), &logits);
    Matrix dlogits;
    made.NllLoss(logits, batch, 0, &dlogits);
    made.Backward(dlogits, nullptr);
    adam.Step();
  }
  IntMatrix query(4, 2, 0);
  for (size_t r = 0; r < 4; ++r) query.at(r, 0) = static_cast<int32_t>(r);
  Matrix probs;
  made.PredictDistribution(query, Matrix(), 1, &probs);
  for (size_t r = 0; r < 4; ++r) {
    EXPECT_GT(probs.at(r, r % 2), 0.85f) << "a=" << r;
  }
}

TEST(MadeTest, SampleRangeRespectsConditioning) {
  Rng rng(10);
  MadeConfig config;
  config.vocab_sizes = {4, 2};
  config.embed_dim = 4;
  config.hidden_dim = 24;
  config.num_layers = 2;
  MadeModel made(config, rng);
  std::vector<Param*> params;
  made.CollectParams(&params);
  AdamOptimizer adam(params, AdamOptions{.learning_rate = 5e-3f});
  IntMatrix batch(64, 2);
  for (int step = 0; step < 250; ++step) {
    for (size_t r = 0; r < 64; ++r) {
      const int32_t a = static_cast<int32_t>(rng.NextUint64(4));
      batch.at(r, 0) = a;
      batch.at(r, 1) = a % 2;
    }
    Matrix logits;
    made.Forward(batch, Matrix(), &logits);
    Matrix dlogits;
    made.NllLoss(logits, batch, 0, &dlogits);
    made.Backward(dlogits, nullptr);
    adam.Step();
  }
  // Conditional sampling should respect the deterministic dependency.
  IntMatrix codes(200, 2, 0);
  for (size_t r = 0; r < 200; ++r) {
    codes.at(r, 0) = static_cast<int32_t>(r % 4);
  }
  made.SampleRange(&codes, Matrix(), 1, 2, rng);
  size_t correct = 0;
  for (size_t r = 0; r < 200; ++r) {
    if (codes.at(r, 1) == codes.at(r, 0) % 2) ++correct;
  }
  EXPECT_GT(correct, 170u);
}

// The pre-PR sampling algorithm, reimplemented verbatim as a reference: a
// FULL forward pass per attribute, then the softmax / inverse-CDF pick over
// that attribute's logit slice (normalize-then-accumulate, stored values).
// The production SampleRange now computes only the active logit block via
// the column-sliced output layer — it must stay BIT-identical to this.
void ReferenceFullGemmSampleRange(const MadeModel& made, IntMatrix* codes,
                                  const Matrix& context, size_t first_attr,
                                  size_t end_attr, Rng& rng, int record_attr,
                                  Matrix* recorded) {
  const size_t batch = codes->rows();
  MadeScratch scratch;
  Matrix logits;
  std::vector<double> u(batch);
  for (size_t a = first_attr; a < end_attr; ++a) {
    made.Forward(*codes, context, &logits, &scratch);  // full total_vocab
    const size_t begin = made.attr_offset(a);
    const size_t vocab = static_cast<size_t>(made.vocab_size(a));
    const bool record = record_attr >= 0 &&
                        static_cast<size_t>(record_attr) == a &&
                        recorded != nullptr;
    if (record) recorded->Resize(batch, vocab);
    for (size_t r = 0; r < batch; ++r) u[r] = rng.NextDouble();
    for (size_t r = 0; r < batch; ++r) {
      float* probs = logits.row(r) + begin;
      float max_v = probs[0];
      for (size_t c = 0; c < vocab; ++c) max_v = std::max(max_v, probs[c]);
      float sum = 0.0f;
      for (size_t c = 0; c < vocab; ++c) {
        probs[c] = std::exp(probs[c] - max_v);
        sum += probs[c];
      }
      const float inv = 1.0f / sum;
      for (size_t c = 0; c < vocab; ++c) probs[c] *= inv;
      if (record) {
        float* dst = recorded->row(r);
        for (size_t c = 0; c < vocab; ++c) dst[c] = probs[c];
      }
      const double uu = u[r];
      double acc = 0.0;
      int32_t pick = static_cast<int32_t>(vocab) - 1;
      for (size_t c = 0; c < vocab; ++c) {
        acc += probs[c];
        if (uu < acc) {
          pick = static_cast<int32_t>(c);
          break;
        }
      }
      codes->at(r, a) = pick;
    }
  }
}

MadeConfig SlicedTestConfig(bool with_context) {
  MadeConfig config;
  // Mixed widths incl. non-multiples of the 8-float vector so the slice
  // kernel's remainder paths run, plus a wide block for shard coverage.
  config.vocab_sizes = {7, 33, 150, 5, 20};
  config.embed_dim = 6;
  config.hidden_dim = 48;
  config.num_layers = 2;
  config.context_dim = with_context ? 9 : 0;
  return config;
}

// The acceptance pin of the sliced sampling fast path: on frozen weights the
// DEFAULT SampleRange (column-sliced output layer, fused trunk, partial
// embedding re-gather) must reproduce the pre-PR full-GEMM sampling
// bit-for-bit — sampled codes AND recorded distribution.
TEST(MadeTest, SlicedSampleRangeBitIdenticalToFullGemmPath) {
  for (const bool with_context : {false, true}) {
    Rng rng(321);
    MadeConfig config = SlicedTestConfig(with_context);
    MadeModel made(config, rng);
    made.FinalizeForInference();
    const size_t batch = 96;
    Matrix context(with_context ? batch : 0, config.context_dim);
    for (size_t i = 0; i < context.size(); ++i) {
      context.data()[i] = static_cast<float>(rng.NextGaussian());
    }

    IntMatrix sliced_codes(batch, config.vocab_sizes.size(), 0);
    IntMatrix full_codes(batch, config.vocab_sizes.size(), 0);
    Matrix sliced_rec, full_rec;
    Rng rng_sliced(99), rng_full(99);
    MadeScratch scratch;
    made.SampleRange(&sliced_codes, context, 0, config.vocab_sizes.size(),
                     rng_sliced, /*record_attr=*/2, &sliced_rec, &scratch);
    ReferenceFullGemmSampleRange(made, &full_codes, context, 0,
                                 config.vocab_sizes.size(), rng_full,
                                 /*record_attr=*/2, &full_rec);

    for (size_t r = 0; r < batch; ++r) {
      for (size_t a = 0; a < config.vocab_sizes.size(); ++a) {
        ASSERT_EQ(sliced_codes.at(r, a), full_codes.at(r, a))
            << "code (" << r << "," << a << ") context=" << with_context;
      }
    }
    ASSERT_EQ(sliced_rec.size(), full_rec.size());
    for (size_t i = 0; i < sliced_rec.size(); ++i) {
      ASSERT_EQ(sliced_rec.data()[i], full_rec.data()[i])
          << "recorded prob " << i << " context=" << with_context;
    }
  }
}

// Sliced PredictDistribution must equal softmaxing the full logits.
TEST(MadeTest, SlicedPredictDistributionBitIdenticalToFullGemmPath) {
  Rng rng(654);
  MadeConfig config = SlicedTestConfig(/*with_context=*/false);
  MadeModel made(config, rng);
  made.FinalizeForInference();
  const size_t batch = 40;
  IntMatrix codes(batch, config.vocab_sizes.size(), 0);
  for (size_t r = 0; r < batch; ++r) {
    for (size_t a = 0; a < config.vocab_sizes.size(); ++a) {
      codes.at(r, a) = static_cast<int32_t>(
          rng.NextUint64(static_cast<uint64_t>(config.vocab_sizes[a])));
    }
  }
  for (size_t attr : {size_t{0}, size_t{2}, size_t{4}}) {
    MadeScratch scratch;
    Matrix probs;
    made.PredictDistribution(codes, Matrix(), attr, &probs, &scratch);

    MadeScratch ref_scratch;
    Matrix logits;
    made.Forward(codes, Matrix(), &logits, &ref_scratch);
    SoftmaxSlice(&logits, made.attr_offset(attr), made.attr_offset(attr + 1));
    for (size_t r = 0; r < batch; ++r) {
      const float* want = logits.row(r) + made.attr_offset(attr);
      const float* got = probs.row(r);
      for (size_t c = 0; c < probs.cols(); ++c) {
        ASSERT_EQ(got[c], want[c]) << "attr " << attr << " (" << r << ","
                                   << c << ")";
      }
    }
  }
}

// The OPT-IN incremental delta path accumulates the first hidden layer in a
// different order, so it is tolerance-equivalent, never bit-identical: the
// recorded distribution must agree closely and nearly every sampled code
// must match the default path's.
TEST(MadeTest, IncrementalSamplingMatchesDefaultWithinTolerance) {
  MadeConfig config = SlicedTestConfig(/*with_context=*/false);
  Rng rng_a(77);
  MadeModel default_model(config, rng_a);
  config.incremental_sampling = true;
  Rng rng_b(77);  // identical weights, different sampling path
  MadeModel incremental_model(config, rng_b);
  default_model.FinalizeForInference();
  incremental_model.FinalizeForInference();

  const size_t batch = 128;
  const size_t n_attrs = config.vocab_sizes.size();
  IntMatrix codes_a(batch, n_attrs, 0);
  IntMatrix codes_b(batch, n_attrs, 0);
  Matrix rec_a, rec_b;
  Rng sample_a(5), sample_b(5);
  MadeScratch scratch_a, scratch_b;
  // Record the LAST attribute: maximal accumulated delta drift.
  default_model.SampleRange(&codes_a, Matrix(), 0, n_attrs, sample_a,
                            static_cast<int>(n_attrs) - 1, &rec_a,
                            &scratch_a);
  incremental_model.SampleRange(&codes_b, Matrix(), 0, n_attrs, sample_b,
                                static_cast<int>(n_attrs) - 1, &rec_b,
                                &scratch_b);

  ASSERT_EQ(rec_a.size(), rec_b.size());
  for (size_t i = 0; i < rec_a.size(); ++i) {
    ASSERT_NEAR(rec_a.data()[i], rec_b.data()[i], 1e-3f)
        << "recorded prob " << i;
  }
  size_t matching = 0;
  for (size_t r = 0; r < batch; ++r) {
    for (size_t a = 0; a < n_attrs; ++a) {
      if (codes_a.at(r, a) == codes_b.at(r, a)) ++matching;
    }
  }
  // A draw landing exactly on a drifted CDF boundary can flip a code, but
  // only with probability ~ drift * vocab; require near-total agreement.
  EXPECT_GE(matching, batch * n_attrs * 98 / 100)
      << matching << "/" << batch * n_attrs;
}

TEST(DeepSetsTest, PermutationInvariantAndEmptySetIsZeroInput) {
  Rng rng(11);
  DeepSetsEncoder enc({DeepSetsEncoder::TableSpec{{3, 4}}}, 4, 8, 6, rng);
  ChildBatch cb;
  cb.codes = IntMatrix(3, 2);
  cb.codes.at(0, 0) = 1;
  cb.codes.at(0, 1) = 2;
  cb.codes.at(1, 0) = 2;
  cb.codes.at(1, 1) = 0;
  cb.codes.at(2, 0) = 0;
  cb.codes.at(2, 1) = 3;
  cb.offsets = {0, 3};
  Matrix ctx1;
  enc.Forward({cb}, &ctx1);

  // Permute the children of the single evidence row.
  ChildBatch cb2;
  cb2.codes = IntMatrix(3, 2);
  for (size_t c = 0; c < 2; ++c) {
    cb2.codes.at(0, c) = cb.codes.at(2, c);
    cb2.codes.at(1, c) = cb.codes.at(0, c);
    cb2.codes.at(2, c) = cb.codes.at(1, c);
  }
  cb2.offsets = {0, 3};
  Matrix ctx2;
  enc.Forward({cb2}, &ctx2);
  for (size_t i = 0; i < ctx1.size(); ++i) {
    EXPECT_NEAR(ctx1.data()[i], ctx2.data()[i], 1e-5);
  }
}

TEST(DeepSetsTest, GradientCheckThroughEncoder) {
  Rng rng(12);
  DeepSetsEncoder enc({DeepSetsEncoder::TableSpec{{3}}}, 3, 6, 4, rng);
  ChildBatch cb;
  cb.codes = IntMatrix(4, 1);
  cb.codes.at(0, 0) = 0;
  cb.codes.at(1, 0) = 1;
  cb.codes.at(2, 0) = 2;
  cb.codes.at(3, 0) = 1;
  cb.offsets = {0, 2, 4};  // two evidence rows, two children each
  Matrix ctx;
  enc.Forward({cb}, &ctx);
  Matrix dctx = ctx;  // L = 0.5*sum(ctx^2)
  enc.Backward(dctx);

  std::vector<Param*> params;
  enc.CollectParams(&params);
  const double eps = 1e-2;
  size_t checked = 0;
  for (Param* p : params) {
    for (size_t k = 0; k < p->value.size() && checked < 20; k += 5) {
      const float orig = p->value.data()[k];
      auto loss_at = [&](float v) {
        p->value.data()[k] = v;
        Matrix out;
        enc.Forward({cb}, &out);
        double loss = 0.0;
        for (size_t i = 0; i < out.size(); ++i) {
          loss += 0.5 * out.data()[i] * out.data()[i];
        }
        return loss;
      };
      const double numeric = (loss_at(orig + static_cast<float>(eps)) -
                              loss_at(orig - static_cast<float>(eps))) /
                             (2 * eps);
      p->value.data()[k] = orig;
      EXPECT_NEAR(numeric, p->grad.data()[k], 6e-2);
      ++checked;
    }
  }
  EXPECT_GT(checked, 10u);
}

// Property sweep: the autoregressive property must hold for a variety of
// attribute counts and vocabulary shapes.
class MadeMaskPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MadeMaskPropertyTest, NoForwardLeakage) {
  const int n_attrs = GetParam();
  Rng rng(100 + static_cast<uint64_t>(n_attrs));
  MadeConfig config;
  for (int i = 0; i < n_attrs; ++i) {
    config.vocab_sizes.push_back(2 + (i % 4));
  }
  config.embed_dim = 3;
  config.hidden_dim = 19;  // deliberately not divisible by n_attrs
  config.num_layers = 3;
  MadeModel made(config, rng);
  IntMatrix codes(1, static_cast<size_t>(n_attrs), 0);
  Matrix base;
  made.Forward(codes, Matrix(), &base);
  for (int changed = 0; changed < n_attrs; ++changed) {
    IntMatrix mutated = codes;
    mutated.at(0, static_cast<size_t>(changed)) =
        config.vocab_sizes[static_cast<size_t>(changed)] - 1;
    Matrix out;
    made.Forward(mutated, Matrix(), &out);
    // Attributes <= changed must be unaffected.
    for (int a = 0; a <= changed; ++a) {
      for (size_t c = made.attr_offset(static_cast<size_t>(a));
           c < made.attr_offset(static_cast<size_t>(a) + 1); ++c) {
        ASSERT_FLOAT_EQ(base.at(0, c), out.at(0, c))
            << "attr " << a << " leaked from attr " << changed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AttrCounts, MadeMaskPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 12));

}  // namespace
}  // namespace restore
