#include "restore/path_model.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "common/string_util.h"
#include "common/timer.h"
#include "exec/join.h"
#include "nn/adam.h"
#include "restore/tuple_factor.h"

namespace restore {

namespace {

constexpr const char kTfFillPrefix[] = "__tffill_";
constexpr const char kTfObsPrefix[] = "__tfobs_";

/// Collects all key columns (FK endpoints) of `table`.
std::set<std::string> KeyColumns(const Database& db,
                                 const std::string& table) {
  std::set<std::string> keys;
  for (const auto& fk : db.foreign_keys()) {
    if (fk.child_table == table) keys.insert(fk.child_column);
    if (fk.parent_table == table) keys.insert(fk.parent_column);
  }
  return keys;
}

/// Primary-key column of `table`: the column other tables reference, if any.
Result<std::string> PrimaryKeyColumn(const Database& db,
                                     const std::string& table) {
  for (const auto& fk : db.foreign_keys()) {
    if (fk.parent_table == table) return fk.parent_column;
  }
  return Status::NotFound(
      StrFormat("table '%s' has no referencing foreign key", table.c_str()));
}

/// Builds a TF discretizer with one code per count in [0, tf_cap].
Result<ColumnDiscretizer> MakeTfDiscretizer(int tf_cap) {
  Column tmp("tf", ColumnType::kInt64);
  for (int v = 0; v <= tf_cap; ++v) tmp.AppendInt64(v);
  return ColumnDiscretizer::Fit(tmp, tf_cap + 1);
}

int64_t ClampTf(int64_t v, int tf_cap) {
  return std::max<int64_t>(0, std::min<int64_t>(v, tf_cap));
}

/// Thread-safe log-gamma: std::lgamma writes the process-global `signgam`
/// (POSIX), which is a data race when concurrent sessions predict tuple
/// factors through one model. All inputs here are >= 1, so the sign output
/// of the reentrant variant is irrelevant.
double LogGamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

}  // namespace

Result<std::unique_ptr<PathModel>> PathModel::Train(
    const Database& db, const SchemaAnnotation& annotation,
    const std::vector<std::string>& path, const PathModelConfig& config,
    const PathModel* warm_start) {
  if (path.size() < 2) {
    return Status::InvalidArgument("completion path needs >= 2 tables");
  }
  std::unique_ptr<PathModel> model(new PathModel());
  model->path_ = path;
  model->config_ = config;
  model->annotation_ = annotation;
  model->rng_.Seed(config.seed);
  model->scratch_pool_.set_max_idle(config.max_pooled_scratch_arenas);
  RESTORE_RETURN_IF_ERROR(model->BuildLayout(db, annotation));
  if (config.use_ssar) {
    RESTORE_RETURN_IF_ERROR(model->SetupSsar(db));
  }
  RESTORE_RETURN_IF_ERROR(model->BuildTrainingData(db));
  RESTORE_RETURN_IF_ERROR(model->RunTraining(warm_start));
  model->batcher_ =
      std::make_unique<SampleBatcher>(model->made_.get(),
                                      &model->scratch_pool_);
  model->set_batching_config(config.batching_enabled, config.batch_wait_us,
                             config.batch_max_rows);
  return model;
}

void PathModel::set_batching_config(bool enabled, uint32_t wait_us,
                                    size_t max_rows) const {
  SampleBatcher::Config cfg;
  cfg.enabled = enabled;
  cfg.wait_us = wait_us;
  cfg.max_rows = max_rows;
  batcher_->Configure(cfg);
}

Status PathModel::BuildLayout(const Database& db,
                              const SchemaAnnotation& annotation) {
  (void)annotation;
  const size_t n = path_.size();
  table_attr_begin_.assign(n, 0);
  table_attr_end_.assign(n, 0);
  tf_attr_of_hop_.assign(n > 0 ? n - 1 : 0, -1);
  hop_is_fanout_.assign(n > 0 ? n - 1 : 0, false);
  for (size_t k = 0; k + 1 < n; ++k) {
    RESTORE_ASSIGN_OR_RETURN(bool fanout, db.IsFanOut(path_[k], path_[k + 1]));
    hop_is_fanout_[k] = fanout;
  }

  for (size_t k = 0; k < n; ++k) {
    const std::string& tname = path_[k];
    RESTORE_ASSIGN_OR_RETURN(const Table* table, db.GetTable(tname));
    const std::set<std::string> keys = KeyColumns(db, tname);
    table_attr_begin_[k] = attrs_.size();
    for (const auto& col : table->columns()) {
      if (keys.count(col.name()) > 0) continue;
      if (IsTupleFactorColumn(col.name())) continue;
      if (StartsWith(col.name(), kTfFillPrefix) ||
          StartsWith(col.name(), kTfObsPrefix)) {
        continue;
      }
      PathAttr attr;
      attr.table = tname;
      attr.column = col.name();
      attr.qualified = tname + "." + col.name();
      attr.is_tuple_factor = false;
      RESTORE_ASSIGN_OR_RETURN(attr.disc,
                               ColumnDiscretizer::Fit(col, config_.max_bins));
      attrs_.push_back(std::move(attr));
    }
    table_attr_end_[k] = attrs_.size();
    // Tuple-factor attribute of the hop k -> k+1 (fan-out hops only).
    if (k + 1 < n && hop_is_fanout_[k]) {
      PathAttr attr;
      attr.table = tname;
      attr.column = TupleFactorColumnName(path_[k + 1]);
      attr.qualified = tname + "." + attr.column;
      attr.is_tuple_factor = true;
      RESTORE_ASSIGN_OR_RETURN(attr.disc, MakeTfDiscretizer(config_.tf_cap));
      tf_attr_of_hop_[k] = static_cast<int>(attrs_.size());
      attrs_.push_back(std::move(attr));
    }
  }
  if (attrs_.empty()) {
    return Status::InvalidArgument(
        "completion path has no non-key attributes to model");
  }
  return Status::OK();
}

Status PathModel::SetupSsar(const Database& db) {
  // Find the last fan-out hop: its parent table is the deep-sets root.
  int root_hop = -1;
  for (size_t k = 0; k + 1 < path_.size(); ++k) {
    if (hop_is_fanout_[k]) root_hop = static_cast<int>(k);
  }
  if (root_hop < 0) {
    ssar_enabled_ = false;  // no fan-out evidence available: plain AR
    return Status::OK();
  }
  ssar_root_table_ = path_[static_cast<size_t>(root_hop)];
  RESTORE_ASSIGN_OR_RETURN(ssar_root_key_,
                           PrimaryKeyColumn(db, ssar_root_table_));

  // Child tables: fan-out children of the root. The on-path child comes
  // first (self-evidence towards the table being completed).
  const std::string on_path_child = path_[static_cast<size_t>(root_hop) + 1];
  std::vector<std::string> candidates{on_path_child};
  for (const auto& fk : db.foreign_keys()) {
    if (fk.parent_table == ssar_root_table_ &&
        fk.child_table != on_path_child) {
      candidates.push_back(fk.child_table);
    }
  }

  for (const auto& child : candidates) {
    if (ssar_child_tables_.size() >= 2) break;
    RESTORE_ASSIGN_OR_RETURN(const Table* ctable, db.GetTable(child));
    const std::set<std::string> keys = KeyColumns(db, child);
    RowEncoder encoder;
    for (const auto& col : ctable->columns()) {
      if (keys.count(col.name()) > 0) continue;
      if (IsTupleFactorColumn(col.name())) continue;
      RESTORE_ASSIGN_OR_RETURN(ColumnDiscretizer disc,
                               ColumnDiscretizer::Fit(col, config_.max_bins));
      encoder.Add(col.name(), std::move(disc));
    }
    if (encoder.num_attrs() == 0) continue;  // e.g. pure link tables

    // Encode all available child rows and index them by the root key.
    RESTORE_ASSIGN_OR_RETURN(ForeignKey fk,
                             db.FindForeignKey(child, ssar_root_table_));
    RESTORE_ASSIGN_OR_RETURN(const Column* fk_col,
                             ctable->GetColumn(fk.child_column));
    IntMatrix codes(ctable->NumRows(), encoder.num_attrs());
    for (size_t a = 0; a < encoder.num_attrs(); ++a) {
      RESTORE_ASSIGN_OR_RETURN(const Column* col,
                               ctable->GetColumn(encoder.name(a)));
      for (size_t r = 0; r < ctable->NumRows(); ++r) {
        const int32_t code = encoder.discretizer(a).EncodeCell(*col, r);
        codes.at(r, a) = std::max<int32_t>(0, code);
      }
    }
    std::map<int64_t, std::vector<size_t>> index;
    for (size_t r = 0; r < ctable->NumRows(); ++r) {
      const int64_t key = fk_col->GetInt64(r);
      if (key == kNullInt64) continue;
      index[key].push_back(r);
    }
    // Child primary keys (for leave-one-out exclusion); row index fallback.
    std::vector<int64_t> pks(ctable->NumRows());
    auto pk_name = PrimaryKeyColumn(db, child);
    if (pk_name.ok() && ctable->HasColumn(pk_name.value())) {
      RESTORE_ASSIGN_OR_RETURN(const Column* pk_col,
                               ctable->GetColumn(pk_name.value()));
      for (size_t r = 0; r < ctable->NumRows(); ++r) {
        pks[r] = pk_col->GetInt64(r);
      }
    } else {
      for (size_t r = 0; r < ctable->NumRows(); ++r) {
        pks[r] = static_cast<int64_t>(r);
      }
    }

    ssar_child_tables_.push_back(child);
    ssar_child_encoders_.push_back(std::move(encoder));
    child_codes_.push_back(std::move(codes));
    children_of_key_.push_back(std::move(index));
    child_pks_.push_back(std::move(pks));
  }
  ssar_enabled_ = !ssar_child_tables_.empty();
  return Status::OK();
}

Status PathModel::BuildTrainingData(const Database& db) {
  // Scratch copy where fan-out parents carry __tffill / __tfobs columns.
  Database scratch = db.Clone();
  tf_keep_ratio_.assign(path_.size() > 0 ? path_.size() - 1 : 0, 1.0);
  for (size_t k = 0; k + 1 < path_.size(); ++k) {
    if (!hop_is_fanout_[k]) continue;
    const std::string& parent = path_[k];
    const std::string& child = path_[k + 1];
    RESTORE_ASSIGN_OR_RETURN(std::vector<int64_t> current,
                             CountChildMatches(db, db.FindForeignKey(parent, child).value()));
    RESTORE_ASSIGN_OR_RETURN(Table * ptable, scratch.GetMutableTable(parent));
    const std::string tf_name = TupleFactorColumnName(child);
    Column fill(kTfFillPrefix + child, ColumnType::kInt64);
    Column obs(kTfObsPrefix + child, ColumnType::kInt64);
    const bool has_tf = ptable->HasColumn(tf_name);
    const Column* tf_col = nullptr;
    if (has_tf) {
      RESTORE_ASSIGN_OR_RETURN(tf_col, ptable->GetColumn(tf_name));
    }
    double observed_tf_sum = 0.0;
    double observed_have_sum = 0.0;
    for (size_t r = 0; r < ptable->NumRows(); ++r) {
      if (has_tf && !tf_col->IsNull(r)) {
        fill.AppendInt64(ClampTf(tf_col->GetInt64(r), config_.tf_cap));
        obs.AppendInt64(1);
        observed_tf_sum += static_cast<double>(tf_col->GetInt64(r));
        observed_have_sum += static_cast<double>(current[r]);
      } else if (!has_tf) {
        // No TF annotation at all: treat the available count as the truth
        // (complete-relationship default).
        fill.AppendInt64(ClampTf(current[r], config_.tf_cap));
        obs.AppendInt64(1);
      } else {
        fill.AppendInt64(ClampTf(current[r], config_.tf_cap));
        obs.AppendInt64(0);
      }
    }
    RESTORE_RETURN_IF_ERROR(ptable->AddColumn(std::move(fill)));
    RESTORE_RETURN_IF_ERROR(ptable->AddColumn(std::move(obs)));
    if (observed_tf_sum > 0.0) {
      tf_keep_ratio_[k] =
          std::clamp(observed_have_sum / observed_tf_sum, 0.01, 1.0);
    }
  }

  RESTORE_ASSIGN_OR_RETURN(Table joined, NaturalJoinTables(scratch, path_));
  if (joined.NumRows() == 0) {
    return Status::FailedPrecondition(
        "no training data: the join of the completion path is empty");
  }

  // Subsample and shuffle rows.
  std::vector<size_t> rows(joined.NumRows());
  for (size_t r = 0; r < rows.size(); ++r) rows[r] = r;
  rng_.Shuffle(rows);
  if (rows.size() > config_.max_train_rows) {
    rows.resize(config_.max_train_rows);
  }

  // Resolve the source column of every attribute once. For tuple-factor
  // attributes, additionally compute the join multiplicity of each parent
  // row: the training join repeats a parent once per available child, which
  // would size-bias the learned tuple-factor distribution unless each
  // parent's loss contribution is down-weighted by 1/multiplicity.
  std::vector<const Column*> attr_cols(attrs_.size(), nullptr);
  std::vector<const Column*> obs_cols(attrs_.size(), nullptr);
  std::vector<const Column*> tf_key_cols(attrs_.size(), nullptr);
  std::vector<std::unordered_map<int64_t, float>> tf_inv_mult(attrs_.size());
  for (size_t a = 0; a < attrs_.size(); ++a) {
    if (attrs_[a].is_tuple_factor) {
      const std::string child =
          attrs_[a].column.substr(std::string("__tf_").size());
      RESTORE_ASSIGN_OR_RETURN(
          size_t ci,
          ResolveColumn(joined, attrs_[a].table + "." + kTfFillPrefix + child));
      attr_cols[a] = &joined.column(ci);
      RESTORE_ASSIGN_OR_RETURN(
          size_t oi,
          ResolveColumn(joined, attrs_[a].table + "." + kTfObsPrefix + child));
      obs_cols[a] = &joined.column(oi);
      RESTORE_ASSIGN_OR_RETURN(ForeignKey fk,
                               db.FindForeignKey(attrs_[a].table, child));
      RESTORE_ASSIGN_OR_RETURN(
          size_t ki,
          ResolveColumn(joined, attrs_[a].table + "." + fk.parent_column));
      tf_key_cols[a] = &joined.column(ki);
      std::unordered_map<int64_t, float> counts;
      for (size_t r = 0; r < joined.NumRows(); ++r) {
        counts[tf_key_cols[a]->GetInt64(r)] += 1.0f;
      }
      for (auto& [key, count] : counts) {
        (void)key;
        count = 1.0f / count;
      }
      tf_inv_mult[a] = std::move(counts);
    } else {
      RESTORE_ASSIGN_OR_RETURN(size_t ci,
                               ResolveColumn(joined, attrs_[a].qualified));
      attr_cols[a] = &joined.column(ci);
    }
  }

  IntMatrix codes(rows.size(), attrs_.size());
  Matrix weights(rows.size(), attrs_.size(), 1.0f);
  for (size_t i = 0; i < rows.size(); ++i) {
    const size_t r = rows[i];
    for (size_t a = 0; a < attrs_.size(); ++a) {
      const int32_t code = attrs_[a].disc.EncodeCell(*attr_cols[a], r);
      if (code < 0) {
        codes.at(i, a) = 0;
        weights.at(i, a) = 0.0f;
      } else {
        codes.at(i, a) = code;
        if (obs_cols[a] != nullptr && obs_cols[a]->GetInt64(r) == 0) {
          weights.at(i, a) = 0.0f;
        } else if (tf_key_cols[a] != nullptr) {
          weights.at(i, a) =
              tf_inv_mult[a].at(tf_key_cols[a]->GetInt64(r));
        }
      }
    }
  }

  // SSAR bookkeeping: evidence keys + leave-one-out exclusion pks.
  std::vector<int64_t> evidence_keys;
  std::vector<int64_t> exclude_pks;
  if (ssar_enabled_) {
    RESTORE_ASSIGN_OR_RETURN(
        size_t ki,
        ResolveColumn(joined, ssar_root_table_ + "." + ssar_root_key_));
    const Column& key_col = joined.column(ki);
    evidence_keys.resize(rows.size());
    exclude_pks.assign(rows.size(), kNullInt64);
    for (size_t i = 0; i < rows.size(); ++i) {
      evidence_keys[i] = key_col.GetInt64(rows[i]);
    }
    // Self-evidence: exclude the row being predicted from its own set.
    const std::string& self_child = ssar_child_tables_[0];
    auto self_pk_name = PrimaryKeyColumn(db, self_child);
    if (self_pk_name.ok()) {
      auto pk_idx =
          ResolveColumn(joined, self_child + "." + self_pk_name.value());
      if (pk_idx.ok()) {
        const Column& pk_col = joined.column(pk_idx.value());
        for (size_t i = 0; i < rows.size(); ++i) {
          exclude_pks[i] = pk_col.GetInt64(rows[i]);
        }
      }
    }
  }

  // Train/test split.
  const size_t test_n = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(rows.size()) *
                             config_.test_fraction));
  const size_t train_n = rows.size() > test_n ? rows.size() - test_n : 1;
  std::vector<size_t> train_idx;
  std::vector<size_t> test_idx;
  for (size_t i = 0; i < rows.size(); ++i) {
    (i < train_n ? train_idx : test_idx).push_back(i);
  }
  auto take = [&](const std::vector<size_t>& idx, IntMatrix* c, Matrix* w,
                  std::vector<int64_t>* keys, std::vector<int64_t>* excl) {
    *c = codes.GatherRows(idx);
    w->Resize(idx.size(), attrs_.size());
    for (size_t i = 0; i < idx.size(); ++i) {
      for (size_t a = 0; a < attrs_.size(); ++a) {
        w->at(i, a) = weights.at(idx[i], a);
      }
    }
    if (ssar_enabled_) {
      keys->resize(idx.size());
      excl->resize(idx.size());
      for (size_t i = 0; i < idx.size(); ++i) {
        (*keys)[i] = evidence_keys[idx[i]];
        (*excl)[i] = exclude_pks[idx[i]];
      }
    }
  };
  take(train_idx, &train_codes_, &train_weights_, &train_evidence_keys_,
       &train_exclude_pk_);
  take(test_idx, &test_codes_, &test_weights_, &test_evidence_keys_,
       &test_exclude_pk_);

  // Marginal code distributions of the training data (P_incomplete of
  // Section 6), with add-one smoothing.
  train_marginals_.assign(attrs_.size(), {});
  for (size_t a = 0; a < attrs_.size(); ++a) {
    std::vector<double> counts(attrs_[a].disc.vocab_size(), 1.0);
    double total = static_cast<double>(counts.size());
    for (size_t i = 0; i < train_codes_.rows(); ++i) {
      if (train_weights_.at(i, a) > 0.0f) {
        counts[static_cast<size_t>(train_codes_.at(i, a))] += 1.0;
        total += 1.0;
      }
    }
    for (double& c : counts) c /= total;
    train_marginals_[a] = std::move(counts);
  }
  return Status::OK();
}

Result<std::vector<ChildBatch>> PathModel::BuildChildBatches(
    const std::vector<int64_t>& evidence_keys,
    const std::vector<int64_t>* exclude_child_pk) const {
  std::vector<ChildBatch> out(ssar_child_tables_.size());
  for (size_t t = 0; t < ssar_child_tables_.size(); ++t) {
    ChildBatch& cb = out[t];
    cb.offsets.assign(evidence_keys.size() + 1, 0);
    std::vector<size_t> picked;
    for (size_t i = 0; i < evidence_keys.size(); ++i) {
      auto it = children_of_key_[t].find(evidence_keys[i]);
      size_t count = 0;
      if (it != children_of_key_[t].end()) {
        for (size_t child_row : it->second) {
          if (count >= config_.max_children) break;
          if (t == 0 && exclude_child_pk != nullptr &&
              (*exclude_child_pk)[i] != kNullInt64 &&
              child_pks_[t][child_row] == (*exclude_child_pk)[i]) {
            continue;
          }
          picked.push_back(child_row);
          ++count;
        }
      }
      cb.offsets[i + 1] = cb.offsets[i] + count;
    }
    cb.codes = child_codes_[t].GatherRows(picked);
    if (picked.empty()) {
      // Keep the attr width correct for the encoder even when empty.
      cb.codes = IntMatrix(0, child_codes_[t].cols());
    }
  }
  return out;
}

Status PathModel::RunTraining(const PathModel* warm_start) {
  Timer timer;
  MadeConfig made_config;
  made_config.vocab_sizes.reserve(attrs_.size());
  for (const auto& a : attrs_) {
    made_config.vocab_sizes.push_back(a.disc.vocab_size());
  }
  made_config.embed_dim = config_.embed_dim;
  made_config.hidden_dim = config_.hidden_dim;
  made_config.num_layers = config_.num_layers;
  made_config.context_dim = ssar_enabled_ ? config_.context_dim : 0;
  made_ = std::make_unique<MadeModel>(made_config, rng_);

  if (ssar_enabled_) {
    std::vector<DeepSetsEncoder::TableSpec> specs;
    for (const auto& enc : ssar_child_encoders_) {
      specs.push_back({enc.VocabSizes()});
    }
    deep_sets_ = std::make_unique<DeepSetsEncoder>(
        specs, config_.embed_dim, config_.phi_dim, config_.context_dim, rng_);
  }

  std::vector<Param*> params;
  made_->CollectParams(&params);
  if (deep_sets_ != nullptr) deep_sets_->CollectParams(&params);
  num_parameters_ = 0;
  for (Param* p : params) num_parameters_ += p->value.size();

  // Warm start (fine-tune refresh): seed the freshly initialized networks
  // with the previous generation's learned parameters. Only valid when the
  // architectures line up exactly — same param count and per-param shapes —
  // which holds for appends that introduce no new categorical values. Any
  // mismatch means the layout drifted; fall back to the cold init already in
  // place rather than copying garbage.
  if (warm_start != nullptr && warm_start->made_ != nullptr) {
    std::vector<Param*> old_params;
    warm_start->made_->CollectParams(&old_params);
    if (warm_start->deep_sets_ != nullptr) {
      warm_start->deep_sets_->CollectParams(&old_params);
    }
    bool shapes_match = old_params.size() == params.size();
    for (size_t i = 0; shapes_match && i < params.size(); ++i) {
      shapes_match = old_params[i]->value.rows() == params[i]->value.rows() &&
                     old_params[i]->value.cols() == params[i]->value.cols();
    }
    if (shapes_match) {
      for (size_t i = 0; i < params.size(); ++i) {
        params[i]->value = old_params[i]->value;
      }
    }
  }

  AdamOptions opts;
  opts.learning_rate = config_.learning_rate;
  AdamOptimizer adam(params, opts);

  const size_t n = train_codes_.rows();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;

  // Ensure a minimum number of optimizer steps on small training joins.
  const size_t steps_per_epoch =
      (n + config_.batch_size - 1) / config_.batch_size;
  const size_t epochs = std::max(
      config_.epochs,
      config_.epochs == 0
          ? 0
          : (config_.min_train_steps + steps_per_epoch - 1) /
                std::max<size_t>(1, steps_per_epoch));

  const Matrix empty_context;
  // Minibatch scratch buffers live OUTSIDE the training loops: shapes repeat
  // (full batches all match, plus one short tail per epoch), so the
  // shape-preserving Resize makes every steady-state step allocation-free.
  std::vector<size_t> batch;
  IntMatrix codes;
  Matrix weights;
  Matrix context;
  Matrix logits;
  Matrix dlogits;
  Matrix dcontext;
  std::vector<int64_t> keys;
  std::vector<int64_t> excl;
  std::vector<ChildBatch> children;
  for (size_t epoch = 0; epoch < epochs; ++epoch) {
    rng_.Shuffle(order);
    for (size_t begin = 0; begin < n; begin += config_.batch_size) {
      const size_t end = std::min(n, begin + config_.batch_size);
      batch.assign(order.begin() + begin, order.begin() + end);
      train_codes_.GatherRowsInto(batch, &codes);
      weights.Resize(batch.size(), attrs_.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        for (size_t a = 0; a < attrs_.size(); ++a) {
          weights.at(i, a) = train_weights_.at(batch[i], a);
        }
      }
      if (ssar_enabled_) {
        keys.resize(batch.size());
        excl.resize(batch.size());
        for (size_t i = 0; i < batch.size(); ++i) {
          keys[i] = train_evidence_keys_[batch[i]];
          excl[i] = train_exclude_pk_[batch[i]];
        }
        RESTORE_ASSIGN_OR_RETURN(children, BuildChildBatches(keys, &excl));
        deep_sets_->Forward(children, &context);
      }
      made_->Forward(codes, ssar_enabled_ ? context : empty_context, &logits);
      made_->NllLossWeighted(logits, codes, 0, weights, &dlogits);
      made_->Backward(dlogits, ssar_enabled_ ? &dcontext : nullptr);
      if (ssar_enabled_) deep_sets_->Backward(dcontext);
      adam.Step();
    }
  }

  // Held-out evaluation.
  {
    Matrix context;
    if (ssar_enabled_) {
      RESTORE_ASSIGN_OR_RETURN(
          std::vector<ChildBatch> children,
          BuildChildBatches(test_evidence_keys_, &test_exclude_pk_));
      deep_sets_->Forward(children, &context);
    }
    Matrix logits;
    made_->Forward(test_codes_, ssar_enabled_ ? context : empty_context,
                   &logits);
    test_loss_ =
        made_->NllLossWeighted(logits, test_codes_, 0, test_weights_, nullptr);
    // Target loss: final table's attributes plus the final hop's TF.
    size_t first_target = table_attr_begin_[path_.size() - 1];
    const int last_tf = tf_attr_of_hop_[path_.size() - 2];
    if (last_tf >= 0) {
      first_target = std::min(first_target, static_cast<size_t>(last_tf));
    }
    target_test_loss_ = made_->NllLossWeighted(logits, test_codes_,
                                               first_target, test_weights_,
                                               nullptr);
  }
  // Parameters are final: freeze the masked-weight caches so the reentrant
  // (const, scratch-arena) inference entry points can run without ever
  // touching model state again.
  made_->FinalizeForInference();
  train_seconds_ = timer.ElapsedSeconds();
  return Status::OK();
}

Result<IntMatrix> PathModel::EncodeEvidencePrefix(
    const Database& db, const Table& joined, size_t upto_table,
    const std::vector<size_t>& rows) const {
  IntMatrix codes(rows.size(), attrs_.size());
  // Cache of current child counts per fan-out hop (for unobserved TFs).
  std::unordered_map<size_t, std::unordered_map<int64_t, int64_t>> counts;

  const size_t attr_end = table_attr_end_[upto_table];
  for (size_t a = 0; a < attrs_.size(); ++a) {
    const PathAttr& attr = attrs_[a];
    // Include table blocks up to `upto_table` and TF attrs of hops strictly
    // before it (TF of hop `upto_table` is sampled, not encoded).
    bool in_prefix = false;
    if (!attr.is_tuple_factor) {
      in_prefix = a < attr_end;
    } else {
      for (size_t k = 0; k < upto_table; ++k) {
        if (tf_attr_of_hop_[k] == static_cast<int>(a)) in_prefix = true;
      }
    }
    if (!in_prefix) continue;

    auto ci = ResolveColumn(joined, attr.qualified);
    if (!attr.is_tuple_factor) {
      if (!ci.ok()) return ci.status();
      const Column& col = joined.column(ci.value());
      for (size_t i = 0; i < rows.size(); ++i) {
        const int32_t code = attr.disc.EncodeCell(col, rows[i]);
        codes.at(i, a) = std::max<int32_t>(0, code);
      }
      continue;
    }
    // Tuple-factor attribute inside the prefix: observed value if present,
    // else the currently available child count.
    size_t hop = 0;
    for (size_t k = 0; k < upto_table; ++k) {
      if (tf_attr_of_hop_[k] == static_cast<int>(a)) hop = k;
    }
    const std::string& parent = path_[hop];
    const std::string& child = path_[hop + 1];
    if (counts.count(hop) == 0) {
      RESTORE_ASSIGN_OR_RETURN(ForeignKey fk, db.FindForeignKey(parent, child));
      RESTORE_ASSIGN_OR_RETURN(std::vector<int64_t> per_parent,
                               CountChildMatches(db, fk));
      RESTORE_ASSIGN_OR_RETURN(const Table* ptable, db.GetTable(parent));
      RESTORE_ASSIGN_OR_RETURN(const Column* pk,
                               ptable->GetColumn(fk.parent_column));
      auto& map = counts[hop];
      for (size_t r = 0; r < ptable->NumRows(); ++r) {
        map[pk->GetInt64(r)] = per_parent[r];
      }
    }
    RESTORE_ASSIGN_OR_RETURN(ForeignKey fk, db.FindForeignKey(parent, child));
    RESTORE_ASSIGN_OR_RETURN(
        size_t key_ci, ResolveColumn(joined, parent + "." + fk.parent_column));
    const Column& key_col = joined.column(key_ci);
    const bool has_obs = ci.ok();
    for (size_t i = 0; i < rows.size(); ++i) {
      int64_t tf = kNullInt64;
      if (has_obs && !joined.column(ci.value()).IsNull(rows[i])) {
        tf = joined.column(ci.value()).GetInt64(rows[i]);
      } else {
        auto it = counts[hop].find(key_col.GetInt64(rows[i]));
        tf = it == counts[hop].end() ? 0 : it->second;
      }
      codes.at(i, a) = static_cast<int32_t>(ClampTf(tf, config_.tf_cap));
    }
  }
  return codes;
}

Status PathModel::ComputeContext(const Table& joined,
                                 const std::vector<size_t>& rows,
                                 InferenceScratch* scratch) const {
  if (!ssar_enabled_) {
    scratch->context.Resize(0, 0);
    return Status::OK();
  }
  RESTORE_ASSIGN_OR_RETURN(
      size_t ki, ResolveColumn(joined, ssar_root_table_ + "." + ssar_root_key_));
  const Column& key_col = joined.column(ki);
  std::vector<int64_t> keys(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    keys[i] = key_col.GetInt64(rows[i]);
  }
  RESTORE_ASSIGN_OR_RETURN(std::vector<ChildBatch> children,
                           BuildChildBatches(keys, nullptr));
  const DeepSetsEncoder* encoder = deep_sets_.get();
  encoder->Forward(children, &scratch->context, &scratch->deep_sets);
  return Status::OK();
}

Result<std::vector<int64_t>> PathModel::SampleTupleFactors(
    const Database& db, const Table& joined, IntMatrix* codes,
    const std::vector<size_t>& rows, size_t hop, Rng& rng,
    const std::vector<int64_t>* available_counts,
    const ExecContext* ctx) const {
  RESTORE_RETURN_IF_ERROR(ExecContext::Check(ctx));
  const int tf_attr = tf_attr_of_hop_[hop];
  if (tf_attr < 0) {
    return Status::InvalidArgument("hop is not a fan-out hop");
  }
  const PathAttr& attr = attrs_[static_cast<size_t>(tf_attr)];
  // Observed TFs take precedence; only unobserved rows are predicted.
  std::vector<int64_t> out(rows.size(), kNullInt64);
  auto obs_ci = ResolveColumn(joined, attr.qualified);
  std::vector<size_t> unobserved;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (obs_ci.ok() && !joined.column(obs_ci.value()).IsNull(rows[i])) {
      out[i] = ClampTf(joined.column(obs_ci.value()).GetInt64(rows[i]),
                       config_.tf_cap);
      codes->at(i, static_cast<size_t>(tf_attr)) =
          static_cast<int32_t>(out[i]);
    } else {
      unobserved.push_back(i);
    }
  }
  if (!unobserved.empty()) {
    InferenceScratchPool::Lease scratch = scratch_pool_.Acquire();
    if (ctx != nullptr && ctx->stats() != nullptr) {
      ++ctx->stats()->arenas_leased;
    }
    RESTORE_RETURN_IF_ERROR(ComputeContext(joined, rows, scratch.get()));
    RESTORE_RETURN_IF_ERROR(ExecContext::Check(ctx));
    // Predict the CONDITIONAL EXPECTATION of the tuple factor rather than a
    // sample: counts derived from independent samples would systematically
    // overshoot E[max(0, TF - available)] (Jensen), inflating synthesis.
    Matrix& probs = scratch->probs;
    if (batcher_ != nullptr && batcher_->enabled()) {
      RESTORE_RETURN_IF_ERROR(batcher_->PredictDistribution(
          *codes, scratch->context, static_cast<size_t>(tf_attr), &probs,
          ctx));
    } else {
      made_->PredictDistribution(*codes, scratch->context,
                                 static_cast<size_t>(tf_attr), &probs,
                                 &scratch->made);
    }
    const double rho = tf_keep_ratio_[hop];
    for (size_t i : unobserved) {
      double expected = 0.0;
      if (available_counts != nullptr && rho < 1.0) {
        // Binomial missingness posterior over the model's distribution.
        const double h = static_cast<double>(
            std::min<int64_t>((*available_counts)[i], config_.tf_cap));
        double norm = 0.0;
        double weighted = 0.0;
        for (size_t k = 0; k < probs.cols(); ++k) {
          const double t = attr.disc.CodeMean(static_cast<int32_t>(k));
          if (t < h) continue;
          const double log_binom =
              LogGamma(t + 1.0) - LogGamma(h + 1.0) - LogGamma(t - h + 1.0);
          const double log_lik =
              log_binom + h * std::log(rho) + (t - h) * std::log1p(-rho);
          const double w =
              static_cast<double>(probs.at(i, k)) * std::exp(log_lik);
          norm += w;
          weighted += w * t;
        }
        if (norm > 1e-30) expected = weighted / norm;
      }
      if (expected == 0.0) {
        for (size_t k = 0; k < probs.cols(); ++k) {
          expected += static_cast<double>(probs.at(i, k)) *
                      attr.disc.CodeMean(static_cast<int32_t>(k));
        }
        if (available_counts != nullptr) {
          expected = std::max(
              expected, static_cast<double>((*available_counts)[i]));
        }
      }
      const int64_t tf = ClampTf(std::llround(expected), config_.tf_cap);
      out[i] = tf;
      codes->at(i, static_cast<size_t>(tf_attr)) =
          attr.disc.EncodeNumeric(static_cast<double>(tf));
    }
  }
  (void)db;
  (void)rng;
  return out;
}

Result<std::vector<Column>> PathModel::SynthesizeHop(
    const Database& db, const Table& joined, IntMatrix* codes,
    const std::vector<size_t>& rows, size_t hop, Rng& rng, int record_attr,
    Matrix* recorded, const ExecContext* ctx) const {
  RESTORE_RETURN_IF_ERROR(ExecContext::Check(ctx));
  const size_t target_idx = hop + 1;
  const size_t first = table_attr_begin_[target_idx];
  const size_t end = table_attr_end_[target_idx];
  InferenceScratchPool::Lease scratch = scratch_pool_.Acquire();
  if (ctx != nullptr && ctx->stats() != nullptr) {
    ++ctx->stats()->arenas_leased;
  }
  RESTORE_RETURN_IF_ERROR(ComputeContext(joined, rows, scratch.get()));
  if (batcher_ != nullptr && batcher_->enabled()) {
    // Coalescable path: the call may ride a shared multi-request batch;
    // results and the rng stream are bit-identical to the solo path below.
    RESTORE_RETURN_IF_ERROR(batcher_->SampleRange(
        codes, scratch->context, first, end, rng, record_attr, recorded,
        ctx));
  } else {
    // The cooperative hook fires between per-attribute sampling batches; it
    // never touches the rng, so an uncancelled run stays bit-identical.
    std::function<bool()> should_stop;
    if (ctx != nullptr) {
      should_stop = [ctx] { return !ctx->Check().ok(); };
    }
    made_->SampleRange(codes, scratch->context, first, end, rng, record_attr,
                       recorded, &scratch->made, should_stop);
  }
  RESTORE_RETURN_IF_ERROR(ExecContext::Check(ctx));

  RESTORE_ASSIGN_OR_RETURN(const Table* target,
                           db.GetTable(path_[target_idx]));
  std::vector<Column> out;
  for (size_t a = first; a < end; ++a) {
    RESTORE_ASSIGN_OR_RETURN(const Column* base,
                             target->GetColumn(attrs_[a].column));
    Column col = base->CloneEmpty();
    col.Reserve(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      attrs_[a].disc.DecodeInto(codes->at(i, a), &col, rng);
    }
    out.push_back(std::move(col));
  }
  return out;
}

Result<Matrix> PathModel::PredictAttrDistribution(
    const Database& db, const Table& joined, const IntMatrix& codes,
    const std::vector<size_t>& rows, size_t attr,
    const ExecContext* ctx) const {
  (void)db;
  RESTORE_RETURN_IF_ERROR(ExecContext::Check(ctx));
  InferenceScratchPool::Lease scratch = scratch_pool_.Acquire();
  if (ctx != nullptr && ctx->stats() != nullptr) {
    ++ctx->stats()->arenas_leased;
  }
  RESTORE_RETURN_IF_ERROR(ComputeContext(joined, rows, scratch.get()));
  Matrix probs;
  if (batcher_ != nullptr && batcher_->enabled()) {
    RESTORE_RETURN_IF_ERROR(
        batcher_->PredictDistribution(codes, scratch->context, attr, &probs,
                                      ctx));
  } else {
    made_->PredictDistribution(codes, scratch->context, attr, &probs,
                               &scratch->made);
  }
  return probs;
}

// ---- Persistence -----------------------------------------------------------

namespace {

void SaveSizeVec(BinaryWriter* w, const std::vector<size_t>& v) {
  w->U64(v.size());
  for (size_t x : v) w->U64(x);
}

std::vector<size_t> LoadSizeVec(BinaryReader* r) {
  const uint64_t n = r->U64();
  std::vector<size_t> v;
  if (n > r->remaining() / sizeof(uint64_t)) return v;
  v.reserve(n);
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    v.push_back(static_cast<size_t>(r->U64()));
  }
  return v;
}

void SaveParams(BinaryWriter* w, const std::vector<Param*>& params) {
  w->U64(params.size());
  for (const Param* p : params) {
    w->U64(p->value.rows());
    w->U64(p->value.cols());
    w->VecF32(p->value.vec());
  }
}

Status LoadParams(BinaryReader* r, const std::vector<Param*>& params,
                  const char* what) {
  const uint64_t count = r->U64();
  if (!r->ok() || count != params.size()) {
    return Status::InvalidArgument(
        StrFormat("%s: saved model has %llu parameter tensors, expected %zu",
                  what, static_cast<unsigned long long>(count),
                  params.size()));
  }
  for (Param* p : params) {
    const uint64_t rows = r->U64();
    const uint64_t cols = r->U64();
    std::vector<float> values = r->VecF32();
    if (!r->ok()) return r->status();
    if (rows != p->value.rows() || cols != p->value.cols() ||
        values.size() != p->value.size()) {
      return Status::InvalidArgument(StrFormat(
          "%s: parameter shape mismatch (saved %llux%llu, model %zux%zu) — "
          "the model file does not match this database/config",
          what, static_cast<unsigned long long>(rows),
          static_cast<unsigned long long>(cols), p->value.rows(),
          p->value.cols()));
    }
    p->value.vec() = std::move(values);
    p->ZeroGrad();
  }
  return Status::OK();
}

}  // namespace

void PathModel::PerturbParametersForTest(float stddev, uint64_t seed) {
  std::vector<Param*> params;
  made_->CollectParams(&params);
  if (deep_sets_ != nullptr) deep_sets_->CollectParams(&params);
  Rng rng(seed);
  for (Param* p : params) {
    for (float& v : p->value.vec()) {
      v += static_cast<float>(rng.NextGaussian(0.0, stddev));
    }
  }
  // The noisy parameters must reach the reentrant inference paths, which
  // read the frozen masked-weight caches, not the raw parameters.
  made_->FinalizeForInference();
}

void PathModel::Save(BinaryWriter* w) const {
  w->VecStr(path_);

  // PathModelConfig (every field, fixed order).
  w->I32(config_.max_bins);
  w->I32(config_.tf_cap);
  w->U64(config_.embed_dim);
  w->U64(config_.hidden_dim);
  w->U64(config_.num_layers);
  w->Bool(config_.use_ssar);
  w->U64(config_.phi_dim);
  w->U64(config_.context_dim);
  w->U64(config_.max_children);
  w->U64(config_.epochs);
  w->U64(config_.batch_size);
  w->F32(config_.learning_rate);
  w->U64(config_.min_train_steps);
  w->F64(config_.test_fraction);
  w->U64(config_.max_train_rows);
  w->U64(config_.seed);

  // Attribute layout + discretizer bins.
  w->U64(attrs_.size());
  for (const auto& attr : attrs_) {
    w->Str(attr.table);
    w->Str(attr.column);
    w->Str(attr.qualified);
    w->Bool(attr.is_tuple_factor);
    attr.disc.Save(w);
  }
  SaveSizeVec(w, table_attr_begin_);
  SaveSizeVec(w, table_attr_end_);
  w->VecI32(tf_attr_of_hop_);
  w->U64(hop_is_fanout_.size());
  for (bool b : hop_is_fanout_) w->Bool(b);
  w->VecF64(tf_keep_ratio_);

  w->U64(train_marginals_.size());
  for (const auto& m : train_marginals_) w->VecF64(m);

  w->F64(test_loss_);
  w->F64(target_test_loss_);
  w->F64(train_seconds_);
  w->U64(num_parameters_);

  // SSAR wiring fingerprint (the evidence indexes themselves are rebuilt
  // from the database at load; this is for validation).
  w->Bool(ssar_enabled_);
  if (ssar_enabled_) {
    w->VecStr(ssar_child_tables_);
    w->U64(ssar_child_encoders_.size());
    for (const auto& enc : ssar_child_encoders_) {
      std::vector<std::string> names;
      for (size_t i = 0; i < enc.num_attrs(); ++i) names.push_back(enc.name(i));
      w->VecStr(names);
      w->VecI32(enc.VocabSizes());
    }
  }

  // Learned parameters.
  std::vector<Param*> made_params;
  made_->CollectParams(&made_params);
  SaveParams(w, made_params);
  if (ssar_enabled_) {
    std::vector<Param*> ds_params;
    deep_sets_->CollectParams(&ds_params);
    SaveParams(w, ds_params);
  }
}

Result<std::unique_ptr<PathModel>> PathModel::Load(
    const Database& db, const SchemaAnnotation& annotation, BinaryReader* r) {
  std::unique_ptr<PathModel> model(new PathModel());
  model->annotation_ = annotation;
  model->path_ = r->VecStr();

  PathModelConfig& cfg = model->config_;
  cfg.max_bins = r->I32();
  cfg.tf_cap = r->I32();
  cfg.embed_dim = static_cast<size_t>(r->U64());
  cfg.hidden_dim = static_cast<size_t>(r->U64());
  cfg.num_layers = static_cast<size_t>(r->U64());
  cfg.use_ssar = r->Bool();
  cfg.phi_dim = static_cast<size_t>(r->U64());
  cfg.context_dim = static_cast<size_t>(r->U64());
  cfg.max_children = static_cast<size_t>(r->U64());
  cfg.epochs = static_cast<size_t>(r->U64());
  cfg.batch_size = static_cast<size_t>(r->U64());
  cfg.learning_rate = r->F32();
  cfg.min_train_steps = static_cast<size_t>(r->U64());
  cfg.test_fraction = r->F64();
  cfg.max_train_rows = static_cast<size_t>(r->U64());
  cfg.seed = r->U64();
  model->rng_.Seed(cfg.seed);

  const uint64_t num_attrs = r->U64();
  RESTORE_RETURN_IF_ERROR(r->status());
  for (uint64_t a = 0; a < num_attrs && r->ok(); ++a) {
    PathAttr attr;
    attr.table = r->Str();
    attr.column = r->Str();
    attr.qualified = r->Str();
    attr.is_tuple_factor = r->Bool();
    RESTORE_ASSIGN_OR_RETURN(attr.disc, ColumnDiscretizer::Load(r));
    model->attrs_.push_back(std::move(attr));
  }
  model->table_attr_begin_ = LoadSizeVec(r);
  model->table_attr_end_ = LoadSizeVec(r);
  model->tf_attr_of_hop_ = r->VecI32();
  const uint64_t num_hops = r->U64();
  RESTORE_RETURN_IF_ERROR(r->status());
  if (num_hops > r->remaining()) {
    return Status::InvalidArgument("truncated hop flags in model file");
  }
  for (uint64_t k = 0; k < num_hops; ++k) {
    model->hop_is_fanout_.push_back(r->Bool());
  }
  model->tf_keep_ratio_ = r->VecF64();

  const uint64_t num_marginals = r->U64();
  RESTORE_RETURN_IF_ERROR(r->status());
  for (uint64_t a = 0; a < num_marginals && r->ok(); ++a) {
    model->train_marginals_.push_back(r->VecF64());
  }

  model->test_loss_ = r->F64();
  model->target_test_loss_ = r->F64();
  r->F64();  // train_seconds of the original run; a loaded model reports 0
  model->train_seconds_ = 0.0;
  model->num_parameters_ = static_cast<size_t>(r->U64());
  const bool saved_ssar = r->Bool();
  std::vector<std::string> saved_child_tables;
  std::vector<std::vector<std::string>> saved_encoder_names;
  std::vector<std::vector<int32_t>> saved_vocab_sizes;
  if (saved_ssar) {
    saved_child_tables = r->VecStr();
    const uint64_t num_encoders = r->U64();
    RESTORE_RETURN_IF_ERROR(r->status());
    for (uint64_t t = 0; t < num_encoders && r->ok(); ++t) {
      saved_encoder_names.push_back(r->VecStr());
      saved_vocab_sizes.push_back(r->VecI32());
    }
  }
  RESTORE_RETURN_IF_ERROR(r->status());

  // Structural sanity before reconstructing the networks.
  const size_t n = model->path_.size();
  if (n < 2 || model->attrs_.empty() || model->table_attr_begin_.size() != n ||
      model->table_attr_end_.size() != n ||
      model->tf_attr_of_hop_.size() != n - 1 ||
      model->hop_is_fanout_.size() != n - 1 ||
      model->tf_keep_ratio_.size() != n - 1 ||
      model->train_marginals_.size() != model->attrs_.size()) {
    return Status::InvalidArgument("inconsistent model layout in model file");
  }
  for (const auto& tname : model->path_) {
    RESTORE_RETURN_IF_ERROR(db.GetTable(tname).status());
  }

  // Rebuild the SSAR evidence indexes from the database and check they match
  // what the model was trained against.
  if (cfg.use_ssar) {
    RESTORE_RETURN_IF_ERROR(model->SetupSsar(db));
  }
  if (model->ssar_enabled_ != saved_ssar) {
    return Status::InvalidArgument(
        "model file SSAR wiring does not match this database");
  }
  if (saved_ssar) {
    if (model->ssar_child_tables_ != saved_child_tables ||
        model->ssar_child_encoders_.size() != saved_encoder_names.size()) {
      return Status::InvalidArgument(
          "model file child-evidence tables do not match this database");
    }
    for (size_t t = 0; t < model->ssar_child_encoders_.size(); ++t) {
      const RowEncoder& enc = model->ssar_child_encoders_[t];
      std::vector<std::string> names;
      for (size_t i = 0; i < enc.num_attrs(); ++i) names.push_back(enc.name(i));
      if (names != saved_encoder_names[t] ||
          enc.VocabSizes() != saved_vocab_sizes[t]) {
        return Status::InvalidArgument(
            "model file child-evidence schema does not match this database");
      }
    }
  }

  // Reconstruct the networks (masks/shapes are pure functions of the config)
  // and overwrite their parameters with the saved values.
  MadeConfig made_config;
  for (const auto& a : model->attrs_) {
    made_config.vocab_sizes.push_back(a.disc.vocab_size());
  }
  made_config.embed_dim = cfg.embed_dim;
  made_config.hidden_dim = cfg.hidden_dim;
  made_config.num_layers = cfg.num_layers;
  made_config.context_dim = model->ssar_enabled_ ? cfg.context_dim : 0;
  Rng init_rng(cfg.seed);
  model->made_ = std::make_unique<MadeModel>(made_config, init_rng);
  std::vector<Param*> made_params;
  model->made_->CollectParams(&made_params);
  RESTORE_RETURN_IF_ERROR(LoadParams(r, made_params, "MADE"));

  size_t num_parameters = 0;
  for (Param* p : made_params) num_parameters += p->value.size();
  if (model->ssar_enabled_) {
    std::vector<DeepSetsEncoder::TableSpec> specs;
    for (const auto& enc : model->ssar_child_encoders_) {
      specs.push_back({enc.VocabSizes()});
    }
    model->deep_sets_ = std::make_unique<DeepSetsEncoder>(
        specs, cfg.embed_dim, cfg.phi_dim, cfg.context_dim, init_rng);
    std::vector<Param*> ds_params;
    model->deep_sets_->CollectParams(&ds_params);
    RESTORE_RETURN_IF_ERROR(LoadParams(r, ds_params, "deep-sets"));
    for (Param* p : ds_params) num_parameters += p->value.size();
  }
  RESTORE_RETURN_IF_ERROR(r->status());
  if (model->num_parameters_ != num_parameters) {
    return Status::InvalidArgument(
        "model file parameter count does not match the reconstructed model");
  }
  // The loaded parameters are final; freeze the masked-weight caches for
  // reentrant inference (mirrors the end of RunTraining).
  model->made_->FinalizeForInference();
  // Batching knobs are not persisted (serving-only); the Db re-applies its
  // engine configuration right after Load, mirroring the scratch-pool cap.
  model->batcher_ = std::make_unique<SampleBatcher>(model->made_.get(),
                                                    &model->scratch_pool_);
  return model;
}

}  // namespace restore
