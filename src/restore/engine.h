#ifndef RESTORE_RESTORE_ENGINE_H_
#define RESTORE_RESTORE_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/aggregate.h"
#include "exec/query.h"
#include "restore/annotation.h"
#include "restore/cache.h"
#include "restore/incompleteness_join.h"
#include "restore/path_model.h"
#include "restore/path_selection.h"
#include "storage/database.h"

namespace restore {

/// Engine-level configuration.
struct EngineConfig {
  PathModelConfig model;
  SelectionStrategy selection = SelectionStrategy::kBestTestLoss;
  /// Maximum completion-path length explored during candidate enumeration.
  size_t max_path_len = 5;
  /// Maximum candidate paths trained per incomplete table.
  size_t max_candidates = 4;
  /// Reuse completed joins across queries (Section 4.5).
  bool enable_cache = true;
  uint64_t seed = 1234;
};

/// The public facade of ReStore: owns the trained completion models for an
/// annotated incomplete database and answers aggregate queries as if the
/// database were complete.
///
/// Typical usage:
///   CompletionEngine engine(&db, annotation, config);
///   RETURN_IF_ERROR(engine.TrainModels());
///   auto result = engine.ExecuteCompletedSql(
///       "SELECT AVG(rent) FROM neighborhood NATURAL JOIN apartment "
///       "GROUP BY state;");
class CompletionEngine {
 public:
  /// `db` must outlive the engine.
  CompletionEngine(const Database* db, SchemaAnnotation annotation,
                   EngineConfig config);

  /// Enumerates candidate completion paths per incomplete table and trains
  /// one model per candidate (capped by config.max_candidates).
  Status TrainModels();

  /// Executes `query` over the completed database (incompleteness joins for
  /// incomplete tables, normal execution otherwise).
  Result<QueryResult> ExecuteCompleted(const Query& query);
  Result<QueryResult> ExecuteCompletedSql(const std::string& sql);

  /// Returns the completed version of one incomplete table: its existing
  /// tuples plus the synthesized attribute columns (keys are not
  /// synthesized). Used by the bias-reduction experiments.
  Result<Table> CompleteTable(const std::string& target);

  /// Completes via a specific (already trained or new) path — used by the
  /// evaluation harness to score individual models.
  Result<CompletionResult> CompleteViaPath(
      const std::vector<std::string>& path,
      const CompletionOptions& options = CompletionOptions());

  /// Candidates for `target` (path -> model). TrainModels() enumerates the
  /// paths; the models themselves are trained lazily on first access.
  struct Candidate {
    std::vector<std::string> path;
    const PathModel* model = nullptr;
  };
  Result<std::vector<Candidate>> CandidatesFor(const std::string& target);

  /// The path selected for `target` by the configured strategy.
  Result<std::vector<std::string>> SelectedPathFor(const std::string& target);

  /// Access to a trained model by its path (trains lazily if absent).
  Result<const PathModel*> ModelForPath(const std::vector<std::string>& path);

  const SchemaAnnotation& annotation() const { return annotation_; }
  const EngineConfig& config() const { return config_; }
  CompletionCache& cache() { return cache_; }

  /// Total wall-clock seconds spent training models so far (Fig 11).
  double total_train_seconds() const { return total_train_seconds_; }

 private:
  static std::string PathKey(const std::vector<std::string>& path);

  /// Builds the completed join used to answer `query` and returns it
  /// (qualified column names). Applies caching.
  Result<Table> CompletedJoinFor(const std::vector<std::string>& tables);

  const Database* db_;
  SchemaAnnotation annotation_;
  EngineConfig config_;
  Rng rng_;
  CompletionCache cache_;

  std::map<std::string, std::unique_ptr<PathModel>> models_;  // by PathKey
  std::map<std::string, std::vector<std::vector<std::string>>>
      candidates_;  // target -> candidate paths
  std::map<std::string, std::vector<std::string>> selected_;  // target -> path
  double total_train_seconds_ = 0.0;
};

}  // namespace restore

#endif  // RESTORE_RESTORE_ENGINE_H_
