#ifndef RESTORE_RESTORE_KD_TREE_H_
#define RESTORE_RESTORE_KD_TREE_H_

#include <cstddef>
#include <vector>

namespace restore {

/// A k-d tree over fixed-dimensional float points supporting exact and
/// approximate (leaf-budget bounded) nearest-neighbor queries. Used by the
/// Euclidean replacement step of the incompleteness join (Section 4.2),
/// where exact pairwise distances would be too expensive.
class KdTree {
 public:
  /// Builds a tree over `points` (row-major, `num_points` x `dim`).
  /// The data is copied. `leaf_size` bounds points per leaf.
  KdTree(std::vector<float> points, size_t num_points, size_t dim,
         size_t leaf_size = 16);

  size_t num_points() const { return num_points_; }
  size_t dim() const { return dim_; }

  /// Exact nearest neighbor of `query` (`dim` floats). Returns the point
  /// index; `num_points` must be > 0.
  size_t NearestNeighbor(const float* query) const;

  /// Approximate nearest neighbor: stops after visiting `max_leaves` leaves
  /// (defeatist-with-backtracking search). max_leaves >= total leaves gives
  /// the exact answer.
  size_t ApproxNearestNeighbor(const float* query, size_t max_leaves) const;

 private:
  struct Node {
    int left = -1;
    int right = -1;
    size_t split_dim = 0;
    float split_value = 0.0f;
    size_t begin = 0;  // leaf: range into order_
    size_t end = 0;
  };

  int BuildRecursive(size_t begin, size_t end, size_t depth);
  void Search(int node, const float* query, size_t* best, float* best_dist,
              size_t* leaves_left) const;
  float Distance2(size_t point, const float* query) const;

  std::vector<float> points_;
  size_t num_points_;
  size_t dim_;
  size_t leaf_size_;
  std::vector<size_t> order_;  // point indices, partitioned by the tree
  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace restore

#endif  // RESTORE_RESTORE_KD_TREE_H_
