#ifndef RESTORE_RESTORE_PATH_MODEL_H_
#define RESTORE_RESTORE_PATH_MODEL_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "exec/exec_control.h"
#include "nn/deep_sets.h"
#include "nn/inference_scratch.h"
#include "nn/made.h"
#include "restore/annotation.h"
#include "restore/discretizer.h"
#include "restore/sample_batcher.h"
#include "storage/database.h"

namespace restore {

/// Hyperparameters of a completion model (AR or SSAR) over one completion
/// path.
struct PathModelConfig {
  // Encoding.
  int max_bins = 24;  // numeric-column bin count
  int tf_cap = 31;    // tuple factors clamped to [0, tf_cap]

  // MADE architecture.
  size_t embed_dim = 8;
  size_t hidden_dim = 48;
  size_t num_layers = 2;

  // SSAR: deep-sets tree embedding of fan-out / self evidence (Section 3.3).
  bool use_ssar = false;
  size_t phi_dim = 32;
  size_t context_dim = 24;
  size_t max_children = 16;  // children per evidence tuple fed to the encoder

  // Training.
  size_t epochs = 20;
  size_t batch_size = 64;
  float learning_rate = 3e-3f;
  /// Lower bound on total optimizer steps: small training joins repeat
  /// epochs until at least this many minibatch updates ran.
  size_t min_train_steps = 400;
  double test_fraction = 0.1;
  size_t max_train_rows = 60000;
  uint64_t seed = 17;

  // Serving. Max idle inference scratch arenas pooled per model (excess
  // leases allocate-and-free); 0 = unbounded. Does not affect training or
  // results, so it participates in neither the engine fingerprint nor the
  // persisted model payload.
  size_t max_pooled_scratch_arenas = 8;

  // Serving: cross-session inference batching (see SampleBatcher).
  // Concurrent sessions' sampling on one hot model is coalesced into one
  // large forward pass after a bounded wait; results are bit-identical
  // with batching on or off, so like the pool cap above these knobs are
  // scheduling-only — excluded from the engine fingerprint and the
  // persisted payload, and re-applied by the Db after a model loads.
  bool batching_enabled = false;
  uint32_t batch_wait_us = 200;   // leader's bounded wait for batch-mates
  size_t batch_max_rows = 4096;   // stop collecting at this many rows
};

/// One attribute of the autoregressive ordering.
struct PathAttr {
  std::string table;      // owning base table
  std::string column;     // unqualified column name
  std::string qualified;  // "table.column" (name in joined training data)
  bool is_tuple_factor = false;
  ColumnDiscretizer disc;
};

/// A completion model over an ordered table path [T_1, ..., T_n]:
/// a (SS)AR network trained on the join T_1 |><| ... |><| T_n of the
/// available data, whose attribute ordering follows the path. Because the
/// factorization is autoregressive per table block, one PathModel provides
/// the conditional p(T_{k+1} | T_1..T_k) for EVERY hop k of the path — this
/// is exactly the model-merging property of Section 3.4.
///
/// Tuple factors: for each fan-out hop T_k -> T_{k+1} the parent's observed
/// tuple-factor column (TupleFactorColumnName) is inserted as an extra
/// attribute after T_k's attributes; unobserved cells fall back to the
/// currently-available child count as input and are masked out of the loss.
class PathModel {
 public:
  /// Builds and trains a model for `path` (ordered: evidence first, the
  /// table(s) to complete last) over the available data in `db`.
  ///
  /// `warm_start` (optional) fine-tunes instead of training from scratch:
  /// when the old model's parameter shapes match the new layout (same
  /// attribute set and vocabulary sizes — appends of in-vocabulary rows),
  /// its learned parameters seed the optimizer and `config.epochs` is the
  /// number of REFINEMENT epochs. A shape mismatch (new categorical values,
  /// schema drift) silently falls back to cold-start training under the
  /// same config, so the call never fails just because warm starting is
  /// impossible. Deterministic either way: the result is a pure function of
  /// (data, config, warm-start parameters).
  ///
  /// Serving callers should prefer Db::ModelForPath, which adds exactly-once
  /// lazy training, generation tracking, and RCU hot-swap; direct Train is
  /// for offline evaluation harnesses that measure training itself.
  static Result<std::unique_ptr<PathModel>> Train(
      const Database& db, const SchemaAnnotation& annotation,
      const std::vector<std::string>& path, const PathModelConfig& config,
      const PathModel* warm_start = nullptr);

  /// Serializes the trained model: config, attribute layout, discretizer
  /// bins, training marginals, and every learned parameter (embedding
  /// tables, MADE layers, deep-sets encoder). The payload is framed and
  /// checksummed by the caller (see Db::SaveModels).
  void Save(BinaryWriter* w) const;

  /// Restores a model saved by Save. `db` must be the incomplete database
  /// the model was trained on: SSAR child-evidence indexes are rebuilt from
  /// it, and mismatching schemas (child tables, vocabulary sizes, parameter
  /// shapes) are rejected. A loaded model produces bit-identical
  /// completions to the one that was saved; train_seconds() is 0.
  static Result<std::unique_ptr<PathModel>> Load(
      const Database& db, const SchemaAnnotation& annotation,
      BinaryReader* r);

  const std::vector<std::string>& path() const { return path_; }
  const PathModelConfig& config() const { return config_; }
  bool is_ssar() const { return config_.use_ssar && ssar_enabled_; }

  /// Held-out NLL over all attributes (Fig 5b's "training loss" criterion).
  double test_loss() const { return test_loss_; }
  /// Held-out NLL restricted to the final table's attributes (+ its TF):
  /// the predictability of what the model must synthesize. Used by the
  /// Basic model-selection strategy (Section 5).
  double target_test_loss() const { return target_test_loss_; }
  /// Wall-clock training time (Fig 11).
  double train_seconds() const { return train_seconds_; }
  size_t num_parameters() const { return num_parameters_; }

  // ---- Attribute layout ---------------------------------------------------
  const std::vector<PathAttr>& attrs() const { return attrs_; }
  /// [first, end) attribute range of table `path()[table_idx]` (excluding
  /// its TF attribute).
  size_t FirstAttrOfTable(size_t table_idx) const {
    return table_attr_begin_[table_idx];
  }
  size_t EndAttrOfTable(size_t table_idx) const {
    return table_attr_end_[table_idx];
  }
  /// Attribute index of the tuple factor of hop `hop` (path[hop] ->
  /// path[hop+1]), or -1 if that hop is n:1.
  int TfAttrIndex(size_t hop) const { return tf_attr_of_hop_[hop]; }
  /// True if hop `hop` goes from a parent to a child table (1:n).
  bool HopIsFanOut(size_t hop) const { return hop_is_fanout_[hop]; }
  /// Attribute index of `table`.`column`, or -1 if not modeled.
  int FindAttr(const std::string& table, const std::string& column) const {
    for (size_t a = 0; a < attrs_.size(); ++a) {
      if (attrs_[a].table == table && attrs_[a].column == column) {
        return static_cast<int>(a);
      }
    }
    return -1;
  }

  // ---- Completion-time inference -------------------------------------------
  /// Encodes the attributes of tables path[0..upto_table] from the rows
  /// `rows` of a joined table `joined` whose columns are qualified
  /// ("table.column"). Attributes beyond the prefix are zero-filled.
  /// Null cells (e.g. unobserved TF) encode to the available-count fallback
  /// where possible, else 0.
  Result<IntMatrix> EncodeEvidencePrefix(const Database& db,
                                         const Table& joined,
                                         size_t upto_table,
                                         const std::vector<size_t>& rows) const;

  /// Predicts the tuple factor of hop `hop` for the given evidence rows.
  /// `codes` must contain the encoded prefix up to table `hop` (from
  /// EncodeEvidencePrefix); the predicted TF codes are also written into it.
  ///
  /// If `available_counts` is provided (one entry per row: the number of
  /// child tuples currently available for that evidence row), the model
  /// posterior is refined with a binomial missingness model
  ///   P(TF = t | have = h) ~ P_model(t) * C(t, h) rho^h (1-rho)^(t-h),
  /// where rho is the child keep ratio estimated from parents whose true
  /// tuple factor is observed. This couples the prediction to the observed
  /// count and avoids systematic over-synthesis.
  ///
  /// `ctx` (optional, like every inference entry point below) is the
  /// query's execution context: it is checked cooperatively before each
  /// model batch, and leased scratch arenas are counted into its ExecStats.
  Result<std::vector<int64_t>> SampleTupleFactors(
      const Database& db, const Table& joined, IntMatrix* codes,
      const std::vector<size_t>& rows, size_t hop, Rng& rng,
      const std::vector<int64_t>* available_counts = nullptr,
      const ExecContext* ctx = nullptr) const;

  /// Estimated child keep ratio of hop `hop` (1.0 when unknown).
  double TfKeepRatio(size_t hop) const { return tf_keep_ratio_[hop]; }

  /// Synthesizes the attribute columns of table path[hop+1] for the given
  /// (already encoded) evidence rows. Returns one column per attribute of
  /// the target table, with unqualified names, `rows.size()` cells each.
  /// If `record_attr` is a valid attr index of the target table, the
  /// predictive distribution of that attribute is appended per row to
  /// `recorded` (for confidence intervals).
  Result<std::vector<Column>> SynthesizeHop(
      const Database& db, const Table& joined, IntMatrix* codes,
      const std::vector<size_t>& rows, size_t hop, Rng& rng,
      int record_attr = -1, Matrix* recorded = nullptr,
      const ExecContext* ctx = nullptr) const;

  /// Predictive distribution of a single attribute given the encoded prefix
  /// (used by the confidence machinery and tests).
  Result<Matrix> PredictAttrDistribution(const Database& db,
                                         const Table& joined,
                                         const IntMatrix& codes,
                                         const std::vector<size_t>& rows,
                                         size_t attr,
                                         const ExecContext* ctx = nullptr)
      const;

  /// Reconfigures the inference scratch pool's idle-arena retention cap
  /// (EngineConfig::model.max_pooled_scratch_arenas; applied by the Db at
  /// train/load time). Excess leases still succeed, they just don't pool.
  void set_scratch_pool_max_idle(size_t max_idle) const {
    scratch_pool_.set_max_idle(max_idle);
  }
  /// The model's scratch pool (introspection: idle/total_leases/dropped).
  const InferenceScratchPool& scratch_pool() const { return scratch_pool_; }

  /// Reconfigures cross-session batching (PathModelConfig batching knobs;
  /// applied by the Db at train/load time — the knobs are not persisted).
  void set_batching_config(bool enabled, uint32_t wait_us,
                           size_t max_rows) const;
  /// The model's request batcher (tests: coalescing hooks/introspection).
  SampleBatcher* sample_batcher() const { return batcher_.get(); }

  /// Marginal distribution of attribute `attr` in the training data
  /// (the P_incomplete of Section 6).
  const std::vector<double>& TrainMarginal(size_t attr) const {
    return train_marginals_[attr];
  }

  /// Test-only: adds seeded Gaussian noise of standard deviation `stddev`
  /// to every learned parameter (MADE layers, embeddings, deep-sets
  /// encoder) and re-freezes the masked-weight inference caches. The
  /// distribution-equivalence harness (stats/equivalence.h) uses this as
  /// its deliberately broken model; no serving path calls it. Not safe
  /// while inference is running on this model.
  void PerturbParametersForTest(float stddev, uint64_t seed);

 private:
  PathModel() = default;

  Status BuildLayout(const Database& db, const SchemaAnnotation& annotation);
  Status BuildTrainingData(const Database& db);
  Status SetupSsar(const Database& db);
  /// Runs the optimizer loop. `warm_start` (may be null) seeds parameters
  /// from a previous generation when shapes match; see Train.
  Status RunTraining(const PathModel* warm_start);

  /// Builds deep-sets child batches for evidence key values. During
  /// training, `exclude_child_pk[i]` (if non-null) removes the child row with
  /// that primary key from row i's set (leave-one-out for self-evidence).
  Result<std::vector<ChildBatch>> BuildChildBatches(
      const std::vector<int64_t>& evidence_keys,
      const std::vector<int64_t>* exclude_child_pk) const;

  /// Computes the SSAR context for completion-time evidence rows into
  /// `scratch->context` (resized to empty for plain AR models). All
  /// workspace comes from `scratch`, keeping the path reentrant.
  Status ComputeContext(const Table& joined, const std::vector<size_t>& rows,
                        InferenceScratch* scratch) const;

  std::vector<std::string> path_;
  PathModelConfig config_;
  SchemaAnnotation annotation_;
  mutable Rng rng_;

  // Inference is reentrant: the networks are immutable after training (the
  // masked-weight caches are frozen by FinalizeForInference), and every
  // per-call buffer lives in an InferenceScratch arena leased from this
  // pool. N concurrent sessions hitting this ONE model run N truly parallel
  // forward passes — the pool mutex is held only for the arena pop/push.
  // Arenas are shaped on first use and reused, so steady-state inference
  // stays allocation-free (see src/nn/README.md "Consumers").
  mutable InferenceScratchPool scratch_pool_;

  // Attribute layout.
  std::vector<PathAttr> attrs_;
  std::vector<size_t> table_attr_begin_;
  std::vector<size_t> table_attr_end_;
  std::vector<int> tf_attr_of_hop_;
  std::vector<bool> hop_is_fanout_;
  std::vector<double> tf_keep_ratio_;  // per hop; 1.0 = complete

  // Training data.
  IntMatrix train_codes_;
  Matrix train_weights_;
  IntMatrix test_codes_;
  Matrix test_weights_;
  std::vector<int64_t> train_evidence_keys_;  // SSAR root keys per row
  std::vector<int64_t> test_evidence_keys_;
  std::vector<int64_t> train_exclude_pk_;  // self-evidence leave-one-out
  std::vector<int64_t> test_exclude_pk_;
  std::vector<std::vector<double>> train_marginals_;

  // SSAR wiring.
  bool ssar_enabled_ = false;
  std::string ssar_root_table_;      // evidence table owning the children
  std::string ssar_root_key_;        // its primary-key column
  std::vector<std::string> ssar_child_tables_;
  std::vector<RowEncoder> ssar_child_encoders_;
  // Per child table: encoded child rows + parent-key -> child row index map
  // and child pk per row (for exclusion).
  std::vector<IntMatrix> child_codes_;
  std::vector<std::map<int64_t, std::vector<size_t>>> children_of_key_;
  std::vector<std::vector<int64_t>> child_pks_;
  std::unique_ptr<DeepSetsEncoder> deep_sets_;

  std::unique_ptr<MadeModel> made_;
  // Cross-session request coalescing over made_ (see SampleBatcher).
  // Declared after made_/scratch_pool_ so it drains and dies first; every
  // inference entry point routes its sampling through it (pass-through
  // when batching is disabled, the default).
  mutable std::unique_ptr<SampleBatcher> batcher_;
  double test_loss_ = 0.0;
  double target_test_loss_ = 0.0;
  double train_seconds_ = 0.0;
  size_t num_parameters_ = 0;
};

}  // namespace restore

#endif  // RESTORE_RESTORE_PATH_MODEL_H_
