// Tests for the k-d tree and the Euclidean replacement step.

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "restore/kd_tree.h"
#include "restore/nn_replace.h"
#include "storage/table.h"

namespace restore {
namespace {

size_t BruteForceNn(const std::vector<float>& points, size_t n, size_t dim,
                    const float* query) {
  size_t best = 0;
  float best_dist = std::numeric_limits<float>::max();
  for (size_t i = 0; i < n; ++i) {
    float acc = 0.0f;
    for (size_t d = 0; d < dim; ++d) {
      const float diff = points[i * dim + d] - query[d];
      acc += diff * diff;
    }
    if (acc < best_dist) {
      best_dist = acc;
      best = i;
    }
  }
  return best;
}

TEST(KdTreeTest, ExactSearchMatchesBruteForce) {
  Rng rng(1);
  const size_t n = 500;
  const size_t dim = 3;
  std::vector<float> points(n * dim);
  for (auto& p : points) p = static_cast<float>(rng.NextGaussian());
  KdTree tree(points, n, dim, 8);
  for (int q = 0; q < 100; ++q) {
    float query[dim];
    for (size_t d = 0; d < dim; ++d) {
      query[d] = static_cast<float>(rng.NextGaussian());
    }
    const size_t expected = BruteForceNn(points, n, dim, query);
    const size_t got = tree.NearestNeighbor(query);
    // Distances must match (ties may pick different indices).
    float de = 0.0f;
    float dg = 0.0f;
    for (size_t d = 0; d < dim; ++d) {
      de += (points[expected * dim + d] - query[d]) *
            (points[expected * dim + d] - query[d]);
      dg += (points[got * dim + d] - query[d]) *
            (points[got * dim + d] - query[d]);
    }
    EXPECT_FLOAT_EQ(de, dg);
  }
}

TEST(KdTreeTest, ApproximateSearchIsCloseToExact) {
  Rng rng(2);
  const size_t n = 2000;
  const size_t dim = 4;
  std::vector<float> points(n * dim);
  for (auto& p : points) p = static_cast<float>(rng.NextGaussian());
  KdTree tree(points, n, dim, 16);
  double exact_total = 0.0;
  double approx_total = 0.0;
  for (int q = 0; q < 200; ++q) {
    float query[dim];
    for (size_t d = 0; d < dim; ++d) {
      query[d] = static_cast<float>(rng.NextGaussian());
    }
    auto dist2 = [&](size_t idx) {
      float acc = 0.0f;
      for (size_t d = 0; d < dim; ++d) {
        acc += (points[idx * dim + d] - query[d]) *
               (points[idx * dim + d] - query[d]);
      }
      return std::sqrt(acc);
    };
    exact_total += dist2(tree.NearestNeighbor(query));
    approx_total += dist2(tree.ApproxNearestNeighbor(query, 4));
  }
  // The 4-leaf-budget search should be within 25% of the exact distance.
  EXPECT_LE(approx_total, exact_total * 1.25);
}

TEST(KdTreeTest, SinglePointAndDuplicatePoints) {
  std::vector<float> one{1.0f, 2.0f};
  KdTree tree(one, 1, 2);
  float q[2] = {0.0f, 0.0f};
  EXPECT_EQ(tree.NearestNeighbor(q), 0u);

  // All-identical points must not break the splitter.
  std::vector<float> dup(100 * 2, 3.0f);
  KdTree tree2(dup, 100, 2, 4);
  EXPECT_LT(tree2.NearestNeighbor(q), 100u);
}

TEST(EuclideanReplacerTest, ReplacesWithMostSimilarTuple) {
  Table table("landlord", {{"id", ColumnType::kInt64},
                           {"age", ColumnType::kInt64},
                           {"rate", ColumnType::kDouble}});
  ASSERT_TRUE(
      table.AppendRow({Value::Int64(0), Value::Int64(30), Value::Double(10.0)})
          .ok());
  ASSERT_TRUE(
      table.AppendRow({Value::Int64(1), Value::Int64(60), Value::Double(90.0)})
          .ok());
  ASSERT_TRUE(
      table.AppendRow({Value::Int64(2), Value::Int64(45), Value::Double(50.0)})
          .ok());
  auto rep = EuclideanReplacer::Build(table, {"age", "rate"});
  ASSERT_TRUE(rep.ok()) << rep.status();

  Column age("age", ColumnType::kInt64);
  Column rate("rate", ColumnType::kDouble);
  age.AppendInt64(58);
  rate.AppendDouble(85.0);  // close to row 1
  age.AppendInt64(33);
  rate.AppendDouble(12.0);  // close to row 0
  auto idx = rep->FindReplacements({age, rate});
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx.value()[0], 1u);
  EXPECT_EQ(idx.value()[1], 0u);
}

TEST(EuclideanReplacerTest, EmptyTableRejected) {
  Table table("t", {{"x", ColumnType::kDouble}});
  EXPECT_FALSE(EuclideanReplacer::Build(table, {"x"}).ok());
}

TEST(EuclideanReplacerTest, NullSynthesizedValuesUseColumnMean) {
  Table table("t", {{"x", ColumnType::kDouble}});
  ASSERT_TRUE(table.AppendRow({Value::Double(0.0)}).ok());
  ASSERT_TRUE(table.AppendRow({Value::Double(100.0)}).ok());
  ASSERT_TRUE(table.AppendRow({Value::Double(50.0)}).ok());
  auto rep = EuclideanReplacer::Build(table, {"x"});
  ASSERT_TRUE(rep.ok());
  Column x("x", ColumnType::kDouble);
  x.AppendNull();  // mean = 50 -> row 2
  auto idx = rep->FindReplacements({x});
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx.value()[0], 2u);
}

}  // namespace
}  // namespace restore
