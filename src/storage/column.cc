#include "storage/column.h"

#include "common/string_util.h"

namespace restore {

int64_t Dictionary::GetOrInsert(const std::string& value) {
  auto it = code_of_.find(value);
  if (it != code_of_.end()) return it->second;
  const int64_t code = static_cast<int64_t>(values_.size());
  values_.push_back(value);
  code_of_.emplace(value, code);
  return code;
}

Result<int64_t> Dictionary::Lookup(const std::string& value) const {
  auto it = code_of_.find(value);
  if (it == code_of_.end()) {
    return Status::NotFound(
        StrFormat("categorical value '%s' not in dictionary", value.c_str()));
  }
  return it->second;
}

Column::Column(std::string name, ColumnType type)
    : name_(std::move(name)), type_(type) {
  if (type_ == ColumnType::kCategorical) {
    dictionary_ = std::make_shared<Dictionary>();
  }
}

void Column::AppendNull() {
  if (type_ == ColumnType::kDouble) {
    doubles_.push_back(NullDouble());
  } else {
    ints_.push_back(kNullInt64);
  }
}

Status Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case ColumnType::kInt64:
      if (!v.is_int64()) {
        return Status::InvalidArgument(
            StrFormat("column '%s' expects int64, got %s", name_.c_str(),
                      v.ToString().c_str()));
      }
      AppendInt64(v.int64());
      return Status::OK();
    case ColumnType::kDouble:
      if (v.is_double()) {
        AppendDouble(v.double_value());
      } else if (v.is_int64()) {
        AppendDouble(static_cast<double>(v.int64()));
      } else {
        return Status::InvalidArgument(
            StrFormat("column '%s' expects double, got %s", name_.c_str(),
                      v.ToString().c_str()));
      }
      return Status::OK();
    case ColumnType::kCategorical:
      if (!v.is_string()) {
        return Status::InvalidArgument(
            StrFormat("column '%s' expects categorical, got %s",
                      name_.c_str(), v.ToString().c_str()));
      }
      AppendCategorical(v.string_value());
      return Status::OK();
  }
  return Status::Internal("unreachable column type");
}

Value Column::GetValue(size_t row) const {
  if (IsNull(row)) return Value::Null();
  switch (type_) {
    case ColumnType::kInt64:
      return Value::Int64(ints_[row]);
    case ColumnType::kDouble:
      return Value::Double(doubles_[row]);
    case ColumnType::kCategorical:
      return Value::Categorical(dictionary_->ValueOf(ints_[row]));
  }
  return Value::Null();
}

Column Column::CloneEmpty() const {
  Column out(name_, type_);
  out.dictionary_ = dictionary_;
  return out;
}

Column Column::Gather(const std::vector<size_t>& rows) const {
  Column out = CloneEmpty();
  out.Reserve(rows.size());
  if (type_ == ColumnType::kDouble) {
    for (size_t r : rows) out.doubles_.push_back(doubles_[r]);
  } else {
    for (size_t r : rows) out.ints_.push_back(ints_[r]);
  }
  return out;
}

}  // namespace restore
