#include "common/serialize.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/string_util.h"

namespace restore {

uint64_t Fnv1a64(const void* data, size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  return h;
}

Status WriteChecksummedFile(const std::string& path, uint32_t magic,
                            uint32_t version, const std::string& payload) {
  BinaryWriter header;
  header.U32(magic);
  header.U32(version);
  header.U64(payload.size());

  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status::InvalidArgument(
        StrFormat("cannot open '%s' for writing", path.c_str()));
  }
  const uint64_t checksum = Fnv1a64(payload);
  file.write(header.buffer().data(),
             static_cast<std::streamsize>(header.buffer().size()));
  file.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  file.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  file.flush();
  if (!file) {
    return Status::Internal(
        StrFormat("short write to '%s'", path.c_str()));
  }
  return Status::OK();
}

namespace {

/// fsyncs one regular file by path. No-op success on platforms without
/// POSIX fds (the plain ofstream path already flushed).
Status FsyncFile(const std::string& path) {
#ifndef _WIN32
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Internal(
        StrFormat("cannot open '%s' for fsync: %s", path.c_str(),
                  std::strerror(errno)));
  }
  const int rc = ::fsync(fd);
  const int saved = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::Internal(StrFormat("fsync('%s'): %s", path.c_str(),
                                      std::strerror(saved)));
  }
#else
  (void)path;
#endif
  return Status::OK();
}

}  // namespace

Status FsyncDirectory(const std::string& dir) {
#ifndef _WIN32
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Internal(
        StrFormat("cannot open directory '%s' for fsync: %s", dir.c_str(),
                  std::strerror(errno)));
  }
  // Some filesystems reject fsync on directories (EINVAL); the rename is
  // still atomic there, just not immediately durable — best effort.
  (void)::fsync(fd);
  ::close(fd);
#else
  (void)dir;
#endif
  return Status::OK();
}

Status WriteChecksummedFileAtomic(const std::string& path, uint32_t magic,
                                  uint32_t version,
                                  const std::string& payload) {
  const std::string tmp = path + ".tmp";
  RESTORE_RETURN_IF_ERROR(WriteChecksummedFile(tmp, magic, version, payload));
  RESTORE_RETURN_IF_ERROR(FsyncFile(tmp));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string err = std::strerror(errno);
    std::remove(tmp.c_str());
    return Status::Internal(StrFormat("rename '%s' -> '%s': %s", tmp.c_str(),
                                      path.c_str(), err.c_str()));
  }
  const size_t slash = path.find_last_of('/');
  return FsyncDirectory(slash == std::string::npos ? "."
                                                   : path.substr(0, slash));
}

Result<std::string> ReadChecksummedFile(const std::string& path,
                                        uint32_t magic, uint32_t max_version,
                                        uint32_t* version_out) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::string contents((std::istreambuf_iterator<char>(file)),
                       std::istreambuf_iterator<char>());

  constexpr size_t kHeaderSize = 4 + 4 + 8;
  if (contents.size() < kHeaderSize + sizeof(uint64_t)) {
    return Status::InvalidArgument(
        StrFormat("'%s' is truncated (only %zu bytes)", path.c_str(),
                  contents.size()));
  }
  uint32_t file_magic = 0;
  uint32_t version = 0;
  uint64_t payload_size = 0;
  std::memcpy(&file_magic, contents.data(), sizeof(file_magic));
  std::memcpy(&version, contents.data() + 4, sizeof(version));
  std::memcpy(&payload_size, contents.data() + 8, sizeof(payload_size));
  if (file_magic != magic) {
    return Status::InvalidArgument(
        StrFormat("'%s' has wrong magic 0x%08x (expected 0x%08x)",
                  path.c_str(), file_magic, magic));
  }
  if (version == 0 || version > max_version) {
    return Status::InvalidArgument(
        StrFormat("'%s' has unsupported format version %u (max %u)",
                  path.c_str(), version, max_version));
  }
  if (contents.size() != kHeaderSize + payload_size + sizeof(uint64_t)) {
    return Status::InvalidArgument(
        StrFormat("'%s' is truncated or padded: %zu bytes, expected %zu",
                  path.c_str(), contents.size(),
                  kHeaderSize + payload_size + sizeof(uint64_t)));
  }
  std::string payload = contents.substr(kHeaderSize, payload_size);
  uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, contents.data() + kHeaderSize + payload_size,
              sizeof(stored_checksum));
  if (Fnv1a64(payload) != stored_checksum) {
    return Status::InvalidArgument(
        StrFormat("'%s' failed its checksum: the file is corrupted",
                  path.c_str()));
  }
  if (version_out != nullptr) *version_out = version;
  return payload;
}

}  // namespace restore
