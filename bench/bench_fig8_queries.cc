// Reproduces Figure 8 (workload of Table 1): improvement of the average
// relative error due to completion, per query, dataset, keep rate and
// removal correlation. Higher is better; 0 means completion did not help.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "datagen/workload.h"
#include "exec/executor.h"
#include "metrics/metrics.h"

namespace restore {
namespace bench {
namespace {

int RunWorkload(const std::vector<WorkloadQuery>& workload, double scale,
                const char* dataset, FigureJson* json) {
  const std::vector<double> keeps =
      FullGrids() ? KeepRates() : std::vector<double>{0.4};
  const std::vector<double> corrs =
      FullGrids() ? RemovalCorrelations() : std::vector<double>{0.2, 0.8};
  for (const auto& wq : workload) {
    for (double keep : keeps) {
      for (double corr : corrs) {
        auto run = MakeSetupRun(wq.setup, keep, corr, scale, 1100);
        if (!run.ok()) continue;
        auto db = OpenBenchDb(*run, BenchEngineConfig());
        if (!db.ok()) continue;
        Session session = (*db)->CreateSession();
        auto truth = ExecuteSql(run->complete, wq.sql);
        auto on_incomplete = ExecuteSql(run->incomplete, wq.sql);
        auto on_completed = session.Execute(wq.sql);
        if (!truth.ok() || !on_incomplete.ok() || !on_completed.ok()) {
          std::fprintf(stderr, "%s %s: %s\n", dataset, wq.name.c_str(),
                       (!on_completed.ok() ? on_completed.status()
                                           : truth.status())
                           .ToString()
                           .c_str());
          continue;
        }
        const double improvement =
            RelativeErrorImprovement(*truth, *on_incomplete, *on_completed);
        std::printf("%s,%s,%s,%.0f%%,%.0f%%,%.4f\n", dataset,
                    wq.name.c_str(), wq.setup.c_str(), keep * 100, corr * 100,
                    improvement);
        json->Add(StrFormat("%s/%s/keep=%.0f/corr=%.0f", dataset,
                            wq.name.c_str(), keep * 100, corr * 100),
                  {{"relative_error_improvement", improvement}});
        std::fflush(stdout);
      }
    }
  }
  return 0;
}

int Run() {
  std::printf("# Figure 8: relative-error improvement per query (Table 1)\n");
  std::printf(
      "dataset,query,setup,keep_rate,removal_correlation,"
      "relative_error_improvement\n");
  const double housing_scale = FullGrids() ? 0.5 : 0.12;
  const double movies_scale = FullGrids() ? 0.4 : 0.08;
  FigureJson json("fig8");
  RunWorkload(HousingWorkload(), housing_scale, "housing", &json);
  RunWorkload(MovieWorkload(), movies_scale, "movies", &json);
  if (Status s = json.Write(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace restore

int main() { return restore::bench::Run(); }
