#ifndef RESTORE_SERVER_HTTP_H_
#define RESTORE_SERVER_HTTP_H_

// Minimal HTTP/1.1 for the serving layer: an incremental request parser fed
// raw socket bytes (keep-alive and pipelining safe — leftover bytes after
// one message start the next), and response/chunk encoders. Only what the
// server needs: request line + headers + Content-Length bodies in, status
// line + headers + identity or chunked bodies out.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace restore {
namespace server {

/// One parsed request. Header names are matched case-insensitively via
/// FindHeader; values are returned with surrounding whitespace trimmed.
struct HttpRequest {
  std::string method;   // "GET", "POST", ...
  std::string target;   // origin-form target, e.g. "/v1/query/housing?x=1"
  std::string version;  // "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* FindHeader(const std::string& name) const;

  /// Target path without the query string ("/v1/query/housing").
  std::string Path() const;

  /// Connection persistence per RFC 7230: HTTP/1.1 defaults to keep-alive
  /// unless "Connection: close"; HTTP/1.0 requires an explicit keep-alive.
  bool KeepAlive() const;
};

/// Incremental HTTP/1.1 request parser. Feed it raw bytes as they arrive;
/// it consumes exactly one message per Feed()==kComplete and leaves any
/// pipelined surplus buffered for the next cycle (call Reset() between
/// messages, which keeps the surplus).
class HttpRequestParser {
 public:
  enum class State {
    kNeedMore,   // message incomplete, feed more bytes
    kComplete,   // request() is fully parsed
    kError,      // malformed or over limit; error_status()/error_reason()
  };

  explicit HttpRequestParser(size_t max_head_bytes = 16 * 1024,
                             size_t max_body_bytes = 1 << 20)
      : max_head_bytes_(max_head_bytes), max_body_bytes_(max_body_bytes) {}

  /// Appends `n` bytes and advances the parse. Idempotent at terminal
  /// states (kComplete/kError stay put until Reset).
  State Feed(const char* data, size_t n);

  /// Re-arms the parser for the next message on the same connection,
  /// preserving already-buffered pipelined bytes (which are parsed
  /// immediately; check the return state).
  State Reset();

  State state() const { return state_; }
  const HttpRequest& request() const { return request_; }

  /// HTTP status code to answer a kError parse with (400, 431, 413, 501).
  int error_status() const { return error_status_; }
  const std::string& error_reason() const { return error_reason_; }

 private:
  State Fail(int status, std::string reason);
  State Advance();
  State ParseHead(size_t head_end);

  size_t max_head_bytes_;
  size_t max_body_bytes_;
  std::string buffer_;
  HttpRequest request_;
  State state_ = State::kNeedMore;
  bool head_done_ = false;
  size_t body_remaining_ = 0;
  int error_status_ = 400;
  std::string error_reason_;
};

/// Serializes a full response with Content-Length framing. `headers` are
/// extra headers beyond Content-Length/Connection; `keep_alive` renders the
/// Connection header.
std::string BuildResponse(
    int status, const std::string& content_type, const std::string& body,
    bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& headers = {});

/// The head of a chunked response (Transfer-Encoding: chunked); follow with
/// EncodeChunk() per payload and FinalChunk() to terminate.
std::string BuildChunkedResponseHead(
    int status, const std::string& content_type, bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& headers = {});
std::string EncodeChunk(const std::string& payload);
std::string FinalChunk();

/// Reason phrase of the status codes the server emits ("OK", "Bad Request",
/// ...; "Unknown" otherwise).
const char* StatusReason(int status);

/// Escapes a string for embedding in a JSON document (quotes not included).
std::string JsonEscape(const std::string& s);

/// Renders a double as a JSON value (null for NaN/infinities, which JSON
/// cannot represent).
std::string JsonNumber(double value);

/// Minimal parsed JSON value for request bodies. Exactly what the ingest
/// route needs: null/bool/number/string/array. Objects are rejected by the
/// parser — no route takes them, and row payloads stay positional.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  /// Raw token of a kNumber, verbatim from the document. Int64 columns
  /// re-parse it so integers above 2^53 are not silently rounded through
  /// the double.
  std::string number_text;
  std::string string_value;
  std::vector<JsonValue> array;
};

/// Parses one complete JSON document (trailing non-whitespace bytes are an
/// error). Returns false with a human-readable `*error` on malformed input.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

}  // namespace server
}  // namespace restore

#endif  // RESTORE_SERVER_HTTP_H_
