#ifndef RESTORE_EXEC_AGGREGATE_H_
#define RESTORE_EXEC_AGGREGATE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/exec_control.h"
#include "exec/query.h"
#include "storage/table.h"

namespace restore {

/// Evaluates the conjunction of `predicates` over `table` and returns the
/// indices of qualifying rows. Column references may be unqualified.
/// `ctx` is checked at row-block boundaries (cooperative cancellation).
Result<std::vector<size_t>> FilterRows(
    const Table& table, const std::vector<Predicate>& predicates,
    const ExecContext* ctx = nullptr);

/// The grouped output of the aggregation operator: one entry per group, no
/// GROUP BY yielding a single entry with an empty key. This is the
/// exec-INTERNAL container; the public Db/Session/executor surface wraps it
/// into a streaming, schema-carrying ResultSet (exec/result_set.h).
struct QueryResult {
  /// group key (rendered values, in group-by order) -> aggregate values in
  /// SELECT-list order.
  std::map<std::vector<std::string>, std::vector<double>> groups;

  std::string ToString() const;
};

/// Computes the grouped aggregates of `query` over the (already joined and
/// filtered) rows `rows` of `table`.
Result<QueryResult> Aggregate(const Table& table,
                              const std::vector<size_t>& rows,
                              const Query& query,
                              const ExecContext* ctx = nullptr);

/// Convenience: filter + aggregate over a joined table.
Result<QueryResult> FilterAndAggregate(const Table& table,
                                       const Query& query,
                                       const ExecContext* ctx = nullptr);

}  // namespace restore

#endif  // RESTORE_EXEC_AGGREGATE_H_
