#ifndef RESTORE_COMMON_FAULT_INJECTION_H_
#define RESTORE_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace restore {

/// Deterministic fault injection for robustness testing.
///
/// Production code declares NAMED fault points at the places that can fail in
/// the real world (training, persistence I/O, socket paths):
///
///   RESTORE_FAULT_POINT("refresh.train");   // returns the injected Status
///   Status s = FaultInjection::Fire("server.accept");  // manual handling
///
/// Tests (or an operator, via the RESTORE_FAULT_SPEC environment variable)
/// arm points with a policy; unarmed points — and the entire framework when
/// nothing is armed — cost a single relaxed atomic load, so the frozen
/// deterministic path is untouched in normal operation.
///
/// Spec grammar (RESTORE_FAULT_SPEC, or FaultInjection::Configure):
///
///   spec    := entry (',' entry)*
///   entry   := point '=' policy [':' status]
///   policy  := 'fail_nth:' N      — exactly the Nth hit (1-based) fails
///            | 'fail_first:' N    — hits 1..N fail, later hits pass
///            | 'fail_always'      — every hit fails
///            | 'fail_prob:' P     — each hit fails with probability P
///                                   (seeded xoshiro stream: deterministic
///                                   for a fixed seed and hit sequence)
///            | 'delay_ms:' N      — every hit sleeps N ms, then passes
///   status  := StatusCodeName to inject, lower_snake or CamelCase
///              (default 'internal'), e.g. 'unavailable'
///
///   RESTORE_FAULT_SPEC='persist.write=fail_nth:3' ./serve_housing ...
///   refresh.train=fail_first:2:unavailable,ingest.validate=fail_always
///
/// A malformed spec aborts the process at startup — a chaos run with a typo
/// must not silently test nothing.
struct FaultPolicy {
  enum class Kind {
    kFailNth,
    kFailFirst,
    kFailAlways,
    kFailProb,
    kDelayMs,
  };
  Kind kind = Kind::kFailAlways;
  uint64_t n = 0;          // kFailNth / kFailFirst threshold, kDelayMs millis
  double probability = 0;  // kFailProb
  StatusCode code = StatusCode::kInternal;  // injected on failure

  static FaultPolicy FailNth(uint64_t nth,
                             StatusCode code = StatusCode::kInternal) {
    FaultPolicy p;
    p.kind = Kind::kFailNth;
    p.n = nth;
    p.code = code;
    return p;
  }
  static FaultPolicy FailFirst(uint64_t count,
                               StatusCode code = StatusCode::kInternal) {
    FaultPolicy p;
    p.kind = Kind::kFailFirst;
    p.n = count;
    p.code = code;
    return p;
  }
  static FaultPolicy FailAlways(StatusCode code = StatusCode::kInternal) {
    FaultPolicy p;
    p.kind = Kind::kFailAlways;
    p.code = code;
    return p;
  }
  static FaultPolicy FailProb(double probability,
                              StatusCode code = StatusCode::kInternal) {
    FaultPolicy p;
    p.kind = Kind::kFailProb;
    p.probability = probability;
    p.code = code;
    return p;
  }
  static FaultPolicy DelayMs(uint64_t ms) {
    FaultPolicy p;
    p.kind = Kind::kDelayMs;
    p.n = ms;
    return p;
  }
};

class FaultInjection {
 public:
  /// The process-wide registry. RESTORE_FAULT_SPEC is parsed once before
  /// main() by this translation unit's initializer.
  static FaultInjection& Instance();

  /// True iff at least one point is armed. One relaxed load — this is the
  /// gate every RESTORE_FAULT_POINT evaluates on the hot path.
  static bool Enabled() {
    return g_fault_injection_enabled.load(std::memory_order_relaxed);
  }

  /// Evaluates the policy armed at `point` (if any): sleeps for kDelayMs,
  /// returns the injected Status for a firing fail policy, OK otherwise.
  /// Call sites normally go through RESTORE_FAULT_POINT instead.
  static Status Fire(const char* point);

  /// Arms `point` with `policy`, resetting its hit count.
  void Arm(const std::string& point, FaultPolicy policy);
  void Disarm(const std::string& point);
  /// Disarms every point and re-seeds the probability stream.
  void Reset();
  /// Seeds the kFailProb decision stream (default 0x5eed).
  void Seed(uint64_t seed);
  /// Times `point` was evaluated while armed (injected or passed through).
  uint64_t hits(const std::string& point) const;

  /// Parses and arms a spec string (grammar above). Error on malformed
  /// input; already-armed points named in the spec are re-armed.
  Status Configure(const std::string& spec);

 private:
  FaultInjection() = default;
  Status FireImpl(const char* point);
  struct Impl;
  Impl* impl();  // lazily constructed, never destroyed (no exit-order races)
  std::atomic<Impl*> impl_{nullptr};

  static std::atomic<bool> g_fault_injection_enabled;
};

/// Declares a fault point in a function returning Status (or Result<T>):
/// when armed with a firing fail policy, returns the injected Status.
#define RESTORE_FAULT_POINT(point)                                      \
  do {                                                                  \
    if (::restore::FaultInjection::Enabled()) {                         \
      ::restore::Status _fault = ::restore::FaultInjection::Fire(point); \
      if (!_fault.ok()) return _fault;                                  \
    }                                                                   \
  } while (0)

}  // namespace restore

#endif  // RESTORE_COMMON_FAULT_INJECTION_H_
