#include "storage/table.h"

#include <sstream>

#include "common/string_util.h"

namespace restore {

Table::Table(std::string name, const std::vector<ColumnSpec>& specs)
    : name_(std::move(name)) {
  for (const auto& spec : specs) {
    columns_.emplace_back(spec.name, spec.type);
  }
}

Status Table::AddColumn(const std::string& name, ColumnType type) {
  if (HasColumn(name)) {
    return Status::AlreadyExists(
        StrFormat("column '%s' already exists in table '%s'", name.c_str(),
                  name_.c_str()));
  }
  if (NumRows() > 0) {
    return Status::FailedPrecondition(
        "cannot add an empty column to a non-empty table");
  }
  columns_.emplace_back(name, type);
  return Status::OK();
}

Status Table::AddColumn(Column column) {
  if (HasColumn(column.name())) {
    return Status::AlreadyExists(
        StrFormat("column '%s' already exists in table '%s'",
                  column.name().c_str(), name_.c_str()));
  }
  if (!columns_.empty() && column.size() != NumRows()) {
    return Status::InvalidArgument(
        StrFormat("column '%s' has %zu rows, table '%s' has %zu",
                  column.name().c_str(), column.size(), name_.c_str(),
                  NumRows()));
  }
  columns_.push_back(std::move(column));
  return Status::OK();
}

Result<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() == name) return i;
  }
  return Status::NotFound(StrFormat("column '%s' not found in table '%s'",
                                    name.c_str(), name_.c_str()));
}

bool Table::HasColumn(const std::string& name) const {
  return ColumnIndex(name).ok();
}

Result<const Column*> Table::GetColumn(const std::string& name) const {
  RESTORE_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(name));
  return &columns_[idx];
}

Result<Column*> Table::GetMutableColumn(const std::string& name) {
  RESTORE_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(name));
  return &columns_[idx];
}

Status Table::AppendRow(const std::vector<Value>& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu values, table '%s' has %zu columns",
                  row.size(), name_.c_str(), columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    RESTORE_RETURN_IF_ERROR(columns_[i].AppendValue(row[i]));
  }
  return Status::OK();
}

Table Table::GatherRows(const std::vector<size_t>& rows) const {
  Table out(name_);
  for (const auto& col : columns_) {
    out.columns_.push_back(col.Gather(rows));
  }
  return out;
}

Result<Table> Table::Project(
    const std::vector<std::string>& column_names) const {
  Table out(name_);
  for (const auto& cname : column_names) {
    RESTORE_ASSIGN_OR_RETURN(const Column* col, GetColumn(cname));
    out.columns_.push_back(*col);
  }
  return out;
}

Status Table::AppendTable(const Table& other) {
  if (other.NumColumns() != NumColumns()) {
    return Status::InvalidArgument(
        StrFormat("schema mismatch appending '%s' (%zu cols) to '%s' (%zu)",
                  other.name().c_str(), other.NumColumns(), name_.c_str(),
                  NumColumns()));
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Column& src = other.columns_[i];
    Column& dst = columns_[i];
    if (src.name() != dst.name() || src.type() != dst.type()) {
      return Status::InvalidArgument(
          StrFormat("column mismatch at %zu: '%s'/%s vs '%s'/%s", i,
                    src.name().c_str(), ColumnTypeName(src.type()),
                    dst.name().c_str(), ColumnTypeName(dst.type())));
    }
    const size_t n = src.size();
    if (dst.type() == ColumnType::kDouble) {
      for (size_t r = 0; r < n; ++r) dst.AppendDouble(src.GetDouble(r));
    } else if (dst.type() == ColumnType::kInt64) {
      for (size_t r = 0; r < n; ++r) dst.AppendInt64(src.GetInt64(r));
    } else {
      // Categorical: re-encode through the destination dictionary in case the
      // two columns do not share one.
      if (dst.dictionary() == src.dictionary()) {
        for (size_t r = 0; r < n; ++r) dst.AppendCode(src.GetCode(r));
      } else {
        for (size_t r = 0; r < n; ++r) {
          if (src.IsNull(r)) {
            dst.AppendNull();
          } else {
            dst.AppendCategorical(src.dictionary()->ValueOf(src.GetCode(r)));
          }
        }
      }
    }
  }
  return Status::OK();
}

void Table::QualifyColumnNames(const std::string& prefix) {
  for (auto& col : columns_) {
    if (col.name().find('.') == std::string::npos) {
      col.set_name(prefix + "." + col.name());
    }
  }
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << name_ << " [" << NumRows() << " rows]\n";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) os << " | ";
    os << columns_[i].name();
  }
  os << "\n";
  const size_t n = std::min(max_rows, NumRows());
  for (size_t r = 0; r < n; ++r) {
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (i > 0) os << " | ";
      os << columns_[i].GetValue(r).ToString();
    }
    os << "\n";
  }
  if (NumRows() > n) os << "... (" << (NumRows() - n) << " more)\n";
  return os.str();
}

}  // namespace restore
