#include "exec/result_set.h"

#include <sstream>
#include <utility>

#include "common/string_util.h"

namespace restore {

ResultSet ResultSet::Build(const Query& query, QueryResult grouped,
                           ExecStats stats, size_t batch_rows) {
  ResultSet rs;
  rs.key_names_ = query.group_by;
  for (const auto& agg : query.aggregates) {
    rs.value_names_.push_back(
        agg.column.empty()
            ? StrFormat("%s(*)", AggregateFuncName(agg.func))
            : StrFormat("%s(%s)", AggregateFuncName(agg.func),
                        agg.column.c_str()));
  }
  rs.num_rows_ = grouped.groups.size();
  rs.key_cols_.assign(rs.key_names_.size(), {});
  for (auto& col : rs.key_cols_) col.reserve(rs.num_rows_);
  rs.value_cols_.assign(rs.value_names_.size(), {});
  for (auto& col : rs.value_cols_) col.reserve(rs.num_rows_);
  // std::map iterates in key order — the row order of the old surface.
  for (auto& [key, values] : grouped.groups) {
    for (size_t c = 0; c < rs.key_cols_.size(); ++c) {
      rs.key_cols_[c].push_back(c < key.size() ? key[c] : "");
    }
    for (size_t c = 0; c < rs.value_cols_.size(); ++c) {
      rs.value_cols_[c].push_back(c < values.size() ? values[c] : 0.0);
    }
  }
  rs.batch_rows_ = batch_rows == 0 ? 1 : batch_rows;
  rs.stats_ = std::move(stats);
  return rs;
}

bool ResultSet::NextBatch(ResultBatch* batch) {
  if (cursor_ >= num_rows_) return false;
  batch->set = this;
  batch->begin = cursor_;
  batch->rows = std::min(batch_rows_, num_rows_ - cursor_);
  cursor_ += batch->rows;
  return true;
}

int64_t ResultSet::FindRow(const std::vector<std::string>& key) const {
  if (key.size() != key_cols_.size()) return -1;
  for (size_t r = 0; r < num_rows_; ++r) {
    bool match = true;
    for (size_t c = 0; c < key_cols_.size(); ++c) {
      if (key_cols_[c][r] != key[c]) {
        match = false;
        break;
      }
    }
    if (match) return static_cast<int64_t>(r);
  }
  return -1;
}

double ResultSet::ValueOr(const std::vector<std::string>& key, size_t col,
                          double fallback) const {
  const int64_t row = FindRow(key);
  return row < 0 ? fallback : value(static_cast<size_t>(row), col);
}

QueryResult ResultSet::ToQueryResult() const {
  QueryResult out;
  for (size_t r = 0; r < num_rows_; ++r) {
    std::vector<std::string> key;
    key.reserve(key_cols_.size());
    for (const auto& col : key_cols_) key.push_back(col[r]);
    std::vector<double> values;
    values.reserve(value_cols_.size());
    for (const auto& col : value_cols_) values.push_back(col[r]);
    out.groups.emplace(std::move(key), std::move(values));
  }
  return out;
}

std::string ResultSet::ToString() const {
  std::ostringstream os;
  for (size_t r = 0; r < num_rows_; ++r) {
    os << "(";
    for (size_t c = 0; c < key_cols_.size(); ++c) {
      if (c > 0) os << ", ";
      os << key_cols_[c][r];
    }
    os << ") -> [";
    for (size_t c = 0; c < value_cols_.size(); ++c) {
      if (c > 0) os << ", ";
      os << StrFormat("%.6g", value_cols_[c][r]);
    }
    os << "]\n";
  }
  return os.str();
}

}  // namespace restore
