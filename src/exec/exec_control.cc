#include "exec/exec_control.h"

#include "common/string_util.h"

namespace restore {

std::string ExecStats::ToString() const {
  return StrFormat(
      "parse=%.3fms plan=%.3fms selection=%.3fms sample=%.3fms "
      "aggregate=%.3fms "
      "tuples_completed=%llu models_consulted=%llu cache_hits=%llu "
      "cache_misses=%llu arenas_leased=%llu batches_joined=%llu "
      "batch_wait=%.3fms coalesced_rows=%llu",
      parse_seconds * 1e3, plan_seconds * 1e3, selection_seconds * 1e3,
      sample_seconds * 1e3, aggregate_seconds * 1e3,
      static_cast<unsigned long long>(tuples_completed),
      static_cast<unsigned long long>(models_consulted),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses),
      static_cast<unsigned long long>(arenas_leased),
      static_cast<unsigned long long>(batches_joined),
      batch_wait_seconds * 1e3,
      static_cast<unsigned long long>(coalesced_rows));
}

}  // namespace restore
