#include "storage/database.h"

#include <deque>
#include <set>

#include "common/string_util.h"

namespace restore {

Status Database::AddTable(Table table) {
  const std::string name = table.name();
  if (name.empty()) {
    return Status::InvalidArgument("table must have a name");
  }
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists(
        StrFormat("table '%s' already exists", name.c_str()));
  }
  tables_.emplace(name, std::move(table));
  return Status::OK();
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StrFormat("table '%s' not found", name.c_str()));
  }
  return &it->second;
}

Result<Table*> Database::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StrFormat("table '%s' not found", name.c_str()));
  }
  return &it->second;
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

Status Database::ReplaceTable(Table table) {
  auto it = tables_.find(table.name());
  if (it == tables_.end()) {
    return Status::NotFound(
        StrFormat("table '%s' not found", table.name().c_str()));
  }
  it->second = std::move(table);
  return Status::OK();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

Status Database::AddForeignKey(const std::string& child_table,
                               const std::string& child_column,
                               const std::string& parent_table,
                               const std::string& parent_column) {
  RESTORE_ASSIGN_OR_RETURN(const Table* child, GetTable(child_table));
  RESTORE_ASSIGN_OR_RETURN(const Table* parent, GetTable(parent_table));
  if (!child->HasColumn(child_column)) {
    return Status::NotFound(StrFormat("FK column '%s.%s' not found",
                                      child_table.c_str(),
                                      child_column.c_str()));
  }
  if (!parent->HasColumn(parent_column)) {
    return Status::NotFound(StrFormat("FK target '%s.%s' not found",
                                      parent_table.c_str(),
                                      parent_column.c_str()));
  }
  foreign_keys_.push_back(
      {child_table, child_column, parent_table, parent_column});
  return Status::OK();
}

Result<ForeignKey> Database::FindForeignKey(const std::string& a,
                                            const std::string& b) const {
  for (const auto& fk : foreign_keys_) {
    if ((fk.child_table == a && fk.parent_table == b) ||
        (fk.child_table == b && fk.parent_table == a)) {
      return fk;
    }
  }
  return Status::NotFound(StrFormat("no foreign key between '%s' and '%s'",
                                    a.c_str(), b.c_str()));
}

std::vector<std::string> Database::Neighbors(const std::string& table) const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const auto& fk : foreign_keys_) {
    if (fk.child_table == table && seen.insert(fk.parent_table).second) {
      out.push_back(fk.parent_table);
    }
    if (fk.parent_table == table && seen.insert(fk.child_table).second) {
      out.push_back(fk.child_table);
    }
  }
  return out;
}

Result<bool> Database::IsFanOut(const std::string& from,
                                const std::string& to) const {
  RESTORE_ASSIGN_OR_RETURN(ForeignKey fk, FindForeignKey(from, to));
  return fk.parent_table == from;
}

Result<std::vector<std::string>> Database::FindJoinPath(
    const std::string& from, const std::string& to) const {
  if (!HasTable(from)) {
    return Status::NotFound(StrFormat("table '%s' not found", from.c_str()));
  }
  if (!HasTable(to)) {
    return Status::NotFound(StrFormat("table '%s' not found", to.c_str()));
  }
  if (from == to) return std::vector<std::string>{from};
  std::map<std::string, std::string> parent_of;
  std::deque<std::string> frontier{from};
  parent_of[from] = "";
  while (!frontier.empty()) {
    std::string cur = frontier.front();
    frontier.pop_front();
    for (const auto& next : Neighbors(cur)) {
      if (parent_of.count(next) > 0) continue;
      parent_of[next] = cur;
      if (next == to) {
        std::vector<std::string> path;
        for (std::string t = to; !t.empty(); t = parent_of[t]) {
          path.push_back(t);
        }
        return std::vector<std::string>(path.rbegin(), path.rend());
      }
      frontier.push_back(next);
    }
  }
  return Status::NotFound(StrFormat(
      "tables '%s' and '%s' are not connected in the FK graph", from.c_str(),
      to.c_str()));
}

Result<std::vector<std::string>> Database::OrderJoinTables(
    const std::vector<std::string>& tables) const {
  if (tables.empty()) {
    return Status::InvalidArgument("no tables to join");
  }
  for (const auto& t : tables) {
    if (!HasTable(t)) {
      return Status::NotFound(StrFormat("table '%s' not found", t.c_str()));
    }
  }
  std::vector<std::string> ordered{tables[0]};
  std::set<std::string> placed{tables[0]};
  std::set<std::string> remaining(tables.begin() + 1, tables.end());
  while (!remaining.empty()) {
    bool progress = false;
    for (const auto& cand : remaining) {
      for (const auto& done : placed) {
        if (FindForeignKey(cand, done).ok()) {
          ordered.push_back(cand);
          placed.insert(cand);
          remaining.erase(cand);
          progress = true;
          break;
        }
      }
      if (progress) break;
    }
    if (!progress) {
      return Status::InvalidArgument(
          "join tables are not connected via foreign keys");
    }
  }
  return ordered;
}

Database Database::Clone() const {
  Database out;
  out.tables_ = tables_;
  out.foreign_keys_ = foreign_keys_;
  return out;
}

}  // namespace restore
