// Tests for column discretization, tuple factors, and metrics.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/synthetic.h"
#include "metrics/metrics.h"
#include "restore/discretizer.h"
#include "restore/tuple_factor.h"
#include "storage/database.h"

namespace restore {
namespace {

TEST(DiscretizerTest, CategoricalIsIdentity) {
  Column col("c", ColumnType::kCategorical);
  col.AppendCategorical("x");
  col.AppendCategorical("y");
  col.AppendCategorical("x");
  auto disc = ColumnDiscretizer::Fit(col, 8);
  ASSERT_TRUE(disc.ok());
  EXPECT_EQ(disc->vocab_size(), 2);
  EXPECT_EQ(disc->EncodeCell(col, 0), 0);
  EXPECT_EQ(disc->EncodeCell(col, 1), 1);
  Rng rng(1);
  Column out = col.CloneEmpty();
  disc->DecodeInto(1, &out, rng);
  EXPECT_EQ(out.dictionary()->ValueOf(out.GetCode(0)), "y");
}

TEST(DiscretizerTest, LowCardinalityIntsGetOneBinPerValue) {
  Column col("year", ColumnType::kInt64);
  for (int i = 0; i < 100; ++i) col.AppendInt64(2010 + (i % 5));
  auto disc = ColumnDiscretizer::Fit(col, 24);
  ASSERT_TRUE(disc.ok());
  EXPECT_EQ(disc->vocab_size(), 5);
  // Encode-decode round trip is exact for distinct-valued bins.
  Rng rng(2);
  for (int v = 2010; v <= 2014; ++v) {
    const int32_t code = disc->EncodeNumeric(static_cast<double>(v));
    Column out("o", ColumnType::kInt64);
    disc->DecodeInto(code, &out, rng);
    EXPECT_EQ(out.GetInt64(0), v);
  }
}

TEST(DiscretizerTest, ContinuousBinsRespectRange) {
  Rng rng(3);
  Column col("price", ColumnType::kDouble);
  double lo = 1e18;
  double hi = -1e18;
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.NextGaussian(100.0, 25.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    col.AppendDouble(v);
  }
  auto disc = ColumnDiscretizer::Fit(col, 16);
  ASSERT_TRUE(disc.ok());
  EXPECT_EQ(disc->vocab_size(), 16);
  for (size_t r = 0; r < col.size(); ++r) {
    const int32_t code = disc->EncodeCell(col, r);
    ASSERT_GE(code, 0);
    ASSERT_LT(code, 16);
  }
  // Decoded values stay within the observed range.
  Column out("o", ColumnType::kDouble);
  for (int code = 0; code < 16; ++code) disc->DecodeInto(code, &out, rng);
  for (size_t r = 0; r < out.size(); ++r) {
    EXPECT_GE(out.GetDouble(r), lo - 1e-9);
    EXPECT_LE(out.GetDouble(r), hi + 1e-9);
  }
}

TEST(DiscretizerTest, NullEncodesToMinusOneAndDecodesToNull) {
  Column col("x", ColumnType::kInt64);
  col.AppendInt64(1);
  col.AppendNull();
  auto disc = ColumnDiscretizer::Fit(col, 4);
  ASSERT_TRUE(disc.ok());
  EXPECT_EQ(disc->EncodeCell(col, 1), -1);
  Rng rng(4);
  Column out("o", ColumnType::kInt64);
  disc->DecodeInto(-1, &out, rng);
  EXPECT_TRUE(out.IsNull(0));
}

TEST(DiscretizerTest, CodeMeanIsWithinBin) {
  Column col("x", ColumnType::kDouble);
  for (int i = 0; i < 100; ++i) col.AppendDouble(static_cast<double>(i));
  auto disc = ColumnDiscretizer::Fit(col, 10);
  ASSERT_TRUE(disc.ok());
  for (int code = 0; code < disc->vocab_size(); ++code) {
    const double mean = disc->CodeMean(code);
    EXPECT_GE(mean, 0.0);
    EXPECT_LE(mean, 99.0);
    if (code > 0) EXPECT_GT(mean, disc->CodeMean(code - 1));
  }
}

// Property sweep: every value encodes into a bin whose observed range
// contains it, for many bin budgets.
class DiscretizerBinSweep : public ::testing::TestWithParam<int> {};

TEST_P(DiscretizerBinSweep, EncodeIsMonotone) {
  Rng rng(5);
  Column col("x", ColumnType::kDouble);
  for (int i = 0; i < 500; ++i) col.AppendDouble(rng.NextUniform(-10, 10));
  auto disc = ColumnDiscretizer::Fit(col, GetParam());
  ASSERT_TRUE(disc.ok());
  int32_t prev = -1;
  for (double v = -10.0; v <= 10.0; v += 0.25) {
    const int32_t code = disc->EncodeNumeric(v);
    EXPECT_GE(code, prev);
    prev = code;
  }
}

INSTANTIATE_TEST_SUITE_P(Bins, DiscretizerBinSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64));

TEST(TupleFactorTest, NamingAndDetection) {
  EXPECT_EQ(TupleFactorColumnName("apartment"), "__tf_apartment");
  EXPECT_TRUE(IsTupleFactorColumn("__tf_apartment"));
  EXPECT_TRUE(IsTupleFactorColumn("neighborhood.__tf_apartment"));
  EXPECT_FALSE(IsTupleFactorColumn("price"));
  EXPECT_FALSE(IsTupleFactorColumn("neighborhood.price"));
}

TEST(TupleFactorTest, CountsAndAttaches) {
  SyntheticConfig config;
  config.num_parents = 50;
  config.seed = 6;
  auto db = GenerateSynthetic(config);
  ASSERT_TRUE(db.ok()) << db.status();
  auto parent = db->GetTable("table_a");
  ASSERT_TRUE(parent.ok());
  auto tf_col = (*parent.value()).GetColumn("__tf_table_b");
  ASSERT_TRUE(tf_col.ok());
  // Attached tuple factors must equal the actual child counts.
  auto counts = CountChildMatches(*db, db->foreign_keys().front());
  ASSERT_TRUE(counts.ok());
  for (size_t r = 0; r < (*parent.value()).NumRows(); ++r) {
    EXPECT_EQ((*tf_col.value()).GetInt64(r), counts.value()[r]);
    EXPECT_GE(counts.value()[r], 1);
  }
}

TEST(MetricsTest, BiasReductionFormula) {
  // true=10, incomplete=6 (bias 4); completed=9 restores 75%.
  EXPECT_NEAR(BiasReduction(10.0, 6.0, 9.0), 0.75, 1e-12);
  // Perfect correction.
  EXPECT_NEAR(BiasReduction(10.0, 6.0, 10.0), 1.0, 1e-12);
  // Overshoot beyond the truth can be negative.
  EXPECT_LT(BiasReduction(10.0, 9.0, 12.0), 0.0);
  // No initial bias: defined as fully reduced.
  EXPECT_DOUBLE_EQ(BiasReduction(10.0, 10.0, 11.0), 1.0);
}

TEST(MetricsTest, CardinalityCorrectionFormula) {
  EXPECT_NEAR(CardinalityCorrection(100, 60, 95), 1.0 - 5.0 / 40.0, 1e-12);
  EXPECT_DOUBLE_EQ(CardinalityCorrection(100, 100, 100), 1.0);
}

TEST(MetricsTest, AverageRelativeErrorHandlesMissingGroups) {
  QueryResult truth;
  truth.groups[{"a"}] = {10.0};
  truth.groups[{"b"}] = {20.0};
  QueryResult est;
  est.groups[{"a"}] = {15.0};  // 50% error; group b missing -> error 1.
  EXPECT_NEAR(AverageRelativeError(truth, est), (0.5 + 1.0) / 2.0, 1e-12);
  // Estimate-only groups are ignored (truth has no such group).
  est.groups[{"c"}] = {5.0};
  EXPECT_NEAR(AverageRelativeError(truth, est), (0.5 + 1.0) / 2.0, 1e-12);
}

TEST(MetricsTest, RelativeErrorImprovementIsDifference) {
  QueryResult truth;
  truth.groups[{}] = {100.0};
  QueryResult incomplete;
  incomplete.groups[{}] = {50.0};
  QueryResult completed;
  completed.groups[{}] = {90.0};
  EXPECT_NEAR(RelativeErrorImprovement(truth, incomplete, completed),
              0.5 - 0.1, 1e-12);
}

}  // namespace
}  // namespace restore
