#include "nn/matrix.h"

#include <algorithm>
#include <cmath>

namespace restore {

void MatMul(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.cols() == b.rows());
  out->Resize(a.rows(), b.cols());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* orow = out->row(i);
    for (size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.row(p);
      for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void MatMulTransB(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.cols() == b.cols());
  out->Resize(a.rows(), b.rows());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.rows();
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* orow = out->row(i);
    for (size_t j = 0; j < n; ++j) {
      const float* brow = b.row(j);
      float acc = 0.0f;
      for (size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      orow[j] = acc;
    }
  }
}

void MatMulTransAAccum(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.rows() == b.rows());
  assert(out->rows() == a.cols() && out->cols() == b.cols());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    const float* brow = b.row(i);
    for (size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      float* orow = out->row(p);
      for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void AddBiasRows(const Matrix& bias, Matrix* out) {
  assert(bias.rows() == 1 && bias.cols() == out->cols());
  const float* b = bias.row(0);
  for (size_t r = 0; r < out->rows(); ++r) {
    float* row = out->row(r);
    for (size_t c = 0; c < out->cols(); ++c) row[c] += b[c];
  }
}

void AccumBiasGrad(const Matrix& dy, Matrix* bias_grad) {
  assert(bias_grad->rows() == 1 && bias_grad->cols() == dy.cols());
  float* g = bias_grad->row(0);
  for (size_t r = 0; r < dy.rows(); ++r) {
    const float* row = dy.row(r);
    for (size_t c = 0; c < dy.cols(); ++c) g[c] += row[c];
  }
}

void AddInPlace(const Matrix& x, Matrix* y) {
  assert(x.rows() == y->rows() && x.cols() == y->cols());
  float* yd = y->data();
  const float* xd = x.data();
  for (size_t i = 0; i < x.size(); ++i) yd[i] += xd[i];
}

void ReluInPlace(Matrix* x) {
  float* d = x->data();
  for (size_t i = 0; i < x->size(); ++i) d[i] = std::max(0.0f, d[i]);
}

void ReluBackward(const Matrix& y, Matrix* dy) {
  assert(y.size() == dy->size());
  const float* yd = y.data();
  float* dd = dy->data();
  for (size_t i = 0; i < y.size(); ++i) {
    if (yd[i] <= 0.0f) dd[i] = 0.0f;
  }
}

void SoftmaxSlice(Matrix* logits, size_t col_begin, size_t col_end) {
  assert(col_begin < col_end && col_end <= logits->cols());
  for (size_t r = 0; r < logits->rows(); ++r) {
    float* row = logits->row(r);
    float max_v = row[col_begin];
    for (size_t c = col_begin; c < col_end; ++c) max_v = std::max(max_v, row[c]);
    float sum = 0.0f;
    for (size_t c = col_begin; c < col_end; ++c) {
      row[c] = std::exp(row[c] - max_v);
      sum += row[c];
    }
    const float inv = 1.0f / sum;
    for (size_t c = col_begin; c < col_end; ++c) row[c] *= inv;
  }
}

}  // namespace restore
