#ifndef RESTORE_RESTORE_ANNOTATION_H_
#define RESTORE_RESTORE_ANNOTATION_H_

#include <map>
#include <set>
#include <string>

#include "common/status.h"
#include "storage/database.h"

namespace restore {

/// Direction of a bias the user suspects in an incomplete table's attribute
/// (Section 5, "Advanced Selection"): e.g. the average rent is likely
/// overestimated because low-rent apartments are missing.
enum class BiasDirection {
  kOverestimated,   // the incomplete data overestimates the attribute
  kUnderestimated,  // the incomplete data underestimates the attribute
};

/// A user-provided hint that attribute `column` of an incomplete table is
/// biased in the given direction. Optional; improves model selection.
struct SuspectedBias {
  std::string table;
  std::string column;
  BiasDirection direction = BiasDirection::kOverestimated;
  /// For categorical columns: the attribute value whose frequency is biased.
  std::string categorical_value;
};

/// The schema annotation of Section 2.2: which tables are incomplete, and
/// optional suspected-bias hints. Tuple-factor observations are stored as
/// nullable "__tf_<child>" columns on parent tables (see tuple_factor.h), so
/// they need no annotation here.
class SchemaAnnotation {
 public:
  SchemaAnnotation() = default;

  /// Marks `table` as incomplete (tuples may be missing).
  void MarkIncomplete(const std::string& table) {
    incomplete_tables_.insert(table);
  }

  bool IsComplete(const std::string& table) const {
    return incomplete_tables_.count(table) == 0;
  }
  bool IsIncomplete(const std::string& table) const {
    return incomplete_tables_.count(table) > 0;
  }

  const std::set<std::string>& incomplete_tables() const {
    return incomplete_tables_;
  }

  void AddSuspectedBias(SuspectedBias bias) {
    suspected_biases_[bias.table + "." + bias.column] = bias;
  }
  const std::map<std::string, SuspectedBias>& suspected_biases() const {
    return suspected_biases_;
  }

  /// Checks that every annotated table exists in `db`.
  Status Validate(const Database& db) const;

 private:
  std::set<std::string> incomplete_tables_;
  std::map<std::string, SuspectedBias> suspected_biases_;
};

}  // namespace restore

#endif  // RESTORE_RESTORE_ANNOTATION_H_
