#include "restore/tuple_factor.h"

#include <unordered_map>

#include "common/string_util.h"

namespace restore {

namespace {
constexpr const char kTfPrefix[] = "__tf_";
}  // namespace

std::string TupleFactorColumnName(const std::string& child_table) {
  return std::string(kTfPrefix) + child_table;
}

bool IsTupleFactorColumn(const std::string& column) {
  // The column may be qualified ("parent.__tf_child").
  const size_t dot = column.rfind('.');
  const std::string_view tail =
      dot == std::string::npos
          ? std::string_view(column)
          : std::string_view(column).substr(dot + 1);
  return StartsWith(tail, kTfPrefix);
}

Result<std::vector<int64_t>> CountChildMatches(const Database& db,
                                               const ForeignKey& fk) {
  RESTORE_ASSIGN_OR_RETURN(const Table* parent, db.GetTable(fk.parent_table));
  RESTORE_ASSIGN_OR_RETURN(const Table* child, db.GetTable(fk.child_table));
  RESTORE_ASSIGN_OR_RETURN(const Column* pk,
                           parent->GetColumn(fk.parent_column));
  RESTORE_ASSIGN_OR_RETURN(const Column* fkcol,
                           child->GetColumn(fk.child_column));

  std::unordered_map<int64_t, int64_t> counts;
  counts.reserve(child->NumRows());
  for (size_t r = 0; r < child->NumRows(); ++r) {
    const int64_t key = fkcol->GetInt64(r);
    if (key == kNullInt64) continue;
    ++counts[key];
  }
  std::vector<int64_t> out(parent->NumRows(), 0);
  for (size_t r = 0; r < parent->NumRows(); ++r) {
    auto it = counts.find(pk->GetInt64(r));
    if (it != counts.end()) out[r] = it->second;
  }
  return out;
}

Status AttachTupleFactors(Database* db, const ForeignKey& fk) {
  RESTORE_ASSIGN_OR_RETURN(std::vector<int64_t> tf,
                           CountChildMatches(*db, fk));
  RESTORE_ASSIGN_OR_RETURN(Table* parent,
                           db->GetMutableTable(fk.parent_table));
  const std::string col_name = TupleFactorColumnName(fk.child_table);
  if (parent->HasColumn(col_name)) {
    RESTORE_ASSIGN_OR_RETURN(Column * existing,
                             parent->GetMutableColumn(col_name));
    for (size_t r = 0; r < tf.size(); ++r) existing->SetInt64(r, tf[r]);
    return Status::OK();
  }
  Column col(col_name, ColumnType::kInt64);
  col.Reserve(tf.size());
  for (int64_t v : tf) col.AppendInt64(v);
  return parent->AddColumn(std::move(col));
}

}  // namespace restore
