#include "restore/nn_replace.h"

#include <cmath>

#include "common/string_util.h"
#include "restore/kd_tree.h"

namespace restore {

Result<EuclideanReplacer> EuclideanReplacer::Build(
    const Table& table, const std::vector<std::string>& attr_columns,
    size_t max_leaves) {
  if (table.NumRows() == 0) {
    return Status::FailedPrecondition(
        StrFormat("cannot build replacer over empty table '%s'",
                  table.name().c_str()));
  }
  EuclideanReplacer rep;
  rep.attr_columns_ = attr_columns;
  rep.max_leaves_ = max_leaves;
  rep.dim_ = attr_columns.size();
  rep.num_points_ = table.NumRows();
  rep.means_.assign(rep.dim_, 0.0);
  rep.inv_stddevs_.assign(rep.dim_, 1.0);

  std::vector<const Column*> cols;
  for (const auto& name : attr_columns) {
    RESTORE_ASSIGN_OR_RETURN(const Column* col, table.GetColumn(name));
    cols.push_back(col);
  }
  // Column statistics for standardization (categorical codes are treated as
  // numeric; shared dictionaries make codes comparable across sides).
  for (size_t d = 0; d < rep.dim_; ++d) {
    double sum = 0.0;
    double sq = 0.0;
    size_t n = 0;
    for (size_t r = 0; r < table.NumRows(); ++r) {
      if (cols[d]->IsNull(r)) continue;
      const double v = cols[d]->GetNumeric(r);
      sum += v;
      sq += v * v;
      ++n;
    }
    if (n > 0) {
      const double mean = sum / static_cast<double>(n);
      const double var = sq / static_cast<double>(n) - mean * mean;
      rep.means_[d] = mean;
      rep.inv_stddevs_[d] = var > 1e-12 ? 1.0 / std::sqrt(var) : 1.0;
    }
  }
  rep.points_.assign(rep.num_points_ * rep.dim_, 0.0f);
  for (size_t r = 0; r < table.NumRows(); ++r) {
    for (size_t d = 0; d < rep.dim_; ++d) {
      const double v = cols[d]->IsNull(r) ? rep.means_[d]
                                          : cols[d]->GetNumeric(r);
      rep.points_[r * rep.dim_ + d] =
          static_cast<float>((v - rep.means_[d]) * rep.inv_stddevs_[d]);
    }
  }
  rep.tree_ = std::make_shared<KdTree>(rep.points_, rep.num_points_,
                                       std::max<size_t>(1, rep.dim_));
  return rep;
}

Result<std::vector<size_t>> EuclideanReplacer::FindReplacements(
    const std::vector<Column>& synthesized) const {
  if (synthesized.size() != dim_) {
    return Status::InvalidArgument(
        StrFormat("expected %zu synthesized columns, got %zu", dim_,
                  synthesized.size()));
  }
  const size_t n = synthesized.empty() ? 0 : synthesized[0].size();
  std::vector<size_t> out(n);
  std::vector<float> query(std::max<size_t>(1, dim_), 0.0f);
  for (size_t r = 0; r < n; ++r) {
    for (size_t d = 0; d < dim_; ++d) {
      const double v = synthesized[d].IsNull(r)
                           ? means_[d]
                           : synthesized[d].GetNumeric(r);
      query[d] = static_cast<float>((v - means_[d]) * inv_stddevs_[d]);
    }
    out[r] = tree_->ApproxNearestNeighbor(query.data(), max_leaves_);
  }
  return out;
}

}  // namespace restore
