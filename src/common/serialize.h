#ifndef RESTORE_COMMON_SERIALIZE_H_
#define RESTORE_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace restore {

/// Binary serialization for model persistence (little-endian, fixed-width).
///
/// File framing (WriteChecksummedFile / ReadChecksummedFile):
///   [magic u32][version u32][payload_size u64][payload][fnv1a64(payload)]
/// A reader rejects wrong magic, unsupported versions, truncated payloads,
/// and payloads whose checksum does not match — a corrupted or torn model
/// file fails loudly at open instead of poisoning query answers.

/// FNV-1a 64-bit hash (also used to derive stable per-path model seeds).
uint64_t Fnv1a64(const void* data, size_t size);
inline uint64_t Fnv1a64(const std::string& s) {
  return Fnv1a64(s.data(), s.size());
}

/// Appends fixed-width little-endian primitives to an in-memory buffer.
class BinaryWriter {
 public:
  void U8(uint8_t v) { Raw(&v, 1); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I32(int32_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void F32(float v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Str(const std::string& s) {
    U64(s.size());
    Raw(s.data(), s.size());
  }

  void VecF32(const std::vector<float>& v) {
    U64(v.size());
    Raw(v.data(), v.size() * sizeof(float));
  }
  void VecF64(const std::vector<double>& v) {
    U64(v.size());
    Raw(v.data(), v.size() * sizeof(double));
  }
  void VecI32(const std::vector<int32_t>& v) {
    U64(v.size());
    Raw(v.data(), v.size() * sizeof(int32_t));
  }
  void VecI64(const std::vector<int64_t>& v) {
    U64(v.size());
    Raw(v.data(), v.size() * sizeof(int64_t));
  }
  void VecU64(const std::vector<uint64_t>& v) {
    U64(v.size());
    Raw(v.data(), v.size() * sizeof(uint64_t));
  }
  void VecStr(const std::vector<std::string>& v) {
    U64(v.size());
    for (const auto& s : v) Str(s);
  }

  const std::string& buffer() const { return buffer_; }

 private:
  void Raw(const void* data, size_t size) {
    // Empty vectors hand over data() == nullptr; append(nullptr, 0) is UB.
    if (size == 0) return;
    buffer_.append(static_cast<const char*>(data), size);
  }
  std::string buffer_;
};

/// Bounds-checked reader over an in-memory payload. Read calls after a
/// failure return zero values; callers check `ok()` once at the end (or
/// whenever a value is about to drive control flow, e.g. a loop bound —
/// element reads validate their byte count against the remaining input
/// before use, so hostile sizes cannot cause huge allocations).
class BinaryReader {
 public:
  explicit BinaryReader(std::string data) : data_(std::move(data)) {}

  uint8_t U8() {
    uint8_t v = 0;
    Raw(&v, 1);
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  int32_t I32() {
    int32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  int64_t I64() {
    int64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  float F32() {
    float v = 0.0f;
    Raw(&v, sizeof(v));
    return v;
  }
  double F64() {
    double v = 0.0;
    Raw(&v, sizeof(v));
    return v;
  }
  bool Bool() { return U8() != 0; }
  std::string Str() {
    const uint64_t n = U64();
    if (!CheckRemaining(n)) return std::string();
    std::string s(data_.data() + pos_, n);
    pos_ += n;
    return s;
  }

  std::vector<float> VecF32() { return Vec<float>(); }
  std::vector<double> VecF64() { return Vec<double>(); }
  std::vector<int32_t> VecI32() { return Vec<int32_t>(); }
  std::vector<int64_t> VecI64() { return Vec<int64_t>(); }
  std::vector<uint64_t> VecU64() { return Vec<uint64_t>(); }
  std::vector<std::string> VecStr() {
    const uint64_t n = U64();
    std::vector<std::string> v;
    if (!CheckRemaining(n)) return v;  // each element takes >= 8 bytes
    v.reserve(n);
    for (uint64_t i = 0; i < n && ok_; ++i) v.push_back(Str());
    return v;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

  Status status() const {
    if (ok_) return Status::OK();
    return Status::InvalidArgument("truncated or malformed binary payload");
  }

 private:
  template <typename T>
  std::vector<T> Vec() {
    const uint64_t n = U64();
    std::vector<T> v;
    // Divide, don't multiply: n * sizeof(T) can wrap for a hostile length,
    // which would pass the bounds check and make resize() throw.
    if (!ok_ || n > (data_.size() - pos_) / sizeof(T)) {
      ok_ = false;
      return v;
    }
    v.resize(n);
    Raw(v.data(), n * sizeof(T));
    return v;
  }

  bool CheckRemaining(uint64_t n) {
    if (!ok_ || n > data_.size() - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  void Raw(void* out, size_t size) {
    // size == 0 reads come from empty vectors whose data() is nullptr;
    // memcpy/memset with a null destination is UB even at size 0.
    if (size == 0) return;
    if (!CheckRemaining(size)) {
      std::memset(out, 0, size);
      return;
    }
    std::memcpy(out, data_.data() + pos_, size);
    pos_ += size;
  }

  std::string data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Writes `payload` to `path` under the checksummed framing described above.
Status WriteChecksummedFile(const std::string& path, uint32_t magic,
                            uint32_t version, const std::string& payload);

/// Crash-safe variant: writes the framed payload to `path + ".tmp"`, fsyncs
/// the file, renames it over `path`, and fsyncs the containing directory.
/// A crash at any point leaves either the old file (or nothing) or the
/// complete new file — never a torn one. The checksummed framing catches
/// the remaining failure mode (media corruption) at read time.
Status WriteChecksummedFileAtomic(const std::string& path, uint32_t magic,
                                  uint32_t version,
                                  const std::string& payload);

/// fsyncs a directory so a rename/creation inside it is durable. Best
/// effort on filesystems that reject directory fsync (returns OK there).
Status FsyncDirectory(const std::string& dir);

/// Reads a file written by WriteChecksummedFile; validates magic, version
/// (must be <= max_version), length, and checksum. Returns the payload.
Result<std::string> ReadChecksummedFile(const std::string& path,
                                        uint32_t magic, uint32_t max_version,
                                        uint32_t* version_out = nullptr);

}  // namespace restore

#endif  // RESTORE_COMMON_SERIALIZE_H_
