// Tests of the Prometheus text rendering of Db::Stats — independent of the
// HTTP server that serves it (see server_test.cc for the /metrics endpoint).

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "restore/stats_prometheus.h"

namespace restore {
namespace {

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

size_t CountOccurrences(const std::string& text, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + 1)) {
    ++count;
  }
  return count;
}

bool IsMetricNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

/// Structural validation of one exposition-format document: every line is a
/// `# HELP`/`# TYPE` comment or a `name{labels} value` sample, every sample
/// belongs to an announced family, and each family is announced once.
void ValidatePrometheusText(const std::string& text) {
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n') << "exposition must end with a newline";
  std::vector<std::string> announced;
  for (const std::string& line : SplitLines(text)) {
    ASSERT_FALSE(line.empty());
    if (line.rfind("# HELP ", 0) == 0) {
      const std::string name =
          line.substr(7, line.find(' ', 7) - 7);
      for (const std::string& seen : announced) {
        ASSERT_NE(seen, name) << "family announced twice: " << name;
      }
      announced.push_back(name);
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const size_t space = line.find(' ', 7);
      ASSERT_NE(space, std::string::npos);
      const std::string name = line.substr(7, space - 7);
      ASSERT_FALSE(announced.empty());
      ASSERT_EQ(announced.back(), name)
          << "# TYPE must follow its family's # HELP";
      const std::string type = line.substr(space + 1);
      ASSERT_TRUE(type == "counter" || type == "gauge") << line;
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment line: " << line;
    // Sample line: name[{labels}] value
    size_t pos = 0;
    while (pos < line.size() && IsMetricNameChar(line[pos])) ++pos;
    ASSERT_GT(pos, 0u) << line;
    const std::string name = line.substr(0, pos);
    bool found = false;
    for (const std::string& seen : announced) found |= (seen == name);
    ASSERT_TRUE(found) << "sample of unannounced family: " << line;
    if (pos < line.size() && line[pos] == '{') {
      const size_t close = line.find('}', pos);
      ASSERT_NE(close, std::string::npos) << line;
      pos = close + 1;
    }
    ASSERT_LT(pos, line.size()) << line;
    ASSERT_EQ(line[pos], ' ') << line;
    const std::string value = line.substr(pos + 1);
    ASSERT_FALSE(value.empty()) << line;
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    ASSERT_EQ(*end, '\0') << "unparseable sample value: " << line;
  }
}

TEST(PrometheusLabelTest, EscapesBackslashQuoteNewline) {
  EXPECT_EQ(PrometheusLabel("tenant", "housing"), "tenant=\"housing\"");
  EXPECT_EQ(PrometheusLabel("x", "a\\b"), "x=\"a\\\\b\"");
  EXPECT_EQ(PrometheusLabel("x", "a\"b"), "x=\"a\\\"b\"");
  EXPECT_EQ(PrometheusLabel("x", "a\nb"), "x=\"a\\nb\"");
}

TEST(PrometheusLabelTest, JoinHandlesEmptySides) {
  EXPECT_EQ(JoinPrometheusLabels("", ""), "");
  EXPECT_EQ(JoinPrometheusLabels("a=\"1\"", ""), "a=\"1\"");
  EXPECT_EQ(JoinPrometheusLabels("", "b=\"2\""), "b=\"2\"");
  EXPECT_EQ(JoinPrometheusLabels("a=\"1\"", "b=\"2\""), "a=\"1\",b=\"2\"");
}

TEST(PrometheusRendererTest, SingleHeaderPerFamilyAcrossLabelSets) {
  PrometheusRenderer out;
  out.Counter("requests_total", "Requests.", PrometheusLabel("tenant", "a"),
              3);
  out.Counter("requests_total", "Requests.", PrometheusLabel("tenant", "b"),
              4);
  out.Gauge("inflight", "In-flight.", "", 2);
  const std::string text = out.Render();
  ValidatePrometheusText(text);
  EXPECT_EQ(CountOccurrences(text, "# HELP requests_total"), 1u);
  EXPECT_EQ(CountOccurrences(text, "# TYPE requests_total counter"), 1u);
  EXPECT_NE(text.find("requests_total{tenant=\"a\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("requests_total{tenant=\"b\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE inflight gauge"), std::string::npos);
  EXPECT_NE(text.find("\ninflight 2\n"), std::string::npos);
}

TEST(PrometheusRendererTest, ValueRendering) {
  PrometheusRenderer out;
  out.Counter("c", "h", "", 5);
  out.Counter("d", "h", "", 0.25);
  const std::string text = out.Render();
  EXPECT_NE(text.find("\nc 5\n"), std::string::npos)
      << "integral values must render without a fraction";
  EXPECT_NE(text.find("\nd 0.25\n"), std::string::npos);
}

TEST(StatsToPrometheusTest, RendersEveryDbCounter) {
  Db::Stats stats;
  stats.queries_ok = 7;
  stats.queries_cancelled = 2;
  stats.queries_deadline_exceeded = 1;
  stats.queries_failed = 3;
  stats.totals.parse_seconds = 0.5;
  stats.totals.tuples_completed = 1234;
  stats.totals.models_consulted = 9;
  stats.totals.cache_hits = 4;
  stats.totals.cache_misses = 5;
  stats.totals.arenas_leased = 6;
  stats.totals.batches_joined = 2;
  stats.totals.coalesced_rows = 77;

  const std::string text = StatsToPrometheus(stats);
  ValidatePrometheusText(text);
  EXPECT_NE(text.find("restore_queries_total{outcome=\"ok\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("restore_queries_total{outcome=\"cancelled\"} 2\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("restore_queries_total{outcome=\"deadline_exceeded\"} 1\n"),
      std::string::npos);
  EXPECT_NE(text.find("restore_queries_total{outcome=\"failed\"} 3\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("restore_query_stage_seconds_total{stage=\"parse\"} 0.5\n"),
      std::string::npos);
  EXPECT_NE(text.find("restore_tuples_completed_total 1234\n"),
            std::string::npos);
  EXPECT_NE(text.find("restore_models_consulted_total 9\n"),
            std::string::npos);
  EXPECT_NE(text.find("restore_cache_hits_total 4\n"), std::string::npos);
  EXPECT_NE(text.find("restore_cache_misses_total 5\n"), std::string::npos);
  EXPECT_NE(text.find("restore_arenas_leased_total 6\n"), std::string::npos);
  EXPECT_NE(text.find("restore_batches_joined_total 2\n"), std::string::npos);
  EXPECT_NE(text.find("restore_coalesced_rows_total 77\n"),
            std::string::npos);
}

TEST(StatsToPrometheusTest, TenantLabelPrefixesEverySample) {
  Db::Stats stats;
  stats.queries_ok = 1;
  const std::string text =
      StatsToPrometheus(stats, PrometheusLabel("tenant", "h1"));
  ValidatePrometheusText(text);
  for (const std::string& line : SplitLines(text)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_NE(line.find("tenant=\"h1\""), std::string::npos) << line;
  }
  EXPECT_NE(
      text.find("restore_queries_total{tenant=\"h1\",outcome=\"ok\"} 1\n"),
      std::string::npos);
}

}  // namespace
}  // namespace restore
