#ifndef RESTORE_EXEC_EXEC_CONTROL_H_
#define RESTORE_EXEC_EXEC_CONTROL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "common/status.h"

namespace restore {

/// A cooperative cancellation handle. Default-constructed tokens are
/// NON-cancellable (cancelled() is always false and costs nothing);
/// Cancellable() creates shared state that any copy of the token can flip.
/// RequestCancel is sticky — there is no un-cancel — and safe to call from
/// any thread, including concurrently with the query it aborts.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// A token whose RequestCancel actually does something.
  static CancellationToken Cancellable() {
    CancellationToken token;
    token.state_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  /// Requests cooperative cancellation. No-op on a non-cancellable token.
  void RequestCancel() const {
    if (state_ != nullptr) state_->store(true, std::memory_order_release);
  }

  bool cancelled() const {
    return state_ != nullptr && state_->load(std::memory_order_acquire);
  }

  bool can_cancel() const { return state_ != nullptr; }

  /// The raw flag, for propagation into cancel-aware ParallelFor loops
  /// (shards skip once it is set). nullptr for non-cancellable tokens.
  const std::atomic<bool>* flag() const { return state_.get(); }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

/// How one query interacts with the Db's completion cache.
enum class CachePolicy {
  /// Honor the engine configuration (read and write when enabled).
  kDefault,
  /// Neither read nor write the cache: every execution re-runs completion.
  kBypass,
  /// Read cached joins but never insert new ones.
  kReadOnly,
};

/// Per-query timing and resource accounting. Every executed query returns
/// one on its ResultSet; the Db additionally aggregates them across queries
/// for scraping (Db::stats()).
struct ExecStats {
  double parse_seconds = 0.0;  // SQL -> Query (0 for prepared queries)
  double plan_seconds = 0.0;   // validation + column qualification
  /// Completion-path selection: ranking candidate paths for the query's
  /// incomplete tables, including the first-touch probe training behind the
  /// shared selection latch (near-zero once the selection is cached).
  /// Reported on its own so a selection-dominated query is visible instead
  /// of inflating sample_seconds.
  double selection_seconds = 0.0;
  /// Data production: completion-model sampling + completed-join build for
  /// Db execution (EXCLUDING path selection, see selection_seconds); for
  /// the classical (no-completion) executor this is the plain base-table
  /// join time.
  double sample_seconds = 0.0;
  double aggregate_seconds = 0.0;  // filter + grouped aggregation
  uint64_t tuples_completed = 0;   // synthesized tuples this query caused
  uint64_t models_consulted = 0;   // PathModel lookups this query performed
  uint64_t cache_hits = 0;         // completion-cache hits
  uint64_t cache_misses = 0;       // completion-cache misses
  uint64_t arenas_leased = 0;      // inference scratch arenas leased
  /// Cross-session batching (see PathModelConfig::batching_enabled): number
  /// of coalesced forward passes this query's sampling requests shared with
  /// at least one other request.
  uint64_t batches_joined = 0;
  /// Total time this query's requests spent queued in a SampleBatcher
  /// waiting for batch-mates before their batch executed.
  double batch_wait_seconds = 0.0;
  /// Total stacked rows of every coalesced batch this query's requests
  /// participated in (its own rows included) — the effective GEMM width its
  /// forward passes ran at.
  uint64_t coalesced_rows = 0;

  std::string ToString() const;
};

/// Knobs of one query execution, accepted by Session::Execute/ExecuteAsync,
/// PreparedQuery::Run/RunAsync, and Db::ExecuteCompleted*.
///
/// Cancellation contract: cancellation and deadlines are COOPERATIVE —
/// checked between pipeline stages, at join/aggregation row-block
/// boundaries, and between per-attribute sampling batches inside the model
/// loops. A cancelled query returns Status::Cancelled (an expired one
/// Status::DeadlineExceeded) within one sampling batch, releases every
/// leased inference arena (RAII), and leaks no pool tasks. An uncancelled
/// run is bit-identical to one without options: the checks never touch the
/// sampling RNG.
struct QueryOptions {
  /// Cooperative cancel handle; keep a copy and RequestCancel() from any
  /// thread to abort the query.
  CancellationToken cancel;

  /// Absolute deadline; time_point::max() (the default) means none.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();

  /// Hard cap on the number of tuples the query may cause to be synthesized
  /// (completion cost scales with sampled tuples). Exceeding it fails the
  /// query with Status::ResourceExhausted. 0 = unbounded.
  uint64_t max_completed_rows = 0;

  /// Completion-cache interaction of this query.
  CachePolicy cache_policy = CachePolicy::kDefault;

  /// Row-batch size of the returned ResultSet cursor (clamped to >= 1).
  size_t batch_rows = 256;

  /// Observability hook invoked with the in-flight ExecStats at every
  /// cooperative checkpoint, on the thread executing the query (the pool
  /// worker for async execution). Cancelling the token from inside the
  /// callback aborts at that very checkpoint, which makes deterministic
  /// cancellation tests possible. Keep it cheap; it runs often.
  std::function<void(const ExecStats&)> progress;

  /// Convenience: sets `deadline` to now + `timeout`.
  QueryOptions& WithTimeout(std::chrono::nanoseconds timeout) {
    deadline = std::chrono::steady_clock::now() + timeout;
    return *this;
  }
};

/// The per-execution context threaded through the executor, joins,
/// aggregation, and the PathModel completion loops. Call sites receive a
/// `const ExecContext*` that may be nullptr (internal/offline callers);
/// all methods tolerate a null `this`-less pattern via the static helpers
/// below. One ExecContext belongs to one query execution and is used from
/// the single thread driving that query (inner ParallelFor shards only ever
/// read the atomic cancel flag).
class ExecContext {
 public:
  ExecContext(const QueryOptions* options, ExecStats* stats)
      : options_(options), stats_(stats) {}

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// The cooperative checkpoint: invokes the progress callback, then tests
  /// cancellation, then the deadline. OK when neither fired.
  Status Check() const {
    if (options_ == nullptr) return Status::OK();
    if (options_->progress && stats_ != nullptr) options_->progress(*stats_);
    if (options_->cancel.cancelled()) {
      return Status::Cancelled("query cancelled by caller");
    }
    if (options_->deadline !=
            std::chrono::steady_clock::time_point::max() &&
        std::chrono::steady_clock::now() >= options_->deadline) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }

  /// Null-tolerant checkpoint helper for call sites holding a maybe-null
  /// context pointer.
  static Status Check(const ExecContext* ctx) {
    return ctx == nullptr ? Status::OK() : ctx->Check();
  }

  /// Records `n` newly synthesized tuples and enforces max_completed_rows.
  Status AddCompletedTuples(uint64_t n) const {
    if (stats_ != nullptr) stats_->tuples_completed += n;
    if (options_ != nullptr && options_->max_completed_rows > 0 &&
        stats_ != nullptr &&
        stats_->tuples_completed > options_->max_completed_rows) {
      return Status::ResourceExhausted(
          "query exceeded max_completed_rows while sampling completions");
    }
    return Status::OK();
  }

  /// Mutable per-query stats (may be nullptr for stat-less contexts).
  ExecStats* stats() const { return stats_; }

  /// The token's raw flag for cancel-aware ParallelFor propagation
  /// (nullptr when the query is not cancellable).
  const std::atomic<bool>* cancel_flag() const {
    return options_ == nullptr ? nullptr : options_->cancel.flag();
  }

  /// Absolute deadline of the query (time_point::max() when none). Exposed
  /// so shared infrastructure (once-latch waits, the sample batcher) can
  /// honor a request's deadline without invoking its progress callback from
  /// a foreign thread.
  std::chrono::steady_clock::time_point deadline() const {
    return options_ == nullptr
               ? std::chrono::steady_clock::time_point::max()
               : options_->deadline;
  }

  CachePolicy cache_policy() const {
    return options_ == nullptr ? CachePolicy::kDefault
                               : options_->cache_policy;
  }

  size_t batch_rows() const {
    if (options_ == nullptr || options_->batch_rows == 0) return 256;
    return options_->batch_rows;
  }

  /// RCU snapshot pins. Under live ingestion the Db's base data and its
  /// path models are shared_ptr epochs that can be hot-swapped mid-query;
  /// the FIRST lookup of a resource under this context pins the epoch here
  /// and every later lookup in the same query returns the pinned object, so
  /// one query never mixes two generations. Keys are owner-chosen (the Db
  /// uses "data" and "model:<path-key>"); the pinned objects are opaque to
  /// the exec layer. Like stats(), the pin map is written only from the
  /// single thread driving the query, hence const methods without locking.
  std::shared_ptr<const void> GetPin(const std::string& key) const {
    auto it = pins_.find(key);
    return it == pins_.end() ? nullptr : it->second;
  }
  void SetPin(const std::string& key, std::shared_ptr<const void> obj) const {
    pins_[key] = std::move(obj);
  }

 private:
  const QueryOptions* options_;
  ExecStats* stats_;
  mutable std::map<std::string, std::shared_ptr<const void>> pins_;
};

}  // namespace restore

#endif  // RESTORE_EXEC_EXEC_CONTROL_H_
