// Serves the housing dataset over HTTP: generates the incomplete H1/H2
// databases, opens a restore::Db per setup, and fronts them with the epoll
// server — two tenants behind one listener.
//
//   $ ./build/serve_housing [port] [scale] [model_dir]
//   $ curl localhost:8080/healthz
//   $ curl localhost:8080/v1/query -d 'SELECT COUNT(*) FROM apartment
//     GROUP BY room_type;'                   # default tenant (h1)
//   $ curl localhost:8080/v1/query/h2 -H 'X-Deadline-Ms: 5000' -d 'SELECT
//     AVG(price) FROM apartment;'
//   $ curl localhost:8080/v1/ingest/h1/apartment -d '[[9001,3,7,120.5,
//     "entire_apt","loft",4]]'               # live rows -> Db::Append
//   $ curl localhost:8080/v1/models/h1       # per-path model freshness
//   $ curl localhost:8080/metrics
//
// With a model_dir, trained models are checkpointed there periodically (one
// generational store per tenant: <model_dir>/h1, <model_dir>/h2). A failed
// save only dents save_failure_streak — /healthz reports "degraded" until
// the next save lands, and the last committed generation stays loadable
// throughout; the CI chaos lane drives exactly this with
// RESTORE_FAULT_SPEC=persist.write=fail_nth:3.
//
// SIGINT/SIGTERM shuts down gracefully (in-flight queries finish).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datagen/setups.h"
#include "restore/db.h"
#include "server/server.h"

using namespace restore;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

EngineConfig FastConfig() {
  EngineConfig config;
  config.model.epochs = 6;
  config.model.hidden_dim = 24;
  config.model.embed_dim = 4;
  config.model.max_bins = 12;
  config.model.min_train_steps = 150;
  config.max_candidates = 2;
  return config;
}

std::shared_ptr<Db> OpenSetup(const std::string& name, uint64_t seed,
                              double scale,
                              std::vector<std::unique_ptr<Database>>* keep) {
  auto complete = BuildCompleteDatabase("housing", seed, scale);
  if (!complete.ok()) {
    std::fprintf(stderr, "generating housing failed: %s\n",
                 complete.status().ToString().c_str());
    return nullptr;
  }
  auto setup = SetupByName(name);
  if (!setup.ok()) {
    std::fprintf(stderr, "unknown setup %s\n", name.c_str());
    return nullptr;
  }
  auto incomplete = ApplySetup(*complete, *setup, 0.5, 0.5, seed + 1);
  if (!incomplete.ok()) {
    std::fprintf(stderr, "deriving incomplete db failed: %s\n",
                 incomplete.status().ToString().c_str());
    return nullptr;
  }
  keep->push_back(std::make_unique<Database>(std::move(*incomplete)));
  // Background refresh on measured drift: every trained generation keeps
  // bounded per-column reference histograms, and one worker retrains a model
  // only when rows ingested via POST /v1/ingest/... actually move a column's
  // distribution (worst two-sample KS >= 0.1 or PSI >= 0.25) — a bulk load
  // drawn from the same distribution never retrains. The new generation is
  // hot-swapped in; queries keep flowing against the old one meanwhile.
  RefreshPolicy refresh;
  refresh.trigger = RefreshPolicy::Trigger::kDrift;
  refresh.drift_ks_threshold = 0.1;
  refresh.drift_psi_threshold = 0.25;
  refresh.max_concurrent_retrains = 1;
  auto db = Db::Open(keep->back().get(), AnnotationFor(*setup),
                     DbOptions()
                         .WithEngine(FastConfig())
                         .WithRefreshPolicy(refresh));
  if (!db.ok()) {
    std::fprintf(stderr, "opening Db for %s failed: %s\n", name.c_str(),
                 db.status().ToString().c_str());
    return nullptr;
  }
  return *db;
}

}  // namespace

int main(int argc, char** argv) {
  server::ServerConfig config;
  config.port = argc > 1 ? static_cast<uint16_t>(std::atoi(argv[1])) : 8080;
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.25;
  const std::string model_dir = argc > 3 ? argv[3] : "";
  config.event_threads = 2;
  config.query_threads = 4;
  config.max_inflight_queries = 32;

  // The databases must outlive the Dbs (and therefore the server).
  std::vector<std::unique_ptr<Database>> databases;
  auto h1 = OpenSetup("H1", 42, scale, &databases);
  auto h2 = OpenSetup("H2", 43, scale, &databases);
  if (h1 == nullptr || h2 == nullptr) return 1;

  server::TenantRegistry tenants;
  server::TenantOptions quota;
  quota.max_inflight_queries = 16;
  if (auto s = tenants.Add("h1", h1, quota); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (auto s = tenants.Add("h2", h2, quota); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  server::HttpServer http(&tenants, config);
  if (auto s = http.Start(); !s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("serving tenants h1 (default), h2 on http://%s:%u\n",
              config.bind_address.c_str(), http.port());
  std::printf("  POST /v1/query[/h1|/h2]  (SQL body, X-Deadline-Ms header)\n");
  std::printf("  POST /v1/ingest[/h1|/h2]/<table>  (JSON array of row "
              "arrays)\n");
  std::printf("  GET  /v1/models[/h1|/h2]  /metrics  /healthz\n");
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  const auto save_all = [&] {
    for (const auto& entry :
         {std::make_pair("h1", h1), std::make_pair("h2", h2)}) {
      Status s = entry.second->SaveModels(model_dir + "/" + entry.first);
      if (!s.ok()) {
        std::fprintf(stderr, "model save for %s failed: %s\n", entry.first,
                     s.ToString().c_str());
      }
    }
  };
  int ticks = 0;
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    // Periodic checkpoint: a failed save is reported (and surfaces on
    // /healthz via save_failure_streak) but never stops serving — the next
    // tick simply tries again against a fresh generation directory.
    if (!model_dir.empty() && ++ticks % 20 == 0) save_all();
  }

  std::printf("shutting down...\n");
  http.Stop();
  if (!model_dir.empty()) save_all();  // final checkpoint
  // Final drift report: how far each serving model had diverged from its
  // training-time reference when the server went down.
  for (const auto& entry : {std::make_pair("h1", h1), std::make_pair("h2", h2)}) {
    for (const ModelInfo& info : entry.second->Freshness()) {
      std::string path;
      for (const auto& t : info.path) {
        if (!path.empty()) path += "->";
        path += t;
      }
      if (info.drift_available) {
        std::printf("  [%s] %-30s gen %llu  drift ks=%.4f psi=%.4f (%s)\n",
                    entry.first, path.c_str(),
                    static_cast<unsigned long long>(info.generation),
                    info.drift_ks, info.drift_psi,
                    info.drift_column.empty() ? "-"
                                              : info.drift_column.c_str());
      } else {
        std::printf("  [%s] %-30s gen %llu  drift unavailable\n", entry.first,
                    path.c_str(),
                    static_cast<unsigned long long>(info.generation));
      }
    }
  }
  const server::HttpServerStats stats = http.stats();
  std::printf("served %llu requests on %llu connections "
              "(%llu queries admitted, %llu shed, %llu disconnect-cancels)\n",
              static_cast<unsigned long long>(stats.requests_total),
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.queries_admitted),
              static_cast<unsigned long long>(stats.queries_shed_global +
                                              stats.queries_shed_tenant),
              static_cast<unsigned long long>(stats.disconnect_cancels));
  return 0;
}
