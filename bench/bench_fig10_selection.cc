// Reproduces Figure 10: quality of the model/path selection strategies.
// For every setup, the bias reduction of EVERY candidate model is reported
// together with the one chosen by (a) the basic test-loss selection and
// (b) the selection informed by a suspected bias.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"

namespace restore {
namespace bench {
namespace {

int Run() {
  FigureJson json("fig10");
  std::printf("# Figure 10: model selection vs all candidate models\n");
  std::printf(
      "setup,keep_rate,removal_correlation,path,bias_reduction,"
      "chosen_by\n");
  const double housing_scale = FullGrids() ? 0.4 : 0.12;
  const double movies_scale = FullGrids() ? 0.3 : 0.08;
  std::vector<CompletionSetup> setups = HousingSetups();
  for (const auto& m : MovieSetups()) setups.push_back(m);
  const std::vector<double> keeps = FullGrids() ? KeepRates()
                                                : std::vector<double>{0.5};
  const std::vector<double> corrs =
      FullGrids() ? RemovalCorrelations() : std::vector<double>{0.6};
  for (const auto& setup : setups) {
    const double scale =
        setup.dataset == "housing" ? housing_scale : movies_scale;
    for (double keep : keeps) {
      for (double corr : corrs) {
        auto run = MakeSetupRun(setup.name, keep, corr, scale, 1300);
        if (!run.ok()) continue;
        // Annotate the suspected bias: the biased removal preferentially
        // drops high values / the chosen categorical value, so the
        // incomplete statistic underestimates the truth.
        SuspectedBias bias;
        bias.table = setup.removed_table;
        bias.column = setup.biased_column;
        bias.direction = BiasDirection::kUnderestimated;
        bias.categorical_value = setup.categorical_value;
        run->annotation.AddSuspectedBias(bias);

        auto db = OpenBenchDb(*run, BenchEngineConfig());
        if (!db.ok()) continue;
        auto cands = (*db)->CandidatesFor(setup.removed_table);
        if (!cands.ok()) continue;

        // Evaluate every candidate.
        std::vector<double> reductions;
        for (const auto& cand : *cands) {
          auto eval = EvaluatePath(*run, **db, cand.path);
          reductions.push_back(eval.ok() ? eval->bias_reduction : -1.0);
        }
        // Basic selection (test loss).
        std::vector<std::vector<std::string>> paths;
        std::vector<const PathModel*> models;
        for (const auto& cand : *cands) {
          paths.push_back(cand.path);
          models.push_back(cand.model.get());
        }
        PathModelConfig probe = BenchEngineConfig().model;
        probe.epochs = 4;
        auto basic = SelectPath(run->incomplete, run->annotation,
                                setup.removed_table, paths, models,
                                SelectionStrategy::kBestTestLoss, probe);
        auto informed = SelectPath(run->incomplete, run->annotation,
                                   setup.removed_table, paths, models,
                                   SelectionStrategy::kSuspectedBias, probe);
        for (size_t i = 0; i < paths.size(); ++i) {
          std::string chosen;
          if (basic.ok() && basic.value() == i) chosen += "selection;";
          if (informed.ok() && informed.value() == i) {
            chosen += "selection+suspected_bias;";
          }
          if (chosen.empty()) chosen = "-";
          std::string path_str;
          for (const auto& t : paths[i]) {
            if (!path_str.empty()) path_str += ">";
            path_str += t;
          }
          std::printf("%s,%.0f%%,%.0f%%,%s,%.3f,%s\n", setup.name.c_str(),
                      keep * 100, corr * 100, path_str.c_str(), reductions[i],
                      chosen.c_str());
          json.Add(
              StrFormat("%s/keep=%.0f/corr=%.0f/path=%s", setup.name.c_str(),
                        keep * 100, corr * 100, path_str.c_str()),
              {{"bias_reduction", reductions[i]},
               {"chosen_basic", basic.ok() && basic.value() == i ? 1.0 : 0.0},
               {"chosen_informed",
                informed.ok() && informed.value() == i ? 1.0 : 0.0}});
        }
        std::fflush(stdout);
      }
    }
  }
  if (Status s = json.Write(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace restore

int main() { return restore::bench::Run(); }
