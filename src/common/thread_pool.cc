#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <memory>

namespace restore {

namespace {

size_t DefaultWidth() {
  const char* env = std::getenv("RESTORE_NUM_THREADS");
  if (env != nullptr) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<size_t>(hw) : 1;
}

struct GlobalPoolState {
  std::mutex mu;
  std::unique_ptr<ThreadPool> pool;
  // Pools replaced by SetGlobalWidth, workers already stopped and joined.
  // The objects stay alive for the process lifetime so a thread that read
  // Global() just before a swap runs its work inline on a valid (worker-
  // less) pool instead of a dangling reference. Bounded by the number of
  // SetGlobalWidth calls, which only tests and bench Setup/Teardown make.
  std::vector<std::unique_ptr<ThreadPool>> retired;
};

GlobalPoolState& GlobalState() {
  static GlobalPoolState* state = [] {
    auto* s = new GlobalPoolState();
    s->pool.reset(new ThreadPool(DefaultWidth() - 1));
    return s;
  }();
  return *state;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { StopWorkers(); }

void ThreadPool::StopWorkers() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (threads_.empty()) return;
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
  std::lock_guard<std::mutex> lock(mu_);
  threads_.clear();
  stop_ = false;
}

ThreadPool& ThreadPool::Global() {
  GlobalPoolState& state = GlobalState();
  std::lock_guard<std::mutex> lock(state.mu);
  return *state.pool;
}

size_t ThreadPool::GlobalWidth() { return Global().Width(); }

void ThreadPool::SetGlobalWidth(size_t width) {
  if (width == 0) width = DefaultWidth();
  GlobalPoolState& state = GlobalState();
  std::unique_ptr<ThreadPool> fresh(new ThreadPool(width - 1));
  std::unique_ptr<ThreadPool> old;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    old = std::move(state.pool);
    state.pool = std::move(fresh);
  }
  // Outside the slot lock: joining the old workers can require running
  // queued tasks, which may themselves call Global().
  old->StopWorkers();
  std::lock_guard<std::mutex> lock(state.mu);
  state.retired.push_back(std::move(old));
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Run(std::function<void()> fn) {
  if (threads_.empty()) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& fn,
                             const std::atomic<bool>* cancel) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const auto cancelled = [cancel] {
    return cancel != nullptr && cancel->load(std::memory_order_acquire);
  };
  const size_t n = end - begin;
  const size_t shards = (n + grain - 1) / grain;
  if (shards <= 1) {
    if (!cancelled()) fn(begin, end);
    return;
  }
  if (threads_.empty()) {
    // Walk the SAME fixed-grain shards a threaded pool would, in order:
    // callers accumulate per-shard partials, so collapsing to one giant
    // shard here would change float reduction order vs. width >= 2 and
    // break the bit-identical-at-any-width contract.
    for (size_t lo = begin; lo < end; lo += grain) {
      if (cancelled()) return;
      fn(lo, lo + grain < end ? lo + grain : end);
    }
    return;
  }

  struct State {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    size_t shards;
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<State>();
  state->shards = shards;

  auto work = [state, &fn, begin, end, grain, &cancelled] {
    for (;;) {
      const size_t s = state->next.fetch_add(1, std::memory_order_relaxed);
      if (s >= state->shards) return;
      const size_t lo = begin + s * grain;
      const size_t hi = lo + grain < end ? lo + grain : end;
      // Claimed shards are still counted when skipped so the caller's wait
      // below terminates; the caller aborts on cancellation anyway.
      if (!cancelled()) fn(lo, hi);
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          state->shards) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    }
  };

  // Helpers run the SAME shared lambda as the caller; `fn` stays alive until
  // the caller's wait below completes, and late-dequeued helpers no-op once
  // every shard is claimed. The caller participates, so a saturated pool
  // degrades to inline execution instead of deadlocking.
  const size_t helpers = std::min(threads_.size(), shards - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t h = 0; h < helpers; ++h) queue_.push_back(work);
  }
  cv_.notify_all();
  work();
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) == state->shards;
    });
  }
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn,
                 const std::atomic<bool>* cancel) {
  ThreadPool::Global().ParallelFor(begin, end, grain, fn, cancel);
}

}  // namespace restore
