#ifndef RESTORE_STORAGE_DATABASE_H_
#define RESTORE_STORAGE_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/table.h"

namespace restore {

/// A foreign-key relationship: `child_table.child_column` references
/// `parent_table.parent_column` (the parent column is a primary key).
/// One parent row can have many child rows (1:n from parent to child).
struct ForeignKey {
  std::string child_table;
  std::string child_column;
  std::string parent_table;
  std::string parent_column;
};

/// A database: a set of named tables plus the foreign-key graph that connects
/// them. The FK graph is what the completion models walk to gather evidence.
class Database {
 public:
  Database() = default;

  /// Adds a table; the name must be unique.
  Status AddTable(Table table);

  Result<const Table*> GetTable(const std::string& name) const;
  Result<Table*> GetMutableTable(const std::string& name);
  bool HasTable(const std::string& name) const;
  /// Replaces an existing table with the same name.
  Status ReplaceTable(Table table);

  std::vector<std::string> TableNames() const;

  /// Registers a foreign key; both endpoints must exist.
  Status AddForeignKey(const std::string& child_table,
                       const std::string& child_column,
                       const std::string& parent_table,
                       const std::string& parent_column);

  const std::vector<ForeignKey>& foreign_keys() const {
    return foreign_keys_;
  }

  /// Finds the FK connecting `a` and `b` in either direction.
  Result<ForeignKey> FindForeignKey(const std::string& a,
                                    const std::string& b) const;

  /// Tables directly connected to `table` via some FK.
  std::vector<std::string> Neighbors(const std::string& table) const;

  /// True if moving from `from` to `to` along their FK is a fan-out hop,
  /// i.e. `from` is the parent (one `from` row can match many `to` rows).
  Result<bool> IsFanOut(const std::string& from, const std::string& to) const;

  /// Shortest path in the FK graph from `from` to `to` (inclusive on both
  /// ends), found via BFS. Errors if the tables are not connected.
  Result<std::vector<std::string>> FindJoinPath(const std::string& from,
                                                const std::string& to) const;

  /// Orders `tables` into a connected join sequence: each table after the
  /// first shares an FK with some earlier table. Errors if impossible.
  Result<std::vector<std::string>> OrderJoinTables(
      const std::vector<std::string>& tables) const;

  /// Deep copy (tables are value types; dictionaries stay shared).
  Database Clone() const;

 private:
  std::map<std::string, Table> tables_;
  std::vector<ForeignKey> foreign_keys_;
};

}  // namespace restore

#endif  // RESTORE_STORAGE_DATABASE_H_
