// Reproduces Figure 11: training time per model (AR vs SSAR) for the five
// housing and five movies setups. The paper's orderings should hold:
// AR trains faster than SSAR, and housing models train faster than movies
// models.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "restore/path_selection.h"

namespace restore {
namespace bench {
namespace {

int Run() {
  FigureJson json("fig11");
  std::printf("# Figure 11: training time per model (seconds)\n");
  std::printf("setup,model,path_len,train_seconds,parameters\n");
  const double housing_scale = FullGrids() ? 0.5 : 0.2;
  const double movies_scale = FullGrids() ? 0.4 : 0.12;
  std::vector<CompletionSetup> setups = HousingSetups();
  for (const auto& m : MovieSetups()) setups.push_back(m);
  for (const auto& setup : setups) {
    const double scale =
        setup.dataset == "housing" ? housing_scale : movies_scale;
    auto run = MakeSetupRun(setup.name, 0.5, 0.5, scale, 1400);
    if (!run.ok()) continue;
    auto paths = EnumerateCompletionPaths(run->incomplete, run->annotation,
                                          setup.removed_table, 5);
    if (paths.empty()) continue;
    for (bool ssar : {false, true}) {
      PathModelConfig config = BenchEngineConfig(ssar).model;
      auto model =
          PathModel::Train(run->incomplete, run->annotation, paths[0], config);
      if (!model.ok()) {
        std::fprintf(stderr, "%s: %s\n", setup.name.c_str(),
                     model.status().ToString().c_str());
        continue;
      }
      std::printf("%s,%s,%zu,%.3f,%zu\n", setup.name.c_str(),
                  ssar ? "SSAR" : "AR", paths[0].size(),
                  (*model)->train_seconds(), (*model)->num_parameters());
      json.Add(StrFormat("%s/%s", setup.name.c_str(), ssar ? "SSAR" : "AR"),
               {{"path_len", static_cast<double>(paths[0].size())},
                {"train_seconds", (*model)->train_seconds()},
                {"parameters",
                 static_cast<double>((*model)->num_parameters())}});
      std::fflush(stdout);
    }
  }
  if (Status s = json.Write(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace restore

int main() { return restore::bench::Run(); }
