// Tests for the PathModel (AR/SSAR completion models) and the
// incompleteness join on small synthetic data.

#include <gtest/gtest.h>

#include "datagen/incompleteness.h"
#include "datagen/synthetic.h"
#include "metrics/metrics.h"
#include "restore/incompleteness_join.h"
#include "restore/path_model.h"
#include "restore/path_selection.h"

namespace restore {
namespace {

PathModelConfig FastConfig() {
  PathModelConfig config;
  config.epochs = 20;
  config.hidden_dim = 32;
  config.embed_dim = 6;
  config.seed = 42;
  return config;
}

struct Scenario {
  Database complete;
  Database incomplete;
  SchemaAnnotation annotation;
};

Scenario MakeScenario(double predictability, double keep_rate,
                      double correlation, uint64_t seed = 50) {
  SyntheticConfig config;
  config.num_parents = 400;
  config.predictability = predictability;
  config.seed = seed;
  auto complete = GenerateSynthetic(config);
  EXPECT_TRUE(complete.ok());
  BiasedRemovalConfig removal;
  removal.table = "table_b";
  removal.column = "b";
  removal.keep_rate = keep_rate;
  removal.removal_correlation = correlation;
  removal.seed = seed + 1;
  auto incomplete = ApplyBiasedRemoval(*complete, removal);
  EXPECT_TRUE(incomplete.ok());
  EXPECT_TRUE(ThinTupleFactors(&*incomplete, 0.3, seed + 2).ok());
  Scenario s{std::move(*complete), std::move(*incomplete), {}};
  s.annotation.MarkIncomplete("table_b");
  return s;
}

TEST(PathModelTest, TrainsAndReportsLosses) {
  Scenario s = MakeScenario(0.9, 0.5, 0.5);
  auto model = PathModel::Train(s.incomplete, s.annotation,
                                {"table_a", "table_b"}, FastConfig());
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_GT((*model)->test_loss(), 0.0);
  EXPECT_GT((*model)->target_test_loss(), 0.0);
  EXPECT_GT((*model)->train_seconds(), 0.0);
  EXPECT_GT((*model)->num_parameters(), 0u);
  EXPECT_EQ((*model)->path().size(), 2u);
  EXPECT_TRUE((*model)->HopIsFanOut(0));
  EXPECT_GE((*model)->TfAttrIndex(0), 0);
}

TEST(PathModelTest, HigherPredictabilityGivesLowerTargetLoss) {
  Scenario predictable = MakeScenario(1.0, 0.5, 0.4, 60);
  Scenario noisy = MakeScenario(0.2, 0.5, 0.4, 60);
  auto m1 = PathModel::Train(predictable.incomplete, predictable.annotation,
                             {"table_a", "table_b"}, FastConfig());
  auto m2 = PathModel::Train(noisy.incomplete, noisy.annotation,
                             {"table_a", "table_b"}, FastConfig());
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  EXPECT_LT((*m1)->target_test_loss(), (*m2)->target_test_loss());
}

TEST(PathModelTest, RejectsTrivialPaths) {
  Scenario s = MakeScenario(0.8, 0.5, 0.5);
  EXPECT_FALSE(
      PathModel::Train(s.incomplete, s.annotation, {"table_b"}, FastConfig())
          .ok());
}

TEST(IncompletenessJoinTest, RestoresCardinality) {
  Scenario s = MakeScenario(0.9, 0.4, 0.5, 70);
  auto model = PathModel::Train(s.incomplete, s.annotation,
                                {"table_a", "table_b"}, FastConfig());
  ASSERT_TRUE(model.ok()) << model.status();
  IncompletenessJoinExecutor exec(&s.incomplete, &s.annotation);
  Rng rng(71);
  auto result = exec.CompletePathJoin(**model, rng);
  ASSERT_TRUE(result.ok()) << result.status();

  const size_t true_rows = (*s.complete.GetTable("table_b").value()).NumRows();
  const size_t incomplete_rows =
      (*s.incomplete.GetTable("table_b").value()).NumRows();
  const size_t completed_rows =
      incomplete_rows + result->synthesized_counts["table_b"];
  // Completion must move the cardinality most of the way back.
  const double correction =
      CardinalityCorrection(true_rows, incomplete_rows, completed_rows);
  EXPECT_GT(correction, 0.5)
      << "true=" << true_rows << " incomplete=" << incomplete_rows
      << " completed=" << completed_rows;
  // The completed join contains existing + synthesized rows.
  EXPECT_EQ(result->joined.NumRows(),
            result->existing_join_rows + result->synthesized_join_rows);
  EXPECT_TRUE(result->joined.HasColumn("table_a.a"));
  EXPECT_TRUE(result->joined.HasColumn("table_b.b"));
}

TEST(IncompletenessJoinTest, ReducesBiasWhenPredictable) {
  Scenario s = MakeScenario(1.0, 0.4, 0.6, 80);
  auto model = PathModel::Train(s.incomplete, s.annotation,
                                {"table_a", "table_b"}, FastConfig());
  ASSERT_TRUE(model.ok()) << model.status();
  IncompletenessJoinExecutor exec(&s.incomplete, &s.annotation);
  Rng rng(81);
  auto result = exec.CompletePathJoin(**model, rng);
  ASSERT_TRUE(result.ok()) << result.status();

  // Fraction of the most biased value on complete/incomplete/completed data.
  auto fraction = [](const Table& t, const std::string& value) {
    auto f = CategoricalFraction(t, "b", value);
    EXPECT_TRUE(f.ok());
    return f.value();
  };
  const Table& complete_b = *s.complete.GetTable("table_b").value();
  const Table& incomplete_b = *s.incomplete.GetTable("table_b").value();
  // Find the value with the largest deviation.
  std::string worst;
  double worst_dev = -1.0;
  for (size_t code = 0;
       code < complete_b.GetColumn("b").value()->dictionary()->size();
       ++code) {
    const std::string value =
        complete_b.GetColumn("b").value()->dictionary()->ValueOf(
            static_cast<int64_t>(code));
    const double dev =
        std::abs(fraction(complete_b, value) - fraction(incomplete_b, value));
    if (dev > worst_dev) {
      worst_dev = dev;
      worst = value;
    }
  }
  ASSERT_GT(worst_dev, 0.02) << "removal produced no bias to correct";

  // Completed fraction: existing + synthesized values.
  const auto& synth_cols = result->synthesized.at("table_b");
  const Column* synth_b = nullptr;
  for (const auto& c : synth_cols) {
    if (c.name() == "b") synth_b = &c;
  }
  ASSERT_NE(synth_b, nullptr);
  const Column* inc_b = incomplete_b.GetColumn("b").value();
  const int64_t code =
      inc_b->dictionary()->Lookup(worst).value();
  size_t hits = 0;
  for (size_t r = 0; r < inc_b->size(); ++r) {
    if (inc_b->GetCode(r) == code) ++hits;
  }
  for (size_t r = 0; r < synth_b->size(); ++r) {
    if (synth_b->GetCode(r) == code) ++hits;
  }
  const double completed_fraction =
      static_cast<double>(hits) /
      static_cast<double>(inc_b->size() + synth_b->size());
  const double reduction =
      BiasReduction(fraction(complete_b, worst), fraction(incomplete_b, worst),
                    completed_fraction);
  EXPECT_GT(reduction, 0.3) << "value=" << worst;
}

TEST(IncompletenessJoinTest, RecordsPredictiveDistributions) {
  Scenario s = MakeScenario(0.9, 0.5, 0.4, 90);
  auto model = PathModel::Train(s.incomplete, s.annotation,
                                {"table_a", "table_b"}, FastConfig());
  ASSERT_TRUE(model.ok());
  IncompletenessJoinExecutor exec(&s.incomplete, &s.annotation);
  Rng rng(91);
  CompletionOptions options;
  options.record_table = "table_b";
  options.record_column = "b";
  auto result = exec.CompletePathJoin(**model, rng, options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_GT(result->recorded_probs.size(), 0u);
  EXPECT_EQ(result->recorded_probs.size(),
            result->synthesized_counts["table_b"]);
  for (const auto& probs : result->recorded_probs) {
    double sum = 0.0;
    for (float p : probs) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
}

TEST(IncompletenessJoinTest, RefusesIncompleteRoot) {
  Scenario s = MakeScenario(0.9, 0.5, 0.4, 95);
  s.annotation.MarkIncomplete("table_a");
  auto model = PathModel::Train(s.incomplete, s.annotation,
                                {"table_a", "table_b"}, FastConfig());
  ASSERT_TRUE(model.ok());
  IncompletenessJoinExecutor exec(&s.incomplete, &s.annotation);
  Rng rng(96);
  EXPECT_FALSE(exec.CompletePathJoin(**model, rng).ok());
}

TEST(PathSelectionTest, EnumeratesOnlyCompleteRoots) {
  Scenario s = MakeScenario(0.9, 0.5, 0.4, 97);
  auto paths =
      EnumerateCompletionPaths(s.incomplete, s.annotation, "table_b", 4);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0],
            (std::vector<std::string>{"table_a", "table_b"}));
}

TEST(PathSelectionTest, BestTestLossPicksLowerLossModel) {
  Scenario s = MakeScenario(0.9, 0.5, 0.4, 98);
  auto good = PathModel::Train(s.incomplete, s.annotation,
                               {"table_a", "table_b"}, FastConfig());
  ASSERT_TRUE(good.ok());
  // An untrained (0-epoch) model has a higher test loss.
  PathModelConfig bad_config = FastConfig();
  bad_config.epochs = 0;
  auto bad = PathModel::Train(s.incomplete, s.annotation,
                              {"table_a", "table_b"}, bad_config);
  ASSERT_TRUE(bad.ok());
  std::vector<std::vector<std::string>> candidates{
      {"table_a", "table_b"}, {"table_a", "table_b"}};
  std::vector<const PathModel*> models{bad->get(), good->get()};
  auto pick = SelectPath(s.incomplete, s.annotation, "table_b", candidates,
                         models, SelectionStrategy::kBestTestLoss,
                         FastConfig());
  ASSERT_TRUE(pick.ok()) << pick.status();
  EXPECT_EQ(pick.value(), 1u);
}

TEST(PathModelTest, SsarFallsBackToArWithoutFanOut) {
  // A path whose only hop is n:1 has no fan-out evidence; SSAR must
  // gracefully degrade to a plain AR model.
  Scenario s = MakeScenario(0.9, 0.5, 0.4, 99);
  s.annotation = SchemaAnnotation();
  s.annotation.MarkIncomplete("table_a");
  PathModelConfig config = FastConfig();
  config.use_ssar = true;
  auto model = PathModel::Train(s.incomplete, s.annotation,
                                {"table_b", "table_a"}, config);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_FALSE((*model)->is_ssar());
}

TEST(PathModelTest, SsarTrainsWithSelfEvidence) {
  SyntheticConfig config;
  config.num_parents = 300;
  config.fanout_predictability = 0.9;
  config.seed = 100;
  auto complete = GenerateSynthetic(config);
  ASSERT_TRUE(complete.ok());
  BiasedRemovalConfig removal;
  removal.table = "table_b";
  removal.column = "b";
  removal.keep_rate = 0.6;
  removal.removal_correlation = 0.4;
  removal.seed = 101;
  auto incomplete = ApplyBiasedRemoval(*complete, removal);
  ASSERT_TRUE(incomplete.ok());
  SchemaAnnotation annotation;
  annotation.MarkIncomplete("table_b");

  PathModelConfig ssar_config = FastConfig();
  ssar_config.use_ssar = true;
  auto ssar = PathModel::Train(*incomplete, annotation,
                               {"table_a", "table_b"}, ssar_config);
  ASSERT_TRUE(ssar.ok()) << ssar.status();
  EXPECT_TRUE((*ssar)->is_ssar());

  auto ar = PathModel::Train(*incomplete, annotation, {"table_a", "table_b"},
                             FastConfig());
  ASSERT_TRUE(ar.ok());
  // With group-coherent data the self-evidence must help: SSAR's target
  // loss should not be (much) worse than AR's.
  EXPECT_LT((*ssar)->target_test_loss(),
            (*ar)->target_test_loss() + 0.15);
}

}  // namespace
}  // namespace restore
