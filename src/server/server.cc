#include "server/server.h"

#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/fault_injection.h"
#include "restore/stats_prometheus.h"
#include "server/http.h"

#ifdef __linux__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace restore {
namespace server {

struct HttpServer::LoopConnections {
  std::unordered_map<Connection*, std::shared_ptr<Connection>> map;
};

#ifdef __linux__

namespace {

int HttpStatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kCancelled:
      return 499;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kResourceExhausted:
    case StatusCode::kUnavailable:
      return 503;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    default:
      return 500;
  }
}

std::string ErrorBody(const std::string& code, const std::string& message) {
  return "{\"error\":{\"code\":\"" + JsonEscape(code) + "\",\"message\":\"" +
         JsonEscape(message) + "\"}}";
}

std::string ErrorResponse(const Status& status, bool keep_alive) {
  const int http_status = HttpStatusFor(status);
  std::vector<std::pair<std::string, std::string>> headers;
  if (http_status == 503) {
    // Overload and open breakers are transient by construction (bounded
    // queue wait, bounded breaker window): tell well-behaved clients when
    // to come back instead of letting them hammer the shed path.
    headers.emplace_back("Retry-After", "1");
  }
  return BuildResponse(http_status, "application/json",
                       ErrorBody(StatusCodeName(status.code()),
                                 status.message()),
                       keep_alive, headers);
}

void AppendJsonStringArray(std::string* out,
                           const std::vector<std::string>& values) {
  *out += '[';
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) *out += ',';
    *out += '"' + JsonEscape(values[i]) + '"';
  }
  *out += ']';
}

/// Maps one positional JSON row onto the table's column types. Strict: a
/// kInt64 column takes only integral numbers, kDouble only numbers,
/// kCategorical only strings; null is accepted everywhere.
Status JsonRowToValues(const JsonValue& row,
                       const std::vector<Column>& columns, size_t row_index,
                       std::vector<Value>* out) {
  if (row.kind != JsonValue::Kind::kArray) {
    return Status::InvalidArgument(
        "row " + std::to_string(row_index) + " is not a JSON array");
  }
  if (row.array.size() != columns.size()) {
    return Status::InvalidArgument(
        "row " + std::to_string(row_index) + " has " +
        std::to_string(row.array.size()) + " values, expected " +
        std::to_string(columns.size()));
  }
  out->clear();
  out->reserve(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) {
    const JsonValue& cell = row.array[c];
    const auto cell_error = [&](const char* expected) {
      return Status::InvalidArgument(
          "row " + std::to_string(row_index) + ", column '" +
          columns[c].name() + "': expected " + expected);
    };
    if (cell.kind == JsonValue::Kind::kNull) {
      out->push_back(Value::Null());
      continue;
    }
    switch (columns[c].type()) {
      case ColumnType::kCategorical:
        if (cell.kind != JsonValue::Kind::kString) {
          return cell_error("a string (categorical column)");
        }
        out->push_back(Value::Categorical(cell.string_value));
        break;
      case ColumnType::kDouble:
        if (cell.kind != JsonValue::Kind::kNumber) {
          return cell_error("a number (double column)");
        }
        out->push_back(Value::Double(cell.number));
        break;
      case ColumnType::kInt64: {
        if (cell.kind != JsonValue::Kind::kNumber) {
          return cell_error("an integer (int64 column)");
        }
        // Integer literals re-parse the original token with strtoll: the
        // parsed double has already rounded integers above 2^53, so checking
        // integrality on it would silently store a perturbed value.
        const std::string& text = cell.number_text;
        if (text.find_first_of(".eE") == std::string::npos) {
          errno = 0;
          char* end = nullptr;
          const long long v = std::strtoll(text.c_str(), &end, 10);
          if (errno == ERANGE || end != text.c_str() + text.size()) {
            return cell_error("an integer in int64 range (int64 column)");
          }
          out->push_back(Value::Int64(v));
        } else {
          // Fraction/exponent form: accept only values a double represents
          // exactly as an in-range integer (range-check BEFORE the int64
          // cast, which is undefined for out-of-range doubles).
          const double v = cell.number;
          if (v < -9.2233720368547758e18 || v >= 9.2233720368547758e18 ||
              v != static_cast<double>(static_cast<int64_t>(v))) {
            return cell_error("an integer (int64 column)");
          }
          out->push_back(Value::Int64(static_cast<int64_t>(v)));
        }
        break;
      }
    }
  }
  return Status::OK();
}

/// One Db::Freshness() entry as a JSON object.
std::string ModelInfoJson(const ModelInfo& info) {
  std::string out = "{\"path\":";
  AppendJsonStringArray(&out, info.path);
  out += ",\"generation\":" + std::to_string(info.generation);
  out += ",\"trained_rows\":" + std::to_string(info.trained_rows);
  out += ",\"current_rows\":" + std::to_string(info.current_rows);
  out += ",\"staleness_rows\":" + std::to_string(info.staleness_rows);
  out += ",\"train_seconds\":" + JsonNumber(info.train_seconds);
  out += info.refreshing ? ",\"refreshing\":true" : ",\"refreshing\":false";
  out += info.loaded_from_disk ? ",\"loaded_from_disk\":true"
                               : ",\"loaded_from_disk\":false";
  out += info.drift_available ? ",\"drift_available\":true"
                              : ",\"drift_available\":false";
  out += ",\"drift_ks\":" + JsonNumber(info.drift_ks);
  out += ",\"drift_psi\":" + JsonNumber(info.drift_psi);
  out += ",\"drift_column\":\"" + JsonEscape(info.drift_column) + "\"";
  out += info.breaker_open ? ",\"breaker_open\":true"
                           : ",\"breaker_open\":false";
  out += ",\"consecutive_failures\":" +
         std::to_string(info.consecutive_failures) + "}";
  return out;
}

/// The streamed 200 response of a query: chunk 1 carries the schema and
/// opens the row array, every ResultSet batch becomes one chunk of row
/// tuples, and the final chunk closes the array and appends the per-query
/// ExecStats — so a client renders rows as chunks arrive and still gets the
/// accounting that only exists once the query finished.
std::string QueryResponse(const std::string& tenant, ResultSet& rs,
                          bool keep_alive) {
  std::string out = BuildChunkedResponseHead(200, "application/json",
                                             keep_alive);
  std::string head = "{\"tenant\":\"" + JsonEscape(tenant) +
                     "\",\"key_columns\":";
  AppendJsonStringArray(&head, rs.key_columns());
  head += ",\"value_columns\":";
  AppendJsonStringArray(&head, rs.value_columns());
  head += ",\"rows\":[";
  out += EncodeChunk(head);

  rs.Rewind();
  ResultBatch batch;
  bool first_row = true;
  while (rs.NextBatch(&batch)) {
    std::string chunk;
    for (size_t r = 0; r < batch.rows; ++r) {
      if (!first_row) chunk += ',';
      first_row = false;
      chunk += '[';
      for (size_t c = 0; c < rs.num_key_columns(); ++c) {
        if (c > 0) chunk += ',';
        chunk += '"' + JsonEscape(batch.key(r, c)) + '"';
      }
      for (size_t c = 0; c < rs.num_value_columns(); ++c) {
        if (c > 0 || rs.num_key_columns() > 0) chunk += ',';
        chunk += JsonNumber(batch.value(r, c));
      }
      chunk += ']';
    }
    out += EncodeChunk(chunk);
  }

  const ExecStats& s = rs.stats();
  std::string tail = "],\"row_count\":" + std::to_string(rs.num_rows());
  tail += ",\"stats\":{";
  tail += "\"parse_seconds\":" + JsonNumber(s.parse_seconds);
  tail += ",\"plan_seconds\":" + JsonNumber(s.plan_seconds);
  tail += ",\"selection_seconds\":" + JsonNumber(s.selection_seconds);
  tail += ",\"sample_seconds\":" + JsonNumber(s.sample_seconds);
  tail += ",\"aggregate_seconds\":" + JsonNumber(s.aggregate_seconds);
  tail += ",\"tuples_completed\":" + std::to_string(s.tuples_completed);
  tail += ",\"models_consulted\":" + std::to_string(s.models_consulted);
  tail += ",\"cache_hits\":" + std::to_string(s.cache_hits);
  tail += ",\"cache_misses\":" + std::to_string(s.cache_misses);
  tail += "}}";
  out += EncodeChunk(tail);
  out += FinalChunk();
  return out;
}

}  // namespace

// ---- Connection -------------------------------------------------------------

struct HttpServer::Connection
    : public EventLoop::Handler,
      public std::enable_shared_from_this<HttpServer::Connection> {
  enum class State { kReading, kProcessing, kWriting, kClosed };

  HttpServer* server;
  EventLoop* loop;
  size_t loop_index;
  int fd;
  HttpRequestParser parser;
  std::string out;
  State state = State::kReading;
  uint32_t watched = 0;  // currently registered epoll mask (0 = none)
  bool peer_gone = false;
  bool close_after_response = false;
  bool current_keep_alive = true;
  /// Token of the in-flight query while kProcessing; RequestCancel on it is
  /// the disconnect -> cancellation bridge. Written on the loop thread at
  /// dispatch (before the worker job is queued), only signalled afterwards.
  CancellationToken inflight_cancel;

  Connection(HttpServer* server, EventLoop* loop, size_t loop_index, int fd)
      : server(server),
        loop(loop),
        loop_index(loop_index),
        fd(fd),
        parser(server->config().max_request_head_bytes,
               server->config().max_request_body_bytes) {}

  // All methods below run on the connection's loop thread.

  void OnEvent(uint32_t events) override {
    auto self = shared_from_this();
    if (state == State::kClosed) return;
    if (events & EPOLLERR) {
      Abort();
      return;
    }
    if (state == State::kProcessing) {
      // Only EPOLLRDHUP is registered while a query is in flight: any event
      // here means the client is gone.
      PeerGoneMidQuery();
      return;
    }
    if ((events & EPOLLOUT) && state == State::kWriting) HandleWritable();
    if (state == State::kReading &&
        (events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP))) {
      HandleReadable();
    }
  }

  void UpdateEvents(uint32_t mask) {
    if (mask == watched) return;
    if (watched == 0) {
      (void)loop->Add(fd, mask, this);
    } else if (mask == 0) {
      loop->Del(fd);
    } else {
      (void)loop->Mod(fd, mask, this);
    }
    watched = mask;
  }

  void HandleReadable() {
    char buf[16 * 1024];
    while (state == State::kReading) {
      if (FaultInjection::Enabled() &&
          !FaultInjection::Fire("server.read").ok()) {
        Abort();  // injected socket-level read failure
        return;
      }
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n > 0) {
        const auto parse_state =
            parser.Feed(buf, static_cast<size_t>(n));
        if (parse_state == HttpRequestParser::State::kComplete) {
          server->Dispatch(shared_from_this());
          return;  // reading resumes after the response flushed
        }
        if (parse_state == HttpRequestParser::State::kError) {
          RespondParseError();
          return;
        }
        continue;
      }
      if (n == 0) {
        Abort();  // clean EOF between requests
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      Abort();
      return;
    }
  }

  void RespondParseError() {
    server->bad_requests_.fetch_add(1, std::memory_order_relaxed);
    SendResponse(
        BuildResponse(parser.error_status(), "application/json",
                      ErrorBody("BadRequest", parser.error_reason()),
                      /*keep_alive=*/false),
        /*keep_alive=*/false);
  }

  /// Queues `bytes` as the response of the current request and starts
  /// flushing. `keep_alive` decides the connection's fate afterwards.
  void SendResponse(std::string bytes, bool keep_alive) {
    out += bytes;
    close_after_response = !keep_alive;
    state = State::kWriting;
    HandleWritable();
  }

  void HandleWritable() {
    while (!out.empty()) {
      if (FaultInjection::Enabled() &&
          !FaultInjection::Fire("server.write").ok()) {
        Abort();  // injected socket-level write failure
        return;
      }
      const ssize_t n = ::send(fd, out.data(), out.size(), MSG_NOSIGNAL);
      if (n > 0) {
        out.erase(0, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        UpdateEvents(EPOLLOUT);
        return;
      }
      if (n < 0 && errno == EINTR) continue;
      Abort();
      return;
    }
    // Response fully flushed.
    if (close_after_response) {
      Abort();
      return;
    }
    state = State::kReading;
    UpdateEvents(EPOLLIN | EPOLLRDHUP);
    // A pipelined next request may already be buffered in the parser.
    const auto parse_state = parser.Reset();
    if (parse_state == HttpRequestParser::State::kComplete) {
      server->Dispatch(shared_from_this());
    } else if (parse_state == HttpRequestParser::State::kError) {
      RespondParseError();
    }
  }

  void PeerGoneMidQuery() {
    peer_gone = true;
    if (inflight_cancel.can_cancel()) {
      inflight_cancel.RequestCancel();
      server->disconnect_cancels_.fetch_add(1, std::memory_order_relaxed);
    }
    // Stop watching; the fd stays open until the worker's completion
    // arrives so the number cannot be reused under the in-flight query.
    UpdateEvents(0);
  }

  /// Worker completion (posted to the loop): the query finished and its
  /// response bytes are ready.
  void CompleteRequest(std::string bytes, bool keep_alive) {
    if (state == State::kClosed) return;
    if (peer_gone) {
      Abort();
      return;
    }
    state = State::kWriting;  // so SendResponse's write path applies
    SendResponse(std::move(bytes), keep_alive);
  }

  /// Closes the connection now (abort or orderly after-close); drops any
  /// unflushed bytes.
  void Abort() {
    if (state == State::kClosed) return;
    UpdateEvents(0);
    ::close(fd);
    state = State::kClosed;
    server->connections_active_.fetch_sub(1, std::memory_order_relaxed);
    server->ForgetConnection(loop_index, this);
  }
};

// ---- Acceptor ---------------------------------------------------------------

class HttpServer::Acceptor : public EventLoop::Handler {
 public:
  explicit Acceptor(HttpServer* server) : server_(server) {}

  void OnEvent(uint32_t events) override {
    if ((events & EPOLLIN) == 0) return;
    while (true) {
      const int fd = ::accept4(server_->listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN (drained) or the listen fd went away during Stop
      }
      if (FaultInjection::Enabled() &&
          !FaultInjection::Fire("server.accept").ok()) {
        // Injected accept failure: the client sees a reset, the server
        // keeps accepting — exactly how a transient accept error degrades.
        ::close(fd);
        server_->connections_shed_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (server_->connections_active_.load(std::memory_order_relaxed) >=
          server_->config_.max_connections) {
        ::close(fd);
        server_->connections_shed_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      server_->connections_accepted_.fetch_add(1, std::memory_order_relaxed);
      server_->connections_active_.fetch_add(1, std::memory_order_relaxed);
      server_->AdoptConnection(fd);
    }
  }

 private:
  HttpServer* server_;
};

// ---- WorkerPool -------------------------------------------------------------

/// Dedicated query-execution threads. Session::Execute blocks (sampling,
/// possibly first-touch training), so queries must never run on an event
/// thread; and the shared NN ThreadPool may be width 1 (zero workers, tasks
/// run inline on the submitter), which would block the event loop too.
class HttpServer::WorkerPool {
 public:
  explicit WorkerPool(size_t num_threads) {
    threads_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      threads_.emplace_back([this] { Loop(); });
    }
  }

  ~WorkerPool() { Stop(); }

  void Submit(std::function<void()> job) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(job));
    }
    cv_.notify_one();
  }

  /// Finishes every queued job, then joins. Idempotent.
  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) return;
      stopped_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
    threads_.clear();
  }

 private:
  void Loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopped_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopped_ and drained
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      job();
    }
  }

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopped_ = false;
};

// ---- HttpServer -------------------------------------------------------------

HttpServer::HttpServer(const TenantRegistry* tenants, ServerConfig config)
    : tenants_(tenants),
      config_(std::move(config)),
      query_admission_(config_.max_inflight_queries,
                       config_.admission_queue_depth) {
  if (config_.event_threads == 0) config_.event_threads = 1;
  if (config_.query_threads == 0) config_.query_threads = 1;
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (running_) return Status::FailedPrecondition("server already running");
  if (tenants_ == nullptr || tenants_->size() == 0) {
    return Status::InvalidArgument("no tenants registered");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " +
                                   config_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, config_.listen_backlog) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind/listen on " + config_.bind_address + ":" +
                            std::to_string(config_.port) + ": " + err);
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                &addr_len);
  port_ = ntohs(addr.sin_port);

  loops_.clear();
  conns_.clear();
  for (size_t i = 0; i < config_.event_threads; ++i) {
    loops_.push_back(std::make_unique<EventLoop>());
    conns_.push_back(std::make_unique<LoopConnections>());
    Status s = loops_.back()->Init();
    if (!s.ok()) {
      loops_.clear();
      conns_.clear();
      ::close(listen_fd_);
      listen_fd_ = -1;
      return s;
    }
  }

  acceptor_ = std::make_unique<Acceptor>(this);
  Status s = loops_[0]->Add(listen_fd_, EPOLLIN, acceptor_.get());
  if (!s.ok()) {
    loops_.clear();
    conns_.clear();
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }

  workers_ = std::make_unique<WorkerPool>(config_.query_threads);
  for (auto& loop : loops_) loop->Start();
  running_ = true;
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_) return;

  // 1. Stop accepting: unregister and close the listen socket on the
  //    acceptor's own loop thread so no accept runs concurrently.
  {
    std::promise<void> done;
    EventLoop* loop0 = loops_[0].get();
    const int fd = listen_fd_;
    loop0->Post([this, loop0, fd, &done] {
      loop0->Del(fd);
      ::close(fd);
      listen_fd_ = -1;
      done.set_value();
    });
    done.get_future().wait();
  }

  // 2. Let every admitted query finish; their completions are posted to the
  //    loops in order, ahead of the teardown below.
  workers_->Stop();

  // 3. Flush/close all connections on their own threads, then stop loops.
  for (size_t i = 0; i < loops_.size(); ++i) {
    EventLoop* loop = loops_[i].get();
    LoopConnections* conns = conns_[i].get();
    loop->Post([conns] {
      std::vector<std::shared_ptr<Connection>> snapshot;
      snapshot.reserve(conns->map.size());
      for (auto& [ptr, sp] : conns->map) snapshot.push_back(sp);
      for (auto& conn : snapshot) conn->Abort();
    });
    loop->Stop();
  }
  loops_.clear();
  conns_.clear();
  acceptor_.reset();
  workers_.reset();
  running_ = false;
}

EventLoop* HttpServer::NextLoop() {
  const size_t i =
      next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
  return loops_[i].get();
}

void HttpServer::AdoptConnection(int fd) {
  const size_t index =
      next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
  EventLoop* loop = loops_[index].get();
  LoopConnections* conns = conns_[index].get();
  loop->Post([this, loop, conns, index, fd] {
    auto conn = std::make_shared<Connection>(this, loop, index, fd);
    conns->map.emplace(conn.get(), conn);
    conn->UpdateEvents(EPOLLIN | EPOLLRDHUP);
  });
}

void HttpServer::ForgetConnection(size_t loop_index, Connection* conn) {
  conns_[loop_index]->map.erase(conn);
}

void HttpServer::Dispatch(std::shared_ptr<Connection> conn) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  const HttpRequest& req = conn->parser.request();
  const std::string path = req.Path();
  const bool keep_alive = req.KeepAlive();
  conn->current_keep_alive = keep_alive;

  if (path == "/healthz") {
    // Still 200 while degraded — the process is alive and answering (stale
    // generations keep serving); the body names what is limping so probes
    // and smoke tests can tell "healthy" from "degraded but up". The
    // healthy body stays exactly "ok\n".
    std::string reasons;
    const auto add_reason = [&reasons](const std::string& r) {
      if (!reasons.empty()) reasons += ", ";
      reasons += r;
    };
    for (const auto& tenant : tenants_->tenants()) {
      const std::shared_ptr<Db>& db = tenant->db();
      if (db->breakers_open() > 0) {
        add_reason("breakers_open(" + tenant->name() + ")");
      }
      if (db->refresh_failure_streak() > 0) {
        add_reason("refresh_failures(" + tenant->name() + ")");
      }
      if (db->save_failure_streak() > 0) {
        add_reason("save_failures(" + tenant->name() + ")");
      }
    }
    if (config_.admission_queue_depth > 0 &&
        query_admission_.queued_now() >= config_.admission_queue_depth) {
      add_reason("admission_queue_saturated");
    }
    const std::string body =
        reasons.empty() ? "ok\n" : "degraded: " + reasons + "\n";
    conn->SendResponse(BuildResponse(200, "text/plain", body, keep_alive),
                       keep_alive);
    return;
  }
  if (path == "/metrics") {
    conn->SendResponse(
        BuildResponse(200, "text/plain; version=0.0.4; charset=utf-8",
                      RenderMetrics(), keep_alive),
        keep_alive);
    return;
  }

  const std::string models_prefix = "/v1/models";
  if (path.compare(0, models_prefix.size(), models_prefix) == 0 &&
      (path.size() == models_prefix.size() ||
       path[models_prefix.size()] == '/')) {
    if (req.method != "GET") {
      conn->SendResponse(
          BuildResponse(405, "application/json",
                        ErrorBody("MethodNotAllowed", "use GET"), keep_alive),
          keep_alive);
      return;
    }
    std::string tenant_name;
    if (path.size() > models_prefix.size() + 1) {
      tenant_name = path.substr(models_prefix.size() + 1);
    }
    if (tenant_name.find('/') != std::string::npos) {
      conn->SendResponse(
          BuildResponse(404, "application/json",
                        ErrorBody("NotFound", "no such route: " + path),
                        keep_alive),
          keep_alive);
      return;
    }
    int status = 200;
    const std::string body = RenderModels(tenant_name, &status);
    conn->SendResponse(
        BuildResponse(status, "application/json", body, keep_alive),
        keep_alive);
    return;
  }

  const std::string ingest_prefix = "/v1/ingest/";
  if (path.compare(0, ingest_prefix.size(), ingest_prefix) == 0) {
    if (req.method != "POST") {
      conn->SendResponse(
          BuildResponse(405, "application/json",
                        ErrorBody("MethodNotAllowed",
                                  "use POST with a JSON array of row arrays "
                                  "as the body"),
                        keep_alive),
          keep_alive);
      return;
    }
    // One trailing segment addresses a table of the default tenant, two are
    // <tenant>/<table> — mirroring /v1/query's tenant addressing.
    const std::string rest = path.substr(ingest_prefix.size());
    std::string tenant_name;
    std::string table = rest;
    const size_t slash = rest.find('/');
    if (slash != std::string::npos) {
      tenant_name = rest.substr(0, slash);
      table = rest.substr(slash + 1);
    }
    if (table.empty() || table.find('/') != std::string::npos) {
      conn->SendResponse(
          BuildResponse(404, "application/json",
                        ErrorBody("NotFound", "no such route: " + path),
                        keep_alive),
          keep_alive);
      return;
    }

    // Ingestion shares the query admission bounds: it occupies a worker and
    // serializes on the writer lock, so unbounded ingest bursts would starve
    // queries exactly like unbounded queries would. In queue mode admission
    // moves to the worker (AcquireQueued blocks; event threads never do),
    // so both slots stay empty here and the worker fills them.
    const bool queue_mode = config_.admission_queue_depth > 0;
    AdmissionSlot global_slot;
    AdmissionSlot tenant_slot;
    if (!queue_mode) {
      if (!query_admission_.TryAcquire()) {
        conn->SendResponse(
            ErrorResponse(Status::ResourceExhausted(
                              "server query capacity exhausted"),
                          keep_alive),
            keep_alive);
        return;
      }
      global_slot = AdmissionSlot(&query_admission_);
    }
    std::shared_ptr<Tenant> tenant = tenants_->Resolve(tenant_name);
    if (tenant == nullptr) {
      conn->SendResponse(
          BuildResponse(404, "application/json",
                        ErrorBody("NotFound",
                                  "unknown tenant: '" + tenant_name + "'"),
                        keep_alive),
          keep_alive);
      return;
    }
    if (!queue_mode) {
      if (!tenant->admission().TryAcquire()) {
        tenant_shed_.fetch_add(1, std::memory_order_relaxed);
        conn->SendResponse(
            ErrorResponse(Status::ResourceExhausted(
                              "tenant '" + tenant->name() +
                              "' query quota exhausted"),
                          keep_alive),
            keep_alive);
        return;
      }
      tenant_slot = AdmissionSlot(&tenant->admission());
    }

    // No cancellation bridge for ingestion: once admitted, an append either
    // fully publishes or fully fails — a disconnect must not abort it
    // halfway through intent.
    conn->inflight_cancel = CancellationToken();
    conn->state = Connection::State::kProcessing;
    conn->UpdateEvents(EPOLLRDHUP);
    SubmitIngest(std::move(conn), std::move(tenant), std::move(table),
                 req.body, std::move(global_slot), std::move(tenant_slot));
    return;
  }

  const std::string query_prefix = "/v1/query";
  if (path.compare(0, query_prefix.size(), query_prefix) == 0 &&
      (path.size() == query_prefix.size() ||
       path[query_prefix.size()] == '/')) {
    if (req.method != "POST") {
      conn->SendResponse(
          BuildResponse(405, "application/json",
                        ErrorBody("MethodNotAllowed",
                                  "use POST with the SQL text as the body"),
                        keep_alive),
          keep_alive);
      return;
    }
    std::string tenant_name;
    if (path.size() > query_prefix.size() + 1) {
      tenant_name = path.substr(query_prefix.size() + 1);
      if (tenant_name.find('/') != std::string::npos) {
        conn->SendResponse(
            BuildResponse(404, "application/json",
                          ErrorBody("NotFound", "no such route: " + path),
                          keep_alive),
            keep_alive);
        return;
      }
    }

    // Per-request timeout header -> QueryOptions.deadline. The deadline
    // starts ticking here, at admission.
    auto deadline = std::chrono::steady_clock::time_point::max();
    if (const std::string* header = req.FindHeader("X-Deadline-Ms")) {
      char* end = nullptr;
      const long long ms = std::strtoll(header->c_str(), &end, 10);
      if (end == header->c_str() || *end != '\0' || ms < 0) {
        conn->SendResponse(
            BuildResponse(400, "application/json",
                          ErrorBody("BadRequest",
                                    "malformed X-Deadline-Ms header"),
                          keep_alive),
            keep_alive);
        return;
      }
      deadline =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    }

    // Admission control: server-wide bound first, then the tenant quota.
    // Shedding answers 503 from the event thread — no Session, no worker.
    // Queue mode defers admission to the worker instead (AcquireQueued
    // parks there with a bounded wait; event threads must never block).
    const bool queue_mode = config_.admission_queue_depth > 0;
    AdmissionSlot global_slot;
    AdmissionSlot tenant_slot;
    if (!queue_mode) {
      if (!query_admission_.TryAcquire()) {
        conn->SendResponse(
            ErrorResponse(Status::ResourceExhausted(
                              "server query capacity exhausted"),
                          keep_alive),
            keep_alive);
        return;
      }
      global_slot = AdmissionSlot(&query_admission_);
    }
    std::shared_ptr<Tenant> tenant = tenants_->Resolve(tenant_name);
    if (tenant == nullptr) {
      conn->SendResponse(
          BuildResponse(404, "application/json",
                        ErrorBody("NotFound",
                                  "unknown tenant: '" + tenant_name + "'"),
                        keep_alive),
          keep_alive);
      return;
    }
    if (!queue_mode) {
      if (!tenant->admission().TryAcquire()) {
        tenant_shed_.fetch_add(1, std::memory_order_relaxed);
        conn->SendResponse(
            ErrorResponse(Status::ResourceExhausted(
                              "tenant '" + tenant->name() +
                              "' query quota exhausted"),
                          keep_alive),
            keep_alive);
        return;
      }
      tenant_slot = AdmissionSlot(&tenant->admission());
    }

    conn->inflight_cancel = CancellationToken::Cancellable();
    conn->state = Connection::State::kProcessing;
    conn->UpdateEvents(EPOLLRDHUP);
    SubmitQuery(std::move(conn), std::move(tenant), req.body,
                std::move(global_slot), std::move(tenant_slot), deadline);
    return;
  }

  conn->SendResponse(
      BuildResponse(404, "application/json",
                    ErrorBody("NotFound", "no such route: " + path),
                    keep_alive),
      keep_alive);
}

void HttpServer::SubmitQuery(std::shared_ptr<Connection> conn,
                             std::shared_ptr<Tenant> tenant, std::string sql,
                             AdmissionSlot global_slot,
                             AdmissionSlot tenant_slot,
                             std::chrono::steady_clock::time_point deadline) {
  // std::function must be copyable; the move-only admission slots ride in a
  // shared holder (released explicitly right after execution, before the
  // completion is posted, so admission frees up even if the loop is busy).
  struct Slots {
    AdmissionSlot global;
    AdmissionSlot tenant;
  };
  auto slots = std::make_shared<Slots>();
  slots->global = std::move(global_slot);
  slots->tenant = std::move(tenant_slot);
  const bool keep_alive = conn->current_keep_alive;
  const size_t batch_rows = config_.response_batch_rows;

  workers_->Submit([this, conn, tenant, sql = std::move(sql), slots,
                    deadline, keep_alive, batch_rows] {
    // Queue-mode admission happens HERE, on the worker: the request parks
    // in the controller's FIFO for up to the configured wait, so bursts
    // absorb instead of 503ing, while the event threads stay non-blocking.
    if (config_.admission_queue_depth > 0 && !slots->global.held()) {
      Status denied = Status::OK();
      const AdmissionController::Outcome outcome =
          query_admission_.AcquireQueued(
              std::chrono::milliseconds(config_.admission_queue_wait_ms));
      if (outcome == AdmissionController::Outcome::kAdmitted) {
        slots->global = AdmissionSlot(&query_admission_);
        if (tenant->admission().TryAcquire()) {
          slots->tenant = AdmissionSlot(&tenant->admission());
        } else {
          tenant_shed_.fetch_add(1, std::memory_order_relaxed);
          slots->global.Release();
          denied = Status::ResourceExhausted(
              "tenant '" + tenant->name() + "' query quota exhausted");
        }
      } else {
        denied = Status::Unavailable(
            outcome == AdmissionController::Outcome::kTimedOut
                ? "admission queue wait exceeded; retry later"
                : "admission queue full; retry later");
      }
      if (!denied.ok()) {
        auto bytes = std::make_shared<std::string>(
            ErrorResponse(denied, keep_alive));
        EventLoop* loop = conn->loop;
        loop->Post([conn, bytes, keep_alive] {
          conn->CompleteRequest(std::move(*bytes), keep_alive);
        });
        return;
      }
    }
    std::function<void()> hook;
    {
      std::lock_guard<std::mutex> lock(hook_mu_);
      hook = test_pre_query_hook_;
    }
    if (hook) hook();

    QueryOptions options;
    options.cancel = conn->inflight_cancel;
    options.deadline = deadline;
    options.batch_rows = batch_rows;

    Session session = tenant->db()->CreateSession();
    Result<ResultSet> result = session.Execute(sql, options);
    auto bytes = std::make_shared<std::string>(
        result.ok() ? QueryResponse(tenant->name(), *result, keep_alive)
                    : ErrorResponse(result.status(), keep_alive));
    slots->global.Release();
    slots->tenant.Release();
    EventLoop* loop = conn->loop;
    loop->Post([conn, bytes, keep_alive] {
      conn->CompleteRequest(std::move(*bytes), keep_alive);
    });
  });
}

void HttpServer::SubmitIngest(std::shared_ptr<Connection> conn,
                              std::shared_ptr<Tenant> tenant,
                              std::string table, std::string body,
                              AdmissionSlot global_slot,
                              AdmissionSlot tenant_slot) {
  struct Slots {
    AdmissionSlot global;
    AdmissionSlot tenant;
  };
  auto slots = std::make_shared<Slots>();
  slots->global = std::move(global_slot);
  slots->tenant = std::move(tenant_slot);
  const bool keep_alive = conn->current_keep_alive;

  workers_->Submit([this, conn, tenant, table = std::move(table),
                    body = std::move(body), slots, keep_alive] {
    // Same worker-side queued admission as SubmitQuery: ingest shares the
    // query bounds, so it must also share the queue.
    if (config_.admission_queue_depth > 0 && !slots->global.held()) {
      Status denied = Status::OK();
      const AdmissionController::Outcome outcome =
          query_admission_.AcquireQueued(
              std::chrono::milliseconds(config_.admission_queue_wait_ms));
      if (outcome == AdmissionController::Outcome::kAdmitted) {
        slots->global = AdmissionSlot(&query_admission_);
        if (tenant->admission().TryAcquire()) {
          slots->tenant = AdmissionSlot(&tenant->admission());
        } else {
          tenant_shed_.fetch_add(1, std::memory_order_relaxed);
          slots->global.Release();
          denied = Status::ResourceExhausted(
              "tenant '" + tenant->name() + "' query quota exhausted");
        }
      } else {
        denied = Status::Unavailable(
            outcome == AdmissionController::Outcome::kTimedOut
                ? "admission queue wait exceeded; retry later"
                : "admission queue full; retry later");
      }
      if (!denied.ok()) {
        auto bytes = std::make_shared<std::string>(
            ErrorResponse(denied, keep_alive));
        EventLoop* loop = conn->loop;
        loop->Post([conn, bytes, keep_alive] {
          conn->CompleteRequest(std::move(*bytes), keep_alive);
        });
        return;
      }
    }
    std::string response = [&]() -> std::string {
      JsonValue doc;
      std::string parse_error;
      if (!ParseJson(body, &doc, &parse_error)) {
        return BuildResponse(400, "application/json",
                             ErrorBody("BadRequest", parse_error),
                             keep_alive);
      }
      if (doc.kind != JsonValue::Kind::kArray) {
        return BuildResponse(
            400, "application/json",
            ErrorBody("BadRequest",
                      "ingest body must be a JSON array of row arrays"),
            keep_alive);
      }
      const std::shared_ptr<Db>& db = tenant->db();
      // Row typing comes from the CURRENT snapshot's schema (Append never
      // changes a schema, so any later snapshot agrees).
      const std::shared_ptr<const Database> snapshot = db->data();
      Result<const Table*> base = snapshot->GetTable(table);
      if (!base.ok()) return ErrorResponse(base.status(), keep_alive);
      const std::vector<Column>& columns = (*base)->columns();
      std::vector<std::vector<Value>> rows;
      rows.reserve(doc.array.size());
      for (size_t r = 0; r < doc.array.size(); ++r) {
        std::vector<Value> values;
        Status s = JsonRowToValues(doc.array[r], columns, r, &values);
        if (!s.ok()) return ErrorResponse(s, keep_alive);
        rows.push_back(std::move(values));
      }
      Status s = db->Append(table, rows);
      if (!s.ok()) return ErrorResponse(s, keep_alive);
      const std::string ok_body =
          "{\"tenant\":\"" + JsonEscape(tenant->name()) + "\",\"table\":\"" +
          JsonEscape(table) +
          "\",\"appended\":" + std::to_string(rows.size()) +
          ",\"epoch\":" + std::to_string(db->epoch()) + "}";
      return BuildResponse(200, "application/json", ok_body, keep_alive);
    }();
    slots->global.Release();
    slots->tenant.Release();
    auto bytes = std::make_shared<std::string>(std::move(response));
    EventLoop* loop = conn->loop;
    loop->Post([conn, bytes, keep_alive] {
      conn->CompleteRequest(std::move(*bytes), keep_alive);
    });
  });
}

std::string HttpServer::RenderModels(const std::string& tenant_name,
                                     int* http_status) const {
  std::vector<std::shared_ptr<Tenant>> targets;
  if (tenant_name.empty()) {
    targets = tenants_->tenants();
  } else {
    std::shared_ptr<Tenant> tenant = tenants_->Resolve(tenant_name);
    if (tenant == nullptr) {
      *http_status = 404;
      return ErrorBody("NotFound", "unknown tenant: '" + tenant_name + "'");
    }
    targets.push_back(std::move(tenant));
  }
  *http_status = 200;
  std::string out = "{\"tenants\":[";
  for (size_t i = 0; i < targets.size(); ++i) {
    if (i > 0) out += ',';
    const std::shared_ptr<Db>& db = targets[i]->db();
    out += "{\"tenant\":\"" + JsonEscape(targets[i]->name()) + "\"";
    out += ",\"epoch\":" + std::to_string(db->epoch());
    out += ",\"models\":[";
    const std::vector<ModelInfo> models = db->Freshness();
    for (size_t m = 0; m < models.size(); ++m) {
      if (m > 0) out += ',';
      out += ModelInfoJson(models[m]);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

HttpServerStats HttpServer::stats() const {
  HttpServerStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_shed = connections_shed_.load(std::memory_order_relaxed);
  s.connections_active = connections_active_.load(std::memory_order_relaxed);
  s.requests_total = requests_total_.load(std::memory_order_relaxed);
  s.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  s.queries_admitted = query_admission_.admitted_total();
  s.queries_shed_global = query_admission_.shed_total();
  s.queries_shed_tenant = tenant_shed_.load(std::memory_order_relaxed);
  s.queries_inflight = query_admission_.inflight();
  s.disconnect_cancels = disconnect_cancels_.load(std::memory_order_relaxed);
  s.admission_queued = query_admission_.queued_total();
  s.admission_queue_timeouts = query_admission_.queue_timeouts();
  return s;
}

std::string HttpServer::RenderMetrics() const {
  const HttpServerStats s = stats();
  PrometheusRenderer out;
  out.Counter("restore_server_connections_accepted_total",
              "Connections accepted.", "",
              static_cast<double>(s.connections_accepted));
  out.Counter("restore_server_connections_shed_total",
              "Connections closed at accept because max_connections was "
              "reached.",
              "", static_cast<double>(s.connections_shed));
  out.Gauge("restore_server_connections_active", "Open connections.", "",
            static_cast<double>(s.connections_active));
  out.Counter("restore_server_requests_total", "HTTP requests routed.", "",
              static_cast<double>(s.requests_total));
  out.Counter("restore_server_bad_requests_total",
              "Malformed HTTP requests rejected.", "",
              static_cast<double>(s.bad_requests));
  out.Counter("restore_server_queries_admitted_total",
              "Queries admitted past the server-wide bound.", "",
              static_cast<double>(s.queries_admitted));
  out.Counter("restore_server_queries_shed_total",
              "Queries shed with 503 by admission control.",
              PrometheusLabel("scope", "global"),
              static_cast<double>(s.queries_shed_global));
  out.Counter("restore_server_queries_shed_total",
              "Queries shed with 503 by admission control.",
              PrometheusLabel("scope", "tenant"),
              static_cast<double>(s.queries_shed_tenant));
  out.Gauge("restore_server_queries_inflight", "Queries executing now.", "",
            static_cast<double>(s.queries_inflight));
  out.Counter("restore_server_disconnect_cancels_total",
              "In-flight queries cancelled because their client "
              "disconnected.",
              "", static_cast<double>(s.disconnect_cancels));
  out.Counter("restore_server_admission_queued_total",
              "Requests that parked in the admission queue.", "",
              static_cast<double>(s.admission_queued));
  out.Counter("restore_server_admission_queue_timeouts_total",
              "Queued requests shed because no slot freed within the wait "
              "budget.",
              "", static_cast<double>(s.admission_queue_timeouts));
  out.Gauge("restore_server_admission_queued_now",
            "Requests parked in the admission queue right now.", "",
            static_cast<double>(query_admission_.queued_now()));

  for (const auto& tenant : tenants_->tenants()) {
    const std::string label = PrometheusLabel("tenant", tenant->name());
    out.Counter("restore_server_tenant_queries_shed_total",
                "Queries shed by the tenant quota.", label,
                static_cast<double>(tenant->admission().shed_total()));
    out.AddDbStats(label, tenant->db()->stats());
    out.AddDbFreshness(label, tenant->db()->Freshness());
  }
  return out.Render();
}

void HttpServer::set_test_pre_query_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(hook_mu_);
  test_pre_query_hook_ = std::move(hook);
}

#else  // !__linux__

struct HttpServer::Connection {};
class HttpServer::Acceptor {};
class HttpServer::WorkerPool {};

HttpServer::HttpServer(const TenantRegistry* tenants, ServerConfig config)
    : tenants_(tenants), config_(std::move(config)), query_admission_(0) {}
HttpServer::~HttpServer() {}
Status HttpServer::Start() {
  return Status::Unimplemented("the epoll server requires Linux");
}
void HttpServer::Stop() {}
HttpServerStats HttpServer::stats() const { return HttpServerStats(); }
std::string HttpServer::RenderMetrics() const { return ""; }
void HttpServer::set_test_pre_query_hook(std::function<void()>) {}
EventLoop* HttpServer::NextLoop() { return nullptr; }
void HttpServer::AdoptConnection(int) {}
void HttpServer::Dispatch(std::shared_ptr<Connection>) {}
void HttpServer::SubmitQuery(std::shared_ptr<Connection>,
                             std::shared_ptr<Tenant>, std::string,
                             AdmissionSlot, AdmissionSlot,
                             std::chrono::steady_clock::time_point) {}
void HttpServer::SubmitIngest(std::shared_ptr<Connection>,
                              std::shared_ptr<Tenant>, std::string,
                              std::string, AdmissionSlot, AdmissionSlot) {}
std::string HttpServer::RenderModels(const std::string&, int*) const {
  return "";
}
void HttpServer::ForgetConnection(size_t, Connection*) {}

#endif  // __linux__

}  // namespace server
}  // namespace restore
