#ifndef RESTORE_DATAGEN_HOUSING_H_
#define RESTORE_DATAGEN_HOUSING_H_

#include <cstdint>

#include "common/result.h"
#include "storage/database.h"

namespace restore {

/// Sizes of the synthetic Housing dataset. Default sizes are scaled-down
/// versions of the paper's Airbnb-derived schema (neighborhood 8K /
/// apartment 500K / landlord 360K) with the same 3-table topology; see
/// DESIGN.md for the substitution rationale.
struct HousingConfig {
  size_t num_neighborhoods = 250;
  size_t num_landlords = 1500;
  size_t num_apartments = 8000;
  uint64_t seed = 11;
};

/// Generates the complete Housing database:
///   neighborhood(id, state, pop_density, urbanization)
///   landlord(id, landlord_since, landlord_response_time,
///            landlord_response_rate)
///   apartment(id, neighborhood_id, landlord_id, price, room_type,
///             property_type, accommodates)
/// with planted cross-table correlations (denser neighborhoods -> higher
/// rents; veteran landlords -> pricier apartments and faster responses),
/// plus true tuple factors attached to both parent tables.
Result<Database> GenerateHousing(const HousingConfig& config);

}  // namespace restore

#endif  // RESTORE_DATAGEN_HOUSING_H_
