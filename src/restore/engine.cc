#include "restore/engine.h"

namespace restore {

CompletionEngine::CompletionEngine(const Database* db,
                                   SchemaAnnotation annotation,
                                   EngineConfig config)
    : annotation_(std::move(annotation)), config_(std::move(config)) {
  DbOptions options;
  options.engine = config_;
  Result<std::shared_ptr<Db>> opened = Db::Open(db, annotation_, options);
  if (opened.ok()) {
    db_ = std::move(opened).value();
  } else {
    open_status_ = opened.status();
  }
}

Result<Db*> CompletionEngine::GetDb() {
  if (db_ == nullptr) return open_status_;
  return db_.get();
}

Status CompletionEngine::TrainModels() {
  return db_ == nullptr ? open_status_ : Status::OK();
}

Result<QueryResult> CompletionEngine::ExecuteCompleted(const Query& query) {
  RESTORE_ASSIGN_OR_RETURN(Db * db, GetDb());
  return db->ExecuteCompleted(query);
}

Result<QueryResult> CompletionEngine::ExecuteCompletedSql(
    const std::string& sql) {
  RESTORE_ASSIGN_OR_RETURN(Db * db, GetDb());
  return db->ExecuteCompletedSql(sql);
}

Result<Table> CompletionEngine::CompleteTable(const std::string& target) {
  RESTORE_ASSIGN_OR_RETURN(Db * db, GetDb());
  return db->CompleteTable(target);
}

Result<CompletionResult> CompletionEngine::CompleteViaPath(
    const std::vector<std::string>& path, const CompletionOptions& options) {
  RESTORE_ASSIGN_OR_RETURN(Db * db, GetDb());
  return db->CompleteViaPath(path, options);
}

Result<std::vector<CompletionEngine::Candidate>>
CompletionEngine::CandidatesFor(const std::string& target) {
  RESTORE_ASSIGN_OR_RETURN(Db * db, GetDb());
  return db->CandidatesFor(target);
}

Result<std::vector<std::string>> CompletionEngine::SelectedPathFor(
    const std::string& target) {
  RESTORE_ASSIGN_OR_RETURN(Db * db, GetDb());
  return db->SelectedPathFor(target);
}

Result<const PathModel*> CompletionEngine::ModelForPath(
    const std::vector<std::string>& path) {
  RESTORE_ASSIGN_OR_RETURN(Db * db, GetDb());
  return db->ModelForPath(path);
}

CompletionCache& CompletionEngine::cache() {
  return db_ != nullptr ? db_->cache() : fallback_cache_;
}

double CompletionEngine::total_train_seconds() const {
  return db_ != nullptr ? db_->total_train_seconds() : 0.0;
}

}  // namespace restore
