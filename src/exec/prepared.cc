#include "exec/prepared.h"

#include "common/string_util.h"
#include "exec/sql_parser.h"

namespace restore {

namespace {

/// Qualifies one unqualified column reference against the query's tables.
Result<std::string> QualifyColumn(const Database& db,
                                  const std::vector<std::string>& tables,
                                  const std::string& column) {
  if (column.find('.') != std::string::npos) return column;
  std::string qualified;
  int hits = 0;
  for (const auto& t : tables) {
    RESTORE_ASSIGN_OR_RETURN(const Table* table, db.GetTable(t));
    if (table->HasColumn(column)) {
      qualified = t + "." + column;
      ++hits;
    }
  }
  if (hits == 0) {
    return Status::NotFound(
        StrFormat("column '%s' not found in query tables", column.c_str()));
  }
  if (hits > 1) {
    return Status::InvalidArgument(
        StrFormat("column reference '%s' is ambiguous", column.c_str()));
  }
  return qualified;
}

}  // namespace

Status QualifyQueryColumns(const Database& db, Query* query) {
  for (auto& agg : query->aggregates) {
    if (agg.column.empty()) continue;
    RESTORE_ASSIGN_OR_RETURN(agg.column,
                             QualifyColumn(db, query->tables, agg.column));
  }
  for (auto& pred : query->predicates) {
    RESTORE_ASSIGN_OR_RETURN(pred.column,
                             QualifyColumn(db, query->tables, pred.column));
  }
  for (auto& g : query->group_by) {
    RESTORE_ASSIGN_OR_RETURN(g, QualifyColumn(db, query->tables, g));
  }
  return Status::OK();
}

Status CheckFullyBound(const Query& query) {
  if (!query.IsFullyBound()) {
    return Status::FailedPrecondition(
        StrFormat("query has %zu unbound '?' parameter(s); call Bind first",
                  query.num_params));
  }
  return Status::OK();
}

Result<PreparedStatement> PreparedStatement::Prepare(const Database& db,
                                                     const std::string& sql) {
  RESTORE_ASSIGN_OR_RETURN(Query query, ParseSql(sql));
  if (query.tables.empty() || query.aggregates.empty()) {
    return Status::InvalidArgument("malformed query");
  }
  RESTORE_RETURN_IF_ERROR(QualifyQueryColumns(db, &query));
  return PreparedStatement(std::move(query));
}

Result<Query> PreparedStatement::Bind(const std::vector<Value>& params) const {
  if (params.size() != query_.num_params) {
    return Status::InvalidArgument(
        StrFormat("expected %zu parameter(s), got %zu", query_.num_params,
                  params.size()));
  }
  Query bound = query_;
  for (auto& pred : bound.predicates) {
    if (pred.param_index < 0) continue;
    const Value& v = params[static_cast<size_t>(pred.param_index)];
    if (v.is_null()) {
      return Status::InvalidArgument(StrFormat(
          "parameter %d is NULL; predicates require a concrete literal",
          pred.param_index));
    }
    pred.literal = v;
    pred.param_index = -1;
  }
  bound.num_params = 0;
  return bound;
}

}  // namespace restore
