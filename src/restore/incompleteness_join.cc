#include "restore/incompleteness_join.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "exec/join.h"
#include "restore/nn_replace.h"
#include "restore/tuple_factor.h"

namespace restore {

namespace {

/// Strips the "table." qualification from a column name.
std::string Unqualify(const std::string& name) {
  const size_t dot = name.find('.');
  return dot == std::string::npos ? name : name.substr(dot + 1);
}

}  // namespace

Result<CompletionResult> IncompletenessJoinExecutor::CompletePathJoin(
    const PathModel& model, Rng& rng, const CompletionOptions& options,
    const ExecContext* ctx) {
  RESTORE_RETURN_IF_ERROR(ExecContext::Check(ctx));
  const std::vector<std::string>& path = model.path();
  if (annotation_->IsIncomplete(path[0])) {
    return Status::FailedPrecondition(
        StrFormat("completion path must start at a complete table, got '%s'",
                  path[0].c_str()));
  }
  CompletionResult result;

  RESTORE_ASSIGN_OR_RETURN(const Table* root, db_->GetTable(path[0]));
  Table joined = *root;
  joined.QualifyColumnNames(path[0]);

  for (size_t hop = 0; hop + 1 < path.size(); ++hop) {
    RESTORE_RETURN_IF_ERROR(ExecContext::Check(ctx));
    const std::string& target = path[hop + 1];
    RESTORE_ASSIGN_OR_RETURN(ForeignKey fk,
                             db_->FindForeignKey(path[hop], target));
    RESTORE_ASSIGN_OR_RETURN(const Table* target_base, db_->GetTable(target));
    Table right = *target_base;
    right.QualifyColumnNames(target);

    const bool fanout = model.HopIsFanOut(hop);
    const std::string left_key =
        fanout ? fk.parent_table + "." + fk.parent_column
               : fk.child_table + "." + fk.child_column;
    const std::string right_key = fanout
                                      ? target + "." + fk.child_column
                                      : target + "." + fk.parent_column;

    // 1. Join the existing tuples (rows with NULL keys drop out here).
    RESTORE_ASSIGN_OR_RETURN(
        Table j_existing, HashJoin(joined, right, left_key, right_key, ctx));

    // 2. Determine what to synthesize.
    RESTORE_ASSIGN_OR_RETURN(size_t lk_idx, ResolveColumn(joined, left_key));
    const Column& lk_col = joined.column(lk_idx);
    std::vector<size_t> all_rows(joined.NumRows());
    for (size_t r = 0; r < all_rows.size(); ++r) all_rows[r] = r;

    std::vector<size_t> synth_rows;      // J row per synthesized tuple
    std::vector<size_t> synth_group;     // for n:1 dedup: unique-tuple index
    size_t unique_synth = 0;
    std::vector<size_t> rep_rows;        // representative J row per unique

    if (fanout) {
      // Count current join partners per key in the available target table.
      RESTORE_ASSIGN_OR_RETURN(const Column* rk_base,
                               target_base->GetColumn(fk.child_column));
      std::unordered_map<int64_t, int64_t> matches;
      for (size_t r = 0; r < target_base->NumRows(); ++r) {
        const int64_t key = rk_base->GetInt64(r);
        if (key != kNullInt64) ++matches[key];
      }
      std::vector<int64_t> have_counts(all_rows.size(), 0);
      for (size_t r = 0; r < all_rows.size(); ++r) {
        const int64_t key = lk_col.GetInt64(r);
        if (key != kNullInt64) {
          auto it = matches.find(key);
          have_counts[r] = it == matches.end() ? 0 : it->second;
        }
      }
      RESTORE_ASSIGN_OR_RETURN(
          IntMatrix codes,
          model.EncodeEvidencePrefix(*db_, joined, hop, all_rows));
      RESTORE_ASSIGN_OR_RETURN(
          std::vector<int64_t> tfs,
          model.SampleTupleFactors(*db_, joined, &codes, all_rows, hop, rng,
                                   &have_counts, ctx));
      // Children are synthesized once per DISTINCT parent key and attached
      // to every J row carrying that key — J may contain a parent several
      // times when earlier hops fanned out, and synthesizing independently
      // per row would compound the duplication.
      std::unordered_map<int64_t, std::vector<size_t>> groups_of_key;
      for (size_t r = 0; r < all_rows.size(); ++r) {
        const int64_t key = lk_col.GetInt64(r);
        const bool first_for_key =
            key == kNullInt64 || groups_of_key.count(key) == 0;
        if (first_for_key) {
          const int64_t need = std::max<int64_t>(0, tfs[r] - have_counts[r]);
          std::vector<size_t> groups;
          for (int64_t c = 0; c < need; ++c) {
            groups.push_back(unique_synth++);
            rep_rows.push_back(r);
          }
          if (key != kNullInt64) groups_of_key[key] = groups;
          for (size_t g : groups) {
            synth_rows.push_back(r);
            synth_group.push_back(g);
          }
        } else {
          for (size_t g : groups_of_key[key]) {
            synth_rows.push_back(r);
            synth_group.push_back(g);
          }
        }
      }
    } else {
      // n:1 hop: every J row without a join partner needs one parent tuple.
      // Rows sharing the same (known) missing key share one synthesized
      // parent. NULL-key rows (children synthesized on earlier hops, whose
      // FKs are not generated) are grouped into clusters of the target's
      // estimated average fan-out — otherwise every orphan would mint its
      // own parent and the completed table would overshoot (the
      // over-synthesis correction of Section 4.3).
      RESTORE_ASSIGN_OR_RETURN(const Column* rk_base,
                               target_base->GetColumn(fk.parent_column));
      std::unordered_set<int64_t> present;
      for (size_t r = 0; r < target_base->NumRows(); ++r) {
        present.insert(rk_base->GetInt64(r));
      }
      // Average children per parent in the available data.
      size_t orphan_group_size = 1;
      {
        RESTORE_ASSIGN_OR_RETURN(const Table* child_base,
                                 db_->GetTable(fk.child_table));
        RESTORE_ASSIGN_OR_RETURN(const Column* child_fk,
                                 child_base->GetColumn(fk.child_column));
        std::unordered_set<int64_t> distinct;
        size_t with_key = 0;
        for (size_t r = 0; r < child_base->NumRows(); ++r) {
          const int64_t key = child_fk->GetInt64(r);
          if (key == kNullInt64) continue;
          distinct.insert(key);
          ++with_key;
        }
        if (!distinct.empty()) {
          orphan_group_size = std::max<size_t>(
              1, static_cast<size_t>(std::llround(
                     static_cast<double>(with_key) /
                     static_cast<double>(distinct.size()))));
        }
      }
      // Orphan identity: J rows belonging to the same child tuple (possible
      // after earlier fan-out duplication) must share one synthesized
      // parent. The child's primary key serves as the identity.
      const Column* ident_col = nullptr;
      {
        auto ident_idx = ResolveColumn(joined, fk.child_table + ".id");
        if (ident_idx.ok()) ident_col = &joined.column(ident_idx.value());
      }
      std::unordered_map<int64_t, size_t> group_of_key;
      std::unordered_map<int64_t, size_t> group_of_ident;
      size_t null_orphans = 0;
      size_t null_group = 0;
      for (size_t r = 0; r < all_rows.size(); ++r) {
        const int64_t key = lk_col.GetInt64(r);
        if (key != kNullInt64 && present.count(key) > 0) continue;
        size_t group;
        if (key == kNullInt64) {
          const int64_t ident =
              ident_col != nullptr ? ident_col->GetInt64(r) : kNullInt64;
          if (ident != kNullInt64) {
            auto it = group_of_ident.find(ident);
            if (it != group_of_ident.end()) {
              group = it->second;
            } else {
              if (null_orphans % orphan_group_size == 0) {
                null_group = unique_synth++;
                rep_rows.push_back(r);
              }
              ++null_orphans;
              group = null_group;
              group_of_ident.emplace(ident, group);
            }
          } else {
            if (null_orphans % orphan_group_size == 0) {
              null_group = unique_synth++;
              rep_rows.push_back(r);
            }
            ++null_orphans;
            group = null_group;
          }
        } else {
          auto it = group_of_key.find(key);
          if (it == group_of_key.end()) {
            group = unique_synth++;
            rep_rows.push_back(r);
            group_of_key.emplace(key, group);
          } else {
            group = it->second;
          }
        }
        synth_rows.push_back(r);
        synth_group.push_back(group);
      }
    }

    // 3. Synthesize the target attributes for the unique missing tuples.
    // The budget is charged BEFORE the expensive sampling: a query whose cap
    // is already blown fails without paying for the synthesis.
    if (ctx != nullptr) {
      RESTORE_RETURN_IF_ERROR(ctx->AddCompletedTuples(unique_synth));
    }
    std::vector<Column> synth_attrs;
    if (unique_synth > 0) {
      RESTORE_ASSIGN_OR_RETURN(
          IntMatrix codes,
          model.EncodeEvidencePrefix(*db_, joined, hop, rep_rows));
      if (fanout) {
        // Re-derive the TF codes for the representative rows so the target
        // attributes are sampled conditioned on the same tuple factors.
        RESTORE_ASSIGN_OR_RETURN(const Column* rk_base,
                                 target_base->GetColumn(fk.child_column));
        std::unordered_map<int64_t, int64_t> matches;
        for (size_t r = 0; r < target_base->NumRows(); ++r) {
          const int64_t key = rk_base->GetInt64(r);
          if (key != kNullInt64) ++matches[key];
        }
        std::vector<int64_t> have(rep_rows.size(), 0);
        for (size_t i = 0; i < rep_rows.size(); ++i) {
          const int64_t key = lk_col.GetInt64(rep_rows[i]);
          if (key != kNullInt64) {
            auto it = matches.find(key);
            have[i] = it == matches.end() ? 0 : it->second;
          }
        }
        RESTORE_ASSIGN_OR_RETURN(
            std::vector<int64_t> tf_again,
            model.SampleTupleFactors(*db_, joined, &codes, rep_rows, hop, rng,
                                     &have, ctx));
        (void)tf_again;  // codes now carry the TF prefix for sampling
      }
      int record_attr = -1;
      Matrix recorded;
      if (!options.record_table.empty() && options.record_table == target) {
        record_attr = model.FindAttr(target, options.record_column);
      }
      RESTORE_ASSIGN_OR_RETURN(
          synth_attrs,
          model.SynthesizeHop(*db_, joined, &codes, rep_rows, hop, rng,
                              record_attr, &recorded, ctx));
      if (record_attr >= 0) {
        for (size_t i = 0; i < recorded.rows(); ++i) {
          result.recorded_probs.emplace_back(
              recorded.row(i), recorded.row(i) + recorded.cols());
        }
      }
    }

    // 4. Euclidean replacement: tuples synthesized for a COMPLETE table are
    // replaced by their most similar existing tuples (Figure 3).
    std::vector<size_t> replacement_rows;  // into target_base, per unique
    const bool replace = annotation_->IsComplete(target) && unique_synth > 0;
    if (replace) {
      std::vector<std::string> attr_names;
      for (const auto& col : synth_attrs) attr_names.push_back(col.name());
      if (!attr_names.empty()) {
        RESTORE_ASSIGN_OR_RETURN(
            EuclideanReplacer replacer,
            EuclideanReplacer::Build(*target_base, attr_names));
        RESTORE_ASSIGN_OR_RETURN(replacement_rows,
                                 replacer.FindReplacements(synth_attrs));
      } else {
        replacement_rows.assign(unique_synth, 0);
      }
    }

    // 5. Assemble the synthesized row block with the same schema as
    // j_existing: first the old J columns, then the target columns.
    Table j_synth(j_existing.name());
    for (size_t c = 0; c < joined.NumColumns(); ++c) {
      RESTORE_RETURN_IF_ERROR(
          j_synth.AddColumn(joined.column(c).Gather(synth_rows)));
    }
    for (size_t c = 0; c < right.NumColumns(); ++c) {
      const Column& rcol = right.column(c);
      const std::string base_name = Unqualify(rcol.name());
      Column out = rcol.CloneEmpty();
      out.Reserve(synth_rows.size());

      if (replace) {
        // Copy every column (attributes AND keys) from the replacement row.
        for (size_t i = 0; i < synth_rows.size(); ++i) {
          const size_t src = replacement_rows[synth_group[i]];
          if (rcol.type() == ColumnType::kDouble) {
            out.AppendDouble(rcol.GetDouble(src));
          } else {
            out.AppendInt64(rcol.GetInt64(src));
          }
        }
        RESTORE_RETURN_IF_ERROR(j_synth.AddColumn(std::move(out)));
        continue;
      }

      const Column* synth_col = nullptr;
      for (const auto& sc : synth_attrs) {
        if (sc.name() == base_name) {
          synth_col = &sc;
          break;
        }
      }
      if (synth_col != nullptr) {
        for (size_t i = 0; i < synth_rows.size(); ++i) {
          const size_t g = synth_group[i];
          if (synth_col->type() == ColumnType::kDouble) {
            out.AppendDouble(synth_col->GetDouble(g));
          } else {
            out.AppendInt64(synth_col->GetInt64(g));
          }
        }
      } else if (base_name == fk.child_column && fanout) {
        // FK back to the evidence table: the evidence row's key.
        for (size_t r : synth_rows) out.AppendInt64(lk_col.GetInt64(r));
      } else if (base_name == fk.parent_column && !fanout) {
        // The missing parent's key, when the child row knew it.
        std::vector<int64_t> group_key(unique_synth, kNullInt64);
        for (size_t i = 0; i < synth_rows.size(); ++i) {
          const int64_t key = lk_col.GetInt64(synth_rows[i]);
          if (key != kNullInt64) group_key[synth_group[i]] = key;
        }
        for (size_t i = 0; i < synth_rows.size(); ++i) {
          int64_t key = group_key[synth_group[i]];
          if (key == kNullInt64) key = next_synthetic_id_--;
          out.AppendInt64(key);
        }
      } else if (fanout && [&] {
                   // Primary key of the target: either referenced by other
                   // FKs or the conventional "id" column. Synthesized tuples
                   // get fresh negative ids so later hops can identify them.
                   if (base_name == "id") return true;
                   for (const auto& other : db_->foreign_keys()) {
                     if (other.parent_table == target &&
                         other.parent_column == base_name) {
                       return true;
                     }
                   }
                   return false;
                 }()) {
        // Fresh synthetic ids that never collide with real keys.
        std::vector<int64_t> group_id(unique_synth, 0);
        for (size_t g = 0; g < unique_synth; ++g) {
          group_id[g] = next_synthetic_id_--;
        }
        for (size_t i = 0; i < synth_rows.size(); ++i) {
          out.AppendInt64(group_id[synth_group[i]]);
        }
      } else {
        // Unknown keys / unmodeled columns / tuple factors: NULL.
        for (size_t i = 0; i < synth_rows.size(); ++i) out.AppendNull();
      }
      RESTORE_RETURN_IF_ERROR(j_synth.AddColumn(std::move(out)));
    }

    // 6. Bookkeeping for incomplete tables (bias-reduction metrics).
    if (annotation_->IsIncomplete(target) && unique_synth > 0) {
      auto& store = result.synthesized[target];
      if (store.empty()) {
        for (const auto& sc : synth_attrs) store.push_back(sc.CloneEmpty());
      }
      for (size_t a = 0; a < synth_attrs.size(); ++a) {
        Column tmp = store[a];
        // Append unique synthesized tuples.
        for (size_t g = 0; g < unique_synth; ++g) {
          if (synth_attrs[a].type() == ColumnType::kDouble) {
            tmp.AppendDouble(synth_attrs[a].GetDouble(g));
          } else {
            tmp.AppendInt64(synth_attrs[a].GetInt64(g));
          }
        }
        store[a] = std::move(tmp);
      }
      result.synthesized_counts[target] += unique_synth;
    }

    result.existing_join_rows = j_existing.NumRows();
    result.synthesized_join_rows = j_synth.NumRows();
    RESTORE_RETURN_IF_ERROR(j_existing.AppendTable(j_synth));
    joined = std::move(j_existing);
  }

  result.joined = std::move(joined);
  return result;
}

}  // namespace restore
