#ifndef RESTORE_SERVER_ADMISSION_H_
#define RESTORE_SERVER_ADMISSION_H_

// Admission control for the serving layer, in two modes:
//
//  - SHED (queue_depth == 0): a lock-free bounded in-flight counter. The
//    server sheds load with HTTP 503 the moment a bound is hit — a shed
//    request costs one atomic CAS and never touches a Session, so overload
//    degrades throughput gracefully rather than latency catastrophically.
//  - QUEUE (queue_depth > 0): a bounded FIFO of waiters rides in front of
//    the same in-flight bound. A request arriving over the bound parks for
//    up to a configured wait; a released slot is HANDED to the head waiter
//    (FIFO, no herd), and a waiter that outlives its budget — or arrives to
//    a full queue — is shed. Short bursts absorb instead of 503ing, while
//    both the memory (queue depth) and the latency (wait budget) stay
//    bounded.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>

namespace restore {
namespace server {

/// Bounds concurrently admitted work. TryAcquire/Release pairs guard one
/// unit (a query in flight, a connection); counters expose totals for
/// /metrics. Thread-safe; shed-mode operations are wait-free.
class AdmissionController {
 public:
  enum class Outcome {
    kAdmitted,
    kShed,      // bound hit and queue full (or shed mode)
    kTimedOut,  // queued, but no slot freed within the wait budget
  };

  /// `max_inflight` == 0 means unbounded (TryAcquire always succeeds).
  /// `queue_depth` > 0 enables queue mode for AcquireQueued callers.
  explicit AdmissionController(size_t max_inflight, size_t queue_depth = 0)
      : max_inflight_(max_inflight), queue_depth_(queue_depth) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Admits one unit unless the bound is reached. On refusal the shed
  /// counter is bumped and nothing needs releasing. Bypasses the FIFO —
  /// callers of a queue-mode controller should use AcquireQueued instead.
  bool TryAcquire() {
    if (max_inflight_ == 0) {
      inflight_.fetch_add(1, std::memory_order_relaxed);
      admitted_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    size_t current = inflight_.load(std::memory_order_relaxed);
    while (true) {
      if (current >= max_inflight_) {
        shed_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      if (inflight_.compare_exchange_weak(current, current + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
        admitted_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }

  /// Queue-mode admission: admit immediately when under the bound (and no
  /// earlier waiter is parked), otherwise wait in FIFO order for up to
  /// `max_wait` for a released slot. Falls back to TryAcquire semantics
  /// when queue mode is off or the controller is unbounded.
  Outcome AcquireQueued(std::chrono::milliseconds max_wait) {
    if (max_inflight_ == 0 || queue_depth_ == 0) {
      return TryAcquire() ? Outcome::kAdmitted : Outcome::kShed;
    }
    std::unique_lock<std::mutex> lock(qmu_);
    if (waiters_.empty() &&
        inflight_.load(std::memory_order_relaxed) < max_inflight_) {
      inflight_.fetch_add(1, std::memory_order_relaxed);
      admitted_.fetch_add(1, std::memory_order_relaxed);
      return Outcome::kAdmitted;
    }
    if (waiters_.size() >= queue_depth_) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      return Outcome::kShed;
    }
    QueuedWaiter self;
    waiters_.push_back(&self);
    queued_.fetch_add(1, std::memory_order_relaxed);
    queued_now_.fetch_add(1, std::memory_order_relaxed);
    const bool granted =
        self.cv.wait_for(lock, max_wait, [&] { return self.granted; });
    queued_now_.fetch_sub(1, std::memory_order_relaxed);
    if (granted) {
      // Release handed us its slot: inflight_ is already accounted for.
      admitted_.fetch_add(1, std::memory_order_relaxed);
      return Outcome::kAdmitted;
    }
    // Timed out. The predicate above re-ran under qmu_, so a concurrent
    // grant either landed (handled above) or still sees us parked here —
    // remove ourselves before any Release can hand us a slot.
    waiters_.erase(std::find(waiters_.begin(), waiters_.end(), &self));
    queue_timeouts_.fetch_add(1, std::memory_order_relaxed);
    return Outcome::kTimedOut;
  }

  /// Releases one previously admitted unit. In queue mode the slot is
  /// transferred to the head waiter, if any, instead of being freed.
  void Release() {
    if (queue_depth_ > 0 && max_inflight_ > 0) {
      std::lock_guard<std::mutex> lock(qmu_);
      if (!waiters_.empty()) {
        QueuedWaiter* head = waiters_.front();
        waiters_.pop_front();
        head->granted = true;
        head->cv.notify_one();
        return;  // slot handed over, inflight_ unchanged
      }
    }
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
  }

  size_t max_inflight() const { return max_inflight_; }
  size_t queue_depth() const { return queue_depth_; }
  size_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  uint64_t admitted_total() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  uint64_t shed_total() const { return shed_.load(std::memory_order_relaxed); }
  uint64_t queued_total() const {
    return queued_.load(std::memory_order_relaxed);
  }
  uint64_t queue_timeouts() const {
    return queue_timeouts_.load(std::memory_order_relaxed);
  }
  size_t queued_now() const {
    return queued_now_.load(std::memory_order_relaxed);
  }

 private:
  struct QueuedWaiter {
    std::condition_variable cv;
    bool granted = false;  // guarded by qmu_
  };

  const size_t max_inflight_;
  const size_t queue_depth_;
  std::atomic<size_t> inflight_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> queued_{0};
  std::atomic<uint64_t> queue_timeouts_{0};
  std::atomic<size_t> queued_now_{0};
  std::mutex qmu_;                      // guards waiters_ and grant handoff
  std::deque<QueuedWaiter*> waiters_;  // FIFO of parked AcquireQueued calls
};

/// RAII holder of one admission unit.
class AdmissionSlot {
 public:
  AdmissionSlot() = default;
  explicit AdmissionSlot(AdmissionController* controller)
      : controller_(controller) {}
  AdmissionSlot(AdmissionSlot&& other) noexcept
      : controller_(other.controller_) {
    other.controller_ = nullptr;
  }
  AdmissionSlot& operator=(AdmissionSlot&& other) noexcept {
    if (this != &other) {
      Release();
      controller_ = other.controller_;
      other.controller_ = nullptr;
    }
    return *this;
  }
  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;
  ~AdmissionSlot() { Release(); }

  bool held() const { return controller_ != nullptr; }
  void Release() {
    if (controller_ != nullptr) {
      controller_->Release();
      controller_ = nullptr;
    }
  }

 private:
  AdmissionController* controller_ = nullptr;
};

}  // namespace server
}  // namespace restore

#endif  // RESTORE_SERVER_ADMISSION_H_
