#include "bench/bench_util.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/timer.h"
#include "metrics/metrics.h"

namespace restore {
namespace bench {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string JsonNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

Status WriteBenchJson(const std::string& path,
                      const std::vector<BenchRecord>& records) {
  std::ostringstream out;
  out << "{\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    out << "    {\"name\": \"" << JsonEscape(r.name) << "\""
        << ", \"real_ns\": " << JsonNumber(r.real_ns)
        << ", \"cpu_ns\": " << JsonNumber(r.cpu_ns)
        << ", \"iterations\": " << r.iterations;
    for (const auto& [key, value] : r.counters) {
      out << ", \"" << JsonEscape(key) << "\": " << JsonNumber(value);
    }
    out << "}" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::ofstream file(path);
  if (!file) {
    return Status::InvalidArgument("cannot open bench JSON file: " + path);
  }
  file << out.str();
  return Status::OK();
}

void FigureJson::Add(const std::string& name,
                     std::map<std::string, double> counters) {
  BenchRecord record;
  record.name = name;
  record.iterations = 1;
  record.counters = std::move(counters);
  records_.push_back(std::move(record));
}

Status FigureJson::Write() const {
  const std::string path = "BENCH_" + figure_ + ".json";
  RESTORE_RETURN_IF_ERROR(WriteBenchJson(path, records_));
  std::fprintf(stderr, "wrote %s (%zu rows)\n", path.c_str(),
               records_.size());
  return Status::OK();
}

EngineConfig BenchEngineConfig(bool use_ssar) {
  EngineConfig config;
  config.model.epochs = 12;
  config.model.hidden_dim = 40;
  config.model.embed_dim = 8;
  config.model.max_bins = 16;
  config.model.use_ssar = use_ssar;
  config.model.min_train_steps = 500;
  config.max_candidates = 3;
  config.selection = SelectionStrategy::kBestTestLoss;
  return config;
}

Result<SetupRun> MakeSetupRun(const std::string& setup_name, double keep_rate,
                              double removal_correlation, double scale,
                              uint64_t seed) {
  RESTORE_ASSIGN_OR_RETURN(CompletionSetup setup, SetupByName(setup_name));
  RESTORE_ASSIGN_OR_RETURN(Database complete,
                           BuildCompleteDatabase(setup.dataset, seed, scale));
  RESTORE_ASSIGN_OR_RETURN(
      Database incomplete,
      ApplySetup(complete, setup, keep_rate, removal_correlation, seed + 1));
  SetupRun run{setup, std::move(complete), std::move(incomplete),
               AnnotationFor(setup)};
  return run;
}

Result<double> BiasedStat(const SetupRun& run, const Table& table) {
  RESTORE_ASSIGN_OR_RETURN(const Column* col,
                           table.GetColumn(run.setup.biased_column));
  if (col->type() == ColumnType::kCategorical) {
    std::string value = run.setup.categorical_value;
    if (value.empty()) value = col->dictionary()->ValueOf(0);
    return CategoricalFraction(table, run.setup.biased_column, value);
  }
  return ColumnMean(table, run.setup.biased_column);
}

Result<double> CompletedStat(const SetupRun& run,
                             const CompletionResult& completion) {
  RESTORE_ASSIGN_OR_RETURN(const Table* base,
                           run.incomplete.GetTable(run.setup.removed_table));
  // Existing tuples + synthesized attribute columns.
  Table merged(run.setup.removed_table);
  RESTORE_ASSIGN_OR_RETURN(const Column* base_col,
                           base->GetColumn(run.setup.biased_column));
  Column col = *base_col;
  auto it = completion.synthesized.find(run.setup.removed_table);
  if (it != completion.synthesized.end()) {
    for (const auto& sc : it->second) {
      if (sc.name() != run.setup.biased_column) continue;
      for (size_t r = 0; r < sc.size(); ++r) {
        if (sc.type() == ColumnType::kDouble) {
          col.AppendDouble(sc.GetDouble(r));
        } else {
          col.AppendInt64(sc.GetInt64(r));
        }
      }
    }
  }
  RESTORE_RETURN_IF_ERROR(merged.AddColumn(std::move(col)));
  return BiasedStat(run, merged);
}

Result<std::shared_ptr<Db>> OpenBenchDb(const SetupRun& run,
                                        EngineConfig config) {
  DbOptions options;
  options.engine = std::move(config);
  return Db::Open(&run.incomplete, run.annotation, std::move(options));
}

Result<PathEval> EvaluatePath(const SetupRun& run, Db& db,
                              const std::vector<std::string>& path) {
  Timer timer;
  RESTORE_ASSIGN_OR_RETURN(CompletionResult completion,
                           db.CompleteViaPath(path));
  PathEval eval;
  eval.completion_seconds = timer.ElapsedSeconds();

  RESTORE_ASSIGN_OR_RETURN(const Table* truth,
                           run.complete.GetTable(run.setup.removed_table));
  RESTORE_ASSIGN_OR_RETURN(const Table* partial,
                           run.incomplete.GetTable(run.setup.removed_table));
  RESTORE_ASSIGN_OR_RETURN(double true_stat, BiasedStat(run, *truth));
  RESTORE_ASSIGN_OR_RETURN(double incomplete_stat, BiasedStat(run, *partial));
  RESTORE_ASSIGN_OR_RETURN(double completed_stat,
                           CompletedStat(run, completion));
  eval.bias_reduction =
      BiasReduction(true_stat, incomplete_stat, completed_stat);
  size_t synthesized = 0;
  auto it = completion.synthesized_counts.find(run.setup.removed_table);
  if (it != completion.synthesized_counts.end()) synthesized = it->second;
  eval.cardinality_correction = CardinalityCorrection(
      truth->NumRows(), partial->NumRows(), partial->NumRows() + synthesized);
  return eval;
}

}  // namespace bench
}  // namespace restore
