#ifndef RESTORE_SERVER_SERVER_H_
#define RESTORE_SERVER_SERVER_H_

// The network service layer in front of restore::Db: a non-blocking epoll
// HTTP/1.1 server (single acceptor + N event threads + a bounded query
// worker pool) exposing
//
//   POST /v1/query[/<tenant>]   SQL body -> chunked JSON rows, one HTTP
//                               chunk per ResultSet::NextBatch() batch
//   POST /v1/ingest[/<tenant>]/<table>
//                               JSON array of positional row arrays ->
//                               Db::Append; answers {"appended":N,...}
//   GET  /v1/models[/<tenant>]  per-path model freshness (Db::Freshness())
//                               as JSON, one entry per serving model
//   GET  /metrics               Db::stats() of every tenant + server
//                               counters, Prometheus text format
//   GET  /healthz               liveness probe
//
// Request headers:
//   X-Deadline-Ms: <n>          maps to QueryOptions.deadline; an expired
//                               deadline answers 504
//
// Lifecycle mapping: a client disconnect while its query is in flight
// triggers CancellationToken::RequestCancel, so the engine stops sampling
// for a reader that is gone. Admission control bounds in-flight queries
// globally and per tenant; excess load is shed with 503 before a Session
// is ever created.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/admission.h"
#include "server/event_loop.h"
#include "server/tenant_registry.h"

namespace restore {
namespace server {

struct ServerConfig {
  /// Listen address/port. Port 0 binds an ephemeral port (see
  /// HttpServer::port() after Start), which tests and benches use.
  std::string bind_address = "127.0.0.1";
  uint16_t port = 8080;
  int listen_backlog = 511;

  /// Event (epoll) threads; connections are assigned round-robin. The
  /// acceptor shares the first loop.
  size_t event_threads = 1;

  /// Worker threads executing queries (Session::Execute blocks, so it must
  /// never run on an event thread).
  size_t query_threads = 4;

  /// Server-wide bound on queries in flight; exceeding it sheds with 503.
  size_t max_inflight_queries = 64;

  /// Queue-mode admission: when > 0, a request over max_inflight_queries
  /// parks in a bounded FIFO (this deep) instead of shedding immediately,
  /// and is shed with 503 + Retry-After only when the queue is full or no
  /// slot frees within admission_queue_wait_ms. 0 keeps pure shed mode.
  /// Queue mode needs query_threads > the number of workers a test (or
  /// workload) can block, since waiters park on a worker thread.
  size_t admission_queue_depth = 0;
  uint64_t admission_queue_wait_ms = 100;

  /// Bound on open connections; beyond it, accepted sockets are closed
  /// immediately (counted in stats().connections_shed).
  size_t max_connections = 4096;

  /// Per-request limits fed to the HTTP parser.
  size_t max_request_head_bytes = 16 * 1024;
  size_t max_request_body_bytes = 1 << 20;

  /// Row-batch size of streamed query responses (one HTTP chunk per batch).
  size_t response_batch_rows = 256;
};

/// Monotonic server-level counters, all readable while serving.
struct HttpServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_shed = 0;  // over max_connections
  uint64_t connections_active = 0;
  uint64_t requests_total = 0;        // parsed HTTP requests routed
  uint64_t bad_requests = 0;          // parse errors answered 4xx/5xx
  uint64_t queries_admitted = 0;
  uint64_t queries_shed_global = 0;   // 503: server-wide bound
  uint64_t queries_shed_tenant = 0;   // 503: tenant quota
  uint64_t queries_inflight = 0;
  uint64_t disconnect_cancels = 0;    // client gone -> RequestCancel
  uint64_t admission_queued = 0;        // requests that parked in the queue
  uint64_t admission_queue_timeouts = 0;  // parked, then shed on timeout
};

class HttpServer {
 public:
  /// The registry must outlive the server; tenants must be fully added
  /// before Start.
  HttpServer(const TenantRegistry* tenants, ServerConfig config);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and spawns the event + worker threads. Fails without
  /// side effects (no threads) on bind/listen errors.
  Status Start();

  /// Graceful shutdown: stops accepting, lets in-flight queries finish,
  /// flushes their responses, closes every connection, joins all threads.
  /// Idempotent.
  void Stop();

  /// The bound port (resolves port 0 after Start).
  uint16_t port() const { return port_; }
  const ServerConfig& config() const { return config_; }

  HttpServerStats stats() const;

  /// The /metrics payload: server counters plus every tenant's Db::stats(),
  /// rendered as Prometheus text format.
  std::string RenderMetrics() const;

  /// Test hook: runs on the query worker right before a query executes,
  /// with the admission slots held. Lets tests deterministically hold a
  /// query in flight (admission overflow, disconnect-cancellation).
  void set_test_pre_query_hook(std::function<void()> hook);

 private:
  struct Connection;
  class Acceptor;
  class WorkerPool;
  /// Per-loop ownership map of the connections assigned to that loop;
  /// touched only from the loop's own thread.
  struct LoopConnections;

  friend struct Connection;
  friend class Acceptor;

  EventLoop* NextLoop();
  void AdoptConnection(int fd);
  void ForgetConnection(size_t loop_index, Connection* conn);
  /// Routes one parsed request on the connection's loop thread.
  void Dispatch(std::shared_ptr<Connection> conn);
  void SubmitQuery(std::shared_ptr<Connection> conn,
                   std::shared_ptr<Tenant> tenant, std::string sql,
                   AdmissionSlot global_slot, AdmissionSlot tenant_slot,
                   std::chrono::steady_clock::time_point deadline);
  /// Parses the JSON row payload and runs Db::Append on a query worker
  /// (ingestion blocks on the writer lock, so it never runs on an event
  /// thread). Shares the query admission bounds.
  void SubmitIngest(std::shared_ptr<Connection> conn,
                    std::shared_ptr<Tenant> tenant, std::string table,
                    std::string body, AdmissionSlot global_slot,
                    AdmissionSlot tenant_slot);
  /// The /v1/models payload: every tenant's (or one tenant's) Db::Freshness
  /// rendered as JSON. Cheap enough for the event thread.
  std::string RenderModels(const std::string& tenant_name,
                           int* http_status) const;

  const TenantRegistry* tenants_;
  ServerConfig config_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  bool running_ = false;

  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::vector<std::unique_ptr<LoopConnections>> conns_;
  std::unique_ptr<Acceptor> acceptor_;
  std::unique_ptr<WorkerPool> workers_;
  AdmissionController query_admission_;
  std::atomic<size_t> next_loop_{0};

  // Counters not already owned by an AdmissionController.
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_shed_{0};
  std::atomic<uint64_t> connections_active_{0};
  std::atomic<uint64_t> requests_total_{0};
  std::atomic<uint64_t> bad_requests_{0};
  std::atomic<uint64_t> tenant_shed_{0};
  std::atomic<uint64_t> disconnect_cancels_{0};

  std::mutex hook_mu_;
  std::function<void()> test_pre_query_hook_;
};

}  // namespace server
}  // namespace restore

#endif  // RESTORE_SERVER_SERVER_H_
