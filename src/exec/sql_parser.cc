#include "exec/sql_parser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

#include "common/string_util.h"

namespace restore {

namespace {

enum class TokenType {
  kIdentifier,  // also keywords; normalized lower-case available
  kNumber,
  kString,
  kSymbol,  // ( ) , ; * = != <> < <= > >=
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // raw text
  std::string lower;  // lower-cased text (identifiers/keywords)
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tokens.push_back(LexIdentifier());
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && pos_ + 1 < input_.size() &&
                  std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
        tokens.push_back(LexNumber());
      } else if (c == '\'') {
        RESTORE_ASSIGN_OR_RETURN(Token t, LexString());
        tokens.push_back(std::move(t));
      } else {
        RESTORE_ASSIGN_OR_RETURN(Token t, LexSymbol());
        tokens.push_back(std::move(t));
      }
    }
    tokens.push_back(Token{TokenType::kEnd, "", ""});
    return tokens;
  }

 private:
  Token LexIdentifier() {
    size_t start = pos_;
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.') {
        ++pos_;
      } else {
        break;
      }
    }
    std::string text = input_.substr(start, pos_ - start);
    std::string lower = ToLower(text);
    return Token{TokenType::kIdentifier, std::move(text), std::move(lower)};
  }

  Token LexNumber() {
    size_t start = pos_;
    if (input_[pos_] == '-') ++pos_;
    while (pos_ < input_.size() &&
           (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '.')) {
      ++pos_;
    }
    std::string text = input_.substr(start, pos_ - start);
    return Token{TokenType::kNumber, text, text};
  }

  Result<Token> LexString() {
    ++pos_;  // opening quote
    size_t start = pos_;
    while (pos_ < input_.size() && input_[pos_] != '\'') ++pos_;
    if (pos_ >= input_.size()) {
      return Status::ParseError("unterminated string literal");
    }
    std::string text = input_.substr(start, pos_ - start);
    ++pos_;  // closing quote
    return Token{TokenType::kString, text, text};
  }

  Result<Token> LexSymbol() {
    const char c = input_[pos_];
    auto two = [&](const char* sym) {
      pos_ += 2;
      return Token{TokenType::kSymbol, sym, sym};
    };
    if (c == '!' && pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
      return two("!=");
    }
    if (c == '<' && pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
      return two("<=");
    }
    if (c == '<' && pos_ + 1 < input_.size() && input_[pos_ + 1] == '>') {
      return two("!=");
    }
    if (c == '>' && pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
      return two(">=");
    }
    switch (c) {
      case '(':
      case ')':
      case ',':
      case ';':
      case '*':
      case '=':
      case '<':
      case '>':
      case '?': {
        ++pos_;
        std::string s(1, c);
        return Token{TokenType::kSymbol, s, s};
      }
      default:
        return Status::ParseError(
            StrFormat("unexpected character '%c' at position %zu", c, pos_));
    }
  }

  const std::string& input_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Parse() {
    Query query;
    RESTORE_RETURN_IF_ERROR(ExpectKeyword("select"));
    RESTORE_RETURN_IF_ERROR(ParseAggregateList(&query));
    RESTORE_RETURN_IF_ERROR(ExpectKeyword("from"));
    RESTORE_RETURN_IF_ERROR(ParseFrom(&query));
    if (AcceptKeyword("where")) {
      RESTORE_RETURN_IF_ERROR(ParsePredicates(&query));
    }
    if (AcceptKeyword("group")) {
      RESTORE_RETURN_IF_ERROR(ExpectKeyword("by"));
      RESTORE_RETURN_IF_ERROR(ParseGroupBy(&query));
    }
    AcceptSymbol(";");
    if (Peek().type != TokenType::kEnd) {
      return Status::ParseError(
          StrFormat("trailing input starting at '%s'", Peek().text.c_str()));
    }
    return query;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool AcceptKeyword(const std::string& kw) {
    if (Peek().type == TokenType::kIdentifier && Peek().lower == kw) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) {
      return Status::ParseError(StrFormat("expected '%s', got '%s'",
                                          kw.c_str(), Peek().text.c_str()));
    }
    return Status::OK();
  }

  bool AcceptSymbol(const std::string& sym) {
    if (Peek().type == TokenType::kSymbol && Peek().text == sym) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectSymbol(const std::string& sym) {
    if (!AcceptSymbol(sym)) {
      return Status::ParseError(StrFormat("expected '%s', got '%s'",
                                          sym.c_str(), Peek().text.c_str()));
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::ParseError(
          StrFormat("expected identifier, got '%s'", Peek().text.c_str()));
    }
    return Advance().text;
  }

  Status ParseAggregateList(Query* query) {
    do {
      AggregateSpec agg;
      RESTORE_ASSIGN_OR_RETURN(std::string func, ExpectIdentifier());
      std::string lower = ToLower(func);
      if (lower == "count") {
        agg.func = AggregateFunc::kCount;
      } else if (lower == "sum") {
        agg.func = AggregateFunc::kSum;
      } else if (lower == "avg") {
        agg.func = AggregateFunc::kAvg;
      } else {
        return Status::ParseError(
            StrFormat("unknown aggregate function '%s'", func.c_str()));
      }
      RESTORE_RETURN_IF_ERROR(ExpectSymbol("("));
      if (AcceptSymbol("*")) {
        if (agg.func != AggregateFunc::kCount) {
          return Status::ParseError("'*' only allowed in COUNT(*)");
        }
      } else {
        RESTORE_ASSIGN_OR_RETURN(agg.column, ExpectIdentifier());
      }
      RESTORE_RETURN_IF_ERROR(ExpectSymbol(")"));
      query->aggregates.push_back(std::move(agg));
    } while (AcceptSymbol(","));
    return Status::OK();
  }

  Status ParseFrom(Query* query) {
    RESTORE_ASSIGN_OR_RETURN(std::string first, ExpectIdentifier());
    query->tables.push_back(std::move(first));
    while (AcceptKeyword("natural")) {
      RESTORE_RETURN_IF_ERROR(ExpectKeyword("join"));
      RESTORE_ASSIGN_OR_RETURN(std::string t, ExpectIdentifier());
      query->tables.push_back(std::move(t));
    }
    return Status::OK();
  }

  Status ParsePredicates(Query* query) {
    do {
      Predicate pred;
      RESTORE_ASSIGN_OR_RETURN(pred.column, ExpectIdentifier());
      if (Peek().type != TokenType::kSymbol) {
        return Status::ParseError(StrFormat("expected comparison, got '%s'",
                                            Peek().text.c_str()));
      }
      const std::string sym = Advance().text;
      if (sym == "=") {
        pred.op = CompareOp::kEq;
      } else if (sym == "!=") {
        pred.op = CompareOp::kNe;
      } else if (sym == "<") {
        pred.op = CompareOp::kLt;
      } else if (sym == "<=") {
        pred.op = CompareOp::kLe;
      } else if (sym == ">") {
        pred.op = CompareOp::kGt;
      } else if (sym == ">=") {
        pred.op = CompareOp::kGe;
      } else {
        return Status::ParseError(
            StrFormat("unknown comparison operator '%s'", sym.c_str()));
      }
      if (Peek().type == TokenType::kNumber) {
        const std::string num = Advance().text;
        if (num.find('.') != std::string::npos) {
          pred.literal = Value::Double(std::strtod(num.c_str(), nullptr));
        } else {
          pred.literal =
              Value::Int64(std::strtoll(num.c_str(), nullptr, 10));
        }
      } else if (Peek().type == TokenType::kString) {
        pred.literal = Value::Categorical(Advance().text);
      } else if (AcceptSymbol("?")) {
        pred.param_index = static_cast<int>(query->num_params++);
      } else {
        return Status::ParseError(
            StrFormat("expected literal or '?', got '%s'",
                      Peek().text.c_str()));
      }
      query->predicates.push_back(std::move(pred));
    } while (AcceptKeyword("and"));
    return Status::OK();
  }

  Status ParseGroupBy(Query* query) {
    do {
      RESTORE_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      query->group_by.push_back(std::move(col));
    } while (AcceptSymbol(","));
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseSql(const std::string& sql) {
  Lexer lexer(sql);
  RESTORE_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace restore
