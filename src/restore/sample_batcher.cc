#include "restore/sample_batcher.h"

#include <utility>

namespace restore {

namespace {

constexpr auto kNoDeadline = std::chrono::steady_clock::time_point::max();

double SecondsSince(std::chrono::steady_clock::time_point from,
                    std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

SampleBatcher::~SampleBatcher() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return queue_.empty() && !leader_active_; });
}

void SampleBatcher::Configure(const Config& config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
  enabled_.store(
      config.enabled && !model_->config().incremental_sampling,
      std::memory_order_release);
}

SampleBatcher::Config SampleBatcher::config() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_;
}

void SampleBatcher::set_test_min_requests(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  test_min_requests_ = n;
  cv_.notify_all();
}

void SampleBatcher::FillControl(Request* req, const ExecContext* ctx) const {
  if (ctx == nullptr) return;
  req->cancel_flag = ctx->cancel_flag();
  req->deadline = ctx->deadline();
  req->stats = ctx->stats();
}

Status SampleBatcher::SampleRange(IntMatrix* codes, const Matrix& context,
                                  size_t first_attr, size_t end_attr,
                                  Rng& rng, int record_attr, Matrix* recorded,
                                  const ExecContext* ctx) {
  if (!enabled()) {
    // Solo fast path: live rng, cooperative checkpoints through the
    // caller's own context — exactly the pre-batching execution.
    auto lease = pool_->Acquire();
    if (ctx != nullptr && ctx->stats() != nullptr) {
      ++ctx->stats()->arenas_leased;
    }
    std::function<bool()> should_stop;
    if (ctx != nullptr) {
      should_stop = [ctx] { return !ctx->Check().ok(); };
    }
    model_->SampleRange(codes, context, first_attr, end_attr, rng,
                        record_attr, recorded, &lease->made, should_stop);
    return ExecContext::Check(ctx);
  }
  Request req;
  req.kind = Kind::kSample;
  req.codes = codes;
  req.context = &context;
  req.first_attr = first_attr;
  req.end_attr = end_attr;
  req.record_attr = record_attr;
  req.recorded = recorded;
  req.rows = codes->rows();
  FillControl(&req, ctx);
  // Pre-draw the whole window attr-major-then-row — the exact order the
  // unbatched loop consumes the stream — so the caller's rng ends in the
  // identical state and each (attr, row) sees the identical uniform.
  req.uniforms.resize((end_attr - first_attr) * req.rows);
  for (double& u : req.uniforms) u = rng.NextDouble();
  return Submit(&req);
}

Status SampleBatcher::PredictDistribution(const IntMatrix& codes,
                                          const Matrix& context, size_t attr,
                                          Matrix* probs,
                                          const ExecContext* ctx) {
  if (!enabled()) {
    auto lease = pool_->Acquire();
    if (ctx != nullptr && ctx->stats() != nullptr) {
      ++ctx->stats()->arenas_leased;
    }
    model_->PredictDistribution(codes, context, attr, probs, &lease->made);
    return ExecContext::Check(ctx);
  }
  Request req;
  req.kind = Kind::kPredict;
  req.pcodes = &codes;
  req.context = &context;
  req.attr = attr;
  req.probs = probs;
  req.rows = codes.rows();
  FillControl(&req, ctx);
  return Submit(&req);
}

Status SampleBatcher::Submit(Request* req) {
  std::unique_lock<std::mutex> lock(mu_);
  const Config cfg = config_;
  req->enqueued = std::chrono::steady_clock::now();
  if (!cfg.enabled) {
    // Disabled between the entry check and here: run as a batch of one
    // (bit-identical — the uniforms are already drawn).
    lock.unlock();
    ExecuteBatch({req});
    return req->status;
  }
  queue_.push_back(req);
  queued_rows_ += req->rows;
  cv_.notify_all();
  // Follower: wait until a leader scatters our result — or until there is
  // no leader, in which case we take over (the re-check under the lock
  // serializes contenders).
  while (!req->done && leader_active_) cv_.wait(lock);
  if (req->done) return req->status;
  leader_active_ = true;
  // Collect batch-mates for a bounded wait from OUR enqueue (a promoted
  // leader has typically already waited it out and executes immediately).
  const auto wait_deadline =
      req->enqueued + std::chrono::microseconds(cfg.wait_us);
  for (;;) {
    if (queued_rows_ >= cfg.max_rows) break;
    if (test_min_requests_ > 0) {
      if (queue_.size() >= test_min_requests_) break;
      cv_.wait(lock);
      continue;
    }
    if (cv_.wait_until(lock, wait_deadline) == std::cv_status::timeout) {
      break;
    }
  }
  std::vector<Request*> batch;
  batch.swap(queue_);
  queued_rows_ = 0;
  lock.unlock();
  ExecuteBatch(batch);
  lock.lock();
  for (Request* r : batch) r->done = true;
  leader_active_ = false;
  cv_.notify_all();
  return req->status;
}

void SampleBatcher::ExecuteBatch(const std::vector<Request*>& batch) {
  const auto start = std::chrono::steady_clock::now();
  // Weed requests that died while queued; they are dropped here without
  // touching their outputs, and their batch-mates proceed unaffected.
  std::vector<Request*> live;
  size_t sample_count = 0;
  size_t predict_count = 0;
  size_t sample_rows = 0;
  size_t predict_rows = 0;
  for (Request* r : batch) {
    r->status = Status::OK();
    if (r->cancel_flag != nullptr &&
        r->cancel_flag->load(std::memory_order_acquire)) {
      r->status = Status::Cancelled("query cancelled by caller");
    } else if (r->deadline != kNoDeadline && start >= r->deadline) {
      r->status = Status::DeadlineExceeded("query deadline exceeded");
    }
    if (r->stats != nullptr) {
      r->stats->batch_wait_seconds += SecondsSince(r->enqueued, start);
    }
    if (!r->status.ok()) continue;
    live.push_back(r);
    if (r->kind == Kind::kSample) {
      ++sample_count;
      sample_rows += r->rows;
    } else {
      ++predict_count;
      predict_rows += r->rows;
    }
  }
  if (live.empty()) return;
  // One arena serves the whole batch (src/nn/README.md rule 5). It is
  // charged to every live rider so a query's arenas_leased is independent
  // of how its requests happened to coalesce.
  auto lease = pool_->Acquire();
  for (Request* r : live) {
    if (r->stats == nullptr) continue;
    ++r->stats->arenas_leased;
    const bool sample = r->kind == Kind::kSample;
    r->stats->coalesced_rows += sample ? sample_rows : predict_rows;
    if ((sample ? sample_count : predict_count) >= 2) {
      ++r->stats->batches_joined;
    }
  }
  if (sample_count > 0) {
    std::vector<Request*> reqs;
    std::vector<MadeSampleSpec> specs;
    reqs.reserve(sample_count);
    specs.reserve(sample_count);
    for (Request* r : live) {
      if (r->kind != Kind::kSample) continue;
      reqs.push_back(r);
      MadeSampleSpec spec;
      spec.codes = r->codes;
      spec.context = r->context;
      spec.first_attr = r->first_attr;
      spec.end_attr = r->end_attr;
      spec.record_attr = r->record_attr;
      spec.recorded = r->recorded;
      spec.uniforms = r->uniforms.data();
      specs.push_back(spec);
    }
    // Per-attribute cooperative checkpoint: flags/deadlines only — a
    // request's progress callback must stay on its own thread, so the
    // leader never calls a batch-mate's Check().
    auto poll = [&reqs, &specs] {
      const auto now = std::chrono::steady_clock::now();
      for (size_t i = 0; i < reqs.size(); ++i) {
        if (specs[i].dead) continue;
        Request* r = reqs[i];
        if (r->cancel_flag != nullptr &&
            r->cancel_flag->load(std::memory_order_acquire)) {
          specs[i].dead = true;
          r->status = Status::Cancelled("query cancelled by caller");
        } else if (r->deadline != kNoDeadline && now >= r->deadline) {
          specs[i].dead = true;
          r->status = Status::DeadlineExceeded("query deadline exceeded");
        }
      }
    };
    model_->SampleRangeBatched(&specs, &lease->made, poll);
  }
  if (predict_count > 0) {
    std::vector<MadePredictSpec> specs;
    specs.reserve(predict_count);
    for (Request* r : live) {
      if (r->kind != Kind::kPredict) continue;
      MadePredictSpec spec;
      spec.codes = r->pcodes;
      spec.context = r->context;
      spec.attr = r->attr;
      spec.probs = r->probs;
      specs.push_back(spec);
    }
    model_->PredictDistributionBatched(&specs, &lease->made);
  }
}

}  // namespace restore
