#ifndef RESTORE_COMMON_RESULT_H_
#define RESTORE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace restore {

/// A value-or-error holder (similar to arrow::Result / absl::StatusOr).
///
/// Usage:
///   Result<Table> r = BuildTable(...);
///   if (!r.ok()) return r.status();
///   Table t = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Constructs a result holding a value. Implicit on purpose so that
  /// `return value;` works in functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs a result holding an error. `status` must be non-OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok());
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define RESTORE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value();

#define RESTORE_ASSIGN_OR_RETURN(lhs, expr)                               \
  RESTORE_ASSIGN_OR_RETURN_IMPL(RESTORE_CONCAT_(_result_, __LINE__), lhs, \
                                expr)

#define RESTORE_CONCAT_INNER_(a, b) a##b
#define RESTORE_CONCAT_(a, b) RESTORE_CONCAT_INNER_(a, b)

}  // namespace restore

#endif  // RESTORE_COMMON_RESULT_H_
