#ifndef RESTORE_NN_INFERENCE_SCRATCH_H_
#define RESTORE_NN_INFERENCE_SCRATCH_H_

#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "nn/matrix.h"

namespace restore {

/// Per-call activation/workspace buffers of one MadeModel inference pass.
/// The model itself is immutable during inference (see src/nn/README.md
/// "Consumers"); every mutable byte a forward pass touches lives here, so
/// any number of threads can run passes over ONE model concurrently as long
/// as each brings its own scratch. Buffers use the shape-preserving
/// Matrix::Resize, so a scratch reused against the same model allocates
/// nothing at steady state.
struct MadeScratch {
  Matrix x0;                 // embedded input
  std::vector<Matrix> relu;  // relu(z_l) per layer
  std::vector<Matrix> h;     // post-residual activation per layer (l >= 1)
  Matrix ctx;                // per-layer context projection
  Matrix ctx_out;            // output-layer context projection
  Matrix logits;             // SampleRange/PredictDistribution logits buffer
  std::vector<double> u;     // SampleRange pre-drawn uniforms
  // Incremental-sampling state (MadeConfig::incremental_sampling): the
  // first layer's pre-activation (x0·W1 + b1 [+ ctx]) and the embedding
  // delta of the just-sampled attribute. Valid ONLY within one SampleRange
  // call — `x0` and `z1_lin` must describe the same codes, which holds
  // between that call's consecutive attributes and nowhere else, so every
  // SampleRange cold-starts them (arena rule 4 in src/nn/README.md).
  Matrix z1_lin;       // first-layer pre-activation carried across attrs
  Matrix delta_embed;  // (e_new - e_old) of the just-sampled attribute
  // Multi-request staging for the batched entry points
  // (MadeModel::SampleRangeBatched / PredictDistributionBatched): the
  // requests' code/context rows stacked into one minibatch, plus the
  // row -> request-index map the scatter phase uses. One arena serves the
  // whole coalesced batch (src/nn/README.md rule 5); per-request outputs
  // are written back through disjoint row windows.
  IntMatrix batch_codes;           // stacked request codes
  Matrix batch_context;            // stacked request conditioning rows
  std::vector<uint32_t> batch_owner;  // stacked row -> request index
};

/// Per-call workspace of one DeepSetsEncoder inference pass. Child tables
/// are processed one at a time and pooled immediately, so a single set of
/// per-table buffers is reused across tables.
struct DeepSetsScratch {
  Matrix embedded;  // child-tuple embeddings of the current table
  Matrix z1;        // relu(phi1(embedded))
  Matrix z2;        // relu(phi2(z1))
  Matrix pooled;    // [batch x num_tables*phi_dim] sum-pooled
};

/// The full arena a PathModel inference entry point needs: MADE + deep-sets
/// workspaces plus the intermediate tensors that flow between them.
struct InferenceScratch {
  MadeScratch made;
  DeepSetsScratch deep_sets;
  Matrix context;  // deep-sets output fed to the MADE as conditioning input
  Matrix probs;    // predictive-distribution buffer
};

/// A mutex-guarded freelist of InferenceScratch arenas. Acquire() pops a
/// free arena (or creates one on first use); the returned Lease gives it
/// back on destruction. The lock is held only for the pop/push — never
/// across a forward pass — so N concurrent inference calls proceed on N
/// arenas with no serialization. At steady state the pool holds up to
/// max_idle() arenas, each already shaped for its model (PathModel owns one
/// pool per model, keyed by identity).
///
/// Bounded retention: arenas are ~batch x hidden floats each, so a server
/// hosting thousands of models must not let every pool keep its historic
/// peak concurrency forever. Release() retains at most `max_idle` arenas;
/// leases beyond that cap still succeed (allocate-and-free), they just
/// don't pool. 0 means unbounded.
class InferenceScratchPool {
 public:
  /// Default retention cap. Generous for typical per-model concurrency
  /// (a handful of sessions) while bounding thousand-model deployments.
  static constexpr size_t kDefaultMaxIdle = 8;

  explicit InferenceScratchPool(size_t max_idle = kDefaultMaxIdle)
      : max_idle_(max_idle) {}

  class Lease {
   public:
    Lease(InferenceScratchPool* pool, std::unique_ptr<InferenceScratch> s)
        : pool_(pool), scratch_(std::move(s)) {}
    ~Lease() {
      if (scratch_ != nullptr) pool_->Release(std::move(scratch_));
    }
    Lease(Lease&&) = default;
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    InferenceScratch* operator->() { return scratch_.get(); }
    InferenceScratch& operator*() { return *scratch_; }
    InferenceScratch* get() { return scratch_.get(); }

   private:
    InferenceScratchPool* pool_;
    std::unique_ptr<InferenceScratch> scratch_;
  };

  Lease Acquire() {
    std::unique_ptr<InferenceScratch> s;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++total_leases_;
      if (!free_.empty()) {
        s = std::move(free_.back());
        free_.pop_back();
      }
    }
    if (s == nullptr) s = std::make_unique<InferenceScratch>();
    return Lease(this, std::move(s));
  }

  /// Number of idle arenas currently pooled (for tests/introspection).
  size_t idle() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }

  /// Maximum idle arenas retained (0 = unbounded).
  size_t max_idle() const {
    std::lock_guard<std::mutex> lock(mu_);
    return max_idle_;
  }
  /// Reconfigures the retention cap; surplus idle arenas are freed here.
  void set_max_idle(size_t max_idle) {
    std::lock_guard<std::mutex> lock(mu_);
    max_idle_ = max_idle;
    if (max_idle_ > 0 && free_.size() > max_idle_) free_.resize(max_idle_);
  }

  /// Total Acquire() calls over the pool's lifetime.
  size_t total_leases() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_leases_;
  }
  /// Arenas released but not retained because the pool was at max_idle.
  size_t dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
  }

 private:
  void Release(std::unique_ptr<InferenceScratch> s) {
    std::lock_guard<std::mutex> lock(mu_);
    if (max_idle_ > 0 && free_.size() >= max_idle_) {
      ++dropped_;
      return;  // allocate-and-free beyond the cap; ~s frees it
    }
    free_.push_back(std::move(s));
  }

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<InferenceScratch>> free_;
  size_t max_idle_ = kDefaultMaxIdle;
  size_t total_leases_ = 0;
  size_t dropped_ = 0;
};

}  // namespace restore

#endif  // RESTORE_NN_INFERENCE_SCRATCH_H_
