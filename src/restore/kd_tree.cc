#include "restore/kd_tree.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace restore {

KdTree::KdTree(std::vector<float> points, size_t num_points, size_t dim,
               size_t leaf_size)
    : points_(std::move(points)),
      num_points_(num_points),
      dim_(dim),
      leaf_size_(std::max<size_t>(1, leaf_size)) {
  assert(points_.size() == num_points_ * dim_);
  order_.resize(num_points_);
  for (size_t i = 0; i < num_points_; ++i) order_[i] = i;
  if (num_points_ > 0) {
    nodes_.reserve(2 * num_points_ / leaf_size_ + 2);
    root_ = BuildRecursive(0, num_points_, 0);
  }
}

int KdTree::BuildRecursive(size_t begin, size_t end, size_t depth) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  if (end - begin <= leaf_size_) {
    nodes_[node_id].begin = begin;
    nodes_[node_id].end = end;
    return node_id;
  }
  // Pick the dimension with the largest spread for a balanced split.
  size_t split_dim = depth % dim_;
  float best_spread = -1.0f;
  for (size_t d = 0; d < dim_; ++d) {
    float lo = std::numeric_limits<float>::max();
    float hi = std::numeric_limits<float>::lowest();
    for (size_t i = begin; i < end; ++i) {
      const float v = points_[order_[i] * dim_ + d];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_spread) {
      best_spread = hi - lo;
      split_dim = d;
    }
  }
  const size_t mid = (begin + end) / 2;
  std::nth_element(order_.begin() + begin, order_.begin() + mid,
                   order_.begin() + end, [&](size_t a, size_t b) {
                     return points_[a * dim_ + split_dim] <
                            points_[b * dim_ + split_dim];
                   });
  const float split_value = points_[order_[mid] * dim_ + split_dim];
  // Degenerate split (all values equal): make a leaf.
  if (best_spread <= 0.0f) {
    nodes_[node_id].begin = begin;
    nodes_[node_id].end = end;
    return node_id;
  }
  const int left = BuildRecursive(begin, mid, depth + 1);
  const int right = BuildRecursive(mid, end, depth + 1);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  nodes_[node_id].split_dim = split_dim;
  nodes_[node_id].split_value = split_value;
  return node_id;
}

float KdTree::Distance2(size_t point, const float* query) const {
  const float* p = points_.data() + point * dim_;
  float acc = 0.0f;
  for (size_t d = 0; d < dim_; ++d) {
    const float diff = p[d] - query[d];
    acc += diff * diff;
  }
  return acc;
}

void KdTree::Search(int node_id, const float* query, size_t* best,
                    float* best_dist, size_t* leaves_left) const {
  if (*leaves_left == 0) return;
  const Node& node = nodes_[static_cast<size_t>(node_id)];
  if (node.left < 0) {  // leaf
    for (size_t i = node.begin; i < node.end; ++i) {
      const float d = Distance2(order_[i], query);
      if (d < *best_dist) {
        *best_dist = d;
        *best = order_[i];
      }
    }
    --*leaves_left;
    return;
  }
  const float diff = query[node.split_dim] - node.split_value;
  const int near = diff < 0.0f ? node.left : node.right;
  const int far = diff < 0.0f ? node.right : node.left;
  Search(near, query, best, best_dist, leaves_left);
  if (diff * diff < *best_dist) {
    Search(far, query, best, best_dist, leaves_left);
  }
}

size_t KdTree::NearestNeighbor(const float* query) const {
  return ApproxNearestNeighbor(query, std::numeric_limits<size_t>::max());
}

size_t KdTree::ApproxNearestNeighbor(const float* query,
                                     size_t max_leaves) const {
  assert(num_points_ > 0);
  size_t best = order_[0];
  float best_dist = std::numeric_limits<float>::max();
  size_t leaves_left = std::max<size_t>(1, max_leaves);
  Search(root_, query, &best, &best_dist, &leaves_left);
  return best;
}

}  // namespace restore
