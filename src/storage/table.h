#ifndef RESTORE_STORAGE_TABLE_H_
#define RESTORE_STORAGE_TABLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/column.h"

namespace restore {

/// Declarative description of one column (name + type).
struct ColumnSpec {
  std::string name;
  ColumnType type;
};

/// An in-memory table: a list of equally-sized typed columns.
///
/// Column names inside a table are unique. Joined intermediate results use
/// qualified names ("table.column") produced by the executor.
class Table {
 public:
  Table() = default;
  explicit Table(std::string name) : name_(std::move(name)) {}
  Table(std::string name, const std::vector<ColumnSpec>& specs);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t NumRows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }
  size_t NumColumns() const { return columns_.size(); }

  /// Adds an empty column. Fails if the name already exists or if the table
  /// already has rows.
  Status AddColumn(const std::string& name, ColumnType type);
  /// Adds a fully-populated column (size must match existing rows).
  Status AddColumn(Column column);

  /// Index of a column by (exact) name.
  Result<size_t> ColumnIndex(const std::string& name) const;
  bool HasColumn(const std::string& name) const;

  const Column& column(size_t i) const { return columns_[i]; }
  Column& column(size_t i) { return columns_[i]; }
  Result<const Column*> GetColumn(const std::string& name) const;
  Result<Column*> GetMutableColumn(const std::string& name);

  const std::vector<Column>& columns() const { return columns_; }

  /// Appends one row given as dynamically-typed values (size must equal
  /// NumColumns()).
  Status AppendRow(const std::vector<Value>& row);

  /// Returns a new table with only the rows in `rows` (in that order).
  Table GatherRows(const std::vector<size_t>& rows) const;

  /// Returns a new table with only the named columns.
  Result<Table> Project(const std::vector<std::string>& column_names) const;

  /// Appends all rows of `other`; schemas must match (name, type, order).
  Status AppendTable(const Table& other);

  /// Renames every column to "<prefix>.<name>" unless already qualified.
  void QualifyColumnNames(const std::string& prefix);

  /// Human-readable preview of up to `max_rows` rows (for examples/tests).
  std::string ToString(size_t max_rows = 10) const;

 private:
  std::string name_;
  std::vector<Column> columns_;
};

}  // namespace restore

#endif  // RESTORE_STORAGE_TABLE_H_
