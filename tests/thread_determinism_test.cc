// Determinism regression test for the threaded NN substrate: training and
// sampling a MadeModel with the global pool at 1 vs. 4 threads must produce
// bit-identical losses and samples for a fixed seed. This pins the contract
// documented in src/nn/README.md — shard boundaries and accumulation orders
// depend only on problem shapes, never on the thread count.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "datagen/incompleteness.h"
#include "datagen/synthetic.h"
#include "nn/adam.h"
#include "nn/made.h"
#include "nn/matrix.h"
#include "restore/db.h"

namespace restore {
namespace {

struct TrainResult {
  std::vector<float> losses;
  std::vector<int32_t> samples;
  std::vector<float> probs;
};

/// Trains a small MADE for a few steps and then samples from it, entirely
/// driven by the fixed seed.
TrainResult TrainAndSample(uint64_t seed) {
  Rng rng(seed);
  MadeConfig config;
  // One wide attribute (vocab 300) forces the loss row grain down to
  // max(16, 4096/300) = 16, so the 96-row batch spans 6 shards and the
  // per-shard partial-sum reduction order is actually exercised — a single
  // collapsed shard at width 1 would produce different float sums.
  config.vocab_sizes = {7, 300, 11, 3};
  config.embed_dim = 4;
  config.hidden_dim = 32;
  config.num_layers = 2;
  MadeModel made(config, rng);

  const size_t batch = 96;
  IntMatrix codes(batch, config.vocab_sizes.size());
  for (size_t r = 0; r < batch; ++r) {
    for (size_t a = 0; a < config.vocab_sizes.size(); ++a) {
      codes.at(r, a) = static_cast<int32_t>(
          rng.NextUint64(static_cast<uint64_t>(config.vocab_sizes[a])));
    }
  }

  std::vector<Param*> params;
  made.CollectParams(&params);
  AdamOptimizer adam(params);

  TrainResult result;
  const Matrix empty_context;
  Matrix logits;
  Matrix dlogits;
  for (int step = 0; step < 8; ++step) {
    made.Forward(codes, empty_context, &logits);
    result.losses.push_back(made.NllLoss(logits, codes, 0, &dlogits));
    made.Backward(dlogits, nullptr);
    adam.Step();
  }

  IntMatrix sampled(batch, config.vocab_sizes.size(), 0);
  Matrix recorded;
  made.SampleRange(&sampled, empty_context, 0, config.vocab_sizes.size(), rng,
                   /*record_attr=*/2, &recorded);
  for (size_t r = 0; r < batch; ++r) {
    for (size_t a = 0; a < config.vocab_sizes.size(); ++a) {
      result.samples.push_back(sampled.at(r, a));
    }
  }
  result.probs.assign(recorded.data(), recorded.data() + recorded.size());
  return result;
}

TEST(ThreadDeterminismTest, TrainingAndSamplingIdenticalAt1And4Threads) {
  ThreadPool::SetGlobalWidth(1);
  const TrainResult single = TrainAndSample(/*seed=*/42);
  ThreadPool::SetGlobalWidth(4);
  const TrainResult quad = TrainAndSample(/*seed=*/42);
  ThreadPool::SetGlobalWidth(1);
  const TrainResult single_again = TrainAndSample(/*seed=*/42);
  // Restore the environment-default pool for any later test in this binary.
  ThreadPool::SetGlobalWidth(0);

  ASSERT_EQ(single.losses.size(), quad.losses.size());
  for (size_t i = 0; i < single.losses.size(); ++i) {
    // Bit-identical, not approximately equal.
    EXPECT_EQ(single.losses[i], quad.losses[i]) << "loss step " << i;
    EXPECT_EQ(single.losses[i], single_again.losses[i]) << "rerun step " << i;
  }
  EXPECT_TRUE(std::isfinite(single.losses.front()));
  EXPECT_LT(single.losses.back(), single.losses.front())
      << "training should reduce the loss";

  ASSERT_EQ(single.samples.size(), quad.samples.size());
  for (size_t i = 0; i < single.samples.size(); ++i) {
    ASSERT_EQ(single.samples[i], quad.samples[i]) << "sample " << i;
  }
  ASSERT_EQ(single.probs.size(), quad.probs.size());
  for (size_t i = 0; i < single.probs.size(); ++i) {
    ASSERT_EQ(single.probs[i], quad.probs[i]) << "recorded prob " << i;
  }
}

// The sliced sampling fast path (now the DEFAULT SampleRange) and the
// opt-in incremental delta path must both be bit-identical across thread
// counts: the sliced output-layer GEMM, the fused hidden trunk, the partial
// embedding re-gather, and the delta update all shard with shape-only
// grains. (CI's TSan job runs this binary repeatedly, so the sliced path is
// also raced for data coherence.)
struct SampleOnlyResult {
  std::vector<int32_t> samples;
  std::vector<float> probs;
};

SampleOnlyResult SampleSliced(uint64_t seed, bool incremental) {
  Rng rng(seed);
  MadeConfig config;
  // A wide attribute forces multi-shard row blocks (see TrainAndSample).
  config.vocab_sizes = {9, 300, 17, 40, 5};
  config.embed_dim = 6;
  config.hidden_dim = 40;
  config.num_layers = 2;
  config.incremental_sampling = incremental;
  MadeModel made(config, rng);
  made.FinalizeForInference();

  const size_t batch = 160;
  IntMatrix codes(batch, config.vocab_sizes.size(), 0);
  Matrix recorded;
  MadeScratch scratch;
  made.SampleRange(&codes, Matrix(), 0, config.vocab_sizes.size(), rng,
                   /*record_attr=*/3, &recorded, &scratch);
  SampleOnlyResult result;
  for (size_t r = 0; r < batch; ++r) {
    for (size_t a = 0; a < config.vocab_sizes.size(); ++a) {
      result.samples.push_back(codes.at(r, a));
    }
  }
  result.probs.assign(recorded.data(), recorded.data() + recorded.size());
  return result;
}

TEST(ThreadDeterminismTest, SlicedSamplingIdenticalAt1And4Threads) {
  for (const bool incremental : {false, true}) {
    ThreadPool::SetGlobalWidth(1);
    const SampleOnlyResult single = SampleSliced(7, incremental);
    ThreadPool::SetGlobalWidth(4);
    const SampleOnlyResult quad = SampleSliced(7, incremental);
    ThreadPool::SetGlobalWidth(0);

    ASSERT_EQ(single.samples.size(), quad.samples.size());
    for (size_t i = 0; i < single.samples.size(); ++i) {
      ASSERT_EQ(single.samples[i], quad.samples[i])
          << "sample " << i << " incremental=" << incremental;
    }
    ASSERT_EQ(single.probs.size(), quad.probs.size());
    for (size_t i = 0; i < single.probs.size(); ++i) {
      ASSERT_EQ(single.probs[i], quad.probs[i])
          << "recorded prob " << i << " incremental=" << incremental;
    }
  }
}

// ---- Db-level concurrency ---------------------------------------------------

EngineConfig FastDbConfig() {
  EngineConfig config;
  config.model.epochs = 4;
  config.model.min_train_steps = 120;
  config.model.hidden_dim = 24;
  config.model.embed_dim = 4;
  config.model.max_bins = 12;
  config.max_candidates = 2;
  return config;
}

Database MakeIncompleteSynthetic(uint64_t seed) {
  SyntheticConfig data_config;
  data_config.num_parents = 220;
  data_config.predictability = 0.85;
  data_config.seed = seed;
  auto complete = GenerateSynthetic(data_config);
  EXPECT_TRUE(complete.ok());
  BiasedRemovalConfig removal;
  removal.table = "table_b";
  removal.column = "b";
  removal.keep_rate = 0.5;
  removal.removal_correlation = 0.5;
  removal.seed = seed + 1;
  auto incomplete = ApplyBiasedRemoval(*complete, removal);
  EXPECT_TRUE(incomplete.ok());
  EXPECT_TRUE(ThinTupleFactors(&*incomplete, 0.3, seed + 2).ok());
  return std::move(incomplete).value();
}

/// The fixed mixed workload every client runs: two ad-hoc SQL queries and
/// two prepared parameterized queries over the same table sets.
struct Workload {
  std::vector<std::string> adhoc;
  std::vector<std::pair<std::string, Value>> prepared;  // sql, bound param
};

Workload MakeWorkload(const Database& db) {
  const std::string b0 =
      db.GetTable("table_b").value()->GetColumn("b").value()->dictionary()
          ->ValueOf(0);
  Workload w;
  w.adhoc = {
      "SELECT COUNT(*) FROM table_a NATURAL JOIN table_b GROUP BY b;",
      "SELECT COUNT(*) FROM table_b GROUP BY b;",
  };
  w.prepared = {
      {"SELECT COUNT(*) FROM table_b WHERE b != ?;", Value::Categorical(b0)},
      {"SELECT COUNT(*) FROM table_a NATURAL JOIN table_b WHERE b = ?;",
       Value::Categorical(b0)},
  };
  return w;
}

/// Runs the whole workload on one session, alternating sync and async styles
/// by `flavor`, and returns the results in workload order.
std::vector<ResultSet> RunWorkload(const Session& session,
                                   const Workload& workload, int flavor) {
  std::vector<ResultSet> out;
  for (size_t i = 0; i < workload.adhoc.size(); ++i) {
    if ((flavor + static_cast<int>(i)) % 2 == 0) {
      ResultSetFuture f = session.ExecuteAsync(workload.adhoc[i]);
      Result<ResultSet>& r = f.Get();
      EXPECT_TRUE(r.ok()) << r.status();
      out.push_back(*r);
    } else {
      auto r = session.Execute(workload.adhoc[i]);
      EXPECT_TRUE(r.ok()) << r.status();
      out.push_back(*r);
    }
  }
  for (size_t i = 0; i < workload.prepared.size(); ++i) {
    auto prepared = session.Prepare(workload.prepared[i].first);
    EXPECT_TRUE(prepared.ok()) << prepared.status();
    const std::vector<Value> params{workload.prepared[i].second};
    if ((flavor + static_cast<int>(i)) % 2 == 0) {
      ResultSetFuture f = prepared->RunAsync(params);
      Result<ResultSet>& r = f.Get();
      EXPECT_TRUE(r.ok()) << r.status();
      out.push_back(*r);
    } else {
      auto r = prepared->Run(params);
      EXPECT_TRUE(r.ok()) << r.status();
      out.push_back(*r);
    }
  }
  return out;
}

TEST(DbConcurrencyTest, HammeredDbMatchesSequentialAndTrainsEachPathOnce) {
  Database incomplete = MakeIncompleteSynthetic(/*seed=*/77);
  SchemaAnnotation annotation;
  annotation.MarkIncomplete("table_b");
  const Workload workload = MakeWorkload(incomplete);

  // Sequential baseline on a fresh Db.
  ThreadPool::SetGlobalWidth(1);
  auto seq_db = Db::Open(&incomplete, annotation, {FastDbConfig(), ""});
  ASSERT_TRUE(seq_db.ok()) << seq_db.status();
  const std::vector<ResultSet> baseline =
      RunWorkload((*seq_db)->CreateSession(), workload, /*flavor=*/1);
  const size_t baseline_trained = (*seq_db)->models_trained();
  EXPECT_GT(baseline_trained, 0u);

  // 4 client threads hammering ONE fresh Db with the same mixed workload,
  // on a 4-wide pool (async queries and training share it).
  ThreadPool::SetGlobalWidth(4);
  auto conc_db = Db::Open(&incomplete, annotation, {FastDbConfig(), ""});
  ASSERT_TRUE(conc_db.ok()) << conc_db.status();
  constexpr int kClients = 4;
  std::vector<std::vector<ResultSet>> per_client(kClients);
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        per_client[c] =
            RunWorkload((*conc_db)->CreateSession(), workload, /*flavor=*/c);
      });
    }
    for (auto& t : clients) t.join();
  }
  ThreadPool::SetGlobalWidth(0);  // restore the environment default

  // Every client saw exactly the sequential answers.
  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(per_client[c].size(), baseline.size()) << "client " << c;
    for (size_t q = 0; q < baseline.size(); ++q) {
      EXPECT_EQ(per_client[c][q], baseline[q])
          << "client " << c << " query " << q;
    }
  }

  // Despite 4 clients racing on the same lazily-trained models, every
  // candidate path was trained exactly once (the once-latch contract), and
  // exactly the same paths as in the sequential run.
  EXPECT_EQ((*conc_db)->models_trained(), baseline_trained);

  // And the trained models are the ones sequential training produced.
  auto seq_cands = (*seq_db)->CandidatesFor("table_b");
  auto conc_cands = (*conc_db)->CandidatesFor("table_b");
  ASSERT_TRUE(seq_cands.ok());
  ASSERT_TRUE(conc_cands.ok());
  ASSERT_EQ(seq_cands->size(), conc_cands->size());
  for (size_t i = 0; i < seq_cands->size(); ++i) {
    EXPECT_EQ((*seq_cands)[i].path, (*conc_cands)[i].path);
    EXPECT_EQ((*seq_cands)[i].model->test_loss(),
              (*conc_cands)[i].model->test_loss())
        << "candidate " << i;
  }
}

TEST(InferenceScratchPoolTest, LeasesRecycleArenas) {
  InferenceScratchPool pool;
  EXPECT_EQ(pool.idle(), 0u);
  InferenceScratch* arena_a = nullptr;
  InferenceScratch* arena_b = nullptr;
  {
    InferenceScratchPool::Lease a = pool.Acquire();
    InferenceScratchPool::Lease b = pool.Acquire();
    arena_a = a.get();
    arena_b = b.get();
    ASSERT_NE(arena_a, nullptr);
    ASSERT_NE(arena_b, nullptr);
    EXPECT_NE(arena_a, arena_b) << "concurrent leases must not share arenas";
    EXPECT_EQ(pool.idle(), 0u) << "leased arenas are not idle";
  }
  // Both arenas returned to the freelist, and a new lease reuses one of
  // them instead of allocating a third.
  EXPECT_EQ(pool.idle(), 2u);
  InferenceScratchPool::Lease reused = pool.Acquire();
  EXPECT_EQ(pool.idle(), 1u);
  EXPECT_TRUE(reused.get() == arena_a || reused.get() == arena_b);
}

// With the per-model inference mutex gone (scratch-arena reentrancy, see
// src/nn/inference_scratch.h), concurrent forward passes over ONE hot model
// must still be bit-identical to sequential execution. This hammer removes
// every other source of concurrency from the picture: models are fully
// trained BEFORE the clients start (no training races possible) and the
// completion cache is disabled, so all 4 clients drive truly simultaneous
// SampleRange/PredictDistribution passes through the same PathModel.
TEST(DbConcurrencyTest, SingleHotPathHammerBitIdenticalWithoutMutex) {
  Database incomplete = MakeIncompleteSynthetic(/*seed=*/91);
  SchemaAnnotation annotation;
  annotation.MarkIncomplete("table_b");
  EngineConfig config = FastDbConfig();
  config.enable_cache = false;  // every execution re-runs model inference

  // The hot query joins through the completion path, so each execution runs
  // tuple-factor prediction + attribute synthesis on the shared model.
  const std::string sql =
      "SELECT COUNT(*) FROM table_a NATURAL JOIN table_b GROUP BY b;";

  ThreadPool::SetGlobalWidth(4);
  auto db = Db::Open(&incomplete, annotation, {config, ""});
  ASSERT_TRUE(db.ok()) << db.status();
  Session warmup = (*db)->CreateSession();

  // Train everything up front on the main thread; the hammer phase must not
  // train anything.
  auto baseline = warmup.Execute(sql);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  const size_t trained_before = (*db)->models_trained();
  EXPECT_GT(trained_before, 0u);

  constexpr int kClients = 4;
  constexpr int kItersPerClient = 6;
  std::vector<std::vector<ResultSet>> per_client(kClients);
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        Session session = (*db)->CreateSession();
        for (int i = 0; i < kItersPerClient; ++i) {
          auto r = session.Execute(sql);
          ASSERT_TRUE(r.ok()) << "client " << c << ": " << r.status();
          per_client[c].push_back(*r);
        }
      });
    }
    for (auto& t : clients) t.join();
  }
  ThreadPool::SetGlobalWidth(0);

  EXPECT_EQ((*db)->models_trained(), trained_before)
      << "the hammer phase must not train";
  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(per_client[c].size(), static_cast<size_t>(kItersPerClient));
    for (int i = 0; i < kItersPerClient; ++i) {
      EXPECT_EQ(per_client[c][i], *baseline)
          << "client " << c << " iteration " << i;
    }
  }
}

// An UNCANCELLED run under full QueryOptions (cancellable token, far
// deadline, generous budget) must be bit-identical to a run with no options
// at all: the cooperative checks may not touch the sampling RNG.
TEST(DbConcurrencyTest, UncancelledOptionsRunBitIdenticalToPlainRun) {
  Database incomplete = MakeIncompleteSynthetic(/*seed=*/95);
  SchemaAnnotation annotation;
  annotation.MarkIncomplete("table_b");
  EngineConfig config = FastDbConfig();
  config.enable_cache = false;  // force model inference on every execution

  const std::string sql =
      "SELECT COUNT(*) FROM table_a NATURAL JOIN table_b GROUP BY b;";

  auto plain_db = Db::Open(&incomplete, annotation, {config, ""});
  ASSERT_TRUE(plain_db.ok()) << plain_db.status();
  auto plain = (*plain_db)->CreateSession().Execute(sql);
  ASSERT_TRUE(plain.ok()) << plain.status();

  auto opt_db = Db::Open(&incomplete, annotation, {config, ""});
  ASSERT_TRUE(opt_db.ok()) << opt_db.status();
  QueryOptions options;
  options.cancel = CancellationToken::Cancellable();
  options.WithTimeout(std::chrono::hours(1));
  options.max_completed_rows = 1u << 30;
  options.batch_rows = 3;
  size_t checkpoints = 0;
  options.progress = [&checkpoints](const ExecStats&) { ++checkpoints; };
  auto with_options = (*opt_db)->CreateSession().Execute(sql, options);
  ASSERT_TRUE(with_options.ok()) << with_options.status();

  EXPECT_EQ(*with_options, *plain);
  EXPECT_GT(checkpoints, 0u) << "the cooperative checks did run";
}

// The cancel hammer (run repeatedly under TSan by CI): 4 client threads
// fire queries through ONE pre-trained Db while racing RequestCancel()
// against the execution from a separate canceller thread per query. Every
// outcome must be either the bit-identical answer or a clean
// Status::Cancelled — and nothing may leak or race (ASan/TSan jobs).
TEST(DbConcurrencyTest, CancelHammerYieldsAnswerOrCleanCancellation) {
  Database incomplete = MakeIncompleteSynthetic(/*seed=*/93);
  SchemaAnnotation annotation;
  annotation.MarkIncomplete("table_b");
  EngineConfig config = FastDbConfig();
  config.enable_cache = false;  // every execution re-runs model inference

  const std::string sql =
      "SELECT COUNT(*) FROM table_a NATURAL JOIN table_b GROUP BY b;";

  ThreadPool::SetGlobalWidth(4);
  auto db = Db::Open(&incomplete, annotation, {config, ""});
  ASSERT_TRUE(db.ok()) << db.status();

  // Pre-train on the main thread so the hammer only exercises inference.
  auto baseline = (*db)->CreateSession().Execute(sql);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  constexpr int kClients = 4;
  constexpr int kItersPerClient = 8;
  std::atomic<size_t> answered{0};
  std::atomic<size_t> cancelled{0};
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        Session session = (*db)->CreateSession();
        for (int i = 0; i < kItersPerClient; ++i) {
          QueryOptions options;
          options.cancel = CancellationToken::Cancellable();
          // Race a cancel against the execution; stagger the delay so some
          // queries die early, some mid-flight, some not at all.
          std::thread canceller([token = options.cancel, c, i] {
            std::this_thread::sleep_for(
                std::chrono::microseconds(50 * ((c + i) % 5)));
            token.RequestCancel();
          });
          auto r = session.Execute(sql, options);
          canceller.join();
          if (r.ok()) {
            EXPECT_EQ(*r, *baseline) << "client " << c << " iteration " << i;
            answered.fetch_add(1);
          } else {
            EXPECT_TRUE(r.status().IsCancelled())
                << "client " << c << " iteration " << i << ": "
                << r.status();
            cancelled.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : clients) t.join();
  }
  ThreadPool::SetGlobalWidth(0);

  EXPECT_EQ(answered.load() + cancelled.load(),
            static_cast<size_t>(kClients * kItersPerClient));
  // The Db counted every hammer query exactly once, one way or the other.
  const Db::Stats stats = (*db)->stats();
  EXPECT_EQ(stats.queries_ok + stats.queries_cancelled,
            static_cast<uint64_t>(kClients * kItersPerClient) + 1 /*baseline*/);
  EXPECT_EQ(stats.queries_deadline_exceeded, 0u);
  EXPECT_EQ(stats.queries_failed, 0u);
}

}  // namespace
}  // namespace restore
