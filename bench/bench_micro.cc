// Microbenchmarks (google-benchmark) for the performance-critical substrate
// components: GEMM kernels, MADE forward/sampling, hash join, k-d tree
// lookups, and discretizer encoding.
//
// Besides the console table, results are written to BENCH_micro.json (via
// bench_util's WriteBenchJson) so future PRs can track the perf trajectory
// mechanically.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <mutex>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "datagen/incompleteness.h"
#include "datagen/synthetic.h"
#include "exec/join.h"
#include "nn/inference_scratch.h"
#include "nn/made.h"
#include "nn/matrix.h"
#include "restore/db.h"
#include "restore/discretizer.h"
#include "restore/sample_batcher.h"
#include "restore/kd_tree.h"
#include "stats/histogram.h"
#include "stats/stat_test.h"
#include "storage/table.h"

namespace restore {
namespace {

void FillRandom(Matrix* m, Rng& rng) {
  for (size_t i = 0; i < m->size(); ++i) {
    m->data()[i] = static_cast<float>(rng.NextGaussian());
  }
}

// The three BLAS-lite kernels at square sizes: op 0 = MatMul,
// 1 = MatMulTransB, 2 = MatMulTransAAccum.
void BM_GemmKernels(benchmark::State& state) {
  Rng rng(7);
  const size_t dim = static_cast<size_t>(state.range(0));
  const int op = static_cast<int>(state.range(1));
  Matrix a(dim, dim), b(dim, dim), out(dim, dim);
  FillRandom(&a, rng);
  FillRandom(&b, rng);
  for (auto _ : state) {
    switch (op) {
      case 0:
        MatMul(a, b, &out);
        break;
      case 1:
        MatMulTransB(a, b, &out);
        break;
      default:
        // Reset between iterations or the accumulation overflows to inf and
        // the kernel gets timed on degenerate inputs. The O(n^2) fill is
        // noise next to the O(n^3) kernel.
        out.Fill(0.0f);
        MatMulTransAAccum(a, b, &out);
        break;
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * dim * dim * dim);
  state.SetLabel(op == 0 ? "MatMul" : op == 1 ? "TransB" : "TransAAccum");
}
BENCHMARK(BM_GemmKernels)
    ->ArgsProduct({{64, 256}, {0, 1, 2}})
    ->ArgNames({"dim", "op"});

void BM_MadeForward(benchmark::State& state) {
  Rng rng(1);
  MadeConfig config;
  config.vocab_sizes = {16, 16, 32, 8, 24};
  config.embed_dim = 8;
  config.hidden_dim = static_cast<size_t>(state.range(0));
  config.num_layers = 2;
  MadeModel made(config, rng);
  IntMatrix codes(256, 5);
  for (size_t r = 0; r < codes.rows(); ++r) {
    for (size_t a = 0; a < 5; ++a) {
      codes.at(r, a) = static_cast<int32_t>(
          rng.NextUint64(static_cast<uint64_t>(config.vocab_sizes[a])));
    }
  }
  Matrix logits;
  for (auto _ : state) {
    made.Forward(codes, Matrix(), &logits);
    benchmark::DoNotOptimize(logits.data());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_MadeForward)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_MadeSample(benchmark::State& state) {
  Rng rng(2);
  MadeConfig config;
  config.vocab_sizes = {16, 16, 32, 8, 24};
  config.embed_dim = 8;
  config.hidden_dim = 64;
  config.num_layers = 2;
  MadeModel made(config, rng);
  IntMatrix codes(static_cast<size_t>(state.range(0)), 5, 0);
  for (auto _ : state) {
    made.SampleRange(&codes, Matrix(), 1, 5, rng);
    benchmark::DoNotOptimize(codes.row(0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MadeSample)->Arg(64)->Arg(512);

// Sampling on a WIDE-output model (total_vocab = 1024 vs the active block's
// 64-512): the column-sliced output layer pays for one attribute's logit
// block per pass instead of the whole vocabulary, so this shape shows the
// slicing win at its intended scale (≈ total_vocab / vocab(a) of the
// out-layer work). Gated by check_bench_json.py.
void BM_MadeSampleSliced(benchmark::State& state) {
  Rng rng(6);
  MadeConfig config;
  config.vocab_sizes = {64, 256, 512, 128, 64};
  config.embed_dim = 8;
  config.hidden_dim = 64;
  config.num_layers = 2;
  MadeModel made(config, rng);
  IntMatrix codes(static_cast<size_t>(state.range(0)), 5, 0);
  for (auto _ : state) {
    made.SampleRange(&codes, Matrix(), 1, 5, rng);
    benchmark::DoNotOptimize(codes.row(0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MadeSampleSliced)->Arg(64)->Arg(512);

// One attribute's sampling pass (trunk forward + sliced logits + softmax +
// inverse-CDF pick) — the unit cost of the autoregressive completion loop,
// per attribute index of the BM_MadeSample model.
void BM_MadeSampleAttr(benchmark::State& state) {
  Rng rng(8);
  MadeConfig config;
  config.vocab_sizes = {16, 16, 32, 8, 24};
  config.embed_dim = 8;
  config.hidden_dim = 64;
  config.num_layers = 2;
  MadeModel made(config, rng);
  const size_t attr = static_cast<size_t>(state.range(0));
  IntMatrix codes(256, 5, 0);
  for (auto _ : state) {
    made.SampleRange(&codes, Matrix(), attr, attr + 1, rng);
    benchmark::DoNotOptimize(codes.row(0));
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_MadeSampleAttr)->Arg(1)->Arg(4)->ArgName("attr");

// One fused Adam step over a realistic parameter set (the BM_MadeForward/64
// model, ~13.8k scalars): weight decay and both bias corrections fold into
// per-step scalars, leaving one sqrt + one divide per element. Gradients
// are refilled from a snapshot every iteration (~2% of the step): Step()
// zeroes them, and pure-weight-decay iterations drive value/m/v into
// DENORMAL floats whose ~100x-slower arithmetic would swamp the
// measurement — real training always steps on fresh gradients.
void BM_AdamStep(benchmark::State& state) {
  Rng rng(9);
  MadeConfig config;
  config.vocab_sizes = {16, 16, 32, 8, 24};
  config.embed_dim = 8;
  config.hidden_dim = 64;
  config.num_layers = 2;
  MadeModel made(config, rng);
  std::vector<Param*> params;
  made.CollectParams(&params);
  size_t total = 0;
  std::vector<std::vector<float>> grad_snapshot;
  for (Param* p : params) {
    std::vector<float> g(p->grad.size());
    for (auto& x : g) x = static_cast<float>(rng.NextGaussian(0.0, 0.01));
    grad_snapshot.push_back(std::move(g));
    total += p->value.size();
  }
  AdamOptions options;
  options.weight_decay = 0.01f;  // keep the decay term live
  AdamOptimizer adam(params, options);
  for (auto _ : state) {
    for (size_t i = 0; i < params.size(); ++i) {
      std::memcpy(params[i]->grad.data(), grad_snapshot[i].data(),
                  grad_snapshot[i].size() * sizeof(float));
    }
    adam.Step();
    benchmark::DoNotOptimize(params[0]->value.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(total));
}
BENCHMARK(BM_AdamStep);

// ---- Concurrent inference over ONE shared model -----------------------------
//
// N client threads sample through one MadeModel, each with its own scratch
// arena from the shared pool (the PathModel serving path). The contrast
// bench below serializes the same passes behind one mutex — the PR-2-era
// per-model inference lock — so the JSON records the aggregate-throughput
// win of scratch-arena reentrancy on any multi-core runner. Run with
// RESTORE_NUM_THREADS=1 (as the CI gate does) so the inner ParallelFor
// stays serial and all scaling comes from true cross-thread reentrancy.

MadeModel& SharedInferenceModel() {
  static MadeModel* model = [] {
    Rng rng(11);
    MadeConfig config;
    config.vocab_sizes = {16, 16, 32, 8, 24};
    config.embed_dim = 8;
    config.hidden_dim = 64;
    config.num_layers = 2;
    auto* m = new MadeModel(config, rng);
    m->FinalizeForInference();  // freeze for reentrant (const) inference
    return m;
  }();
  return *model;
}

InferenceScratchPool& SharedScratchPool() {
  static auto* pool = new InferenceScratchPool();
  return *pool;
}

void ConcurrentInferenceLoop(benchmark::State& state, std::mutex* serialize) {
  const MadeModel& made = SharedInferenceModel();
  const size_t batch = 64;
  // Per-thread client state: sampling RNG and evidence codes.
  Rng rng(100 + static_cast<uint64_t>(state.thread_index()));
  IntMatrix codes(batch, made.num_attrs(), 0);
  const Matrix empty_context;
  for (auto _ : state) {
    InferenceScratchPool::Lease scratch = SharedScratchPool().Acquire();
    std::unique_lock<std::mutex> lock;
    if (serialize != nullptr) lock = std::unique_lock<std::mutex>(*serialize);
    made.SampleRange(&codes, empty_context, 1, made.num_attrs(), rng,
                     /*record_attr=*/-1, /*recorded=*/nullptr,
                     &scratch->made);
    benchmark::DoNotOptimize(codes.row(0));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
}

void BM_ConcurrentInference(benchmark::State& state) {
  ConcurrentInferenceLoop(state, nullptr);
}
BENCHMARK(BM_ConcurrentInference)->Threads(1)->Threads(4)->UseRealTime();

void BM_ConcurrentInferenceMutex(benchmark::State& state) {
  static std::mutex mu;  // stand-in for the removed per-model inference mutex
  ConcurrentInferenceLoop(state, &mu);
}
BENCHMARK(BM_ConcurrentInferenceMutex)->Threads(4)->UseRealTime();

// ---- Cross-session coalesced sampling ---------------------------------------
//
// Arg(1) routes 4 client threads through one SampleBatcher that stacks
// their concurrent SampleRange calls into a single wide forward pass per
// attribute; Arg(0) runs the same requests through the batcher's solo path
// (one pass per client). Unlike the benches above, this one pins the pool
// at width 4 via Setup — under RESTORE_NUM_THREADS=1 (the CI gate
// environment) batching-on would serialize all clients behind one
// single-threaded leader, which is exactly the configuration the batching
// knob is documented NOT to be used in. The CI gate compares the /1 vs /0
// aggregate items/s on multi-core runners (--check-batching) and self-skips
// below 4 CPUs.

struct CoalesceFixture {
  InferenceScratchPool pool;
  SampleBatcher batcher;
  explicit CoalesceFixture(bool enabled)
      : batcher(&SharedInferenceModel(), &pool) {
    SampleBatcher::Config cfg;
    cfg.enabled = enabled;
    cfg.wait_us = 200;
    cfg.max_rows = 4096;
    batcher.Configure(cfg);
  }
};

CoalesceFixture& CoalesceOff() {
  static auto* fixture = new CoalesceFixture(false);
  return *fixture;
}

CoalesceFixture& CoalesceOn() {
  static auto* fixture = new CoalesceFixture(true);
  return *fixture;
}

void CoalescedSampleSetup(const benchmark::State&) {
  ThreadPool::SetGlobalWidth(4);
}

void CoalescedSampleTeardown(const benchmark::State&) {
  ThreadPool::SetGlobalWidth(0);  // back to the RESTORE_NUM_THREADS default
}

void BM_CoalescedSample(benchmark::State& state) {
  SampleBatcher& batcher =
      state.range(0) != 0 ? CoalesceOn().batcher : CoalesceOff().batcher;
  const MadeModel& made = SharedInferenceModel();
  const size_t batch = 64;
  Rng rng(200 + static_cast<uint64_t>(state.thread_index()));
  IntMatrix codes(batch, made.num_attrs(), 0);
  const Matrix empty_context;
  for (auto _ : state) {
    Status st = batcher.SampleRange(&codes, empty_context, 1,
                                    made.num_attrs(), rng,
                                    /*record_attr=*/-1, /*recorded=*/nullptr,
                                    /*ctx=*/nullptr);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(codes.row(0));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
}
BENCHMARK(BM_CoalescedSample)
    ->Arg(0)
    ->Arg(1)
    ->Threads(4)
    ->UseRealTime()
    ->Setup(CoalescedSampleSetup)
    ->Teardown(CoalescedSampleTeardown);

// ---- Db-level end-to-end QPS ------------------------------------------------
//
// Concurrent sessions execute a completed join query through the full
// service stack — parse, plan, completion-path inference on pre-trained
// models, aggregation, ResultSet assembly — with the completion cache
// DISABLED, so every query re-runs model inference. This catches
// regressions in the plumbing around the models that BM_ConcurrentInference
// (which drives a MadeModel directly) cannot see. A representative query's
// ExecStats ride along as JSON counters so the CI gate can validate the
// observability surface mechanically.

struct DbQpsFixture {
  Database incomplete;
  std::shared_ptr<Db> db;
  std::string sql;
};

DbQpsFixture& SharedDbQps() {
  static DbQpsFixture* fixture = [] {
    auto* f = new DbQpsFixture();
    SyntheticConfig data_config;
    data_config.num_parents = 300;
    data_config.predictability = 0.85;
    data_config.seed = 21;
    auto complete = GenerateSynthetic(data_config);
    if (!complete.ok()) std::abort();
    BiasedRemovalConfig removal;
    removal.table = "table_b";
    removal.column = "b";
    removal.keep_rate = 0.5;
    removal.removal_correlation = 0.5;
    removal.seed = 22;
    auto incomplete = ApplyBiasedRemoval(*complete, removal);
    if (!incomplete.ok()) std::abort();
    if (!ThinTupleFactors(&*incomplete, 0.3, 23).ok()) std::abort();
    f->incomplete = std::move(incomplete).value();

    SchemaAnnotation annotation;
    annotation.MarkIncomplete("table_b");
    EngineConfig engine;
    engine.model.epochs = 4;
    engine.model.min_train_steps = 120;
    engine.model.hidden_dim = 24;
    engine.model.embed_dim = 4;
    engine.model.max_bins = 12;
    engine.max_candidates = 2;
    engine.enable_cache = false;  // every query re-runs the completion
    auto db = Db::Open(&f->incomplete, annotation, DbOptions().WithEngine(engine));
    if (!db.ok()) std::abort();
    f->db = std::move(*db);
    f->sql = "SELECT COUNT(*) FROM table_a NATURAL JOIN table_b GROUP BY b;";
    // Train every model up front; the timed loop measures serving only.
    auto warm = f->db->CreateSession().Execute(f->sql);
    if (!warm.ok()) std::abort();
    return f;
  }();
  return *fixture;
}

void BM_DbQps(benchmark::State& state) {
  DbQpsFixture& fixture = SharedDbQps();
  Session session = fixture.db->CreateSession();
  ExecStats last_stats;
  for (auto _ : state) {
    auto r = session.Execute(fixture.sql);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    last_stats = r->stats();
    benchmark::DoNotOptimize(r->num_rows());
  }
  state.SetItemsProcessed(state.iterations());
  // One representative query's ExecStats, flattened into the bench JSON
  // (validated by the CI ExecStats-emission check).
  state.counters["stats_tuples_completed"] =
      static_cast<double>(last_stats.tuples_completed);
  state.counters["stats_models_consulted"] =
      static_cast<double>(last_stats.models_consulted);
  state.counters["stats_cache_hits"] =
      static_cast<double>(last_stats.cache_hits);
  state.counters["stats_cache_misses"] =
      static_cast<double>(last_stats.cache_misses);
  state.counters["stats_arenas_leased"] =
      static_cast<double>(last_stats.arenas_leased);
  state.counters["stats_selection_seconds"] = last_stats.selection_seconds;
  state.counters["stats_sample_seconds"] = last_stats.sample_seconds;
  state.counters["stats_aggregate_seconds"] = last_stats.aggregate_seconds;
  state.counters["stats_batches_joined"] =
      static_cast<double>(last_stats.batches_joined);
  state.counters["stats_batch_wait_seconds"] = last_stats.batch_wait_seconds;
  state.counters["stats_coalesced_rows"] =
      static_cast<double>(last_stats.coalesced_rows);
  // Resilience counters (both 0 on the healthy bench path — the gate checks
  // they are EMITTED, and a nonzero value here would flag a regression).
  const Db::Stats db_stats = fixture.db->stats();
  state.counters["refresh_retries"] =
      static_cast<double>(db_stats.refresh_retries);
  state.counters["breaker_open_total"] =
      static_cast<double>(db_stats.breaker_open_total);
}
BENCHMARK(BM_DbQps)->Threads(1)->Threads(4)->UseRealTime();

// ---- Live-data ingest + refresh cycle ---------------------------------------
//
// One iteration is the full live-data loop: Db::Append publishes a batch of
// rows, RefreshStaleModels retrains every model whose tables grew and
// hot-swaps the new generation in, and a query answers against it. This is
// dominated by retraining (by design — it is the cost a refresh policy
// amortizes); it guards the ingest/publish/swap plumbing around it. The
// iteration count is pinned so every run performs identical work (the base
// table grows by kIngestBatch rows per iteration).

void BM_IngestRefresh(benchmark::State& state) {
  SyntheticConfig data_config;
  data_config.num_parents = 150;
  data_config.predictability = 0.85;
  data_config.seed = 31;
  auto complete = GenerateSynthetic(data_config);
  if (!complete.ok()) std::abort();
  BiasedRemovalConfig removal;
  removal.table = "table_b";
  removal.column = "b";
  removal.keep_rate = 0.5;
  removal.removal_correlation = 0.5;
  removal.seed = 32;
  auto incomplete = ApplyBiasedRemoval(*complete, removal);
  if (!incomplete.ok()) std::abort();

  SchemaAnnotation annotation;
  annotation.MarkIncomplete("table_b");
  EngineConfig engine;
  engine.model.epochs = 2;
  engine.model.min_train_steps = 60;
  engine.model.hidden_dim = 16;
  engine.model.embed_dim = 4;
  engine.model.max_bins = 8;
  engine.max_candidates = 1;
  auto db = Db::Open(&*incomplete, annotation,
                     DbOptions().WithEngine(engine));
  if (!db.ok()) std::abort();
  const std::string sql =
      "SELECT COUNT(*) FROM table_a NATURAL JOIN table_b GROUP BY b;";
  // Generation 1 trains outside the timed loop.
  if (!(*db)->ExecuteCompletedSql(sql).ok()) std::abort();

  constexpr size_t kIngestBatch = 32;
  int64_t next_id = 1 << 20;
  for (auto _ : state) {
    std::vector<std::vector<Value>> rows;
    rows.reserve(kIngestBatch);
    for (size_t i = 0; i < kIngestBatch; ++i) {
      rows.push_back({Value::Int64(next_id++),
                      Value::Int64(static_cast<int64_t>(i % 50)),
                      Value::Categorical("live")});
    }
    if (!(*db)->Append("table_b", rows).ok()) {
      state.SkipWithError("Append failed");
      return;
    }
    if (!(*db)->RefreshStaleModels().ok()) {
      state.SkipWithError("RefreshStaleModels failed");
      return;
    }
    auto r = (*db)->ExecuteCompletedSql(sql);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r->num_rows());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kIngestBatch));
  const Db::Stats stats = (*db)->stats();
  state.counters["rows_ingested"] = static_cast<double>(stats.rows_ingested);
  state.counters["models_refreshed"] =
      static_cast<double>(stats.models_refreshed);
  state.counters["generations_retired"] =
      static_cast<double>(stats.generations_retired);
  state.counters["epoch"] = static_cast<double>(stats.epoch);
}
BENCHMARK(BM_IngestRefresh)->Iterations(12)->UseRealTime();

// One drift-gate evaluation: re-bin every column of a two-table path's
// 100k-row snapshot on the training-time reference grids and take the worst
// KS/PSI. This is the per-model cost the kDrift refresh trigger pays on
// every ingest-driven schedule pass, so it has to stay far below retraining.
void BM_DriftCheck(benchmark::State& state) {
  constexpr size_t kParentRows = 20000;
  constexpr size_t kChildRows = 80000;
  Rng rng(41);
  Database db;
  Table parent("parent", {{"id", ColumnType::kInt64},
                          {"region", ColumnType::kCategorical}});
  for (size_t i = 0; i < kParentRows; ++i) {
    (void)parent.AppendRow(
        {Value::Int64(static_cast<int64_t>(i)),
         Value::Categorical(i % 7 ? "core" : "edge")});
  }
  Table child("child", {{"id", ColumnType::kInt64},
                        {"parent_id", ColumnType::kInt64},
                        {"price", ColumnType::kDouble},
                        {"kind", ColumnType::kCategorical}});
  const char* kinds[] = {"a", "b", "c", "d"};
  for (size_t i = 0; i < kChildRows; ++i) {
    (void)child.AppendRow(
        {Value::Int64(static_cast<int64_t>(i)),
         Value::Int64(static_cast<int64_t>(rng.NextUint64(kParentRows))),
         Value::Double(rng.NextGaussian(100.0, 15.0)),
         Value::Categorical(kinds[rng.NextUint64(4)])});
  }
  if (!db.AddTable(std::move(parent)).ok()) std::abort();
  if (!db.AddTable(std::move(child)).ok()) std::abort();
  const std::vector<ColumnSummary> refs =
      SummarizeTables(db, {"parent", "child"});

  for (auto _ : state) {
    const DriftScore score = ScoreDrift(refs, db);
    benchmark::DoNotOptimize(score.ks);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kParentRows + kChildRows));
  state.counters["columns_scored"] = static_cast<double>(refs.size());
  state.counters["snapshot_rows"] =
      static_cast<double>(kParentRows + kChildRows);
}
BENCHMARK(BM_DriftCheck);

void BM_HashJoin(benchmark::State& state) {
  Rng rng(3);
  const size_t n = static_cast<size_t>(state.range(0));
  Table left("left", {{"id", ColumnType::kInt64},
                      {"x", ColumnType::kDouble}});
  Table right("right", {{"left_id", ColumnType::kInt64},
                        {"y", ColumnType::kDouble}});
  for (size_t i = 0; i < n; ++i) {
    (void)left.AppendRow({Value::Int64(static_cast<int64_t>(i)),
                          Value::Double(rng.NextDouble())});
  }
  for (size_t i = 0; i < 4 * n; ++i) {
    (void)right.AppendRow(
        {Value::Int64(static_cast<int64_t>(rng.NextUint64(n))),
         Value::Double(rng.NextDouble())});
  }
  for (auto _ : state) {
    auto joined = HashJoin(left, right, "id", "left_id");
    benchmark::DoNotOptimize(joined->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * 5 * n);
}
BENCHMARK(BM_HashJoin)->Arg(1000)->Arg(10000);

void BM_KdTreeNearestNeighbor(benchmark::State& state) {
  Rng rng(4);
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t dim = 6;
  std::vector<float> points(n * dim);
  for (auto& p : points) p = static_cast<float>(rng.NextGaussian());
  KdTree tree(points, n, dim, 16);
  std::vector<float> query(dim);
  for (auto _ : state) {
    for (size_t d = 0; d < dim; ++d) {
      query[d] = static_cast<float>(rng.NextGaussian());
    }
    benchmark::DoNotOptimize(tree.ApproxNearestNeighbor(query.data(), 8));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KdTreeNearestNeighbor)->Arg(10000)->Arg(100000);

void BM_DiscretizerEncode(benchmark::State& state) {
  Rng rng(5);
  Column col("x", ColumnType::kDouble);
  for (int i = 0; i < 100000; ++i) {
    col.AppendDouble(rng.NextGaussian(50.0, 20.0));
  }
  auto disc = ColumnDiscretizer::Fit(col, 32);
  for (auto _ : state) {
    int64_t acc = 0;
    for (size_t r = 0; r < 1000; ++r) {
      acc += disc->EncodeCell(col, r);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_DiscretizerEncode);

/// Console reporter that additionally captures every run as a BenchRecord
/// for the JSON results file.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      bench::BenchRecord record;
      record.name = run.benchmark_name();
      record.real_ns = run.GetAdjustedRealTime();
      record.cpu_ns = run.GetAdjustedCPUTime();
      record.iterations = run.iterations;
      for (const auto& [name, counter] : run.counters) {
        record.counters[name] = counter.value;
      }
      records_.push_back(std::move(record));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<bench::BenchRecord>& records() const { return records_; }

 private:
  std::vector<bench::BenchRecord> records_;
};

}  // namespace
}  // namespace restore

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  restore::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const restore::Status status =
      restore::bench::WriteBenchJson("BENCH_micro.json", reporter.records());
  if (!status.ok()) {
    fprintf(stderr, "WriteBenchJson: %s\n", status.ToString().c_str());
    return 1;
  }
  benchmark::Shutdown();
  return 0;
}
