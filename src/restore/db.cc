#include "restore/db.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <set>

#include "common/serialize.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "exec/executor.h"
#include "exec/join.h"
#include "exec/sql_parser.h"

namespace restore {

namespace {

// Model-persistence framing (see common/serialize.h). Bump the version of
// whichever payload layout changes; readers reject other versions.
// Manifest v2 prepends the engine-config fingerprint (v1 had none).
constexpr uint32_t kManifestMagic = 0x4d545352;  // "RSTM"
constexpr uint32_t kModelMagic = 0x4f545352;     // "RSTO"
constexpr uint32_t kManifestVersion = 2;
constexpr uint32_t kModelVersion = 1;
constexpr const char kManifestName[] = "restore_models.manifest";

std::string ModelFileName(const std::string& path_key) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(Fnv1a64(path_key)));
  return StrFormat("model_%s.rsm", buf);
}

Status MakeDirectory(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  return Status::InvalidArgument(
      StrFormat("cannot create model directory '%s'", dir.c_str()));
}

}  // namespace

uint64_t EngineConfigFingerprint(const EngineConfig& config) {
  // Serialize every model hyperparameter in a fixed order and hash the
  // bytes. The per-path training seeds are derived from config.seed, so the
  // engine seed participates, and the selection strategy does too (the
  // manifest persists per-target path selections, which are that strategy's
  // output). Cache settings do not change what is persisted and stay out.
  BinaryWriter w;
  const PathModelConfig& m = config.model;
  w.I32(m.max_bins);
  w.I32(m.tf_cap);
  w.U64(m.embed_dim);
  w.U64(m.hidden_dim);
  w.U64(m.num_layers);
  w.Bool(m.use_ssar);
  w.U64(m.phi_dim);
  w.U64(m.context_dim);
  w.U64(m.max_children);
  w.U64(m.epochs);
  w.U64(m.batch_size);
  w.F32(m.learning_rate);
  w.U64(m.min_train_steps);
  w.F64(m.test_fraction);
  w.U64(m.max_train_rows);
  w.U64(config.max_path_len);
  w.U64(config.max_candidates);
  w.U64(static_cast<uint64_t>(config.selection));
  w.U64(config.seed);
  return Fnv1a64(w.buffer());
}

Db::Db(const Database* database, SchemaAnnotation annotation,
       EngineConfig config)
    : database_(database),
      annotation_(std::move(annotation)),
      config_(std::move(config)),
      cache_(config_.cache_budget_bytes) {}

std::string Db::PathKey(const std::vector<std::string>& path) {
  return Join(path, "->");
}

Result<std::shared_ptr<Db>> Db::Open(const Database* database,
                                     SchemaAnnotation annotation,
                                     DbOptions options) {
  RESTORE_RETURN_IF_ERROR(annotation.Validate(*database));
  std::shared_ptr<Db> db(
      new Db(database, std::move(annotation), std::move(options.engine)));
  for (const auto& target : db->annotation_.incomplete_tables()) {
    std::vector<std::vector<std::string>> paths = EnumerateCompletionPaths(
        *database, db->annotation_, target, db->config_.max_path_len);
    if (paths.empty()) {
      return Status::FailedPrecondition(
          StrFormat("no completion path for incomplete table '%s'",
                    target.c_str()));
    }
    if (paths.size() > db->config_.max_candidates) {
      paths.resize(db->config_.max_candidates);
    }
    db->candidates_[target] = std::move(paths);
    db->selected_[target] = std::make_unique<SelectionEntry>();
  }
  // Stable per-path training seeds, assigned in enumeration order. These
  // reproduce the seeds sequential training historically used, but are a
  // pure function of the schema — never of request order — so concurrent
  // and restarted servers train identical models.
  uint64_t next = 1;
  for (const auto& [target, paths] : db->candidates_) {
    (void)target;
    for (const auto& path : paths) {
      const std::string key = PathKey(path);
      if (db->path_seeds_.count(key) == 0) {
        db->path_seeds_[key] = db->config_.seed + next++;
      }
    }
  }
  if (!options.model_dir.empty()) {
    RESTORE_RETURN_IF_ERROR(db->LoadModels(options.model_dir));
  }
  return db;
}

Session Db::CreateSession() { return Session(shared_from_this()); }

uint64_t Db::SeedForPath(const std::string& key) const {
  auto it = path_seeds_.find(key);
  if (it != path_seeds_.end()) return it->second;
  // Ad-hoc path outside the candidate registry: hash the key into a seed
  // disjoint from the compact candidate indices.
  return config_.seed + 1000003 + (Fnv1a64(key) % 1000000007ull);
}

uint64_t Db::CompletionSeed(const std::string& key) const {
  return config_.seed ^ (Fnv1a64(key) | 1ull);
}

Db::ModelEntry* Db::EntryFor(const std::string& key) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  std::unique_ptr<ModelEntry>& slot = models_[key];
  if (slot == nullptr) slot = std::make_unique<ModelEntry>();
  return slot.get();
}

Result<const PathModel*> Db::ModelForPath(
    const std::vector<std::string>& path, const ExecContext* ctx) {
  // Cancellation is honored BEFORE the latch, never inside it: the latch
  // caches a failure permanently, so letting one caller's cancel fail the
  // training run would poison the model for every other session.
  RESTORE_RETURN_IF_ERROR(ExecContext::Check(ctx));
  if (ctx != nullptr && ctx->stats() != nullptr) {
    ++ctx->stats()->models_consulted;
  }
  const std::string key = PathKey(path);
  ModelEntry* entry = EntryFor(key);
  // A deadline-carrying WAITER may abandon the wait with DeadlineExceeded;
  // the first-touch training itself always runs to completion and stays
  // shareable (one caller's deadline must never poison the model).
  const auto deadline = ctx != nullptr
                            ? ctx->deadline()
                            : std::chrono::steady_clock::time_point::max();
  Status s = entry->latch.RunOnceWithDeadline([&]() -> Status {
    PathModelConfig cfg = config_.model;
    cfg.seed = SeedForPath(key);
    Result<std::unique_ptr<PathModel>> trained =
        PathModel::Train(*database_, annotation_, path, cfg);
    if (!trained.ok()) return trained.status();
    entry->model = std::move(trained).value();
    models_trained_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(stats_mu_);
    total_train_seconds_ += entry->model->train_seconds();
    return Status::OK();
  }, deadline);
  if (!s.ok()) return s;
  return entry->model.get();
}

double Db::total_train_seconds() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return total_train_seconds_;
}

Result<std::vector<Db::Candidate>> Db::CandidatesFor(
    const std::string& target, const ExecContext* ctx) {
  RESTORE_RETURN_IF_ERROR(ExecContext::Check(ctx));
  auto it = candidates_.find(target);
  if (it == candidates_.end()) {
    return Status::NotFound(StrFormat(
        "no candidates for '%s' (not an incomplete table of this Db)",
        target.c_str()));
  }
  const std::vector<std::vector<std::string>>& paths = it->second;
  // Candidate models are independent: train the missing ones concurrently on
  // the shared pool. Each path's once-latch guarantees a single training run
  // even if another session races us on the same candidate. The ctx is NOT
  // threaded into the shards (its stats/progress are single-threaded by
  // contract); instead the query's cancel flag skips still-unclaimed
  // training shards, and the check below turns that into Cancelled.
  std::vector<Status> errors(paths.size(), Status::OK());
  ThreadPool::Global().ParallelFor(
      0, paths.size(), 1,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          errors[i] = ModelForPath(paths[i]).status();
        }
      },
      ctx != nullptr ? ctx->cancel_flag() : nullptr);
  RESTORE_RETURN_IF_ERROR(ExecContext::Check(ctx));
  for (const Status& s : errors) {
    if (!s.ok()) return s;
  }
  std::vector<Candidate> out;
  out.reserve(paths.size());
  for (const auto& path : paths) {
    RESTORE_ASSIGN_OR_RETURN(const PathModel* model, ModelForPath(path, ctx));
    out.push_back({path, model});
  }
  return out;
}

Result<std::vector<std::string>> Db::SelectedPathFor(
    const std::string& target, const ExecContext* ctx) {
  // Path-selection cost is accounted separately from sampling: the caller's
  // sample timer (ExecuteCompletedImpl) subtracts what accrues here, so
  // ExecStats.selection_seconds vs sample_seconds cleanly split the
  // completion pipeline. First touch pays candidate training + the probe
  // sweep behind the shared latch; later queries only the map lookup.
  Timer selection_timer;
  ExecStats* stats = ctx != nullptr ? ctx->stats() : nullptr;
  struct SelectionTimerGuard {
    Timer& timer;
    ExecStats* stats;
    ~SelectionTimerGuard() {
      if (stats != nullptr) {
        stats->selection_seconds += timer.ElapsedSeconds();
      }
    }
  } guard{selection_timer, stats};
  // Selection (like training) runs under a shared once-latch, so it is
  // checked before but never aborted inside — a cancelled caller must not
  // cache a Cancelled selection for everyone else.
  RESTORE_RETURN_IF_ERROR(ExecContext::Check(ctx));
  auto it = selected_.find(target);
  if (it == selected_.end()) {
    return Status::NotFound(StrFormat(
        "no selection for '%s' (not an incomplete table of this Db)",
        target.c_str()));
  }
  SelectionEntry* entry = it->second.get();
  // As with model training: only the WAIT is deadline-bounded; the shared
  // selection run itself completes and stays cached for everyone.
  const auto deadline = ctx != nullptr
                            ? ctx->deadline()
                            : std::chrono::steady_clock::time_point::max();
  Status s = entry->latch.RunOnceWithDeadline([&]() -> Status {
    Result<std::vector<Candidate>> cands = CandidatesFor(target);
    if (!cands.ok()) return cands.status();
    if (cands->empty()) {
      return Status::FailedPrecondition(
          StrFormat("no trained candidates for '%s'", target.c_str()));
    }
    std::vector<std::vector<std::string>> paths;
    std::vector<const PathModel*> models;
    for (const auto& c : *cands) {
      paths.push_back(c.path);
      models.push_back(c.model);
    }
    PathModelConfig probe = config_.model;
    probe.epochs = std::max<size_t>(2, probe.epochs / 3);
    Result<size_t> best =
        SelectPath(*database_, annotation_, target, paths, models,
                   config_.selection, probe, /*holdout_fraction=*/0.3,
                   config_.seed + 7);
    if (!best.ok()) return best.status();
    entry->path = paths[best.value()];
    return Status::OK();
  }, deadline);
  if (!s.ok()) return s;
  return entry->path;
}

Result<CompletionResult> Db::CompleteViaPath(
    const std::vector<std::string>& path, const CompletionOptions& options,
    const ExecContext* ctx) {
  RESTORE_ASSIGN_OR_RETURN(const PathModel* model, ModelForPath(path, ctx));
  // The synthesis RNG is derived from the path so a completion is a pure
  // function of (db, models, path) — concurrent sessions and restarted
  // processes produce bit-identical synthesized data.
  Rng rng(CompletionSeed(PathKey(path)));
  IncompletenessJoinExecutor exec(database_, &annotation_);
  return exec.CompletePathJoin(*model, rng, options, ctx);
}

Result<Table> Db::CompleteTable(const std::string& target,
                                const ExecContext* ctx) {
  RESTORE_ASSIGN_OR_RETURN(std::vector<std::string> path,
                           SelectedPathFor(target, ctx));
  RESTORE_ASSIGN_OR_RETURN(CompletionResult completion,
                           CompleteViaPath(path, CompletionOptions(), ctx));
  RESTORE_ASSIGN_OR_RETURN(const Table* base, database_->GetTable(target));

  // Completed table = existing tuples + synthesized tuples (attr columns;
  // key columns of synthesized tuples are NULL).
  Table out(target);
  auto it = completion.synthesized.find(target);
  for (const auto& col : base->columns()) {
    Column merged = col;
    if (it != completion.synthesized.end()) {
      const Column* synth = nullptr;
      for (const auto& sc : it->second) {
        if (sc.name() == col.name()) {
          synth = &sc;
          break;
        }
      }
      const size_t n = it->second.empty() ? 0 : it->second.front().size();
      for (size_t r = 0; r < n; ++r) {
        if (synth == nullptr) {
          merged.AppendNull();
        } else if (synth->type() == ColumnType::kDouble) {
          merged.AppendDouble(synth->GetDouble(r));
        } else {
          merged.AppendInt64(synth->GetInt64(r));
        }
      }
    }
    RESTORE_RETURN_IF_ERROR(out.AddColumn(std::move(merged)));
  }
  return out;
}

Result<std::shared_ptr<const Table>> Db::CompletedJoinFor(
    const std::vector<std::string>& tables, const ExecContext* ctx) {
  // Per-query cache policy: kBypass neither reads nor writes, kReadOnly
  // reads without inserting; both are further gated by the engine-level
  // enable_cache switch.
  const CachePolicy policy =
      ctx != nullptr ? ctx->cache_policy() : CachePolicy::kDefault;
  const bool cache_read =
      config_.enable_cache && policy != CachePolicy::kBypass;
  const bool cache_write =
      config_.enable_cache && policy == CachePolicy::kDefault;
  ExecStats* stats = ctx != nullptr ? ctx->stats() : nullptr;
  const auto note_lookup = [stats](bool hit) {
    if (stats == nullptr) return;
    if (hit) {
      ++stats->cache_hits;
    } else {
      ++stats->cache_misses;
    }
  };

  // Single incomplete table: answer from the completed TABLE rather than a
  // completed path join — the path necessarily enters through a fan-out
  // (e.g. a link table), which would count each target tuple once per link.
  if (tables.size() == 1 && annotation_.IsIncomplete(tables[0])) {
    // Exact-match caching only: projecting a cached superset join would
    // change tuple multiplicities.
    const std::set<std::string> key{tables[0]};
    if (cache_read) {
      std::shared_ptr<const Table> cached = cache_.GetExact(key);
      note_lookup(cached != nullptr);
      if (cached != nullptr) return cached;
    }
    RESTORE_ASSIGN_OR_RETURN(Table completed, CompleteTable(tables[0], ctx));
    completed.QualifyColumnNames(tables[0]);
    auto result = std::make_shared<const Table>(std::move(completed));
    if (cache_write) cache_.Put(key, result);
    return result;
  }
  std::set<std::string> table_set(tables.begin(), tables.end());
  if (cache_read) {
    std::shared_ptr<const Table> cached = cache_.GetCovering(table_set);
    note_lookup(cached != nullptr);
    if (cached != nullptr) return cached;
  }

  // Incomplete tables among the requested join.
  std::vector<std::string> incomplete;
  for (const auto& t : tables) {
    if (annotation_.IsIncomplete(t)) incomplete.push_back(t);
  }
  if (incomplete.empty()) {
    RESTORE_ASSIGN_OR_RETURN(Table joined,
                             NaturalJoinTables(*database_, tables, ctx));
    return std::make_shared<const Table>(std::move(joined));
  }

  // Build the extended completion path: a completion path for the primary
  // incomplete table, then any remaining query tables appended in FK-
  // connected order. The walk completes every incomplete table it crosses.
  //
  // Path choice is query-aware: a fan-out hop into a table OUTSIDE the query
  // multiplies the join rows of the answer (Section 4.4 would require
  // reweighting), so candidates are ranked first by how few off-query
  // fan-out hops they introduce, then by the configured selection strategy.
  RESTORE_ASSIGN_OR_RETURN(std::vector<std::string> selected,
                           SelectedPathFor(incomplete[0], ctx));
  // The query-aware re-ranking below is selection work too (it can override
  // the cached per-table choice), so it lands in selection_seconds.
  Timer ranking_timer;
  RESTORE_ASSIGN_OR_RETURN(std::vector<Candidate> cands,
                           CandidatesFor(incomplete[0], ctx));
  auto fanout_penalty = [&](const std::vector<std::string>& p) {
    size_t penalty = 0;
    for (size_t k = 0; k + 1 < p.size(); ++k) {
      auto fan = database_->IsFanOut(p[k], p[k + 1]);
      const bool off_query =
          std::find(tables.begin(), tables.end(), p[k + 1]) == tables.end();
      if (fan.ok() && fan.value() && off_query) ++penalty;
    }
    return penalty;
  };
  std::vector<std::string> path = selected;
  size_t best_penalty = fanout_penalty(selected);
  for (const auto& cand : cands) {
    const size_t penalty = fanout_penalty(cand.path);
    if (penalty < best_penalty) {
      best_penalty = penalty;
      path = cand.path;
    }
  }
  if (stats != nullptr) {
    stats->selection_seconds += ranking_timer.ElapsedSeconds();
  }
  std::vector<std::string> extended = path;
  std::set<std::string> placed(path.begin(), path.end());
  std::set<std::string> remaining;
  for (const auto& t : tables) {
    if (placed.count(t) == 0) remaining.insert(t);
  }
  while (!remaining.empty()) {
    bool progress = false;
    // Prefer a table connected to the LAST path table (a proper walk), else
    // any connected table.
    for (const auto& cand : remaining) {
      if (database_->FindForeignKey(extended.back(), cand).ok()) {
        extended.push_back(cand);
        placed.insert(cand);
        remaining.erase(cand);
        progress = true;
        break;
      }
    }
    if (progress) continue;
    for (const auto& cand : remaining) {
      bool connected = false;
      for (const auto& done : placed) {
        if (database_->FindForeignKey(cand, done).ok()) {
          connected = true;
          break;
        }
      }
      if (connected) {
        return Status::Unimplemented(
            StrFormat("query table '%s' is not FK-adjacent to the completion "
                      "path tail; bushy completion plans are not supported",
                      cand.c_str()));
      }
      return Status::InvalidArgument(
          StrFormat("query table '%s' is not connected", cand.c_str()));
    }
  }

  RESTORE_ASSIGN_OR_RETURN(CompletionResult completion,
                           CompleteViaPath(extended, CompletionOptions(),
                                           ctx));
  auto result = std::make_shared<const Table>(std::move(completion.joined));
  if (cache_write) {
    std::set<std::string> covered(extended.begin(), extended.end());
    cache_.Put(covered, result);
  }
  return result;
}

Result<ResultSet> Db::ExecuteCompletedImpl(const Query& query,
                                           const QueryOptions& options,
                                           ExecStats stats) {
  ExecContext ctx(&options, &stats);
  Result<ResultSet> result = [&]() -> Result<ResultSet> {
    RESTORE_RETURN_IF_ERROR(ctx.Check());
    if (query.tables.empty() || query.aggregates.empty()) {
      return Status::InvalidArgument("malformed query");
    }
    RESTORE_RETURN_IF_ERROR(CheckFullyBound(query));
    // Rewrite column references to be table-qualified w.r.t. the query
    // tables so that evidence tables pulled in by the completion path cannot
    // make them ambiguous. Idempotent for pre-qualified prepared queries.
    Timer plan_timer;
    Query rewritten = query;
    RESTORE_RETURN_IF_ERROR(QualifyQueryColumns(*database_, &rewritten));
    stats.plan_seconds += plan_timer.ElapsedSeconds();
    // The sample timer brackets the whole completed-join build; whatever
    // path-selection time accrued inside (SelectedPathFor + the query-aware
    // re-ranking) is subtracted so selection_seconds and sample_seconds
    // partition the pipeline instead of double-counting.
    const double selection_before = stats.selection_seconds;
    Timer sample_timer;
    RESTORE_ASSIGN_OR_RETURN(std::shared_ptr<const Table> joined,
                             CompletedJoinFor(query.tables, &ctx));
    const double sampled = sample_timer.ElapsedSeconds() -
                           (stats.selection_seconds - selection_before);
    stats.sample_seconds += sampled > 0.0 ? sampled : 0.0;
    Timer agg_timer;
    RESTORE_ASSIGN_OR_RETURN(QueryResult grouped,
                             FilterAndAggregate(*joined, rewritten, &ctx));
    stats.aggregate_seconds += agg_timer.ElapsedSeconds();
    // Schema names come from the ORIGINAL query, so prepared and ad-hoc
    // runs of the same SQL carry identical column names.
    return ResultSet::Build(query, std::move(grouped), stats,
                            ctx.batch_rows());
  }();
  RecordQuery(stats, result.status());
  return result;
}

Result<ResultSet> Db::ExecuteCompleted(const Query& query,
                                       const QueryOptions& options) {
  return ExecuteCompletedImpl(query, options, ExecStats());
}

Result<ResultSet> Db::ExecuteCompletedSql(const std::string& sql,
                                          const QueryOptions& options) {
  ExecStats stats;
  {
    // Cancel-before-parse: a dead query never pays for parsing.
    ExecContext ctx(&options, &stats);
    Status s = ctx.Check();
    if (!s.ok()) {
      RecordQuery(stats, s);
      return s;
    }
  }
  Timer parse_timer;
  Result<Query> query = ParseSql(sql);
  stats.parse_seconds = parse_timer.ElapsedSeconds();
  if (!query.ok()) {
    RecordQuery(stats, query.status());
    return query.status();
  }
  return ExecuteCompletedImpl(*query, options, std::move(stats));
}

void Db::RecordQuery(const ExecStats& stats, const Status& status) {
  std::lock_guard<std::mutex> lock(query_stats_mu_);
  if (status.ok()) {
    ++query_stats_.queries_ok;
  } else if (status.IsCancelled()) {
    ++query_stats_.queries_cancelled;
  } else if (status.IsDeadlineExceeded()) {
    ++query_stats_.queries_deadline_exceeded;
  } else {
    ++query_stats_.queries_failed;
  }
  ExecStats& t = query_stats_.totals;
  t.parse_seconds += stats.parse_seconds;
  t.plan_seconds += stats.plan_seconds;
  t.selection_seconds += stats.selection_seconds;
  t.sample_seconds += stats.sample_seconds;
  t.aggregate_seconds += stats.aggregate_seconds;
  t.tuples_completed += stats.tuples_completed;
  t.models_consulted += stats.models_consulted;
  t.cache_hits += stats.cache_hits;
  t.cache_misses += stats.cache_misses;
  t.arenas_leased += stats.arenas_leased;
  t.batches_joined += stats.batches_joined;
  t.batch_wait_seconds += stats.batch_wait_seconds;
  t.coalesced_rows += stats.coalesced_rows;
}

Db::Stats Db::stats() const {
  std::lock_guard<std::mutex> lock(query_stats_mu_);
  return query_stats_;
}

// ---- Persistence -----------------------------------------------------------

Status Db::SaveModels(const std::string& dir) const {
  RESTORE_RETURN_IF_ERROR(MakeDirectory(dir));

  // Snapshot the successfully-trained models; training that completes after
  // this point is simply not part of the snapshot. Models are immutable once
  // their latch is done, so serialization needs no further locking.
  std::vector<std::pair<std::string, const PathModel*>> snapshot;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (const auto& [key, entry] : models_) {
      if (entry->latch.done_ok()) {
        snapshot.emplace_back(key, entry->model.get());
      }
    }
  }

  BinaryWriter manifest;
  manifest.U64(EngineConfigFingerprint(config_));
  manifest.U64(snapshot.size());
  for (const auto& [key, model] : snapshot) {
    BinaryWriter w;
    model->Save(&w);
    const std::string filename = ModelFileName(key);
    RESTORE_RETURN_IF_ERROR(WriteChecksummedFile(
        dir + "/" + filename, kModelMagic, kModelVersion, w.buffer()));
    manifest.Str(key);
    manifest.Str(filename);
  }

  // Persist completed path selections so a reopened Db answers without
  // re-running (and possibly re-training for) the selection procedure.
  std::vector<std::pair<std::string, std::vector<std::string>>> selections;
  for (const auto& [target, entry] : selected_) {
    if (entry->latch.done_ok()) selections.emplace_back(target, entry->path);
  }
  manifest.U64(selections.size());
  for (const auto& [target, path] : selections) {
    manifest.Str(target);
    manifest.VecStr(path);
  }
  return WriteChecksummedFile(dir + "/" + kManifestName, kManifestMagic,
                              kManifestVersion, manifest.buffer());
}

Status Db::LoadModels(const std::string& dir) {
  uint32_t version = 0;
  RESTORE_ASSIGN_OR_RETURN(
      std::string payload,
      ReadChecksummedFile(dir + "/" + kManifestName, kManifestMagic,
                          kManifestVersion, &version));
  if (version != kManifestVersion) {
    return Status::InvalidArgument(StrFormat(
        "model manifest format v%u is no longer supported (expected v%u): "
        "open without model_dir, let the models retrain, and SaveModels "
        "again (or re-save from a process that still holds them)",
        version, kManifestVersion));
  }
  BinaryReader manifest(std::move(payload));
  const uint64_t fingerprint = manifest.U64();
  const uint64_t expected = EngineConfigFingerprint(config_);
  RESTORE_RETURN_IF_ERROR(manifest.status());
  if (fingerprint != expected) {
    return Status::FailedPrecondition(StrFormat(
        "model directory '%s' was saved under a different engine "
        "configuration (fingerprint %016llx, this Db %016llx) — model "
        "hyperparameters must match the ones the models were trained with",
        dir.c_str(), static_cast<unsigned long long>(fingerprint),
        static_cast<unsigned long long>(expected)));
  }
  const uint64_t num_models = manifest.U64();
  RESTORE_RETURN_IF_ERROR(manifest.status());
  for (uint64_t i = 0; i < num_models; ++i) {
    const std::string key = manifest.Str();
    const std::string filename = manifest.Str();
    RESTORE_RETURN_IF_ERROR(manifest.status());
    RESTORE_ASSIGN_OR_RETURN(
        std::string model_payload,
        ReadChecksummedFile(dir + "/" + filename, kModelMagic,
                            kModelVersion));
    BinaryReader r(std::move(model_payload));
    RESTORE_ASSIGN_OR_RETURN(std::unique_ptr<PathModel> model,
                             PathModel::Load(*database_, annotation_, &r));
    if (!r.AtEnd()) {
      return Status::InvalidArgument(
          StrFormat("'%s' has %zu trailing bytes", filename.c_str(),
                    r.remaining()));
    }
    if (PathKey(model->path()) != key) {
      return Status::InvalidArgument(
          StrFormat("'%s' stores path '%s' but the manifest says '%s'",
                    filename.c_str(), PathKey(model->path()).c_str(),
                    key.c_str()));
    }
    // The arena-retention cap and the batching knobs are serving knobs, not
    // part of the persisted payload: apply this Db's configuration to the
    // restored model.
    model->set_scratch_pool_max_idle(config_.model.max_pooled_scratch_arenas);
    model->set_batching_config(config_.model.batching_enabled,
                               config_.model.batch_wait_us,
                               config_.model.batch_max_rows);
    auto entry = std::make_unique<ModelEntry>();
    entry->model = std::move(model);
    entry->latch.SetDone(Status::OK());
    models_[key] = std::move(entry);
    ++models_loaded_;
  }
  const uint64_t num_selections = manifest.U64();
  RESTORE_RETURN_IF_ERROR(manifest.status());
  for (uint64_t i = 0; i < num_selections; ++i) {
    const std::string target = manifest.Str();
    std::vector<std::string> path = manifest.VecStr();
    RESTORE_RETURN_IF_ERROR(manifest.status());
    auto it = selected_.find(target);
    if (it == selected_.end()) continue;  // target no longer incomplete
    it->second->path = std::move(path);
    it->second->latch.SetDone(Status::OK());
  }
  if (!manifest.AtEnd()) {
    return Status::InvalidArgument("manifest has trailing bytes");
  }
  return Status::OK();
}

// ---- Session / PreparedQuery -----------------------------------------------

Result<PreparedQuery> Session::Prepare(const std::string& sql) const {
  RESTORE_ASSIGN_OR_RETURN(PreparedStatement stmt,
                           PreparedStatement::Prepare(db_->database(), sql));
  return PreparedQuery(db_, std::move(stmt));
}

Result<ResultSet> Session::Execute(const std::string& sql,
                                   const QueryOptions& options) const {
  return db_->ExecuteCompletedSql(sql, options);
}

Result<ResultSet> Session::Execute(const Query& query,
                                   const QueryOptions& options) const {
  return db_->ExecuteCompleted(query, options);
}

ResultSetFuture Session::ExecuteAsync(const std::string& sql,
                                      const QueryOptions& options) const {
  std::shared_ptr<Db> db = db_;
  return ResultSetFuture::Async(ThreadPool::Global(), [db, sql, options]() {
    return db->ExecuteCompletedSql(sql, options);
  });
}

Result<ResultSet> PreparedQuery::Run(const std::vector<Value>& params,
                                     const QueryOptions& options) const {
  if (db_ == nullptr) {
    return Status::FailedPrecondition("PreparedQuery is not bound to a Db");
  }
  Result<Query> bound = stmt_.Bind(params);
  if (!bound.ok()) {
    // Bind failures count as finished (failed) queries too, so the per-Db
    // outcome counters always sum to the number of queries issued.
    db_->RecordQuery(ExecStats(), bound.status());
    return bound.status();
  }
  return db_->ExecuteCompleted(*bound, options);
}

ResultSetFuture PreparedQuery::RunAsync(const std::vector<Value>& params,
                                        const QueryOptions& options) const {
  if (db_ == nullptr) {
    return ResultSetFuture::MakeReady(
        Status::FailedPrecondition("PreparedQuery is not bound to a Db"));
  }
  std::shared_ptr<Db> db = db_;
  PreparedStatement stmt = stmt_;
  return ResultSetFuture::Async(
      ThreadPool::Global(), [db, stmt, params, options]() -> Result<ResultSet> {
        Result<Query> bound = stmt.Bind(params);
        if (!bound.ok()) {
          db->RecordQuery(ExecStats(), bound.status());
          return bound.status();
        }
        return db->ExecuteCompleted(*bound, options);
      });
}

}  // namespace restore
