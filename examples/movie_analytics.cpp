// Movie-analytics scenario: the movie table (and the m:n link tables that
// reference it) are incomplete; queries join movies with directors through
// movie_director. ReStore walks a completion path from the complete director
// table through the link table to synthesize the missing movies. Queries run
// through concurrent sessions, including an async one on the shared pool.
//
//   $ ./build/movie_analytics

#include <cstdio>

#include "datagen/setups.h"
#include "datagen/workload.h"
#include "exec/executor.h"
#include "metrics/metrics.h"
#include "restore/db.h"

using namespace restore;

int main() {
  auto complete = BuildCompleteDatabase("movies", /*seed=*/41, /*scale=*/0.2);
  if (!complete.ok()) {
    std::fprintf(stderr, "building database failed: %s\n",
                 complete.status().ToString().c_str());
    return 1;
  }
  // M1: movies removed with a production-year bias (older movies missing),
  // link tables cascade-removed, only 20% of tuple factors observed.
  auto setup = SetupByName("M1");
  if (!setup.ok()) {
    std::fprintf(stderr, "unknown setup: %s\n",
                 setup.status().ToString().c_str());
    return 1;
  }
  auto incomplete = ApplySetup(*complete, *setup, /*keep_rate=*/0.5,
                               /*removal_correlation=*/0.5, /*seed=*/42);
  if (!incomplete.ok()) {
    std::fprintf(stderr, "applying setup failed: %s\n",
                 incomplete.status().ToString().c_str());
    return 1;
  }

  std::printf("movies:        %zu complete, %zu available\n",
              (*complete->GetTable("movie").value()).NumRows(),
              (*incomplete->GetTable("movie").value()).NumRows());
  std::printf("movie_director %zu complete, %zu available (cascade)\n\n",
              (*complete->GetTable("movie_director").value()).NumRows(),
              (*incomplete->GetTable("movie_director").value()).NumRows());

  auto db = Db::Open(&*incomplete, AnnotationFor(*setup), DbOptions());
  if (!db.ok()) {
    std::fprintf(stderr, "opening Db failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  Session session = (*db)->CreateSession();

  // A join query across two incomplete tables (movie, movie_director) and a
  // complete one (director) — kicked off asynchronously while the
  // production-year histogram below runs on this thread. Both share the
  // same lazily-trained models; the once-latches make that safe.
  const std::string sql =
      "SELECT COUNT(*) FROM movie NATURAL JOIN movie_director NATURAL JOIN "
      "director WHERE gender='m';";
  ResultSetFuture future = session.ExecuteAsync(sql);

  // Production-year histogram: completion restores the missing (old) years.
  const std::string hist =
      "SELECT COUNT(*) FROM movie GROUP BY production_year;";
  auto truth_h = ExecuteSql(*complete, hist);
  auto naive_h = ExecuteSql(*incomplete, hist);
  auto completed_h = session.Execute(hist);
  if (!truth_h.ok() || !naive_h.ok() || !completed_h.ok()) {
    std::fprintf(stderr, "histogram failed: truth=%s naive=%s completed=%s\n",
                 truth_h.status().ToString().c_str(),
                 naive_h.status().ToString().c_str(),
                 completed_h.status().ToString().c_str());
    return 1;
  }

  auto truth = ExecuteSql(*complete, sql);
  auto naive = ExecuteSql(*incomplete, sql);
  Result<ResultSet>& completed = future.Get();
  if (!truth.ok() || !naive.ok() || !completed.ok()) {
    std::fprintf(stderr, "join query failed: truth=%s naive=%s completed=%s\n",
                 truth.status().ToString().c_str(),
                 naive.status().ToString().c_str(),
                 completed.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\n", sql.c_str());
  std::printf("  truth %.0f | incomplete %.0f | completed %.0f\n",
              truth->value(0, 0), naive->value(0, 0), completed->value(0, 0));
  std::printf("  async query stats: %s\n",
              completed->stats().ToString().c_str());

  std::printf("\nproduction-year histogram rel. error: incomplete %.3f | "
              "completed %.3f\n",
              AverageRelativeError(*truth_h, *naive_h),
              AverageRelativeError(*truth_h, *completed_h));
  return 0;
}
