#ifndef RESTORE_RESTORE_SAMPLE_BATCHER_H_
#define RESTORE_RESTORE_SAMPLE_BATCHER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "exec/exec_control.h"
#include "nn/inference_scratch.h"
#include "nn/made.h"

namespace restore {

/// Per-model request coalescing: concurrent sessions' SampleRange /
/// PredictDistribution calls queue here, and after a bounded wait (or a
/// row-count threshold) one caller — the LEADER — stacks every pending
/// request into a single minibatch and runs one sliced forward pass per
/// attribute over it (MadeModel::SampleRangeBatched), converting session
/// concurrency into GEMM width. There is no dedicated batching thread: the
/// first queued caller leads, batch-mates block until their results are
/// scattered back, and when the leader finishes it hands leadership to the
/// next queued caller.
///
/// Determinism contract: results are bit-identical to solo, unbatched
/// execution regardless of how requests happen to coalesce. Each request
/// pre-draws its window's uniforms from ITS OWN rng at submit time in
/// exactly the order the unbatched loop would consume them (attr-major,
/// then row), so the caller's stream state afterwards is identical, and
/// the stacked pass is row-local end to end (see SampleRangeBatched).
///
/// Cancellation: the leader never runs another request's progress callback
/// (that must stay on the owning query's thread); it only reads the atomic
/// cancel flag and the deadline captured at submit. A request that died in
/// the queue is dropped at scatter time with kCancelled /
/// kDeadlineExceeded and its batch-mates complete with their exact values.
///
/// When disabled (the default, see PathModelConfig::batching_enabled) both
/// entry points degrade to the plain single-request path on a pooled arena.
class SampleBatcher {
 public:
  /// Serving knobs, applied via Configure. Like the scratch-pool cap these
  /// affect scheduling only — never results — so they participate in
  /// neither the engine fingerprint nor the persisted model payload.
  struct Config {
    /// Master switch; off = every call executes solo, undelayed.
    bool enabled = false;
    /// How long a leader waits for batch-mates before executing, measured
    /// from its own enqueue. Also the worst-case added latency of an
    /// uncontended request.
    uint32_t wait_us = 200;
    /// The leader stops collecting once the queued rows reach this many.
    size_t max_rows = 4096;
  };

  /// The model must outlive the batcher and be finalized for inference.
  SampleBatcher(const MadeModel* model, InferenceScratchPool* pool)
      : model_(model), pool_(pool) {}
  /// Blocks until every queued request has drained. Owners destroy the
  /// batcher before the model/pool it serves.
  ~SampleBatcher();

  SampleBatcher(const SampleBatcher&) = delete;
  SampleBatcher& operator=(const SampleBatcher&) = delete;

  void Configure(const Config& config);
  Config config() const;
  /// False when disabled OR the model opted into incremental sampling
  /// (that path is only tolerance-equivalent, so it is never coalesced).
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  /// Test hook: a leader keeps collecting until at least `n` requests are
  /// queued (no timeout), forcing exact coalescing patterns. 0 disables.
  void set_test_min_requests(size_t n);

  /// Coalescable counterpart of MadeModel::SampleRange. Draws the window's
  /// uniforms from `rng` up front, queues, and blocks until the request's
  /// batch executed; `codes`/`recorded` are untouched on a non-OK return.
  Status SampleRange(IntMatrix* codes, const Matrix& context,
                     size_t first_attr, size_t end_attr, Rng& rng,
                     int record_attr, Matrix* recorded,
                     const ExecContext* ctx);

  /// Coalescable counterpart of MadeModel::PredictDistribution.
  Status PredictDistribution(const IntMatrix& codes, const Matrix& context,
                             size_t attr, Matrix* probs,
                             const ExecContext* ctx);

 private:
  enum class Kind { kSample, kPredict };

  struct Request {
    Kind kind = Kind::kSample;
    // Sample fields.
    IntMatrix* codes = nullptr;
    const Matrix* context = nullptr;
    size_t first_attr = 0;
    size_t end_attr = 0;
    int record_attr = -1;
    Matrix* recorded = nullptr;
    std::vector<double> uniforms;
    // Predict fields.
    const IntMatrix* pcodes = nullptr;
    size_t attr = 0;
    Matrix* probs = nullptr;
    // Control, captured at submit (the leader must never touch the
    // request's ExecContext beyond these).
    size_t rows = 0;
    const std::atomic<bool>* cancel_flag = nullptr;
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
    ExecStats* stats = nullptr;
    std::chrono::steady_clock::time_point enqueued;
    Status status;
    bool done = false;  // guarded by mu_
  };

  /// Queue + leader-follower handshake; returns the request's outcome.
  Status Submit(Request* req);
  /// Runs one claimed batch: weeds dead requests, stacks the live ones on
  /// a single pooled arena, and writes per-request statuses/stats.
  void ExecuteBatch(const std::vector<Request*>& batch);
  void FillControl(Request* req, const ExecContext* ctx) const;

  const MadeModel* model_;
  InferenceScratchPool* pool_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Config config_;                   // guarded by mu_
  std::atomic<bool> enabled_{false};
  std::vector<Request*> queue_;     // guarded by mu_
  size_t queued_rows_ = 0;          // guarded by mu_
  bool leader_active_ = false;      // guarded by mu_
  size_t test_min_requests_ = 0;    // guarded by mu_
};

}  // namespace restore

#endif  // RESTORE_RESTORE_SAMPLE_BATCHER_H_
