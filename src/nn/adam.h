#ifndef RESTORE_NN_ADAM_H_
#define RESTORE_NN_ADAM_H_

#include <vector>

#include "nn/layers.h"

namespace restore {

/// Hyperparameters of AdamOptimizer.
struct AdamOptions {
  float learning_rate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  float weight_decay = 0.0f;
};

/// Adam optimizer (Kingma & Ba) over a fixed set of registered parameters.
class AdamOptimizer {
 public:
  using Options = AdamOptions;

  explicit AdamOptimizer(std::vector<Param*> params,
                         Options options = Options());

  /// Applies one update from the accumulated gradients, then zeroes them.
  void Step();

  /// Zeroes all parameter gradients without stepping.
  void ZeroGrad();

  void set_learning_rate(float lr) { options_.learning_rate = lr; }
  float learning_rate() const { return options_.learning_rate; }
  int64_t step_count() const { return t_; }

 private:
  /// A contiguous slice of one parameter's flattened storage. The update of
  /// every element is independent, so slices are precomputed once (fixed
  /// boundaries, independent of the thread count) and sharded across the
  /// pool on every Step — deterministic at any pool size.
  struct Slice {
    size_t param;
    size_t begin;
    size_t end;
  };

  std::vector<Param*> params_;
  Options options_;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
  std::vector<Slice> slices_;
  int64_t t_ = 0;
};

}  // namespace restore

#endif  // RESTORE_NN_ADAM_H_
