#include "server/tenant_registry.h"

namespace restore {
namespace server {

Status TenantRegistry::Add(const std::string& name, std::shared_ptr<Db> db,
                           TenantOptions options) {
  if (name.empty() || name.find('/') != std::string::npos) {
    return Status::InvalidArgument("tenant name must be non-empty and "
                                   "slash-free: '" + name + "'");
  }
  if (db == nullptr) {
    return Status::InvalidArgument("tenant '" + name + "' has no Db");
  }
  for (const auto& tenant : tenants_) {
    if (tenant->name() == name) {
      return Status::AlreadyExists("tenant '" + name + "' already registered");
    }
  }
  tenants_.push_back(std::make_shared<Tenant>(name, std::move(db), options));
  return Status::OK();
}

std::shared_ptr<Tenant> TenantRegistry::Resolve(const std::string& name) const {
  if (tenants_.empty()) return nullptr;
  if (name.empty()) return tenants_.front();
  for (const auto& tenant : tenants_) {
    if (tenant->name() == name) return tenant;
  }
  return nullptr;
}

}  // namespace server
}  // namespace restore
