#include "datagen/setups.h"

#include "common/string_util.h"
#include "datagen/housing.h"
#include "datagen/incompleteness.h"
#include "datagen/movies.h"

namespace restore {

std::vector<CompletionSetup> HousingSetups() {
  std::vector<CompletionSetup> out;
  auto make = [](const char* name, const char* column, const char* value) {
    CompletionSetup s;
    s.name = name;
    s.dataset = "housing";
    s.biased_column = column;
    s.categorical_value = value;
    s.tf_keep_rate = 0.3;
    return s;
  };
  CompletionSetup h1 = make("H1", "price", "");
  h1.removed_table = "apartment";
  CompletionSetup h2 = make("H2", "room_type", "entire_home");
  h2.removed_table = "apartment";
  CompletionSetup h3 = make("H3", "property_type", "house");
  h3.removed_table = "apartment";
  CompletionSetup h4 = make("H4", "landlord_since", "");
  h4.removed_table = "landlord";
  CompletionSetup h5 = make("H5", "landlord_response_rate", "");
  h5.removed_table = "landlord";
  out = {h1, h2, h3, h4, h5};
  return out;
}

std::vector<CompletionSetup> MovieSetups() {
  const std::vector<std::string> links = {"movie_director", "movie_actor",
                                          "movie_company"};
  std::vector<CompletionSetup> out;
  auto make = [&](const char* name, const char* table, const char* column,
                  const char* value) {
    CompletionSetup s;
    s.name = name;
    s.dataset = "movies";
    s.removed_table = table;
    s.biased_column = column;
    s.categorical_value = value;
    s.tf_keep_rate = 0.2;
    s.cascade_tables = links;
    return s;
  };
  CompletionSetup m1 = make("M1", "movie", "production_year", "");
  CompletionSetup m2 = make("M2", "movie", "genre", "drama");
  CompletionSetup m3 = make("M3", "movie", "country", "us");
  CompletionSetup m4 = make("M4", "director", "birth_year", "");
  m4.extra_removals["movie"] = 0.8;
  CompletionSetup m5 = make("M5", "company", "country_code", "us");
  m5.extra_removals["movie"] = 0.8;
  out = {m1, m2, m3, m4, m5};
  return out;
}

Result<CompletionSetup> SetupByName(const std::string& name) {
  for (const auto& s : HousingSetups()) {
    if (s.name == name) return s;
  }
  for (const auto& s : MovieSetups()) {
    if (s.name == name) return s;
  }
  return Status::NotFound(StrFormat("unknown setup '%s'", name.c_str()));
}

Result<Database> BuildCompleteDatabase(const std::string& dataset,
                                       uint64_t seed, double scale) {
  if (dataset == "housing") {
    HousingConfig config;
    config.seed = seed;
    config.num_neighborhoods =
        static_cast<size_t>(config.num_neighborhoods * scale);
    config.num_landlords = static_cast<size_t>(config.num_landlords * scale);
    config.num_apartments =
        static_cast<size_t>(config.num_apartments * scale);
    return GenerateHousing(config);
  }
  if (dataset == "movies") {
    MoviesConfig config;
    config.seed = seed;
    config.num_movies = static_cast<size_t>(config.num_movies * scale);
    config.num_directors = static_cast<size_t>(config.num_directors * scale);
    config.num_actors = static_cast<size_t>(config.num_actors * scale);
    config.num_companies =
        static_cast<size_t>(config.num_companies * scale);
    return GenerateMovies(config);
  }
  return Status::InvalidArgument(
      StrFormat("unknown dataset '%s'", dataset.c_str()));
}

Result<Database> ApplySetup(const Database& complete,
                            const CompletionSetup& setup, double keep_rate,
                            double removal_correlation, uint64_t seed) {
  BiasedRemovalConfig removal;
  removal.table = setup.removed_table;
  removal.column = setup.biased_column;
  removal.categorical_value = setup.categorical_value;
  removal.keep_rate = keep_rate;
  removal.removal_correlation = removal_correlation;
  removal.seed = seed;
  RESTORE_ASSIGN_OR_RETURN(Database db,
                           ApplyBiasedRemoval(complete, removal));
  uint64_t extra_seed = seed + 101;
  for (const auto& [table, extra_keep] : setup.extra_removals) {
    RESTORE_ASSIGN_OR_RETURN(
        db, ApplyUniformRemoval(db, table, extra_keep, extra_seed++));
  }
  if (!setup.cascade_tables.empty()) {
    RESTORE_RETURN_IF_ERROR(CascadeRemoveLinkRows(&db, setup.cascade_tables));
  }
  RESTORE_RETURN_IF_ERROR(
      ThinTupleFactors(&db, setup.tf_keep_rate, seed + 997));
  return db;
}

SchemaAnnotation AnnotationFor(const CompletionSetup& setup) {
  SchemaAnnotation annotation;
  annotation.MarkIncomplete(setup.removed_table);
  for (const auto& t : setup.cascade_tables) annotation.MarkIncomplete(t);
  for (const auto& [t, keep] : setup.extra_removals) {
    (void)keep;
    annotation.MarkIncomplete(t);
  }
  return annotation;
}

}  // namespace restore
