#ifndef RESTORE_METRICS_METRICS_H_
#define RESTORE_METRICS_METRICS_H_

#include <string>

#include "common/result.h"
#include "exec/aggregate.h"
#include "exec/result_set.h"
#include "storage/table.h"

namespace restore {

/// Average relative error of an estimated query result against the truth
/// (Section 2.1): for group-by queries, the mean over all TRUE result groups
/// of |est - truth| / |truth|; groups missing from the estimate contribute an
/// error of 1. Aggregates are averaged when the SELECT list has several.
/// The ResultSet overload iterates truth rows in key order — the exact
/// float accumulation order of the map-based overload, so both produce
/// bit-identical numbers for the same data.
double AverageRelativeError(const QueryResult& truth,
                            const QueryResult& estimate);
double AverageRelativeError(const ResultSet& truth,
                            const ResultSet& estimate);

/// Relative error improvement achieved by completion (Fig 8):
///   Er(incomplete, truth) - Er(completed, truth).
double RelativeErrorImprovement(const QueryResult& truth,
                                const QueryResult& incomplete,
                                const QueryResult& completed);
double RelativeErrorImprovement(const ResultSet& truth,
                                const ResultSet& incomplete,
                                const ResultSet& completed);

/// Mean of a numeric column, skipping NULLs. Errors if no values.
Result<double> ColumnMean(const Table& table, const std::string& column);

/// Fraction of rows of a categorical column equal to `value` (NULLs count in
/// the denominator as non-matching).
Result<double> CategoricalFraction(const Table& table,
                                   const std::string& column,
                                   const std::string& value);

/// Bias reduction for a continuous attribute (Equation 2):
///   1 - |avg_completed - avg_true| / |avg_true - avg_incomplete|.
/// The same formula applies to categorical attributes with fractions in
/// place of averages. Unbounded below (a completion can overshoot), 1 is a
/// perfect correction; returns 1 when the incomplete data was already exact.
double BiasReduction(double true_stat, double incomplete_stat,
                     double completed_stat);

/// Cardinality correction (Section 7.3):
///   1 - | |completed| - |complete| | / | |incomplete| - |complete| |.
double CardinalityCorrection(size_t complete_rows, size_t incomplete_rows,
                             size_t completed_rows);

}  // namespace restore

#endif  // RESTORE_METRICS_METRICS_H_
