#ifndef RESTORE_NN_MATRIX_H_
#define RESTORE_NN_MATRIX_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace restore {

/// Dense row-major float matrix. This is the only tensor type the NN
/// substrate needs (all layers operate on [batch x features] activations).
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float at(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  float* row(size_t r) { return data_.data() + r * cols_; }
  const float* row(size_t r) const { return data_.data() + r * cols_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void Resize(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0f);
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

/// Integer matrix used for batches of discretized attribute codes.
class IntMatrix {
 public:
  IntMatrix() : rows_(0), cols_(0) {}
  IntMatrix(size_t rows, size_t cols, int32_t fill = 0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  int32_t& at(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  int32_t at(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  const int32_t* row(size_t r) const { return data_.data() + r * cols_; }
  int32_t* row(size_t r) { return data_.data() + r * cols_; }

  /// Returns a copy containing only the listed rows.
  IntMatrix GatherRows(const std::vector<size_t>& rows) const {
    IntMatrix out(rows.size(), cols_);
    for (size_t i = 0; i < rows.size(); ++i) {
      for (size_t c = 0; c < cols_; ++c) out.at(i, c) = at(rows[i], c);
    }
    return out;
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<int32_t> data_;
};

// ---- BLAS-lite kernels -----------------------------------------------------

/// out = a * b            [m x k] * [k x n] -> [m x n]
void MatMul(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a * b^T          [m x k] * [n x k] -> [m x n]
void MatMulTransB(const Matrix& a, const Matrix& b, Matrix* out);

/// out += a^T * b         [m x k]^T * [m x n] -> [k x n] (accumulating)
void MatMulTransAAccum(const Matrix& a, const Matrix& b, Matrix* out);

/// out[r] += bias for every row r. bias is [1 x n].
void AddBiasRows(const Matrix& bias, Matrix* out);

/// bias_grad += column sums of dy.
void AccumBiasGrad(const Matrix& dy, Matrix* bias_grad);

/// y += x (shapes must match).
void AddInPlace(const Matrix& x, Matrix* y);

/// In-place ReLU; returns mask-applied matrix via dy in BackwardRelu.
void ReluInPlace(Matrix* x);

/// dx = dy masked by (y > 0), where y is the post-ReLU activation.
void ReluBackward(const Matrix& y, Matrix* dy);

/// Numerically-stable in-place softmax over the column slice
/// [col_begin, col_end) of every row.
void SoftmaxSlice(Matrix* logits, size_t col_begin, size_t col_end);

}  // namespace restore

#endif  // RESTORE_NN_MATRIX_H_
