#include "stats/equivalence.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/string_util.h"

namespace restore {

namespace {

/// One query's rows flattened to group-key -> aggregate values.
using FlatResult = std::map<std::string, std::vector<double>>;

Result<FlatResult> RunFlat(Db* db, const std::string& sql) {
  RESTORE_ASSIGN_OR_RETURN(ResultSet rs, db->ExecuteCompletedSql(sql));
  FlatResult out;
  ResultBatch batch;
  while (rs.NextBatch(&batch)) {
    for (size_t r = 0; r < batch.rows; ++r) {
      std::string key;
      for (size_t c = 0; c < rs.num_key_columns(); ++c) {
        if (c > 0) key += '|';
        key += batch.key(r, c);
      }
      std::vector<double>& values = out[key];
      for (size_t c = 0; c < rs.num_value_columns(); ++c) {
        values.push_back(batch.value(r, c));
      }
    }
  }
  return out;
}

/// Non-null numeric cells of a column.
std::vector<double> NumericValues(const Column& col) {
  std::vector<double> out;
  out.reserve(col.size());
  for (size_t r = 0; r < col.size(); ++r) {
    if (!col.IsNull(r)) out.push_back(col.GetNumeric(r));
  }
  return out;
}

/// Per-label counts of a categorical column over a shared label index
/// (labels are assigned indices on first sight across BOTH columns, so the
/// two count vectors are bucket-aligned).
std::vector<double> CategoricalCounts(
    const Column& col, std::map<std::string, size_t>* label_index) {
  std::vector<double> counts(label_index->size(), 0.0);
  const Dictionary& dict = *col.dictionary();
  for (size_t r = 0; r < col.size(); ++r) {
    if (col.IsNull(r)) continue;
    const std::string& label = dict.ValueOf(col.GetCode(r));
    auto [it, inserted] =
        label_index->emplace(label, label_index->size());
    if (inserted || it->second >= counts.size()) {
      counts.resize(label_index->size(), 0.0);
    }
    ++counts[it->second];
  }
  return counts;
}

ColumnComparison CompareColumn(const std::string& table, const Column& ca,
                               const Column& cb,
                               const EquivalenceOptions& options) {
  ColumnComparison cmp;
  cmp.table = table;
  cmp.column = ca.name();
  cmp.numeric = ca.type() != ColumnType::kCategorical;
  if (cmp.numeric) {
    const KsResult ks = KsTwoSample(NumericValues(ca), NumericValues(cb));
    cmp.ks = ks.statistic;
    cmp.ks_p = ks.p_value;
    cmp.pass = ks.p_value >= options.ks_alpha;
    return cmp;
  }
  std::map<std::string, size_t> labels;
  std::vector<double> counts_a = CategoricalCounts(ca, &labels);
  std::vector<double> counts_b = CategoricalCounts(cb, &labels);
  counts_a.resize(labels.size(), 0.0);
  counts_b.resize(labels.size(), 0.0);
  const Chi2Result chi2 = ChiSquaredTwoSample(counts_a, counts_b);
  cmp.chi2 = chi2.statistic;
  cmp.chi2_p = chi2.p_value;
  cmp.pass = chi2.p_value >= options.chi2_alpha;
  return cmp;
}

}  // namespace

std::string EquivalenceReport::Describe() const {
  std::string out = equivalent ? "EQUIVALENT\n" : "NOT EQUIVALENT\n";
  for (const ColumnComparison& c : columns) {
    if (c.pass) continue;
    out += c.numeric
               ? StrFormat("  column %s.%s: KS %.4f (p=%.2e)\n",
                           c.table.c_str(), c.column.c_str(), c.ks, c.ks_p)
               : StrFormat("  column %s.%s: chi2 %.2f (p=%.2e)\n",
                           c.table.c_str(), c.column.c_str(), c.chi2,
                           c.chi2_p);
  }
  for (const QueryComparison& q : queries) {
    if (q.pass) continue;
    if (!q.groups_match) {
      out += StrFormat("  query '%s': group sets differ\n", q.sql.c_str());
    } else {
      out += StrFormat("  query '%s': rel delta %.4f at group '%s'\n",
                       q.sql.c_str(), q.max_rel_delta,
                       q.worst_group.c_str());
    }
  }
  return out;
}

Result<EquivalenceReport> CompareDistributionEquivalence(
    Db* a, Db* b, const std::vector<std::string>& workload,
    const EquivalenceOptions& options) {
  EquivalenceReport report;

  // 1. Completed-table column distributions. The incomplete-table set comes
  // from `a`'s annotation; both Dbs are expected to share the schema.
  for (const std::string& target : a->annotation().incomplete_tables()) {
    RESTORE_ASSIGN_OR_RETURN(Table ta, a->CompleteTable(target));
    RESTORE_ASSIGN_OR_RETURN(Table tb, b->CompleteTable(target));
    for (const Column& ca : ta.columns()) {
      const Column* cb = nullptr;
      for (const Column& c : tb.columns()) {
        if (c.name() == ca.name()) {
          cb = &c;
          break;
        }
      }
      if (cb == nullptr) {
        return Status::InvalidArgument(StrFormat(
            "completed '%s' lacks column '%s' on the second Db",
            target.c_str(), ca.name().c_str()));
      }
      ColumnComparison cmp = CompareColumn(target, ca, *cb, options);
      report.equivalent = report.equivalent && cmp.pass;
      report.columns.push_back(std::move(cmp));
    }
  }

  // 2. Per-group aggregate deltas over the workload.
  for (const std::string& sql : workload) {
    RESTORE_ASSIGN_OR_RETURN(FlatResult ra, RunFlat(a, sql));
    RESTORE_ASSIGN_OR_RETURN(FlatResult rb, RunFlat(b, sql));
    QueryComparison cmp;
    cmp.sql = sql;
    if (ra.size() != rb.size()) cmp.groups_match = false;
    for (const auto& [key, va] : ra) {
      auto it = rb.find(key);
      if (it == rb.end() || it->second.size() != va.size()) {
        cmp.groups_match = false;
        continue;
      }
      for (size_t i = 0; i < va.size(); ++i) {
        const double denom =
            std::max(options.abs_delta_floor,
                     std::max(std::fabs(va[i]), std::fabs(it->second[i])));
        const double rel = std::fabs(va[i] - it->second[i]) / denom;
        if (rel > cmp.max_rel_delta) {
          cmp.max_rel_delta = rel;
          cmp.worst_group = key;
        }
      }
    }
    cmp.pass = cmp.groups_match && cmp.max_rel_delta <= options.max_rel_delta;
    report.equivalent = report.equivalent && cmp.pass;
    report.queries.push_back(std::move(cmp));
  }
  return report;
}

}  // namespace restore
