#include "nn/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"

#define RESTORE_RESTRICT __restrict__

// The portable kernel variant passes 32-byte vectors between TU-local static
// inline helpers; GCC notes the pre-AVX ABI difference, which is irrelevant
// for internal linkage.
#pragma GCC diagnostic ignored "-Wpsabi"

namespace restore {

namespace {

// ---- Kernel variants -------------------------------------------------------
// gemm_kernels.inc is included twice: `generic` compiles with the base flags
// (portable), `avx2` compiles every kernel with target("avx2,fma"). The
// runtime dispatcher below picks the AVX2 path when the CPU supports it.

namespace generic {
#define RESTORE_GEMM_TARGET
#define RESTORE_GEMM_HAVE_FMA 0
#include "nn/gemm_kernels.inc"
#undef RESTORE_GEMM_HAVE_FMA
#undef RESTORE_GEMM_TARGET
}  // namespace generic

#if defined(__x86_64__) || defined(__i386__)
#define RESTORE_HAVE_AVX2_VARIANT 1
namespace avx2 {
#define RESTORE_GEMM_TARGET __attribute__((target("avx2,fma")))
#define RESTORE_GEMM_HAVE_FMA 1
#include "nn/gemm_kernels.inc"
#undef RESTORE_GEMM_HAVE_FMA
#undef RESTORE_GEMM_TARGET
}  // namespace avx2
#endif

using MatMulRowsFn = void (*)(const float*, const float*, float*, size_t,
                              size_t, size_t, size_t);
using MatMulRowsEpiFn = void (*)(const float*, const float*, float*, size_t,
                                 size_t, size_t, size_t, const float*,
                                 const float*, int);
using TransBRowsFn = void (*)(const float*, const float*, float*, size_t,
                              size_t, size_t, size_t);
using ColsSliceRowsFn = void (*)(const float*, const float*, float*, size_t,
                                 size_t, size_t, size_t, size_t, size_t);
using ColsSliceEpiFn = void (*)(const float*, const float*, float*, size_t,
                                size_t, size_t, size_t, size_t, size_t,
                                const float*, const float*, int);
using TransAAccumRowsFn = void (*)(const float*, const float*, float*, size_t,
                                   size_t, size_t, size_t, size_t);
using RowsAccumFn = void (*)(const float*, const float*, float*, size_t,
                             size_t, size_t, size_t, size_t);
using RowMaxFn = float (*)(const float*, size_t);

struct KernelTable {
  MatMulRowsFn matmul_rows;
  MatMulRowsEpiFn matmul_rows_epi;
  TransBRowsFn matmul_transb_rows;
  ColsSliceRowsFn matmul_cols_slice_rows;
  ColsSliceEpiFn matmul_cols_slice_epi;
  TransAAccumRowsFn matmul_transa_accum_rows;
  RowsAccumFn matmul_rows_accum;
  RowMaxFn row_max;
};

const KernelTable& Kernels() {
  static const KernelTable table = [] {
    KernelTable t{generic::MatMulRowsKernel, generic::MatMulRowsEpiKernel,
                  generic::MatMulTransBRowsKernel,
                  generic::MatMulColsSliceRowsKernel,
                  generic::MatMulColsSliceEpiKernel,
                  generic::MatMulTransAAccumRowsKernel,
                  generic::MatMulRowsAccumKernel, generic::RowMaxKernel};
#ifdef RESTORE_HAVE_AVX2_VARIANT
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
      t = {avx2::MatMulRowsKernel, avx2::MatMulRowsEpiKernel,
           avx2::MatMulTransBRowsKernel, avx2::MatMulColsSliceRowsKernel,
           avx2::MatMulColsSliceEpiKernel,
           avx2::MatMulTransAAccumRowsKernel, avx2::MatMulRowsAccumKernel,
           avx2::RowMaxKernel};
    }
#endif
    return t;
  }();
  return table;
}

// ---- Parallel sharding -----------------------------------------------------
// Output-row shards. The grain depends only on the problem shape (never on
// the thread count), each shard owns a disjoint row panel, and rows inside a
// shard are processed in ascending order — so results are bit-identical at
// any thread count. Small problems run inline to skip pool overhead.

constexpr size_t kMinParallelFlops = 1 << 17;

size_t RowGrain(size_t rows, size_t flops_per_row) {
  // Aim for >= ~64K flops per shard, rounded to the 4-row micro-tile.
  size_t grain = (kMinParallelFlops / 2) / (flops_per_row > 0 ? flops_per_row : 1);
  grain = std::max<size_t>(4, grain - grain % 4);
  return std::min(grain, rows > 0 ? rows : size_t{1});
}

}  // namespace

namespace {

// Shared driver of MatMul and its fused-epilogue variant.
void MatMulImpl(const Matrix& a, const Matrix& b, const float* bias,
                bool relu, const float* residual, Matrix* out) {
  assert(a.cols() == b.rows());
  out->Resize(a.rows(), b.cols());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  if (m == 0 || n == 0) return;
  if (k == 0) {
    // Degenerate GEMM (empty inner dim): the product is all zeros, but the
    // epilogue still applies — relu(0 + bias) + residual per element, same
    // as the separate-pass sequence the fused contract promises.
    for (size_t r = 0; r < m; ++r) {
      float* row = out->row(r);
      for (size_t c = 0; c < n; ++c) {
        float v = bias == nullptr ? 0.0f : 0.0f + bias[c];
        if (relu) v = (0.0f < v) ? v : 0.0f;
        if (residual != nullptr) v += residual[r * n + c];
        row[c] = v;
      }
    }
    return;
  }
  if (bias == nullptr && residual == nullptr && !relu) {
    // Pure GEMM: the dedicated plain kernel keeps the epilogue pointers out
    // of the register allocation entirely.
    const auto fn = Kernels().matmul_rows;
    if (m * n * k < kMinParallelFlops) {
      fn(a.data(), b.data(), out->data(), 0, m, k, n);
      return;
    }
    ParallelFor(0, m, RowGrain(m, n * k), [&](size_t lo, size_t hi) {
      fn(a.data(), b.data(), out->data(), lo, hi, k, n);
    });
    return;
  }
  const auto fn = Kernels().matmul_rows_epi;
  const int relu_flag = relu ? 1 : 0;
  if (m * n * k < kMinParallelFlops) {
    fn(a.data(), b.data(), out->data(), 0, m, k, n, bias, residual,
       relu_flag);
    return;
  }
  ParallelFor(0, m, RowGrain(m, n * k), [&](size_t lo, size_t hi) {
    fn(a.data(), b.data(), out->data(), lo, hi, k, n, bias, residual,
       relu_flag);
  });
}

}  // namespace

void MatMul(const Matrix& a, const Matrix& b, Matrix* out) {
  MatMulImpl(a, b, nullptr, false, nullptr, out);
}

void MatMulFused(const Matrix& a, const Matrix& b, const Matrix* bias,
                 bool relu, const Matrix* residual, Matrix* out) {
  assert(bias == nullptr ||
         (bias->rows() == 1 && bias->cols() == b.cols()));
  assert(residual == nullptr ||
         (residual->rows() == a.rows() && residual->cols() == b.cols()));
  assert(residual != out);
  MatMulImpl(a, b, bias == nullptr ? nullptr : bias->data(), relu,
             residual == nullptr ? nullptr : residual->data(), out);
}

namespace {

void MatMulColsSliceImpl(const Matrix& a, const Matrix& b, const float* bias,
                         size_t col_begin, size_t col_end, Matrix* out) {
  assert(a.cols() == b.rows());
  assert(col_begin <= col_end && col_end <= b.cols());
  out->Resize(a.rows(), b.cols());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  const size_t w = col_end - col_begin;
  if (m == 0 || w == 0) return;
  if (k == 0) {
    for (size_t r = 0; r < m; ++r) {
      float* row = out->row(r);
      for (size_t c = col_begin; c < col_end; ++c) {
        row[c] = bias == nullptr ? 0.0f : 0.0f + bias[c];
      }
    }
    return;
  }
  if (bias == nullptr) {
    const auto fn = Kernels().matmul_cols_slice_rows;
    if (m * w * k < kMinParallelFlops) {
      fn(a.data(), b.data(), out->data(), 0, m, k, n, col_begin, col_end);
      return;
    }
    ParallelFor(0, m, RowGrain(m, w * k), [&](size_t lo, size_t hi) {
      fn(a.data(), b.data(), out->data(), lo, hi, k, n, col_begin, col_end);
    });
    return;
  }
  const auto fn = Kernels().matmul_cols_slice_epi;
  if (m * w * k < kMinParallelFlops) {
    fn(a.data(), b.data(), out->data(), 0, m, k, n, col_begin, col_end, bias,
       nullptr, 0);
    return;
  }
  ParallelFor(0, m, RowGrain(m, w * k), [&](size_t lo, size_t hi) {
    fn(a.data(), b.data(), out->data(), lo, hi, k, n, col_begin, col_end,
       bias, nullptr, 0);
  });
}

}  // namespace

void MatMulColsSlice(const Matrix& a, const Matrix& b, size_t col_begin,
                     size_t col_end, Matrix* out) {
  MatMulColsSliceImpl(a, b, nullptr, col_begin, col_end, out);
}

void MatMulColsSliceBias(const Matrix& a, const Matrix& b, const Matrix& bias,
                         size_t col_begin, size_t col_end, Matrix* out) {
  assert(bias.rows() == 1 && bias.cols() == b.cols());
  MatMulColsSliceImpl(a, b, bias.data(), col_begin, col_end, out);
}

namespace {

// Pack b [n x k] into bt [k x n] (the MatMul-friendly layout). A pure
// permutation — no FP arithmetic — so any sharding is trivially
// deterministic. Row/column tiles keep one of the two sides cache-resident.
void TransposeInto(const Matrix& b, Matrix* bt) {
  const size_t rows = b.rows();
  const size_t cols = b.cols();
  bt->Resize(cols, rows);
  constexpr size_t kTile = 64;
  const size_t grain = std::max<size_t>(kTile, 4096 / (rows ? rows : 1));
  ParallelFor(0, cols, grain, [&](size_t lo, size_t hi) {
    for (size_t i0 = 0; i0 < rows; i0 += kTile) {
      const size_t i1 = std::min(rows, i0 + kTile);
      for (size_t j = lo; j < hi; ++j) {
        float* RESTORE_RESTRICT dst = bt->row(j);
        for (size_t i = i0; i < i1; ++i) dst[i] = b.at(i, j);
      }
    }
  });
}

// Packing costs O(n*k) strided moves and pays back ~half the GEMM time, so
// it needs enough output rows reusing the packed tile to amortize. Shape-
// only decision: a given problem shape always takes the same path.
bool ShouldPackTransB(size_t m, size_t k, size_t n) {
  return m >= 16 && k >= 8 && n >= 4;
}

}  // namespace

void MatMulTransB(const Matrix& a, const Matrix& b, Matrix* out) {
  thread_local Matrix pack_scratch;
  MatMulTransB(a, b, out, &pack_scratch);
}

void MatMulTransB(const Matrix& a, const Matrix& b, Matrix* out,
                  Matrix* pack_scratch) {
  assert(a.cols() == b.cols());
  out->Resize(a.rows(), b.rows());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.rows();
  if (m == 0 || n == 0) return;
  if (k == 0) {
    out->Fill(0.0f);
    return;
  }
  if (pack_scratch != nullptr && ShouldPackTransB(m, k, n)) {
    TransposeInto(b, pack_scratch);
    const auto fn = Kernels().matmul_rows;
    if (m * n * k < kMinParallelFlops) {
      fn(a.data(), pack_scratch->data(), out->data(), 0, m, k, n);
      return;
    }
    ParallelFor(0, m, RowGrain(m, n * k), [&](size_t lo, size_t hi) {
      fn(a.data(), pack_scratch->data(), out->data(), lo, hi, k, n);
    });
    return;
  }
  const auto fn = Kernels().matmul_transb_rows;
  if (m * n * k < kMinParallelFlops) {
    fn(a.data(), b.data(), out->data(), 0, m, k, n);
    return;
  }
  ParallelFor(0, m, RowGrain(m, n * k), [&](size_t lo, size_t hi) {
    fn(a.data(), b.data(), out->data(), lo, hi, k, n);
  });
}

void MatMulRowsAccum(const Matrix& a, const Matrix& b, size_t b_row_begin,
                     Matrix* out) {
  assert(b_row_begin + a.cols() <= b.rows());
  assert(out->rows() == a.rows() && out->cols() == b.cols());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  if (m == 0 || k == 0 || n == 0) return;
  // Rank-1 updates per output row; rows are independent, so output-row
  // sharding is deterministic.
  const auto fn = Kernels().matmul_rows_accum;
  if (m * n * k < kMinParallelFlops) {
    fn(a.data(), b.data(), out->data(), 0, m, k, n, b_row_begin);
    return;
  }
  ParallelFor(0, m, RowGrain(m, n * k), [&](size_t lo, size_t hi) {
    fn(a.data(), b.data(), out->data(), lo, hi, k, n, b_row_begin);
  });
}

void MatMulTransAAccum(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.rows() == b.rows());
  assert(out->rows() == a.cols() && out->cols() == b.cols());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  if (k == 0 || n == 0 || m == 0) return;
  const auto fn = Kernels().matmul_transa_accum_rows;
  if (m * n * k < kMinParallelFlops) {
    fn(a.data(), b.data(), out->data(), 0, k, m, k, n);
    return;
  }
  // Sharded over OUTPUT rows (columns of a): each out row is accumulated by
  // exactly one shard, keeping the gradient sums deterministic.
  ParallelFor(0, k, RowGrain(k, m * n), [&](size_t lo, size_t hi) {
    fn(a.data(), b.data(), out->data(), lo, hi, m, k, n);
  });
}

void AddBiasRows(const Matrix& bias, Matrix* out) {
  assert(bias.rows() == 1 && bias.cols() == out->cols());
  const float* RESTORE_RESTRICT b = bias.row(0);
  const size_t cols = out->cols();
  for (size_t r = 0; r < out->rows(); ++r) {
    float* RESTORE_RESTRICT row = out->row(r);
    for (size_t c = 0; c < cols; ++c) row[c] += b[c];
  }
}

void AccumBiasGrad(const Matrix& dy, Matrix* bias_grad) {
  assert(bias_grad->rows() == 1 && bias_grad->cols() == dy.cols());
  float* RESTORE_RESTRICT g = bias_grad->row(0);
  const size_t cols = dy.cols();
  for (size_t r = 0; r < dy.rows(); ++r) {
    const float* RESTORE_RESTRICT row = dy.row(r);
    for (size_t c = 0; c < cols; ++c) g[c] += row[c];
  }
}

void AddInPlace(const Matrix& x, Matrix* y) {
  assert(x.rows() == y->rows() && x.cols() == y->cols());
  float* RESTORE_RESTRICT yd = y->data();
  const float* RESTORE_RESTRICT xd = x.data();
  for (size_t i = 0; i < x.size(); ++i) yd[i] += xd[i];
}

void AddInPlaceCols(const Matrix& x, size_t col_begin, size_t col_end,
                    Matrix* y) {
  assert(x.rows() == y->rows() && x.cols() == y->cols());
  assert(col_begin <= col_end && col_end <= x.cols());
  for (size_t r = 0; r < x.rows(); ++r) {
    const float* RESTORE_RESTRICT xrow = x.row(r);
    float* RESTORE_RESTRICT yrow = y->row(r);
    for (size_t c = col_begin; c < col_end; ++c) yrow[c] += xrow[c];
  }
}

float RowMax(const float* p, size_t n) {
  assert(n > 0);
  return Kernels().row_max(p, n);
}

void ReluInto(const Matrix& x, Matrix* y) {
  y->Resize(x.rows(), x.cols());
  const float* RESTORE_RESTRICT xd = x.data();
  float* RESTORE_RESTRICT yd = y->data();
  for (size_t i = 0; i < x.size(); ++i) yd[i] = std::max(0.0f, xd[i]);
}

void ReluInPlace(Matrix* x) {
  float* RESTORE_RESTRICT d = x->data();
  for (size_t i = 0; i < x->size(); ++i) d[i] = std::max(0.0f, d[i]);
}

void ReluBackward(const Matrix& y, Matrix* dy) {
  assert(y.size() == dy->size());
  const float* RESTORE_RESTRICT yd = y.data();
  float* RESTORE_RESTRICT dd = dy->data();
  for (size_t i = 0; i < y.size(); ++i) {
    if (yd[i] <= 0.0f) dd[i] = 0.0f;
  }
}

void SoftmaxSlice(Matrix* logits, size_t col_begin, size_t col_end) {
  assert(col_begin < col_end && col_end <= logits->cols());
  ParallelFor(0, logits->rows(), LossRowGrain(col_end - col_begin),
              [&](size_t lo, size_t hi) {
    for (size_t r = lo; r < hi; ++r) {
      float* RESTORE_RESTRICT row = logits->row(r);
      float max_v = row[col_begin];
      for (size_t c = col_begin; c < col_end; ++c) {
        max_v = std::max(max_v, row[c]);
      }
      float sum = 0.0f;
      for (size_t c = col_begin; c < col_end; ++c) {
        row[c] = std::exp(row[c] - max_v);
        sum += row[c];
      }
      const float inv = 1.0f / sum;
      for (size_t c = col_begin; c < col_end; ++c) row[c] *= inv;
    }
  });
}

}  // namespace restore
