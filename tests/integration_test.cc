// End-to-end integration tests: the restore::Db session API over the housing
// and movies datasets, including completed query execution and the
// streaming ResultSet cursor.

#include <gtest/gtest.h>

#include "datagen/setups.h"
#include "datagen/workload.h"
#include "exec/executor.h"
#include "metrics/metrics.h"
#include "restore/db.h"

namespace restore {
namespace {

EngineConfig FastEngineConfig() {
  EngineConfig config;
  config.model.epochs = 15;
  config.model.hidden_dim = 32;
  config.model.embed_dim = 6;
  config.model.max_bins = 16;
  config.max_candidates = 2;
  config.selection = SelectionStrategy::kBestTestLoss;
  return config;
}

TEST(DbHousingTest, CompletesApartmentTableAndReducesBias) {
  auto complete = BuildCompleteDatabase("housing", 201, 0.4);
  ASSERT_TRUE(complete.ok());
  auto setup = SetupByName("H1");
  ASSERT_TRUE(setup.ok());
  auto incomplete = ApplySetup(*complete, *setup, 0.5, 0.6, 202);
  ASSERT_TRUE(incomplete.ok());

  auto db = Db::Open(&*incomplete, AnnotationFor(*setup),
                     {FastEngineConfig(), ""});
  ASSERT_TRUE(db.ok()) << db.status();

  auto completed = (*db)->CompleteTable("apartment");
  ASSERT_TRUE(completed.ok()) << completed.status();

  auto true_mean = ColumnMean(*complete->GetTable("apartment").value(),
                              "price");
  auto incomplete_mean =
      ColumnMean(*incomplete->GetTable("apartment").value(), "price");
  auto completed_mean = ColumnMean(*completed, "price");
  ASSERT_TRUE(true_mean.ok());
  ASSERT_TRUE(incomplete_mean.ok());
  ASSERT_TRUE(completed_mean.ok());
  // The biased removal lowered the observed mean; completion must push it
  // back towards the truth.
  ASSERT_LT(incomplete_mean.value(), true_mean.value());
  const double reduction = BiasReduction(
      true_mean.value(), incomplete_mean.value(), completed_mean.value());
  EXPECT_GT(reduction, 0.2) << "true=" << true_mean.value()
                            << " incomplete=" << incomplete_mean.value()
                            << " completed=" << completed_mean.value();
}

TEST(DbHousingTest, CompletedQueryBeatsIncompleteExecution) {
  auto complete = BuildCompleteDatabase("housing", 203, 0.4);
  ASSERT_TRUE(complete.ok());
  auto setup = SetupByName("H1");
  ASSERT_TRUE(setup.ok());
  auto incomplete = ApplySetup(*complete, *setup, 0.4, 0.6, 204);
  ASSERT_TRUE(incomplete.ok());

  auto db = Db::Open(&*incomplete, AnnotationFor(*setup),
                     {FastEngineConfig(), ""});
  ASSERT_TRUE(db.ok()) << db.status();
  Session session = (*db)->CreateSession();

  const std::string sql =
      "SELECT SUM(price) FROM apartment WHERE room_type='entire_home';";
  auto truth = ExecuteSql(*complete, sql);
  auto on_incomplete = ExecuteSql(*incomplete, sql);
  auto on_completed = session.Execute(sql);
  ASSERT_TRUE(truth.ok());
  ASSERT_TRUE(on_incomplete.ok());
  ASSERT_TRUE(on_completed.ok()) << on_completed.status();

  const double err_incomplete =
      AverageRelativeError(*truth, *on_incomplete);
  const double err_completed = AverageRelativeError(*truth, *on_completed);
  EXPECT_LT(err_completed, err_incomplete)
      << "incomplete err=" << err_incomplete
      << " completed err=" << err_completed;
}

TEST(DbHousingTest, PreparedJoinQueryWithIncompleteTableExecutes) {
  auto complete = BuildCompleteDatabase("housing", 205, 0.3);
  ASSERT_TRUE(complete.ok());
  auto setup = SetupByName("H2");
  ASSERT_TRUE(setup.ok());
  auto incomplete = ApplySetup(*complete, *setup, 0.5, 0.5, 206);
  ASSERT_TRUE(incomplete.ok());

  auto db = Db::Open(&*incomplete, AnnotationFor(*setup),
                     {FastEngineConfig(), ""});
  ASSERT_TRUE(db.ok()) << db.status();
  Session session = (*db)->CreateSession();

  // Parse/plan once, execute with two different bindings.
  auto prepared = session.Prepare(
      "SELECT COUNT(*) FROM landlord NATURAL JOIN apartment WHERE "
      "accommodates >= ? GROUP BY landlord_since;");
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  auto result = prepared->Run({Value::Int64(3)});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->num_rows(), 0u);

  // Count must be >= the incomplete count overall (tuples were added).
  const std::string sql =
      "SELECT COUNT(*) FROM landlord NATURAL JOIN apartment WHERE "
      "accommodates >= 3 GROUP BY landlord_since;";
  auto on_incomplete = ExecuteSql(*incomplete, sql);
  ASSERT_TRUE(on_incomplete.ok());
  // Consume the completed result through the streaming cursor.
  double completed_total = 0.0;
  double incomplete_total = 0.0;
  ResultBatch batch;
  while (result->NextBatch(&batch)) {
    for (size_t r = 0; r < batch.rows; ++r) completed_total += batch.value(r, 0);
  }
  for (size_t r = 0; r < on_incomplete->num_rows(); ++r) {
    incomplete_total += on_incomplete->value(r, 0);
  }
  EXPECT_GE(completed_total, incomplete_total);

  // A laxer binding must qualify at least as many rows.
  auto lax = prepared->Run({Value::Int64(1)});
  ASSERT_TRUE(lax.ok()) << lax.status();
  double lax_total = 0.0;
  for (size_t r = 0; r < lax->num_rows(); ++r) lax_total += lax->value(r, 0);
  EXPECT_GE(lax_total, completed_total);
}

TEST(DbHousingTest, CacheReusesCompletedJoin) {
  auto complete = BuildCompleteDatabase("housing", 207, 0.25);
  ASSERT_TRUE(complete.ok());
  auto setup = SetupByName("H1");
  ASSERT_TRUE(setup.ok());
  auto incomplete = ApplySetup(*complete, *setup, 0.5, 0.5, 208);
  ASSERT_TRUE(incomplete.ok());
  auto db = Db::Open(&*incomplete, AnnotationFor(*setup),
                     {FastEngineConfig(), ""});
  ASSERT_TRUE(db.ok()) << db.status();
  Session session = (*db)->CreateSession();
  ASSERT_TRUE(
      session
          .Execute("SELECT AVG(price) FROM apartment WHERE accommodates >= 2;")
          .ok());
  const size_t misses_after_first = (*db)->cache().misses();
  ASSERT_TRUE(session
                  .Execute(
                      "SELECT COUNT(*) FROM apartment WHERE "
                      "room_type='entire_home';")
                  .ok());
  EXPECT_GT((*db)->cache().hits(), 0u);
  EXPECT_EQ((*db)->cache().misses(), misses_after_first);
}

TEST(DbMoviesTest, MultiIncompleteJoinQueryExecutes) {
  auto complete = BuildCompleteDatabase("movies", 209, 0.15);
  ASSERT_TRUE(complete.ok());
  auto setup = SetupByName("M1");
  ASSERT_TRUE(setup.ok());
  auto incomplete = ApplySetup(*complete, *setup, 0.5, 0.5, 210);
  ASSERT_TRUE(incomplete.ok());

  auto db = Db::Open(&*incomplete, AnnotationFor(*setup),
                     {FastEngineConfig(), ""});
  ASSERT_TRUE(db.ok()) << db.status();
  Session session = (*db)->CreateSession();
  const std::string sql =
      "SELECT COUNT(*) FROM movie NATURAL JOIN movie_director NATURAL JOIN "
      "director WHERE gender='m';";
  auto truth = ExecuteSql(*complete, sql);
  auto on_incomplete = ExecuteSql(*incomplete, sql);
  auto on_completed = session.Execute(sql);
  ASSERT_TRUE(truth.ok());
  ASSERT_TRUE(on_incomplete.ok());
  ASSERT_TRUE(on_completed.ok()) << on_completed.status();
  // Completion must recover a meaningful share of the missing join rows.
  const double t = truth->value(0, 0);
  const double i = on_incomplete->value(0, 0);
  const double c = on_completed->value(0, 0);
  EXPECT_GT(c, i) << "completed count should exceed the incomplete count";
  EXPECT_LT(std::abs(c - t) / t, std::abs(i - t) / t)
      << "truth=" << t << " incomplete=" << i << " completed=" << c;
}

TEST(DbTest, SelectedPathStartsCompleteAndEndsAtTarget) {
  auto complete = BuildCompleteDatabase("housing", 211, 0.25);
  ASSERT_TRUE(complete.ok());
  auto setup = SetupByName("H4");
  ASSERT_TRUE(setup.ok());
  auto incomplete = ApplySetup(*complete, *setup, 0.5, 0.5, 212);
  ASSERT_TRUE(incomplete.ok());
  auto db = Db::Open(&*incomplete, AnnotationFor(*setup),
                     {FastEngineConfig(), ""});
  ASSERT_TRUE(db.ok()) << db.status();
  auto path = (*db)->SelectedPathFor("landlord");
  ASSERT_TRUE(path.ok()) << path.status();
  ASSERT_GE(path->size(), 2u);
  EXPECT_EQ(path->back(), "landlord");
  EXPECT_TRUE((*db)->annotation().IsComplete(path->front()));
}

TEST(DbTest, CompleteQueriesOnCompleteTablesBypassModels) {
  auto complete = BuildCompleteDatabase("housing", 213, 0.25);
  ASSERT_TRUE(complete.ok());
  auto setup = SetupByName("H1");
  ASSERT_TRUE(setup.ok());
  auto incomplete = ApplySetup(*complete, *setup, 0.5, 0.5, 214);
  ASSERT_TRUE(incomplete.ok());
  auto db = Db::Open(&*incomplete, AnnotationFor(*setup),
                     {FastEngineConfig(), ""});
  ASSERT_TRUE(db.ok()) << db.status();
  Session session = (*db)->CreateSession();
  // neighborhood is complete: the completed result equals direct execution,
  // and no model had to be trained for it.
  const std::string sql = "SELECT COUNT(*) FROM neighborhood;";
  auto direct = ExecuteSql(*incomplete, sql);
  auto completed = session.Execute(sql);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(completed.ok()) << completed.status();
  EXPECT_DOUBLE_EQ(direct->value(0, 0), completed->value(0, 0));
  EXPECT_EQ((*db)->models_trained(), 0u);
}

TEST(ResultSetTest, BatchCursorStreamsEveryRowExactlyOnce) {
  auto complete = BuildCompleteDatabase("housing", 215, 0.25);
  ASSERT_TRUE(complete.ok());
  auto setup = SetupByName("H1");
  ASSERT_TRUE(setup.ok());
  auto incomplete = ApplySetup(*complete, *setup, 0.5, 0.5, 216);
  ASSERT_TRUE(incomplete.ok());

  auto db = Db::Open(&*incomplete, AnnotationFor(*setup),
                     {FastEngineConfig(), ""});
  ASSERT_TRUE(db.ok()) << db.status();
  Session session = (*db)->CreateSession();

  // A grouped result, streamed in 2-row batches.
  QueryOptions options;
  options.batch_rows = 2;
  auto rs = session.Execute(
      "SELECT COUNT(*), AVG(price) FROM apartment GROUP BY room_type;",
      options);
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_GT(rs->num_rows(), 0u);
  EXPECT_EQ(rs->batch_rows(), 2u);

  size_t streamed = 0;
  double streamed_count_sum = 0.0;
  ResultBatch batch;
  while (rs->NextBatch(&batch)) {
    ASSERT_LE(batch.rows, 2u);
    for (size_t r = 0; r < batch.rows; ++r) {
      streamed_count_sum += batch.value(r, 0);
      ++streamed;
    }
  }
  EXPECT_EQ(streamed, rs->num_rows());
  EXPECT_FALSE(rs->NextBatch(&batch)) << "cursor is exhausted";
  rs->Rewind();
  EXPECT_TRUE(rs->NextBatch(&batch)) << "Rewind restarts the stream";

  double direct_count_sum = 0.0;
  for (size_t r = 0; r < rs->num_rows(); ++r) {
    direct_count_sum += rs->value(r, 0);
  }
  EXPECT_DOUBLE_EQ(streamed_count_sum, direct_count_sum);

  // Per-query ExecStats ride on the ResultSet; the completion consulted at
  // least one model and synthesized tuples for the incomplete table.
  const ExecStats& stats = rs->stats();
  EXPECT_GT(stats.models_consulted, 0u);
  EXPECT_GT(stats.tuples_completed, 0u);
  EXPECT_GT(stats.sample_seconds, 0.0);
  EXPECT_GT(stats.parse_seconds, 0.0);

  // And the Db aggregates them for scraping.
  const Db::Stats db_stats = (*db)->stats();
  EXPECT_GE(db_stats.queries_ok, 1u);
  EXPECT_GE(db_stats.totals.tuples_completed, stats.tuples_completed);
}

}  // namespace
}  // namespace restore
