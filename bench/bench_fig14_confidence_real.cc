// Reproduces Figure 14 (appendix): confidence intervals for the categorical
// real-world setups (H2, H3, M2, M3, M5) vs removal correlation and keep
// rate. The true fraction should lie inside (or near) the predicted bounds.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/confidence_util.h"
#include "common/string_util.h"
#include "metrics/metrics.h"
#include "restore/path_selection.h"

namespace restore {
namespace bench {
namespace {

int Run() {
  FigureJson json("fig14");
  std::printf("# Figure 14: confidence intervals on real-world setups\n");
  std::printf(
      "setup,keep_rate,removal_correlation,true_fraction,"
      "incomplete_fraction,ci_lower,ci_upper,covered\n");
  const double housing_scale = FullGrids() ? 0.4 : 0.15;
  const double movies_scale = FullGrids() ? 0.3 : 0.1;
  const std::vector<double> keeps =
      FullGrids() ? KeepRates() : std::vector<double>{0.4};
  const std::vector<double> corrs =
      FullGrids() ? RemovalCorrelations() : std::vector<double>{0.2, 0.8};
  for (const char* name : {"H2", "H3", "M2", "M3", "M5"}) {
    for (double keep : keeps) {
      for (double corr : corrs) {
        auto run = MakeSetupRun(
            name, keep, corr,
            name[0] == 'H' ? housing_scale : movies_scale, 1600);
        if (!run.ok()) continue;
        auto paths =
            EnumerateCompletionPaths(run->incomplete, run->annotation,
                                     run->setup.removed_table, 5);
        if (paths.empty()) continue;
        PathModelConfig config = BenchEngineConfig().model;
        auto eval = EvaluateCountConfidence(
            run->complete, run->incomplete, run->annotation, paths[0],
            run->setup.removed_table, run->setup.biased_column,
            run->setup.categorical_value, config, 1601);
        if (!eval.ok()) {
          std::fprintf(stderr, "%s: %s\n", name,
                       eval.status().ToString().c_str());
          continue;
        }
        const bool covered =
            eval->true_fraction >= eval->interval.lower - 1e-9 &&
            eval->true_fraction <= eval->interval.upper + 1e-9;
        std::printf("%s,%.0f%%,%.0f%%,%.3f,%.3f,%.3f,%.3f,%s\n", name,
                    keep * 100, corr * 100, eval->true_fraction,
                    eval->incomplete_fraction, eval->interval.lower,
                    eval->interval.upper, covered ? "yes" : "no");
        json.Add(StrFormat("%s/keep=%.0f/corr=%.0f", name, keep * 100,
                           corr * 100),
                 {{"true_fraction", eval->true_fraction},
                  {"incomplete_fraction", eval->incomplete_fraction},
                  {"ci_lower", eval->interval.lower},
                  {"ci_upper", eval->interval.upper},
                  {"covered", covered ? 1.0 : 0.0}});
        std::fflush(stdout);
      }
    }
  }
  if (Status s = json.Write(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace restore

int main() { return restore::bench::Run(); }
