// Movie-analytics scenario: the movie table (and the m:n link tables that
// reference it) are incomplete; queries join movies with directors through
// movie_director. ReStore walks a completion path from the complete director
// table through the link table to synthesize the missing movies.
//
//   $ ./build/examples/movie_analytics

#include <cstdio>

#include "datagen/setups.h"
#include "datagen/workload.h"
#include "exec/executor.h"
#include "metrics/metrics.h"
#include "restore/engine.h"

using namespace restore;

int main() {
  auto complete = BuildCompleteDatabase("movies", /*seed=*/41, /*scale=*/0.2);
  if (!complete.ok()) return 1;
  // M1: movies removed with a production-year bias (older movies missing),
  // link tables cascade-removed, only 20% of tuple factors observed.
  auto setup = SetupByName("M1");
  auto incomplete = ApplySetup(*complete, *setup, /*keep_rate=*/0.5,
                               /*removal_correlation=*/0.5, /*seed=*/42);
  if (!incomplete.ok()) return 1;

  std::printf("movies:        %zu complete, %zu available\n",
              (*complete->GetTable("movie").value()).NumRows(),
              (*incomplete->GetTable("movie").value()).NumRows());
  std::printf("movie_director %zu complete, %zu available (cascade)\n\n",
              (*complete->GetTable("movie_director").value()).NumRows(),
              (*incomplete->GetTable("movie_director").value()).NumRows());

  CompletionEngine engine(&*incomplete, AnnotationFor(*setup), EngineConfig());
  if (auto s = engine.TrainModels(); !s.ok()) {
    std::fprintf(stderr, "training failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // A join query across two incomplete tables (movie, movie_director) and a
  // complete one (director).
  const std::string sql =
      "SELECT COUNT(*) FROM movie NATURAL JOIN movie_director NATURAL JOIN "
      "director WHERE gender='m';";
  auto truth = ExecuteSql(*complete, sql);
  auto naive = ExecuteSql(*incomplete, sql);
  auto completed = engine.ExecuteCompletedSql(sql);
  if (!truth.ok() || !naive.ok() || !completed.ok()) {
    std::fprintf(stderr, "%s\n", completed.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\n", sql.c_str());
  std::printf("  truth %.0f | incomplete %.0f | completed %.0f\n",
              truth->groups.at({})[0], naive->groups.at({})[0],
              completed->groups.at({})[0]);

  // Production-year histogram: completion restores the missing (old) years.
  const std::string hist =
      "SELECT COUNT(*) FROM movie GROUP BY production_year;";
  auto truth_h = ExecuteSql(*complete, hist);
  auto naive_h = ExecuteSql(*incomplete, hist);
  auto completed_h = engine.ExecuteCompletedSql(hist);
  if (truth_h.ok() && naive_h.ok() && completed_h.ok()) {
    std::printf("\nproduction-year histogram rel. error: incomplete %.3f | "
                "completed %.3f\n",
                AverageRelativeError(*truth_h, *naive_h),
                AverageRelativeError(*truth_h, *completed_h));
  }
  return 0;
}
