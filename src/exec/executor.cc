#include "exec/executor.h"

#include "exec/join.h"
#include "exec/prepared.h"
#include "exec/sql_parser.h"

namespace restore {

Result<QueryResult> ExecuteQuery(const Database& db, const Query& query) {
  if (query.tables.empty()) {
    return Status::InvalidArgument("query has no tables");
  }
  if (query.aggregates.empty()) {
    return Status::InvalidArgument("query has no aggregates");
  }
  RESTORE_RETURN_IF_ERROR(CheckFullyBound(query));
  RESTORE_ASSIGN_OR_RETURN(Table joined,
                           NaturalJoinTables(db, query.tables));
  return FilterAndAggregate(joined, query);
}

Result<QueryResult> ExecuteSql(const Database& db, const std::string& sql) {
  RESTORE_ASSIGN_OR_RETURN(Query query, ParseSql(sql));
  return ExecuteQuery(db, query);
}

}  // namespace restore
