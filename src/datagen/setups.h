#ifndef RESTORE_DATAGEN_SETUPS_H_
#define RESTORE_DATAGEN_SETUPS_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "restore/annotation.h"
#include "storage/database.h"

namespace restore {

/// One completion setup of Fig 4c: which table loses tuples, correlated with
/// which attribute, plus dataset-specific extras (tuple-factor keep rate,
/// m:n cascade removal, additional uniform removals).
struct CompletionSetup {
  std::string name;              // "H1".."H5", "M1".."M5"
  std::string dataset;           // "housing" | "movies"
  std::string removed_table;     // the systematically incomplete table
  std::string biased_column;     // attribute correlated with the removal
  std::string categorical_value; // biased value for categorical columns
  double tf_keep_rate = 0.3;     // share of observed tuple factors kept
  std::vector<std::string> cascade_tables;        // m:n link tables
  std::map<std::string, double> extra_removals;   // table -> keep rate
};

/// The five Housing setups H1..H5 (Fig 4c, top).
std::vector<CompletionSetup> HousingSetups();

/// The five Movies setups M1..M5 (Fig 4c, bottom).
std::vector<CompletionSetup> MovieSetups();

/// Looks a setup up by name ("H1".."M5").
Result<CompletionSetup> SetupByName(const std::string& name);

/// Generates the COMPLETE database for a setup's dataset. `scale` multiplies
/// the default table sizes (e.g. 0.5 for faster experiments).
Result<Database> BuildCompleteDatabase(const std::string& dataset,
                                       uint64_t seed, double scale = 1.0);

/// Derives the incomplete database of a setup: biased removal of the main
/// table, extra uniform removals, m:n cascade removal, and tuple-factor
/// thinning.
Result<Database> ApplySetup(const Database& complete,
                            const CompletionSetup& setup, double keep_rate,
                            double removal_correlation, uint64_t seed);

/// The schema annotation matching a setup (removed + cascaded + extra-removed
/// tables are incomplete).
SchemaAnnotation AnnotationFor(const CompletionSetup& setup);

}  // namespace restore

#endif  // RESTORE_DATAGEN_SETUPS_H_
