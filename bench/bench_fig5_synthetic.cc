// Reproduces Figure 5: data completion on synthetic data.
//  5a (top):    bias reduction vs removal correlation x predictability
//               x keep rate
//  5a (bottom): bias reduction vs removal correlation x Zipf skew
//               (predictability fixed at 80%)
//  5b:          held-out loss vs predictability
//  5c:          SSAR-vs-AR bias-reduction improvement vs fan-out
//               predictability

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "datagen/incompleteness.h"
#include "datagen/synthetic.h"
#include "metrics/metrics.h"
#include "restore/incompleteness_join.h"
#include "restore/path_model.h"

namespace restore {
namespace bench {
namespace {

struct SyntheticEval {
  double bias_reduction = 0.0;
  double test_loss = 0.0;
};

/// Runs one synthetic completion scenario and measures the bias reduction of
/// the most-deviating categorical value (as in Exp. 1).
Result<SyntheticEval> RunSynthetic(double predictability, double zipf,
                                   double fanout_pred, double keep_rate,
                                   double correlation, bool ssar,
                                   uint64_t seed) {
  SyntheticConfig config;
  config.num_parents = 350;
  config.predictability = predictability;
  config.zipf_skew = zipf;
  config.fanout_predictability = fanout_pred;
  config.seed = seed;
  RESTORE_ASSIGN_OR_RETURN(Database complete, GenerateSynthetic(config));
  BiasedRemovalConfig removal;
  removal.table = "table_b";
  removal.column = "b";
  removal.keep_rate = keep_rate;
  removal.removal_correlation = correlation;
  removal.seed = seed + 1;
  RESTORE_ASSIGN_OR_RETURN(Database incomplete,
                           ApplyBiasedRemoval(complete, removal));
  RESTORE_RETURN_IF_ERROR(ThinTupleFactors(&incomplete, 0.3, seed + 2));
  SchemaAnnotation annotation;
  annotation.MarkIncomplete("table_b");

  PathModelConfig model_config;
  model_config.epochs = 10;
  model_config.hidden_dim = 40;
  model_config.embed_dim = 8;
  model_config.use_ssar = ssar;
  model_config.seed = seed + 3;
  RESTORE_ASSIGN_OR_RETURN(
      auto model, PathModel::Train(incomplete, annotation,
                                   {"table_a", "table_b"}, model_config));
  IncompletenessJoinExecutor exec(&incomplete, &annotation);
  Rng rng(seed + 4);
  RESTORE_ASSIGN_OR_RETURN(CompletionResult completion,
                           exec.CompletePathJoin(*model, rng));

  // Statistic: fraction of the most biased value of b.
  RESTORE_ASSIGN_OR_RETURN(const Table* truth, complete.GetTable("table_b"));
  RESTORE_ASSIGN_OR_RETURN(const Table* partial,
                           incomplete.GetTable("table_b"));
  RESTORE_ASSIGN_OR_RETURN(const Column* truth_b, truth->GetColumn("b"));
  std::string worst;
  double worst_dev = -1.0;
  for (size_t code = 0; code < truth_b->dictionary()->size(); ++code) {
    const std::string value =
        truth_b->dictionary()->ValueOf(static_cast<int64_t>(code));
    RESTORE_ASSIGN_OR_RETURN(double tf, CategoricalFraction(*truth, "b", value));
    RESTORE_ASSIGN_OR_RETURN(double pf,
                             CategoricalFraction(*partial, "b", value));
    if (std::abs(tf - pf) > worst_dev) {
      worst_dev = std::abs(tf - pf);
      worst = value;
    }
  }
  RESTORE_ASSIGN_OR_RETURN(double true_frac,
                           CategoricalFraction(*truth, "b", worst));
  RESTORE_ASSIGN_OR_RETURN(double incomplete_frac,
                           CategoricalFraction(*partial, "b", worst));
  // Completed fraction over existing + synthesized tuples.
  const auto& synth = completion.synthesized.at("table_b");
  const Column* synth_b = nullptr;
  for (const auto& c : synth) {
    if (c.name() == "b") synth_b = &c;
  }
  RESTORE_ASSIGN_OR_RETURN(const Column* inc_b, partial->GetColumn("b"));
  RESTORE_ASSIGN_OR_RETURN(int64_t code,
                           inc_b->dictionary()->Lookup(worst));
  size_t hits = 0;
  for (size_t r = 0; r < inc_b->size(); ++r) {
    if (inc_b->GetCode(r) == code) ++hits;
  }
  for (size_t r = 0; synth_b != nullptr && r < synth_b->size(); ++r) {
    if (synth_b->GetCode(r) == code) ++hits;
  }
  const double completed_frac =
      static_cast<double>(hits) /
      static_cast<double>(inc_b->size() +
                          (synth_b != nullptr ? synth_b->size() : 0));
  SyntheticEval eval;
  eval.bias_reduction =
      BiasReduction(true_frac, incomplete_frac, completed_frac);
  eval.test_loss = model->target_test_loss();
  return eval;
}

int Run() {
  FigureJson json("fig5");
  const std::vector<double> predictabilities =
      FullGrids() ? std::vector<double>{0.2, 0.4, 0.6, 0.8, 1.0}
                  : std::vector<double>{0.2, 0.6, 1.0};
  const std::vector<double> correlations = RemovalCorrelations();
  const std::vector<double> keeps = KeepRates();

  std::printf("# Figure 5a (top): bias reduction on synthetic data\n");
  std::printf("predictability,removal_correlation,keep_rate,bias_reduction\n");
  for (double p : predictabilities) {
    for (double c : correlations) {
      for (double k : keeps) {
        auto eval = RunSynthetic(p, 0.0, 0.0, k, c, false, 500);
        if (!eval.ok()) {
          std::fprintf(stderr, "fig5a: %s\n", eval.status().ToString().c_str());
          continue;
        }
        std::printf("%.0f%%,%.0f%%,%.0f%%,%.3f\n", p * 100, c * 100, k * 100,
                    eval->bias_reduction);
        json.Add(StrFormat("5a_top/pred=%.0f/corr=%.0f/keep=%.0f", p * 100,
                           c * 100, k * 100),
                 {{"bias_reduction", eval->bias_reduction}});
      }
    }
  }

  std::printf("\n# Figure 5a (bottom): skew has little effect "
              "(predictability 80%%)\n");
  std::printf("zipf_skew,removal_correlation,keep_rate,bias_reduction\n");
  const std::vector<double> skews =
      FullGrids() ? std::vector<double>{1.0, 1.5, 2.0, 2.5, 3.0}
                  : std::vector<double>{1.0, 2.0, 3.0};
  for (double z : skews) {
    for (double c : correlations) {
      for (double k : keeps) {
        auto eval = RunSynthetic(0.8, z, 0.0, k, c, false, 600);
        if (!eval.ok()) continue;
        std::printf("%.1f,%.0f%%,%.0f%%,%.3f\n", z, c * 100, k * 100,
                    eval->bias_reduction);
        json.Add(StrFormat("5a_bottom/zipf=%.1f/corr=%.0f/keep=%.0f", z,
                           c * 100, k * 100),
                 {{"bias_reduction", eval->bias_reduction}});
      }
    }
  }

  std::printf("\n# Figure 5b: held-out loss vs predictability "
              "(model-selection criterion)\n");
  std::printf("predictability,target_test_loss\n");
  for (double p : predictabilities) {
    auto eval = RunSynthetic(p, 0.0, 0.0, 0.6, 0.4, false, 700);
    if (!eval.ok()) continue;
    std::printf("%.0f%%,%.3f\n", p * 100, eval->test_loss);
    json.Add(StrFormat("5b/pred=%.0f", p * 100),
             {{"target_test_loss", eval->test_loss}});
  }

  std::printf("\n# Figure 5c: SSAR vs AR improvement vs fan-out "
              "predictability\n");
  std::printf(
      "fanout_predictability,ar_bias_reduction,ssar_bias_reduction,"
      "improvement\n");
  const std::vector<double> fanout_preds =
      FullGrids() ? std::vector<double>{0.25, 0.5, 0.75, 1.0}
                  : std::vector<double>{0.5, 1.0};
  for (double fp : fanout_preds) {
    auto ar = RunSynthetic(0.0, 0.0, fp, 0.6, 0.4, false, 800);
    auto ssar = RunSynthetic(0.0, 0.0, fp, 0.6, 0.4, true, 800);
    if (!ar.ok() || !ssar.ok()) continue;
    std::printf("%.0f%%,%.3f,%.3f,%.3f\n", fp * 100, ar->bias_reduction,
                ssar->bias_reduction,
                ssar->bias_reduction - ar->bias_reduction);
    json.Add(StrFormat("5c/fanout_pred=%.0f", fp * 100),
             {{"ar_bias_reduction", ar->bias_reduction},
              {"ssar_bias_reduction", ssar->bias_reduction},
              {"improvement",
               ssar->bias_reduction - ar->bias_reduction}});
  }
  if (Status s = json.Write(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace restore

int main() { return restore::bench::Run(); }
