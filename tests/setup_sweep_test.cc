// Parameterized end-to-end sweep: every completion setup (H1..H5, M1..M5)
// trains, completes, and produces a finite bias-reduction — the smoke path
// behind Figure 7's grid.

#include <cmath>

#include <gtest/gtest.h>

#include "datagen/setups.h"
#include "metrics/metrics.h"
#include "restore/db.h"
#include "restore/path_selection.h"

namespace restore {
namespace {

EngineConfig SweepEngineConfig() {
  EngineConfig config;
  config.model.epochs = 6;
  config.model.hidden_dim = 32;
  config.model.embed_dim = 6;
  config.model.max_bins = 12;
  config.model.min_train_steps = 250;
  config.max_candidates = 2;
  return config;
}

class SetupSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(SetupSweep, TrainsCompletesAndCorrectsCardinality) {
  const std::string name = GetParam();
  auto setup = SetupByName(name);
  ASSERT_TRUE(setup.ok());
  const double scale = setup->dataset == "housing" ? 0.12 : 0.08;
  auto complete = BuildCompleteDatabase(setup->dataset, 300, scale);
  ASSERT_TRUE(complete.ok()) << complete.status();
  auto incomplete = ApplySetup(*complete, *setup, 0.5, 0.5, 301);
  ASSERT_TRUE(incomplete.ok()) << incomplete.status();

  auto db = Db::Open(&*incomplete, AnnotationFor(*setup),
                     {SweepEngineConfig(), ""});
  ASSERT_TRUE(db.ok()) << db.status();
  auto path = (*db)->SelectedPathFor(setup->removed_table);
  ASSERT_TRUE(path.ok()) << path.status();
  auto completion = (*db)->CompleteViaPath(*path);
  ASSERT_TRUE(completion.ok()) << completion.status();

  // Synthesis happened and moves the cardinality toward the truth.
  const size_t true_rows =
      (*complete->GetTable(setup->removed_table).value()).NumRows();
  const size_t partial_rows =
      (*incomplete->GetTable(setup->removed_table).value()).NumRows();
  size_t synthesized = 0;
  auto it = completion->synthesized_counts.find(setup->removed_table);
  if (it != completion->synthesized_counts.end()) synthesized = it->second;
  EXPECT_GT(synthesized, 0u) << name;
  const size_t completed_rows = partial_rows + synthesized;
  // Completed cardinality should be closer to the truth than the incomplete
  // one (allowing generous slack for the small scales used in tests).
  const double before = std::abs(static_cast<double>(partial_rows) -
                                 static_cast<double>(true_rows));
  const double after = std::abs(static_cast<double>(completed_rows) -
                                static_cast<double>(true_rows));
  EXPECT_LT(after, before * 1.2)
      << name << ": true=" << true_rows << " partial=" << partial_rows
      << " completed=" << completed_rows;
}

INSTANTIATE_TEST_SUITE_P(AllSetups, SetupSweep,
                         ::testing::Values("H1", "H2", "H3", "H4", "H5", "M1",
                                           "M2", "M3", "M4", "M5"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(PathEnumeration, LongPathsExistForM4M5) {
  auto setup = SetupByName("M4");
  ASSERT_TRUE(setup.ok());
  auto complete = BuildCompleteDatabase("movies", 310, 0.08);
  ASSERT_TRUE(complete.ok());
  auto incomplete = ApplySetup(*complete, *setup, 0.5, 0.5, 311);
  ASSERT_TRUE(incomplete.ok());
  SchemaAnnotation annotation = AnnotationFor(*setup);
  auto paths =
      EnumerateCompletionPaths(*incomplete, annotation, "director", 5);
  ASSERT_FALSE(paths.empty());
  // With movie also incomplete, every root must be actor or company and the
  // paths span 5 tables (the paper's "at least five tables" observation).
  for (const auto& path : paths) {
    EXPECT_TRUE(annotation.IsComplete(path.front())) << path.front();
    EXPECT_EQ(path.back(), "director");
    EXPECT_GE(path.size(), 5u);
  }
}

TEST(PathEnumeration, ShortPathsForHousing) {
  auto setup = SetupByName("H1");
  ASSERT_TRUE(setup.ok());
  auto complete = BuildCompleteDatabase("housing", 320, 0.1);
  ASSERT_TRUE(complete.ok());
  auto incomplete = ApplySetup(*complete, *setup, 0.5, 0.5, 321);
  ASSERT_TRUE(incomplete.ok());
  auto paths = EnumerateCompletionPaths(*incomplete, AnnotationFor(*setup),
                                        "apartment", 5);
  // Both neighborhood->apartment and landlord->apartment must be offered.
  ASSERT_GE(paths.size(), 2u);
  EXPECT_EQ(paths[0].size(), 2u);
}

}  // namespace
}  // namespace restore
