#ifndef RESTORE_COMMON_TIMER_H_
#define RESTORE_COMMON_TIMER_H_

#include <chrono>

namespace restore {

/// Wall-clock stopwatch used by the training/completion timing experiments
/// (Figures 11 and 12).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace restore

#endif  // RESTORE_COMMON_TIMER_H_
