#ifndef RESTORE_STORAGE_VALUE_H_
#define RESTORE_STORAGE_VALUE_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <variant>

namespace restore {

/// Physical column types supported by the storage layer.
///
/// Categorical columns are dictionary-encoded: cell values are int64 codes
/// into a per-column dictionary of strings (see Column::dictionary()).
enum class ColumnType {
  kInt64,
  kDouble,
  kCategorical,
};

const char* ColumnTypeName(ColumnType type);

/// Sentinel used to represent NULL in int64/categorical cells (e.g. foreign
/// keys of synthesized tuples, which completion models do not generate).
inline constexpr int64_t kNullInt64 = std::numeric_limits<int64_t>::min();

/// NULL for double cells.
inline double NullDouble() {
  return std::numeric_limits<double>::quiet_NaN();
}

inline bool IsNullDouble(double v) { return std::isnan(v); }

/// A dynamically-typed cell value used at API boundaries (row appends,
/// literals in SQL predicates). Columnar storage itself never materializes
/// Value objects per cell.
class Value {
 public:
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int64(int64_t v) { return Value(Data(v)); }
  static Value Double(double v) { return Value(Data(v)); }
  static Value Categorical(std::string v) { return Value(Data(std::move(v))); }

  bool is_null() const {
    return std::holds_alternative<std::monostate>(data_);
  }
  bool is_int64() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const {
    return std::holds_alternative<std::string>(data_);
  }

  int64_t int64() const { return std::get<int64_t>(data_); }
  double double_value() const { return std::get<double>(data_); }
  const std::string& string_value() const {
    return std::get<std::string>(data_);
  }

  /// Numeric view: int64 and double cells as double (used by predicates and
  /// aggregates). Must not be called on string/null values.
  double AsDouble() const {
    if (is_int64()) return static_cast<double>(int64());
    return double_value();
  }

  bool operator==(const Value& other) const { return data_ == other.data_; }

  std::string ToString() const;

 private:
  using Data = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Data data) : data_(std::move(data)) {}
  Data data_;
};

}  // namespace restore

#endif  // RESTORE_STORAGE_VALUE_H_
