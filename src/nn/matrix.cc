#include "nn/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"

#define RESTORE_RESTRICT __restrict__

// The portable kernel variant passes 32-byte vectors between TU-local static
// inline helpers; GCC notes the pre-AVX ABI difference, which is irrelevant
// for internal linkage.
#pragma GCC diagnostic ignored "-Wpsabi"

namespace restore {

namespace {

// ---- Kernel variants -------------------------------------------------------
// gemm_kernels.inc is included twice: `generic` compiles with the base flags
// (portable), `avx2` compiles every kernel with target("avx2,fma"). The
// runtime dispatcher below picks the AVX2 path when the CPU supports it.

namespace generic {
#define RESTORE_GEMM_TARGET
#include "nn/gemm_kernels.inc"
#undef RESTORE_GEMM_TARGET
}  // namespace generic

#if defined(__x86_64__) || defined(__i386__)
#define RESTORE_HAVE_AVX2_VARIANT 1
namespace avx2 {
#define RESTORE_GEMM_TARGET __attribute__((target("avx2,fma")))
#include "nn/gemm_kernels.inc"
#undef RESTORE_GEMM_TARGET
}  // namespace avx2
#endif

using MatMulRowsFn = void (*)(const float*, const float*, float*, size_t,
                              size_t, size_t, size_t);
using TransAAccumRowsFn = void (*)(const float*, const float*, float*, size_t,
                                   size_t, size_t, size_t, size_t);

struct KernelTable {
  MatMulRowsFn matmul_rows;
  MatMulRowsFn matmul_transb_rows;
  TransAAccumRowsFn matmul_transa_accum_rows;
};

const KernelTable& Kernels() {
  static const KernelTable table = [] {
    KernelTable t{generic::MatMulRowsKernel, generic::MatMulTransBRowsKernel,
                  generic::MatMulTransAAccumRowsKernel};
#ifdef RESTORE_HAVE_AVX2_VARIANT
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
      t = {avx2::MatMulRowsKernel, avx2::MatMulTransBRowsKernel,
           avx2::MatMulTransAAccumRowsKernel};
    }
#endif
    return t;
  }();
  return table;
}

// ---- Parallel sharding -----------------------------------------------------
// Output-row shards. The grain depends only on the problem shape (never on
// the thread count), each shard owns a disjoint row panel, and rows inside a
// shard are processed in ascending order — so results are bit-identical at
// any thread count. Small problems run inline to skip pool overhead.

constexpr size_t kMinParallelFlops = 1 << 17;

size_t RowGrain(size_t rows, size_t flops_per_row) {
  // Aim for >= ~64K flops per shard, rounded to the 4-row micro-tile.
  size_t grain = (kMinParallelFlops / 2) / (flops_per_row > 0 ? flops_per_row : 1);
  grain = std::max<size_t>(4, grain - grain % 4);
  return std::min(grain, rows > 0 ? rows : size_t{1});
}

}  // namespace

void MatMul(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.cols() == b.rows());
  out->Resize(a.rows(), b.cols());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  if (m == 0 || n == 0) return;
  if (k == 0) {
    out->Fill(0.0f);
    return;
  }
  const auto fn = Kernels().matmul_rows;
  if (m * n * k < kMinParallelFlops) {
    fn(a.data(), b.data(), out->data(), 0, m, k, n);
    return;
  }
  ParallelFor(0, m, RowGrain(m, n * k), [&](size_t lo, size_t hi) {
    fn(a.data(), b.data(), out->data(), lo, hi, k, n);
  });
}

void MatMulTransB(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.cols() == b.cols());
  out->Resize(a.rows(), b.rows());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.rows();
  if (m == 0 || n == 0) return;
  if (k == 0) {
    out->Fill(0.0f);
    return;
  }
  const auto fn = Kernels().matmul_transb_rows;
  if (m * n * k < kMinParallelFlops) {
    fn(a.data(), b.data(), out->data(), 0, m, k, n);
    return;
  }
  ParallelFor(0, m, RowGrain(m, n * k), [&](size_t lo, size_t hi) {
    fn(a.data(), b.data(), out->data(), lo, hi, k, n);
  });
}

void MatMulTransAAccum(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.rows() == b.rows());
  assert(out->rows() == a.cols() && out->cols() == b.cols());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  if (k == 0 || n == 0 || m == 0) return;
  const auto fn = Kernels().matmul_transa_accum_rows;
  if (m * n * k < kMinParallelFlops) {
    fn(a.data(), b.data(), out->data(), 0, k, m, k, n);
    return;
  }
  // Sharded over OUTPUT rows (columns of a): each out row is accumulated by
  // exactly one shard, keeping the gradient sums deterministic.
  ParallelFor(0, k, RowGrain(k, m * n), [&](size_t lo, size_t hi) {
    fn(a.data(), b.data(), out->data(), lo, hi, m, k, n);
  });
}

void AddBiasRows(const Matrix& bias, Matrix* out) {
  assert(bias.rows() == 1 && bias.cols() == out->cols());
  const float* RESTORE_RESTRICT b = bias.row(0);
  const size_t cols = out->cols();
  for (size_t r = 0; r < out->rows(); ++r) {
    float* RESTORE_RESTRICT row = out->row(r);
    for (size_t c = 0; c < cols; ++c) row[c] += b[c];
  }
}

void AccumBiasGrad(const Matrix& dy, Matrix* bias_grad) {
  assert(bias_grad->rows() == 1 && bias_grad->cols() == dy.cols());
  float* RESTORE_RESTRICT g = bias_grad->row(0);
  const size_t cols = dy.cols();
  for (size_t r = 0; r < dy.rows(); ++r) {
    const float* RESTORE_RESTRICT row = dy.row(r);
    for (size_t c = 0; c < cols; ++c) g[c] += row[c];
  }
}

void AddInPlace(const Matrix& x, Matrix* y) {
  assert(x.rows() == y->rows() && x.cols() == y->cols());
  float* RESTORE_RESTRICT yd = y->data();
  const float* RESTORE_RESTRICT xd = x.data();
  for (size_t i = 0; i < x.size(); ++i) yd[i] += xd[i];
}

void ReluInPlace(Matrix* x) {
  float* RESTORE_RESTRICT d = x->data();
  for (size_t i = 0; i < x->size(); ++i) d[i] = std::max(0.0f, d[i]);
}

void ReluBackward(const Matrix& y, Matrix* dy) {
  assert(y.size() == dy->size());
  const float* RESTORE_RESTRICT yd = y.data();
  float* RESTORE_RESTRICT dd = dy->data();
  for (size_t i = 0; i < y.size(); ++i) {
    if (yd[i] <= 0.0f) dd[i] = 0.0f;
  }
}

void SoftmaxSlice(Matrix* logits, size_t col_begin, size_t col_end) {
  assert(col_begin < col_end && col_end <= logits->cols());
  ParallelFor(0, logits->rows(), LossRowGrain(col_end - col_begin),
              [&](size_t lo, size_t hi) {
    for (size_t r = lo; r < hi; ++r) {
      float* RESTORE_RESTRICT row = logits->row(r);
      float max_v = row[col_begin];
      for (size_t c = col_begin; c < col_end; ++c) {
        max_v = std::max(max_v, row[c]);
      }
      float sum = 0.0f;
      for (size_t c = col_begin; c < col_end; ++c) {
        row[c] = std::exp(row[c] - max_v);
        sum += row[c];
      }
      const float inv = 1.0f / sum;
      for (size_t c = col_begin; c < col_end; ++c) row[c] *= inv;
    }
  });
}

}  // namespace restore
