#ifndef RESTORE_RESTORE_STATS_PROMETHEUS_H_
#define RESTORE_RESTORE_STATS_PROMETHEUS_H_

// Prometheus text exposition (version 0.0.4) rendering of the Db's
// aggregated query accounting, so a /metrics endpoint is a thin wrapper:
//
//   PrometheusRenderer out;
//   out.AddDbStats(PrometheusLabel("tenant", "housing"), db.stats());
//   Respond(out.Render());
//
// The renderer groups samples by metric family so the mandatory single
// `# HELP` / `# TYPE` header per family holds even when several label sets
// (e.g. one per tenant) contribute to the same family.

#include <string>
#include <vector>

#include "restore/db.h"

namespace restore {

/// Renders one label as `name="value"` with the required escaping of
/// backslash, double quote, and newline in the value.
std::string PrometheusLabel(const std::string& name, const std::string& value);

/// Joins two pre-rendered label lists with a comma (either may be empty).
std::string JoinPrometheusLabels(const std::string& a, const std::string& b);

/// Accumulates metric families and renders them as Prometheus text format.
class PrometheusRenderer {
 public:
  /// Appends one sample to the counter family `name`, creating the family
  /// (with its HELP/TYPE header) on first use. `labels` is a pre-rendered
  /// comma-separated label list WITHOUT braces (empty = no labels).
  void Counter(const std::string& name, const std::string& help,
               const std::string& labels, double value);

  /// Same for a gauge family (values that can go down, e.g. in-flight).
  void Gauge(const std::string& name, const std::string& help,
             const std::string& labels, double value);

  /// Adds every counter of one Db's aggregated stats under `labels`
  /// (typically a tenant label; empty for a single-Db deployment).
  void AddDbStats(const std::string& labels, const Db::Stats& stats);

  /// Adds per-path freshness gauges (staleness in rows, serving model
  /// generation) from Db::Freshness(), each labelled with the path.
  void AddDbFreshness(const std::string& labels,
                      const std::vector<ModelInfo>& models);

  /// The full exposition: families in first-use order, HELP/TYPE once per
  /// family, one `name{labels} value` line per sample, trailing newline.
  std::string Render() const;

 private:
  struct Sample {
    std::string labels;
    double value;
  };
  struct Family {
    std::string name;
    std::string help;
    std::string type;  // "counter" | "gauge"
    std::vector<Sample> samples;
  };

  void Add(const std::string& name, const std::string& help,
           const std::string& type, const std::string& labels, double value);

  std::vector<Family> families_;
};

/// Convenience one-Db wrapper: a renderer with just AddDbStats(labels,
/// stats), rendered.
std::string StatsToPrometheus(const Db::Stats& stats,
                              const std::string& labels = "");

}  // namespace restore

#endif  // RESTORE_RESTORE_STATS_PROMETHEUS_H_
