#ifndef RESTORE_RESTORE_DB_H_
#define RESTORE_RESTORE_DB_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/future.h"
#include "common/once_latch.h"
#include "common/result.h"
#include "exec/aggregate.h"
#include "exec/exec_control.h"
#include "exec/prepared.h"
#include "exec/query.h"
#include "exec/result_set.h"
#include "restore/annotation.h"
#include "restore/cache.h"
#include "restore/incompleteness_join.h"
#include "restore/path_model.h"
#include "restore/path_selection.h"
#include "storage/database.h"

namespace restore {

/// Engine-level configuration.
/// If you add a field that changes what models are trained or how, include
/// it in EngineConfigFingerprint — the fingerprint guards persisted models
/// against being loaded under a different configuration.
struct EngineConfig {
  PathModelConfig model;
  SelectionStrategy selection = SelectionStrategy::kBestTestLoss;
  /// Maximum completion-path length explored during candidate enumeration.
  size_t max_path_len = 5;
  /// Maximum candidate paths trained per incomplete table.
  size_t max_candidates = 4;
  /// Reuse completed joins across queries (Section 4.5).
  bool enable_cache = true;
  /// LRU byte budget of the completion cache; 0 = unbounded.
  size_t cache_budget_bytes = 0;
  uint64_t seed = 1234;
};

/// Options of Db::Open beyond the engine configuration.
struct DbOptions {
  EngineConfig engine;
  /// If non-empty, trained models previously written by Db::SaveModels are
  /// restored from this directory at open, so the first query is answered
  /// without any training (total_train_seconds() stays 0 until a query
  /// needs a path that was never trained).
  std::string model_dir;
};

class Session;

/// Stable hash of every model hyperparameter of `config` (architecture,
/// discretization, training schedule, engine seed). Persisted in the model
/// manifest by Db::SaveModels and validated at Db::Open: loading models into
/// a Db configured differently fails with a clear Status instead of a
/// parameter-shape surprise (or, worse, silently different models for paths
/// trained after the reopen).
uint64_t EngineConfigFingerprint(const EngineConfig& config);

/// A future holding the asynchronous result of a completed-query execution.
/// Cancellation of the underlying query goes through the QueryOptions token
/// it was started with; the future itself only observes the outcome.
using ResultSetFuture = Future<Result<ResultSet>>;

/// The service-grade facade of ReStore: owns the trained completion models,
/// the completion cache, and the candidate/selection registries for one
/// annotated incomplete database, and answers aggregate queries as if the
/// database were complete.
///
/// Thread safety: a Db is safe for concurrent use from any number of
/// sessions/threads. Lazily-trained PathModels are guarded by per-path
/// once-training latches — concurrent queries needing the same path train
/// it exactly once and share the result; model seeds are a stable function
/// of the path (never of request order), so concurrent execution returns
/// bit-identical results to sequential execution.
///
/// Execution control: every execution entry point accepts a QueryOptions —
/// a cooperative CancellationToken, an absolute deadline, a synthesized-
/// tuple budget (max_completed_rows), the per-query cache policy, and the
/// ResultSet batch size. Results stream as a schema-carrying columnar
/// ResultSet whose ExecStats record parse/plan/sample/aggregate timings,
/// tuples completed, models consulted, cache hits/misses, and scratch
/// arenas leased; Db::stats() aggregates them across queries for scraping.
///
/// Typical usage:
///   RESTORE_ASSIGN_OR_RETURN(auto db, Db::Open(&database, annotation, {}));
///   Session session = db->CreateSession();
///   RESTORE_ASSIGN_OR_RETURN(auto avg_rent, session.Prepare(
///       "SELECT AVG(rent) FROM apartment WHERE accommodates >= ?;"));
///   QueryOptions options;
///   options.cancel = CancellationToken::Cancellable();
///   options.WithTimeout(std::chrono::seconds(5));
///   auto r2 = avg_rent.Run({Value::Int64(2)}, options);
///   auto r4 = avg_rent.RunAsync({Value::Int64(4)});
///   ...
///   RESTORE_RETURN_IF_ERROR(db->SaveModels("/var/lib/restore/models"));
class Db : public std::enable_shared_from_this<Db> {
 public:
  /// Validates the annotation, enumerates candidate completion paths for
  /// every incomplete table (failing early if one has none), and — when
  /// `options.model_dir` is set — restores persisted models so queries run
  /// training-free. `database` must outlive the returned Db.
  static Result<std::shared_ptr<Db>> Open(const Database* database,
                                          SchemaAnnotation annotation,
                                          DbOptions options = DbOptions());

  /// Creates a lightweight session handle bound to this Db.
  Session CreateSession();

  /// Executes `query` over the completed database (incompleteness joins for
  /// incomplete tables, normal execution otherwise), honoring the
  /// cancellation/deadline/budget knobs of `options`.
  Result<ResultSet> ExecuteCompleted(const Query& query,
                                     const QueryOptions& options = {});
  Result<ResultSet> ExecuteCompletedSql(const std::string& sql,
                                        const QueryOptions& options = {});

  /// Returns the completed version of one incomplete table: its existing
  /// tuples plus the synthesized attribute columns (keys are not
  /// synthesized). Used by the bias-reduction experiments. `ctx` (optional,
  /// also on the methods below) threads an owning query's cancellation and
  /// accounting through the completion.
  Result<Table> CompleteTable(const std::string& target,
                              const ExecContext* ctx = nullptr);

  /// Completes via a specific (already trained or new) path — used by the
  /// evaluation harness to score individual models. Deterministic: the
  /// synthesis RNG is derived from the path, not from call order.
  Result<CompletionResult> CompleteViaPath(
      const std::vector<std::string>& path,
      const CompletionOptions& options = CompletionOptions(),
      const ExecContext* ctx = nullptr);

  /// Candidates for `target` (path -> model). Paths are enumerated at Open;
  /// missing models are trained (in parallel, each exactly once) here.
  struct Candidate {
    std::vector<std::string> path;
    const PathModel* model = nullptr;
  };
  Result<std::vector<Candidate>> CandidatesFor(const std::string& target,
                                               const ExecContext* ctx =
                                                   nullptr);

  /// The path selected for `target` by the configured strategy (computed
  /// once per target, under a latch).
  Result<std::vector<std::string>> SelectedPathFor(
      const std::string& target, const ExecContext* ctx = nullptr);

  /// Access to a trained model by its path (trains lazily if absent;
  /// concurrent callers block until the single training run finishes).
  /// Cancellation is honored BEFORE training starts, never mid-training:
  /// models are shared across queries, so one caller's cancel must not
  /// poison the latch for everyone else. A caller with a deadline stops
  /// WAITING once it expires (DeadlineExceeded) while the shared training
  /// run itself continues and stays available to later callers.
  Result<const PathModel*> ModelForPath(const std::vector<std::string>& path,
                                        const ExecContext* ctx = nullptr);

  /// Persists every trained model plus the per-target path selections to
  /// `dir` (created if missing) in a versioned, checksummed binary format.
  /// Safe to call while queries are running; models trained after the
  /// snapshot was taken are not included.
  Status SaveModels(const std::string& dir) const;

  const Database& database() const { return *database_; }
  const SchemaAnnotation& annotation() const { return annotation_; }
  const EngineConfig& config() const { return config_; }
  CompletionCache& cache() { return cache_; }

  /// Total wall-clock seconds spent training models so far (Fig 11).
  /// Models restored from disk contribute nothing.
  double total_train_seconds() const;
  /// Number of PathModel::Train runs this Db executed (restored models do
  /// not count). Under concurrency this equals the number of distinct
  /// trained paths — the once-latches make duplicate training impossible.
  size_t models_trained() const {
    return models_trained_.load(std::memory_order_relaxed);
  }
  /// Number of models restored from `model_dir` at Open.
  size_t models_loaded() const { return models_loaded_; }

  /// Aggregated per-query accounting of this Db, for scraping/monitoring.
  /// Totals are updated once per finished query (success or failure), so a
  /// scrape is cheap and never blocks query execution.
  struct Stats {
    uint64_t queries_ok = 0;
    uint64_t queries_cancelled = 0;
    uint64_t queries_deadline_exceeded = 0;
    uint64_t queries_failed = 0;  // any other non-OK outcome
    /// Field-wise sums of every finished query's ExecStats (partial stats
    /// of cancelled/failed queries included).
    ExecStats totals;
  };
  Stats stats() const;

 private:
  // Run/RunAsync record bind failures into the per-Db stats themselves
  // (binding happens before ExecuteCompleted is ever reached).
  friend class PreparedQuery;
  struct ModelEntry {
    OnceLatch latch;
    std::unique_ptr<PathModel> model;
  };
  struct SelectionEntry {
    OnceLatch latch;
    std::vector<std::string> path;
  };

  Db(const Database* database, SchemaAnnotation annotation,
     EngineConfig config);

  static std::string PathKey(const std::vector<std::string>& path);
  /// Stable training seed for a path: candidate paths get compact indices
  /// assigned in enumeration order at Open (matching what sequential
  /// training produced historically); ad-hoc paths hash their key.
  uint64_t SeedForPath(const std::string& key) const;
  /// RNG seed of a completion run over `key` — a pure function of the path
  /// so completions are independent of request interleaving and process
  /// restarts.
  uint64_t CompletionSeed(const std::string& key) const;

  /// Returns (creating if needed) the registry entry for `key`.
  ModelEntry* EntryFor(const std::string& key);

  /// Builds the completed join used to answer a query over `tables`,
  /// applying the cache per the context's cache policy and recording
  /// hit/miss accounting into its stats.
  Result<std::shared_ptr<const Table>> CompletedJoinFor(
      const std::vector<std::string>& tables, const ExecContext* ctx);

  /// Shared body of the two Execute entry points: runs plan -> completion
  /// -> aggregation under one ExecContext bound to `stats` (which already
  /// carries the parse timing for the SQL path) and folds the outcome into
  /// the per-Db totals.
  Result<ResultSet> ExecuteCompletedImpl(const Query& query,
                                         const QueryOptions& options,
                                         ExecStats stats);
  /// Folds one finished query's stats + outcome into the per-Db totals.
  void RecordQuery(const ExecStats& stats, const Status& status);

  Status LoadModels(const std::string& dir);

  const Database* database_;
  SchemaAnnotation annotation_;
  EngineConfig config_;
  CompletionCache cache_;

  // Immutable after Open.
  std::map<std::string, std::vector<std::vector<std::string>>>
      candidates_;  // target -> candidate paths
  std::map<std::string, uint64_t> path_seeds_;  // PathKey -> training seed
  std::map<std::string, std::unique_ptr<SelectionEntry>> selected_;
  size_t models_loaded_ = 0;

  // Model registry: the map structure is guarded by registry_mu_; each
  // entry's model is guarded by its latch (immutable once trained).
  mutable std::mutex registry_mu_;
  std::map<std::string, std::unique_ptr<ModelEntry>> models_;

  mutable std::mutex stats_mu_;
  double total_train_seconds_ = 0.0;
  std::atomic<size_t> models_trained_{0};

  // Aggregated query accounting (guarded by query_stats_mu_; queries touch
  // it exactly once, at completion).
  mutable std::mutex query_stats_mu_;
  Stats query_stats_;
};

/// A prepared completed-query: parsed and column-qualified once, runnable
/// many times with different positional parameters. Cheap to copy; keeps the
/// Db alive.
class PreparedQuery {
 public:
  PreparedQuery() = default;

  const Query& query() const { return stmt_.query(); }
  size_t num_params() const { return stmt_.num_params(); }

  /// Binds `params` to the `?` placeholders and runs over the completed
  /// database under `options` (cancellation, deadline, budgets).
  Result<ResultSet> Run(const std::vector<Value>& params = {},
                        const QueryOptions& options = {}) const;

  /// Asynchronous variant running on the shared ThreadPool. Cancel via the
  /// options token; a task cancelled while still queued returns
  /// Status::Cancelled as soon as a worker picks it up.
  ResultSetFuture RunAsync(const std::vector<Value>& params = {},
                           const QueryOptions& options = {}) const;

 private:
  friend class Session;
  PreparedQuery(std::shared_ptr<Db> db, PreparedStatement stmt)
      : db_(std::move(db)), stmt_(std::move(stmt)) {}

  std::shared_ptr<Db> db_;
  PreparedStatement stmt_;
};

/// A lightweight handle through which one client talks to a shared Db.
/// Sessions are cheap to create/copy and may live on any thread; all
/// heavyweight state (models, cache) lives in the Db.
class Session {
 public:
  explicit Session(std::shared_ptr<Db> db) : db_(std::move(db)) {}

  /// Parses and qualifies `sql` once, returning a bind-and-run-many handle.
  Result<PreparedQuery> Prepare(const std::string& sql) const;

  /// One-shot execution over the completed database. A pre-cancelled token
  /// (or an already-expired deadline) fails BEFORE the SQL is even parsed.
  Result<ResultSet> Execute(const std::string& sql,
                            const QueryOptions& options = {}) const;
  Result<ResultSet> Execute(const Query& query,
                            const QueryOptions& options = {}) const;

  /// Schedules the query on the shared ThreadPool and returns immediately.
  /// The options (token included) travel with the task.
  ResultSetFuture ExecuteAsync(const std::string& sql,
                               const QueryOptions& options = {}) const;

  const std::shared_ptr<Db>& db() const { return db_; }

 private:
  std::shared_ptr<Db> db_;
};

}  // namespace restore

#endif  // RESTORE_RESTORE_DB_H_
