// Housing-market scenario (the paper's motivating example): the apartment
// table is systematically incomplete — listings in expensive areas are
// underrepresented — and we want the average rent per landlord cohort.
// Also demonstrates model persistence: trained models are saved and a second
// Db is reopened from disk, answering its first query without any training.
//
//   $ ./build/housing_market

#include <cstdio>

#include "datagen/setups.h"
#include "datagen/workload.h"
#include "exec/executor.h"
#include "metrics/metrics.h"
#include "restore/db.h"

using namespace restore;

int main() {
  // Complete housing database (neighborhood / landlord / apartment) and the
  // H1 incompleteness setup: apartments removed with a price-correlated
  // bias, 40% keep rate, 30% of tuple factors observed.
  auto complete = BuildCompleteDatabase("housing", /*seed=*/31, /*scale=*/0.3);
  if (!complete.ok()) {
    std::fprintf(stderr, "building database failed: %s\n",
                 complete.status().ToString().c_str());
    return 1;
  }
  auto setup = SetupByName("H1");
  if (!setup.ok()) {
    std::fprintf(stderr, "unknown setup: %s\n",
                 setup.status().ToString().c_str());
    return 1;
  }
  auto incomplete = ApplySetup(*complete, *setup, /*keep_rate=*/0.4,
                               /*removal_correlation=*/0.6, /*seed=*/32);
  if (!incomplete.ok()) {
    std::fprintf(stderr, "applying setup failed: %s\n",
                 incomplete.status().ToString().c_str());
    return 1;
  }

  auto db = Db::Open(&*incomplete, AnnotationFor(*setup), DbOptions());
  if (!db.ok()) {
    std::fprintf(stderr, "opening Db failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  Session session = (*db)->CreateSession();

  // How biased is the incomplete data, and how much does completion help?
  auto true_mean = ColumnMean(*complete->GetTable("apartment").value(),
                              "price");
  auto incomplete_mean =
      ColumnMean(*incomplete->GetTable("apartment").value(), "price");
  auto completed_table = (*db)->CompleteTable("apartment");
  if (!completed_table.ok()) {
    std::fprintf(stderr, "completing apartment failed: %s\n",
                 completed_table.status().ToString().c_str());
    return 1;
  }
  auto completed_mean = ColumnMean(*completed_table, "price");
  std::printf("average rent:   truth %.2f | incomplete %.2f | completed "
              "%.2f\n",
              *true_mean, *incomplete_mean, *completed_mean);
  std::printf("bias reduction: %.1f%%\n\n",
              100.0 * BiasReduction(*true_mean, *incomplete_mean,
                                    *completed_mean));
  auto path = (*db)->SelectedPathFor("apartment");
  if (!path.ok()) {
    std::fprintf(stderr, "path selection failed: %s\n",
                 path.status().ToString().c_str());
    return 1;
  }
  std::printf("selected completion path:");
  for (const auto& t : *path) std::printf(" %s", t.c_str());
  std::printf("\n\n");

  // Run the two H1 workload queries of Table 1 end to end.
  for (const auto& wq : HousingWorkload()) {
    if (wq.setup != "H1") continue;
    auto truth = ExecuteSql(*complete, wq.sql);
    auto naive = ExecuteSql(*incomplete, wq.sql);
    auto completed = session.Execute(wq.sql);
    if (!truth.ok() || !naive.ok() || !completed.ok()) {
      std::fprintf(stderr, "%s failed: truth=%s naive=%s completed=%s\n",
                   wq.name.c_str(), truth.status().ToString().c_str(),
                   naive.status().ToString().c_str(),
                   completed.status().ToString().c_str());
      return 1;
    }
    std::printf("%s: %s\n", wq.name.c_str(), wq.sql.c_str());
    std::printf("  rel. error incomplete: %.3f | completed: %.3f\n",
                AverageRelativeError(*truth, *naive),
                AverageRelativeError(*truth, *completed));
  }

  // Persist the trained models and reopen them in a second Db — the restart
  // story: a fresh server answers with zero training time.
  const std::string model_dir = "/tmp/restore_housing_models";
  if (auto s = (*db)->SaveModels(model_dir); !s.ok()) {
    std::fprintf(stderr, "saving models failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  DbOptions reopen_options;
  reopen_options.model_dir = model_dir;
  auto reopened = Db::Open(&*incomplete, AnnotationFor(*setup),
                           reopen_options);
  if (!reopened.ok()) {
    std::fprintf(stderr, "reopening from %s failed: %s\n", model_dir.c_str(),
                 reopened.status().ToString().c_str());
    return 1;
  }
  auto warm = (*reopened)->CreateSession().Execute(
      "SELECT AVG(price) FROM apartment;");
  if (!warm.ok()) {
    std::fprintf(stderr, "warm query failed: %s\n",
                 warm.status().ToString().c_str());
    return 1;
  }
  std::printf("\nreopened from %s: %zu models loaded, %.2fs training, "
              "AVG(price) = %.2f\n",
              model_dir.c_str(), (*reopened)->models_loaded(),
              (*reopened)->total_train_seconds(), warm->value(0, 0));
  return 0;
}
