#ifndef RESTORE_SERVER_EVENT_LOOP_H_
#define RESTORE_SERVER_EVENT_LOOP_H_

// A single-threaded epoll event loop (level-triggered). Each loop owns one
// epoll instance, one dispatch thread, and the connections assigned to it;
// all per-connection state is therefore mutated from exactly one thread.
// Other threads talk to a loop only through Post(), which enqueues a task
// and wakes the loop via an eventfd.
//
// Linux-only (epoll); the server subsystem is compiled on every platform
// but Init() fails cleanly where epoll is unavailable.

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace restore {
namespace server {

class EventLoop {
 public:
  /// Receives readiness events for one registered fd. The handler must stay
  /// alive until its fd is Del()ed (handlers that destroy themselves inside
  /// OnEvent must keep *this alive for the duration of the call, e.g. via a
  /// shared_from_this guard).
  class Handler {
   public:
    virtual ~Handler() = default;
    /// `events` is the epoll event bitmask (EPOLLIN, EPOLLOUT, ...).
    virtual void OnEvent(uint32_t events) = 0;
  };

  EventLoop() = default;
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll instance and the wakeup eventfd.
  Status Init();

  /// Spawns the dispatch thread. Init() must have succeeded.
  void Start();

  /// Asks the dispatch thread to exit (after draining posted tasks) and
  /// joins it. Idempotent.
  void Stop();

  /// Runs `fn` on the loop thread, in post order, interleaved with event
  /// dispatch. Thread-safe; wakes the loop. Tasks posted after Stop() began
  /// may run during the final drain or not at all.
  void Post(std::function<void()> fn);

  Status Add(int fd, uint32_t events, Handler* handler);
  Status Mod(int fd, uint32_t events, Handler* handler);
  void Del(int fd);

  /// True when called from the loop's dispatch thread.
  bool InLoopThread() const {
    return std::this_thread::get_id() == thread_.get_id();
  }

 private:
  void Run();
  void Wake();
  void DrainPosted();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;
};

}  // namespace server
}  // namespace restore

#endif  // RESTORE_SERVER_EVENT_LOOP_H_
