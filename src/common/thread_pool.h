#ifndef RESTORE_COMMON_THREAD_POOL_H_
#define RESTORE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace restore {

/// A fixed-size thread pool shared by the whole NN substrate (GEMM row
/// panels, embedding lookups, Adam updates, loss slices, candidate-model
/// training).
///
/// Determinism contract: `ParallelFor` splits [begin, end) into shards whose
/// boundaries depend only on the range and the `grain` argument — never on
/// the number of threads. Each shard is executed exactly once, by exactly one
/// thread, over its indices in ascending order. Work that writes disjoint
/// outputs per shard (all uses in this codebase) therefore produces
/// bit-identical results at any thread count, including 0 workers.
///
/// Nesting: `ParallelFor` is work-sharing, not work-stealing — the calling
/// thread always participates and claims shards from a shared atomic cursor,
/// so calling it from inside a pool task cannot deadlock (the caller drains
/// the loop itself if every worker is busy).
class ThreadPool {
 public:
  /// `num_threads` is the number of WORKER threads; the thread invoking
  /// ParallelFor always helps, so compute width is num_threads + 1.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Total compute width of this pool: its worker threads plus the calling
  /// thread that always participates in ParallelFor.
  size_t Width() const { return threads_.size() + 1; }

  /// The process-wide pool. Sized to hardware_concurrency() - 1 workers by
  /// default; the RESTORE_NUM_THREADS environment variable (total compute
  /// width, >= 1) overrides it.
  static ThreadPool& Global();

  /// Width() of the current global pool.
  static size_t GlobalWidth();

  /// Rebuilds the global pool with `width - 1` workers (width >= 1 is the
  /// total compute width including the caller); width == 0 resets to the
  /// environment default.
  ///
  /// Safe to call while other threads still hold a reference from Global()
  /// (e.g. a running server's query workers, bench_server Setup/Teardown):
  /// the old pool's workers are stopped and joined after its queue drained,
  /// and the pool OBJECT is retired — kept alive for the process lifetime —
  /// so a straggler that raced the swap executes its ParallelFor inline on
  /// the retired (now worker-less) pool instead of touching freed memory.
  /// Work submitted after the swap via Global() lands on the new pool.
  static void SetGlobalWidth(size_t width);

  /// Enqueues an independent task.
  void Run(std::function<void()> fn);

  /// Runs fn(shard_begin, shard_end) over consecutive shards of [begin, end)
  /// of size `grain` (the last shard may be short). Blocks until every shard
  /// completed. Shard boundaries are independent of the thread count.
  ///
  /// Cooperative cancellation: when `cancel` is non-null, each shard tests
  /// it before running and is SKIPPED once the flag is set (the call still
  /// returns only after all shards are accounted for). Outputs of skipped
  /// shards are unspecified — callers abort the whole computation on
  /// cancellation. An unset flag changes nothing, preserving the
  /// bit-identical-at-any-width determinism contract.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& fn,
                   const std::atomic<bool>* cancel = nullptr);

 private:
  void WorkerLoop();
  /// Stops and joins the worker threads after the queue drained. The pool
  /// stays usable afterwards: with zero workers every Run/ParallelFor
  /// executes inline on the calling thread.
  void StopWorkers();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Convenience wrapper over ThreadPool::Global().ParallelFor.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn,
                 const std::atomic<bool>* cancel = nullptr);

}  // namespace restore

#endif  // RESTORE_COMMON_THREAD_POOL_H_
