// Determinism regression test for the threaded NN substrate: training and
// sampling a MadeModel with the global pool at 1 vs. 4 threads must produce
// bit-identical losses and samples for a fixed seed. This pins the contract
// documented in src/nn/README.md — shard boundaries and accumulation orders
// depend only on problem shapes, never on the thread count.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "datagen/incompleteness.h"
#include "datagen/synthetic.h"
#include "exec/exec_control.h"
#include "nn/adam.h"
#include "nn/inference_scratch.h"
#include "nn/made.h"
#include "nn/matrix.h"
#include "restore/db.h"
#include "restore/sample_batcher.h"

namespace restore {
namespace {

struct TrainResult {
  std::vector<float> losses;
  std::vector<int32_t> samples;
  std::vector<float> probs;
};

/// Trains a small MADE for a few steps and then samples from it, entirely
/// driven by the fixed seed.
TrainResult TrainAndSample(uint64_t seed) {
  Rng rng(seed);
  MadeConfig config;
  // One wide attribute (vocab 300) forces the loss row grain down to
  // max(16, 4096/300) = 16, so the 96-row batch spans 6 shards and the
  // per-shard partial-sum reduction order is actually exercised — a single
  // collapsed shard at width 1 would produce different float sums.
  config.vocab_sizes = {7, 300, 11, 3};
  config.embed_dim = 4;
  config.hidden_dim = 32;
  config.num_layers = 2;
  MadeModel made(config, rng);

  const size_t batch = 96;
  IntMatrix codes(batch, config.vocab_sizes.size());
  for (size_t r = 0; r < batch; ++r) {
    for (size_t a = 0; a < config.vocab_sizes.size(); ++a) {
      codes.at(r, a) = static_cast<int32_t>(
          rng.NextUint64(static_cast<uint64_t>(config.vocab_sizes[a])));
    }
  }

  std::vector<Param*> params;
  made.CollectParams(&params);
  AdamOptimizer adam(params);

  TrainResult result;
  const Matrix empty_context;
  Matrix logits;
  Matrix dlogits;
  for (int step = 0; step < 8; ++step) {
    made.Forward(codes, empty_context, &logits);
    result.losses.push_back(made.NllLoss(logits, codes, 0, &dlogits));
    made.Backward(dlogits, nullptr);
    adam.Step();
  }

  IntMatrix sampled(batch, config.vocab_sizes.size(), 0);
  Matrix recorded;
  made.SampleRange(&sampled, empty_context, 0, config.vocab_sizes.size(), rng,
                   /*record_attr=*/2, &recorded);
  for (size_t r = 0; r < batch; ++r) {
    for (size_t a = 0; a < config.vocab_sizes.size(); ++a) {
      result.samples.push_back(sampled.at(r, a));
    }
  }
  result.probs.assign(recorded.data(), recorded.data() + recorded.size());
  return result;
}

TEST(ThreadDeterminismTest, TrainingAndSamplingIdenticalAt1And4Threads) {
  ThreadPool::SetGlobalWidth(1);
  const TrainResult single = TrainAndSample(/*seed=*/42);
  ThreadPool::SetGlobalWidth(4);
  const TrainResult quad = TrainAndSample(/*seed=*/42);
  ThreadPool::SetGlobalWidth(1);
  const TrainResult single_again = TrainAndSample(/*seed=*/42);
  // Restore the environment-default pool for any later test in this binary.
  ThreadPool::SetGlobalWidth(0);

  ASSERT_EQ(single.losses.size(), quad.losses.size());
  for (size_t i = 0; i < single.losses.size(); ++i) {
    // Bit-identical, not approximately equal.
    EXPECT_EQ(single.losses[i], quad.losses[i]) << "loss step " << i;
    EXPECT_EQ(single.losses[i], single_again.losses[i]) << "rerun step " << i;
  }
  EXPECT_TRUE(std::isfinite(single.losses.front()));
  EXPECT_LT(single.losses.back(), single.losses.front())
      << "training should reduce the loss";

  ASSERT_EQ(single.samples.size(), quad.samples.size());
  for (size_t i = 0; i < single.samples.size(); ++i) {
    ASSERT_EQ(single.samples[i], quad.samples[i]) << "sample " << i;
  }
  ASSERT_EQ(single.probs.size(), quad.probs.size());
  for (size_t i = 0; i < single.probs.size(); ++i) {
    ASSERT_EQ(single.probs[i], quad.probs[i]) << "recorded prob " << i;
  }
}

// The sliced sampling fast path (now the DEFAULT SampleRange) and the
// opt-in incremental delta path must both be bit-identical across thread
// counts: the sliced output-layer GEMM, the fused hidden trunk, the partial
// embedding re-gather, and the delta update all shard with shape-only
// grains. (CI's TSan job runs this binary repeatedly, so the sliced path is
// also raced for data coherence.)
struct SampleOnlyResult {
  std::vector<int32_t> samples;
  std::vector<float> probs;
};

SampleOnlyResult SampleSliced(uint64_t seed, bool incremental) {
  Rng rng(seed);
  MadeConfig config;
  // A wide attribute forces multi-shard row blocks (see TrainAndSample).
  config.vocab_sizes = {9, 300, 17, 40, 5};
  config.embed_dim = 6;
  config.hidden_dim = 40;
  config.num_layers = 2;
  config.incremental_sampling = incremental;
  MadeModel made(config, rng);
  made.FinalizeForInference();

  const size_t batch = 160;
  IntMatrix codes(batch, config.vocab_sizes.size(), 0);
  Matrix recorded;
  MadeScratch scratch;
  made.SampleRange(&codes, Matrix(), 0, config.vocab_sizes.size(), rng,
                   /*record_attr=*/3, &recorded, &scratch);
  SampleOnlyResult result;
  for (size_t r = 0; r < batch; ++r) {
    for (size_t a = 0; a < config.vocab_sizes.size(); ++a) {
      result.samples.push_back(codes.at(r, a));
    }
  }
  result.probs.assign(recorded.data(), recorded.data() + recorded.size());
  return result;
}

TEST(ThreadDeterminismTest, SlicedSamplingIdenticalAt1And4Threads) {
  for (const bool incremental : {false, true}) {
    ThreadPool::SetGlobalWidth(1);
    const SampleOnlyResult single = SampleSliced(7, incremental);
    ThreadPool::SetGlobalWidth(4);
    const SampleOnlyResult quad = SampleSliced(7, incremental);
    ThreadPool::SetGlobalWidth(0);

    ASSERT_EQ(single.samples.size(), quad.samples.size());
    for (size_t i = 0; i < single.samples.size(); ++i) {
      ASSERT_EQ(single.samples[i], quad.samples[i])
          << "sample " << i << " incremental=" << incremental;
    }
    ASSERT_EQ(single.probs.size(), quad.probs.size());
    for (size_t i = 0; i < single.probs.size(); ++i) {
      ASSERT_EQ(single.probs[i], quad.probs[i])
          << "recorded prob " << i << " incremental=" << incremental;
    }
  }
}

// ---- Db-level concurrency ---------------------------------------------------

EngineConfig FastDbConfig() {
  EngineConfig config;
  config.model.epochs = 4;
  config.model.min_train_steps = 120;
  config.model.hidden_dim = 24;
  config.model.embed_dim = 4;
  config.model.max_bins = 12;
  config.max_candidates = 2;
  return config;
}

Database MakeIncompleteSynthetic(uint64_t seed) {
  SyntheticConfig data_config;
  data_config.num_parents = 220;
  data_config.predictability = 0.85;
  data_config.seed = seed;
  auto complete = GenerateSynthetic(data_config);
  EXPECT_TRUE(complete.ok());
  BiasedRemovalConfig removal;
  removal.table = "table_b";
  removal.column = "b";
  removal.keep_rate = 0.5;
  removal.removal_correlation = 0.5;
  removal.seed = seed + 1;
  auto incomplete = ApplyBiasedRemoval(*complete, removal);
  EXPECT_TRUE(incomplete.ok());
  EXPECT_TRUE(ThinTupleFactors(&*incomplete, 0.3, seed + 2).ok());
  return std::move(incomplete).value();
}

/// The fixed mixed workload every client runs: two ad-hoc SQL queries and
/// two prepared parameterized queries over the same table sets.
struct Workload {
  std::vector<std::string> adhoc;
  std::vector<std::pair<std::string, Value>> prepared;  // sql, bound param
};

Workload MakeWorkload(const Database& db) {
  const std::string b0 =
      db.GetTable("table_b").value()->GetColumn("b").value()->dictionary()
          ->ValueOf(0);
  Workload w;
  w.adhoc = {
      "SELECT COUNT(*) FROM table_a NATURAL JOIN table_b GROUP BY b;",
      "SELECT COUNT(*) FROM table_b GROUP BY b;",
  };
  w.prepared = {
      {"SELECT COUNT(*) FROM table_b WHERE b != ?;", Value::Categorical(b0)},
      {"SELECT COUNT(*) FROM table_a NATURAL JOIN table_b WHERE b = ?;",
       Value::Categorical(b0)},
  };
  return w;
}

/// Runs the whole workload on one session, alternating sync and async styles
/// by `flavor`, and returns the results in workload order.
std::vector<ResultSet> RunWorkload(const Session& session,
                                   const Workload& workload, int flavor) {
  std::vector<ResultSet> out;
  for (size_t i = 0; i < workload.adhoc.size(); ++i) {
    if ((flavor + static_cast<int>(i)) % 2 == 0) {
      ResultSetFuture f = session.ExecuteAsync(workload.adhoc[i]);
      Result<ResultSet>& r = f.Get();
      EXPECT_TRUE(r.ok()) << r.status();
      out.push_back(*r);
    } else {
      auto r = session.Execute(workload.adhoc[i]);
      EXPECT_TRUE(r.ok()) << r.status();
      out.push_back(*r);
    }
  }
  for (size_t i = 0; i < workload.prepared.size(); ++i) {
    auto prepared = session.Prepare(workload.prepared[i].first);
    EXPECT_TRUE(prepared.ok()) << prepared.status();
    const std::vector<Value> params{workload.prepared[i].second};
    if ((flavor + static_cast<int>(i)) % 2 == 0) {
      ResultSetFuture f = prepared->RunAsync(params);
      Result<ResultSet>& r = f.Get();
      EXPECT_TRUE(r.ok()) << r.status();
      out.push_back(*r);
    } else {
      auto r = prepared->Run(params);
      EXPECT_TRUE(r.ok()) << r.status();
      out.push_back(*r);
    }
  }
  return out;
}

TEST(DbConcurrencyTest, HammeredDbMatchesSequentialAndTrainsEachPathOnce) {
  Database incomplete = MakeIncompleteSynthetic(/*seed=*/77);
  SchemaAnnotation annotation;
  annotation.MarkIncomplete("table_b");
  const Workload workload = MakeWorkload(incomplete);

  // Sequential baseline on a fresh Db.
  ThreadPool::SetGlobalWidth(1);
  auto seq_db = Db::Open(&incomplete, annotation, DbOptions().WithEngine(FastDbConfig()));
  ASSERT_TRUE(seq_db.ok()) << seq_db.status();
  const std::vector<ResultSet> baseline =
      RunWorkload((*seq_db)->CreateSession(), workload, /*flavor=*/1);
  const size_t baseline_trained = (*seq_db)->models_trained();
  EXPECT_GT(baseline_trained, 0u);

  // 4 client threads hammering ONE fresh Db with the same mixed workload,
  // on a 4-wide pool (async queries and training share it).
  ThreadPool::SetGlobalWidth(4);
  auto conc_db = Db::Open(&incomplete, annotation, DbOptions().WithEngine(FastDbConfig()));
  ASSERT_TRUE(conc_db.ok()) << conc_db.status();
  constexpr int kClients = 4;
  std::vector<std::vector<ResultSet>> per_client(kClients);
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        per_client[c] =
            RunWorkload((*conc_db)->CreateSession(), workload, /*flavor=*/c);
      });
    }
    for (auto& t : clients) t.join();
  }
  ThreadPool::SetGlobalWidth(0);  // restore the environment default

  // Every client saw exactly the sequential answers.
  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(per_client[c].size(), baseline.size()) << "client " << c;
    for (size_t q = 0; q < baseline.size(); ++q) {
      EXPECT_EQ(per_client[c][q], baseline[q])
          << "client " << c << " query " << q;
    }
  }

  // Despite 4 clients racing on the same lazily-trained models, every
  // candidate path was trained exactly once (the once-latch contract), and
  // exactly the same paths as in the sequential run.
  EXPECT_EQ((*conc_db)->models_trained(), baseline_trained);

  // And the trained models are the ones sequential training produced.
  auto seq_cands = (*seq_db)->CandidatesFor("table_b");
  auto conc_cands = (*conc_db)->CandidatesFor("table_b");
  ASSERT_TRUE(seq_cands.ok());
  ASSERT_TRUE(conc_cands.ok());
  ASSERT_EQ(seq_cands->size(), conc_cands->size());
  for (size_t i = 0; i < seq_cands->size(); ++i) {
    EXPECT_EQ((*seq_cands)[i].path, (*conc_cands)[i].path);
    EXPECT_EQ((*seq_cands)[i].model->test_loss(),
              (*conc_cands)[i].model->test_loss())
        << "candidate " << i;
  }
}

TEST(InferenceScratchPoolTest, LeasesRecycleArenas) {
  InferenceScratchPool pool;
  EXPECT_EQ(pool.idle(), 0u);
  InferenceScratch* arena_a = nullptr;
  InferenceScratch* arena_b = nullptr;
  {
    InferenceScratchPool::Lease a = pool.Acquire();
    InferenceScratchPool::Lease b = pool.Acquire();
    arena_a = a.get();
    arena_b = b.get();
    ASSERT_NE(arena_a, nullptr);
    ASSERT_NE(arena_b, nullptr);
    EXPECT_NE(arena_a, arena_b) << "concurrent leases must not share arenas";
    EXPECT_EQ(pool.idle(), 0u) << "leased arenas are not idle";
  }
  // Both arenas returned to the freelist, and a new lease reuses one of
  // them instead of allocating a third.
  EXPECT_EQ(pool.idle(), 2u);
  InferenceScratchPool::Lease reused = pool.Acquire();
  EXPECT_EQ(pool.idle(), 1u);
  EXPECT_TRUE(reused.get() == arena_a || reused.get() == arena_b);
}

// With the per-model inference mutex gone (scratch-arena reentrancy, see
// src/nn/inference_scratch.h), concurrent forward passes over ONE hot model
// must still be bit-identical to sequential execution. This hammer removes
// every other source of concurrency from the picture: models are fully
// trained BEFORE the clients start (no training races possible) and the
// completion cache is disabled, so all 4 clients drive truly simultaneous
// SampleRange/PredictDistribution passes through the same PathModel.
TEST(DbConcurrencyTest, SingleHotPathHammerBitIdenticalWithoutMutex) {
  Database incomplete = MakeIncompleteSynthetic(/*seed=*/91);
  SchemaAnnotation annotation;
  annotation.MarkIncomplete("table_b");
  EngineConfig config = FastDbConfig();
  config.enable_cache = false;  // every execution re-runs model inference

  // The hot query joins through the completion path, so each execution runs
  // tuple-factor prediction + attribute synthesis on the shared model.
  const std::string sql =
      "SELECT COUNT(*) FROM table_a NATURAL JOIN table_b GROUP BY b;";

  ThreadPool::SetGlobalWidth(4);
  auto db = Db::Open(&incomplete, annotation, DbOptions().WithEngine(config));
  ASSERT_TRUE(db.ok()) << db.status();
  Session warmup = (*db)->CreateSession();

  // Train everything up front on the main thread; the hammer phase must not
  // train anything.
  auto baseline = warmup.Execute(sql);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  const size_t trained_before = (*db)->models_trained();
  EXPECT_GT(trained_before, 0u);

  constexpr int kClients = 4;
  constexpr int kItersPerClient = 6;
  std::vector<std::vector<ResultSet>> per_client(kClients);
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        Session session = (*db)->CreateSession();
        for (int i = 0; i < kItersPerClient; ++i) {
          auto r = session.Execute(sql);
          ASSERT_TRUE(r.ok()) << "client " << c << ": " << r.status();
          per_client[c].push_back(*r);
        }
      });
    }
    for (auto& t : clients) t.join();
  }
  ThreadPool::SetGlobalWidth(0);

  EXPECT_EQ((*db)->models_trained(), trained_before)
      << "the hammer phase must not train";
  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(per_client[c].size(), static_cast<size_t>(kItersPerClient));
    for (int i = 0; i < kItersPerClient; ++i) {
      EXPECT_EQ(per_client[c][i], *baseline)
          << "client " << c << " iteration " << i;
    }
  }
}

// An UNCANCELLED run under full QueryOptions (cancellable token, far
// deadline, generous budget) must be bit-identical to a run with no options
// at all: the cooperative checks may not touch the sampling RNG.
TEST(DbConcurrencyTest, UncancelledOptionsRunBitIdenticalToPlainRun) {
  Database incomplete = MakeIncompleteSynthetic(/*seed=*/95);
  SchemaAnnotation annotation;
  annotation.MarkIncomplete("table_b");
  EngineConfig config = FastDbConfig();
  config.enable_cache = false;  // force model inference on every execution

  const std::string sql =
      "SELECT COUNT(*) FROM table_a NATURAL JOIN table_b GROUP BY b;";

  auto plain_db = Db::Open(&incomplete, annotation, DbOptions().WithEngine(config));
  ASSERT_TRUE(plain_db.ok()) << plain_db.status();
  auto plain = (*plain_db)->CreateSession().Execute(sql);
  ASSERT_TRUE(plain.ok()) << plain.status();

  auto opt_db = Db::Open(&incomplete, annotation, DbOptions().WithEngine(config));
  ASSERT_TRUE(opt_db.ok()) << opt_db.status();
  QueryOptions options;
  options.cancel = CancellationToken::Cancellable();
  options.WithTimeout(std::chrono::hours(1));
  options.max_completed_rows = 1u << 30;
  options.batch_rows = 3;
  size_t checkpoints = 0;
  options.progress = [&checkpoints](const ExecStats&) { ++checkpoints; };
  auto with_options = (*opt_db)->CreateSession().Execute(sql, options);
  ASSERT_TRUE(with_options.ok()) << with_options.status();

  EXPECT_EQ(*with_options, *plain);
  EXPECT_GT(checkpoints, 0u) << "the cooperative checks did run";
}

// The cancel hammer (run repeatedly under TSan by CI): 4 client threads
// fire queries through ONE pre-trained Db while racing RequestCancel()
// against the execution from a separate canceller thread per query. Every
// outcome must be either the bit-identical answer or a clean
// Status::Cancelled — and nothing may leak or race (ASan/TSan jobs).
TEST(DbConcurrencyTest, CancelHammerYieldsAnswerOrCleanCancellation) {
  Database incomplete = MakeIncompleteSynthetic(/*seed=*/93);
  SchemaAnnotation annotation;
  annotation.MarkIncomplete("table_b");
  EngineConfig config = FastDbConfig();
  config.enable_cache = false;  // every execution re-runs model inference

  const std::string sql =
      "SELECT COUNT(*) FROM table_a NATURAL JOIN table_b GROUP BY b;";

  ThreadPool::SetGlobalWidth(4);
  auto db = Db::Open(&incomplete, annotation, DbOptions().WithEngine(config));
  ASSERT_TRUE(db.ok()) << db.status();

  // Pre-train on the main thread so the hammer only exercises inference.
  auto baseline = (*db)->CreateSession().Execute(sql);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  constexpr int kClients = 4;
  constexpr int kItersPerClient = 8;
  std::atomic<size_t> answered{0};
  std::atomic<size_t> cancelled{0};
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        Session session = (*db)->CreateSession();
        for (int i = 0; i < kItersPerClient; ++i) {
          QueryOptions options;
          options.cancel = CancellationToken::Cancellable();
          // Race a cancel against the execution; stagger the delay so some
          // queries die early, some mid-flight, some not at all.
          std::thread canceller([token = options.cancel, c, i] {
            std::this_thread::sleep_for(
                std::chrono::microseconds(50 * ((c + i) % 5)));
            token.RequestCancel();
          });
          auto r = session.Execute(sql, options);
          canceller.join();
          if (r.ok()) {
            EXPECT_EQ(*r, *baseline) << "client " << c << " iteration " << i;
            answered.fetch_add(1);
          } else {
            EXPECT_TRUE(r.status().IsCancelled())
                << "client " << c << " iteration " << i << ": "
                << r.status();
            cancelled.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : clients) t.join();
  }
  ThreadPool::SetGlobalWidth(0);

  EXPECT_EQ(answered.load() + cancelled.load(),
            static_cast<size_t>(kClients * kItersPerClient));
  // The Db counted every hammer query exactly once, one way or the other.
  const Db::Stats stats = (*db)->stats();
  EXPECT_EQ(stats.queries_ok + stats.queries_cancelled,
            static_cast<uint64_t>(kClients * kItersPerClient) + 1 /*baseline*/);
  EXPECT_EQ(stats.queries_deadline_exceeded, 0u);
  EXPECT_EQ(stats.queries_failed, 0u);
}

// ---- Cross-session batching (SampleBatcher) ---------------------------------

MadeConfig BatcherModelConfig() {
  MadeConfig config;
  // A wide attribute forces multi-shard row blocks (see TrainAndSample).
  config.vocab_sizes = {9, 300, 17, 40, 5};
  config.embed_dim = 6;
  config.hidden_dim = 40;
  config.num_layers = 2;
  return config;
}

/// Deterministic evidence: every column filled with valid codes, so any
/// [first_attr, end_attr) window has conditioning evidence to its left.
IntMatrix EvidenceCodes(const MadeConfig& config, size_t rows, uint64_t seed) {
  Rng rng(seed);
  IntMatrix codes(rows, config.vocab_sizes.size(), 0);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t a = 0; a < config.vocab_sizes.size(); ++a) {
      codes.at(r, a) = static_cast<int32_t>(
          rng.NextUint64(static_cast<uint64_t>(config.vocab_sizes[a])));
    }
  }
  return codes;
}

void ExpectSameCodes(const IntMatrix& got, const IntMatrix& want,
                     const std::string& tag) {
  ASSERT_EQ(got.rows(), want.rows()) << tag;
  ASSERT_EQ(got.cols(), want.cols()) << tag;
  for (size_t r = 0; r < got.rows(); ++r) {
    for (size_t a = 0; a < got.cols(); ++a) {
      ASSERT_EQ(got.at(r, a), want.at(r, a))
          << tag << " row " << r << " attr " << a;
    }
  }
}

void ExpectSameMatrix(const Matrix& got, const Matrix& want,
                      const std::string& tag) {
  ASSERT_EQ(got.rows(), want.rows()) << tag;
  ASSERT_EQ(got.cols(), want.cols()) << tag;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got.data()[i], want.data()[i]) << tag << " element " << i;
  }
}

struct BatchSampleReq {
  size_t rows;
  size_t first_attr;
  size_t end_attr;
  int record_attr;
  uint64_t seed;
};

// The tentpole determinism contract, pinned over every forced coalescing
// pattern the test hooks can produce: requests with DIFFERENT row counts,
// attribute windows, and record attributes must come back bit-identical to
// their solo, unbatched execution — and leave the caller's rng stream in the
// identical state — whether they run as a batch of 1 (max_rows floor), in
// pairs, or all stacked into one maximal minibatch.
TEST(SampleBatcherTest, ForcedCoalescingPatternsBitIdentical) {
  ThreadPool::SetGlobalWidth(4);
  const MadeConfig config = BatcherModelConfig();
  Rng model_rng(201);
  MadeModel made(config, model_rng);
  made.FinalizeForInference();

  const std::vector<BatchSampleReq> reqs = {
      {40, 0, 5, 3, 501},
      {64, 1, 5, -1, 502},
      {96, 2, 4, 3, 503},
      {160, 0, 3, 1, 504},
  };

  // Solo unbatched baselines, one per request, each from its own rng.
  std::vector<IntMatrix> want_codes(reqs.size());
  std::vector<Matrix> want_recorded(reqs.size());
  std::vector<double> want_next(reqs.size());
  for (size_t q = 0; q < reqs.size(); ++q) {
    const BatchSampleReq& s = reqs[q];
    IntMatrix codes = EvidenceCodes(config, s.rows, s.seed + 1000);
    Rng rng(s.seed);
    Matrix recorded;
    MadeScratch scratch;
    made.SampleRange(&codes, Matrix(), s.first_attr, s.end_attr, rng,
                     s.record_attr, &recorded, &scratch);
    want_codes[q] = codes;
    want_recorded[q] = recorded;
    want_next[q] = rng.NextDouble();
  }

  InferenceScratchPool pool;
  SampleBatcher batcher(&made, &pool);

  auto run_batched = [&](size_t q, const std::string& tag,
                         ExecStats* stats) {
    const BatchSampleReq& s = reqs[q];
    IntMatrix codes = EvidenceCodes(config, s.rows, s.seed + 1000);
    Rng rng(s.seed);
    Matrix recorded;
    QueryOptions options;
    ExecContext ctx(&options, stats);
    Status st = batcher.SampleRange(&codes, Matrix(), s.first_attr,
                                    s.end_attr, rng, s.record_attr, &recorded,
                                    stats != nullptr ? &ctx : nullptr);
    ASSERT_TRUE(st.ok()) << tag << ": " << st;
    ExpectSameCodes(codes, want_codes[q], tag);
    ExpectSameMatrix(recorded, want_recorded[q], tag);
    // The pre-drawn window left the caller's stream exactly where the
    // unbatched loop would have.
    EXPECT_EQ(rng.NextDouble(), want_next[q]) << tag << " rng stream";
  };

  // Pattern 1: forced batch size 1 — the row cap floors at one request.
  SampleBatcher::Config cfg;
  cfg.enabled = true;
  cfg.wait_us = 1000000;
  cfg.max_rows = 1;
  batcher.Configure(cfg);
  for (size_t q = 0; q < reqs.size(); ++q) {
    run_batched(q, "batch-of-1 q" + std::to_string(q), nullptr);
  }
  EXPECT_EQ(pool.total_leases(), reqs.size());

  // Pattern 2: forced pairs — a leader collects until 2 requests queued.
  cfg.max_rows = 4096;
  batcher.Configure(cfg);
  batcher.set_test_min_requests(2);
  for (size_t pair = 0; pair < reqs.size(); pair += 2) {
    std::thread a([&, pair] {
      run_batched(pair, "pair q" + std::to_string(pair), nullptr);
    });
    std::thread b([&, pair] {
      run_batched(pair + 1, "pair q" + std::to_string(pair + 1), nullptr);
    });
    a.join();
    b.join();
  }
  EXPECT_EQ(pool.total_leases(), reqs.size() + 2);

  // Pattern 3: maximal batch — all four requests stacked into one pass,
  // each carrying its own stats so the coalescing counters are pinned too.
  batcher.set_test_min_requests(reqs.size());
  std::vector<ExecStats> stats(reqs.size());
  {
    std::vector<std::thread> clients;
    for (size_t q = 0; q < reqs.size(); ++q) {
      clients.emplace_back([&, q] {
        run_batched(q, "max-batch q" + std::to_string(q), &stats[q]);
      });
    }
    for (auto& t : clients) t.join();
  }
  EXPECT_EQ(pool.total_leases(), reqs.size() + 3);

  size_t total_rows = 0;
  for (const BatchSampleReq& s : reqs) total_rows += s.rows;
  double waited = 0.0;
  for (size_t q = 0; q < reqs.size(); ++q) {
    // The shared batch arena is charged to every rider, so arenas_leased is
    // independent of how requests coalesced.
    EXPECT_EQ(stats[q].arenas_leased, 1u) << "q" << q;
    EXPECT_EQ(stats[q].batches_joined, 1u) << "q" << q;
    EXPECT_EQ(stats[q].coalesced_rows, total_rows) << "q" << q;
    EXPECT_GE(stats[q].batch_wait_seconds, 0.0) << "q" << q;
    waited += stats[q].batch_wait_seconds;
  }
  EXPECT_GT(waited, 0.0) << "somebody waited for batch-mates";

  // Only one leader executes at a time, so the whole test needed exactly
  // one arena — recycled across every batch, never dropped.
  EXPECT_EQ(pool.idle(), 1u);
  EXPECT_EQ(pool.dropped(), 0u);
  ThreadPool::SetGlobalWidth(0);
}

// Coalesced PredictDistribution — including duplicate attrs across requests
// and a sample request riding in the SAME batch — must be bit-identical to
// solo execution, with per-kind counter accounting.
TEST(SampleBatcherTest, CoalescedPredictAndMixedKindsBitIdentical) {
  ThreadPool::SetGlobalWidth(4);
  const MadeConfig config = BatcherModelConfig();
  Rng model_rng(202);
  MadeModel made(config, model_rng);
  made.FinalizeForInference();

  struct PredictReq {
    size_t rows;
    size_t attr;
    uint64_t seed;
  };
  const std::vector<PredictReq> preds = {{32, 1, 601}, {48, 3, 602},
                                         {16, 1, 603}};
  std::vector<IntMatrix> pred_codes(preds.size());
  std::vector<Matrix> want_probs(preds.size());
  for (size_t q = 0; q < preds.size(); ++q) {
    pred_codes[q] = EvidenceCodes(config, preds[q].rows, preds[q].seed);
    MadeScratch scratch;
    made.PredictDistribution(pred_codes[q], Matrix(), preds[q].attr,
                             &want_probs[q], &scratch);
  }
  const BatchSampleReq samp = {24, 0, 5, 2, 604};
  IntMatrix want_samp_codes = EvidenceCodes(config, samp.rows, samp.seed + 1000);
  Matrix want_samp_recorded;
  {
    Rng rng(samp.seed);
    MadeScratch scratch;
    made.SampleRange(&want_samp_codes, Matrix(), samp.first_attr,
                     samp.end_attr, rng, samp.record_attr,
                     &want_samp_recorded, &scratch);
  }

  InferenceScratchPool pool;
  SampleBatcher batcher(&made, &pool);
  SampleBatcher::Config cfg;
  cfg.enabled = true;
  cfg.wait_us = 1000000;
  batcher.Configure(cfg);
  batcher.set_test_min_requests(preds.size() + 1);

  std::vector<ExecStats> stats(preds.size() + 1);
  {
    std::vector<std::thread> clients;
    for (size_t q = 0; q < preds.size(); ++q) {
      clients.emplace_back([&, q] {
        Matrix probs;
        QueryOptions options;
        ExecContext ctx(&options, &stats[q]);
        Status st = batcher.PredictDistribution(pred_codes[q], Matrix(),
                                                preds[q].attr, &probs, &ctx);
        ASSERT_TRUE(st.ok()) << "predict q" << q << ": " << st;
        ExpectSameMatrix(probs, want_probs[q],
                         "predict q" + std::to_string(q));
      });
    }
    clients.emplace_back([&] {
      IntMatrix codes = EvidenceCodes(config, samp.rows, samp.seed + 1000);
      Rng rng(samp.seed);
      Matrix recorded;
      QueryOptions options;
      ExecContext ctx(&options, &stats.back());
      Status st = batcher.SampleRange(&codes, Matrix(), samp.first_attr,
                                      samp.end_attr, rng, samp.record_attr,
                                      &recorded, &ctx);
      ASSERT_TRUE(st.ok()) << "mixed sample: " << st;
      ExpectSameCodes(codes, want_samp_codes, "mixed sample");
      ExpectSameMatrix(recorded, want_samp_recorded, "mixed sample");
    });
    for (auto& t : clients) t.join();
  }

  const size_t predict_rows = 32 + 48 + 16;
  for (size_t q = 0; q < preds.size(); ++q) {
    EXPECT_EQ(stats[q].arenas_leased, 1u) << "predict q" << q;
    EXPECT_EQ(stats[q].batches_joined, 1u) << "predict q" << q;
    EXPECT_EQ(stats[q].coalesced_rows, predict_rows) << "predict q" << q;
  }
  // The lone sample request shared the arena but had no same-kind mate.
  EXPECT_EQ(stats.back().arenas_leased, 1u);
  EXPECT_EQ(stats.back().batches_joined, 0u);
  EXPECT_EQ(stats.back().coalesced_rows, static_cast<uint64_t>(samp.rows));
  EXPECT_EQ(pool.total_leases(), 1u);
  ThreadPool::SetGlobalWidth(0);
}

// Cancellation × coalescing: a request that died while queued is dropped at
// claim time with its own terminal status, its outputs untouched, WITHOUT
// poisoning batch-mates — and without leasing an arena on its behalf.
TEST(SampleBatcherTest, DeadRequestsDroppedWithoutPoisoningBatchMates) {
  ThreadPool::SetGlobalWidth(4);
  const MadeConfig config = BatcherModelConfig();
  Rng model_rng(203);
  MadeModel made(config, model_rng);
  made.FinalizeForInference();

  const BatchSampleReq live = {64, 0, 5, 3, 701};
  IntMatrix want_codes = EvidenceCodes(config, live.rows, live.seed + 1000);
  Matrix want_recorded;
  {
    Rng rng(live.seed);
    MadeScratch scratch;
    made.SampleRange(&want_codes, Matrix(), live.first_attr, live.end_attr,
                     rng, live.record_attr, &want_recorded, &scratch);
  }

  InferenceScratchPool pool;
  SampleBatcher batcher(&made, &pool);
  SampleBatcher::Config cfg;
  cfg.enabled = true;
  cfg.wait_us = 1000000;
  batcher.Configure(cfg);
  batcher.set_test_min_requests(2);

  auto run_live_mate = [&](const std::string& tag) {
    IntMatrix codes = EvidenceCodes(config, live.rows, live.seed + 1000);
    Rng rng(live.seed);
    Matrix recorded;
    Status st = batcher.SampleRange(&codes, Matrix(), live.first_attr,
                                    live.end_attr, rng, live.record_attr,
                                    &recorded, nullptr);
    ASSERT_TRUE(st.ok()) << tag << ": " << st;
    ExpectSameCodes(codes, want_codes, tag);
    ExpectSameMatrix(recorded, want_recorded, tag);
  };

  // Round 1: a pre-cancelled request coalesces with a healthy one.
  QueryOptions cancelled_options;
  cancelled_options.cancel = CancellationToken::Cancellable();
  cancelled_options.cancel.RequestCancel();
  ExecStats cancelled_stats;
  {
    std::thread dead([&] {
      ExecContext ctx(&cancelled_options, &cancelled_stats);
      IntMatrix codes = EvidenceCodes(config, 32, 9001);
      const IntMatrix before = codes;
      Rng rng(702);
      Matrix recorded;
      Status st = batcher.SampleRange(&codes, Matrix(), 0, 5, rng, 3,
                                      &recorded, &ctx);
      EXPECT_TRUE(st.IsCancelled()) << st;
      // Outputs untouched on a non-OK return.
      ExpectSameCodes(codes, before, "cancelled outputs");
      EXPECT_EQ(recorded.size(), 0u);
    });
    std::thread mate([&] { run_live_mate("mate of cancelled"); });
    dead.join();
    mate.join();
  }
  // The dead request never leased an arena and never joined a pass.
  EXPECT_EQ(cancelled_stats.arenas_leased, 0u);
  EXPECT_EQ(cancelled_stats.batches_joined, 0u);
  EXPECT_EQ(cancelled_stats.coalesced_rows, 0u);
  EXPECT_EQ(pool.total_leases(), 1u);

  // Round 2: same story with an already-expired deadline.
  QueryOptions expired_options;
  expired_options.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  ExecStats expired_stats;
  {
    std::thread dead([&] {
      ExecContext ctx(&expired_options, &expired_stats);
      IntMatrix codes = EvidenceCodes(config, 32, 9002);
      const IntMatrix before = codes;
      Rng rng(703);
      Matrix recorded;
      Status st = batcher.SampleRange(&codes, Matrix(), 0, 5, rng, 3,
                                      &recorded, &ctx);
      EXPECT_TRUE(st.IsDeadlineExceeded()) << st;
      ExpectSameCodes(codes, before, "expired outputs");
      EXPECT_EQ(recorded.size(), 0u);
    });
    std::thread mate([&] { run_live_mate("mate of expired"); });
    dead.join();
    mate.join();
  }
  EXPECT_EQ(expired_stats.arenas_leased, 0u);
  EXPECT_EQ(pool.total_leases(), 2u);
  EXPECT_EQ(pool.dropped(), 0u);
  EXPECT_EQ(pool.idle(), 1u);
  ThreadPool::SetGlobalWidth(0);
}

// Db-level determinism: 8 clients hammering ONE hot model with batching
// ENABLED (and a window wide enough to actually coalesce) must produce the
// bit-identical answer of a batching-OFF Db — batched == unbatched ==
// sequential, end to end through the query surface.
TEST(DbConcurrencyTest, BatchedHotPathHammerBitIdenticalToUnbatched) {
  Database incomplete = MakeIncompleteSynthetic(/*seed=*/97);
  SchemaAnnotation annotation;
  annotation.MarkIncomplete("table_b");
  EngineConfig config = FastDbConfig();
  config.enable_cache = false;  // every execution re-runs model inference

  const std::string sql =
      "SELECT COUNT(*) FROM table_a NATURAL JOIN table_b GROUP BY b;";

  ThreadPool::SetGlobalWidth(4);

  // Baseline: batching off (the default), executed sequentially.
  auto off_db = Db::Open(&incomplete, annotation, DbOptions().WithEngine(config));
  ASSERT_TRUE(off_db.ok()) << off_db.status();
  auto baseline = (*off_db)->CreateSession().Execute(sql);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  EngineConfig on_config = config;
  on_config.model.batching_enabled = true;
  on_config.model.batch_wait_us = 2000;  // wide window: force coalescing
  auto db = Db::Open(&incomplete, annotation, DbOptions().WithEngine(on_config));
  ASSERT_TRUE(db.ok()) << db.status();

  // Train up front; a single-session batched run already must match.
  Session warmup = (*db)->CreateSession();
  auto warm = warmup.Execute(sql);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_EQ(*warm, *baseline) << "batch-of-one must be bit-identical";
  const size_t trained_before = (*db)->models_trained();

  constexpr int kClients = 8;
  constexpr int kItersPerClient = 4;
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        Session session = (*db)->CreateSession();
        for (int i = 0; i < kItersPerClient; ++i) {
          auto r = session.Execute(sql);
          ASSERT_TRUE(r.ok()) << "client " << c << ": " << r.status();
          EXPECT_EQ(*r, *baseline)
              << "client " << c << " iteration " << i;
        }
      });
    }
    for (auto& t : clients) t.join();
  }
  ThreadPool::SetGlobalWidth(0);

  EXPECT_EQ((*db)->models_trained(), trained_before)
      << "the hammer phase must not train";
  // Every batched execution flowed through the coalescing layer.
  const Db::Stats stats = (*db)->stats();
  EXPECT_GT(stats.totals.coalesced_rows, 0u);
  EXPECT_GT(stats.totals.arenas_leased, 0u);
  EXPECT_GE(stats.totals.batch_wait_seconds, 0.0);
}

// The cancel hammer with batching ON: cancellation racing against queued
// and in-flight coalesced work must still yield either the bit-identical
// answer or a clean Status::Cancelled — batch-mates of a dying request
// included. (CI runs this binary repeatedly under TSan.)
TEST(DbConcurrencyTest, BatchedCancelHammerYieldsAnswerOrCleanCancellation) {
  Database incomplete = MakeIncompleteSynthetic(/*seed=*/99);
  SchemaAnnotation annotation;
  annotation.MarkIncomplete("table_b");
  EngineConfig config = FastDbConfig();
  config.enable_cache = false;  // every execution re-runs model inference
  config.model.batching_enabled = true;
  config.model.batch_wait_us = 500;

  const std::string sql =
      "SELECT COUNT(*) FROM table_a NATURAL JOIN table_b GROUP BY b;";

  ThreadPool::SetGlobalWidth(4);
  auto db = Db::Open(&incomplete, annotation, DbOptions().WithEngine(config));
  ASSERT_TRUE(db.ok()) << db.status();

  // Pre-train on the main thread so the hammer only exercises inference.
  auto baseline = (*db)->CreateSession().Execute(sql);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  constexpr int kClients = 4;
  constexpr int kItersPerClient = 6;
  std::atomic<size_t> answered{0};
  std::atomic<size_t> cancelled{0};
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        Session session = (*db)->CreateSession();
        for (int i = 0; i < kItersPerClient; ++i) {
          QueryOptions options;
          options.cancel = CancellationToken::Cancellable();
          std::thread canceller([token = options.cancel, c, i] {
            std::this_thread::sleep_for(
                std::chrono::microseconds(70 * ((c + i) % 5)));
            token.RequestCancel();
          });
          auto r = session.Execute(sql, options);
          canceller.join();
          if (r.ok()) {
            EXPECT_EQ(*r, *baseline) << "client " << c << " iteration " << i;
            answered.fetch_add(1);
          } else {
            EXPECT_TRUE(r.status().IsCancelled())
                << "client " << c << " iteration " << i << ": "
                << r.status();
            cancelled.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : clients) t.join();
  }
  ThreadPool::SetGlobalWidth(0);

  EXPECT_EQ(answered.load() + cancelled.load(),
            static_cast<size_t>(kClients * kItersPerClient));
  const Db::Stats stats = (*db)->stats();
  EXPECT_EQ(stats.queries_ok + stats.queries_cancelled,
            static_cast<uint64_t>(kClients * kItersPerClient) + 1 /*baseline*/);
  EXPECT_EQ(stats.queries_deadline_exceeded, 0u);
  EXPECT_EQ(stats.queries_failed, 0u);
}

}  // namespace
}  // namespace restore
