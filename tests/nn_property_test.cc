// Parameterized property tests for the NN substrate: training convergence
// across conditional structures, optimizer option sweeps, deep-sets shapes.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/adam.h"
#include "nn/deep_sets.h"
#include "nn/made.h"

namespace restore {
namespace {

/// MADE must learn b = (a * k) % Vb for several (Va, Vb, k) structures.
struct DependencyCase {
  int va;
  int vb;
  int k;
};

class MadeLearnsDependency : public ::testing::TestWithParam<DependencyCase> {
};

TEST_P(MadeLearnsDependency, ConditionalConcentratesOnTarget) {
  const DependencyCase& c = GetParam();
  Rng rng(42 + static_cast<uint64_t>(c.va * 100 + c.vb * 10 + c.k));
  MadeConfig config;
  config.vocab_sizes = {c.va, c.vb};
  config.embed_dim = 6;
  config.hidden_dim = 32;
  config.num_layers = 2;
  MadeModel made(config, rng);
  std::vector<Param*> params;
  made.CollectParams(&params);
  AdamOptimizer adam(params, AdamOptions{.learning_rate = 5e-3f});

  IntMatrix batch(64, 2);
  for (int step = 0; step < 400; ++step) {
    for (size_t r = 0; r < 64; ++r) {
      const int32_t a =
          static_cast<int32_t>(rng.NextUint64(static_cast<uint64_t>(c.va)));
      batch.at(r, 0) = a;
      batch.at(r, 1) = (a * c.k) % c.vb;
    }
    Matrix logits;
    made.Forward(batch, Matrix(), &logits);
    Matrix dlogits;
    made.NllLoss(logits, batch, 0, &dlogits);
    made.Backward(dlogits, nullptr);
    adam.Step();
  }
  IntMatrix query(static_cast<size_t>(c.va), 2, 0);
  for (size_t r = 0; r < query.rows(); ++r) {
    query.at(r, 0) = static_cast<int32_t>(r);
  }
  Matrix probs;
  made.PredictDistribution(query, Matrix(), 1, &probs);
  for (size_t r = 0; r < query.rows(); ++r) {
    const size_t target =
        static_cast<size_t>((static_cast<int>(r) * c.k) % c.vb);
    EXPECT_GT(probs.at(r, target), 0.7f)
        << "a=" << r << " (va=" << c.va << " vb=" << c.vb << " k=" << c.k
        << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Structures, MadeLearnsDependency,
                         ::testing::Values(DependencyCase{4, 2, 1},
                                           DependencyCase{6, 3, 2},
                                           DependencyCase{8, 8, 3},
                                           DependencyCase{12, 5, 7}));

/// The unconditional marginal of the first attribute must match the training
/// frequency (the first attribute sees no inputs, only the bias + context).
TEST(MadeMarginals, FirstAttributeLearnsMarginal) {
  Rng rng(77);
  MadeConfig config;
  config.vocab_sizes = {3, 2};
  config.embed_dim = 4;
  config.hidden_dim = 16;
  config.num_layers = 2;
  MadeModel made(config, rng);
  std::vector<Param*> params;
  made.CollectParams(&params);
  AdamOptimizer adam(params, AdamOptions{.learning_rate = 5e-3f});
  // a ~ {60%, 30%, 10%}.
  IntMatrix batch(100, 2);
  for (int step = 0; step < 300; ++step) {
    for (size_t r = 0; r < 100; ++r) {
      const double u = rng.NextDouble();
      batch.at(r, 0) = u < 0.6 ? 0 : (u < 0.9 ? 1 : 2);
      batch.at(r, 1) = static_cast<int32_t>(rng.NextUint64(2));
    }
    Matrix logits;
    made.Forward(batch, Matrix(), &logits);
    Matrix dlogits;
    made.NllLoss(logits, batch, 0, &dlogits);
    made.Backward(dlogits, nullptr);
    adam.Step();
  }
  IntMatrix query(1, 2, 0);
  Matrix probs;
  made.PredictDistribution(query, Matrix(), 0, &probs);
  EXPECT_NEAR(probs.at(0, 0), 0.6f, 0.07f);
  EXPECT_NEAR(probs.at(0, 1), 0.3f, 0.07f);
  EXPECT_NEAR(probs.at(0, 2), 0.1f, 0.05f);
}

/// Adam with weight decay shrinks unused parameters.
TEST(AdamOptions, WeightDecayShrinksParameters) {
  Param w;
  w.Init(1, 1);
  w.value.at(0, 0) = 5.0f;
  AdamOptions opts;
  opts.learning_rate = 0.05f;
  opts.weight_decay = 0.5f;
  AdamOptimizer adam({&w}, opts);
  for (int i = 0; i < 200; ++i) {
    // No data gradient; only decay acts.
    adam.Step();
  }
  EXPECT_LT(std::abs(w.value.at(0, 0)), 0.5f);
}

TEST(AdamOptions, StepCountAdvances) {
  Param w;
  w.Init(2, 2);
  AdamOptimizer adam({&w});
  EXPECT_EQ(adam.step_count(), 0);
  adam.Step();
  adam.Step();
  EXPECT_EQ(adam.step_count(), 2);
}

/// Deep-sets with two child tables and interleaved empty sets.
TEST(DeepSetsShapes, TwoTablesWithEmptySets) {
  Rng rng(88);
  DeepSetsEncoder enc(
      {DeepSetsEncoder::TableSpec{{4}}, DeepSetsEncoder::TableSpec{{3, 5}}},
      4, 8, 6, rng);
  ChildBatch t0;
  t0.codes = IntMatrix(2, 1);
  t0.codes.at(0, 0) = 1;
  t0.codes.at(1, 0) = 3;
  t0.offsets = {0, 2, 2, 2};  // row0: 2 children, rows 1-2: none
  ChildBatch t1;
  t1.codes = IntMatrix(1, 2);
  t1.codes.at(0, 0) = 2;
  t1.codes.at(0, 1) = 4;
  t1.offsets = {0, 0, 1, 1};  // only row1 has a child
  Matrix ctx;
  enc.Forward({t0, t1}, &ctx);
  EXPECT_EQ(ctx.rows(), 3u);
  EXPECT_EQ(ctx.cols(), 6u);
  // Row 2 has no children in either table: pre-activation is the pure bias,
  // so the context must equal relu(rho bias) for an all-zero pooled input —
  // the same for every empty row.
  ChildBatch e0;
  e0.codes = IntMatrix(0, 1);
  e0.offsets = {0, 0};
  ChildBatch e1;
  e1.codes = IntMatrix(0, 2);
  e1.offsets = {0, 0};
  Matrix empty_ctx;
  enc.Forward({e0, e1}, &empty_ctx);
  for (size_t c = 0; c < 6; ++c) {
    EXPECT_FLOAT_EQ(ctx.at(2, c), empty_ctx.at(0, c));
  }
}

/// Sampling from an untrained model still produces valid codes.
class SamplingValidity : public ::testing::TestWithParam<int> {};

TEST_P(SamplingValidity, CodesInRange) {
  const int n_attrs = GetParam();
  Rng rng(99 + static_cast<uint64_t>(n_attrs));
  MadeConfig config;
  for (int i = 0; i < n_attrs; ++i) config.vocab_sizes.push_back(3 + i);
  config.embed_dim = 4;
  config.hidden_dim = 24;
  config.num_layers = 2;
  MadeModel made(config, rng);
  IntMatrix codes(32, static_cast<size_t>(n_attrs), 0);
  made.SampleConditional(&codes, Matrix(), 0, rng);
  for (size_t r = 0; r < codes.rows(); ++r) {
    for (int a = 0; a < n_attrs; ++a) {
      EXPECT_GE(codes.at(r, static_cast<size_t>(a)), 0);
      EXPECT_LT(codes.at(r, static_cast<size_t>(a)),
                config.vocab_sizes[static_cast<size_t>(a)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AttrCounts, SamplingValidity,
                         ::testing::Values(1, 2, 4, 7));

}  // namespace
}  // namespace restore
