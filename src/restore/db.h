#ifndef RESTORE_RESTORE_DB_H_
#define RESTORE_RESTORE_DB_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/future.h"
#include "common/once_latch.h"
#include "common/result.h"
#include "exec/aggregate.h"
#include "exec/exec_control.h"
#include "exec/prepared.h"
#include "exec/query.h"
#include "exec/result_set.h"
#include "restore/annotation.h"
#include "restore/cache.h"
#include "restore/incompleteness_join.h"
#include "restore/path_model.h"
#include "restore/path_selection.h"
#include "stats/stat_test.h"
#include "storage/database.h"

namespace restore {

/// Engine-level configuration.
/// If you add a field that changes what models are trained or how, include
/// it in EngineConfigFingerprint — the fingerprint guards persisted models
/// against being loaded under a different configuration.
struct EngineConfig {
  PathModelConfig model;
  SelectionStrategy selection = SelectionStrategy::kBestTestLoss;
  /// Maximum completion-path length explored during candidate enumeration.
  size_t max_path_len = 5;
  /// Maximum candidate paths trained per incomplete table.
  size_t max_candidates = 4;
  /// Reuse completed joins across queries (Section 4.5).
  bool enable_cache = true;
  /// LRU byte budget of the completion cache; 0 = unbounded.
  size_t cache_budget_bytes = 0;
  uint64_t seed = 1234;
};

/// When and how the Db retrains models that fell behind ingested data.
struct RefreshPolicy {
  enum class Mode {
    /// Retrain the model from scratch on the current data (full epochs).
    kRetrain,
    /// Warm-start from the previous generation's parameters and run only
    /// `finetune_epochs` refinement epochs. Falls back to a cold start when
    /// the ingested data changed the model architecture (new categorical
    /// values); see PathModel::Train.
    kFinetune,
  };

  /// What decides that a model fell behind its data.
  enum class Trigger {
    /// Row counting: refresh once staleness_rows_threshold rows were
    /// ingested into the path's tables. Cheap, but a crude proxy — a bulk
    /// load drawn from the SAME distribution retrains models that are still
    /// perfectly calibrated.
    kRowCount,
    /// Measured distribution drift: each trained generation snapshots
    /// per-column reference summaries (bounded histograms, see
    /// stats/histogram.h) and a refresh fires only when the live snapshot
    /// diverges from them past drift_ks_threshold / drift_psi_threshold.
    /// A no-drift bulk append (e.g. duplicated rows) never retrains.
    kDrift,
  };

  /// A model whose path accumulated at least this many ingested rows since
  /// it was (re)trained is scheduled for background refresh. 0 disables the
  /// background refresher entirely (models still swap via the synchronous
  /// Db::RefreshStaleModels). Ignored under Trigger::kDrift.
  uint64_t staleness_rows_threshold = 0;
  Mode mode = Mode::kRetrain;
  /// Refinement epochs of a kFinetune refresh.
  size_t finetune_epochs = 2;
  /// Background refresher threads == maximum concurrently retraining
  /// models. Queries are never scheduled on these threads.
  size_t max_concurrent_retrains = 1;

  Trigger trigger = Trigger::kRowCount;
  /// kDrift: refresh when any path column's two-sample KS statistic against
  /// the training-time reference reaches this (numeric columns on the
  /// reference grid; categorical columns as ordinal CDFs over the reference
  /// label order). <= 0 disables the KS gate.
  double drift_ks_threshold = 0.1;
  /// kDrift: refresh when any path column's PSI reaches this. <= 0
  /// disables the PSI gate.
  double drift_psi_threshold = 0.25;

  /// A failed background refresh is retried up to this many times before
  /// the worker gives up on the pass (the circuit breaker below tracks the
  /// failures across passes). 0 keeps the old single-shot behavior.
  size_t max_retries = 3;
  /// Backoff before retry k is `min(backoff_initial_ms << (k-1),
  /// backoff_max_ms)` plus a deterministic jitter in [0, delay/2] derived
  /// from the path seed and attempt number — no two paths thundering-herd
  /// in lockstep, yet every run of the same path backs off identically.
  uint64_t backoff_initial_ms = 50;
  uint64_t backoff_max_ms = 2000;

  /// Circuit breaker: this many CONSECUTIVE training/refresh failures of
  /// one path opens its breaker. While open, the path serves its last good
  /// generation (or fails fast with kUnavailable when it never trained) and
  /// no training is attempted until breaker_open_ms elapses — then a single
  /// half-open probe may train; success closes the breaker, failure re-arms
  /// the open window. 0 disables the breaker. Applies to first-touch
  /// training too, so the breaker works even with refresh disabled.
  size_t breaker_failure_threshold = 5;
  uint64_t breaker_open_ms = 5000;

  /// True when this policy can ever schedule background refreshes (gates
  /// the refresher threads at Db::Open).
  bool enabled() const {
    if (max_concurrent_retrains == 0) return false;
    if (trigger == Trigger::kDrift) {
      return drift_ks_threshold > 0.0 || drift_psi_threshold > 0.0;
    }
    return staleness_rows_threshold > 0;
  }
};

/// Options of Db::Open beyond the engine configuration. Plain aggregate —
/// `{engine, "/path"}` keeps working — with chainable setters for readable
/// call sites:
///   Db::Open(&db, ann, DbOptions{}
///                          .WithEngine(config)
///                          .WithModelDir("/var/lib/restore")
///                          .WithRefreshPolicy({.staleness_rows_threshold =
///                                              1000}));
struct DbOptions {
  EngineConfig engine;
  /// If non-empty, trained models previously written by Db::SaveModels are
  /// restored from this directory at open, so the first query is answered
  /// without any training (total_train_seconds() stays 0 until a query
  /// needs a path that was never trained).
  std::string model_dir;
  /// Which persisted generation to load: 0 loads CURRENT (with fallback to
  /// the newest readable generation if CURRENT is missing or points at a
  /// damaged one); a non-zero value pins that exact generation — rollback —
  /// and fails if it cannot be loaded.
  uint64_t model_generation = 0;
  /// How many generations SaveModels leaves on disk (the new one included).
  /// Older generation directories are deleted after the CURRENT swap.
  size_t keep_generations = 3;
  RefreshPolicy refresh;

  DbOptions& WithEngine(EngineConfig e) {
    engine = std::move(e);
    return *this;
  }
  DbOptions& WithModelDir(std::string dir) {
    model_dir = std::move(dir);
    return *this;
  }
  DbOptions& WithModelGeneration(uint64_t generation) {
    model_generation = generation;
    return *this;
  }
  DbOptions& WithKeepGenerations(size_t n) {
    keep_generations = n;
    return *this;
  }
  DbOptions& WithRefreshPolicy(RefreshPolicy policy) {
    refresh = policy;
    return *this;
  }
};

class Session;

/// Stable hash of every model hyperparameter of `config` (architecture,
/// discretization, training schedule, engine seed). Persisted in the model
/// manifest by Db::SaveModels and validated at Db::Open: loading models into
/// a Db configured differently fails with a clear Status instead of a
/// parameter-shape surprise (or, worse, silently different models for paths
/// trained after the reopen).
uint64_t EngineConfigFingerprint(const EngineConfig& config);

/// Resolves the generation directory a fresh Db::Open of `model_dir` would
/// load: CURRENT's target if readable, else the newest gen-* directory.
/// NotFound when the directory holds no generational snapshot.
Result<std::string> CurrentModelGenerationDir(const std::string& model_dir);

/// Framing of the persisted model manifest (`restore_models.manifest` inside
/// a generation directory; see the README's "Model persistence format").
/// Exported so tests and tools derive their parsing bounds from the values
/// the writer actually uses instead of hardcoding them — a version bump
/// then updates every reader in one place.
inline constexpr uint32_t kManifestMagic = 0x4d545352;  // "RSTM"
inline constexpr uint32_t kManifestVersion = 4;

/// Per-path model freshness, as reported by Db::Freshness().
struct ModelInfo {
  std::vector<std::string> path;
  /// 1 for the first training of a path; +1 per completed refresh.
  uint64_t generation = 0;
  /// Total rows of the path's tables in the data snapshot the model was
  /// trained on (0 when unknown — models restored from a pre-generational
  /// manifest).
  uint64_t trained_rows = 0;
  /// Total rows of the path's tables right now.
  uint64_t current_rows = 0;
  /// Rows ingested into the path's tables since the model was (re)trained —
  /// the staleness measure RefreshPolicy::staleness_rows_threshold gates on.
  uint64_t staleness_rows = 0;
  double train_seconds = 0.0;
  /// True while a background refresh of this path is in flight.
  bool refreshing = false;
  /// True when this generation was restored from disk rather than trained
  /// by this process.
  bool loaded_from_disk = false;
  /// Drift of the live snapshot against this generation's training-time
  /// reference summaries. Unavailable (false, scores 0) for models restored
  /// from a pre-v4 manifest — those never fire the drift trigger.
  bool drift_available = false;
  /// Worst per-column two-sample KS statistic.
  double drift_ks = 0.0;
  /// Worst per-column population stability index.
  double drift_psi = 0.0;
  /// "table.column" attaining the worst KS statistic.
  std::string drift_column;
  /// Circuit-breaker state of the path: true while consecutive
  /// training/refresh failures keep the breaker open (the path serves this
  /// — stale — generation and refuses new training until the half-open
  /// probe).
  bool breaker_open = false;
  /// Consecutive training/refresh failures since the last success.
  uint64_t consecutive_failures = 0;
};

/// A future holding the asynchronous result of a completed-query execution.
/// Cancellation of the underlying query goes through the QueryOptions token
/// it was started with; the future itself only observes the outcome.
using ResultSetFuture = Future<Result<ResultSet>>;

/// The service-grade facade of ReStore: owns the trained completion models,
/// the completion cache, and the candidate/selection registries for one
/// annotated incomplete database, and answers aggregate queries as if the
/// database were complete.
///
/// Thread safety: a Db is safe for concurrent use from any number of
/// sessions/threads. Lazily-trained PathModels are guarded by per-path
/// once-training latches — concurrent queries needing the same path train
/// it exactly once and share the result; model seeds are a stable function
/// of the path (never of request order), so concurrent execution returns
/// bit-identical results to sequential execution.
///
/// Live data: Append/UpdateTable mutate the base relations under an RCU
/// discipline — writers build a new Database snapshot and publish it
/// atomically; in-flight queries keep the snapshot (and the model
/// generations) they started with, so no query ever mixes two epochs.
/// A background refresher (see RefreshPolicy) retrains models whose paths
/// accumulated enough ingested rows and hot-swaps the new generation in
/// without pausing traffic. A Db that never ingests behaves bit-identically
/// to the historical frozen-database engine.
///
/// Execution control: every execution entry point accepts a QueryOptions —
/// a cooperative CancellationToken, an absolute deadline, a synthesized-
/// tuple budget (max_completed_rows), the per-query cache policy, and the
/// ResultSet batch size. Results stream as a schema-carrying columnar
/// ResultSet whose ExecStats record parse/plan/sample/aggregate timings,
/// tuples completed, models consulted, cache hits/misses, and scratch
/// arenas leased; Db::stats() aggregates them across queries for scraping.
///
/// Typical usage:
///   RESTORE_ASSIGN_OR_RETURN(auto db, Db::Open(&database, annotation, {}));
///   Session session = db->CreateSession();
///   RESTORE_ASSIGN_OR_RETURN(auto avg_rent, session.Prepare(
///       "SELECT AVG(rent) FROM apartment WHERE accommodates >= ?;"));
///   QueryOptions options;
///   options.cancel = CancellationToken::Cancellable();
///   options.WithTimeout(std::chrono::seconds(5));
///   auto r2 = avg_rent.Run({Value::Int64(2)}, options);
///   auto r4 = avg_rent.RunAsync({Value::Int64(4)});
///   ...
///   RESTORE_RETURN_IF_ERROR(db->SaveModels("/var/lib/restore/models"));
class Db : public std::enable_shared_from_this<Db> {
 public:
  /// Validates the annotation, enumerates candidate completion paths for
  /// every incomplete table (failing early if one has none), and — when
  /// `options.model_dir` is set — restores persisted models so queries run
  /// training-free. `database` must outlive the returned Db (it stays the
  /// schema reference; ingested data lives in internal snapshots).
  static Result<std::shared_ptr<Db>> Open(const Database* database,
                                          SchemaAnnotation annotation,
                                          DbOptions options = DbOptions());

  ~Db();

  /// Creates a lightweight session handle bound to this Db.
  Session CreateSession();

  /// Executes `query` over the completed database (incompleteness joins for
  /// incomplete tables, normal execution otherwise), honoring the
  /// cancellation/deadline/budget knobs of `options`.
  Result<ResultSet> ExecuteCompleted(const Query& query,
                                     const QueryOptions& options = {});
  Result<ResultSet> ExecuteCompletedSql(const std::string& sql,
                                        const QueryOptions& options = {});

  // ---- Live-data ingestion -------------------------------------------------

  /// Appends `rows` (one vector<Value> per row, positional against the
  /// table's columns) to base table `table`. The writer path clones the
  /// current snapshot, validates and applies every row, and publishes the
  /// new snapshot atomically — in-flight readers keep the old one and are
  /// never blocked; a validation failure publishes nothing. Completion-cache
  /// entries of the old epoch become unreachable, per-path staleness
  /// advances, and stale models are scheduled for background refresh per
  /// the RefreshPolicy. Serialized against other writers.
  Status Append(const std::string& table,
                const std::vector<std::vector<Value>>& rows);

  /// Replaces base table `replacement.name()` wholesale with `replacement`,
  /// which must match the existing schema (column names and types, in
  /// order). Same RCU publication semantics as Append; staleness advances
  /// by the replacement's row count (a rewrite invalidates at least that
  /// much training data).
  Status UpdateTable(Table replacement);

  /// Per-path model freshness: one entry per trained path, in key order.
  std::vector<ModelInfo> Freshness() const;

  /// Synchronously retrains every model whose staleness reached the policy
  /// threshold (any staleness at all when the threshold is 0) and swaps the
  /// new generations in. Returns the first training error; models keep
  /// serving their previous generation on failure. Mostly for tests and
  /// offline tools — servers should rely on the background refresher.
  Status RefreshStaleModels();

  /// Blocks until the background refresher has no queued or running work.
  void WaitForRefreshIdle();

  /// Test-only hook of the distribution-equivalence harness (see
  /// stats/equivalence.h): replaces every trained model with a copy whose
  /// parameters carry seeded Gaussian noise of standard deviation `stddev`,
  /// published like a hot swap (the epoch bumps, so completion-cache
  /// entries of the intact models become unreachable). The harness proves
  /// its gate has teeth against exactly this deliberately broken Db.
  /// Never called by any serving path.
  Status PerturbModelsForTest(float stddev, uint64_t seed);

  /// Returns the completed version of one incomplete table: its existing
  /// tuples plus the synthesized attribute columns (keys are not
  /// synthesized). Used by the bias-reduction experiments. `ctx` (optional,
  /// also on the methods below) threads an owning query's cancellation and
  /// accounting through the completion.
  Result<Table> CompleteTable(const std::string& target,
                              const ExecContext* ctx = nullptr);

  /// Completes via a specific (already trained or new) path — used by the
  /// evaluation harness to score individual models. Deterministic: the
  /// synthesis RNG is derived from the path, not from call order.
  Result<CompletionResult> CompleteViaPath(
      const std::vector<std::string>& path,
      const CompletionOptions& options = CompletionOptions(),
      const ExecContext* ctx = nullptr);

  /// Candidates for `target` (path -> model). Paths are enumerated at Open;
  /// missing models are trained (in parallel, each exactly once) here.
  struct Candidate {
    std::vector<std::string> path;
    std::shared_ptr<const PathModel> model;
  };
  Result<std::vector<Candidate>> CandidatesFor(const std::string& target,
                                               const ExecContext* ctx =
                                                   nullptr);

  /// The path selected for `target` by the configured strategy (computed
  /// once per target, under a latch).
  Result<std::vector<std::string>> SelectedPathFor(
      const std::string& target, const ExecContext* ctx = nullptr);

  /// Access to a trained model by its path (trains lazily if absent;
  /// concurrent callers block until the single training run finishes).
  /// Cancellation is honored BEFORE training starts, never mid-training:
  /// models are shared across queries, so one caller's cancel must not
  /// poison the latch for everyone else. A caller with a deadline stops
  /// WAITING once it expires (DeadlineExceeded) while the shared training
  /// run itself continues and stays available to later callers.
  ///
  /// Under live ingestion models are generational: the returned shared_ptr
  /// leases the generation visible at the query's pinned epoch, stays valid
  /// however long the caller holds it, and repeat lookups under the same
  /// `ctx` return the same generation even across a concurrent hot swap.
  Result<std::shared_ptr<const PathModel>> ModelForPath(
      const std::vector<std::string>& path, const ExecContext* ctx = nullptr);

  /// Persists every trained model plus the per-target path selections to
  /// `dir` (created if missing) as a NEW numbered generation:
  /// `dir/gen-NNNNNN/` is populated tmp-then-rename with per-file
  /// checksums, then `dir/CURRENT` is atomically swapped to point at it.
  /// A crash at any point leaves the previous generation loadable; the last
  /// `keep_generations` generations are retained for rollback
  /// (DbOptions::model_generation). Safe to call while queries are running
  /// and concurrently with other SaveModels calls (saves are serialized
  /// internally, each committing its own generation); models trained after
  /// the snapshot was taken are not included.
  Status SaveModels(const std::string& dir) const;

  /// The schema-reference database this Db was opened over. Under live
  /// ingestion this is the ORIGINAL, pre-ingestion data — query execution
  /// uses data() snapshots instead.
  const Database& database() const { return *database_; }
  /// The current published data snapshot (ingested rows included). Holding
  /// the returned shared_ptr keeps the snapshot alive across later ingests.
  std::shared_ptr<const Database> data() const;
  /// Monotone epoch counter: +1 per published ingest and per model
  /// hot-swap. 0 means the Db is still bit-identical to a frozen open.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  const SchemaAnnotation& annotation() const { return annotation_; }
  const EngineConfig& config() const { return config_; }
  const RefreshPolicy& refresh_policy() const { return refresh_policy_; }
  CompletionCache& cache() { return cache_; }

  /// Total wall-clock seconds spent training models so far (Fig 11).
  /// Models restored from disk contribute nothing.
  double total_train_seconds() const;
  /// Number of PathModel::Train runs this Db executed (restored models do
  /// not count; background refreshes do). Under concurrency this equals the
  /// number of distinct trained (path, generation) pairs — the once-latches
  /// make duplicate training impossible.
  size_t models_trained() const {
    return models_trained_.load(std::memory_order_relaxed);
  }
  /// Number of models restored from `model_dir` at Open.
  size_t models_loaded() const { return models_loaded_; }

  /// Aggregated per-query accounting of this Db, for scraping/monitoring.
  /// Totals are updated once per finished query (success or failure), so a
  /// scrape is cheap and never blocks query execution.
  struct Stats {
    uint64_t queries_ok = 0;
    uint64_t queries_cancelled = 0;
    uint64_t queries_deadline_exceeded = 0;
    uint64_t queries_failed = 0;  // any other non-OK outcome
    /// Live-data accounting.
    uint64_t rows_ingested = 0;       // rows accepted by Append
    uint64_t tables_updated = 0;      // UpdateTable publications
    uint64_t models_refreshed = 0;    // completed background/sync refreshes
    uint64_t refresh_failures = 0;    // refresh trainings that failed
    uint64_t refresh_retries = 0;     // backoff retries after failures
    uint64_t generations_retired = 0; // generations displaced by a swap
    uint64_t epoch = 0;               // current Db::epoch()
    /// Degradation accounting (see RefreshPolicy breaker knobs).
    uint64_t breaker_open_total = 0;   // times any path breaker opened
    uint64_t breakers_open = 0;        // paths currently open (gauge)
    uint64_t refresh_failure_streak = 0;  // consecutive failed refreshes
    uint64_t save_failures = 0;           // SaveModels calls that failed
    uint64_t save_failure_streak = 0;     // consecutive failed saves
    /// Field-wise sums of every finished query's ExecStats (partial stats
    /// of cancelled/failed queries included).
    ExecStats totals;
  };
  Stats stats() const;

  /// Cheap degraded-health signals (single atomic loads — safe to poll per
  /// request, e.g. from the server's /healthz handler).
  uint64_t breakers_open() const {
    return breakers_open_.load(std::memory_order_relaxed);
  }
  uint64_t refresh_failure_streak() const {
    return refresh_failure_streak_.load(std::memory_order_relaxed);
  }
  uint64_t save_failure_streak() const {
    return save_failure_streak_.load(std::memory_order_relaxed);
  }

  /// Test hook: replaces the real backoff sleep of the background refresher
  /// (a fake clock — the hook observes the computed delay, the worker
  /// continues immediately). Must be installed before refresh activity
  /// starts; pass nullptr to restore real sleeping.
  void SetRefreshBackoffHookForTest(std::function<void(uint64_t)> hook);

 private:
  // Run/RunAsync record bind failures into the per-Db stats themselves
  // (binding happens before ExecuteCompleted is ever reached).
  friend class PreparedQuery;

  /// One trained generation of one path. Entries are immutable once their
  /// latch is done — with ONE exception: `prev`. A refresh REPLACES the
  /// registry slot with a new entry whose `prev` links to this one, so
  /// queries pinned at older epochs can still resolve their generation, and
  /// capping that chain (kMaxChainedGens) rewrites the `prev` of a node that
  /// is still reachable from the published head. `prev` is therefore read
  /// and written only under registry_mu_.
  struct ModelEntry {
    OnceLatch latch;
    std::shared_ptr<const PathModel> model;
    std::vector<std::string> path;
    uint64_t generation = 1;
    /// Db::epoch() value from which this generation is visible. 0 for
    /// first trainings and loaded models (visible to every query).
    uint64_t publish_epoch = 0;
    /// Cumulative per-path ingest counter at training time (staleness
    /// baseline) and total path rows of the training snapshot.
    uint64_t ingest_mark = 0;
    uint64_t rows_at_train = 0;
    /// Staleness carried over from before a restart (rows the on-disk
    /// generation was already missing when it was loaded).
    uint64_t stale_base = 0;
    double train_seconds = 0.0;
    bool loaded_from_disk = false;
    /// Per-column reference summaries of the training snapshot (bounded
    /// histograms, not raw rows), captured under the latch — immutable
    /// after — and persisted in manifest v4. Empty for models restored from
    /// a pre-v4 manifest: drift reads as unavailable rather than failing.
    std::vector<ColumnSummary> drift_ref;
    std::atomic<bool> refreshing{false};
    /// Previous generation. Guarded by registry_mu_ (see struct comment).
    std::shared_ptr<ModelEntry> prev;
  };
  /// Shared (not unique) so a failed selection can be swapped for a fresh
  /// entry while waiters still parked on the old latch drain safely — the
  /// same revive-by-replacement idiom ModelEntry uses. Map keys are fixed at
  /// Open; the VALUE swap is guarded by registry_mu_.
  struct SelectionEntry {
    OnceLatch latch;
    std::vector<std::string> path;
  };
  /// Everything one query must agree on, pinned at first touch: the data
  /// snapshot and the epoch that gates model-generation visibility and
  /// keys completion-cache entries.
  struct EpochPin {
    std::shared_ptr<const Database> data;
    uint64_t epoch = 0;
  };

  Db(const Database* database, SchemaAnnotation annotation,
     EngineConfig config);

  static std::string PathKey(const std::vector<std::string>& path);
  /// Stable training seed for a path: candidate paths get compact indices
  /// assigned in enumeration order at Open (matching what sequential
  /// training produced historically); ad-hoc paths hash their key.
  uint64_t SeedForPath(const std::string& key) const;
  /// Training seed of generation `generation` of a path. Generation 1 is
  /// exactly SeedForPath (frozen-database reproducibility); later
  /// generations mix the generation in so a refresh is not a bit-identical
  /// rerun, while staying a pure function of (path, generation).
  uint64_t GenerationSeed(const std::string& key, uint64_t generation) const;
  /// RNG seed of a completion run over `key` — a pure function of the path
  /// so completions are independent of request interleaving and process
  /// restarts.
  uint64_t CompletionSeed(const std::string& key) const;

  /// Returns (creating if needed) the registry HEAD entry for `key`.
  std::shared_ptr<ModelEntry> EntryFor(const std::string& key,
                                       const std::vector<std::string>& path);

  /// The query's pinned epoch (pins the current one on first touch).
  std::shared_ptr<const EpochPin> PinnedEpoch(const ExecContext* ctx) const;

  /// Cumulative ingested rows across `path`'s tables. Caller holds
  /// data_mu_.
  uint64_t IngestMarkLocked(const std::vector<std::string>& path) const;

  /// Publishes `next` as the current snapshot (+1 epoch), advances the
  /// per-table ingest counter, revives failed model entries touching
  /// `table`, and schedules refreshes. Caller holds ingest_mu_.
  void PublishData(std::shared_ptr<const Database> next,
                   const std::string& table, uint64_t delta_rows);

  /// Replaces failed (done, not ok) registry entries whose path contains
  /// `table` with fresh latches: new data invalidates a cached training
  /// failure, so the next query retries against the new snapshot.
  void ReviveFailedModels(const std::string& table);

  /// Queues every stale-enough trained path for background refresh.
  void ScheduleStaleRefreshes();
  /// Staleness of a head entry right now (0 for untrained/failed entries).
  uint64_t StalenessOf(const ModelEntry& entry) const;
  /// Drift of the current snapshot against `entry`'s training reference
  /// (unavailable when the entry carries no reference summaries).
  DriftScore DriftOf(const ModelEntry& entry) const;
  /// True when `entry` is due for refresh under the policy's trigger.
  /// `any_staleness_when_unset` reproduces the synchronous
  /// RefreshStaleModels contract for the row-count trigger: any staleness
  /// at all counts when the threshold is 0.
  bool DueForRefresh(const ModelEntry& entry,
                     bool any_staleness_when_unset) const;

  /// Retrains `key` on the current snapshot and hot-swaps the new
  /// generation in. No-op (OK) when the entry vanished or is already
  /// refreshing; the previous generation keeps serving on failure.
  /// kUnavailable (without a training attempt) while `key`'s breaker is
  /// open and the half-open probe is not yet due.
  Status RefreshModelNow(const std::string& key);

  /// RefreshModelNow plus the policy's bounded retry loop: a failed attempt
  /// backs off exponentially (deterministic jitter from the path seed) and
  /// retries, up to max_retries times, stopping early on shutdown or when
  /// the path's breaker opens.
  Status RefreshWithRetry(const std::string& key);

  /// Backoff before retry `attempt` (1-based) of `key` — exponential with
  /// cap plus deterministic jitter; see RefreshPolicy::backoff_initial_ms.
  uint64_t BackoffDelayMs(const std::string& key, size_t attempt) const;
  /// Sleeps `ms` interruptibly (refresh_stop_ cuts it short), or reports
  /// the delay to the test hook and returns immediately.
  void BackoffWait(uint64_t ms);

  /// Circuit breaker (guarded by breaker_mu_, a leaf mutex).
  enum class BreakerDecision {
    kClosed,    // breaker closed: train/serve as normal
    kFailFast,  // open, probe not due: fail with kUnavailable, no training
    kProbe,     // open, probe due: one training attempt may run
  };
  BreakerDecision DecideBreaker(const std::string& key) const;
  /// Folds one REAL training outcome into `key`'s breaker (cooperative
  /// aborts — cancel/deadline — are not model-health signals and must not
  /// be reported). Opens the breaker at the policy threshold, re-arms the
  /// open window on probe failure, closes it on success.
  void RecordTrainingResult(const std::string& key, const Status& status);

  void RefreshWorkerLoop();
  void StopRefresher();

  /// Builds the completed join used to answer a query over `tables`,
  /// applying the cache per the context's cache policy and recording
  /// hit/miss accounting into its stats.
  Result<std::shared_ptr<const Table>> CompletedJoinFor(
      const std::vector<std::string>& tables, const ExecContext* ctx);

  /// Shared body of the two Execute entry points: runs plan -> completion
  /// -> aggregation under one ExecContext bound to `stats` (which already
  /// carries the parse timing for the SQL path) and folds the outcome into
  /// the per-Db totals.
  Result<ResultSet> ExecuteCompletedImpl(const Query& query,
                                         const QueryOptions& options,
                                         ExecStats stats);
  /// Folds one finished query's stats + outcome into the per-Db totals.
  void RecordQuery(const ExecStats& stats, const Status& status);

  /// SaveModels body; the public wrapper folds the outcome into the save
  /// failure counters.
  Status SaveModelsImpl(const std::string& dir) const;

  Status LoadModels(const std::string& dir, uint64_t generation_override);
  /// Loads one generation directory into staging maps (committed by the
  /// caller only on full success, so a half-loaded generation never leaks
  /// into the registry).
  Status LoadGenerationInto(
      const std::string& gen_dir,
      std::map<std::string, std::shared_ptr<ModelEntry>>* entries,
      std::map<std::string, std::vector<std::string>>* selections);

  const Database* database_;
  SchemaAnnotation annotation_;
  EngineConfig config_;
  RefreshPolicy refresh_policy_;
  size_t keep_generations_ = 3;
  CompletionCache cache_;

  // Immutable after Open.
  std::map<std::string, std::vector<std::vector<std::string>>>
      candidates_;  // target -> candidate paths
  std::map<std::string, uint64_t> path_seeds_;  // PathKey -> training seed
  std::map<std::string, std::shared_ptr<SelectionEntry>> selected_;
  size_t models_loaded_ = 0;

  // RCU data plane. data_ is the published snapshot; writers clone-and-swap
  // under ingest_mu_ (writer serialization) + data_mu_ (the brief publish
  // critical section readers also take). epoch_ is additionally an atomic
  // for lock-free scraping. Lock order: ingest_mu_ > data_mu_;
  // ingest_mu_ > registry_mu_; ingest_mu_ > refresh_mu_. data_mu_,
  // registry_mu_ and refresh_mu_ are leaves (never nested in each other).
  mutable std::mutex ingest_mu_;
  mutable std::mutex data_mu_;
  std::shared_ptr<const Database> data_;
  std::map<std::string, uint64_t> ingested_rows_by_table_;
  std::atomic<uint64_t> epoch_{0};

  // Model registry: the map structure is guarded by registry_mu_; each
  // entry's model is guarded by its latch (immutable once trained) and
  // swapped wholesale on refresh.
  mutable std::mutex registry_mu_;
  std::map<std::string, std::shared_ptr<ModelEntry>> models_;

  // Serializes SaveModels: two concurrent saves would compute the same next
  // generation number and fight over the same gen-N.tmp staging directory.
  // Held across file I/O; takes registry_mu_ inside (save_mu_ > registry_mu_)
  // and is never taken while holding any other Db mutex.
  mutable std::mutex save_mu_;

  // Background refresher (started only when the policy enables it).
  std::mutex refresh_mu_;
  std::condition_variable refresh_cv_;
  std::condition_variable refresh_idle_cv_;
  std::deque<std::string> refresh_queue_;
  std::set<std::string> refresh_pending_;  // queued or running
  size_t refresh_active_ = 0;
  bool refresh_stop_ = false;
  std::vector<std::thread> refresh_threads_;
  // Fake clock for backoff tests; read/written under refresh_mu_.
  std::function<void(uint64_t)> refresh_backoff_hook_;

  // Per-path circuit breakers. breaker_mu_ is a leaf mutex (never held
  // while taking any other Db mutex); breakers_open_ mirrors the map's
  // open count as an atomic so health checks stay lock-free.
  mutable std::mutex breaker_mu_;
  struct BreakerState {
    uint64_t consecutive_failures = 0;
    bool open = false;
    std::chrono::steady_clock::time_point open_until{};
  };
  std::map<std::string, BreakerState> breakers_;

  mutable std::mutex stats_mu_;
  double total_train_seconds_ = 0.0;
  std::atomic<size_t> models_trained_{0};
  std::atomic<uint64_t> rows_ingested_{0};
  std::atomic<uint64_t> tables_updated_{0};
  std::atomic<uint64_t> models_refreshed_{0};
  std::atomic<uint64_t> refresh_failures_{0};
  std::atomic<uint64_t> refresh_retries_{0};
  std::atomic<uint64_t> generations_retired_{0};
  std::atomic<uint64_t> breaker_open_total_{0};
  std::atomic<uint64_t> breakers_open_{0};
  std::atomic<uint64_t> refresh_failure_streak_{0};
  // SaveModels is const; the failure accounting is observational state.
  mutable std::atomic<uint64_t> save_failures_{0};
  mutable std::atomic<uint64_t> save_failure_streak_{0};

  // Aggregated query accounting (guarded by query_stats_mu_; queries touch
  // it exactly once, at completion).
  mutable std::mutex query_stats_mu_;
  Stats query_stats_;
};

/// A prepared completed-query: parsed and column-qualified once, runnable
/// many times with different positional parameters. Cheap to copy; keeps the
/// Db alive.
class PreparedQuery {
 public:
  PreparedQuery() = default;

  const Query& query() const { return stmt_.query(); }
  size_t num_params() const { return stmt_.num_params(); }

  /// Binds `params` to the `?` placeholders and runs over the completed
  /// database under `options` (cancellation, deadline, budgets).
  Result<ResultSet> Run(const std::vector<Value>& params = {},
                        const QueryOptions& options = {}) const;

  /// Asynchronous variant running on the shared ThreadPool. Cancel via the
  /// options token; a task cancelled while still queued returns
  /// Status::Cancelled as soon as a worker picks it up.
  ResultSetFuture RunAsync(const std::vector<Value>& params = {},
                           const QueryOptions& options = {}) const;

 private:
  friend class Session;
  PreparedQuery(std::shared_ptr<Db> db, PreparedStatement stmt)
      : db_(std::move(db)), stmt_(std::move(stmt)) {}

  std::shared_ptr<Db> db_;
  PreparedStatement stmt_;
};

/// A lightweight handle through which one client talks to a shared Db.
/// Sessions are cheap to create/copy and may live on any thread; all
/// heavyweight state (models, cache) lives in the Db.
class Session {
 public:
  explicit Session(std::shared_ptr<Db> db) : db_(std::move(db)) {}

  /// Parses and qualifies `sql` once, returning a bind-and-run-many handle.
  Result<PreparedQuery> Prepare(const std::string& sql) const;

  /// One-shot execution over the completed database. A pre-cancelled token
  /// (or an already-expired deadline) fails BEFORE the SQL is even parsed.
  Result<ResultSet> Execute(const std::string& sql,
                            const QueryOptions& options = {}) const;
  Result<ResultSet> Execute(const Query& query,
                            const QueryOptions& options = {}) const;

  /// Schedules the query on the shared ThreadPool and returns immediately.
  /// The options (token included) travel with the task.
  ResultSetFuture ExecuteAsync(const std::string& sql,
                               const QueryOptions& options = {}) const;

  const std::shared_ptr<Db>& db() const { return db_; }

 private:
  std::shared_ptr<Db> db_;
};

}  // namespace restore

#endif  // RESTORE_RESTORE_DB_H_
