#!/usr/bin/env python3
"""Bench-regression gate: compare fresh BENCH_*.json files against committed
baselines and fail on significant regressions of the named hot metrics.

Usage (from the build directory, after running the benches):

    python3 ../bench/check_bench_json.py \
        --fresh BENCH_micro.json --baseline ../bench/baselines/BENCH_micro.json
    python3 ../bench/check_bench_json.py \
        --fresh BENCH_fig10.json --baseline ../bench/baselines/BENCH_fig10.json \
        --metrics total_seconds --threshold 0.5

A metric "regresses" when its fresh real_ns (or the named counter, for
figure JSONs) exceeds the baseline by more than --threshold (default 0.25 =
25%). Improvements never fail the gate.

Concurrency acceptance: with --check-concurrency (and >= --min-cpus CPUs),
the script additionally requires the scratch-arena concurrent-inference
bench to beat the mutex-serialized contrast bench by --speedup x aggregate
throughput (items_per_second).

Batching acceptance: with --check-batching (and >= --min-cpus CPUs),
coalesced sampling (BM_CoalescedSample/1) must reach --batching-speedup x
the solo path (BM_CoalescedSample/0) on aggregate items_per_second. Below
the CPU floor the check self-skips: batching converts cross-session
concurrency into GEMM width, which a single core cannot exploit.

Re-baselining: benchmark numbers are machine-specific, so after an
intentional perf change (or a runner generation change) regenerate the
baselines on the CI runner class and commit them. RESTORE_NUM_THREADS=1 is
MANDATORY for bench_micro — it is what the CI gate step runs under (see
.github/workflows/ci.yml); a pool-parallel baseline would make every
subsequent width-1 gate run look like a regression:

    cd build && RESTORE_NUM_THREADS=1 ./bench_micro
    ./bench_fig10_selection > /dev/null
    ./bench_server
    cp BENCH_micro.json BENCH_fig10.json BENCH_server.json ../bench/baselines/
"""

import argparse
import json
import os
import sys

# Hot metrics gated by default, keyed by the basename of the fresh JSON
# (--metrics overrides). Matched as exact names after normalization (see
# find_record); threading/real_time suffixes in google-benchmark names are
# tolerated via prefix match.
#
# BENCH_micro.json: BM_DbQps is the Db-level end-to-end serving bench
# (concurrent sessions, cache disabled, pre-trained models): it guards the
# completion plumbing AROUND the models, which the model-only benches cannot
# see. BM_IngestRefresh is the live-data loop (Append -> RefreshStaleModels
# -> query); it is dominated by retraining, so it guards the ingest/publish/
# hot-swap plumbing rather than kernel speed.
#
# BENCH_server.json (bench_server, the HTTP load harness): real_ns is the
# mean per-request latency of each phase. Its committed baseline was
# bootstrapped on a 1-CORE box — like the BENCH_micro baseline — and network
# latency percentiles are noisier than in-process timings, so the CI gate
# runs it with --threshold 1.0 until a few runner generations of data
# justify tightening.
DEFAULT_METRICS_BY_FILE = {
    "BENCH_micro.json": [
        "BM_MadeForward/256",
        "BM_MadeSample/512",
        "BM_MadeSampleSliced/512",
        "BM_ConcurrentInference",
        "BM_DbQps",
        "BM_CoalescedSample/1",
        "BM_IngestRefresh",
        "BM_DriftCheck",
    ],
    "BENCH_server.json": [
        "ServerHealthz",
        "ServerQuery",
    ],
}
# Unknown basenames fall back to the micro list (the historical behavior).
DEFAULT_METRICS = DEFAULT_METRICS_BY_FILE["BENCH_micro.json"]

CONCURRENT_BENCH = "BM_ConcurrentInference"
CONCURRENT_MUTEX_BENCH = "BM_ConcurrentInferenceMutex"
CONCURRENT_THREADS = 4

BATCHING_ON_BENCH = "BM_CoalescedSample/1"
BATCHING_OFF_BENCH = "BM_CoalescedSample/0"


def load_records(path):
    with open(path) as f:
        doc = json.load(f)
    records = doc.get("benchmarks", [])
    if not isinstance(records, list):
        raise SystemExit(f"{path}: 'benchmarks' is not a list")
    return records


def find_record(records, metric):
    """Exact name match first; else component-prefix match (tolerates
    google-benchmark suffixes like /real_time or /threads:4 — but
    'BM_Foo' must not match 'BM_FooBar/...')."""
    exact = [r for r in records if r.get("name") == metric]
    if exact:
        return exact[0]
    prefixed = [r for r in records
                if str(r.get("name", "")).startswith(metric + "/")]
    if len(prefixed) == 1:
        return prefixed[0]
    if len(prefixed) > 1:
        # Prefer the highest thread count (the concurrency acceptance shape).
        def threads(r):
            name = r["name"]
            if "/threads:" in name:
                return int(name.rsplit("/threads:", 1)[1].split("/")[0])
            return 1

        return max(prefixed, key=threads)
    return None


def metric_value(record, counter):
    # WriteBenchJson flattens counters (e.g. items_per_second) into the
    # record object itself, next to real_ns/cpu_ns.
    key = counter if counter else "real_ns"
    if key in record:
        return float(record[key])
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", required=True)
    parser.add_argument("--baseline", required=True)
    parser.add_argument(
        "--metrics", nargs="*", default=None,
        help="benchmark names to gate (default: the per-file hot metrics "
             "from DEFAULT_METRICS_BY_FILE, chosen by the --fresh basename)")
    parser.add_argument(
        "--all-metrics", action="store_true",
        help="gate every record present in the baseline (figure JSONs)")
    parser.add_argument(
        "--counter", default="",
        help="gate this counter instead of real_ns (for figure JSONs)")
    parser.add_argument(
        "--higher-is-better", action="store_true",
        help="the gated value is a quality metric: a DECREASE regresses")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max allowed relative regression (0.25 = 25%%)")
    parser.add_argument(
        "--min-baseline", type=float, default=0.0,
        help="skip records whose |baseline| value is below this (relative "
             "regression is meaningless near zero)")
    parser.add_argument("--check-concurrency", action="store_true",
                        help="also require the scratch-arena >2x win over "
                             "the mutex-serialized concurrency bench")
    parser.add_argument(
        "--require-counters", action="append", default=[],
        metavar="BENCH:c1,c2,...",
        help="fail unless the named fresh record carries every listed "
             "counter (validates e.g. that BM_DbQps emits its ExecStats "
             "fields into the JSON); repeatable")
    parser.add_argument("--speedup", type=float, default=2.0)
    parser.add_argument("--check-batching", action="store_true",
                        help="also require coalesced sampling (batching on) "
                             "to at least match batching off on aggregate "
                             "throughput; skipped below --min-cpus")
    parser.add_argument("--batching-speedup", type=float, default=1.0)
    parser.add_argument("--min-cpus", type=int, default=4,
                        help="skip the concurrency check below this core "
                             "count (the win needs real parallelism)")
    args = parser.parse_args()

    fresh = load_records(args.fresh)
    base = load_records(args.baseline)
    failures = []

    metrics = args.metrics
    if metrics is None:
        metrics = DEFAULT_METRICS_BY_FILE.get(
            os.path.basename(args.fresh), DEFAULT_METRICS)
    if args.all_metrics:
        metrics = [r["name"] for r in base]

    for metric in metrics:
        f_rec = find_record(fresh, metric)
        b_rec = find_record(base, metric)
        if f_rec is None:
            failures.append(f"{metric}: missing from {args.fresh}")
            continue
        if b_rec is None:
            print(f"  NEW    {metric}: no baseline yet "
                  f"(commit one to start gating it)")
            continue
        f_val = metric_value(f_rec, args.counter)
        b_val = metric_value(b_rec, args.counter)
        if f_val is None or b_val is None or b_val == 0:
            failures.append(f"{metric}: no comparable value")
            continue
        if abs(b_val) < args.min_baseline:
            print(f"  SKIP   {metric}: baseline {b_val:.3f} below "
                  f"--min-baseline {args.min_baseline}")
            continue
        if args.higher_is_better:
            rel = (b_val - f_val) / abs(b_val)
        else:
            rel = (f_val - b_val) / abs(b_val)
        verdict = "OK" if rel <= args.threshold else "REGRESSED"
        print(f"  {verdict:9s}{f_rec['name']}: baseline {b_val:.3f}, "
              f"fresh {f_val:.3f} ({rel:+.1%}, limit +{args.threshold:.0%})")
        if rel > args.threshold:
            failures.append(
                f"{metric}: {rel:+.1%} vs baseline (limit +{args.threshold:.0%})")

    for spec in args.require_counters:
        bench_name, _, counter_list = spec.partition(":")
        counters = [c for c in counter_list.split(",") if c]
        record = find_record(fresh, bench_name)
        if record is None:
            failures.append(
                f"{bench_name}: missing from {args.fresh} "
                f"(--require-counters)")
            continue
        missing = [c for c in counters if c not in record]
        if missing:
            failures.append(
                f"{record['name']}: missing counters {missing}")
        else:
            print(f"  OK       {record['name']}: emits "
                  f"{len(counters)} required counters")

    if args.check_concurrency:
        cpus = os.cpu_count() or 1
        if cpus < args.min_cpus:
            print(f"  SKIP   concurrency speedup check: {cpus} CPUs "
                  f"< {args.min_cpus}")
        else:
            arena = find_record(
                fresh, f"{CONCURRENT_BENCH}/real_time/threads:"
                       f"{CONCURRENT_THREADS}") or find_record(
                fresh, CONCURRENT_BENCH)
            mutex = find_record(fresh, CONCURRENT_MUTEX_BENCH)
            if arena is None or mutex is None:
                failures.append("concurrency benches missing from fresh JSON")
            else:
                a = metric_value(arena, "items_per_second")
                m = metric_value(mutex, "items_per_second")
                if not a or not m:
                    failures.append("concurrency benches lack items_per_second")
                else:
                    ratio = a / m
                    verdict = "OK" if ratio > args.speedup else "TOO SLOW"
                    print(f"  {verdict:9s}scratch-arena vs mutex-serialized "
                          f"aggregate throughput: {ratio:.2f}x "
                          f"(required > {args.speedup:.1f}x)")
                    if ratio <= args.speedup:
                        failures.append(
                            f"concurrent inference speedup {ratio:.2f}x <= "
                            f"{args.speedup:.1f}x")

    if args.check_batching:
        cpus = os.cpu_count() or 1
        if cpus < args.min_cpus:
            print(f"  SKIP   batching speedup check: {cpus} CPUs "
                  f"< {args.min_cpus} (coalescing converts concurrency "
                  f"into GEMM width, which needs real cores)")
        else:
            on = find_record(fresh, BATCHING_ON_BENCH)
            off = find_record(fresh, BATCHING_OFF_BENCH)
            if on is None or off is None:
                failures.append("batching benches missing from fresh JSON")
            else:
                a = metric_value(on, "items_per_second")
                b = metric_value(off, "items_per_second")
                if not a or not b:
                    failures.append("batching benches lack items_per_second")
                else:
                    ratio = a / b
                    verdict = ("OK" if ratio >= args.batching_speedup
                               else "TOO SLOW")
                    print(f"  {verdict:9s}coalesced vs solo sampling "
                          f"aggregate throughput: {ratio:.2f}x "
                          f"(required >= {args.batching_speedup:.1f}x)")
                    if ratio < args.batching_speedup:
                        failures.append(
                            f"coalesced sampling speedup {ratio:.2f}x < "
                            f"{args.batching_speedup:.1f}x")

    if failures:
        print("\nBench gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        print("(intentional change? re-baseline per the header of "
              "bench/check_bench_json.py)")
        return 1
    print("Bench gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
