#include "restore/cache.h"

#include <limits>

#include "common/serialize.h"

namespace restore {

CompletionCache::CompletionCache(size_t budget_bytes, size_t num_shards)
    : budget_bytes_(budget_bytes),
      shard_budget_(budget_bytes == 0
                        ? 0
                        : std::max<size_t>(1, budget_bytes / num_shards)),
      shards_(num_shards == 0 ? 1 : num_shards) {}

std::string CompletionCache::Key(const std::set<std::string>& tables) {
  std::string key;
  for (const auto& t : tables) {
    key += t;
    key += '|';
  }
  return key;
}

CompletionCache::Shard& CompletionCache::ShardFor(
    const std::string& key) const {
  return shards_[Fnv1a64(key.data(), key.size()) % shards_.size()];
}

size_t CompletionCache::ApproxTableBytes(const Table& table) {
  size_t bytes = sizeof(Table);
  for (const auto& col : table.columns()) {
    bytes += sizeof(Column) + col.name().size();
    bytes += col.ints().capacity() * sizeof(int64_t);
    bytes += col.doubles().capacity() * sizeof(double);
  }
  return bytes;
}

void CompletionCache::EvictLocked(Shard* shard, const std::string& keep) {
  if (shard_budget_ == 0) return;
  while (shard->bytes > shard_budget_ && shard->entries.size() > 1) {
    auto victim = shard->entries.end();
    uint64_t oldest = std::numeric_limits<uint64_t>::max();
    for (auto it = shard->entries.begin(); it != shard->entries.end(); ++it) {
      if (it->first == keep) continue;
      if (it->second.last_used < oldest) {
        oldest = it->second.last_used;
        victim = it;
      }
    }
    if (victim == shard->entries.end()) break;
    shard->bytes -= victim->second.bytes;
    shard->entries.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void CompletionCache::Put(const std::set<std::string>& tables,
                          std::shared_ptr<const Table> joined) {
  const std::string key = Key(tables);
  Entry entry;
  entry.tables = tables;
  entry.bytes = ApproxTableBytes(*joined);
  // An entry that alone exceeds the shard budget is not worth caching —
  // rejecting it up front (rather than inserting and evicting back down)
  // keeps it from flushing every other entry of its shard first.
  if (shard_budget_ != 0 && entry.bytes > shard_budget_) return;
  entry.joined = std::move(joined);
  entry.last_used = clock_.fetch_add(1, std::memory_order_relaxed);

  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    shard.bytes -= it->second.bytes;
    shard.entries.erase(it);
  }
  shard.bytes += entry.bytes;
  shard.entries.emplace(key, std::move(entry));
  EvictLocked(&shard, key);
}

std::shared_ptr<const Table> CompletionCache::GetExact(
    const std::set<std::string>& tables) const {
  const std::string key = Key(tables);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  it->second.last_used = clock_.fetch_add(1, std::memory_order_relaxed);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.joined;
}

std::shared_ptr<const Table> CompletionCache::GetCovering(
    const std::set<std::string>& tables) const {
  std::shared_ptr<const Table> best;
  std::string best_key;
  Shard* best_shard = nullptr;
  size_t best_size = std::numeric_limits<size_t>::max();
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [key, entry] : shard.entries) {
      bool covers = true;
      for (const auto& t : tables) {
        if (entry.tables.count(t) == 0) {
          covers = false;
          break;
        }
      }
      if (covers && entry.tables.size() < best_size) {
        best_size = entry.tables.size();
        best = entry.joined;
        best_key = key;
        best_shard = &shard;
      }
    }
  }
  if (best == nullptr) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return best;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  // Bump recency only for the entry actually served — bumping intermediate
  // "best so far" candidates would let never-used entries outlive hot ones.
  std::lock_guard<std::mutex> lock(best_shard->mu);
  auto it = best_shard->entries.find(best_key);
  if (it != best_shard->entries.end()) {
    it->second.last_used = clock_.fetch_add(1, std::memory_order_relaxed);
  }
  return best;
}

size_t CompletionCache::size() const {
  size_t n = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.entries.size();
  }
  return n;
}

size_t CompletionCache::bytes() const {
  size_t n = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.bytes;
  }
  return n;
}

void CompletionCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.entries.clear();
    shard.bytes = 0;
  }
}

}  // namespace restore
