#include "restore/model_merge.h"

#include <map>

namespace restore {

namespace {

/// Working representation of a group of mergeable tasks.
struct Group {
  std::set<std::string> tables;
  // Constraint arcs evidence -> target, accumulated over all tasks.
  std::set<std::pair<std::string, std::string>> arcs;
  std::vector<CompletionTask> tasks;
};

/// Kahn's algorithm; returns true and fills `out` if the arc set over
/// `tables` is acyclic.
bool TopologicalSort(const std::set<std::string>& tables,
                     const std::set<std::pair<std::string, std::string>>& arcs,
                     std::vector<std::string>* out) {
  std::map<std::string, int> in_degree;
  for (const auto& t : tables) in_degree[t] = 0;
  for (const auto& [from, to] : arcs) {
    (void)from;
    ++in_degree[to];
  }
  out->clear();
  std::set<std::string> ready;
  for (const auto& [t, deg] : in_degree) {
    if (deg == 0) ready.insert(t);
  }
  while (!ready.empty()) {
    // Deterministic order: smallest name first.
    const std::string t = *ready.begin();
    ready.erase(ready.begin());
    out->push_back(t);
    for (const auto& [from, to] : arcs) {
      if (from != t) continue;
      if (--in_degree[to] == 0) ready.insert(to);
    }
  }
  return out->size() == tables.size();
}

Group MakeGroup(const CompletionTask& task) {
  Group g;
  g.tasks.push_back(task);
  for (const auto& e : task.evidence) {
    g.tables.insert(e);
    g.arcs.emplace(e, task.target);
  }
  g.tables.insert(task.target);
  return g;
}

bool IsSubset(const std::set<std::string>& a, const std::set<std::string>& b) {
  for (const auto& x : a) {
    if (b.count(x) == 0) return false;
  }
  return true;
}

/// Attempts to merge b into a (modifying a); returns false if impossible.
bool TryMerge(Group* a, const Group& b) {
  if (!IsSubset(a->tables, b.tables) && !IsSubset(b.tables, a->tables)) {
    return false;
  }
  Group merged = *a;
  for (const auto& t : b.tables) merged.tables.insert(t);
  for (const auto& arc : b.arcs) merged.arcs.insert(arc);
  std::vector<std::string> order;
  if (!TopologicalSort(merged.tables, merged.arcs, &order)) return false;
  merged.tasks.insert(merged.tasks.end(), b.tasks.begin(), b.tasks.end());
  *a = std::move(merged);
  return true;
}

}  // namespace

Result<std::vector<MergedModel>> MergeCompletionTasks(
    const std::vector<CompletionTask>& tasks) {
  for (const auto& task : tasks) {
    if (task.evidence.empty()) {
      return Status::InvalidArgument("completion task without evidence");
    }
  }
  std::vector<Group> groups;
  for (const auto& task : tasks) groups.push_back(MakeGroup(task));

  // Merge until no more non-conflicting merges are available.
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t i = 0; i < groups.size() && !progress; ++i) {
      for (size_t j = i + 1; j < groups.size(); ++j) {
        if (TryMerge(&groups[i], groups[j])) {
          groups.erase(groups.begin() + static_cast<long>(j));
          progress = true;
          break;
        }
      }
    }
  }

  std::vector<MergedModel> out;
  for (auto& g : groups) {
    MergedModel m;
    if (!TopologicalSort(g.tables, g.arcs, &m.ordering)) {
      return Status::Internal("merged group unexpectedly cyclic");
    }
    m.tasks = std::move(g.tasks);
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace restore
