#include "datagen/movies.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"
#include "restore/tuple_factor.h"

namespace restore {

namespace {

const char* const kGenres[] = {"drama",  "comedy",   "action", "horror",
                               "sci_fi", "romance", "thriller", "documentary"};
constexpr int kNumGenres = 8;
const char* const kCountries[] = {"us", "uk", "fr", "de", "in",
                                  "jp", "it", "es", "cn", "kr"};
constexpr int kNumCountries = 10;
const char* const kCompanyTypes[] = {"production", "distribution",
                                     "effects"};

}  // namespace

Result<Database> GenerateMovies(const MoviesConfig& config) {
  Rng rng(config.seed);
  Database db;

  // ---- Entity tables ---------------------------------------------------------
  Table movie("movie", {{"id", ColumnType::kInt64},
                        {"production_year", ColumnType::kInt64},
                        {"genre", ColumnType::kCategorical},
                        {"country", ColumnType::kCategorical},
                        {"rating", ColumnType::kDouble}});
  std::vector<int64_t> movie_year(config.num_movies);
  std::vector<int> movie_country(config.num_movies);
  for (size_t i = 0; i < config.num_movies; ++i) {
    // Production volume grows over time; country mix shifts with the year.
    const double t = std::sqrt(rng.NextDouble());
    const int64_t year = 1950 + static_cast<int64_t>(t * 70.0);
    const int country =
        rng.NextBernoulli(0.35 + 0.2 * t)
            ? 0  // US share grows over time
            : 1 + static_cast<int>(rng.NextUint64(kNumCountries - 1));
    const int genre = static_cast<int>(rng.NextZipf(kNumGenres, 0.8));
    const double rating = std::clamp(
        5.8 + 0.8 * (genre == 0) - 0.9 * (genre == 3) +
            0.6 * (genre == 7) + rng.NextGaussian(0.0, 1.1),
        1.0, 10.0);
    movie_year[i] = year;
    movie_country[i] = country;
    RESTORE_RETURN_IF_ERROR(
        movie.AppendRow({Value::Int64(static_cast<int64_t>(i)),
                         Value::Int64(year), Value::Categorical(kGenres[genre]),
                         Value::Categorical(kCountries[country]),
                         Value::Double(rating)}));
  }

  Table director("director", {{"id", ColumnType::kInt64},
                              {"birth_year", ColumnType::kInt64},
                              {"gender", ColumnType::kCategorical},
                              {"birth_country", ColumnType::kCategorical}});
  std::vector<int64_t> director_birth(config.num_directors);
  for (size_t i = 0; i < config.num_directors; ++i) {
    const int64_t birth =
        1910 + static_cast<int64_t>(rng.NextDouble() * 80.0);
    director_birth[i] = birth;
    const char* gender = rng.NextBernoulli(0.82) ? "m" : "f";
    const int country = rng.NextBernoulli(0.4)
                            ? 0
                            : static_cast<int>(rng.NextUint64(kNumCountries));
    RESTORE_RETURN_IF_ERROR(director.AppendRow(
        {Value::Int64(static_cast<int64_t>(i)), Value::Int64(birth),
         Value::Categorical(gender),
         Value::Categorical(country == 0 ? "usa"
                                         : StrFormat("c_%d", country))}));
  }

  Table actor("actor", {{"id", ColumnType::kInt64},
                        {"birth_year", ColumnType::kInt64},
                        {"gender", ColumnType::kCategorical}});
  std::vector<int64_t> actor_birth(config.num_actors);
  for (size_t i = 0; i < config.num_actors; ++i) {
    const int64_t birth =
        1915 + static_cast<int64_t>(rng.NextDouble() * 85.0);
    actor_birth[i] = birth;
    RESTORE_RETURN_IF_ERROR(actor.AppendRow(
        {Value::Int64(static_cast<int64_t>(i)), Value::Int64(birth),
         Value::Categorical(rng.NextBernoulli(0.6) ? "m" : "f")}));
  }

  Table company("company", {{"id", ColumnType::kInt64},
                            {"country_code", ColumnType::kCategorical},
                            {"company_type", ColumnType::kCategorical}});
  std::vector<int> company_country(config.num_companies);
  for (size_t i = 0; i < config.num_companies; ++i) {
    const int country = rng.NextBernoulli(0.45)
                            ? 0
                            : 1 + static_cast<int>(
                                      rng.NextUint64(kNumCountries - 1));
    company_country[i] = country;
    RESTORE_RETURN_IF_ERROR(company.AppendRow(
        {Value::Int64(static_cast<int64_t>(i)),
         Value::Categorical(kCountries[country]),
         Value::Categorical(
             kCompanyTypes[rng.NextUint64(3)])}));
  }

  // ---- Link tables: planted cross-table correlations -------------------------
  // Directors/actors are picked so their birth year sits ~25-50 years before
  // the movie's production year; companies usually share the movie's country.
  auto pick_person_by_era = [&](const std::vector<int64_t>& births,
                                int64_t year) -> size_t {
    for (int attempt = 0; attempt < 12; ++attempt) {
      const size_t cand = rng.NextUint64(births.size());
      const int64_t age = year - births[cand];
      if (age >= 25 && age <= 55) return cand;
    }
    return rng.NextUint64(births.size());
  };

  Table movie_director("movie_director", {{"id", ColumnType::kInt64},
                                          {"movie_id", ColumnType::kInt64},
                                          {"director_id", ColumnType::kInt64}});
  Table movie_actor("movie_actor", {{"id", ColumnType::kInt64},
                                    {"movie_id", ColumnType::kInt64},
                                    {"actor_id", ColumnType::kInt64}});
  Table movie_company("movie_company", {{"id", ColumnType::kInt64},
                                        {"movie_id", ColumnType::kInt64},
                                        {"company_id", ColumnType::kInt64}});
  int64_t md_id = 0;
  int64_t ma_id = 0;
  int64_t mc_id = 0;
  for (size_t m = 0; m < config.num_movies; ++m) {
    const int n_dir =
        1 + static_cast<int>(rng.NextBernoulli(config.directors_per_movie - 1.0));
    for (int d = 0; d < n_dir; ++d) {
      const size_t dir = pick_person_by_era(director_birth, movie_year[m]);
      RESTORE_RETURN_IF_ERROR(movie_director.AppendRow(
          {Value::Int64(md_id++), Value::Int64(static_cast<int64_t>(m)),
           Value::Int64(static_cast<int64_t>(dir))}));
    }
    const int n_act = std::max(
        1, static_cast<int>(rng.NextGaussian(config.actors_per_movie, 1.0)));
    for (int a = 0; a < n_act; ++a) {
      const size_t act = pick_person_by_era(actor_birth, movie_year[m]);
      RESTORE_RETURN_IF_ERROR(movie_actor.AppendRow(
          {Value::Int64(ma_id++), Value::Int64(static_cast<int64_t>(m)),
           Value::Int64(static_cast<int64_t>(act))}));
    }
    const int n_comp = std::max(
        1,
        static_cast<int>(rng.NextGaussian(config.companies_per_movie, 0.7)));
    for (int c = 0; c < n_comp; ++c) {
      size_t comp = rng.NextUint64(config.num_companies);
      if (rng.NextBernoulli(0.7)) {
        // Prefer a company from the movie's country.
        for (int attempt = 0; attempt < 10; ++attempt) {
          const size_t cand = rng.NextUint64(config.num_companies);
          if (company_country[cand] == movie_country[m]) {
            comp = cand;
            break;
          }
        }
      }
      RESTORE_RETURN_IF_ERROR(movie_company.AppendRow(
          {Value::Int64(mc_id++), Value::Int64(static_cast<int64_t>(m)),
           Value::Int64(static_cast<int64_t>(comp))}));
    }
  }

  RESTORE_RETURN_IF_ERROR(db.AddTable(std::move(movie)));
  RESTORE_RETURN_IF_ERROR(db.AddTable(std::move(director)));
  RESTORE_RETURN_IF_ERROR(db.AddTable(std::move(actor)));
  RESTORE_RETURN_IF_ERROR(db.AddTable(std::move(company)));
  RESTORE_RETURN_IF_ERROR(db.AddTable(std::move(movie_director)));
  RESTORE_RETURN_IF_ERROR(db.AddTable(std::move(movie_actor)));
  RESTORE_RETURN_IF_ERROR(db.AddTable(std::move(movie_company)));
  RESTORE_RETURN_IF_ERROR(
      db.AddForeignKey("movie_director", "movie_id", "movie", "id"));
  RESTORE_RETURN_IF_ERROR(
      db.AddForeignKey("movie_director", "director_id", "director", "id"));
  RESTORE_RETURN_IF_ERROR(
      db.AddForeignKey("movie_actor", "movie_id", "movie", "id"));
  RESTORE_RETURN_IF_ERROR(
      db.AddForeignKey("movie_actor", "actor_id", "actor", "id"));
  RESTORE_RETURN_IF_ERROR(
      db.AddForeignKey("movie_company", "movie_id", "movie", "id"));
  RESTORE_RETURN_IF_ERROR(
      db.AddForeignKey("movie_company", "company_id", "company", "id"));
  for (const auto& fk : std::vector<ForeignKey>(db.foreign_keys())) {
    RESTORE_RETURN_IF_ERROR(AttachTupleFactors(&db, fk));
  }
  return db;
}

}  // namespace restore
