#include "server/event_loop.h"

#include <cerrno>
#include <cstring>
#include <utility>

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>
#endif

namespace restore {
namespace server {

#ifdef __linux__

EventLoop::~EventLoop() {
  Stop();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::Init() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::Internal(std::string("epoll_create1: ") +
                            std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    return Status::Internal(std::string("eventfd: ") + std::strerror(errno));
  }
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.ptr = nullptr;  // nullptr marks the wakeup fd
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl(wake): ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

void EventLoop::Start() {
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
}

void EventLoop::Stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  Wake();
  thread_.join();
}

void EventLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(fn));
  }
  Wake();
}

void EventLoop::Wake() {
  const uint64_t one = 1;
  // The eventfd counter saturating (EAGAIN) still leaves the loop awake.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

Status EventLoop::Add(int fd, uint32_t events, Handler* handler) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.ptr = handler;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl(add): ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

Status EventLoop::Mod(int fd, uint32_t events, Handler* handler) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.ptr = handler;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl(mod): ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

void EventLoop::Del(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::DrainPosted() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    tasks.swap(posted_);
  }
  for (auto& task : tasks) task();
}

void EventLoop::Run() {
  constexpr int kMaxEvents = 64;
  struct epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable epoll failure; loop exits, server stops
    }
    for (int i = 0; i < n; ++i) {
      if (events[i].data.ptr == nullptr) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      static_cast<Handler*>(events[i].data.ptr)->OnEvent(events[i].events);
    }
    DrainPosted();
  }
  // Final drain so tasks posted just before Stop() (e.g. connection
  // teardown) still run on the loop thread.
  DrainPosted();
}

#else  // !__linux__

EventLoop::~EventLoop() {}
Status EventLoop::Init() {
  return Status::Unimplemented("the epoll server requires Linux");
}
void EventLoop::Start() {}
void EventLoop::Stop() {}
void EventLoop::Post(std::function<void()>) {}
Status EventLoop::Add(int, uint32_t, Handler*) {
  return Status::Unimplemented("the epoll server requires Linux");
}
Status EventLoop::Mod(int, uint32_t, Handler*) {
  return Status::Unimplemented("the epoll server requires Linux");
}
void EventLoop::Del(int) {}
void EventLoop::Wake() {}
void EventLoop::DrainPosted() {}
void EventLoop::Run() {}

#endif  // __linux__

}  // namespace server
}  // namespace restore
