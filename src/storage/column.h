#ifndef RESTORE_STORAGE_COLUMN_H_
#define RESTORE_STORAGE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/value.h"

namespace restore {

/// Dictionary for categorical columns: bidirectional mapping between string
/// values and dense int64 codes. Shared (by shared_ptr) between columns that
/// were derived from the same source column, so codes stay comparable across
/// projections/joins of the same table.
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the code of `value`, inserting it if unseen.
  int64_t GetOrInsert(const std::string& value);

  /// Returns the code of `value` or an error if it is not present.
  Result<int64_t> Lookup(const std::string& value) const;

  /// Returns the string for `code`. `code` must be in [0, size()).
  const std::string& ValueOf(int64_t code) const {
    return values_[static_cast<size_t>(code)];
  }

  size_t size() const { return values_.size(); }

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, int64_t> code_of_;
};

/// A typed column. Storage is a flat vector:
///  * kInt64        -> ints_ holds raw values (kNullInt64 = NULL)
///  * kCategorical  -> ints_ holds dictionary codes (kNullInt64 = NULL)
///  * kDouble       -> doubles_ holds raw values (NaN = NULL)
class Column {
 public:
  Column(std::string name, ColumnType type);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  ColumnType type() const { return type_; }
  size_t size() const {
    return type_ == ColumnType::kDouble ? doubles_.size() : ints_.size();
  }

  bool is_numeric() const { return type_ != ColumnType::kCategorical; }

  // ---- Appends ----------------------------------------------------------
  void AppendInt64(int64_t v) { ints_.push_back(v); }
  void AppendDouble(double v) { doubles_.push_back(v); }
  /// Appends a categorical value through the dictionary.
  void AppendCategorical(const std::string& v) {
    ints_.push_back(dictionary_->GetOrInsert(v));
  }
  /// Appends an already-encoded categorical code (must be valid or NULL).
  void AppendCode(int64_t code) { ints_.push_back(code); }
  void AppendNull();
  /// Appends a dynamically-typed value; checks type compatibility.
  Status AppendValue(const Value& v);

  // ---- Cell access ------------------------------------------------------
  int64_t GetInt64(size_t row) const { return ints_[row]; }
  double GetDouble(size_t row) const { return doubles_[row]; }
  /// Dictionary code for categorical cells.
  int64_t GetCode(size_t row) const { return ints_[row]; }
  bool IsNull(size_t row) const {
    return type_ == ColumnType::kDouble ? IsNullDouble(doubles_[row])
                                        : ints_[row] == kNullInt64;
  }
  /// Numeric view of a cell: int64 and double as double; categorical cells
  /// are returned as their code (useful for distance computations).
  double GetNumeric(size_t row) const {
    return type_ == ColumnType::kDouble ? doubles_[row]
                                        : static_cast<double>(ints_[row]);
  }
  /// Generic cell accessor (materializes a Value; not for hot loops).
  Value GetValue(size_t row) const;

  void SetInt64(size_t row, int64_t v) { ints_[row] = v; }
  void SetDouble(size_t row, double v) { doubles_[row] = v; }

  // ---- Bulk access ------------------------------------------------------
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }

  const std::shared_ptr<Dictionary>& dictionary() const {
    return dictionary_;
  }
  void set_dictionary(std::shared_ptr<Dictionary> dict) {
    dictionary_ = std::move(dict);
  }

  /// Returns an empty column of the same name/type sharing this column's
  /// dictionary.
  Column CloneEmpty() const;

  /// Returns a column with the rows listed in `rows` (gather).
  Column Gather(const std::vector<size_t>& rows) const;

  void Reserve(size_t n) {
    if (type_ == ColumnType::kDouble)
      doubles_.reserve(n);
    else
      ints_.reserve(n);
  }

 private:
  std::string name_;
  ColumnType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::shared_ptr<Dictionary> dictionary_;  // only for kCategorical
};

}  // namespace restore

#endif  // RESTORE_STORAGE_COLUMN_H_
