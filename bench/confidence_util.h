#ifndef RESTORE_BENCH_CONFIDENCE_UTIL_H_
#define RESTORE_BENCH_CONFIDENCE_UTIL_H_

// Shared machinery for the confidence-interval harnesses (Figs 6, 13, 14):
// completes a table while recording the predictive distribution of one
// categorical attribute and derives the 95% confidence interval of the
// biased value's fraction.

#include <string>
#include <vector>

#include "common/result.h"
#include "restore/annotation.h"
#include "restore/confidence.h"
#include "restore/incompleteness_join.h"
#include "restore/path_model.h"
#include "storage/database.h"

namespace restore {
namespace bench {

struct ConfidenceEval {
  /// Fraction of the biased value in the TRUE (complete) table.
  double true_fraction = 0.0;
  /// Fraction in the incomplete table.
  double incomplete_fraction = 0.0;
  ConfidenceInterval interval;
};

/// Completes `target` via `path` on `incomplete`, recording the predictive
/// distributions of `column`, and computes the 95% CI of `value`'s fraction
/// in the completed table. `complete` provides the ground truth.
Result<ConfidenceEval> EvaluateCountConfidence(
    const Database& complete, const Database& incomplete,
    const SchemaAnnotation& annotation, const std::vector<std::string>& path,
    const std::string& target, const std::string& column,
    const std::string& value, const PathModelConfig& config, uint64_t seed);

}  // namespace bench
}  // namespace restore

#endif  // RESTORE_BENCH_CONFIDENCE_UTIL_H_
