#ifndef RESTORE_EXEC_PREPARED_H_
#define RESTORE_EXEC_PREPARED_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "exec/query.h"
#include "storage/database.h"

namespace restore {

/// Rewrites every unqualified column reference of `query` (aggregates,
/// predicates, GROUP BY) to its table-qualified form "table.column",
/// resolving against the query's FROM tables only. Fails on unknown or
/// ambiguous references. Idempotent: already-qualified names pass through.
///
/// Qualifying against the QUERY's tables (not a joined result) matters for
/// completed execution: completion paths can pull in extra evidence tables
/// with clashing column names (e.g. actor.gender vs director.gender).
Status QualifyQueryColumns(const Database& db, Query* query);

/// Returns an error if `query` still contains unbound `?` parameters.
Status CheckFullyBound(const Query& query);

/// A parse-once / bind-and-execute-many query handle: the SQL is tokenized,
/// parsed, and column-qualified exactly once; each execution only
/// substitutes the positional parameters. This removes per-call parsing
/// from the hot query path and is the exec-layer half of restore::Session's
/// PreparedQuery.
class PreparedStatement {
 public:
  PreparedStatement() = default;

  /// Parses `sql` and qualifies its column references against `db`.
  static Result<PreparedStatement> Prepare(const Database& db,
                                           const std::string& sql);

  /// The parsed (qualified, possibly parameterized) query.
  const Query& query() const { return query_; }
  size_t num_params() const { return query_.num_params; }

  /// Returns an executable copy of the query with each `?` replaced by the
  /// corresponding entry of `params` (size must equal num_params()).
  Result<Query> Bind(const std::vector<Value>& params) const;

 private:
  explicit PreparedStatement(Query query) : query_(std::move(query)) {}

  Query query_;
};

}  // namespace restore

#endif  // RESTORE_EXEC_PREPARED_H_
