#include "restore/annotation.h"

#include "common/string_util.h"

namespace restore {

Status SchemaAnnotation::Validate(const Database& db) const {
  for (const auto& t : incomplete_tables_) {
    if (!db.HasTable(t)) {
      return Status::NotFound(
          StrFormat("annotated incomplete table '%s' not in database",
                    t.c_str()));
    }
  }
  for (const auto& [key, bias] : suspected_biases_) {
    (void)key;
    RESTORE_ASSIGN_OR_RETURN(const Table* table, db.GetTable(bias.table));
    if (!table->HasColumn(bias.column)) {
      return Status::NotFound(
          StrFormat("suspected-bias column '%s.%s' not in database",
                    bias.table.c_str(), bias.column.c_str()));
    }
  }
  return Status::OK();
}

}  // namespace restore
