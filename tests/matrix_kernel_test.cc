// Conformance property tests for the blocked/vectorized GEMM kernels: the
// dispatched kernels (AVX2 or portable, threaded or inline) must match a
// naive reference implementation within tolerance across random rectangular
// shapes, including empty, 1xN, and non-multiple-of-tile sizes that exercise
// every micro-kernel edge path.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "nn/matrix.h"

namespace restore {
namespace {

constexpr float kTol = 1e-4f;

Matrix RandomMatrix(size_t rows, size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

void NaiveMatMul(const Matrix& a, const Matrix& b, Matrix* out) {
  out->Resize(a.rows(), b.cols());
  out->Fill(0.0f);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t p = 0; p < a.cols(); ++p) {
      for (size_t j = 0; j < b.cols(); ++j) {
        out->at(i, j) += a.at(i, p) * b.at(p, j);
      }
    }
  }
}

void NaiveMatMulTransB(const Matrix& a, const Matrix& b, Matrix* out) {
  out->Resize(a.rows(), b.rows());
  out->Fill(0.0f);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.rows(); ++j) {
      float acc = 0.0f;
      for (size_t p = 0; p < a.cols(); ++p) acc += a.at(i, p) * b.at(j, p);
      out->at(i, j) = acc;
    }
  }
}

void NaiveMatMulTransAAccum(const Matrix& a, const Matrix& b, Matrix* out) {
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t p = 0; p < a.cols(); ++p) {
      for (size_t j = 0; j < b.cols(); ++j) {
        out->at(p, j) += a.at(i, p) * b.at(i, j);
      }
    }
  }
}

void ExpectNear(const Matrix& got, const Matrix& want, const char* what,
                size_t m, size_t k, size_t n) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got.data()[i], want.data()[i], kTol)
        << what << " mismatch at flat index " << i << " for shape m=" << m
        << " k=" << k << " n=" << n;
  }
}

// Shapes chosen to hit: empty matrices, single rows/cols, sizes below one
// register tile, exact tile multiples (4 rows, 24/16/8 cols), and every
// remainder path (rows % 4, cols % 24 in {1..23}, k % 8).
const size_t kDims[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 23, 24, 25, 33, 64};

TEST(MatrixKernelConformance, MatMulMatchesNaive) {
  Rng rng(101);
  for (size_t m : kDims) {
    for (size_t k : kDims) {
      for (size_t n : kDims) {
        if (m * k * n > 30000 && (m + k + n) % 3 != 0) continue;  // subsample
        Matrix a = RandomMatrix(m, k, rng);
        Matrix b = RandomMatrix(k, n, rng);
        Matrix got, want;
        MatMul(a, b, &got);
        NaiveMatMul(a, b, &want);
        ExpectNear(got, want, "MatMul", m, k, n);
      }
    }
  }
}

TEST(MatrixKernelConformance, MatMulTransBMatchesNaive) {
  Rng rng(202);
  for (size_t m : kDims) {
    for (size_t k : kDims) {
      for (size_t n : kDims) {
        if (m * k * n > 30000 && (m + k + n) % 3 != 0) continue;
        Matrix a = RandomMatrix(m, k, rng);
        Matrix b = RandomMatrix(n, k, rng);
        Matrix got, want;
        MatMulTransB(a, b, &got);
        NaiveMatMulTransB(a, b, &want);
        ExpectNear(got, want, "MatMulTransB", m, k, n);
      }
    }
  }
}

TEST(MatrixKernelConformance, MatMulTransAAccumMatchesNaiveAndAccumulates) {
  Rng rng(303);
  for (size_t m : kDims) {
    for (size_t k : kDims) {
      for (size_t n : kDims) {
        if (m * k * n > 30000 && (m + k + n) % 3 != 0) continue;
        Matrix a = RandomMatrix(m, k, rng);
        Matrix b = RandomMatrix(m, n, rng);
        // Non-zero initial contents verify the ACCUMULATE semantics.
        Matrix got = RandomMatrix(k, n, rng);
        Matrix want = got;
        MatMulTransAAccum(a, b, &got);
        NaiveMatMulTransAAccum(a, b, &want);
        ExpectNear(got, want, "MatMulTransAAccum", m, k, n);
      }
    }
  }
}

TEST(MatrixKernelConformance, LargeShapesCrossParallelThreshold) {
  // Shapes big enough to take the ParallelFor path with several shards.
  Rng rng(404);
  const struct { size_t m, k, n; } shapes[] = {
      {129, 65, 77}, {256, 40, 256}, {100, 256, 96}, {515, 33, 17}};
  for (const auto& s : shapes) {
    Matrix a = RandomMatrix(s.m, s.k, rng);
    Matrix b = RandomMatrix(s.k, s.n, rng);
    Matrix got, want;
    MatMul(a, b, &got);
    NaiveMatMul(a, b, &want);
    ExpectNear(got, want, "MatMul(parallel)", s.m, s.k, s.n);

    Matrix bt = RandomMatrix(s.n, s.k, rng);
    Matrix got_t, want_t;
    MatMulTransB(a, bt, &got_t);
    NaiveMatMulTransB(a, bt, &want_t);
    ExpectNear(got_t, want_t, "MatMulTransB(parallel)", s.m, s.k, s.n);
  }
}

TEST(MatrixKernelConformance, ResizePreservesContentsOnSameShape) {
  Matrix m(3, 5);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = static_cast<float>(i);
  m.Resize(3, 5);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(m.data()[i], static_cast<float>(i));
  }
  m.Resize(5, 3);  // shape change -> zero-filled
  for (size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.0f);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  for (size_t width : {size_t{1}, size_t{3}}) {
    ThreadPool pool(width - 1);
    std::vector<int> hits(1000, 0);
    pool.ParallelFor(0, hits.size(), 7, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) ++hits[i];
    });
    for (size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i], 1) << "index " << i << " at width " << width;
    }
  }
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::vector<int> outer(8, 0);
  pool.ParallelFor(0, outer.size(), 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      std::vector<int> inner(64, 0);
      pool.ParallelFor(0, inner.size(), 4, [&](size_t jlo, size_t jhi) {
        for (size_t j = jlo; j < jhi; ++j) ++inner[j];
      });
      int sum = 0;
      for (int v : inner) sum += v;
      outer[i] = sum;
    }
  });
  for (int v : outer) EXPECT_EQ(v, 64);
}

}  // namespace
}  // namespace restore
