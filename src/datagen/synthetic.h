#ifndef RESTORE_DATAGEN_SYNTHETIC_H_
#define RESTORE_DATAGEN_SYNTHETIC_H_

#include <cstdint>

#include "common/result.h"
#include "storage/database.h"

namespace restore {

/// Parameters of the two-table synthetic dataset of Exp. 1 (Section 7.2):
/// a complete table table_a(id, a) and an incomplete table
/// table_b(id, a_id, b) with a foreign key to table_a.
///
/// * `predictability` controls P(b == f(a)) — how well b can be inferred
///   from the parent attribute.
/// * `zipf_skew` skews the distribution of a (0 = uniform).
/// * `fanout_predictability` > 0 switches to group-coherent generation:
///   b equals a per-parent group value (independent of a) with that
///   probability — information only reachable through fan-out/self evidence,
///   which is what separates SSAR from AR models (Fig 5c).
struct SyntheticConfig {
  size_t num_parents = 500;
  double avg_fanout = 4.0;  // mean children per parent, in [1, max_fanout]
  int max_fanout = 8;
  int domain_a = 10;
  int domain_b = 8;
  double predictability = 0.8;
  double zipf_skew = 0.0;
  double fanout_predictability = 0.0;
  uint64_t seed = 5;
};

/// Generates the complete synthetic database (with true tuple factors
/// attached to table_a).
Result<Database> GenerateSynthetic(const SyntheticConfig& config);

}  // namespace restore

#endif  // RESTORE_DATAGEN_SYNTHETIC_H_
