#include "nn/adam.h"

#include <cmath>

#include "common/thread_pool.h"

namespace restore {

namespace {
// Elements per update slice: large enough to amortize pool dispatch, small
// enough to spread big embedding/output matrices across workers.
constexpr size_t kSliceElems = 16384;
}  // namespace

AdamOptimizer::AdamOptimizer(std::vector<Param*> params, Options options)
    : params_(std::move(params)), options_(options) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    const size_t n = params_[i]->value.size();
    m_[i].assign(n, 0.0f);
    v_[i].assign(n, 0.0f);
    for (size_t begin = 0; begin < n; begin += kSliceElems) {
      slices_.push_back({i, begin, std::min(n, begin + kSliceElems)});
    }
  }
}

void AdamOptimizer::Step() {
  ++t_;
  const float b1 = options_.beta1;
  const float b2 = options_.beta2;
  const float bias1 = 1.0f - std::pow(b1, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(b2, static_cast<float>(t_));
  const float lr = options_.learning_rate;
  const float wd = options_.weight_decay;
  const float eps = options_.epsilon;
  // Fused update: both bias corrections fold into per-step scalars —
  //   value -= (lr/bias1) * m / (sqrt(v) * rsqrt(bias2) + eps)
  // is algebraically m_hat/( sqrt(v_hat) + eps ) with the two per-element
  // divisions (m/bias1, v/bias2) hoisted out of the loop, leaving one mul,
  // one sqrt, and one divide per element next to the moment updates. The
  // weight-decay fold (g = grad + wd*value) stays in the same pass, so one
  // sweep over the slice reads and writes every tensor exactly once.
  const float step_size = lr / bias1;
  const float inv_sqrt_bias2 = 1.0f / std::sqrt(bias2);
  const float c1 = 1.0f - b1;
  const float c2 = 1.0f - b2;
  ParallelFor(0, slices_.size(), 1, [&](size_t s_lo, size_t s_hi) {
    for (size_t s = s_lo; s < s_hi; ++s) {
      const Slice& slice = slices_[s];
      Param* p = params_[slice.param];
      float* __restrict__ value = p->value.data();
      float* __restrict__ grad = p->grad.data();
      float* __restrict__ m = m_[slice.param].data();
      float* __restrict__ v = v_[slice.param].data();
      for (size_t k = slice.begin; k < slice.end; ++k) {
        const float g = grad[k] + wd * value[k];
        m[k] = b1 * m[k] + c1 * g;
        v[k] = b2 * v[k] + c2 * g * g;
        value[k] -= step_size * m[k] / (std::sqrt(v[k]) * inv_sqrt_bias2 + eps);
        grad[k] = 0.0f;
      }
    }
  });
}

void AdamOptimizer::ZeroGrad() {
  for (Param* p : params_) p->ZeroGrad();
}

}  // namespace restore
