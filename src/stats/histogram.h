#ifndef RESTORE_STATS_HISTOGRAM_H_
#define RESTORE_STATS_HISTOGRAM_H_

// Bounded-size per-column distribution summaries.
//
// A ColumnSummary captures the marginal distribution of one column at a
// moment in time — an equi-width histogram for numeric columns, a per-value
// count table for categorical ones — in O(bins) memory regardless of row
// count. Summaries built against the SAME reference grid are directly
// comparable bucket by bucket, which is what the statistical tests in
// stat_test.h consume: the Db snapshots summaries of every path column at
// model-training time (persisted in manifest v4) and later scores the live
// snapshot against them to decide whether a model drifted enough to retrain.
//
// Everything here is deterministic: bin edges derive only from the data and
// the bin budget, categorical labels keep dictionary code order, and no
// randomness or thread-count dependence enters anywhere.

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/serialize.h"
#include "storage/column.h"
#include "storage/database.h"

namespace restore {

/// Numeric bin budget of a reference summary.
inline constexpr size_t kDefaultSummaryBins = 64;
/// Categorical labels kept verbatim; rarer dictionary values (by code
/// order, codes past the cap) collapse into the trailing "other" bucket.
inline constexpr size_t kMaxSummaryLabels = 256;

/// Bounded-size distribution summary of one column.
struct ColumnSummary {
  enum class Kind : uint8_t { kNumeric = 0, kCategorical = 1 };

  std::string table;
  std::string column;
  Kind kind = Kind::kNumeric;

  /// Numeric grid: counts.size() equi-width bins over [lo, hi]. Cells
  /// outside the range clamp into the edge bins, so a summary built against
  /// an older reference grid stays comparable when new data exceeds it.
  double lo = 0.0;
  double hi = 0.0;

  /// Numeric: per-bin counts. Categorical: one count per entry of `labels`
  /// plus a trailing bucket for values the reference had not seen
  /// (counts.size() == labels.size() + 1).
  std::vector<double> counts;
  std::vector<std::string> labels;  // categorical only

  uint64_t total = 0;  // non-null cells counted
  uint64_t nulls = 0;

  void Save(BinaryWriter* w) const;
  static Result<ColumnSummary> Load(BinaryReader* r);
};

/// Builds the reference summary of `col`: numeric columns get an equi-width
/// histogram over the observed [min, max] with at most `max_bins` bins,
/// categorical columns a count per dictionary value (capped at
/// kMaxSummaryLabels, rest in the "other" bucket).
ColumnSummary SummarizeColumn(const std::string& table, const Column& col,
                              size_t max_bins = kDefaultSummaryBins);

/// Summarizes `col` on `ref`'s grid — same bin edges, same label set — so
/// the pair feeds directly into the two-sample tests. Numeric cells outside
/// the reference range land in the edge bins; categorical values absent from
/// the reference labels land in the "other" bucket.
ColumnSummary SummarizeAgainst(const ColumnSummary& ref, const Column& col);

/// Reference summaries of every column of every table of `tables` present
/// in `db`, in the given table order and the table's column order. Missing
/// tables are skipped (a path can reference a table the snapshot dropped).
std::vector<ColumnSummary> SummarizeTables(
    const Database& db, const std::vector<std::string>& tables,
    size_t max_bins = kDefaultSummaryBins);

}  // namespace restore

#endif  // RESTORE_STATS_HISTOGRAM_H_
