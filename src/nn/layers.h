#ifndef RESTORE_NN_LAYERS_H_
#define RESTORE_NN_LAYERS_H_

#include <vector>

#include "common/rng.h"
#include "nn/matrix.h"

namespace restore {

/// A learnable parameter: value plus accumulated gradient of the same shape.
struct Param {
  Matrix value;
  Matrix grad;

  void Init(size_t rows, size_t cols) {
    value.Resize(rows, cols);
    value.Fill(0.0f);
    grad.Resize(rows, cols);
    grad.Fill(0.0f);
  }
  void ZeroGrad() { grad.Fill(0.0f); }
};

/// Kaiming/He-uniform initialization suited for ReLU networks.
void KaimingInit(Matrix* w, size_t fan_in, Rng& rng);

/// Fully-connected layer: y = x W + b.
///
/// All layers in this library follow the same protocol: `Forward` caches what
/// `Backward` needs; `Backward` accumulates parameter gradients and returns
/// the input gradient. `CollectParams` exposes parameters to the optimizer.
class Dense {
 public:
  Dense() = default;
  Dense(size_t in_dim, size_t out_dim, Rng& rng);

  /// y = x W + b. `cache_input` = false skips the input snapshot for
  /// inference-only passes (sampling, evaluation); Backward then requires a
  /// preceding caching Forward.
  void Forward(const Matrix& x, Matrix* y, bool cache_input = true);
  /// Reentrant inference forward: touches no member state, so any number of
  /// threads may call it concurrently on one layer.
  void ForwardInference(const Matrix& x, Matrix* y) const;
  /// Column-sliced reentrant inference forward: resizes y to
  /// [batch x out_dim] but computes ONLY columns [col_begin, col_end) — each
  /// bit-identical to the full ForwardInference (see MatMulColsSlice). The
  /// sampling output layer uses this to pay for one attribute's logit block
  /// instead of the whole vocabulary.
  void ForwardInferenceSlice(const Matrix& x, size_t col_begin,
                             size_t col_end, Matrix* y) const;
  /// Accumulates dW, db; writes dx (same shape as the cached x).
  void Backward(const Matrix& dy, Matrix* dx);
  /// Backward variant that skips computing dx (for the first layer).
  void BackwardNoInputGrad(const Matrix& dy);

  void CollectParams(std::vector<Param*>* params) {
    params->push_back(&w_);
    params->push_back(&b_);
  }

  size_t in_dim() const { return w_.value.rows(); }
  size_t out_dim() const { return w_.value.cols(); }

  Param& weight() { return w_; }
  Param& bias() { return b_; }

 private:
  Param w_;  // [in x out]
  Param b_;  // [1 x out]
  Matrix x_cache_;
  Matrix pack_scratch_;  // packed W^T tile for the backward dx GEMM
};

/// Fully-connected layer with a fixed binary connectivity mask on the weight
/// matrix: y = x (W * M) + b. This is the building block of MADE: the mask
/// enforces the autoregressive property.
class MaskedDense {
 public:
  MaskedDense() = default;
  /// `mask` must be [in_dim x out_dim] with entries in {0, 1}.
  MaskedDense(Matrix mask, Rng& rng);

  void Forward(const Matrix& x, Matrix* y, bool cache_input = true);
  /// Reentrant inference forward over the cached effective weight (W * M).
  /// Requires RefreshMaskedWeights() after the last parameter update (the
  /// training Forward refreshes it as a side effect); touches no member
  /// state itself, so concurrent calls on one layer are safe.
  void ForwardInference(const Matrix& x, Matrix* y) const;
  /// Column-sliced reentrant inference forward (see Dense); operates on the
  /// frozen effective weight, so the same RefreshMaskedWeights contract
  /// applies.
  void ForwardInferenceSlice(const Matrix& x, size_t col_begin,
                             size_t col_end, Matrix* y) const;
  /// Fused reentrant inference forward: y = relu(x (W*M) + b) [+ residual],
  /// the whole epilogue applied in the kernel store phase. Bit-identical to
  /// ForwardInference + ReluInPlace + AddInPlace (see MatMulFused); the MADE
  /// hidden trunk uses it to skip three activation sweeps per layer.
  void ForwardInferenceFused(const Matrix& x, bool relu,
                             const Matrix* residual, Matrix* y) const;
  void Backward(const Matrix& dy, Matrix* dx);
  void BackwardNoInputGrad(const Matrix& dy);

  /// Recomputes the cached effective weight (W * M). Must be called after
  /// the optimizer's final step (or after loading parameters) and before
  /// ForwardInference — the optimizer mutates W through CollectParams
  /// pointers, which this layer cannot observe.
  void RefreshMaskedWeights();

  void CollectParams(std::vector<Param*>* params) {
    params->push_back(&w_);
    params->push_back(&b_);
  }

  const Matrix& mask() const { return mask_; }
  size_t in_dim() const { return mask_.rows(); }
  size_t out_dim() const { return mask_.cols(); }

  /// The frozen effective weight (W * M) read by the inference paths. Valid
  /// after RefreshMaskedWeights(); exposed for the incremental-sampling
  /// delta update, which multiplies an embedding delta against a row block
  /// of these weights.
  const Matrix& masked_weights() const { return masked_w_; }

 private:

  Param w_;
  Param b_;
  Matrix mask_;
  Matrix masked_w_;   // W * M, refreshed on every training Forward
  Matrix dw_scratch_;  // unmasked x^T dy, reused across Backward calls
  Matrix x_cache_;
  Matrix pack_scratch_;  // packed (W*M)^T tile for the backward dx GEMM
};

}  // namespace restore

#endif  // RESTORE_NN_LAYERS_H_
