#include "datagen/incompleteness.h"

#include <algorithm>
#include <unordered_set>

#include "common/rng.h"
#include "common/string_util.h"
#include "restore/tuple_factor.h"

namespace restore {

namespace {

/// Removal scores per row in [0, 1]; higher = more likely to be removed.
Result<std::vector<double>> RemovalScores(const Table& table,
                                          const std::string& column,
                                          const std::string& cat_value) {
  RESTORE_ASSIGN_OR_RETURN(const Column* col, table.GetColumn(column));
  const size_t n = table.NumRows();
  std::vector<double> scores(n, 0.0);
  if (col->type() == ColumnType::kCategorical) {
    // Indicator of the biased value (default: the most frequent one).
    int64_t code;
    if (cat_value.empty()) {
      std::vector<size_t> counts(col->dictionary()->size(), 0);
      for (size_t r = 0; r < n; ++r) {
        if (!col->IsNull(r)) ++counts[static_cast<size_t>(col->GetCode(r))];
      }
      code = static_cast<int64_t>(
          std::max_element(counts.begin(), counts.end()) - counts.begin());
    } else {
      RESTORE_ASSIGN_OR_RETURN(code, col->dictionary()->Lookup(cat_value));
    }
    for (size_t r = 0; r < n; ++r) {
      scores[r] = (!col->IsNull(r) && col->GetCode(r) == code) ? 1.0 : 0.0;
    }
    return scores;
  }
  // Numeric: normalized rank of the value (ties share the lower rank).
  std::vector<std::pair<double, size_t>> ranked;
  ranked.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    ranked.emplace_back(col->IsNull(r) ? 0.0 : col->GetNumeric(r), r);
  }
  std::sort(ranked.begin(), ranked.end());
  for (size_t i = 0; i < n; ++i) {
    scores[ranked[i].second] =
        n > 1 ? static_cast<double>(i) / static_cast<double>(n - 1) : 0.0;
  }
  return scores;
}

}  // namespace

Result<Database> ApplyBiasedRemoval(const Database& db,
                                    const BiasedRemovalConfig& config) {
  if (config.keep_rate <= 0.0 || config.keep_rate > 1.0) {
    return Status::InvalidArgument("keep_rate must be in (0, 1]");
  }
  if (config.removal_correlation < 0.0 || config.removal_correlation > 1.0) {
    return Status::InvalidArgument("removal_correlation must be in [0, 1]");
  }
  Database out = db.Clone();
  RESTORE_ASSIGN_OR_RETURN(Table * table, out.GetMutableTable(config.table));
  RESTORE_ASSIGN_OR_RETURN(
      std::vector<double> scores,
      RemovalScores(*table, config.column, config.categorical_value));

  double mean_score = 0.0;
  for (double s : scores) mean_score += s;
  mean_score /= std::max<size_t>(1, scores.size());
  if (mean_score <= 0.0) mean_score = 1.0;

  const double r = 1.0 - config.keep_rate;
  const double c = config.removal_correlation;
  RESTORE_ASSIGN_OR_RETURN(const Column* col,
                           table->GetColumn(config.column));
  Rng rng(config.seed);
  std::vector<size_t> keep;
  if (col->type() == ColumnType::kCategorical) {
    // Indicator scores: removal probability of the biased value interpolates
    // from r (c=0) towards 1 (c=1); the rest is rebalanced so the overall
    // removal rate stays r. This keeps a learnable share of the biased value
    // for every c < 1 (the paper's consistent-correlations assumption).
    const double f = mean_score;  // fraction of rows carrying the value
    double p_value = r + c * (1.0 - r);
    double p_other =
        f < 1.0 ? std::clamp((r - f * p_value) / (1.0 - f), 0.0, 1.0) : r;
    for (size_t i = 0; i < scores.size(); ++i) {
      const double p = scores[i] > 0.5 ? p_value : p_other;
      if (!rng.NextBernoulli(p)) keep.push_back(i);
    }
  } else {
    // Rank scores in [0, 1] (mean 0.5): p_i = r*(1-c) + 2*c*r*rank keeps the
    // expected removal rate at r while correlating removals with the value.
    for (size_t i = 0; i < scores.size(); ++i) {
      const double p =
          std::clamp(r * ((1.0 - c) + 2.0 * c * scores[i]), 0.0, 1.0);
      if (!rng.NextBernoulli(p)) keep.push_back(i);
    }
  }
  if (keep.empty()) {
    return Status::FailedPrecondition(
        "biased removal would delete every tuple");
  }
  Table reduced = table->GatherRows(keep);
  reduced.set_name(config.table);
  RESTORE_RETURN_IF_ERROR(out.ReplaceTable(std::move(reduced)));
  return out;
}

Result<Database> ApplyUniformRemoval(const Database& db,
                                     const std::string& table,
                                     double keep_rate, uint64_t seed) {
  BiasedRemovalConfig config;
  config.table = table;
  config.keep_rate = keep_rate;
  config.removal_correlation = 0.0;
  config.seed = seed;
  // Any column works for an uncorrelated removal; use the first one.
  RESTORE_ASSIGN_OR_RETURN(const Table* t, db.GetTable(table));
  if (t->NumColumns() == 0) {
    return Status::InvalidArgument("table has no columns");
  }
  config.column = t->column(0).name();
  return ApplyBiasedRemoval(db, config);
}

Status ThinTupleFactors(Database* db, double tf_keep_rate, uint64_t seed) {
  Rng rng(seed);
  for (const auto& name : db->TableNames()) {
    RESTORE_ASSIGN_OR_RETURN(Table * table, db->GetMutableTable(name));
    for (size_t c = 0; c < table->NumColumns(); ++c) {
      Column& col = table->column(c);
      if (!IsTupleFactorColumn(col.name())) continue;
      for (size_t r = 0; r < col.size(); ++r) {
        if (!col.IsNull(r) && !rng.NextBernoulli(tf_keep_rate)) {
          col.SetInt64(r, kNullInt64);
        }
      }
    }
  }
  return Status::OK();
}

Status CascadeRemoveLinkRows(Database* db,
                             const std::vector<std::string>& link_tables) {
  for (const auto& link : link_tables) {
    RESTORE_ASSIGN_OR_RETURN(Table * table, db->GetMutableTable(link));
    // Collect the FK constraints of this link table.
    struct Check {
      const Column* fk_col;
      std::unordered_set<int64_t> present;
    };
    std::vector<Check> checks;
    for (const auto& fk : db->foreign_keys()) {
      if (fk.child_table != link) continue;
      RESTORE_ASSIGN_OR_RETURN(const Table* parent,
                               db->GetTable(fk.parent_table));
      RESTORE_ASSIGN_OR_RETURN(const Column* pk,
                               parent->GetColumn(fk.parent_column));
      RESTORE_ASSIGN_OR_RETURN(const Column* fk_col,
                               table->GetColumn(fk.child_column));
      Check check;
      check.fk_col = fk_col;
      for (size_t r = 0; r < parent->NumRows(); ++r) {
        check.present.insert(pk->GetInt64(r));
      }
      checks.push_back(std::move(check));
    }
    std::vector<size_t> keep;
    for (size_t r = 0; r < table->NumRows(); ++r) {
      bool ok = true;
      for (const auto& check : checks) {
        if (check.present.count(check.fk_col->GetInt64(r)) == 0) {
          ok = false;
          break;
        }
      }
      if (ok) keep.push_back(r);
    }
    Table reduced = table->GatherRows(keep);
    reduced.set_name(link);
    RESTORE_RETURN_IF_ERROR(db->ReplaceTable(std::move(reduced)));
  }
  return Status::OK();
}

}  // namespace restore
