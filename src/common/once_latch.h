#ifndef RESTORE_COMMON_ONCE_LATCH_H_
#define RESTORE_COMMON_ONCE_LATCH_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>

#include "common/status.h"

namespace restore {

/// A run-exactly-once latch for expensive fallible initialization shared by
/// concurrent callers (e.g. lazily training one completion model per path).
///
/// The first caller of `RunOnce` executes `fn`; concurrent callers block
/// until it finishes and then observe the same Status. The outcome — success
/// or failure — is cached: `fn` never runs twice, so a deterministic failure
/// is reported identically to every caller instead of being retried.
///
/// The closure runs OUTSIDE the latch mutex, so it may itself block, use the
/// shared ThreadPool, or take other latches (as long as the latch graph is
/// acyclic, which path-keyed model training trivially satisfies).
class OnceLatch {
 public:
  OnceLatch() = default;
  OnceLatch(const OnceLatch&) = delete;
  OnceLatch& operator=(const OnceLatch&) = delete;

  /// Runs `fn` if no caller has before, else waits for the first run to
  /// finish. Returns the Status of the one-and-only execution.
  Status RunOnce(const std::function<Status()>& fn) {
    return RunOnceWithDeadline(
        fn, std::chrono::steady_clock::time_point::max());
  }

  /// Like RunOnce, but a WAITER abandons the wait with kDeadlineExceeded
  /// once `deadline` passes. Only the wait is bounded: the caller that wins
  /// the race RUNS `fn` to completion regardless of its deadline (aborting
  /// mid-run would poison the shared result for every later caller), and
  /// the latch itself stays shareable — the run keeps going and callers
  /// with more patience still observe its Status.
  Status RunOnceWithDeadline(
      const std::function<Status()>& fn,
      std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    if (state_ == State::kDone) return status_;
    if (state_ == State::kRunning) {
      if (deadline == std::chrono::steady_clock::time_point::max()) {
        cv_.wait(lock, [this] { return state_ == State::kDone; });
        return status_;
      }
      if (!cv_.wait_until(lock, deadline,
                          [this] { return state_ == State::kDone; })) {
        return Status::DeadlineExceeded(
            "deadline expired while waiting for shared first-touch work");
      }
      return status_;
    }
    state_ = State::kRunning;
    lock.unlock();
    Status s = fn();
    lock.lock();
    status_ = s;
    state_ = State::kDone;
    cv_.notify_all();
    return status_;
  }

  /// Marks the latch as already completed with `status` without running
  /// anything (e.g. a model restored from disk). Must not race RunOnce.
  void SetDone(Status status) {
    std::lock_guard<std::mutex> lock(mu_);
    status_ = std::move(status);
    state_ = State::kDone;
    cv_.notify_all();
  }

  /// True while some caller is executing the latched work. Does not block.
  bool running() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_ == State::kRunning;
  }

  /// True once the latched work completed successfully. Does not block.
  bool done_ok() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_ == State::kDone && status_.ok();
  }

  /// True once the latched work completed, successfully OR not. A latch
  /// that is done with a failure stays failed forever — callers that want a
  /// retry must install a NEW latch (see Db's ingestion-triggered model
  /// entry replacement). Does not block.
  bool done() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_ == State::kDone;
  }

 private:
  enum class State { kIdle, kRunning, kDone };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  State state_ = State::kIdle;
  Status status_;
};

}  // namespace restore

#endif  // RESTORE_COMMON_ONCE_LATCH_H_
