#ifndef RESTORE_EXEC_EXECUTOR_H_
#define RESTORE_EXEC_EXECUTOR_H_

#include <string>

#include "common/result.h"
#include "exec/exec_control.h"
#include "exec/query.h"
#include "exec/result_set.h"
#include "storage/database.h"

namespace restore {

/// Executes an SPJA query directly against the base tables of `db`
/// (joins along foreign keys, then filters, then grouped aggregation).
/// This is the "classical database" baseline: it does NOT complete missing
/// data. Use restore::Db / Session (restore/db.h) for completed execution.
///
/// `options` carries the execution-control surface shared with the
/// completed path: cooperative cancellation, a deadline, and the ResultSet
/// batch size. The returned ResultSet exposes per-query ExecStats.
Result<ResultSet> ExecuteQuery(const Database& db, const Query& query,
                               const QueryOptions& options = QueryOptions());

/// Parses `sql` and executes it against `db`.
Result<ResultSet> ExecuteSql(const Database& db, const std::string& sql,
                             const QueryOptions& options = QueryOptions());

}  // namespace restore

#endif  // RESTORE_EXEC_EXECUTOR_H_
