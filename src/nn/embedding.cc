#include "nn/embedding.h"

#include <cassert>

namespace restore {

EmbeddingSet::EmbeddingSet(const std::vector<int>& vocab_sizes,
                           size_t embed_dim, Rng& rng)
    : embed_dim_(embed_dim) {
  tables_.resize(vocab_sizes.size());
  for (size_t i = 0; i < vocab_sizes.size(); ++i) {
    tables_[i].Init(static_cast<size_t>(vocab_sizes[i]), embed_dim);
    // Small gaussian init as usual for embeddings.
    for (size_t k = 0; k < tables_[i].value.size(); ++k) {
      tables_[i].value.data()[k] =
          static_cast<float>(rng.NextGaussian(0.0, 0.1));
    }
  }
}

void EmbeddingSet::Forward(const IntMatrix& codes, Matrix* out) {
  assert(codes.cols() == tables_.size());
  codes_cache_ = codes;
  out->Resize(codes.rows(), output_dim());
  for (size_t r = 0; r < codes.rows(); ++r) {
    float* orow = out->row(r);
    for (size_t a = 0; a < tables_.size(); ++a) {
      const int32_t code = codes.at(r, a);
      assert(code >= 0 &&
             code < static_cast<int32_t>(tables_[a].value.rows()));
      const float* emb = tables_[a].value.row(static_cast<size_t>(code));
      float* dst = orow + a * embed_dim_;
      for (size_t k = 0; k < embed_dim_; ++k) dst[k] = emb[k];
    }
  }
}

void EmbeddingSet::Backward(const Matrix& dout) {
  assert(dout.rows() == codes_cache_.rows());
  assert(dout.cols() == output_dim());
  for (size_t r = 0; r < codes_cache_.rows(); ++r) {
    const float* drow = dout.row(r);
    for (size_t a = 0; a < tables_.size(); ++a) {
      const int32_t code = codes_cache_.at(r, a);
      float* grad = tables_[a].grad.row(static_cast<size_t>(code));
      const float* src = drow + a * embed_dim_;
      for (size_t k = 0; k < embed_dim_; ++k) grad[k] += src[k];
    }
  }
}

}  // namespace restore
