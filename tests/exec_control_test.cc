// Tests of the execution-control surface: CancellationToken, deadlines,
// max_completed_rows budgets, cache policies, per-query ExecStats, and the
// aggregated Db::Stats — the QueryOptions/ResultSet redesign of the
// Db/Session API.

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "datagen/incompleteness.h"
#include "datagen/synthetic.h"
#include "exec/exec_control.h"
#include "exec/executor.h"
#include "restore/db.h"

namespace restore {
namespace {

EngineConfig FastConfig() {
  EngineConfig config;
  config.model.epochs = 4;
  config.model.min_train_steps = 120;
  config.model.hidden_dim = 24;
  config.model.embed_dim = 4;
  config.model.max_bins = 12;
  config.max_candidates = 2;
  return config;
}

Database MakeIncompleteSynthetic(uint64_t seed) {
  SyntheticConfig data_config;
  data_config.num_parents = 220;
  data_config.predictability = 0.85;
  data_config.seed = seed;
  auto complete = GenerateSynthetic(data_config);
  EXPECT_TRUE(complete.ok());
  BiasedRemovalConfig removal;
  removal.table = "table_b";
  removal.column = "b";
  removal.keep_rate = 0.5;
  removal.removal_correlation = 0.5;
  removal.seed = seed + 1;
  auto incomplete = ApplyBiasedRemoval(*complete, removal);
  EXPECT_TRUE(incomplete.ok());
  EXPECT_TRUE(ThinTupleFactors(&*incomplete, 0.3, seed + 2).ok());
  return std::move(incomplete).value();
}

constexpr char kJoinSql[] =
    "SELECT COUNT(*) FROM table_a NATURAL JOIN table_b GROUP BY b;";

std::shared_ptr<Db> OpenSynthetic(Database* incomplete,
                                  EngineConfig config = FastConfig()) {
  SchemaAnnotation annotation;
  annotation.MarkIncomplete("table_b");
  auto db = Db::Open(incomplete, annotation, DbOptions().WithEngine(std::move(config)));
  EXPECT_TRUE(db.ok()) << db.status();
  return *db;
}

TEST(CancellationTokenTest, DefaultTokenIsInert) {
  CancellationToken token;
  EXPECT_FALSE(token.can_cancel());
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.flag(), nullptr);
  token.RequestCancel();  // no-op, must not crash
  EXPECT_FALSE(token.cancelled());
}

TEST(CancellationTokenTest, CancellableTokenSharesStateAcrossCopies) {
  CancellationToken token = CancellationToken::Cancellable();
  CancellationToken copy = token;
  EXPECT_TRUE(token.can_cancel());
  EXPECT_FALSE(copy.cancelled());
  token.RequestCancel();
  EXPECT_TRUE(copy.cancelled()) << "copies share the cancel state";
  ASSERT_NE(token.flag(), nullptr);
  EXPECT_TRUE(token.flag()->load());
}

TEST(ExecControlTest, CancelBeforeParseSkipsParsing) {
  Database incomplete = MakeIncompleteSynthetic(501);
  auto db = OpenSynthetic(&incomplete);
  Session session = db->CreateSession();

  QueryOptions options;
  options.cancel = CancellationToken::Cancellable();
  options.cancel.RequestCancel();
  // Even syntactically INVALID SQL returns Cancelled: the token is checked
  // before the parser ever sees the string.
  auto r = session.Execute("THIS IS NOT SQL AT ALL", options);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled()) << r.status();
  EXPECT_EQ(db->stats().queries_cancelled, 1u);
  EXPECT_EQ(db->models_trained(), 0u) << "nothing ran";
}

TEST(ExecControlTest, CancelMidSamplingAbortsWithinOneBatch) {
  Database incomplete = MakeIncompleteSynthetic(503);
  EngineConfig config = FastConfig();
  config.enable_cache = false;
  auto db = OpenSynthetic(&incomplete, config);
  Session session = db->CreateSession();

  // Pre-train so the cancelled run aborts INFERENCE, not training.
  auto warmup = session.Execute(kJoinSql);
  ASSERT_TRUE(warmup.ok()) << warmup.status();
  const size_t trained = db->models_trained();

  // Deterministic mid-flight cancel: the progress callback fires at every
  // cooperative checkpoint; pull the trigger once sampling has begun.
  QueryOptions options;
  options.cancel = CancellationToken::Cancellable();
  uint64_t tuples_at_cancel = 0;
  options.progress = [&options, &tuples_at_cancel](const ExecStats& stats) {
    if (stats.tuples_completed > 0 && !options.cancel.cancelled()) {
      tuples_at_cancel = stats.tuples_completed;
      options.cancel.RequestCancel();
    }
  };
  auto r = session.Execute(kJoinSql, options);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled()) << r.status();
  EXPECT_GT(tuples_at_cancel, 0u) << "cancel fired mid-completion";
  EXPECT_EQ(db->models_trained(), trained) << "no training was triggered";

  // The partial work was still accounted at the Db level...
  const Db::Stats stats = db->stats();
  EXPECT_EQ(stats.queries_cancelled, 1u);
  EXPECT_GT(stats.totals.arenas_leased, 0u);

  // ...and the Db is fully serviceable afterwards: the same query answers
  // bit-identically to the warmup (no leaked arenas, no poisoned latches).
  auto again = session.Execute(kJoinSql);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(*again, *warmup);
}

TEST(ExecControlTest, CancelAfterCompletionDoesNotAffectResult) {
  Database incomplete = MakeIncompleteSynthetic(505);
  auto db = OpenSynthetic(&incomplete);
  Session session = db->CreateSession();

  QueryOptions options;
  options.cancel = CancellationToken::Cancellable();
  auto r = session.Execute(kJoinSql, options);
  ASSERT_TRUE(r.ok()) << r.status();
  // Cancelling AFTER the query finished changes nothing about its result
  // but fails the next run under the same (now-cancelled) options.
  options.cancel.RequestCancel();
  EXPECT_GT(r->num_rows(), 0u);
  auto next = session.Execute(kJoinSql, options);
  ASSERT_FALSE(next.ok());
  EXPECT_TRUE(next.status().IsCancelled());
}

TEST(ExecControlTest, ExpiredDeadlineFailsSyncAndAsync) {
  Database incomplete = MakeIncompleteSynthetic(507);
  auto db = OpenSynthetic(&incomplete);
  Session session = db->CreateSession();

  QueryOptions options;
  options.deadline = std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1);
  auto sync = session.Execute(kJoinSql, options);
  ASSERT_FALSE(sync.ok());
  EXPECT_TRUE(sync.status().IsDeadlineExceeded()) << sync.status();

  // The async future surfaces the same status through Get().
  ResultSetFuture future = session.ExecuteAsync(kJoinSql, options);
  Result<ResultSet>& async = future.Get();
  ASSERT_FALSE(async.ok());
  EXPECT_TRUE(async.status().IsDeadlineExceeded()) << async.status();

  EXPECT_EQ(db->stats().queries_deadline_exceeded, 2u);
  EXPECT_EQ(db->models_trained(), 0u);
}

TEST(ExecControlTest, MaxCompletedRowsBudgetIsEnforced) {
  Database incomplete = MakeIncompleteSynthetic(509);
  EngineConfig config = FastConfig();
  config.enable_cache = false;
  auto db = OpenSynthetic(&incomplete, config);
  Session session = db->CreateSession();

  // Baseline: how many tuples does the unbounded completion synthesize?
  auto unbounded = session.Execute(kJoinSql);
  ASSERT_TRUE(unbounded.ok()) << unbounded.status();
  const uint64_t needed = unbounded->stats().tuples_completed;
  ASSERT_GT(needed, 1u);

  // A budget below that must fail with ResourceExhausted...
  QueryOptions tight;
  tight.max_completed_rows = 1;
  auto capped = session.Execute(kJoinSql, tight);
  ASSERT_FALSE(capped.ok());
  EXPECT_TRUE(capped.status().IsResourceExhausted()) << capped.status();

  // ...while a budget at the exact need succeeds bit-identically.
  QueryOptions exact;
  exact.max_completed_rows = needed;
  auto fits = session.Execute(kJoinSql, exact);
  ASSERT_TRUE(fits.ok()) << fits.status();
  EXPECT_EQ(*fits, *unbounded);
  EXPECT_EQ(fits->stats().tuples_completed, needed);
}

TEST(ExecControlTest, CachePolicyBypassAndReadOnly) {
  Database incomplete = MakeIncompleteSynthetic(511);
  auto db = OpenSynthetic(&incomplete);  // cache enabled (default)
  Session session = db->CreateSession();

  // kBypass never reads nor writes: two bypass runs, still nothing cached.
  QueryOptions bypass;
  bypass.cache_policy = CachePolicy::kBypass;
  auto b1 = session.Execute(kJoinSql, bypass);
  ASSERT_TRUE(b1.ok()) << b1.status();
  EXPECT_EQ(b1->stats().cache_hits + b1->stats().cache_misses, 0u);
  EXPECT_EQ(db->cache().size(), 0u);

  // kReadOnly reads but never inserts.
  QueryOptions read_only;
  read_only.cache_policy = CachePolicy::kReadOnly;
  auto r1 = session.Execute(kJoinSql, read_only);
  ASSERT_TRUE(r1.ok()) << r1.status();
  EXPECT_GT(r1->stats().cache_misses, 0u);
  EXPECT_EQ(db->cache().size(), 0u) << "read-only must not populate";

  // Default policy populates; the next default run hits.
  auto d1 = session.Execute(kJoinSql);
  ASSERT_TRUE(d1.ok()) << d1.status();
  EXPECT_GT(db->cache().size(), 0u);
  auto d2 = session.Execute(kJoinSql);
  ASSERT_TRUE(d2.ok()) << d2.status();
  EXPECT_GT(d2->stats().cache_hits, 0u);
  EXPECT_EQ(*d2, *d1);

  // And a read-only run now hits too.
  auto r2 = session.Execute(kJoinSql, read_only);
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_GT(r2->stats().cache_hits, 0u);
}

TEST(ExecControlTest, ExecStatsBreakDownThePipeline) {
  Database incomplete = MakeIncompleteSynthetic(513);
  EngineConfig config = FastConfig();
  config.enable_cache = false;
  auto db = OpenSynthetic(&incomplete, config);
  Session session = db->CreateSession();

  auto rs = session.Execute(kJoinSql);
  ASSERT_TRUE(rs.ok()) << rs.status();
  const ExecStats& stats = rs->stats();
  EXPECT_GT(stats.parse_seconds, 0.0);
  // First touch of the incomplete table pays path selection (candidate
  // training + the probe sweep behind the shared latch) — reported on its
  // own, NOT inside sample_seconds.
  EXPECT_GT(stats.selection_seconds, 0.0);
  EXPECT_GT(stats.sample_seconds, 0.0);
  EXPECT_GT(stats.aggregate_seconds, 0.0);
  EXPECT_GT(stats.tuples_completed, 0u);
  EXPECT_GT(stats.models_consulted, 0u);
  EXPECT_GT(stats.arenas_leased, 0u);
  EXPECT_FALSE(stats.ToString().empty());
  EXPECT_NE(stats.ToString().find("selection="), std::string::npos);

  // Prepared queries skip parsing; their parse time is zero by contract.
  auto prepared = session.Prepare(kJoinSql);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  auto via_prepared = prepared->Run();
  ASSERT_TRUE(via_prepared.ok()) << via_prepared.status();
  EXPECT_EQ(via_prepared->stats().parse_seconds, 0.0);
  EXPECT_EQ(*via_prepared, *rs);

  // Db-level aggregation sums the finished queries.
  const Db::Stats db_stats = db->stats();
  EXPECT_EQ(db_stats.queries_ok, 2u);
  EXPECT_GE(db_stats.totals.tuples_completed,
            stats.tuples_completed + via_prepared->stats().tuples_completed);
}

TEST(ExecControlTest, ClassicalExecutorHonorsOptionsToo) {
  Database incomplete = MakeIncompleteSynthetic(515);

  QueryOptions cancelled;
  cancelled.cancel = CancellationToken::Cancellable();
  cancelled.cancel.RequestCancel();
  auto r = ExecuteSql(incomplete, kJoinSql, cancelled);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled());

  QueryOptions expired;
  expired.deadline = std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1);
  auto d = ExecuteSql(incomplete, kJoinSql, expired);
  ASSERT_FALSE(d.ok());
  EXPECT_TRUE(d.status().IsDeadlineExceeded());

  auto ok = ExecuteSql(incomplete, kJoinSql);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_GT(ok->stats().parse_seconds, 0.0);
  EXPECT_GT(ok->num_rows(), 0u);
}

TEST(ExecControlTest, CancelledRunLeaksNoScratchArenas) {
  Database incomplete = MakeIncompleteSynthetic(517);
  EngineConfig config = FastConfig();
  config.enable_cache = false;
  auto db = OpenSynthetic(&incomplete, config);
  Session session = db->CreateSession();
  auto warmup = session.Execute(kJoinSql);
  ASSERT_TRUE(warmup.ok()) << warmup.status();

  auto cands = db->CandidatesFor("table_b");
  ASSERT_TRUE(cands.ok()) << cands.status();

  // Snapshot each model's lease/idle accounting, run a query that dies
  // mid-sampling, and verify every lease taken during the cancelled run was
  // returned to its pool (RAII leases unwind on the error path). This test
  // is single-threaded, so no arena may remain checked out afterwards:
  // idle must not shrink, and ASan would flag any dropped-on-the-floor
  // allocation.
  std::vector<size_t> leases_before;
  std::vector<size_t> idle_before;
  for (const auto& cand : *cands) {
    const InferenceScratchPool& pool = cand.model->scratch_pool();
    leases_before.push_back(pool.total_leases());
    idle_before.push_back(pool.idle());
  }

  QueryOptions options;
  options.cancel = CancellationToken::Cancellable();
  options.progress = [&options](const ExecStats& stats) {
    if (stats.arenas_leased > 0) options.cancel.RequestCancel();
  };
  auto r = session.Execute(kJoinSql, options);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled()) << r.status();

  size_t new_leases = 0;
  for (size_t i = 0; i < cands->size(); ++i) {
    const InferenceScratchPool& pool = (*cands)[i].model->scratch_pool();
    new_leases += pool.total_leases() - leases_before[i];
    EXPECT_GE(pool.idle() + pool.dropped(), idle_before[i])
        << "candidate " << i << ": an arena leased during the cancelled run "
        << "was not returned";
  }
  EXPECT_GT(new_leases, 0u) << "the cancelled run did lease arenas";

  // The pools still serve: the same query answers identically afterwards.
  auto again = session.Execute(kJoinSql);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(*again, *warmup);
}

TEST(InferenceScratchPoolTest, MaxIdleCapDropsExcessArenas) {
  InferenceScratchPool pool(/*max_idle=*/2);
  EXPECT_EQ(pool.max_idle(), 2u);
  {
    InferenceScratchPool::Lease a = pool.Acquire();
    InferenceScratchPool::Lease b = pool.Acquire();
    InferenceScratchPool::Lease c = pool.Acquire();
    EXPECT_EQ(pool.total_leases(), 3u);
  }
  // Three returned, but only two retained; the third was freed.
  EXPECT_EQ(pool.idle(), 2u);
  EXPECT_EQ(pool.dropped(), 1u);

  // Tightening the cap frees surplus idle arenas immediately.
  pool.set_max_idle(1);
  EXPECT_EQ(pool.idle(), 1u);

  // An unbounded pool (0) retains everything.
  InferenceScratchPool unbounded(/*max_idle=*/0);
  {
    std::vector<InferenceScratchPool::Lease> leases;
    for (int i = 0; i < 16; ++i) leases.push_back(unbounded.Acquire());
  }
  EXPECT_EQ(unbounded.idle(), 16u);
  EXPECT_EQ(unbounded.dropped(), 0u);
}

TEST(FutureTest, WaitForTimesOutWithoutClaimingTheTask) {
  ThreadPool pool(0);  // zero workers: nobody runs the task but Get()
  Future<int> f = Future<int>::Async(pool, [] { return 7; });
  EXPECT_FALSE(f.WaitFor(std::chrono::milliseconds(5)))
      << "WaitFor must not run the task inline";
  EXPECT_EQ(f.Get(), 7) << "Get() still claims and runs it";
  EXPECT_TRUE(f.WaitFor(std::chrono::milliseconds(0)));
}

}  // namespace
}  // namespace restore
