// End-to-end tests of the epoll HTTP server over real loopback sockets:
// routing, chunked query streaming, keep-alive, admission shedding (503),
// deadline mapping (504), disconnect-triggered cancellation, multi-tenancy,
// and the /metrics exposition.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "datagen/setups.h"
#include "restore/db.h"
#include "server/http.h"
#include "server/server.h"

namespace restore {
namespace server {
namespace {

// ---- Shared fixture Db ------------------------------------------------------

EngineConfig FastConfig() {
  EngineConfig config;
  config.model.epochs = 6;
  config.model.hidden_dim = 24;
  config.model.embed_dim = 4;
  config.model.max_bins = 12;
  config.model.min_train_steps = 150;
  config.max_candidates = 2;
  return config;
}

std::shared_ptr<Db> OpenHousing(uint64_t seed,
                                RefreshPolicy policy = RefreshPolicy()) {
  auto complete = BuildCompleteDatabase("housing", seed, 0.25);
  EXPECT_TRUE(complete.ok());
  auto setup = SetupByName("H1");
  EXPECT_TRUE(setup.ok());
  auto incomplete = ApplySetup(*complete, *setup, 0.5, 0.5, seed + 1);
  EXPECT_TRUE(incomplete.ok());
  // The database must outlive the Db; keep it alive via a static pool.
  static std::vector<std::unique_ptr<Database>> databases;
  databases.push_back(std::make_unique<Database>(std::move(*incomplete)));
  auto db = Db::Open(databases.back().get(), AnnotationFor(*setup),
                     DbOptions().WithEngine(FastConfig()).WithRefreshPolicy(
                         policy));
  EXPECT_TRUE(db.ok()) << db.status();
  return *db;
}

/// One process-wide Db shared by the tests (opening is cheap, but the
/// underlying data generation is not worth repeating per test).
std::shared_ptr<Db> SharedDb() {
  static std::shared_ptr<Db> db = OpenHousing(9001);
  return db;
}

/// neighborhood is COMPLETE under H1, so this query takes the classical
/// path: no model training, fast and deterministic.
const char kCompleteTableSql[] =
    "SELECT COUNT(*) FROM neighborhood GROUP BY state;";

// ---- Minimal blocking HTTP client ------------------------------------------

int ConnectTo(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)),
      0)
      << std::strerror(errno);
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string RequestText(const std::string& method, const std::string& target,
                        const std::string& body,
                        const std::vector<std::string>& extra_headers = {}) {
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  out += "Host: localhost\r\n";
  for (const std::string& h : extra_headers) out += h + "\r\n";
  if (!body.empty() || method == "POST") {
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

struct ClientResponse {
  int status = 0;
  std::string headers;  // raw header block
  std::string body;     // chunked bodies are de-chunked
  bool chunked = false;

  bool HasHeader(const std::string& needle) const {
    return headers.find(needle) != std::string::npos;
  }
};

/// Reads exactly one HTTP response (Content-Length or chunked framing) off
/// the socket. Returns false on EOF/error before a complete response.
/// `carry` (optional) holds surplus bytes of pipelined responses between
/// calls.
bool ReadResponse(int fd, ClientResponse* out, std::string* carry = nullptr) {
  std::string buf = carry != nullptr ? *carry : std::string();
  char tmp[4096];
  size_t head_end = std::string::npos;
  while (true) {
    head_end = buf.find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    const ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
    if (n <= 0) return false;
    buf.append(tmp, static_cast<size_t>(n));
  }
  out->headers = buf.substr(0, head_end + 4);
  std::string rest = buf.substr(head_end + 4);
  if (out->headers.compare(0, 9, "HTTP/1.1 ") != 0) return false;
  out->status = std::atoi(out->headers.c_str() + 9);

  auto NeedMore = [&](void) -> bool {
    const ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
    if (n <= 0) return false;
    rest.append(tmp, static_cast<size_t>(n));
    return true;
  };

  if (out->HasHeader("Transfer-Encoding: chunked")) {
    out->chunked = true;
    out->body.clear();
    size_t pos = 0;
    while (true) {
      size_t line_end;
      while ((line_end = rest.find("\r\n", pos)) == std::string::npos) {
        if (!NeedMore()) return false;
      }
      const size_t size =
          std::strtoul(rest.substr(pos, line_end - pos).c_str(), nullptr, 16);
      pos = line_end + 2;
      if (size == 0) {
        while (rest.size() < pos + 2) {
          if (!NeedMore()) return false;
        }
        if (carry != nullptr) *carry = rest.substr(pos + 2);
        return true;  // final chunk + trailing CRLF
      }
      while (rest.size() < pos + size + 2) {
        if (!NeedMore()) return false;
      }
      out->body += rest.substr(pos, size);
      pos += size + 2;
    }
  }

  size_t content_length = 0;
  const size_t cl = out->headers.find("Content-Length: ");
  if (cl != std::string::npos) {
    content_length = std::strtoul(out->headers.c_str() + cl + 16, nullptr, 10);
  }
  while (rest.size() < content_length) {
    if (!NeedMore()) return false;
  }
  out->body = rest.substr(0, content_length);
  if (carry != nullptr) *carry = rest.substr(content_length);
  return true;
}

ClientResponse RoundTrip(int fd, const std::string& request) {
  ClientResponse response;
  EXPECT_TRUE(SendAll(fd, request));
  EXPECT_TRUE(ReadResponse(fd, &response));
  return response;
}

bool WaitFor(const std::function<bool()>& pred, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

/// A gate the test_pre_query_hook blocks on, so tests hold queries in
/// flight deterministically.
class HookGate {
 public:
  void Block() {
    std::unique_lock<std::mutex> lock(mu_);
    ++entered_;
    cv_.notify_all();
    cv_.wait(lock, [this] { return open_; });
  }
  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }
  int entered() {
    std::lock_guard<std::mutex> lock(mu_);
    return entered_;
  }
  bool WaitForEntered(int n, int timeout_ms = 5000) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                        [&] { return entered_ >= n; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int entered_ = 0;
  bool open_ = false;
};

/// Starts a server on an ephemeral port over the shared Db.
struct TestServer {
  TenantRegistry tenants;
  std::unique_ptr<HttpServer> http;

  explicit TestServer(ServerConfig config = ServerConfig(),
                      TenantOptions default_quota = TenantOptions()) {
    EXPECT_TRUE(tenants.Add("h1", SharedDb(), default_quota).ok());
    config.port = 0;
    http = std::make_unique<HttpServer>(&tenants, config);
    Status s = http->Start();
    EXPECT_TRUE(s.ok()) << s;
  }
  ~TestServer() { http->Stop(); }
  uint16_t port() const { return http->port(); }
};

// ---- Tests ------------------------------------------------------------------

TEST(HttpServerTest, HealthzAndUnknownRoute) {
  TestServer server;
  const int fd = ConnectTo(server.port());
  auto health = RoundTrip(fd, RequestText("GET", "/healthz", ""));
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  // Keep-alive: the same connection serves the next request.
  auto missing = RoundTrip(fd, RequestText("GET", "/nope", ""));
  EXPECT_EQ(missing.status, 404);
  EXPECT_NE(missing.body.find("NotFound"), std::string::npos);

  auto wrong_method = RoundTrip(fd, RequestText("GET", "/v1/query", ""));
  EXPECT_EQ(wrong_method.status, 405);
  ::close(fd);

  const HttpServerStats stats = server.http->stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.requests_total, 3u);
}

TEST(HttpServerTest, QueryStreamsChunkedJsonRows) {
  TestServer server;
  const int fd = ConnectTo(server.port());
  auto response =
      RoundTrip(fd, RequestText("POST", "/v1/query", kCompleteTableSql));
  EXPECT_EQ(response.status, 200);
  EXPECT_TRUE(response.chunked) << response.headers;
  EXPECT_NE(response.body.find("\"key_columns\":[\"state\"]"),
            std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"value_columns\":[\"COUNT(*)\"]"),
            std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"rows\":["), std::string::npos);
  EXPECT_NE(response.body.find("\"row_count\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"stats\":{"), std::string::npos);
  EXPECT_EQ(response.body.find("\"row_count\":0"), std::string::npos)
      << "expected a non-empty group-by result";

  // Keep-alive across a query response: run it again on the same socket.
  // Data (everything before the per-query stats) is identical.
  auto again =
      RoundTrip(fd, RequestText("POST", "/v1/query/h1", kCompleteTableSql));
  EXPECT_EQ(again.status, 200);
  EXPECT_EQ(again.body.substr(0, again.body.find("\"stats\"")),
            response.body.substr(0, response.body.find("\"stats\"")));
  ::close(fd);
}

TEST(HttpServerTest, ParseErrorAnswers400) {
  TestServer server;
  const int fd = ConnectTo(server.port());
  auto response = RoundTrip(fd, RequestText("POST", "/v1/query", "nonsense"));
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(response.body.find("ParseError"), std::string::npos)
      << response.body;
  ::close(fd);
}

TEST(HttpServerTest, MalformedHttpAnswers400AndCloses) {
  TestServer server;
  const int fd = ConnectTo(server.port());
  ClientResponse response;
  ASSERT_TRUE(SendAll(fd, "this is not http\r\n\r\n"));
  ASSERT_TRUE(ReadResponse(fd, &response));
  EXPECT_EQ(response.status, 400);
  EXPECT_TRUE(response.HasHeader("Connection: close"));
  // Server closes: the next read returns EOF.
  char c;
  EXPECT_EQ(::recv(fd, &c, 1, 0), 0);
  ::close(fd);
  EXPECT_TRUE(WaitFor([&] { return server.http->stats().bad_requests == 1; }));
}

TEST(HttpServerTest, ExpiredDeadlineAnswers504) {
  TestServer server;
  const uint64_t expired_before =
      SharedDb()->stats().queries_deadline_exceeded;
  const int fd = ConnectTo(server.port());
  auto response = RoundTrip(fd, RequestText("POST", "/v1/query",
                                            kCompleteTableSql,
                                            {"X-Deadline-Ms: 0"}));
  EXPECT_EQ(response.status, 504);
  EXPECT_NE(response.body.find("DeadlineExceeded"), std::string::npos)
      << response.body;
  // The expiry is recorded in the Db's own accounting.
  EXPECT_GT(SharedDb()->stats().queries_deadline_exceeded, expired_before);

  auto bad = RoundTrip(fd, RequestText("POST", "/v1/query", kCompleteTableSql,
                                       {"X-Deadline-Ms: soon"}));
  EXPECT_EQ(bad.status, 400);
  ::close(fd);
}

TEST(HttpServerTest, UnknownTenantAnswers404) {
  TestServer server;
  const int fd = ConnectTo(server.port());
  auto response =
      RoundTrip(fd, RequestText("POST", "/v1/query/nope", kCompleteTableSql));
  EXPECT_EQ(response.status, 404);
  EXPECT_NE(response.body.find("unknown tenant"), std::string::npos);
  ::close(fd);
}

TEST(HttpServerTest, AdmissionOverflowSheds503WithoutSession) {
  ServerConfig config;
  config.max_inflight_queries = 2;
  config.query_threads = 2;
  TestServer server(config);
  auto gate = std::make_shared<HookGate>();
  server.http->set_test_pre_query_hook([gate] { gate->Block(); });

  const Db::Stats db_before = SharedDb()->stats();
  const uint64_t db_queries_before =
      db_before.queries_ok + db_before.queries_cancelled +
      db_before.queries_deadline_exceeded + db_before.queries_failed;

  // Fill both in-flight slots; the hook holds them on the workers.
  const int fd1 = ConnectTo(server.port());
  const int fd2 = ConnectTo(server.port());
  ASSERT_TRUE(SendAll(fd1, RequestText("POST", "/v1/query",
                                       kCompleteTableSql)));
  ASSERT_TRUE(SendAll(fd2, RequestText("POST", "/v1/query",
                                       kCompleteTableSql)));
  ASSERT_TRUE(gate->WaitForEntered(2));

  // The third query is shed with 503 straight from the event thread: no
  // Session is created, no Db query is recorded, and the response arrives
  // while the other two queries are still blocked.
  const int fd3 = ConnectTo(server.port());
  auto shed = RoundTrip(fd3, RequestText("POST", "/v1/query",
                                         kCompleteTableSql));
  EXPECT_EQ(shed.status, 503);
  EXPECT_NE(shed.body.find("ResourceExhausted"), std::string::npos);
  EXPECT_EQ(server.http->stats().queries_shed_global, 1u);
  EXPECT_EQ(server.http->stats().queries_inflight, 2u);
  {
    const Db::Stats now = SharedDb()->stats();
    EXPECT_EQ(now.queries_ok + now.queries_cancelled +
                  now.queries_deadline_exceeded + now.queries_failed,
              db_queries_before)
        << "a shed query must never reach the Db";
  }

  // Shedding keeps the connection alive.
  auto health = RoundTrip(fd3, RequestText("GET", "/healthz", ""));
  EXPECT_EQ(health.status, 200);

  gate->Open();
  ClientResponse r1, r2;
  EXPECT_TRUE(ReadResponse(fd1, &r1));
  EXPECT_TRUE(ReadResponse(fd2, &r2));
  EXPECT_EQ(r1.status, 200);
  EXPECT_EQ(r2.status, 200);
  EXPECT_TRUE(WaitFor(
      [&] { return server.http->stats().queries_inflight == 0; }));
  ::close(fd1);
  ::close(fd2);
  ::close(fd3);
}

TEST(HttpServerTest, TenantQuotaShedsIndependently) {
  ServerConfig config;
  config.max_inflight_queries = 8;
  config.query_threads = 2;
  TenantOptions quota;
  quota.max_inflight_queries = 1;
  TestServer server(config, quota);
  auto gate = std::make_shared<HookGate>();
  server.http->set_test_pre_query_hook([gate] { gate->Block(); });

  const int fd1 = ConnectTo(server.port());
  ASSERT_TRUE(SendAll(fd1, RequestText("POST", "/v1/query/h1",
                                       kCompleteTableSql)));
  ASSERT_TRUE(gate->WaitForEntered(1));

  const int fd2 = ConnectTo(server.port());
  auto shed = RoundTrip(fd2, RequestText("POST", "/v1/query/h1",
                                         kCompleteTableSql));
  EXPECT_EQ(shed.status, 503);
  EXPECT_NE(shed.body.find("quota"), std::string::npos) << shed.body;
  EXPECT_EQ(server.http->stats().queries_shed_tenant, 1u);
  EXPECT_EQ(server.http->stats().queries_shed_global, 0u);

  gate->Open();
  ClientResponse r1;
  EXPECT_TRUE(ReadResponse(fd1, &r1));
  EXPECT_EQ(r1.status, 200);
  ::close(fd1);
  ::close(fd2);
}

TEST(HttpServerTest, ClientDisconnectCancelsInflightQuery) {
  ServerConfig config;
  config.query_threads = 1;
  TestServer server(config);
  auto gate = std::make_shared<HookGate>();
  server.http->set_test_pre_query_hook([gate] { gate->Block(); });

  const uint64_t cancelled_before = SharedDb()->stats().queries_cancelled;

  const int fd = ConnectTo(server.port());
  ASSERT_TRUE(SendAll(fd, RequestText("POST", "/v1/query",
                                      kCompleteTableSql)));
  ASSERT_TRUE(gate->WaitForEntered(1));

  // Client walks away mid-query: the event loop sees the hangup and
  // requests cancellation of the in-flight token.
  ::close(fd);
  EXPECT_TRUE(WaitFor(
      [&] { return server.http->stats().disconnect_cancels == 1; }));

  // Release the worker; the engine observes the cancelled token and the Db
  // records the cancellation.
  gate->Open();
  EXPECT_TRUE(WaitFor([&] {
    return SharedDb()->stats().queries_cancelled > cancelled_before;
  }));
  EXPECT_TRUE(WaitFor(
      [&] { return server.http->stats().queries_inflight == 0; }));
}

TEST(HttpServerTest, MetricsExposesServerAndTenantFamilies) {
  TestServer server;
  const int fd = ConnectTo(server.port());
  // One query first so the counters are non-trivial.
  auto query =
      RoundTrip(fd, RequestText("POST", "/v1/query", kCompleteTableSql));
  EXPECT_EQ(query.status, 200);

  auto metrics = RoundTrip(fd, RequestText("GET", "/metrics", ""));
  EXPECT_EQ(metrics.status, 200);
  EXPECT_TRUE(metrics.HasHeader("text/plain; version=0.0.4"))
      << metrics.headers;
  const std::string& text = metrics.body;
  EXPECT_NE(text.find("# TYPE restore_server_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE restore_server_connections_active gauge"),
            std::string::npos);
  EXPECT_NE(text.find("restore_server_queries_admitted_total 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("restore_queries_total{tenant=\"h1\",outcome=\"ok\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(
      text.find("restore_server_queries_shed_total{scope=\"global\"} 0\n"),
      std::string::npos);
  // Single HELP per family even with per-scope/per-tenant label sets.
  const std::string help = "# HELP restore_server_queries_shed_total";
  EXPECT_EQ(text.find(help), text.rfind(help));
  ::close(fd);
}

TEST(HttpServerTest, PipelinedRequestsAnswerInOrder) {
  TestServer server;
  const int fd = ConnectTo(server.port());
  ASSERT_TRUE(SendAll(fd, RequestText("GET", "/healthz", "") +
                              RequestText("GET", "/healthz", "") +
                              RequestText("GET", "/nope", "")));
  ClientResponse r1, r2, r3;
  std::string carry;
  ASSERT_TRUE(ReadResponse(fd, &r1, &carry));
  ASSERT_TRUE(ReadResponse(fd, &r2, &carry));
  ASSERT_TRUE(ReadResponse(fd, &r3, &carry));
  EXPECT_EQ(r1.status, 200);
  EXPECT_EQ(r2.status, 200);
  EXPECT_EQ(r3.status, 404);
  ::close(fd);
}

TEST(HttpServerTest, ManyConcurrentKeepAliveConnections) {
  ServerConfig config;
  config.event_threads = 2;
  TestServer server(config);
  constexpr int kConnections = 128;
  std::vector<int> fds;
  fds.reserve(kConnections);
  for (int i = 0; i < kConnections; ++i) fds.push_back(ConnectTo(server.port()));
  // Every connection stays open while each serves requests in turn.
  for (int round = 0; round < 2; ++round) {
    for (int fd : fds) {
      auto response = RoundTrip(fd, RequestText("GET", "/healthz", ""));
      ASSERT_EQ(response.status, 200);
    }
  }
  const HttpServerStats stats = server.http->stats();
  EXPECT_EQ(stats.connections_accepted, static_cast<uint64_t>(kConnections));
  EXPECT_EQ(stats.connections_active, static_cast<uint64_t>(kConnections));
  EXPECT_EQ(stats.requests_total, static_cast<uint64_t>(2 * kConnections));
  for (int fd : fds) ::close(fd);
}

TEST(HttpServerTest, ConnectionCapSheds) {
  ServerConfig config;
  config.max_connections = 2;
  TestServer server(config);
  const int fd1 = ConnectTo(server.port());
  const int fd2 = ConnectTo(server.port());
  EXPECT_EQ(RoundTrip(fd1, RequestText("GET", "/healthz", "")).status, 200);
  EXPECT_EQ(RoundTrip(fd2, RequestText("GET", "/healthz", "")).status, 200);

  // Over the cap: the server accepts and immediately closes.
  const int fd3 = ConnectTo(server.port());
  char c;
  EXPECT_EQ(::recv(fd3, &c, 1, 0), 0);
  EXPECT_TRUE(
      WaitFor([&] { return server.http->stats().connections_shed == 1; }));
  ::close(fd1);
  ::close(fd2);
  ::close(fd3);
}

TEST(HttpServerTest, SetGlobalWidthWhileServing) {
  // Satellite of the serving layer: resizing the shared NN pool while a
  // server is live (its query workers may hold a reference from Global())
  // must be safe and observable through Width().
  TestServer server;
  const int fd = ConnectTo(server.port());
  EXPECT_EQ(RoundTrip(fd, RequestText("POST", "/v1/query",
                                      kCompleteTableSql)).status,
            200);
  ThreadPool::SetGlobalWidth(2);
  EXPECT_EQ(ThreadPool::GlobalWidth(), 2u);
  EXPECT_EQ(ThreadPool::Global().Width(), 2u);
  EXPECT_EQ(RoundTrip(fd, RequestText("POST", "/v1/query",
                                      kCompleteTableSql)).status,
            200);
  ThreadPool::SetGlobalWidth(0);  // restore the environment default
  EXPECT_EQ(RoundTrip(fd, RequestText("GET", "/healthz", "")).status, 200);
  ::close(fd);
}

TEST(HttpServerTest, IngestAppendsRowsVisibleToQueries) {
  TestServer server;
  const int fd = ConnectTo(server.port());

  // neighborhood is COMPLETE under H1, so the re-query below takes the
  // classical path and must reflect the appended rows exactly. The state
  // "zz" does not exist in the generated data.
  const std::string rows =
      "[[909000,\"zz\",1.5,\"urban\",null],"
      "[909001,\"zz\",2.5,\"rural\",null],"
      "[909002,\"zz\",3.5,\"urban\",null]]";
  auto ingest =
      RoundTrip(fd, RequestText("POST", "/v1/ingest/h1/neighborhood", rows));
  EXPECT_EQ(ingest.status, 200) << ingest.body;
  EXPECT_NE(ingest.body.find("\"appended\":3"), std::string::npos)
      << ingest.body;
  EXPECT_NE(ingest.body.find("\"epoch\":"), std::string::npos);

  auto query =
      RoundTrip(fd, RequestText("POST", "/v1/query", kCompleteTableSql));
  EXPECT_EQ(query.status, 200);
  EXPECT_NE(query.body.find("\"zz\""), std::string::npos) << query.body;
  ::close(fd);
}

TEST(HttpServerTest, IngestStoresLargeInt64LiteralsExactly) {
  TestServer server;
  const int fd = ConnectTo(server.port());

  // Both ids are exactly representable as int64 but NOT as double: a parse
  // that narrows through strtod would silently store 9007199254740992 and
  // 1234567890123456790, and an integrality check on the already-rounded
  // double cannot notice.
  const int64_t kBig1 = 9007199254740993LL;  // 2^53 + 1
  const int64_t kBig2 = 1234567890123456789LL;
  auto ingest = RoundTrip(
      fd, RequestText("POST", "/v1/ingest/h1/neighborhood",
                      "[[9007199254740993,\"zy\",1.5,\"urban\",null],"
                      "[1234567890123456789,\"zy\",2.5,\"rural\",null]]"));
  EXPECT_EQ(ingest.status, 200) << ingest.body;

  const std::shared_ptr<const Database> data = SharedDb()->data();
  const Table* table = *data->GetTable("neighborhood");
  const Column* id = *table->GetColumn("id");
  const size_t rows = table->NumRows();
  ASSERT_GE(rows, 2u);
  EXPECT_EQ(id->GetInt64(rows - 2), kBig1);
  EXPECT_EQ(id->GetInt64(rows - 1), kBig2);

  // One past int64 max: rejected outright, never wrapped or saturated.
  auto overflow = RoundTrip(
      fd, RequestText("POST", "/v1/ingest/h1/neighborhood",
                      "[[9223372036854775808,\"zy\",1.5,\"urban\",null]]"));
  EXPECT_EQ(overflow.status, 400) << overflow.body;
  EXPECT_NE(overflow.body.find("int64 range"), std::string::npos)
      << overflow.body;
  ::close(fd);
}

TEST(HttpServerTest, IngestRejectsBadPayloadsWithoutPublishing) {
  TestServer server;
  const int fd = ConnectTo(server.port());

  // Malformed JSON.
  auto bad_json = RoundTrip(
      fd, RequestText("POST", "/v1/ingest/h1/neighborhood", "[[1,"));
  EXPECT_EQ(bad_json.status, 400) << bad_json.body;
  // Objects are rejected: rows are positional arrays.
  auto object = RoundTrip(
      fd, RequestText("POST", "/v1/ingest/h1/neighborhood", "{\"id\": 1}"));
  EXPECT_EQ(object.status, 400);
  // Top level must be an array.
  auto scalar =
      RoundTrip(fd, RequestText("POST", "/v1/ingest/h1/neighborhood", "42"));
  EXPECT_EQ(scalar.status, 400);
  // Type mismatch: categorical column fed a number.
  auto typed = RoundTrip(
      fd, RequestText("POST", "/v1/ingest/h1/neighborhood",
                      "[[909100,7,1.5,\"urban\",null]]"));
  EXPECT_EQ(typed.status, 400);
  EXPECT_NE(typed.body.find("column 'state'"), std::string::npos)
      << typed.body;

  // Routing errors.
  EXPECT_EQ(RoundTrip(fd, RequestText("POST", "/v1/ingest/h1/no_such_table",
                                      "[[1]]"))
                .status,
            404);
  EXPECT_EQ(RoundTrip(fd, RequestText("POST", "/v1/ingest/nobody/neighborhood",
                                      "[[1]]"))
                .status,
            404);
  EXPECT_EQ(RoundTrip(fd, RequestText("GET", "/v1/ingest/h1/neighborhood", ""))
                .status,
            405);
  ::close(fd);
}

TEST(HttpServerTest, ModelsEndpointRendersFreshness) {
  TestServer server;
  const int fd = ConnectTo(server.port());

  auto all = RoundTrip(fd, RequestText("GET", "/v1/models", ""));
  EXPECT_EQ(all.status, 200);
  EXPECT_TRUE(all.HasHeader("application/json")) << all.headers;
  EXPECT_NE(all.body.find("\"tenants\""), std::string::npos) << all.body;
  EXPECT_NE(all.body.find("\"tenant\":\"h1\""), std::string::npos);
  EXPECT_NE(all.body.find("\"epoch\":"), std::string::npos);

  auto one = RoundTrip(fd, RequestText("GET", "/v1/models/h1", ""));
  EXPECT_EQ(one.status, 200);
  EXPECT_NE(one.body.find("\"models\""), std::string::npos) << one.body;

  EXPECT_EQ(RoundTrip(fd, RequestText("GET", "/v1/models/nobody", "")).status,
            404);
  EXPECT_EQ(RoundTrip(fd, RequestText("POST", "/v1/models", "x")).status, 405);
  ::close(fd);
}

TEST(HttpServerTest, QueueModeAdmitsQueuedRequestWhenSlotFrees) {
  ServerConfig config;
  config.max_inflight_queries = 1;
  config.admission_queue_depth = 4;
  config.admission_queue_wait_ms = 5000;
  config.query_threads = 2;
  TestServer server(config);
  auto gate = std::make_shared<HookGate>();
  server.http->set_test_pre_query_hook([gate] { gate->Block(); });

  // Fill the single slot; the hook holds the query on a worker.
  const int fd1 = ConnectTo(server.port());
  ASSERT_TRUE(SendAll(fd1, RequestText("POST", "/v1/query",
                                       kCompleteTableSql)));
  ASSERT_TRUE(gate->WaitForEntered(1));

  // The second query parks in the admission FIFO instead of being shed.
  const int fd2 = ConnectTo(server.port());
  ASSERT_TRUE(SendAll(fd2, RequestText("POST", "/v1/query",
                                       kCompleteTableSql)));
  ASSERT_TRUE(WaitFor(
      [&] { return server.http->stats().admission_queued >= 1; }));
  EXPECT_EQ(server.http->stats().queries_shed_global, 0u);

  // Releasing the first query hands its slot to the queued waiter.
  gate->Open();
  ClientResponse r1, r2;
  EXPECT_TRUE(ReadResponse(fd1, &r1));
  EXPECT_TRUE(ReadResponse(fd2, &r2));
  EXPECT_EQ(r1.status, 200);
  EXPECT_EQ(r2.status, 200);
  EXPECT_EQ(server.http->stats().admission_queue_timeouts, 0u);
  EXPECT_TRUE(WaitFor(
      [&] { return server.http->stats().queries_inflight == 0; }));
  ::close(fd1);
  ::close(fd2);
}

TEST(HttpServerTest, QueueModeTimeoutAnswers503WithRetryAfter) {
  ServerConfig config;
  config.max_inflight_queries = 1;
  config.admission_queue_depth = 2;
  config.admission_queue_wait_ms = 100;
  config.query_threads = 2;
  TestServer server(config);
  auto gate = std::make_shared<HookGate>();
  server.http->set_test_pre_query_hook([gate] { gate->Block(); });

  const int fd1 = ConnectTo(server.port());
  ASSERT_TRUE(SendAll(fd1, RequestText("POST", "/v1/query",
                                       kCompleteTableSql)));
  ASSERT_TRUE(gate->WaitForEntered(1));

  // The queued request outlives its bounded wait: deterministic 503 with a
  // Retry-After hint, while the in-flight query is untouched.
  const int fd2 = ConnectTo(server.port());
  auto timed_out = RoundTrip(fd2, RequestText("POST", "/v1/query",
                                              kCompleteTableSql));
  EXPECT_EQ(timed_out.status, 503);
  EXPECT_TRUE(timed_out.HasHeader("Retry-After: 1")) << timed_out.headers;
  EXPECT_NE(timed_out.body.find("admission queue wait exceeded"),
            std::string::npos)
      << timed_out.body;
  EXPECT_EQ(server.http->stats().admission_queue_timeouts, 1u);
  EXPECT_GE(server.http->stats().admission_queued, 1u);

  gate->Open();
  ClientResponse r1;
  EXPECT_TRUE(ReadResponse(fd1, &r1));
  EXPECT_EQ(r1.status, 200);
  ::close(fd1);
  ::close(fd2);
}

TEST(HttpServerTest, OpenBreakerAnswers503WithRetryAfterAndDegradedHealthz) {
  // Dedicated Db: the injected training failure must not poison the shared
  // fixture's model cache for later tests.
  FaultInjection::Instance().Reset();
  RefreshPolicy policy;
  policy.breaker_failure_threshold = 1;
  policy.breaker_open_ms = 60000;  // stays open for the whole test
  TenantRegistry tenants;
  ASSERT_TRUE(tenants.Add("h1", OpenHousing(9100, policy)).ok());
  ServerConfig config;
  config.port = 0;
  HttpServer http(&tenants, config);
  ASSERT_TRUE(http.Start().ok());
  const int fd = ConnectTo(http.port());
  // apartment is incomplete under H1, so this query needs a model.
  const std::string model_sql =
      "SELECT COUNT(*) FROM apartment GROUP BY room_type;";

  // First query: one candidate's training aborts on the injected fault, so
  // path selection fails -> 500, and the failure trips that path's breaker.
  FaultInjection::Instance().Arm("train.path", FaultPolicy::FailFirst(1));
  auto failed = RoundTrip(fd, RequestText("POST", "/v1/query", model_sql));
  EXPECT_EQ(failed.status, 500) << failed.body;
  const uint64_t attempts = FaultInjection::Instance().hits("train.path");
  EXPECT_GE(attempts, 1u);

  // Second query: selection retries (failures are never cached there), hits
  // the open breaker, and the Db fails fast with kUnavailable -> 503 +
  // Retry-After — without a single new training attempt.
  auto unavailable = RoundTrip(fd, RequestText("POST", "/v1/query",
                                               model_sql));
  EXPECT_EQ(unavailable.status, 503) << unavailable.body;
  EXPECT_TRUE(unavailable.HasHeader("Retry-After: 1")) << unavailable.headers;
  EXPECT_NE(unavailable.body.find("circuit breaker"), std::string::npos)
      << unavailable.body;
  EXPECT_EQ(FaultInjection::Instance().hits("train.path"), attempts);

  // /healthz degrades (still HTTP 200: the process is up and serving).
  auto health = RoundTrip(fd, RequestText("GET", "/healthz", ""));
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("degraded"), std::string::npos) << health.body;
  EXPECT_NE(health.body.find("breakers_open(h1)"), std::string::npos)
      << health.body;

  ::close(fd);
  http.Stop();
  FaultInjection::Instance().Reset();
}

TEST(HttpServerTest, StartFailsCleanlyOnBadAddress) {
  TenantRegistry tenants;
  EXPECT_TRUE(tenants.Add("h1", SharedDb()).ok());
  ServerConfig config;
  config.bind_address = "999.999.0.1";
  HttpServer http(&tenants, config);
  Status s = http.Start();
  EXPECT_FALSE(s.ok());
  http.Stop();  // no-op: Start failed without side effects
}

}  // namespace
}  // namespace server
}  // namespace restore
