#include "exec/query.h"

#include <sstream>

namespace restore {

const char* AggregateFuncName(AggregateFunc func) {
  switch (func) {
    case AggregateFunc::kCount:
      return "COUNT";
    case AggregateFunc::kSum:
      return "SUM";
    case AggregateFunc::kAvg:
      return "AVG";
  }
  return "?";
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string Query::ToSql() const {
  std::ostringstream os;
  os << "SELECT ";
  for (size_t i = 0; i < aggregates.size(); ++i) {
    if (i > 0) os << ", ";
    const auto& agg = aggregates[i];
    os << AggregateFuncName(agg.func) << "("
       << (agg.column.empty() ? "*" : agg.column) << ")";
  }
  os << " FROM ";
  for (size_t i = 0; i < tables.size(); ++i) {
    if (i > 0) os << " NATURAL JOIN ";
    os << tables[i];
  }
  if (!predicates.empty()) {
    os << " WHERE ";
    for (size_t i = 0; i < predicates.size(); ++i) {
      if (i > 0) os << " AND ";
      const auto& p = predicates[i];
      os << p.column << " " << CompareOpName(p.op) << " ";
      if (p.param_index >= 0) {
        os << "?";
      } else if (p.literal.is_string()) {
        os << "'" << p.literal.string_value() << "'";
      } else {
        os << p.literal.ToString();
      }
    }
  }
  if (!group_by.empty()) {
    os << " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) os << ", ";
      os << group_by[i];
    }
  }
  os << ";";
  return os.str();
}

}  // namespace restore
