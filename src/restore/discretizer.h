#ifndef RESTORE_RESTORE_DISCRETIZER_H_
#define RESTORE_RESTORE_DISCRETIZER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "storage/column.h"

namespace restore {

/// Maps one column to a finite code domain for the autoregressive models and
/// back:
///  * categorical columns: identity over dictionary codes;
///  * numeric columns (int64/double): equi-depth bins over the observed
///    values; decoding samples uniformly within the bin's observed range
///    (rounded for int64 columns).
///
/// The discretizer is fitted on the AVAILABLE (incomplete) data; codes are
/// the vocabulary the MADE models are trained on.
class ColumnDiscretizer {
 public:
  ColumnDiscretizer() = default;

  /// Fits a discretizer to the non-null values of `column`.
  /// `max_bins` bounds the code domain for numeric columns.
  static Result<ColumnDiscretizer> Fit(const Column& column, int max_bins);

  ColumnType column_type() const { return type_; }
  int vocab_size() const { return vocab_size_; }

  /// Encodes row `row` of `column` (which must have the same type; typically
  /// the fitted column or a joined copy of it). Null cells return -1.
  int32_t EncodeCell(const Column& column, size_t row) const;

  /// Encodes a raw numeric value (numeric discretizers only).
  int32_t EncodeNumeric(double value) const;

  /// Decodes `code` into a cell value appended to `out`. Numeric codes are
  /// jittered uniformly inside the bin; categorical codes append directly.
  void DecodeInto(int32_t code, Column* out, Rng& rng) const;

  /// Representative (expected) numeric value of a code: the bin mean for
  /// numeric columns, the code itself for categorical ones. Used by the
  /// confidence-interval machinery for AVG queries.
  double CodeMean(int32_t code) const;

  /// Serializes the fitted bins (model persistence). Load restores a
  /// discretizer that encodes/decodes bit-identically to the saved one.
  void Save(BinaryWriter* w) const;
  static Result<ColumnDiscretizer> Load(BinaryReader* r);

 private:
  ColumnType type_ = ColumnType::kInt64;
  int vocab_size_ = 0;
  // Numeric bins: value v falls in bin b iff upper_edges_[b-1] < v <=
  // upper_edges_[b] (bin 0 has no lower bound). lo/hi/mean describe the
  // observed values per bin for decoding.
  std::vector<double> upper_edges_;
  std::vector<double> bin_lo_;
  std::vector<double> bin_hi_;
  std::vector<double> bin_mean_;
};

/// Discretizers for a set of columns of one (joined) table, in a fixed
/// attribute order.
class RowEncoder {
 public:
  RowEncoder() = default;

  void Add(std::string qualified_name, ColumnDiscretizer disc) {
    names_.push_back(std::move(qualified_name));
    discs_.push_back(std::move(disc));
  }

  size_t num_attrs() const { return discs_.size(); }
  const std::string& name(size_t i) const { return names_[i]; }
  const ColumnDiscretizer& discretizer(size_t i) const { return discs_[i]; }

  std::vector<int> VocabSizes() const {
    std::vector<int> out;
    out.reserve(discs_.size());
    for (const auto& d : discs_) out.push_back(d.vocab_size());
    return out;
  }

 private:
  std::vector<std::string> names_;
  std::vector<ColumnDiscretizer> discs_;
};

}  // namespace restore

#endif  // RESTORE_RESTORE_DISCRETIZER_H_
