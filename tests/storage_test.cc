// Tests for the storage layer: columns, dictionaries, tables, databases.

#include <gtest/gtest.h>

#include "storage/column.h"
#include "storage/database.h"
#include "storage/table.h"
#include "storage/value.h"

namespace restore {
namespace {

TEST(DictionaryTest, RoundTrip) {
  Dictionary dict;
  EXPECT_EQ(dict.GetOrInsert("x"), 0);
  EXPECT_EQ(dict.GetOrInsert("y"), 1);
  EXPECT_EQ(dict.GetOrInsert("x"), 0);
  EXPECT_EQ(dict.ValueOf(1), "y");
  EXPECT_TRUE(dict.Lookup("y").ok());
  EXPECT_FALSE(dict.Lookup("z").ok());
}

TEST(ColumnTest, NullHandlingPerType) {
  Column ints("i", ColumnType::kInt64);
  ints.AppendInt64(5);
  ints.AppendNull();
  EXPECT_FALSE(ints.IsNull(0));
  EXPECT_TRUE(ints.IsNull(1));

  Column doubles("d", ColumnType::kDouble);
  doubles.AppendDouble(1.5);
  doubles.AppendNull();
  EXPECT_FALSE(doubles.IsNull(0));
  EXPECT_TRUE(doubles.IsNull(1));

  Column cats("c", ColumnType::kCategorical);
  cats.AppendCategorical("a");
  cats.AppendNull();
  EXPECT_FALSE(cats.IsNull(0));
  EXPECT_TRUE(cats.IsNull(1));
}

TEST(ColumnTest, GatherPreservesDictionary) {
  Column cats("c", ColumnType::kCategorical);
  cats.AppendCategorical("a");
  cats.AppendCategorical("b");
  cats.AppendCategorical("a");
  Column sub = cats.Gather({2, 1});
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.dictionary().get(), cats.dictionary().get());
  EXPECT_EQ(sub.dictionary()->ValueOf(sub.GetCode(0)), "a");
  EXPECT_EQ(sub.dictionary()->ValueOf(sub.GetCode(1)), "b");
}

TEST(ColumnTest, AppendValueTypeChecks) {
  Column ints("i", ColumnType::kInt64);
  EXPECT_TRUE(ints.AppendValue(Value::Int64(1)).ok());
  EXPECT_FALSE(ints.AppendValue(Value::Categorical("x")).ok());
  Column doubles("d", ColumnType::kDouble);
  // int64 silently widens to double.
  EXPECT_TRUE(doubles.AppendValue(Value::Int64(2)).ok());
  EXPECT_DOUBLE_EQ(doubles.GetDouble(0), 2.0);
}

Table MakePeople() {
  Table t("people", {{"id", ColumnType::kInt64},
                     {"age", ColumnType::kInt64},
                     {"city", ColumnType::kCategorical}});
  EXPECT_TRUE(
      t.AppendRow({Value::Int64(0), Value::Int64(30), Value::Categorical("ny")})
          .ok());
  EXPECT_TRUE(
      t.AppendRow({Value::Int64(1), Value::Int64(40), Value::Categorical("la")})
          .ok());
  EXPECT_TRUE(
      t.AppendRow({Value::Int64(2), Value::Int64(50), Value::Categorical("ny")})
          .ok());
  return t;
}

TEST(TableTest, AppendRowAndAccessors) {
  Table t = MakePeople();
  EXPECT_EQ(t.NumRows(), 3u);
  EXPECT_EQ(t.NumColumns(), 3u);
  auto idx = t.ColumnIndex("age");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(t.column(idx.value()).GetInt64(1), 40);
  EXPECT_FALSE(t.ColumnIndex("missing").ok());
}

TEST(TableTest, RowCountMismatchRejected) {
  Table t = MakePeople();
  EXPECT_FALSE(t.AppendRow({Value::Int64(9)}).ok());
  Column wrong("w", ColumnType::kInt64);
  wrong.AppendInt64(1);
  EXPECT_FALSE(t.AddColumn(std::move(wrong)).ok());
}

TEST(TableTest, GatherAndProject) {
  Table t = MakePeople();
  Table sub = t.GatherRows({2, 0});
  EXPECT_EQ(sub.NumRows(), 2u);
  auto col = sub.GetColumn("age");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col.value()).GetInt64(0), 50);
  auto projected = t.Project({"city", "id"});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->NumColumns(), 2u);
  EXPECT_EQ(projected->column(0).name(), "city");
}

TEST(TableTest, AppendTableChecksSchema) {
  Table a = MakePeople();
  Table b = MakePeople();
  ASSERT_TRUE(a.AppendTable(b).ok());
  EXPECT_EQ(a.NumRows(), 6u);
  Table c("other", {{"id", ColumnType::kInt64}});
  EXPECT_FALSE(a.AppendTable(c).ok());
}

TEST(TableTest, QualifyColumnNamesIsIdempotent) {
  Table t = MakePeople();
  t.QualifyColumnNames("people");
  EXPECT_EQ(t.column(0).name(), "people.id");
  t.QualifyColumnNames("again");
  EXPECT_EQ(t.column(0).name(), "people.id");
}

Database MakeTwoTableDb() {
  Database db;
  Table parent("parent",
               {{"id", ColumnType::kInt64}, {"x", ColumnType::kDouble}});
  Table child("child", {{"id", ColumnType::kInt64},
                        {"parent_id", ColumnType::kInt64},
                        {"y", ColumnType::kDouble}});
  EXPECT_TRUE(db.AddTable(std::move(parent)).ok());
  EXPECT_TRUE(db.AddTable(std::move(child)).ok());
  EXPECT_TRUE(db.AddForeignKey("child", "parent_id", "parent", "id").ok());
  return db;
}

TEST(DatabaseTest, ForeignKeyLookupsAndFanOut) {
  Database db = MakeTwoTableDb();
  auto fk = db.FindForeignKey("parent", "child");
  ASSERT_TRUE(fk.ok());
  EXPECT_EQ(fk->child_table, "child");
  auto fanout = db.IsFanOut("parent", "child");
  ASSERT_TRUE(fanout.ok());
  EXPECT_TRUE(fanout.value());
  auto reverse = db.IsFanOut("child", "parent");
  ASSERT_TRUE(reverse.ok());
  EXPECT_FALSE(reverse.value());
}

TEST(DatabaseTest, DuplicateTableRejected) {
  Database db = MakeTwoTableDb();
  EXPECT_FALSE(db.AddTable(Table("parent")).ok());
}

TEST(DatabaseTest, JoinPathViaBfs) {
  Database db;
  for (const char* name : {"a", "b", "c", "d"}) {
    Table t(name, {{"id", ColumnType::kInt64},
                   {"ref", ColumnType::kInt64}});
    ASSERT_TRUE(db.AddTable(std::move(t)).ok());
  }
  ASSERT_TRUE(db.AddForeignKey("b", "ref", "a", "id").ok());
  ASSERT_TRUE(db.AddForeignKey("c", "ref", "b", "id").ok());
  ASSERT_TRUE(db.AddForeignKey("d", "ref", "c", "id").ok());
  auto path = db.FindJoinPath("a", "d");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path.value(),
            (std::vector<std::string>{"a", "b", "c", "d"}));
  // Unconnected table.
  Table lonely("z", {{"id", ColumnType::kInt64}});
  ASSERT_TRUE(db.AddTable(std::move(lonely)).ok());
  EXPECT_FALSE(db.FindJoinPath("a", "z").ok());
}

TEST(DatabaseTest, OrderJoinTablesRequiresConnectivity) {
  Database db = MakeTwoTableDb();
  auto ordered = db.OrderJoinTables({"child", "parent"});
  ASSERT_TRUE(ordered.ok());
  EXPECT_EQ(ordered->size(), 2u);
  Table lonely("z", {{"id", ColumnType::kInt64}});
  ASSERT_TRUE(db.AddTable(std::move(lonely)).ok());
  EXPECT_FALSE(db.OrderJoinTables({"parent", "z"}).ok());
}

}  // namespace
}  // namespace restore
