#ifndef RESTORE_DATAGEN_WORKLOAD_H_
#define RESTORE_DATAGEN_WORKLOAD_H_

#include <string>
#include <vector>

namespace restore {

/// One query of the evaluation workload (Table 1 of the paper): the SQL, the
/// setup it is evaluated under, and its display name.
struct WorkloadQuery {
  std::string name;   // "Q1".."Q10"
  std::string setup;  // "H1".."H5" / "M1".."M5"
  std::string sql;
};

/// The ten Housing queries of Table 1, adapted to the generated schema
/// (same aggregates, joins, filters and groupings).
std::vector<WorkloadQuery> HousingWorkload();

/// The ten Movies queries of Table 1 (Q1/Q7's missing FROM clauses in the
/// paper are restored to FROM movie / FROM movie NATURAL JOIN ... company).
std::vector<WorkloadQuery> MovieWorkload();

}  // namespace restore

#endif  // RESTORE_DATAGEN_WORKLOAD_H_
