// Tests for the completion-confidence machinery (Section 6) and the
// completion cache (Section 4.5).

#include <gtest/gtest.h>

#include "restore/cache.h"
#include "restore/confidence.h"
#include "storage/table.h"

namespace restore {
namespace {

TEST(ConfidenceTest, CertaintyZeroWhenModelEqualsMarginal) {
  std::vector<float> p_model{0.3f, 0.7f};
  std::vector<double> p_incomplete{0.3, 0.7};
  EXPECT_NEAR(PredictionCertainty(p_model, p_incomplete), 0.0, 1e-6);
}

TEST(ConfidenceTest, CertaintyGrowsWithDivergence) {
  std::vector<double> marginal{0.5, 0.5};
  const double weak = PredictionCertainty({0.6f, 0.4f}, marginal);
  const double strong = PredictionCertainty({0.99f, 0.01f}, marginal);
  EXPECT_GT(strong, weak);
  EXPECT_GT(weak, 0.0);
  EXPECT_LT(strong, 1.0);
}

TEST(ConfidenceTest, CountIntervalContainsPointAndTheoreticalBounds) {
  // 10 existing tuples, 4 with the value; 6 synthesized with varying
  // confidence.
  std::vector<std::vector<float>> probs(6, {0.8f, 0.2f});
  std::vector<double> marginal{0.4, 0.6};
  ConfidenceInterval ci =
      CountFractionInterval(probs, marginal, 0, 4, 10, 0.95);
  EXPECT_LE(ci.lower, ci.point);
  EXPECT_GE(ci.upper, ci.point);
  EXPECT_GE(ci.lower, ci.theoretical_min - 1e-9);
  EXPECT_LE(ci.upper, ci.theoretical_max + 1e-9);
  // theoretical bounds: (4+0)/16 and (4+6)/16.
  EXPECT_NEAR(ci.theoretical_min, 4.0 / 16.0, 1e-12);
  EXPECT_NEAR(ci.theoretical_max, 10.0 / 16.0, 1e-12);
}

TEST(ConfidenceTest, CertainModelGivesTighterCountInterval) {
  std::vector<double> marginal{0.5, 0.5};
  std::vector<std::vector<float>> uncertain(8, {0.5f, 0.5f});
  std::vector<std::vector<float>> certain(8, {0.97f, 0.03f});
  ConfidenceInterval wide =
      CountFractionInterval(uncertain, marginal, 0, 5, 10, 0.95);
  ConfidenceInterval tight =
      CountFractionInterval(certain, marginal, 0, 5, 10, 0.95);
  EXPECT_LT(tight.upper - tight.lower, wide.upper - wide.lower);
}

TEST(ConfidenceTest, NoSynthesizedTuplesCollapsesInterval) {
  ConfidenceInterval ci = CountFractionInterval({}, {0.5, 0.5}, 0, 5, 10);
  EXPECT_DOUBLE_EQ(ci.lower, ci.upper);
  EXPECT_DOUBLE_EQ(ci.point, 0.5);
}

TEST(ConfidenceTest, AvgIntervalBoundsScaleWithCertainty) {
  std::vector<double> code_means{10.0, 20.0, 30.0};
  std::vector<double> marginal{0.33, 0.34, 0.33};
  std::vector<std::vector<float>> uncertain(5, {0.33f, 0.34f, 0.33f});
  std::vector<std::vector<float>> certain(5, {0.02f, 0.96f, 0.02f});
  ConfidenceInterval wide =
      AvgInterval(uncertain, marginal, code_means, 100.0, 5, 0.95);
  ConfidenceInterval tight =
      AvgInterval(certain, marginal, code_means, 100.0, 5, 0.95);
  EXPECT_LT(tight.upper - tight.lower, wide.upper - wide.lower);
  EXPECT_LE(wide.lower, wide.point);
  EXPECT_GE(wide.upper, wide.point);
  EXPECT_GE(wide.lower, wide.theoretical_min - 1e-9);
  EXPECT_LE(wide.upper, wide.theoretical_max + 1e-9);
}

Table MakeJoined(const std::string& name, int rows) {
  Table t(name, {{"x", ColumnType::kInt64}});
  for (int i = 0; i < rows; ++i) {
    EXPECT_TRUE(t.AppendRow({Value::Int64(i)}).ok());
  }
  return t;
}

TEST(CompletionCacheTest, ExactHitAndMiss) {
  CompletionCache cache;
  cache.Put({"a", "b"}, MakeJoined("ab", 3));
  EXPECT_NE(cache.GetExact({"a", "b"}), nullptr);
  EXPECT_EQ(cache.GetExact({"a"}), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(CompletionCacheTest, CoveringPicksSmallestSuperset) {
  CompletionCache cache;
  cache.Put({"a", "b", "c", "d"}, MakeJoined("abcd", 4));
  cache.Put({"a", "b", "c"}, MakeJoined("abc", 3));
  std::shared_ptr<const Table> hit = cache.GetCovering({"a", "b"});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->name(), "abc");  // smaller superset wins
  EXPECT_EQ(cache.GetCovering({"a", "z"}), nullptr);
}

TEST(CompletionCacheTest, PutOverwritesSameKey) {
  CompletionCache cache;
  cache.Put({"a"}, MakeJoined("v1", 1));
  cache.Put({"a"}, MakeJoined("v2", 2));
  std::shared_ptr<const Table> hit = cache.GetExact({"a"});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->NumRows(), 2u);
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace restore
