// Reproduces Figure 12: time required for completing one path, with and
// without the Euclidean nearest-neighbor replacement, AR vs SSAR. The
// replacement is exercised by extending the path with a complete table.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "restore/incompleteness_join.h"
#include "restore/path_selection.h"

namespace restore {
namespace bench {
namespace {

int Run() {
  FigureJson json("fig12");
  std::printf("# Figure 12: completion time per path (seconds)\n");
  std::printf("setup,model,nn_replacement,path_len,completion_seconds\n");
  const double housing_scale = FullGrids() ? 0.5 : 0.2;
  const double movies_scale = FullGrids() ? 0.4 : 0.12;
  std::vector<CompletionSetup> setups = HousingSetups();
  for (const auto& m : MovieSetups()) setups.push_back(m);
  for (const auto& setup : setups) {
    const double scale =
        setup.dataset == "housing" ? housing_scale : movies_scale;
    auto run = MakeSetupRun(setup.name, 0.5, 0.5, scale, 1500);
    if (!run.ok()) continue;
    auto paths = EnumerateCompletionPaths(run->incomplete, run->annotation,
                                          setup.removed_table, 5);
    if (paths.empty()) continue;
    // Variant with replacement: extend the path by one complete neighbor of
    // the target (forces synthesize + Euclidean replace on the extra hop).
    std::vector<std::string> extended = paths[0];
    for (const auto& next :
         run->incomplete.Neighbors(setup.removed_table)) {
      if (run->annotation.IsComplete(next) &&
          std::find(extended.begin(), extended.end(), next) ==
              extended.end()) {
        extended.push_back(next);
        break;
      }
    }
    for (bool ssar : {false, true}) {
      PathModelConfig config = BenchEngineConfig(ssar).model;
      for (const auto& [label, path] :
           std::vector<std::pair<const char*, std::vector<std::string>>>{
               {"no", paths[0]}, {"yes", extended}}) {
        if (std::string(label) == "yes" && extended.size() == paths[0].size()) {
          continue;  // no complete neighbor available
        }
        auto model =
            PathModel::Train(run->incomplete, run->annotation, path, config);
        if (!model.ok()) continue;
        IncompletenessJoinExecutor exec(&run->incomplete, &run->annotation);
        Rng rng(1501);
        Timer timer;
        auto completion = exec.CompletePathJoin(**model, rng);
        if (!completion.ok()) {
          std::fprintf(stderr, "%s: %s\n", setup.name.c_str(),
                       completion.status().ToString().c_str());
          continue;
        }
        std::printf("%s,%s,%s,%zu,%.3f\n", setup.name.c_str(),
                    ssar ? "SSAR" : "AR", label, path.size(),
                    timer.ElapsedSeconds());
        json.Add(StrFormat("%s/%s/replace=%s", setup.name.c_str(),
                           ssar ? "SSAR" : "AR", label),
                 {{"path_len", static_cast<double>(path.size())},
                  {"completion_seconds", timer.ElapsedSeconds()}});
        std::fflush(stdout);
      }
    }
  }
  if (Status s = json.Write(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace restore

int main() { return restore::bench::Run(); }
