#include "restore/path_selection.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/string_util.h"
#include "restore/incompleteness_join.h"

namespace restore {

namespace {

void EnumerateRecursive(const Database& db, const SchemaAnnotation& annotation,
                        std::vector<std::string>* current,
                        std::set<std::string>* visited, size_t max_len,
                        std::vector<std::vector<std::string>>* out) {
  // `current` is a reversed path: [target, ..., frontier].
  const std::string& frontier = current->back();
  if (current->size() >= 2 && annotation.IsComplete(frontier)) {
    // A valid completion path starts at the complete frontier.
    out->emplace_back(current->rbegin(), current->rend());
  }
  if (current->size() >= max_len) return;
  for (const auto& next : db.Neighbors(frontier)) {
    if (visited->count(next) > 0) continue;
    visited->insert(next);
    current->push_back(next);
    EnumerateRecursive(db, annotation, current, visited, max_len, out);
    current->pop_back();
    visited->erase(next);
  }
}

/// Mean of the first numeric non-key attribute of `table` (used as the
/// reconstruction target statistic).
Result<double> TableAttrMean(const Database& db, const Table& table,
                             const std::string& column) {
  RESTORE_ASSIGN_OR_RETURN(const Column* col, table.GetColumn(column));
  double sum = 0.0;
  size_t n = 0;
  for (size_t r = 0; r < table.NumRows(); ++r) {
    if (col->IsNull(r)) continue;
    sum += col->GetNumeric(r);
    ++n;
  }
  (void)db;
  if (n == 0) return Status::FailedPrecondition("empty column");
  return sum / static_cast<double>(n);
}

/// Picks the statistic column for the derived-scenario evaluation: the
/// suspected-bias column if provided, else the first numeric non-key
/// attribute found.
Result<std::string> StatisticColumn(const Database& db,
                                    const SchemaAnnotation& annotation,
                                    const std::string& target) {
  for (const auto& [key, bias] : annotation.suspected_biases()) {
    (void)key;
    if (bias.table == target) return bias.column;
  }
  RESTORE_ASSIGN_OR_RETURN(const Table* table, db.GetTable(target));
  std::set<std::string> keys;
  for (const auto& fk : db.foreign_keys()) {
    if (fk.child_table == target) keys.insert(fk.child_column);
    if (fk.parent_table == target) keys.insert(fk.parent_column);
  }
  for (const auto& col : table->columns()) {
    if (keys.count(col.name()) > 0) continue;
    if (StartsWith(col.name(), "__tf")) continue;
    if (col.is_numeric()) return col.name();
  }
  return Status::NotFound("no numeric attribute for reconstruction scoring");
}

}  // namespace

std::vector<std::vector<std::string>> EnumerateCompletionPaths(
    const Database& db, const SchemaAnnotation& annotation,
    const std::string& target, size_t max_len) {
  std::vector<std::vector<std::string>> out;
  std::vector<std::string> current{target};
  std::set<std::string> visited{target};
  EnumerateRecursive(db, annotation, &current, &visited, max_len, &out);
  // Short paths first: cheaper models are preferred on ties.
  std::stable_sort(out.begin(), out.end(),
                   [](const auto& a, const auto& b) {
                     return a.size() < b.size();
                   });
  return out;
}

Result<size_t> SelectPath(
    const Database& db, const SchemaAnnotation& annotation,
    const std::string& target,
    const std::vector<std::vector<std::string>>& candidates,
    const std::vector<const PathModel*>& models, SelectionStrategy strategy,
    const PathModelConfig& probe_config, double holdout_fraction,
    uint64_t seed) {
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidate completion paths");
  }
  if (models.size() != candidates.size()) {
    return Status::InvalidArgument("one model per candidate required");
  }
  if (strategy == SelectionStrategy::kFirst) return size_t{0};

  if (strategy == SelectionStrategy::kBestTestLoss) {
    size_t best = 0;
    double best_loss = std::numeric_limits<double>::max();
    for (size_t i = 0; i < models.size(); ++i) {
      if (models[i]->target_test_loss() < best_loss) {
        best_loss = models[i]->target_test_loss();
        best = i;
      }
    }
    return best;
  }

  // Reconstruction-based strategies: derive a further-incomplete scenario
  // with the current incomplete database as ground truth.
  RESTORE_ASSIGN_OR_RETURN(std::string stat_col,
                           StatisticColumn(db, annotation, target));
  RESTORE_ASSIGN_OR_RETURN(const Table* truth_table, db.GetTable(target));
  RESTORE_ASSIGN_OR_RETURN(double truth_mean,
                           TableAttrMean(db, *truth_table, stat_col));

  // Remove a biased holdout: drop rows preferentially from one side of the
  // statistic column, mimicking the real missing-data mechanism.
  Rng rng(seed);
  Database derived = db.Clone();
  {
    RESTORE_ASSIGN_OR_RETURN(Table * table, derived.GetMutableTable(target));
    RESTORE_ASSIGN_OR_RETURN(const Column* col, table->GetColumn(stat_col));
    std::vector<std::pair<double, size_t>> ranked;
    for (size_t r = 0; r < table->NumRows(); ++r) {
      ranked.emplace_back(col->IsNull(r) ? 0.0 : col->GetNumeric(r), r);
    }
    std::sort(ranked.begin(), ranked.end());
    std::vector<size_t> keep;
    const size_t n = ranked.size();
    for (size_t i = 0; i < n; ++i) {
      const double rank = static_cast<double>(i) / std::max<size_t>(1, n - 1);
      const double p_remove = holdout_fraction * (0.5 + rank);  // biased
      if (!rng.NextBernoulli(std::min(1.0, p_remove))) {
        keep.push_back(ranked[i].second);
      }
    }
    std::sort(keep.begin(), keep.end());
    Table reduced = table->GatherRows(keep);
    reduced.set_name(target);
    RESTORE_RETURN_IF_ERROR(derived.ReplaceTable(std::move(reduced)));
  }

  const SuspectedBias* bias = nullptr;
  if (strategy == SelectionStrategy::kSuspectedBias) {
    for (const auto& [key, b] : annotation.suspected_biases()) {
      (void)key;
      if (b.table == target) bias = &b;
    }
  }

  RESTORE_ASSIGN_OR_RETURN(const Table* derived_table,
                           derived.GetTable(target));
  RESTORE_ASSIGN_OR_RETURN(double derived_mean,
                           TableAttrMean(derived, *derived_table, stat_col));

  size_t best = 0;
  double best_score = std::numeric_limits<double>::max();
  for (size_t i = 0; i < candidates.size(); ++i) {
    // Train a cheap probe model on the derived scenario and reconstruct.
    PathModelConfig cfg = probe_config;
    cfg.use_ssar = models[i]->is_ssar();
    auto probe = PathModel::Train(derived, annotation, candidates[i], cfg);
    if (!probe.ok()) continue;
    IncompletenessJoinExecutor exec(&derived, &annotation);
    Rng crng(seed + 1);
    auto completion = exec.CompletePathJoin(**probe, crng);
    if (!completion.ok()) continue;
    // Reconstructed mean of the statistic over existing + synthesized rows.
    double sum = 0.0;
    size_t n = 0;
    {
      RESTORE_ASSIGN_OR_RETURN(const Column* col,
                               derived_table->GetColumn(stat_col));
      for (size_t r = 0; r < derived_table->NumRows(); ++r) {
        if (col->IsNull(r)) continue;
        sum += col->GetNumeric(r);
        ++n;
      }
    }
    auto it = completion->synthesized.find(target);
    if (it != completion->synthesized.end()) {
      for (const auto& col : it->second) {
        if (col.name() != stat_col) continue;
        for (size_t r = 0; r < col.size(); ++r) {
          if (col.IsNull(r)) continue;
          sum += col.GetNumeric(r);
          ++n;
        }
      }
    }
    if (n == 0) continue;
    const double completed_mean = sum / static_cast<double>(n);
    double score = std::abs(completed_mean - truth_mean);
    if (bias != nullptr) {
      // Penalize candidates that move the statistic the wrong way.
      const double correction = completed_mean - derived_mean;
      const bool should_increase =
          bias->direction == BiasDirection::kUnderestimated;
      if ((should_increase && correction < 0.0) ||
          (!should_increase && correction > 0.0)) {
        score += std::abs(truth_mean) + 1.0;
      }
    }
    if (score < best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

}  // namespace restore
