#include "nn/adam.h"

#include <cmath>

namespace restore {

AdamOptimizer::AdamOptimizer(std::vector<Param*> params, Options options)
    : params_(std::move(params)), options_(options) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i]->value.size(), 0.0f);
    v_[i].assign(params_[i]->value.size(), 0.0f);
  }
}

void AdamOptimizer::Step() {
  ++t_;
  const float b1 = options_.beta1;
  const float b2 = options_.beta2;
  const float bias1 = 1.0f - std::pow(b1, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(b2, static_cast<float>(t_));
  const float lr = options_.learning_rate;
  for (size_t i = 0; i < params_.size(); ++i) {
    Param* p = params_[i];
    float* value = p->value.data();
    float* grad = p->grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const size_t n = p->value.size();
    for (size_t k = 0; k < n; ++k) {
      float g = grad[k] + options_.weight_decay * value[k];
      m[k] = b1 * m[k] + (1.0f - b1) * g;
      v[k] = b2 * v[k] + (1.0f - b2) * g * g;
      const float m_hat = m[k] / bias1;
      const float v_hat = v[k] / bias2;
      value[k] -= lr * m_hat / (std::sqrt(v_hat) + options_.epsilon);
      grad[k] = 0.0f;
    }
  }
}

void AdamOptimizer::ZeroGrad() {
  for (Param* p : params_) p->ZeroGrad();
}

}  // namespace restore
