// Fault-injection framework tests: the policy registry itself (spec parsing,
// fail_nth/fail_first/probability semantics, hit accounting), then the
// graceful-degradation machinery it drives — refresh retry with
// deterministic exponential backoff, per-path circuit breakers that serve
// the last good generation while open, crash-safe saves under injected
// write failures, and clean ingest rejection.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "datagen/incompleteness.h"
#include "datagen/synthetic.h"
#include "restore/db.h"

namespace restore {
namespace {

EngineConfig FastConfig() {
  EngineConfig config;
  config.model.epochs = 4;
  config.model.min_train_steps = 120;
  config.model.hidden_dim = 24;
  config.model.embed_dim = 4;
  config.model.max_bins = 12;
  config.max_candidates = 2;
  return config;
}

Database MakeIncompleteSynthetic(uint64_t seed) {
  SyntheticConfig data_config;
  data_config.num_parents = 200;
  data_config.predictability = 0.85;
  data_config.seed = seed;
  auto complete = GenerateSynthetic(data_config);
  EXPECT_TRUE(complete.ok());
  BiasedRemovalConfig removal;
  removal.table = "table_b";
  removal.column = "b";
  removal.keep_rate = 0.5;
  removal.removal_correlation = 0.5;
  removal.seed = seed + 1;
  auto incomplete = ApplyBiasedRemoval(*complete, removal);
  EXPECT_TRUE(incomplete.ok());
  return std::move(incomplete).value();
}

SchemaAnnotation Annotation() {
  SchemaAnnotation annotation;
  annotation.MarkIncomplete("table_b");
  return annotation;
}

std::vector<std::vector<Value>> MakeRows(size_t n, int64_t first_id,
                                         const std::string& category) {
  std::vector<std::vector<Value>> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back({Value::Int64(first_id + static_cast<int64_t>(i)),
                    Value::Int64(static_cast<int64_t>(i % 50)),
                    Value::Categorical(category)});
  }
  return rows;
}

std::string FreshDir(const std::string& tag) {
  static int counter = 0;
  std::string dir = ::testing::TempDir() + "/fault_" + tag + "_" +
                    std::to_string(++counter);
  std::remove(dir.c_str());
  return dir;
}

constexpr char kCountByB[] = "SELECT COUNT(*) FROM table_b GROUP BY b;";

/// Every test starts and ends with a clean registry — fault points are
/// process-global, so leaking one would poison unrelated tests.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjection::Instance().Reset(); }
  void TearDown() override { FaultInjection::Instance().Reset(); }
};

// ---- Registry semantics -----------------------------------------------------

TEST_F(FaultInjectionTest, DisabledByDefaultAndFireIsFree) {
  EXPECT_FALSE(FaultInjection::Enabled());
  EXPECT_TRUE(FaultInjection::Fire("nonexistent.point").ok());
  // Unarmed points accrue no hits either.
  EXPECT_EQ(FaultInjection::Instance().hits("nonexistent.point"), 0u);
}

TEST_F(FaultInjectionTest, FailNthFailsExactlyTheNthHit) {
  FaultInjection::Instance().Arm("p", FaultPolicy::FailNth(2));
  EXPECT_TRUE(FaultInjection::Enabled());
  EXPECT_TRUE(FaultInjection::Fire("p").ok());
  Status second = FaultInjection::Fire("p");
  EXPECT_FALSE(second.ok());
  EXPECT_NE(second.message().find("'p'"), std::string::npos) << second;
  EXPECT_TRUE(FaultInjection::Fire("p").ok());
  EXPECT_EQ(FaultInjection::Instance().hits("p"), 3u);
}

TEST_F(FaultInjectionTest, FailFirstFailsLeadingHitsThenPasses) {
  FaultInjection::Instance().Arm("p", FaultPolicy::FailFirst(2));
  EXPECT_FALSE(FaultInjection::Fire("p").ok());
  EXPECT_FALSE(FaultInjection::Fire("p").ok());
  EXPECT_TRUE(FaultInjection::Fire("p").ok());
  EXPECT_TRUE(FaultInjection::Fire("p").ok());
}

TEST_F(FaultInjectionTest, SpecParsingArmsPointsAndStatusSuffixes) {
  Status s = FaultInjection::Instance().Configure(
      "a=fail_nth:1:unavailable,b=fail_always:ResourceExhausted,"
      "c=delay_ms:0");
  ASSERT_TRUE(s.ok()) << s;
  Status a = FaultInjection::Fire("a");
  EXPECT_TRUE(a.IsUnavailable()) << a;
  EXPECT_TRUE(FaultInjection::Fire("a").ok());  // nth consumed
  Status b = FaultInjection::Fire("b");
  EXPECT_TRUE(b.IsResourceExhausted()) << b;
  EXPECT_TRUE(FaultInjection::Fire("c").ok());  // delay passes through
}

TEST_F(FaultInjectionTest, MalformedSpecsAreRejected) {
  auto& fi = FaultInjection::Instance();
  EXPECT_TRUE(fi.Configure("no_equals_sign").IsInvalidArgument());
  EXPECT_TRUE(fi.Configure("=fail_always").IsInvalidArgument());
  EXPECT_TRUE(fi.Configure("p=").IsInvalidArgument());
  EXPECT_TRUE(fi.Configure("p=fail_nth").IsInvalidArgument());
  EXPECT_TRUE(fi.Configure("p=fail_nth:0").IsInvalidArgument());
  EXPECT_TRUE(fi.Configure("p=fail_nth:xyz").IsInvalidArgument());
  EXPECT_TRUE(fi.Configure("p=fail_prob:1.5").IsInvalidArgument());
  EXPECT_TRUE(fi.Configure("p=no_such_policy").IsInvalidArgument());
  EXPECT_TRUE(fi.Configure("p=fail_always:bogus_status").IsInvalidArgument());
  EXPECT_TRUE(
      fi.Configure("p=fail_nth:1:internal:extra").IsInvalidArgument());
}

TEST_F(FaultInjectionTest, ResetDisarmsEverythingAndDisablesTheGate) {
  FaultInjection::Instance().Arm("p", FaultPolicy::FailAlways());
  EXPECT_TRUE(FaultInjection::Enabled());
  FaultInjection::Instance().Reset();
  EXPECT_FALSE(FaultInjection::Enabled());
  EXPECT_TRUE(FaultInjection::Fire("p").ok());
  EXPECT_EQ(FaultInjection::Instance().hits("p"), 0u);
}

TEST_F(FaultInjectionTest, DisarmKeepsOtherPointsArmed) {
  FaultInjection::Instance().Arm("a", FaultPolicy::FailAlways());
  FaultInjection::Instance().Arm("b", FaultPolicy::FailAlways());
  FaultInjection::Instance().Disarm("a");
  EXPECT_TRUE(FaultInjection::Enabled());
  EXPECT_TRUE(FaultInjection::Fire("a").ok());
  EXPECT_FALSE(FaultInjection::Fire("b").ok());
  FaultInjection::Instance().Disarm("b");
  EXPECT_FALSE(FaultInjection::Enabled());
}

TEST_F(FaultInjectionTest, FailProbIsDeterministicForAFixedSeed) {
  const auto run = [] {
    FaultInjection::Instance().Reset();
    FaultInjection::Instance().Arm("p", FaultPolicy::FailProb(0.5));
    FaultInjection::Instance().Seed(7);
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(FaultInjection::Fire("p").ok());
    }
    return outcomes;
  };
  const std::vector<bool> first = run();
  const std::vector<bool> second = run();
  EXPECT_EQ(first, second);
  // A 0.5 coin must actually produce both outcomes in 64 flips.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

// ---- Refresh retry with deterministic backoff -------------------------------

TEST_F(FaultInjectionTest, RefreshRetriesWithDeterministicBackoff) {
  // Two identical runs: the refresher fails twice (injected), backs off
  // twice, then succeeds — and the recorded backoff delays are identical
  // across runs (pure function of path seed and attempt number).
  const auto run = [](uint64_t seed) {
    FaultInjection::Instance().Reset();
    Database incomplete = MakeIncompleteSynthetic(seed);
    RefreshPolicy policy;
    policy.staleness_rows_threshold = 1;
    policy.max_retries = 3;
    policy.backoff_initial_ms = 50;
    policy.backoff_max_ms = 2000;
    auto db = Db::Open(&incomplete, Annotation(),
                       DbOptions().WithEngine(FastConfig()).WithRefreshPolicy(
                           policy));
    EXPECT_TRUE(db.ok()) << db.status();
    auto warm = (*db)->ExecuteCompletedSql(kCountByB);
    EXPECT_TRUE(warm.ok()) << warm.status();

    std::mutex mu;
    std::vector<uint64_t> delays;
    (*db)->SetRefreshBackoffHookForTest([&](uint64_t ms) {
      std::lock_guard<std::mutex> lock(mu);
      delays.push_back(ms);
    });
    FaultInjection::Instance().Arm("refresh.train", FaultPolicy::FailFirst(2));

    EXPECT_TRUE((*db)->Append("table_b", MakeRows(5, 900000, "novel")).ok());
    (*db)->WaitForRefreshIdle();

    const Db::Stats stats = (*db)->stats();
    EXPECT_EQ(stats.refresh_failures, 2u);
    EXPECT_EQ(stats.refresh_retries, 2u);
    EXPECT_EQ(stats.models_refreshed, 1u);  // third attempt landed
    EXPECT_EQ(stats.refresh_failure_streak, 0u);
    EXPECT_EQ(stats.breaker_open_total, 0u);
    std::lock_guard<std::mutex> lock(mu);
    return delays;
  };

  const std::vector<uint64_t> first = run(601);
  const std::vector<uint64_t> second = run(601);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first, second);
  // Exponential growth shines through the jitter: attempt 1 waits at most
  // 50 + 25 ms, attempt 2 at least 100 ms.
  EXPECT_LE(first[0], 75u);
  EXPECT_GE(first[1], 100u);
  EXPECT_LT(first[0], first[1]);
}

// ---- Circuit breaker: serve stale, fail fast, half-open probe ---------------

TEST_F(FaultInjectionTest, BreakerOpensServesStaleThenProbeCloses) {
  Database incomplete = MakeIncompleteSynthetic(607);
  RefreshPolicy policy;
  policy.breaker_failure_threshold = 2;
  policy.breaker_open_ms = 100;
  policy.max_retries = 0;
  auto db = Db::Open(&incomplete, Annotation(),
                     DbOptions().WithEngine(FastConfig()).WithRefreshPolicy(
                         policy));
  ASSERT_TRUE(db.ok()) << db.status();
  auto baseline = (*db)->ExecuteCompletedSql(kCountByB);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  // Two failed synchronous refresh passes open the breaker.
  FaultInjection::Instance().Arm("refresh.train", FaultPolicy::FailFirst(2));
  ASSERT_TRUE((*db)->Append("table_b", MakeRows(3, 910000, "novel")).ok());
  EXPECT_FALSE((*db)->RefreshStaleModels().ok());
  EXPECT_FALSE((*db)->RefreshStaleModels().ok());

  Db::Stats stats = (*db)->stats();
  EXPECT_EQ(stats.breaker_open_total, 1u);
  EXPECT_EQ(stats.breakers_open, 1u);
  EXPECT_EQ((*db)->breakers_open(), 1u);

  // While open: refreshes fail fast with kUnavailable, queries keep serving
  // the last good generation, and Freshness exposes the breaker.
  Status fast = (*db)->RefreshStaleModels();
  EXPECT_TRUE(fast.IsUnavailable()) << fast;
  auto while_open = (*db)->ExecuteCompletedSql(kCountByB);
  ASSERT_TRUE(while_open.ok()) << while_open.status();
  bool saw_open = false;
  for (const ModelInfo& info : (*db)->Freshness()) {
    if (info.breaker_open) {
      saw_open = true;
      EXPECT_EQ(info.consecutive_failures, 2u);
      EXPECT_EQ(info.generation, 1u);  // still the pre-failure generation
    }
  }
  EXPECT_TRUE(saw_open);

  // Past the open window, the next pass is the half-open probe; the fault
  // is exhausted (fail_first:2), so it trains, swaps, and closes the
  // breaker.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  Status probe = (*db)->RefreshStaleModels();
  EXPECT_TRUE(probe.ok()) << probe;
  stats = (*db)->stats();
  EXPECT_EQ(stats.breakers_open, 0u);
  EXPECT_EQ(stats.models_refreshed, 1u);
  for (const ModelInfo& info : (*db)->Freshness()) {
    EXPECT_FALSE(info.breaker_open);
    EXPECT_EQ(info.consecutive_failures, 0u);
  }
}

// ---- Persistence under injected write failures ------------------------------

TEST_F(FaultInjectionTest, FailedSaveLeavesCommittedGenerationLoadable) {
  Database incomplete = MakeIncompleteSynthetic(613);
  auto db = Db::Open(&incomplete, Annotation(),
                     DbOptions().WithEngine(FastConfig()));
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE((*db)->ModelForPath({"table_a", "table_b"}).ok());

  const std::string dir = FreshDir("save");
  ASSERT_TRUE((*db)->SaveModels(dir).ok());  // gen 1 committed

  FaultInjection::Instance().Arm("persist.write", FaultPolicy::FailAlways());
  Status failed = (*db)->SaveModels(dir);
  EXPECT_FALSE(failed.ok());
  EXPECT_NE(failed.message().find("persist.write"), std::string::npos)
      << failed;
  Db::Stats stats = (*db)->stats();
  EXPECT_EQ(stats.save_failures, 1u);
  EXPECT_EQ(stats.save_failure_streak, 1u);
  EXPECT_EQ((*db)->save_failure_streak(), 1u);

  // The failed save never touched the committed generation: a reopen loads
  // it and answers without retraining.
  FaultInjection::Instance().Reset();
  auto current = CurrentModelGenerationDir(dir);
  ASSERT_TRUE(current.ok()) << current.status();
  auto reopened = Db::Open(&incomplete, Annotation(),
                           DbOptions().WithEngine(FastConfig()).WithModelDir(
                               dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_TRUE((*reopened)->ExecuteCompletedSql(kCountByB).ok());

  // The next save proceeds past the crashed staging dir and clears the
  // streak (save_failures stays as the lifetime total).
  ASSERT_TRUE((*db)->SaveModels(dir).ok());
  stats = (*db)->stats();
  EXPECT_EQ(stats.save_failures, 1u);
  EXPECT_EQ(stats.save_failure_streak, 0u);
}

// ---- Ingest validation faults ----------------------------------------------

TEST_F(FaultInjectionTest, InjectedIngestFaultRejectsCleanly) {
  Database incomplete = MakeIncompleteSynthetic(617);
  auto db = Db::Open(&incomplete, Annotation(),
                     DbOptions().WithEngine(FastConfig()));
  ASSERT_TRUE(db.ok()) << db.status();
  const size_t before = (*(*db)->data()->GetTable("table_b"))->NumRows();
  const uint64_t epoch_before = (*db)->epoch();

  FaultInjection::Instance().Configure(
      "ingest.validate=fail_nth:1:unavailable");
  Status rejected = (*db)->Append("table_b", MakeRows(4, 920000, "x"));
  EXPECT_TRUE(rejected.IsUnavailable()) << rejected;
  EXPECT_EQ((*(*db)->data()->GetTable("table_b"))->NumRows(), before);
  EXPECT_EQ((*db)->epoch(), epoch_before);
  EXPECT_EQ((*db)->stats().rows_ingested, 0u);

  // The nth hit is consumed: the retry publishes normally.
  ASSERT_TRUE((*db)->Append("table_b", MakeRows(4, 920000, "x")).ok());
  EXPECT_EQ((*(*db)->data()->GetTable("table_b"))->NumRows(), before + 4);
}

}  // namespace
}  // namespace restore
